package mobilegossip

import (
	"errors"
	"testing"
)

func TestRunAllAlgorithmsSolve(t *testing.T) {
	for _, alg := range []Algorithm{AlgBlindMatch, AlgSharedBit, AlgSimSharedBit, AlgCrowdedBin} {
		res, err := Run(Config{
			Algorithm: alg,
			N:         16, K: 4,
			Topology: Topology{Kind: RandomRegular, Degree: 4},
			Seed:     1,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Solved || res.FinalPotential != 0 {
			t.Fatalf("%v: unsolved after %d rounds (φ=%d)", alg, res.Rounds, res.FinalPotential)
		}
	}
}

func TestRunDynamicTopologies(t *testing.T) {
	for _, alg := range []Algorithm{AlgBlindMatch, AlgSharedBit, AlgSimSharedBit} {
		res, err := Run(Config{
			Algorithm: alg,
			N:         12, K: 3,
			Topology: Topology{Kind: Cycle},
			Tau:      1,
			Seed:     2,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Solved {
			t.Fatalf("%v: unsolved on τ=1 rotating ring after %d rounds", alg, res.Rounds)
		}
	}
}

func TestRunEpsilonGossip(t *testing.T) {
	res, err := Run(Config{
		Algorithm: AlgSharedBit,
		N:         16, K: 16,
		Epsilon:  0.5,
		Topology: Topology{Kind: Complete},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("ε-gossip unsolved after %d rounds", res.Rounds)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"badN", Config{Algorithm: AlgSharedBit, N: 1, K: 1}, ErrBadN},
		{"badK0", Config{Algorithm: AlgSharedBit, N: 4, K: 0}, ErrBadK},
		{"badKbig", Config{Algorithm: AlgSharedBit, N: 4, K: 5}, ErrBadK},
		{"epsAlg", Config{Algorithm: AlgBlindMatch, N: 4, K: 4, Epsilon: 0.5}, ErrEpsilonRequires},
		{"epsK", Config{Algorithm: AlgSharedBit, N: 4, K: 2, Epsilon: 0.5}, ErrEpsilonRequires},
		{"cbTau", Config{Algorithm: AlgCrowdedBin, N: 4, K: 2, Tau: 1}, ErrCrowdedBinTau},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, err := Run(Config{Algorithm: AlgSharedBit, N: 4, K: 4, Epsilon: 1.5}); err == nil {
		t.Error("epsilon out of range accepted")
	}
	if _, err := Run(Config{Algorithm: Algorithm(99), N: 4, K: 2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Algorithm: AlgSharedBit, N: 14, K: 4,
		Topology: Topology{Kind: GNP}, Tau: 2, Seed: 7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunMaxRoundsAborts(t *testing.T) {
	res, err := Run(Config{
		Algorithm: AlgBlindMatch, N: 32, K: 32,
		Topology: Topology{Kind: DoubleStar}, Seed: 4, MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved || res.Rounds != 10 {
		t.Fatalf("res = %+v, want 10 unsolved rounds", res)
	}
	if res.FinalPotential == 0 {
		t.Fatal("φ = 0 for an unsolved run")
	}
}

func TestRunOnRoundPotentialTrace(t *testing.T) {
	var phis []int
	_, err := Run(Config{
		Algorithm: AlgSharedBit, N: 10, K: 3,
		Topology: Topology{Kind: Complete}, Seed: 5,
		OnRound: func(r, phi int) { phis = append(phis, phi) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phis) == 0 || phis[len(phis)-1] != 0 {
		t.Fatalf("potential trace bad: %v", phis)
	}
	for i := 1; i < len(phis); i++ {
		if phis[i] > phis[i-1] {
			t.Fatalf("φ increased at index %d: %v", i, phis)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, alg := range []Algorithm{AlgBlindMatch, AlgSharedBit, AlgSimSharedBit, AlgCrowdedBin} {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Errorf("algorithm %v does not round-trip: %v, %v", alg, got, err)
		}
	}
	for _, k := range []TopologyKind{Cycle, Path, Complete, Star, DoubleStar, Grid, Hypercube, GNP, RandomRegular, Barbell} {
		got, err := ParseTopologyKind(k.String())
		if err != nil || got != k {
			t.Errorf("topology %v does not round-trip: %v, %v", k, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("bogus algorithm parsed")
	}
	if _, err := ParseTopologyKind("nope"); err == nil {
		t.Error("bogus topology parsed")
	}
}

func TestTopologyBuildErrors(t *testing.T) {
	if _, err := (Topology{Kind: Hypercube}).Build(10, 0, 1); err == nil {
		t.Error("hypercube on non-power-of-two accepted")
	}
	if _, err := (Topology{Kind: Grid, Rows: 3, Cols: 3}).Build(10, 0, 1); err == nil {
		t.Error("grid mismatch accepted")
	}
	if _, err := (Topology{Kind: TopologyKind(42)}).Build(8, 0, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	// Dynamic builds must validate the family too.
	if _, err := (Topology{Kind: Hypercube}).Build(10, 1, 1); err == nil {
		t.Error("dynamic hypercube on non-power-of-two accepted")
	}
}

func TestTopologyDefaults(t *testing.T) {
	// Grid auto-factors near-square sizes; hypercube accepts powers of two.
	for _, n := range []int{12, 16, 20} {
		if _, err := (Topology{Kind: Grid}).Build(n, 0, 1); err != nil {
			t.Errorf("grid n=%d: %v", n, err)
		}
	}
	if _, err := (Topology{Kind: Hypercube}).Build(16, 0, 1); err != nil {
		t.Error("hypercube n=16 rejected")
	}
	// Barbell default: two n/2 cliques bridged directly.
	if _, err := (Topology{Kind: Barbell}).Build(12, 0, 1); err != nil {
		t.Error("barbell default rejected")
	}
}

func TestAllTopologiesRunnable(t *testing.T) {
	for _, k := range []TopologyKind{Cycle, Path, Complete, Star, DoubleStar, Grid, Hypercube, GNP, RandomRegular, Barbell} {
		res, err := Run(Config{
			Algorithm: AlgSharedBit, N: 16, K: 2,
			Topology: Topology{Kind: k}, Seed: 6,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !res.Solved {
			t.Fatalf("%v: unsolved after %d rounds", k, res.Rounds)
		}
	}
}
