package mobilegossip_test

// Conformance tests for the dyngraph.DeltaDynamic contract across every
// dynamic-schedule implementation the Topology layer can build — τ-dynamic
// regeneration (no delta support: the generic diff path), the four mobility
// models, and every adversary strategy (over static and mobility bases):
//
//   - DeltaFor(r) must equal the generic edge diff of At(r-1) vs At(r),
//     edge for edge;
//   - MeasureChurn on a fresh instance must agree with churn accumulated
//     from those diffs;
//   - every round's topology must be connected (§2's standing requirement).

import (
	"fmt"
	"testing"

	"mobilegossip"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
)

// conformanceSchedules enumerates the Topology configurations under test.
func conformanceSchedules() []mobilegossip.Topology {
	schedules := []mobilegossip.Topology{
		{Kind: mobilegossip.RandomRegular, Degree: 4}, // τ-dynamic Regen (non-delta)
		{Kind: mobilegossip.Cycle},                    // deterministic family + relabeling
		{Kind: mobilegossip.MobileWaypoint, Speed: 0.04},
		{Kind: mobilegossip.MobileLevy, Speed: 0.04},
		{Kind: mobilegossip.MobileGroup, Speed: 0.04, Attract: 0.8},
		{Kind: mobilegossip.MobileCommuter, Speed: 0.04, Period: 8},
	}
	for _, adv := range mobilegossip.AdversaryKinds() {
		schedules = append(schedules,
			mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4,
				Adversary: adv, AdvBudget: 10, AdvPeriod: 4},
			mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.04,
				Adversary: adv, AdvBudget: 10, AdvPeriod: 4},
		)
	}
	return schedules
}

func topoLabel(t mobilegossip.Topology) string {
	label := t.Kind.String()
	if t.Adversary != mobilegossip.AdvNone {
		label += "+" + t.Adversary.String()
	}
	return label
}

func TestDeltaDynamicConformance(t *testing.T) {
	const n, tau, rounds = 48, 2, 33
	for _, topo := range conformanceSchedules() {
		topo := topo
		t.Run(topoLabel(topo), func(t *testing.T) {
			dyn, err := topo.Build(n, tau, 77)
			if err != nil {
				t.Fatal(err)
			}
			dd, hasDelta := dyn.(dyngraph.DeltaDynamic)

			measured := dyngraph.Churn{Rounds: rounds, EffectiveTau: dyngraph.Infinite}
			g1 := dyn.At(1)
			if !g1.Connected() {
				t.Fatal("round 1 disconnected")
			}
			measured.MinEdges, measured.MaxEdges = g1.NumEdges(), g1.NumEdges()
			prev := g1.AppendPackedEdges(nil)
			lastChange := 0
			for r := 2; r <= rounds; r++ {
				g := dyn.At(r)
				if !g.Connected() {
					t.Fatalf("round %d disconnected", r)
				}
				cur := g.AppendPackedEdges(nil)
				wantAdd, wantRem := graph.DiffPacked(prev, cur, nil, nil)
				if hasDelta {
					d := dd.DeltaFor(r)
					if len(d.Added) != len(wantAdd) || len(d.Removed) != len(wantRem) {
						t.Fatalf("round %d: DeltaFor (+%d,-%d) vs graph diff (+%d,-%d)",
							r, len(d.Added), len(d.Removed), len(wantAdd), len(wantRem))
					}
					for i := range wantAdd {
						if d.Added[i] != wantAdd[i] {
							t.Fatalf("round %d: added[%d] = %v, want %v", r, i, d.Added[i], wantAdd[i])
						}
					}
					for i := range wantRem {
						if d.Removed[i] != wantRem[i] {
							t.Fatalf("round %d: removed[%d] = %v, want %v", r, i, d.Removed[i], wantRem[i])
						}
					}
				}
				if len(wantAdd) > 0 || len(wantRem) > 0 {
					measured.Changes++
					measured.Added += int64(len(wantAdd))
					measured.Removed += int64(len(wantRem))
					if lastChange > 0 && r-lastChange < measured.EffectiveTau {
						measured.EffectiveTau = r - lastChange
					}
					lastChange = r
				}
				if m := g.NumEdges(); m < measured.MinEdges {
					measured.MinEdges = m
				} else if m > measured.MaxEdges {
					measured.MaxEdges = m
				}
				prev = cur
			}

			// MeasureChurn on a throwaway instance agrees with the manual
			// replay (same seed → same schedule, delta path or diff path).
			fresh, err := topo.Build(n, tau, 77)
			if err != nil {
				t.Fatal(err)
			}
			if got := dyngraph.MeasureChurn(fresh, rounds); got != measured {
				t.Fatalf("MeasureChurn = %+v, manual replay = %+v", got, measured)
			}

			// The schedule honors its stability factor: changes never arrive
			// faster than every τ rounds.
			if measured.EffectiveTau != dyngraph.Infinite && measured.EffectiveTau < tau {
				t.Fatalf("effective τ %d beats the promised τ %d", measured.EffectiveTau, tau)
			}
		})
	}
}

// TestAdversaryKindEnumerators pins the AdversaryKind parse surface the
// same way TestEnumerators pins algorithms and topology kinds.
func TestAdversaryKindEnumerators(t *testing.T) {
	for _, k := range mobilegossip.AdversaryKinds() {
		got, err := mobilegossip.ParseAdversaryKind(k.String())
		if err != nil || got != k {
			t.Errorf("adversary %v does not round-trip: %v %v", k, got, err)
		}
	}
	if got, err := mobilegossip.ParseAdversaryKind("none"); err != nil || got != mobilegossip.AdvNone {
		t.Errorf(`ParseAdversaryKind("none") = %v, %v`, got, err)
	}
	if got, err := mobilegossip.ParseAdversaryKind(""); err != nil || got != mobilegossip.AdvNone {
		t.Errorf(`ParseAdversaryKind("") = %v, %v`, got, err)
	}
	if _, err := mobilegossip.ParseAdversaryKind("nope"); err == nil {
		t.Error("unknown adversary name parsed")
	}
	// A negative budget must be rejected, not read as unlimited.
	bad := mobilegossip.Topology{Kind: mobilegossip.Cycle,
		Adversary: mobilegossip.AdvCutRich, AdvBudget: -1}
	if _, err := bad.Build(16, 1, 1); err == nil {
		t.Error("negative AdvBudget built a schedule")
	}
	if names := mobilegossip.AdversaryKindNames(); names[0] != "none" || len(names) != 8 {
		t.Errorf("AdversaryKindNames() = %v", names)
	}
	var unknown mobilegossip.AdversaryKind = 99
	if s := unknown.String(); s != fmt.Sprintf("AdversaryKind(%d)", 99) {
		t.Errorf("unknown kind String() = %q", s)
	}
}
