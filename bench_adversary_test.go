package mobilegossip_test

// BenchmarkAdversaryRound measures one topology round of an adversarial
// schedule — pull the base epoch's packed edge list, run the strategy's
// cuts, repair connectivity, and maintain the CSR — comparing the same two
// CSR-maintenance strategies as BenchmarkDynamicRound:
//
//   - delta:   diff the effective edge lists and patch the previous
//     round's CSR in place (graph.Patcher) — the production path;
//   - rebuild: feed the effective edge list through graph.Builder from
//     scratch every round — the oracle baseline.
//
// The strategies span the catalogue's cost profiles: bipartition scans all
// edges obliviously, cutrich ranks all nodes against (here synthetic)
// state, blackout cuts one region episodically. The n=10000 delta rows are
// gated in CI alongside the engine and mobility suites.

import (
	"fmt"
	"testing"

	"mobilegossip/internal/adversary"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// benchReader is a cheap deterministic stand-in for live token state.
type benchReader struct{}

func (benchReader) TokenCount(u int) int { return (u * 2654435761) % 17 }

func BenchmarkAdversaryRound(b *testing.B) {
	strats := []struct {
		name   string
		mk     func(n int) adversary.Strategy
		budget func(n int) int
	}{
		{"bipartition", func(int) adversary.Strategy { return adversary.Bipartition() }, func(int) int { return 0 }},
		{"cutrich", func(int) adversary.Strategy { return adversary.CutRich() }, func(n int) int { return n / 8 }},
		{"blackout", func(int) adversary.Strategy { return adversary.Blackout(4, 8) }, func(int) int { return 0 }},
	}
	for _, n := range []int{10000, 100000} {
		base := graph.RandomRegular(n, 8, prand.New(31))
		for _, s := range strats {
			for _, mode := range []struct {
				name    string
				rebuild bool
			}{{"delta", false}, {"rebuild", true}} {
				b.Run(fmt.Sprintf("%s_n%d_%s", s.name, n, mode.name), func(b *testing.B) {
					e := adversary.New(dyngraph.NewStatic(base), s.mk(n), adversary.Options{
						Tau: 1, Seed: 37, Budget: s.budget(n), Rebuild: mode.rebuild,
					})
					e.Bind(benchReader{})
					e.At(1) // materialize round 1 outside the timer
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.At(i + 2)
					}
				})
			}
		}
	}
}
