package mobilegossip_test

// Tests for the observer pipeline: the provided observers must agree with
// the legacy hooks and with the engine's own meters.

import (
	"bytes"
	"context"
	"testing"

	"mobilegossip"
)

// TestObserverLifecycle checks BeginRun/EndRound/EndRun ordering and
// counts against a plain run.
func TestObserverLifecycle(t *testing.T) {
	type event struct {
		kind  string
		round int
	}
	var events []event
	obs := &recordingObserver{on: func(kind string, round int) {
		events = append(events, event{kind, round})
	}}
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 16, K: 4,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Seed:      2,
		Observers: []mobilegossip.Observer{obs},
	}
	res, err := mobilegossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Rounds+2 {
		t.Fatalf("%d events for a %d-round run, want begin + rounds + end", len(events), res.Rounds)
	}
	if events[0].kind != "begin" || events[0].round != 0 {
		t.Fatalf("first event %+v", events[0])
	}
	for i := 1; i <= res.Rounds; i++ {
		if events[i].kind != "round" || events[i].round != i {
			t.Fatalf("event %d = %+v", i, events[i])
		}
	}
	if last := events[len(events)-1]; last.kind != "end" || last.round != res.Rounds {
		t.Fatalf("last event %+v", last)
	}
}

type recordingObserver struct {
	mobilegossip.NopObserver
	on func(kind string, round int)
}

func (r *recordingObserver) BeginRun(sim *mobilegossip.Simulation) { r.on("begin", sim.Round()) }
func (r *recordingObserver) EndRound(s mobilegossip.RoundStats)    { r.on("round", s.Round) }
func (r *recordingObserver) EndRun(res mobilegossip.Result)        { r.on("end", res.Rounds) }

// TestPotentialSamplerMatchesOnRound: the sampler observer and the legacy
// OnRound hook must see identical φ values.
func TestPotentialSamplerMatchesOnRound(t *testing.T) {
	sampler := mobilegossip.NewPotentialSampler(1)
	var legacy []int
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 12, K: 3,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.Complete},
		Seed:      5,
		OnRound:   func(r, phi int) { legacy = append(legacy, phi) },
		Observers: []mobilegossip.Observer{sampler},
	}
	if _, err := mobilegossip.Run(cfg); err != nil {
		t.Fatal(err)
	}
	samples := sampler.Samples()
	if len(samples) == 0 || samples[0].Round != 0 {
		t.Fatalf("sampler missing the round-0 sample: %+v", samples)
	}
	per := samples[1:] // drop the BeginRun sample; every=1 then mirrors OnRound
	// The final round appears once from every=1 and is not duplicated.
	if len(per) != len(legacy) {
		t.Fatalf("sampler has %d per-round samples, OnRound saw %d", len(per), len(legacy))
	}
	for i, s := range per {
		if s.Potential != legacy[i] || s.Round != i+1 {
			t.Fatalf("sample %d = %+v, legacy φ=%d", i, s, legacy[i])
		}
	}
}

// TestPotentialSamplerFinalRound: the curve must end at the final round
// even when MaxRounds stops the run between sampling points.
func TestPotentialSamplerFinalRound(t *testing.T) {
	sampler := mobilegossip.NewPotentialSampler(20)
	res, err := mobilegossip.Run(mobilegossip.Config{
		Algorithm: mobilegossip.AlgBlindMatch, N: 32, K: 32,
		Topology: mobilegossip.Topology{Kind: mobilegossip.DoubleStar},
		Seed:     4, MaxRounds: 50,
		Observers: []mobilegossip.Observer{sampler},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved || res.Rounds != 50 {
		t.Fatalf("want an aborted 50-round run, got %+v", res)
	}
	samples := sampler.Samples()
	last := samples[len(samples)-1]
	if last.Round != 50 || last.Potential != res.FinalPotential {
		t.Fatalf("curve ends at %+v, want round 50 φ=%d", last, res.FinalPotential)
	}
}

// TestTraceObserverMatchesTraceWriter: the observer and the legacy field
// must produce byte-identical event streams.
func TestTraceObserverMatchesTraceWriter(t *testing.T) {
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 14, K: 3,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Seed:     6,
	}
	var legacy bytes.Buffer
	lcfg := cfg
	lcfg.TraceWriter = &legacy
	if _, err := mobilegossip.Run(lcfg); err != nil {
		t.Fatal(err)
	}

	var observed bytes.Buffer
	to := mobilegossip.NewTraceObserver(&observed)
	ocfg := cfg
	ocfg.Observers = []mobilegossip.Observer{to}
	if _, err := mobilegossip.Run(ocfg); err != nil {
		t.Fatal(err)
	}
	if to.Err() != nil {
		t.Fatal(to.Err())
	}
	if to.Events() == 0 {
		t.Fatal("trace observer recorded nothing")
	}
	if !bytes.Equal(legacy.Bytes(), observed.Bytes()) {
		t.Fatal("TraceObserver and TraceWriter event streams differ")
	}
}

// TestChurnMeterMatchesResult: the meter must agree with the engine's own
// churn accounting.
func TestChurnMeterMatchesResult(t *testing.T) {
	cm := mobilegossip.NewChurnMeter()
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 60, K: 4,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.03},
		Tau:       1,
		Seed:      7,
		Observers: []mobilegossip.Observer{cm},
	}
	res, err := mobilegossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cm.EdgesAdded() != res.EdgesAdded || cm.EdgesRemoved() != res.EdgesRemoved {
		t.Fatalf("meter ±%d/%d, result ±%d/%d",
			cm.EdgesAdded(), cm.EdgesRemoved(), res.EdgesAdded, res.EdgesRemoved)
	}
	if cm.Rounds() != res.Rounds {
		t.Fatalf("meter saw %d rounds, result has %d", cm.Rounds(), res.Rounds)
	}
	if cm.Changes() == 0 {
		t.Fatal("a τ=1 mobility run should change topology")
	}
}

// TestObserveMidRun: observers attached mid-run see only subsequent
// rounds (and no BeginRun).
func TestObserveMidRun(t *testing.T) {
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 16, K: 4,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Seed:     8,
	}
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var events []string
	sim.Observe(&recordingObserver{on: func(kind string, round int) {
		events = append(events, kind)
	}})
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := res.Rounds - 3
	if len(events) != wantRounds+1 { // EndRounds + EndRun, no BeginRun
		t.Fatalf("mid-run observer saw %d events, want %d rounds + end", len(events), wantRounds)
	}
	if events[0] != "round" || events[len(events)-1] != "end" {
		t.Fatalf("event kinds: %v", events)
	}
}
