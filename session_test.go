package mobilegossip_test

// Tests for the stateful session API: New+Step loops, Run(ctx)
// cancellation, and checkpoint/resume must all reproduce the legacy
// blocking Run byte-for-byte, for every algorithm on static, τ-dynamic and
// mobility topologies.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"mobilegossip"
)

// sessionMatrix is the algorithm × topology grid the ISSUE's acceptance
// criteria name. CrowdedBin requires a static topology, so its dynamic
// cell runs the mobility schedule frozen (Tau = 0) instead of τ-dynamic.
func sessionMatrix() []mobilegossip.Config {
	static := mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}
	dynamic := mobilegossip.Topology{Kind: mobilegossip.Cycle}
	mobile := mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.03}

	var cfgs []mobilegossip.Config
	for _, alg := range []mobilegossip.Algorithm{
		mobilegossip.AlgBlindMatch,
		mobilegossip.AlgSharedBit,
		mobilegossip.AlgSimSharedBit,
	} {
		cfgs = append(cfgs,
			mobilegossip.Config{Algorithm: alg, N: 20, K: 4, Topology: static, Seed: 11},
			mobilegossip.Config{Algorithm: alg, N: 16, K: 3, Topology: dynamic, Tau: 2, Seed: 12},
			mobilegossip.Config{Algorithm: alg, N: 40, K: 4, Topology: mobile, Tau: 1, Seed: 13},
		)
	}
	cfgs = append(cfgs,
		mobilegossip.Config{Algorithm: mobilegossip.AlgCrowdedBin, N: 20, K: 4, Topology: static, Seed: 14},
		mobilegossip.Config{Algorithm: mobilegossip.AlgCrowdedBin, N: 40, K: 4, Topology: mobile, Seed: 15},
		// ε-gossip and the multi-bit generalization ride along for coverage.
		mobilegossip.Config{Algorithm: mobilegossip.AlgSharedBit, N: 16, K: 16,
			Topology: mobilegossip.Topology{Kind: mobilegossip.Complete}, Epsilon: 0.5, Seed: 16},
		mobilegossip.Config{Algorithm: mobilegossip.AlgSharedBit, N: 20, K: 4,
			Topology: static, TagBits: 4, Tau: 1, Seed: 17},
	)
	// Every adversary strategy gets a cell: the step/checkpoint/resume
	// invariants must hold under adversarial topologies too — including the
	// adaptive strategies, whose cuts depend on the live token state, and
	// the mobility composition (adversary perturbing a moving crowd).
	for i, adv := range mobilegossip.AdversaryKinds() {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: 24, K: 4,
			Topology: mobilegossip.Topology{
				Kind: mobilegossip.RandomRegular, Degree: 4,
				Adversary: adv, AdvBudget: 12, AdvPeriod: 4,
			},
			Tau: 1, Seed: uint64(30 + i),
		})
	}
	cfgs = append(cfgs,
		// Adaptive adversary over a moving crowd (the full composition).
		mobilegossip.Config{Algorithm: mobilegossip.AlgSimSharedBit, N: 32, K: 3,
			Topology: mobilegossip.Topology{
				Kind: mobilegossip.MobileWaypoint, Speed: 0.03,
				Adversary: mobilegossip.AdvCutRich, AdvBudget: 10,
			},
			Tau: 1, Seed: 38},
		// Frozen sabotage: a statically perturbed topology (τ = ∞), which
		// is what lets CrowdedBin run under an adversary.
		mobilegossip.Config{Algorithm: mobilegossip.AlgCrowdedBin, N: 24, K: 4,
			Topology: mobilegossip.Topology{
				Kind: mobilegossip.RandomRegular, Degree: 4,
				Adversary: mobilegossip.AdvBipartition,
			},
			Seed: 39},
	)
	return cfgs
}

func cfgName(cfg mobilegossip.Config) string {
	name := fmt.Sprintf("%v_%v_tau%d_eps%v_b%d", cfg.Algorithm, cfg.Topology.Kind, cfg.Tau, cfg.Epsilon, cfg.TagBits)
	if cfg.Topology.Adversary != mobilegossip.AdvNone {
		name += "_adv" + cfg.Topology.Adversary.String()
	}
	return name
}

// TestSessionMatchesRun checks that New+Step and New+Run(ctx) reproduce
// the blocking Run exactly on the full matrix.
func TestSessionMatchesRun(t *testing.T) {
	for _, cfg := range sessionMatrix() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			want, err := mobilegossip.Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !want.Solved {
				t.Fatalf("baseline not solved in %d rounds", want.Rounds)
			}

			// Manual step loop.
			sim, err := mobilegossip.New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			steps := 0
			for !sim.Done() {
				stats, err := sim.Step()
				if err != nil {
					t.Fatalf("Step %d: %v", steps, err)
				}
				steps++
				if stats.Round != steps {
					t.Fatalf("round %d reported as %d", steps, stats.Round)
				}
				if steps > want.Rounds {
					t.Fatalf("step loop ran past the baseline's %d rounds", want.Rounds)
				}
			}
			if got := sim.Result(); got != want {
				t.Fatalf("Step loop diverged:\n got %+v\nwant %+v", got, want)
			}
			if sim.Round() != want.Rounds || sim.Potential() != want.FinalPotential {
				t.Fatalf("accessors diverged: round %d φ %d", sim.Round(), sim.Potential())
			}
			if _, err := sim.Step(); !errors.Is(err, mobilegossip.ErrSimulationDone) {
				t.Fatalf("Step after done: err = %v", err)
			}

			// Context-driven run.
			sim2, err := mobilegossip.New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			got2, err := sim2.Run(context.Background())
			if err != nil {
				t.Fatalf("Run(ctx): %v", err)
			}
			if got2 != want {
				t.Fatalf("Run(ctx) diverged:\n got %+v\nwant %+v", got2, want)
			}
		})
	}
}

// TestCheckpointResumeMatchesRun checkpoints every matrix cell mid-run and
// checks the resumed session finishes byte-identically — and that the
// original session, stepping on past its checkpoint, agrees too.
func TestCheckpointResumeMatchesRun(t *testing.T) {
	for _, cfg := range sessionMatrix() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			want, err := mobilegossip.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			at := want.Rounds / 2

			sim, err := mobilegossip.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < at; i++ {
				if _, err := sim.Step(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			var buf bytes.Buffer
			if err := sim.Checkpoint(&buf); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}

			// Checkpoints of identical state are byte-identical.
			var buf2 bytes.Buffer
			if err := sim.Checkpoint(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("two checkpoints of the same state differ")
			}

			resumed, err := mobilegossip.Resume(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if resumed.Round() != at {
				t.Fatalf("resumed at round %d, want %d", resumed.Round(), at)
			}
			gotResumed, err := resumed.Run(context.Background())
			if err != nil {
				t.Fatalf("resumed Run: %v", err)
			}
			if gotResumed != want {
				t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", gotResumed, want)
			}

			// The original session is unperturbed by having been checkpointed.
			gotOrig, err := sim.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if gotOrig != want {
				t.Fatalf("original run diverged after checkpoint:\n got %+v\nwant %+v", gotOrig, want)
			}
		})
	}
}

// TestRunCancellation cancels a run mid-flight, checkpoints the partial
// session, and finishes it from the checkpoint — the blackout workflow.
func TestRunCancellation(t *testing.T) {
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgBlindMatch, N: 32, K: 8,
		Topology: mobilegossip.Topology{Kind: mobilegossip.DoubleStar}, Seed: 9,
	}
	want, err := mobilegossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rounds < 10 {
		t.Fatalf("baseline too short (%d rounds) to cancel meaningfully", want.Rounds)
	}

	ctx, cancel := context.WithCancel(context.Background())
	stopAt := want.Rounds / 3
	cfg2 := cfg
	cfg2.OnRound = func(r, _ int) {
		if r == stopAt {
			cancel()
		}
	}
	sim, err := mobilegossip.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := sim.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: err = %v, want context.Canceled", err)
	}
	if partial.Solved || partial.Rounds != stopAt {
		t.Fatalf("partial result %+v, want %d unsolved rounds", partial, stopAt)
	}
	if sim.Done() {
		t.Fatal("canceled simulation reports Done")
	}

	// Checkpoint the canceled session and finish it elsewhere.
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := mobilegossip.Resume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed-after-cancel diverged:\n got %+v\nwant %+v", got, want)
	}

	// And the canceled session itself can simply continue.
	got2, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Fatalf("continued-after-cancel diverged:\n got %+v\nwant %+v", got2, want)
	}
}

// TestResumeRejectsGarbage pins the version/format error contract.
func TestResumeRejectsGarbage(t *testing.T) {
	if _, err := mobilegossip.Resume(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, mobilegossip.ErrCheckpointFormat) {
		t.Fatalf("garbage: err = %v, want ErrCheckpointFormat", err)
	}
	// A truncated but well-started stream must fail loudly, not panic.
	cfg := mobilegossip.Config{Algorithm: mobilegossip.AlgSharedBit, N: 8, K: 2, Seed: 1}
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := mobilegossip.Resume(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint resumed without error")
	}
}

// TestCheckpointBeforeStartAndAfterFinish covers the boundary rounds.
func TestCheckpointBeforeStartAndAfterFinish(t *testing.T) {
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 16, K: 4,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}, Seed: 3,
	}
	want, err := mobilegossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round 0: a checkpoint before any step is a (fat) way to spell New.
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := mobilegossip.Resume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := resumed.Run(context.Background()); err != nil || got != want {
		t.Fatalf("round-0 resume: %v %+v", err, got)
	}

	// After completion: the resumed session is immediately Done with the
	// same Result.
	if _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	final, err := mobilegossip.Resume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done() {
		t.Fatal("resumed finished run not Done")
	}
	if got := final.Result(); got != want {
		t.Fatalf("resumed final result %+v, want %+v", got, want)
	}
}
