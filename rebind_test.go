package mobilegossip_test

// Tests for Simulation.Rebind: phased timelines (scenario files, DESIGN.md
// §15) switch topology and τ at round boundaries, and the switch must
// preserve every session invariant — determinism across engine workers,
// checkpoint/resume byte-compatibility, and the event-stream contract.

import (
	"bytes"
	"errors"
	"testing"

	"mobilegossip"
)

// stepTo advances the session to the target round, tolerating early
// completion.
func stepTo(t *testing.T, sim *mobilegossip.Simulation, target int) {
	t.Helper()
	for !sim.Done() && sim.Round() < target {
		if _, err := sim.Step(); err != nil && !errors.Is(err, mobilegossip.ErrSimulationDone) {
			t.Fatal(err)
		}
	}
}

// runPhased drives a two-phase run — waypoint for 10 rounds, then a
// rebind to a random-regular redraw — and returns the result.
func runPhased(t *testing.T, workers int) mobilegossip.Result {
	t.Helper()
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 40, K: 4,
		Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.03},
		Tau:      1, Seed: 21, EngineWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	stepTo(t, sim, 10)
	if err := sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}, 2); err != nil {
		t.Fatal(err)
	}
	stepTo(t, sim, 0x7fffffff)
	return sim.Result()
}

func TestRebindDeterministicAcrossWorkers(t *testing.T) {
	base := runPhased(t, 1)
	for _, workers := range []int{2, 7} {
		got := runPhased(t, workers)
		if got.Rounds != base.Rounds || got.Connections != base.Connections ||
			got.FinalPotential != base.FinalPotential || got.TokensMoved != base.TokensMoved {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, base)
		}
	}
}

func TestRebindUpdatesResultTopology(t *testing.T) {
	res := runPhased(t, 1)
	if res.Topology == "" || res.Topology == "mobility(waypoint(v=0.03),τ=1,r=0.2529)" {
		t.Fatalf("result should report the rebound topology, got %q", res.Topology)
	}
}

// TestRebindCheckpointResume: a checkpoint taken after a rebind carries
// the rebound schedule, so the resumed session finishes identically.
func TestRebindCheckpointResume(t *testing.T) {
	run := func(split int) (mobilegossip.Result, []byte) {
		sim, err := mobilegossip.New(mobilegossip.Config{
			Algorithm: mobilegossip.AlgSimSharedBit, N: 32, K: 3,
			Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.02},
			Tau:      1, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		stepTo(t, sim, 8)
		if err := sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.GNP, P: 0.2}, 1); err != nil {
			t.Fatal(err)
		}
		stepTo(t, sim, split)
		var ck bytes.Buffer
		if err := sim.Checkpoint(&ck); err != nil {
			t.Fatal(err)
		}
		stepTo(t, sim, 0x7fffffff)
		return sim.Result(), ck.Bytes()
	}
	want, ck := run(14)

	resumed, err := mobilegossip.Resume(bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	stepTo(t, resumed, 0x7fffffff)
	got := resumed.Result()
	if got.Rounds != want.Rounds || got.FinalPotential != want.FinalPotential ||
		got.Connections != want.Connections || got.Topology != want.Topology {
		t.Fatalf("resumed run diverged: %+v vs %+v", got, want)
	}

	// The resumed session must also accept further rebinds.
	resumed2, err := mobilegossip.Resume(bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed2.Rebind(mobilegossip.Topology{Kind: mobilegossip.Complete}, 0); err != nil {
		t.Fatal(err)
	}
	stepTo(t, resumed2, 0x7fffffff)
	if !resumed2.Result().Solved {
		t.Fatal("rebind-after-resume run did not solve on a complete graph")
	}
}

func TestRebindPublishesEvent(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgBlindMatch, N: 16, K: 2,
		Topology: mobilegossip.Topology{Kind: mobilegossip.Cycle}, Tau: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := sim.Bus().Subscribe(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventTopologyRebound},
	}, 16)
	defer sub.Close()
	stepTo(t, sim, 3)
	if err := sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.Complete}, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events():
		if ev.Type != mobilegossip.EventTopologyRebound || ev.Round != 3 {
			t.Fatalf("event = %+v", ev)
		}
		if ev.Topology == "" {
			t.Fatal("topology_rebound event should carry the new schedule name")
		}
	default:
		t.Fatal("no topology_rebound event published")
	}
}

func TestRebindRejectsCrowdedBinDynamic(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgCrowdedBin, N: 16, K: 2,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.Cycle}, 1)
	if !errors.Is(err, mobilegossip.ErrCrowdedBinTau) {
		t.Fatalf("err = %v, want ErrCrowdedBinTau", err)
	}
	// Static rebinds stay legal for CrowdedBin.
	if err := sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.Complete}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRebindRejectsBadTopology(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgBlindMatch, N: 16, K: 2,
		Topology: mobilegossip.Topology{Kind: mobilegossip.Cycle}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.Grid, Rows: 3, Cols: 3}, 0); err == nil {
		t.Fatal("a 3x3 grid cannot host 16 nodes; Rebind should refuse")
	}
	// The failed rebind must not have corrupted the session.
	stepTo(t, sim, 0x7fffffff)
	if !sim.Done() {
		t.Fatal("session did not finish after a rejected rebind")
	}
}
