package mobilegossip

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mobilegossip/internal/prand"
	"mobilegossip/internal/runner"
)

// SweepConfig describes a grid of gossip executions — the parallel
// counterpart of Config. Every point is run Trials times on a worker pool;
// per-run seeds are split deterministically from Seed, so a sweep's results
// are bit-identical regardless of Workers and of completion order.
type SweepConfig struct {
	// Points are the grid's parameter combinations, in output order. Each
	// point's Seed field is ignored: RunSweep overwrites it with the seed
	// split from SweepConfig.Seed for that (point, trial) cell, which is
	// what makes the sweep reproducible from one base seed.
	Points []Config
	// Trials is the per-point repetition count (default 1).
	Trials int
	// Seed is the base seed; all (point, trial) seeds derive from it via
	// prand.StreamSeed. 0 is a valid seed.
	Seed uint64
	// Workers bounds the pool; 0 means GOMAXPROCS.
	Workers int
	// OnProgress, if set, is called after every finished run with the
	// completed and total run counts. Calls are serialized.
	OnProgress func(done, total int)
}

// PointResult aggregates the trials of one sweep point.
type PointResult struct {
	// Config echoes the point (with Seed zeroed; per-run seeds are in Runs).
	Config Config
	// Runs holds the per-trial results in trial order.
	Runs []Result
	// Solved counts the trials that reached the objective.
	Solved int
	// MeanRounds, MinRounds, MaxRounds summarize Runs' round counts.
	MeanRounds float64
	MinRounds  int
	MaxRounds  int
	// MeanConnections and MeanTokensMoved summarize the engine meters.
	MeanConnections float64
	MeanTokensMoved float64
	// MeanEdgesAdded and MeanEdgesRemoved summarize the topology churn the
	// trials measured (nonzero only for delta-capable mobility schedules).
	MeanEdgesAdded   float64
	MeanEdgesRemoved float64
}

// SweepResult is a finished sweep.
type SweepResult struct {
	// Points holds one aggregate per SweepConfig.Points entry, in order.
	Points []PointResult
	// Seed echoes the base seed every cell seed was split from; together
	// with the point configs it makes any cell reproducible via SweepSeed.
	Seed uint64
	// Workers is the pool size the sweep actually used, as reported by the
	// runner that spawned the pool.
	Workers int
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
}

// RunSweep executes every (point, trial) cell of the grid on a worker pool
// and returns per-point aggregates in grid order. It is the parallel,
// multi-run counterpart of Run: same validation, same determinism-from-seed
// contract, with the per-cell seeds split from cfg.Seed so that any worker
// count yields identical results.
func RunSweep(cfg SweepConfig) (SweepResult, error) {
	return RunSweepContext(context.Background(), cfg)
}

// RunSweepContext is RunSweep with cancellation: when ctx is canceled, no
// further cells are dispatched, in-flight simulations abort at their next
// round boundary, and the context's error is returned.
func RunSweepContext(ctx context.Context, cfg SweepConfig) (SweepResult, error) {
	var sr SweepResult
	if len(cfg.Points) == 0 {
		return sr, fmt.Errorf("mobilegossip: RunSweep with no points")
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	rcfg := runner.Config{Workers: cfg.Workers, Seed: cfg.Seed, OnProgress: cfg.OnProgress}
	sr.Seed = cfg.Seed
	// Report the pool size from the runner itself so the two cannot drift.
	sr.Workers = rcfg.PoolSize(len(cfg.Points) * trials)

	start := time.Now()
	grid, err := runner.MapGridContext(ctx, rcfg,
		len(cfg.Points), trials,
		func(p, t int, seed uint64) (Result, error) {
			run := cfg.Points[p]
			run.Seed = seed
			if run.EngineWorkers == 0 {
				// The pool already saturates the machine; auto intra-run
				// parallelism would only oversubscribe it. An explicit
				// per-point EngineWorkers is honored (results are identical
				// either way — see Config.EngineWorkers).
				run.EngineWorkers = 1
			}
			sim, err := New(run)
			if err != nil {
				return Result{}, fmt.Errorf("point %d trial %d: %w", p, t, err)
			}
			res, err := sim.Run(ctx)
			if err != nil {
				return Result{}, fmt.Errorf("point %d trial %d: %w", p, t, err)
			}
			return res, nil
		})
	if err != nil {
		return sr, err
	}
	sr.Elapsed = time.Since(start)

	sr.Points = make([]PointResult, len(cfg.Points))
	for p := range cfg.Points {
		pt := PointResult{Config: cfg.Points[p], Runs: grid[p]}
		pt.Config.Seed = 0
		var rounds, conns, moved, added, removed float64
		for i, r := range pt.Runs {
			if r.Solved {
				pt.Solved++
			}
			rounds += float64(r.Rounds)
			conns += float64(r.Connections)
			moved += float64(r.TokensMoved)
			added += float64(r.EdgesAdded)
			removed += float64(r.EdgesRemoved)
			if i == 0 || r.Rounds < pt.MinRounds {
				pt.MinRounds = r.Rounds
			}
			if r.Rounds > pt.MaxRounds {
				pt.MaxRounds = r.Rounds
			}
		}
		nf := float64(len(pt.Runs))
		pt.MeanRounds = rounds / nf
		pt.MeanConnections = conns / nf
		pt.MeanTokensMoved = moved / nf
		pt.MeanEdgesAdded = added / nf
		pt.MeanEdgesRemoved = removed / nf
		sr.Points[p] = pt
	}
	return sr, nil
}

// sweepJSON is the BENCH_*.json document shape emitted by WriteJSON: one
// self-describing object with a schema tag, sweep-level metadata and a flat
// list of per-point aggregates, so plotting scripts and CI diffing tools
// can consume sweeps without knowing the Go types.
type sweepJSON struct {
	Schema    string          `json:"schema"`
	GoVersion string          `json:"go_version"`
	Seed      uint64          `json:"seed"`
	Workers   int             `json:"workers"`
	ElapsedMS int64           `json:"elapsed_ms"`
	Points    []sweepPointRow `json:"points"`
}

type sweepPointRow struct {
	Algorithm       string  `json:"algorithm"`
	Topology        string  `json:"topology"`
	N               int     `json:"n"`
	K               int     `json:"k"`
	Tau             int     `json:"tau,omitempty"`
	Epsilon         float64 `json:"epsilon,omitempty"`
	TagBits         int     `json:"tag_bits,omitempty"`
	Trials          int     `json:"trials"`
	Solved          int     `json:"solved"`
	MeanRounds      float64 `json:"mean_rounds"`
	MinRounds       int     `json:"min_rounds"`
	MaxRounds       int     `json:"max_rounds"`
	MeanConnections float64 `json:"mean_connections"`
	MeanTokensMoved float64 `json:"mean_tokens_moved"`
	EdgesAdded      float64 `json:"edges_added,omitempty"`
	EdgesRemoved    float64 `json:"edges_removed,omitempty"`
}

// SweepSchemaV1 and SweepSchemaV2 are the schema tags of the WriteJSON
// document. v2 added the sweep base seed and the per-point mean mobility
// churn (edges_added/edges_removed, dropped entirely by v1); consumers
// (cmd/benchgate) accept both.
const (
	SweepSchemaV1 = "mobilegossip/bench-v1"
	SweepSchemaV2 = "mobilegossip/bench-v2"
)

// WriteJSON emits the sweep as an indented BENCH-shaped JSON document
// (schema SweepSchemaV2).
func (sr *SweepResult) WriteJSON(w io.Writer) error {
	doc := sweepJSON{
		Schema:    SweepSchemaV2,
		GoVersion: runtime.Version(),
		Seed:      sr.Seed,
		Workers:   sr.Workers,
		ElapsedMS: sr.Elapsed.Milliseconds(),
	}
	for _, pt := range sr.Points {
		topo := pt.Config.Topology.Kind.String()
		if len(pt.Runs) > 0 {
			topo = pt.Runs[0].Topology
		}
		doc.Points = append(doc.Points, sweepPointRow{
			Algorithm:       pt.Config.Algorithm.String(),
			Topology:        topo,
			N:               pt.Config.N,
			K:               pt.Config.K,
			Tau:             pt.Config.Tau,
			Epsilon:         pt.Config.Epsilon,
			TagBits:         pt.Config.TagBits,
			Trials:          len(pt.Runs),
			Solved:          pt.Solved,
			MeanRounds:      pt.MeanRounds,
			MinRounds:       pt.MinRounds,
			MaxRounds:       pt.MaxRounds,
			MeanConnections: pt.MeanConnections,
			MeanTokensMoved: pt.MeanTokensMoved,
			EdgesAdded:      pt.MeanEdgesAdded,
			EdgesRemoved:    pt.MeanEdgesRemoved,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SweepSeed exposes the per-cell seed derivation RunSweep uses, so callers
// can reproduce any single cell of a sweep with Run: cell (point p, trial
// t) of a sweep over P points with T trials runs at seed
// SweepSeed(base, p*T+t).
func SweepSeed(base uint64, cell int) uint64 {
	return prand.StreamSeed(base, uint64(cell))
}
