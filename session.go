package mobilegossip

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"mobilegossip/internal/adversary"
	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/events"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/profile"
	"mobilegossip/internal/trace"
)

// tokenCounts adapts the run state onto adversary.StateReader.
type tokenCounts struct{ st *core.State }

func (t tokenCounts) TokenCount(u int) int { return t.st.Set(u).Len() }

// Simulation is a stateful gossip session: the stepwise, observable,
// cancelable and resumable form of Run. Construct with New (or Resume),
// then either drive the loop yourself —
//
//	sim, err := mobilegossip.New(cfg)
//	for !sim.Done() {
//	    stats, err := sim.Step()
//	    // inspect stats, sim.Potential(), sim.TokenCount(u), ...
//	}
//	res := sim.Result()
//
// — or hand the loop to Run(ctx), which steps to completion and honors
// context cancellation between rounds. A canceled run is not lost: the
// simulation stays at the round boundary it reached, and can be stepped
// further, run again, or serialized with Checkpoint and later revived with
// Resume on another process — byte-identically to an uninterrupted run.
//
// A Simulation is not safe for concurrent use; drive it from one
// goroutine (Config.Concurrent parallelism happens inside Step).
type Simulation struct {
	cfg   Config
	st    *core.State
	dyn   dyngraph.Dynamic
	proto mtm.Protocol // outermost protocol, possibly observer-wrapped
	parts protoParts
	eng   *mtm.Engine

	observers []Observer
	legacyRec *trace.Recorder // Config.TraceWriter recorder, for Run's error contract
	began     bool
	finished  bool

	bus          *events.Bus
	fanAttached  bool              // observer pipeline registered on the bus
	resumed      bool              // built by Resume: begin announces it
	adv          *adversary.Engine // non-nil when the schedule is adversarial
	lastAdvEpoch int               // last adversary epoch announced on the bus

	prof  *profile.Recorder      // timing sidecar (nil = profiling off)
	stall *profile.StallDetector // convergence watcher, driven by Step
}

// ErrSimulationDone is returned by Step once the run is over (objective
// reached or MaxRounds exhausted).
var ErrSimulationDone = errors.New("mobilegossip: simulation already finished")

// ErrBudgetExceeded reports that some connection exceeded the model's
// per-connection communication budget; Run surfaces it after the run ends.
var ErrBudgetExceeded = mtm.ErrBudgetExceeded

// New validates cfg and builds a simulation session positioned before
// round 1. The legacy Config.OnRound and Config.TraceWriter fields are
// honored by adapting them onto the observer pipeline; new code should
// attach Config.Observers (or call Observe) instead.
func New(cfg Config) (*Simulation, error) {
	if cfg.N < 2 {
		return nil, ErrBadN
	}
	if cfg.Assignment == nil && (cfg.K < 1 || cfg.K > cfg.N) {
		return nil, ErrBadK
	}
	if cfg.Epsilon != 0 {
		if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
			return nil, fmt.Errorf("mobilegossip: Epsilon %v outside (0,1)", cfg.Epsilon)
		}
		epsAlg := cfg.Algorithm == AlgSharedBit || cfg.Algorithm == AlgSimSharedBit
		if !epsAlg || (cfg.Assignment == nil && cfg.K != cfg.N) {
			return nil, ErrEpsilonRequires
		}
	}
	if cfg.TagBits >= 2 && cfg.Algorithm != AlgSharedBit {
		return nil, ErrTagBitsRequires
	}
	if cfg.TagBits > 64 || cfg.TagBits < 0 {
		return nil, fmt.Errorf("mobilegossip: TagBits %d outside [0, 64]", cfg.TagBits)
	}
	if cfg.Algorithm == AlgCrowdedBin && cfg.Tau > 0 {
		return nil, ErrCrowdedBinTau
	}
	if cfg.Topology.Kind == 0 {
		cfg.Topology.Kind = RandomRegular
	}
	if cfg.TransferEps <= 0 {
		nf := float64(cfg.N)
		cfg.TransferEps = 1 / (nf * nf * nf)
	}

	// With a custom Assignment, K is advisory and may be anything the
	// assignment implies — the canonical placement must not even be
	// computed from it (a hostile checkpoint can carry K < 0).
	var assign core.Assignment
	if cfg.Assignment != nil {
		assign = *cfg.Assignment
	} else {
		assign = core.OneTokenPerNode(cfg.N, cfg.K)
	}
	st, err := core.NewState(cfg.N, assign, cfg.TransferEps)
	if err != nil {
		return nil, err
	}

	dyn, err := cfg.Topology.Build(cfg.N, cfg.Tau, prand.Mix64(cfg.Seed^0x6c62272e07bb0142))
	if err != nil {
		return nil, err
	}

	parts, err := buildProtocol(cfg, st)
	if err != nil {
		return nil, err
	}

	s := &Simulation{cfg: cfg, st: st, dyn: dyn, proto: parts.proto, parts: parts,
		bus: events.NewBus(), lastAdvEpoch: -1}

	// Adaptive adversaries read the live token state; bind before round 1
	// so even the initial topology is shaped by the starting assignment.
	if adv, ok := dyn.(*adversary.Engine); ok {
		adv.Bind(tokenCounts{st})
		s.adv = adv
		s.lastAdvEpoch = adv.Epoch()
	}
	s.eng = mtm.NewEngine(dyn, s.proto, mtm.Config{
		Seed:       prand.Mix64(cfg.Seed ^ 0x51afd7ed558ccd6d),
		MaxRounds:  cfg.MaxRounds,
		Concurrent: cfg.Concurrent,
		Workers:    resolveEngineWorkers(cfg.EngineWorkers, cfg.N),
	})

	if cfg.Profile {
		s.EnableProfiling()
	}
	if cfg.OnRound != nil {
		s.Observe(onRoundObserver{fn: cfg.OnRound})
	}
	if cfg.TraceWriter != nil {
		to := NewTraceObserver(cfg.TraceWriter)
		s.legacyRec = to.rec
		s.Observe(to)
	}
	s.Observe(cfg.Observers...)
	return s, nil
}

// autoShardMinNodes is the shard size below which splitting a run stops
// paying: auto worker resolution caps the count so every shard keeps at
// least this many nodes (and n below it stays on the sequential path).
const autoShardMinNodes = 2048

// resolveEngineWorkers maps the Config.EngineWorkers knob to an exact
// mtm worker count: 0 = auto (GOMAXPROCS, shard-size capped), otherwise the
// requested count capped at n.
func resolveEngineWorkers(w, n int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if byN := n / autoShardMinNodes; byN < w {
			w = byN
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetEngineWorkers retunes the shard-parallel engine at a round boundary
// (same knob as Config.EngineWorkers: 0 = auto, 1 = sequential, ≥2 exact).
// Worker count changes wall-clock only, never results, so it is valid
// mid-run and on resumed sessions — checkpoints do not record it.
func (s *Simulation) SetEngineWorkers(w int) {
	s.cfg.EngineWorkers = w
	s.eng.SetWorkers(resolveEngineWorkers(w, s.cfg.N))
}

// Rebind swaps the session's topology schedule at a round boundary: the
// session-layer half of phased scenarios (DESIGN.md §15). The new
// schedule is built exactly as New builds one — same node count, same
// seed derivation — and replaces the old one wholesale: subsequent
// rounds query it at the session's global round number (mobility models
// fast-forward deterministically into position), adaptive adversaries in
// the new topology are bound to the live token state, and a
// topology_rebound event announces the swap on the bus.
//
// Token state, meters, RNG streams and the round counter are untouched,
// so a rebind composes with checkpoints: a snapshot taken after a rebind
// carries the new topology in its config block and resumes into the
// current phase; re-applying later phases is the caller's job (the
// scenario runner's, for spec-driven runs). Edge churn across the swap
// itself is not metered — the first post-rebind round reports only the
// churn its own schedule generates.
//
// The config seed cannot change mid-run (checkpoint identity depends on
// it), so Rebind takes only the topology and stability factor. It
// returns the validation errors New would (ErrCrowdedBinTau, topology
// build failures) and leaves the session unchanged on error.
func (s *Simulation) Rebind(topo Topology, tau int) error {
	if s.cfg.Algorithm == AlgCrowdedBin && tau > 0 {
		return ErrCrowdedBinTau
	}
	if topo.Kind == 0 {
		topo.Kind = RandomRegular
	}
	dyn, err := topo.Build(s.cfg.N, tau, prand.Mix64(s.cfg.Seed^0x6c62272e07bb0142))
	if err != nil {
		return err
	}
	s.cfg.Topology, s.cfg.Tau = topo, tau
	s.dyn = dyn
	s.adv, s.lastAdvEpoch = nil, -1
	if adv, ok := dyn.(*adversary.Engine); ok {
		adv.Bind(tokenCounts{s.st})
		s.adv = adv
		s.lastAdvEpoch = adv.Epoch()
	}
	s.eng.SetDynamic(dyn)
	s.bus.Publish(events.Event{
		Type: events.TypeTopologyRebound, Round: s.eng.Round(),
		Potential: s.st.Potential(), Topology: dyn.Name(),
	})
	return nil
}

// EnableProfiling attaches the timing sidecar at a round boundary (the
// Config.Profile knob in method form, for resumed sessions — checkpoints
// do not record it). Idempotent; profiling affects wall-clock only,
// never results. From the next Step on, the engine times every round
// into Profiler() and a round_profile event follows each
// round_completed.
func (s *Simulation) EnableProfiling() {
	if s.prof != nil {
		return
	}
	s.cfg.Profile = true
	s.prof = profile.NewRecorder()
	s.stall = profile.NewStallDetector(0, 0)
	s.eng.SetProfiler(s.prof)
}

// Profiler returns the session's timing recorder, or nil when profiling
// is off. Safe to read concurrently with a running session (the
// /metrics scrape path).
func (s *Simulation) Profiler() *profile.Recorder { return s.prof }

// Health returns the stall detector's latest convergence verdict
// (HealthUnknown when profiling is off or no round has completed).
func (s *Simulation) Health() profile.Health {
	if s.stall == nil {
		return profile.HealthUnknown
	}
	return s.stall.Health()
}

// Bus returns the session's event bus: every lifecycle event — session
// start/end/cancel, each completed round, churn, adversary epochs,
// checkpoint writes and resumes — is published on it as a typed
// events.Event (see DESIGN.md §12 for the taxonomy). Attach sinks
// (NewJSONLSink, NewMetricsCollector, NewEventRing) or subscribe
// directly; with no subscriber attached the bus costs the hot path
// nothing.
func (s *Simulation) Bus() *events.Bus { return s.bus }

// Observe attaches observers to the session. Observers attached before the
// first Step see the whole run; observers attached mid-run see the rounds
// from their attachment on (their BeginRun is skipped once the run has
// begun). Observers that tap the protocol layer (TraceObserver) take
// effect from the next round.
//
// Observers are delivered through the session's event bus: the first
// Observe call registers the pipeline as a synchronous, lossless bus
// subscriber, so observers and event sinks see the same stream in the
// same order — and legacy behavior (ordering, per-round stats, the
// final Result) is byte-identical to the pre-bus direct calls.
//
// Protocol-tapping observers record events from inside the engine's round
// phases, so under a parallel engine their per-round event order follows
// goroutine scheduling. Attaching one therefore drops an auto-resolved
// (EngineWorkers = 0) session back to the sequential engine, keeping trace
// streams byte-stable; an explicit EngineWorkers ≥ 2 is honored, with
// order-insensitive trace comparison left to the caller.
func (s *Simulation) Observe(obs ...Observer) {
	for _, o := range obs {
		if o == nil {
			continue
		}
		if pw, ok := o.(protocolWrapper); ok {
			s.proto = pw.wrapProtocol(s.proto)
			s.eng.SetProtocol(s.proto)
			if s.cfg.EngineWorkers == 0 {
				s.eng.SetWorkers(1)
			}
		}
		if !s.fanAttached {
			s.fanAttached = true
			s.bus.SubscribeSync(events.Filter{}, s.fanOut)
		}
		s.observers = append(s.observers, o)
	}
}

// begin publishes the session-start events exactly once per process
// session (a resumed simulation announces itself again, for its freshly
// attached subscribers); the observer fan turns the start event into
// the one-time BeginRun.
func (s *Simulation) begin() {
	if s.began {
		return
	}
	s.began = true
	s.bus.Publish(events.Event{
		Type: events.TypeSessionStart, Round: s.eng.Round(), Potential: s.st.Potential(),
		N: s.cfg.N, K: s.st.K(),
		Algorithm: s.cfg.Algorithm.String(), Topology: s.dyn.Name(),
	})
	if s.resumed {
		s.bus.Publish(events.Event{
			Type: events.TypeCheckpointResumed, Round: s.eng.Round(), Potential: s.st.Potential(),
		})
	}
}

// finish publishes the session-end event exactly once; the observer fan
// turns it into the one-time EndRun.
func (s *Simulation) finish() {
	if s.finished {
		return
	}
	s.finished = true
	res := s.Result()
	s.bus.Publish(events.Event{
		Type: events.TypeSessionEnd, Round: res.Rounds, Potential: res.FinalPotential,
		Solved: res.Solved, N: s.cfg.N, K: s.st.K(),
		Algorithm: res.Algorithm.String(), Topology: res.Topology,
		Connections: res.Connections, Proposals: res.Proposals,
		ControlBits: res.ControlBits, TokensMoved: res.TokensMoved,
		EdgesAdded: int(res.EdgesAdded), EdgesRemoved: int(res.EdgesRemoved),
	})
}

// Step executes exactly one round, feeds the observers, and returns the
// round's stats. Once the run is over (Done reports true) Step returns
// ErrSimulationDone — or the original failure, if an earlier round
// violated a model contract.
func (s *Simulation) Step() (RoundStats, error) {
	if s.eng.Finished() {
		if err := s.eng.Failed(); err != nil {
			return RoundStats{Round: s.eng.Round()}, err
		}
		s.finish()
		return RoundStats{Round: s.eng.Round(), Done: s.Done()}, ErrSimulationDone
	}
	s.begin()
	es, err := s.eng.Step()
	if err != nil {
		return RoundStats{Round: es.Round}, err
	}
	stats := RoundStats{
		Round:        es.Round,
		Potential:    s.st.Potential(),
		Connections:  es.Connections,
		Proposals:    es.Proposals,
		ControlBits:  es.ControlBits,
		TokensMoved:  es.TokensMoved,
		EdgesAdded:   es.EdgesAdded,
		EdgesRemoved: es.EdgesRemoved,
		Done:         es.Done,
	}
	// Per-round events, causal order: the topology perturbations that
	// shaped the round precede its completion summary. The observer
	// pipeline rides the same bus (see fanOut).
	if s.adv != nil {
		if e := s.adv.Epoch(); e != s.lastAdvEpoch {
			s.lastAdvEpoch = e
			s.bus.Publish(events.Event{Type: events.TypeAdversaryEpoch, Round: es.Round, Epoch: e})
		}
	}
	if es.EdgesAdded != 0 || es.EdgesRemoved != 0 {
		s.bus.Publish(events.Event{
			Type: events.TypeChurnApplied, Round: es.Round,
			EdgesAdded: es.EdgesAdded, EdgesRemoved: es.EdgesRemoved,
		})
	}
	s.bus.Publish(events.Event{
		Type: events.TypeRoundCompleted, Round: stats.Round, Potential: stats.Potential,
		Connections: int64(stats.Connections), Proposals: int64(stats.Proposals),
		ControlBits: stats.ControlBits, TokensMoved: stats.TokensMoved,
		EdgesAdded: stats.EdgesAdded, EdgesRemoved: stats.EdgesRemoved,
		Done: stats.Done,
	})
	if s.prof != nil {
		rp := s.prof.Last()
		h := s.stall.Observe(stats.Round, stats.Potential)
		s.bus.Publish(events.Event{
			Type: events.TypeRoundProfile, Round: stats.Round,
			RoundNanos:     rp.TotalNs,
			ChurnNanos:     rp.PhaseNs[profile.PhaseChurn],
			ProposalNanos:  rp.PhaseNs[profile.PhaseProposal],
			ExchangeNanos:  rp.PhaseNs[profile.PhaseExchange],
			ReductionNanos: rp.PhaseNs[profile.PhaseReduction],
			Workers:        rp.Workers,
			ImbalanceMilli: rp.ImbalanceMilli(),
			BarrierNanos:   rp.BarrierNs,
			Health:         h.String(),
		})
	}
	if s.eng.Finished() {
		s.finish()
	}
	return stats, nil
}

// Run steps the simulation to completion, checking ctx between rounds. On
// cancellation it returns the partial Result along with the context's
// error; the simulation remains at a round boundary and stays fully
// usable — step it further, Run again, or Checkpoint it.
func (s *Simulation) Run(ctx context.Context) (Result, error) {
	for !s.eng.Finished() {
		if err := ctx.Err(); err != nil {
			s.bus.Publish(events.Event{
				Type: events.TypeSessionCancel, Round: s.eng.Round(), Potential: s.st.Potential(),
			})
			return s.Result(), err
		}
		if _, err := s.Step(); err != nil {
			return s.Result(), err
		}
	}
	// A run poisoned by an earlier model-contract violation must not
	// report success (or fire EndRun) on a later Run call.
	if err := s.eng.Failed(); err != nil {
		return s.Result(), err
	}
	s.finish()
	res := s.Result()
	var err error
	if s.eng.OverBudget() {
		err = ErrBudgetExceeded
	}
	if err == nil && s.legacyRec != nil {
		err = s.legacyRec.Err()
	}
	return res, err
}

// Done reports whether the run is over: the objective was reached or
// MaxRounds elapsed. Result().Solved distinguishes the two.
func (s *Simulation) Done() bool {
	return s.eng.Finished()
}

// Round returns the number of rounds executed so far (counted from the
// checkpoint's round after a Resume — round numbering is global to the
// logical run, not to the process).
func (s *Simulation) Round() int { return s.eng.Round() }

// Potential returns the current potential φ = Σ_u (k − |T_u|).
func (s *Simulation) Potential() int { return s.st.Potential() }

// TokenCount returns the number of tokens node u currently knows.
func (s *Simulation) TokenCount(u int) int { return s.st.Set(u).Len() }

// N returns the network size.
func (s *Simulation) N() int { return s.st.N() }

// K returns the token count.
func (s *Simulation) K() int { return s.st.K() }

// Config returns the (normalized) configuration the session runs.
func (s *Simulation) Config() Config { return s.cfg }

// Result returns the run summary so far; it is final once Done reports
// true, and a valid partial summary at any round boundary before that.
func (s *Simulation) Result() Result {
	rr := s.eng.Result()
	return Result{
		Algorithm:      s.cfg.Algorithm,
		Topology:       s.dyn.Name(),
		Solved:         rr.Completed,
		Rounds:         rr.Rounds,
		Connections:    rr.Connections,
		Proposals:      rr.Proposals,
		ControlBits:    rr.ControlBits,
		TokensMoved:    rr.TokensMoved,
		EdgesAdded:     rr.EdgesAdded,
		EdgesRemoved:   rr.EdgesRemoved,
		FinalPotential: s.st.Potential(),
	}
}
