package mobilegossip

import (
	"math"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// TopologyInfo reports the structural parameters the paper's bounds are
// expressed in, for one instantiated topology.
type TopologyInfo struct {
	// Name is the generated graph's display name.
	Name string
	// N and Edges are the vertex and edge counts.
	N, Edges int
	// MaxDegree is Δ.
	MaxDegree int
	// Diameter is D.
	Diameter int
	// Alpha is the vertex expansion α: exact when AlphaExact, otherwise a
	// randomized local-search estimate (an upper bound on the true α).
	Alpha      float64
	AlphaExact bool
	// LogNOverAlpha is log₂(n)/α, the paper's diameter bound (Thm 6.2)
	// and the scale of most of its 1/α round-complexity terms.
	LogNOverAlpha float64
}

// Inspect instantiates the topology on n vertices and measures the
// parameters the paper's complexity bounds depend on: Δ, D and α. For
// n ≤ 22 the vertex expansion is computed exactly by subset enumeration;
// larger graphs get a randomized estimate (samples ≈ 2000) that upper
// bounds the true value.
func (t Topology) Inspect(n int, seed uint64) (TopologyInfo, error) {
	var info TopologyInfo
	dyn, err := t.Build(n, 0, seed)
	if err != nil {
		return info, err
	}
	g := dyn.At(1)
	return inspectGraph(g, seed)
}

// inspectGraph measures one static graph.
func inspectGraph(g *graph.Graph, seed uint64) (TopologyInfo, error) {
	diam, err := g.Diameter()
	if err != nil {
		return TopologyInfo{}, err
	}
	alpha, exact := g.ExactVertexExpansion()
	if !exact {
		alpha = g.EstimateVertexExpansion(2000, prand.New(prand.Mix64(seed^0xc2b2ae3d27d4eb4f)))
	}
	info := TopologyInfo{
		Name:       g.Name(),
		N:          g.N(),
		Edges:      g.NumEdges(),
		MaxDegree:  g.MaxDegree(),
		Diameter:   diam,
		Alpha:      alpha,
		AlphaExact: exact,
	}
	if alpha > 0 {
		info.LogNOverAlpha = math.Log2(float64(g.N())) / alpha
	}
	return info, nil
}

// InspectDynamic measures a τ-stable schedule built from the topology:
// α and Δ are taken as the worst (minimum α, maximum Δ) over the first
// `epochs` epochs, matching the paper's definition of dynamic-graph
// parameters (§2). Diameter is reported for the first epoch only (the
// paper does not define a dynamic diameter).
func (t Topology) InspectDynamic(n, tau, epochs int, seed uint64) (TopologyInfo, error) {
	var info TopologyInfo
	if tau <= 0 {
		return t.Inspect(n, seed)
	}
	if epochs < 1 {
		epochs = 1
	}
	dyn, err := t.Build(n, tau, seed)
	if err != nil {
		return info, err
	}
	info, err = inspectGraph(dyn.At(1), seed)
	if err != nil {
		return info, err
	}
	rng := prand.New(prand.Mix64(seed ^ 0x165667b19e3779f9))
	info.Alpha = dyngraph.Alpha(dyn, epochs, 2000, rng)
	info.AlphaExact = false
	info.MaxDegree = dyngraph.MaxDegree(dyn, epochs)
	if info.Alpha > 0 {
		info.LogNOverAlpha = math.Log2(float64(n)) / info.Alpha
	}
	return info, nil
}
