// Package mobilegossip is a library reproduction of Calvin Newport's
// "Gossip in a Smartphone Peer-to-Peer Network" (PODC 2017): the mobile
// telephone model of smartphone peer-to-peer networking and the paper's
// gossip algorithms — BlindMatch (b = 0), SharedBit and SimSharedBit
// (b = 1, dynamic topologies), CrowdedBin (b = 1, stable topologies), and
// SharedBit's relaxed ε-gossip mode.
//
// # Running a simulation
//
// The package-level Run function covers the common case — pick an
// algorithm, a topology family, sizes and a seed, and get round/connection
// counts back:
//
//	res, err := mobilegossip.Run(mobilegossip.Config{
//	    Algorithm: mobilegossip.AlgSharedBit,
//	    N:         128,
//	    K:         16,
//	    Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
//	    Seed:      1,
//	})
//
// Callers that need to own the loop use the stateful session API instead:
// New builds a *Simulation, Step executes one round, Run(ctx) steps to
// completion under context cancellation, observers (Config.Observers,
// Simulation.Observe) watch the run, and Checkpoint/Resume serialize the
// complete deterministic state so a run can be revived — in this process
// or another — byte-identically to an uninterrupted execution. See
// DESIGN.md §9 for the session lifecycle and checkpoint format.
//
// # Observability
//
// Every session publishes its lifecycle on a typed event bus
// (Simulation.Bus): session start/end/cancel, one round_completed event
// per round, topology churn, adversary epochs, and checkpoint
// writes/resumes. Subscribe with a filter for a bounded, non-blocking
// event queue, or attach the provided sinks — NewJSONLSink for a
// streaming JSONL log, NewEventRing for an in-memory ring with a query
// API, NewMetricsCollector for a Prometheus-style /metrics exporter
// (served by gossipsim -metrics). The bus costs the simulation hot path
// nothing while no subscriber is attached — a contract enforced by the
// gated bus-attached/bus-detached benchmark rows — and never blocks a
// round on a slow consumer: bounded queues drop and count instead. The
// event taxonomy and wire format are documented in DESIGN.md §12.
//
// The internal packages expose the full machinery (engine, graph
// generators, dynamic schedules, Transfer(ε), leader election, PPUSH) for
// programs within this module; see DESIGN.md for the map.
package mobilegossip
