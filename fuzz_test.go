package mobilegossip_test

// Native Go fuzz targets for the public decoding surfaces: checkpoint
// resumption and the name parsers. The contract under fuzz is uniform —
// hostile input yields an error, never a panic. CI runs each target for a
// short -fuzztime smoke; testdata/fuzz holds the committed seed corpus.

import (
	"bytes"
	"strings"
	"testing"

	"mobilegossip"
	"mobilegossip/internal/ckpt"
)

// checkpointBytes produces a real checkpoint to seed the corpus: a small
// adversarially jammed mobility run snapshotted mid-flight, which reaches
// every section of the stream format.
func checkpointBytes(tb testing.TB, rounds int) []byte {
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 24, K: 3,
		Topology: mobilegossip.Topology{
			Kind: mobilegossip.MobileWaypoint, Speed: 0.03,
			Adversary: mobilegossip.AdvCutRich, AdvBudget: 6,
		},
		Tau: 1, Seed: 99,
	}
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rounds && !sim.Done(); i++ {
		if _, err := sim.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// resumeFuzzN peeks at the checkpointed network size so the fuzz target can
// skip inputs whose (possibly mutated) config would make Resume allocate a
// huge-but-structurally-valid simulation; the robustness property under
// test is decode safety, not large-run throughput.
func resumeFuzzN(data []byte) (int, bool) {
	r := ckpt.NewReader(bytes.NewReader(data))
	if r.String() != "mobilegossip/checkpoint" {
		return 0, r.Err() == nil
	}
	_ = r.U64() // version
	r.Section("config")
	_ = r.Int() // algorithm
	n := r.Int()
	return n, r.Err() == nil
}

// FuzzResume feeds arbitrary bytes to mobilegossip.Resume: malformed,
// truncated, or bit-flipped checkpoints must all return errors, not panic.
func FuzzResume(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("mobilegossip/checkpoint"))
	full := checkpointBytes(f, 10)
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-1])
	f.Add(checkpointBytes(f, 0))
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if n, ok := resumeFuzzN(data); ok && (n < 0 || n > 4096) {
			t.Skip("structurally valid header with an out-of-scope network size")
		}
		sim, err := mobilegossip.Resume(bytes.NewReader(data))
		if err == nil && sim == nil {
			t.Fatal("Resume returned neither a simulation nor an error")
		}
	})
}

// FuzzParseNames exercises the three name parsers (the CLI flag surface):
// any string either resolves to a value that round-trips through String, or
// errors with the valid-name list.
func FuzzParseNames(f *testing.F) {
	for _, s := range []string{"", "sharedbit", "waypoint", "bipartition", "none",
		"SharedBit", "gnp\x00", "cutrich ", strings.Repeat("x", 300)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if a, err := mobilegossip.ParseAlgorithm(s); err == nil {
			if a.String() != s {
				t.Fatalf("algorithm %q does not round-trip (got %q)", s, a.String())
			}
		} else if !strings.Contains(err.Error(), "sharedbit") {
			t.Fatalf("algorithm error does not list valid names: %v", err)
		}
		if k, err := mobilegossip.ParseTopologyKind(s); err == nil {
			if k.String() != s {
				t.Fatalf("topology %q does not round-trip (got %q)", s, k.String())
			}
		} else if !strings.Contains(err.Error(), "waypoint") {
			t.Fatalf("topology error does not list valid names: %v", err)
		}
		if k, err := mobilegossip.ParseAdversaryKind(s); err == nil {
			if s != "" && k.String() != s {
				t.Fatalf("adversary %q does not round-trip (got %q)", s, k.String())
			}
		} else if !strings.Contains(err.Error(), "cutrich") {
			t.Fatalf("adversary error does not list valid names: %v", err)
		}
	})
}
