package mobilegossip_test

import (
	"context"
	"fmt"

	"mobilegossip"
)

// The simplest complete use: gossip 4 tokens among 32 phones with the
// paper's SharedBit algorithm on a topology that changes every round.
func ExampleRun() {
	res, err := mobilegossip.Run(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         32,
		K:         4,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Tau:       1,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("solved:", res.Solved)
	fmt.Println("within O(kn) bound:", res.Rounds <= 4*32)
	// Output:
	// solved: true
	// within O(kn) bound: true
}

// ε-gossip (§7): every node starts with a token but only a majority
// quorum needs mutual knowledge — much cheaper than full gossip.
func ExampleRun_epsilonGossip() {
	res, err := mobilegossip.Run(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         32,
		K:         32, // ε-gossip assumes k = n
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Tau:       1,
		Epsilon:   0.6,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("quorum reached:", res.Solved)
	// Output:
	// quorum reached: true
}

// Inspect reports the structural parameters (Δ, D, α) every bound in the
// paper is expressed in. The double-star is the paper's Ω(Δ²) lower-bound
// construction: half the vertices hang off each of two adjacent hubs.
func ExampleTopology_Inspect() {
	info, err := (mobilegossip.Topology{Kind: mobilegossip.DoubleStar}).Inspect(16, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Δ=%d D=%d α=%.4f exact=%v\n",
		info.MaxDegree, info.Diameter, info.Alpha, info.AlphaExact)
	// Output:
	// Δ=8 D=3 α=0.1250 exact=true
}

// Every session publishes its lifecycle on a typed event bus. Attach a
// ring sink (or a JSONL sink, a metrics collector, or a raw filtered
// subscription) before running, then query what happened — here, how
// the potential φ fell over the first rounds and how the run ended.
func ExampleSimulation_Bus() {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         32,
		K:         4,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Tau:       1,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ring := mobilegossip.NewEventRing(1024)
	ring.Attach(sim.Bus(), mobilegossip.EventFilter{})
	if _, err := sim.Run(context.Background()); err != nil {
		fmt.Println("error:", err)
		return
	}

	for _, ev := range ring.Events(mobilegossip.EventFilter{
		Types:    []mobilegossip.EventType{mobilegossip.EventRoundCompleted},
		MaxRound: 2,
	}) {
		fmt.Printf("round %d: φ=%d\n", ev.Round, ev.Potential)
	}
	end := ring.Events(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventSessionEnd},
	})[0]
	fmt.Println(end.Type, end.Solved)
	// Output:
	// round 1: φ=122
	// round 2: φ=120
	// session_end true
}

// ParseAlgorithm resolves the names printed by Algorithm.String, which is
// how cmd/gossipsim maps its -alg flag.
func ExampleParseAlgorithm() {
	alg, err := mobilegossip.ParseAlgorithm("crowdedbin")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(alg == mobilegossip.AlgCrowdedBin)
	// Output:
	// true
}
