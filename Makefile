# Targets mirror .github/workflows/ci.yml step for step, so a green local
# `make ci` means a green CI run and the two can't drift. (Exceptions: lint
# soft-skips when staticcheck isn't installed, and bench-gate compares
# against BENCH_core.json, whose ns/op baselines are machine-dependent —
# refresh with `make bench-baseline` on the machine you gate on.)

GO ?= go
BENCHTIME ?= 500x
TOLERANCE ?= 0.15
FUZZTIME ?= 10s
# Ratcheted coverage floor: 86.2% measured over . ./internal/... at merge
# time (see `make cover`); raise it when coverage rises, never lower it to
# make a PR pass. (The floor sits a few tenths under the measurement: the
# daemon's concurrency tests cover a few timing-dependent branches.)
COVER_MIN ?= 86.0

.PHONY: all build vet fmt lint test race race-concurrent cover fuzz bench bench-core bench-gate bench-baseline determinism-matrix determinism-remote scenario-conformance load-test examples docs docs-verify ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) if any file needs reformatting, and prints the list.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs staticcheck exactly as the CI build job does. Locally it
# soft-skips when the binary is missing so `make ci` stays runnable on
# fresh machines; CI always installs and runs it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
		echo "      (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# race-concurrent runs every parallel engine path — the mtm concurrent
# backend, the shard-parallel round engine (including the root package's
# n=10k all-algorithms/all-adversaries workload), the adversary schedules
# driven through them, the observer/trace layers that tap them, the
# profiling read side (live /metrics scrapes and histogram reads against
# a profiled parallel session), and the daemon's full-service traffic mix
# (create/step/evict/revive/follow/delete under concurrent scrapes) —
# un-shortened under the race detector.
race-concurrent:
	$(GO) test -race -count=1 -run 'Concurrent|Backends|Sharded|EngineWorkers|Bus|Sink|Collector' \
		. ./internal/mtm ./internal/adversary ./internal/trace ./internal/leader ./internal/events ./internal/profile \
		./internal/daemon

# cover enforces the ratcheted coverage floor (COVER_MIN, measured at merge
# time) over the library surface — the root package and internal/... (cmd/
# mains and examples/ are exercised end-to-end by the examples and
# checkpoint-determinism jobs instead; counting their 0% unit coverage here
# would punish adding scenarios).
cover:
	$(GO) test -count=1 -coverprofile=cover.out . ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN{print (t+0 >= m+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "cover: total $$total% fell below the ratcheted minimum $(COVER_MIN)%"; exit 1; \
	fi

# fuzz smokes every native fuzz target for FUZZTIME each, seeded by the
# committed corpora under testdata/fuzz (go test -fuzz takes one target per
# package invocation, hence the loop spelled out).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReaderRaw -fuzztime=$(FUZZTIME) ./internal/ckpt
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/ckpt
	$(GO) test -run='^$$' -fuzz=FuzzResume -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzParseNames -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzParseIntList -fuzztime=$(FUZZTIME) ./cmd/gossipsim
	$(GO) test -run='^$$' -fuzz=FuzzCreateRequest -fuzztime=$(FUZZTIME) ./internal/daemon
	$(GO) test -run='^$$' -fuzz=FuzzScenarioSpec -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz=FuzzEventsQuery -fuzztime=$(FUZZTIME) ./internal/daemon

# bench is the CI smoke configuration: compile and run every benchmark
# exactly once so regressions in the hot gossip loops surface per-PR
# without benchmark-grade runtimes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-core runs the fixed-round suites the regression gate consumes
# (fixed BENCHTIME so baseline and fresh runs execute the same round
# distribution): the EngineRound simulation core plus the DynamicRound and
# AdversaryRound delta-vs-rebuild suites at n=10k (the n=100k rows exist
# for manual runs — `go test -bench=BenchmarkDynamicRound` — but are too
# slow to gate per-PR).
BENCH_PATTERN := 'BenchmarkEngineRound|Benchmark(Dynamic|Adversary)Round/.*_n10000_'
bench-core:
	$(GO) test -bench=$(BENCH_PATTERN) -benchmem -benchtime=$(BENCHTIME) -run='^$$' . | tee bench-core.txt

# bench-gate compares a fresh bench-core run against the committed
# BENCH_core.json baseline (±15% ns/op and allocs/op; a 0-alloc baseline
# admits no allocations) and records the fresh numbers for inspection.
# The -ratio pin holds the profiled session row to ≤1.25× the unprofiled
# one within the same fresh run — a machine-independent bound on the
# profiling-overhead contract (DESIGN.md §13: measured overhead is within
# noise of zero). The pin is deliberately looser than the measured ≤5%:
# per-row noise on shared CI runners is ±20%, so a tight pin would flake;
# 1.25× still fails on any structural regression (an allocation or
# per-agent work sneaking into the profiled path).
bench-gate: bench-core
	$(GO) run ./cmd/benchgate -input bench-core.txt -baseline BENCH_core.json \
		-out BENCH_core.fresh.json -benchtime $(BENCHTIME) -tolerance $(TOLERANCE) \
		-ratio 'EngineRound/sess_prof_n2048_k1024,EngineRound/sess_n2048_k1024,1.25'

# bench-baseline rewrites BENCH_core.json from a fresh run; commit the
# result after intentional performance changes.
bench-baseline: bench-core
	$(GO) run ./cmd/benchgate -input bench-core.txt -out BENCH_core.json -benchtime $(BENCHTIME)

# determinism-matrix checks the engine's bit-reproducibility invariant
# over the whole (GOMAXPROCS × engine workers) grid in one reusable
# target, replacing the old per-invariant determinism and
# checkpoint-determinism snippets. At every cell of
# GOMAXPROCS ∈ {1,2,4,8} × workers ∈ {1,2,7}:
#   - the E1 (core sweeps), E22 (mobility schedules — motion, delta
#     patching and churn measurement) and E25 (adversarial schedules,
#     adaptive state reads included) tables must be byte-identical to the
#     first cell's tables (the sweep pool size also varies with
#     GOMAXPROCS, so pool scheduling is exercised too);
#   - a session checkpointed mid-run at that cell and resumed under the
#     *complementary* worker count (8−w: sequential ↔ sharded) must
#     reproduce the uninterrupted run byte-for-byte — sequential and
#     parallel engines write interchangeable checkpoints;
#   - the same run with -profile attached must print a byte-identical
#     result table (the "profile:" timing lines — the only output that
#     legitimately varies — are stripped): profiling never affects
#     simulation output (DESIGN.md §13).
determinism-matrix:
	$(GO) build -o dmx_benchtable ./cmd/benchtable
	$(GO) build -o dmx_gossipsim ./cmd/gossipsim
	@set -e; ref=""; \
	for gmp in 1 2 4 8; do for w in 1 2 7; do \
		echo "== GOMAXPROCS=$$gmp engineworkers=$$w"; \
		GOMAXPROCS=$$gmp ./dmx_benchtable -exp e1,e22,e25 -engineworkers $$w -csv > dmx_cell.csv; \
		GOMAXPROCS=$$gmp ./dmx_gossipsim -alg sharedbit -graph waypoint -n 2000 -k 8 -tau 1 -seed 5 \
			-engineworkers $$w -checkpoint dmx.ckpt -checkpointat 40 \
			| grep -v 'wall time\|checkpoint written' > dmx_full.txt; \
		GOMAXPROCS=$$gmp ./dmx_gossipsim -resume dmx.ckpt -engineworkers $$((8-$$w)) \
			| grep -v 'wall time\|resumed from' > dmx_resumed.txt; \
		cmp dmx_full.txt dmx_resumed.txt; \
		GOMAXPROCS=$$gmp ./dmx_gossipsim -alg sharedbit -graph waypoint -n 2000 -k 8 -tau 1 -seed 5 \
			-engineworkers $$w -profile \
			| grep -v 'wall time\|^profile' > dmx_prof.txt; \
		cmp dmx_full.txt dmx_prof.txt; \
		if [ -z "$$ref" ]; then \
			ref="gmp$$gmp-w$$w"; cp dmx_cell.csv dmx_ref.csv; cp dmx_full.txt dmx_ref_full.txt; \
		else \
			cmp dmx_ref.csv dmx_cell.csv; cmp dmx_ref_full.txt dmx_full.txt; \
		fi; \
	done; done; \
	rm -f dmx_benchtable dmx_gossipsim dmx.ckpt dmx_cell.csv dmx_ref.csv dmx_full.txt dmx_resumed.txt dmx_ref_full.txt dmx_prof.txt; \
	echo "determinism-matrix: E1/E22/E25 tables, mid-run checkpoints and profiled runs byte-identical across all 12 (GOMAXPROCS, workers) cells"

# determinism-remote is the matrix's service-boundary cell: the same
# simulation driven locally and through a live gossipd (gossipsim
# -remote) must print byte-identical result tables, write byte-identical
# event streams and mid-run checkpoints, and resume identically from an
# uploaded checkpoint — all while the daemon's idle timeout (300ms,
# against a 600ms -remotepause stall) forcibly evicts and revives the
# session mid-run, so the checkpoint round trip is exercised for real
# (the metrics grep fails the target if no eviction happened). Only
# wall-clock lines ("wall time", checkpoint/resume paths) are filtered.
determinism-remote:
	$(GO) build -o drm_gossipd ./cmd/gossipd
	$(GO) build -o drm_gossipsim ./cmd/gossipsim
	@set -e; rm -rf drm_state drm_addr drm_daemon.log; \
	./drm_gossipd -addr 127.0.0.1:0 -statedir drm_state -idletimeout 300ms -addrfile drm_addr 2> drm_daemon.log & \
	dpid=$$!; trap 'kill $$dpid 2>/dev/null' EXIT; \
	i=0; while [ ! -s drm_addr ]; do \
		i=$$((i+1)); \
		if [ $$i -gt 100 ]; then echo "gossipd never wrote drm_addr"; cat drm_daemon.log; exit 1; fi; \
		sleep 0.1; \
	done; \
	addr=$$(cat drm_addr); echo "== gossipd at $$addr"; \
	./drm_gossipsim -alg sharedbit -graph waypoint -n 500 -k 8 -tau 1 -seed 7 \
		-events drm_local.jsonl -checkpoint drm_local.ckpt -checkpointat 5 \
		| grep -v 'wall time\|checkpoint written' > drm_local.txt; \
	./drm_gossipsim -remote $$addr -remotepause 600ms \
		-alg sharedbit -graph waypoint -n 500 -k 8 -tau 1 -seed 7 \
		-events drm_remote.jsonl -checkpoint drm_remote.ckpt -checkpointat 5 \
		| grep -v 'wall time\|checkpoint written' > drm_remote.txt; \
	cmp drm_local.txt drm_remote.txt; \
	cmp drm_local.jsonl drm_remote.jsonl; \
	cmp drm_local.ckpt drm_remote.ckpt; \
	./drm_gossipsim -resume drm_local.ckpt -events drm_lr.jsonl \
		| grep -v 'wall time\|resumed from' > drm_lr.txt; \
	./drm_gossipsim -remote $$addr -remotepause 600ms -resume drm_remote.ckpt -events drm_rr.jsonl \
		| grep -v 'wall time\|resumed from' > drm_rr.txt; \
	cmp drm_lr.txt drm_rr.txt; \
	cmp drm_lr.jsonl drm_rr.jsonl; \
	curl -sf "http://$$addr/metrics" | grep -q '^gossipd_evictions_total [1-9]' \
		|| { echo "determinism-remote: daemon never evicted — the revival path went untested"; exit 1; }; \
	rm -rf drm_gossipd drm_gossipsim drm_state drm_addr drm_daemon.log \
		drm_local.txt drm_remote.txt drm_local.jsonl drm_remote.jsonl drm_local.ckpt drm_remote.ckpt \
		drm_lr.txt drm_rr.txt drm_lr.jsonl drm_rr.jsonl; \
	echo "determinism-remote: result tables, event streams and checkpoints byte-identical local vs -remote, across a forced mid-run evict/revive"

# scenario-conformance runs the golden-trace suite over the committed
# scenarios/ library: every scenario's tables, event streams and phase
# checkpoints are byte-compared against scenarios/golden/ across workers
# {1,7} and local vs a live gossipd, plus a mid-phase checkpoint/resume
# cell and a forced daemon evict/revive cell (TestConformanceEvictRevive
# fails if the eviction never happened). TestExampleParity pins the
# examples/ pointers to the same goldens. Regenerate after an intentional
# trace change with `go test -run TestGoldenConformance ./internal/scenario
# -update` and commit the new goldens.
scenario-conformance:
	$(GO) test -count=1 -timeout 10m -v \
		-run '^(TestGoldenConformance|TestConformanceEvictRevive|TestExampleParity)$$' \
		./internal/scenario

# load-test launches a real gossipd and drives a few hundred concurrent
# sessions through the client bindings (create → partial run → evict
# under a 40ms idle timeout and a 32-session cap → revive → finish),
# asserting zero lost or corrupted sessions and a throughput floor; see
# TestDaemonLoad for the full contract.
load-test:
	$(GO) build -o lt_gossipd ./cmd/gossipd
	MOBILEGOSSIP_LOADTEST=1 GOSSIPD_BIN=$(CURDIR)/lt_gossipd \
		$(GO) test -count=1 -run '^TestDaemonLoad$$' -v -timeout 10m ./internal/daemon
	rm -f lt_gossipd

# docs regenerates docs/cli.md from the CLIs' live -h output; docs-verify
# (run by the CI build job) fails when the committed reference has drifted
# from the flag definitions — add a flag, run `make docs`, commit both.
docs:
	$(GO) run ./cmd/clidoc -out docs/cli.md

docs-verify:
	$(GO) run ./cmd/clidoc -check docs/cli.md

# examples runs every examples/ scenario in -short mode, exactly as the CI
# build job does, so example drift breaks the build instead of rotting.
examples:
	@set -e; for ex in examples/*/; do \
		echo "== $$ex"; \
		$(GO) run "./$$ex" -short > /dev/null; \
	done
	@echo "examples: all scenarios ran clean in -short mode"

ci: build vet fmt lint docs-verify examples race race-concurrent test cover bench determinism-matrix determinism-remote scenario-conformance load-test bench-gate
	$(MAKE) fuzz FUZZTIME=5s
