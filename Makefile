# Targets mirror .github/workflows/ci.yml step for step, so a green local
# `make ci` means a green CI run and the two can't drift. (Exceptions: lint
# soft-skips when staticcheck isn't installed, and bench-gate compares
# against BENCH_core.json, whose ns/op baselines are machine-dependent —
# refresh with `make bench-baseline` on the machine you gate on.)

GO ?= go
BENCHTIME ?= 500x
TOLERANCE ?= 0.15
FUZZTIME ?= 10s
# Ratcheted coverage floor: 85.2% measured over . ./internal/... at merge
# time (see `make cover`); raise it when coverage rises, never lower it to
# make a PR pass.
COVER_MIN ?= 85.0

.PHONY: all build vet fmt lint test race race-concurrent cover fuzz bench bench-core bench-gate bench-baseline determinism examples checkpoint-determinism ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) if any file needs reformatting, and prints the list.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs staticcheck exactly as the CI build job does. Locally it
# soft-skips when the binary is missing so `make ci` stays runnable on
# fresh machines; CI always installs and runs it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
		echo "      (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# race-concurrent runs the goroutine-per-connection engine paths — the mtm
# concurrent backend, the adversary schedules driven through it, and the
# observer/trace layers that tap it — un-shortened under the race detector.
race-concurrent:
	$(GO) test -race -count=1 -run 'Concurrent|Backends' \
		./internal/mtm ./internal/adversary ./internal/trace ./internal/leader

# cover enforces the ratcheted coverage floor (COVER_MIN, measured at merge
# time) over the library surface — the root package and internal/... (cmd/
# mains and examples/ are exercised end-to-end by the examples and
# checkpoint-determinism jobs instead; counting their 0% unit coverage here
# would punish adding scenarios).
cover:
	$(GO) test -count=1 -coverprofile=cover.out . ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN{print (t+0 >= m+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "cover: total $$total% fell below the ratcheted minimum $(COVER_MIN)%"; exit 1; \
	fi

# fuzz smokes every native fuzz target for FUZZTIME each, seeded by the
# committed corpora under testdata/fuzz (go test -fuzz takes one target per
# package invocation, hence the loop spelled out).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReaderRaw -fuzztime=$(FUZZTIME) ./internal/ckpt
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/ckpt
	$(GO) test -run='^$$' -fuzz=FuzzResume -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzParseNames -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzParseIntList -fuzztime=$(FUZZTIME) ./cmd/gossipsim

# bench is the CI smoke configuration: compile and run every benchmark
# exactly once so regressions in the hot gossip loops surface per-PR
# without benchmark-grade runtimes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-core runs the fixed-round suites the regression gate consumes
# (fixed BENCHTIME so baseline and fresh runs execute the same round
# distribution): the EngineRound simulation core plus the DynamicRound and
# AdversaryRound delta-vs-rebuild suites at n=10k (the n=100k rows exist
# for manual runs — `go test -bench=BenchmarkDynamicRound` — but are too
# slow to gate per-PR).
BENCH_PATTERN := 'BenchmarkEngineRound|Benchmark(Dynamic|Adversary)Round/.*_n10000_'
bench-core:
	$(GO) test -bench=$(BENCH_PATTERN) -benchmem -benchtime=$(BENCHTIME) -run='^$$' . | tee bench-core.txt

# bench-gate compares a fresh bench-core run against the committed
# BENCH_core.json baseline (±15% ns/op and allocs/op; a 0-alloc baseline
# admits no allocations) and records the fresh numbers for inspection.
bench-gate: bench-core
	$(GO) run ./cmd/benchgate -input bench-core.txt -baseline BENCH_core.json \
		-out BENCH_core.fresh.json -benchtime $(BENCHTIME) -tolerance $(TOLERANCE)

# bench-baseline rewrites BENCH_core.json from a fresh run; commit the
# result after intentional performance changes.
bench-baseline: bench-core
	$(GO) run ./cmd/benchgate -input bench-core.txt -out BENCH_core.json -benchtime $(BENCHTIME)

# determinism checks the runner's bit-reproducibility invariant: the E1
# table (core sweeps), the E22 table (mobility schedules — motion, delta
# patching and churn measurement included) and the E25 table (adversarial
# schedules, adaptive state reads included) must be byte-identical at 1
# worker and at GOMAXPROCS workers.
determinism:
	$(GO) run ./cmd/benchtable -exp e1 -parallel 1 -csv > e1_w1.csv
	$(GO) run ./cmd/benchtable -exp e1 -csv > e1_wmax.csv
	cmp e1_w1.csv e1_wmax.csv
	@rm -f e1_w1.csv e1_wmax.csv
	$(GO) run ./cmd/benchtable -exp e22 -parallel 1 -csv > e22_w1.csv
	$(GO) run ./cmd/benchtable -exp e22 -csv > e22_wmax.csv
	cmp e22_w1.csv e22_wmax.csv
	@rm -f e22_w1.csv e22_wmax.csv
	$(GO) run ./cmd/benchtable -exp e25,e26,e27 -parallel 1 -csv > eadv_w1.csv
	$(GO) run ./cmd/benchtable -exp e25,e26,e27 -csv > eadv_wmax.csv
	cmp eadv_w1.csv eadv_wmax.csv
	@rm -f eadv_w1.csv eadv_wmax.csv
	@echo "determinism: E1, E22 and E25-E27 byte-identical at 1 and GOMAXPROCS workers"

# examples runs every examples/ scenario in -short mode, exactly as the CI
# build job does, so example drift breaks the build instead of rotting.
examples:
	@set -e; for ex in examples/*/; do \
		echo "== $$ex"; \
		$(GO) run "./$$ex" -short > /dev/null; \
	done
	@echo "examples: all scenarios ran clean in -short mode"

# checkpoint-determinism checks the session API's resume contract on the
# E22 workload (random-waypoint mobility under SharedBit): run to
# completion while snapshotting at round 40, resume the snapshot in a
# fresh process, and require byte-identical results (wall-clock and
# checkpoint-administrivia lines stripped).
checkpoint-determinism:
	$(GO) run ./cmd/gossipsim -alg sharedbit -graph waypoint -n 2000 -k 8 -tau 1 -seed 5 \
		-checkpoint e22.ckpt -checkpointat 40 | grep -v 'wall time\|checkpoint written' > ckpt_full.txt
	$(GO) run ./cmd/gossipsim -resume e22.ckpt | grep -v 'wall time\|resumed from' > ckpt_resumed.txt
	cmp ckpt_full.txt ckpt_resumed.txt
	@rm -f e22.ckpt ckpt_full.txt ckpt_resumed.txt
	@echo "checkpoint-determinism: resumed run byte-identical to uninterrupted run"

ci: build vet fmt lint examples race race-concurrent test cover bench determinism checkpoint-determinism bench-gate
	$(MAKE) fuzz FUZZTIME=5s
