# Targets mirror .github/workflows/ci.yml step for step, so a green local
# `make ci` means a green CI run and the two can't drift.

GO ?= go

.PHONY: all build vet fmt test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) if any file needs reformatting, and prints the list.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# bench is the CI smoke configuration: compile and run every benchmark
# exactly once so regressions in the hot gossip loops surface per-PR
# without benchmark-grade runtimes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt race test bench
