package client

// The gossipd v1 wire format. These types are the single definition of
// the HTTP+JSON bodies: the daemon (internal/daemon) decodes requests
// into and encodes responses from them, and the bindings in this package
// ship them over the wire, so the two cannot drift. Versioning follows
// the path (`/v1/...`): breaking changes to these shapes mean a `/v2`
// tree, while adding fields is compatible and does not (DESIGN.md §14).
// Event lines carried by the events endpoint are versioned separately by
// their own schema stamp (DESIGN.md §12).

// CreateRequest describes the session to create: the JSON mirror of
// mobilegossip.Config's data fields, with enums as their CLI wire names
// ("sharedbit", "waypoint", "cutrich", ... — the daemon parses them with
// the same Parse* functions the gossipsim flags use, so a name error
// lists the valid values). Zero values mean what they mean on Config:
// defaults.
type CreateRequest struct {
	Algorithm string       `json:"algorithm"`
	N         int          `json:"n"`
	K         int          `json:"k"`
	Topology  TopologySpec `json:"topology"`
	Tau       int          `json:"tau,omitempty"`
	Epsilon   float64      `json:"epsilon,omitempty"`
	TagBits   int          `json:"tag_bits,omitempty"`
	Seed      uint64       `json:"seed"`
	MaxRounds int          `json:"max_rounds,omitempty"`
	// Concurrent and EngineWorkers tune the engine backend; like
	// everywhere else in the module they change wall-clock only, never
	// results.
	Concurrent    bool `json:"concurrent,omitempty"`
	EngineWorkers int  `json:"engine_workers,omitempty"`
	// Profile attaches the timing sidecar (round_profile events, health
	// in the session state).
	Profile bool `json:"profile,omitempty"`
	// TransferEps overrides the per-call Transfer(ε) failure bound
	// (default n^-3).
	TransferEps float64 `json:"transfer_eps,omitempty"`
	// CrowdedBinBeta/Gamma tune the §6 schedule constants.
	CrowdedBinBeta  int `json:"crowdedbin_beta,omitempty"`
	CrowdedBinGamma int `json:"crowdedbin_gamma,omitempty"`
	// RecordEvents makes the daemon record the session's full event
	// stream (lossless, eviction-transparent) to its state directory so
	// the events endpoint can replay it; without it only live follow is
	// available.
	RecordEvents bool `json:"record_events,omitempty"`
}

// TopologySpec mirrors mobilegossip.Topology with enum fields as wire
// names.
type TopologySpec struct {
	Kind       string  `json:"kind"`
	Degree     int     `json:"degree,omitempty"`
	P          float64 `json:"p,omitempty"`
	Rows       int     `json:"rows,omitempty"`
	Cols       int     `json:"cols,omitempty"`
	CliqueSize int     `json:"clique_size,omitempty"`
	PathLen    int     `json:"path_len,omitempty"`
	Radius     float64 `json:"radius,omitempty"`
	Attach     int     `json:"attach,omitempty"`
	Speed      float64 `json:"speed,omitempty"`
	Pause      int     `json:"pause,omitempty"`
	LevyAlpha  float64 `json:"levy_alpha,omitempty"`
	Groups     int     `json:"groups,omitempty"`
	Attract    float64 `json:"attract,omitempty"`
	Period     int     `json:"period,omitempty"`
	Adversary  string  `json:"adversary,omitempty"`
	AdvBudget  int     `json:"adv_budget,omitempty"`
	AdvParts   int     `json:"adv_parts,omitempty"`
	AdvPeriod  int     `json:"adv_period,omitempty"`
	Relabel    string  `json:"relabel,omitempty"`
}

// SessionInfo is the session's live state: returned by create, resume,
// state queries, and one per session from list.
type SessionInfo struct {
	ID string `json:"id"`
	// Status is "idle" (resident, not stepping), "running" (a run job is
	// stepping it), or "evicted" (serialized to a disk checkpoint; the
	// next touch revives it transparently).
	Status string `json:"status"`
	Round  int    `json:"round"`
	// Potential is φ = Σ_u (k − |T_u|) at the last round boundary.
	Potential int  `json:"potential"`
	Done      bool `json:"done"`
	Solved    bool `json:"solved"`
	// Session identity, echoed from the create request after
	// normalization.
	N         int    `json:"n"`
	K         int    `json:"k"`
	Algorithm string `json:"algorithm"`
	// Topology is the schedule's self-description (the same name local
	// results print), e.g. "waypoint(v=0.010, p=2)τ=1".
	Topology string  `json:"topology"`
	Tau      int     `json:"tau"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Seed     uint64  `json:"seed"`
	// Health is the stall detector's verdict ("unknown" unless the
	// session was created with Profile).
	Health string `json:"health"`
	// EventsRecorded is the number of event lines recorded so far
	// (0 unless RecordEvents).
	EventsRecorded int64 `json:"events_recorded"`
	// Evictions counts how many times this session has been evicted to
	// its disk checkpoint (and revived).
	Evictions int64 `json:"evictions"`
}

// RunRequest asks the scheduler to advance a session. Rounds is relative:
// step this many more rounds from wherever the session is; <= 0 means run
// to completion (objective or MaxRounds). The call returns when the
// target is reached, the run finishes, or the job is canceled.
type RunRequest struct {
	Rounds int `json:"rounds"`
}

// RunResult reports a run job's outcome: the session's Result so far
// (final when Done) plus where the job left the session.
type RunResult struct {
	Session SessionInfo `json:"session"`
	// Canceled reports that the job was canceled (by the cancel endpoint
	// or the request's disconnect) before reaching its target; the
	// session stays at the round boundary it reached, fully usable.
	Canceled bool `json:"canceled,omitempty"`

	// The Result fields, wire-shaped (mobilegossip.Result with enum
	// names as strings).
	Algorithm      string `json:"algorithm"`
	Topology       string `json:"topology"`
	Solved         bool   `json:"solved"`
	Rounds         int    `json:"rounds"`
	Connections    int64  `json:"connections"`
	Proposals      int64  `json:"proposals"`
	ControlBits    int64  `json:"control_bits"`
	TokensMoved    int64  `json:"tokens_moved"`
	EdgesAdded     int64  `json:"edges_added"`
	EdgesRemoved   int64  `json:"edges_removed"`
	FinalPotential int    `json:"final_potential"`
}

// RebindRequest swaps the session's topology schedule and stability
// factor at its current round boundary (Simulation.Rebind): the phased
// scenario timeline over the wire. The new schedule takes effect from
// the next round; Tau is absolute (0 = static), not a delta.
type RebindRequest struct {
	Topology TopologySpec `json:"topology"`
	Tau      int          `json:"tau,omitempty"`
}

// AssertRequest evaluates expected-outcome assertions against the
// session's results so far (scenario expect blocks; DESIGN.md §15). A
// violated assertion comes back as HTTP 409 whose APIError message is
// the same diff-style text the local scenario runner produces — naming
// the scenario, seed, phase, and each failed assertion.
type AssertRequest struct {
	// Scenario, Seed, and Phase label the failure message; they do not
	// affect evaluation.
	Scenario string     `json:"scenario,omitempty"`
	Seed     uint64     `json:"seed"`
	Phase    string     `json:"phase,omitempty"`
	Expect   ExpectSpec `json:"expect"`
}

// ExpectSpec is the wire shape of a scenario's expect block (the field
// names match the scenario file format). Zero values mean "unasserted";
// Solved and MaxFinalPotential are pointers so false and 0 are
// assertable.
type ExpectSpec struct {
	Solved            *bool   `json:"solved,omitempty"`
	SolvedBy          int     `json:"solved_by,omitempty"`
	MinRounds         int     `json:"min_rounds,omitempty"`
	MaxFinalPotential *int    `json:"max_final_potential,omitempty"`
	MinCoverage       float64 `json:"min_coverage,omitempty"`
	MaxChurnPerRound  float64 `json:"max_churn_per_round,omitempty"`
	MinTokensMoved    int64   `json:"min_tokens_moved,omitempty"`
	MaxTokensMoved    int64   `json:"max_tokens_moved,omitempty"`
}

// TokenCount is the tokens endpoint's response: how many tokens one node
// currently knows.
type TokenCount struct {
	Node  int `json:"node"`
	Count int `json:"count"`
}

// Version describes the daemon build: the API tree version and the
// format versions it speaks, so clients can detect incompatibilities
// before shipping work.
type Version struct {
	API               string `json:"api"`
	CheckpointVersion int    `json:"checkpoint_version"`
	EventSchema       int    `json:"event_schema"`
}

// APIError is the JSON error body every non-2xx daemon response carries.
// It implements error, so bindings return it directly.
type APIError struct {
	Status  int    `json:"-"`
	Message string `json:"error"`
}

func (e *APIError) Error() string { return e.Message }
