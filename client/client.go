// Package client is the typed Go binding for the gossipd HTTP API: a
// thin, dependency-free wrapper that turns the daemon's v1 wire format
// (wire.go) into method calls. The remote CLI (gossipsim -remote) and
// the daemon's own load tests drive sessions exclusively through it, so
// the bindings cover the whole surface: create, resume-from-checkpoint,
// run-for-N-rounds, state and token queries, checkpoint download,
// event-stream replay and follow, cancel, delete, list, and the
// daemon-wide metrics scrape.
//
// Every method takes a context and honors its cancellation; Run in
// particular is a long poll (it returns when the requested rounds are
// done), so callers bound it with their context, not a client timeout.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client talks to one gossipd instance.
type Client struct {
	base string // "http://host:port", no trailing slash
	hc   *http.Client
}

// New returns a client for the daemon at addr ("host:port" or a full
// http:// URL). The underlying http.Client has no timeout — run calls
// are long polls — so bound calls with contexts.
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// Version fetches the daemon's API and format versions.
func (c *Client) Version(ctx context.Context) (Version, error) {
	var v Version
	err := c.doJSON(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

// Create builds a new session from req and returns its initial state.
func (c *Client) Create(ctx context.Context, req CreateRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Resume creates a session from a checkpoint stream (a
// Simulation.Checkpoint / CheckpointFile payload). recordEvents turns on
// server-side event recording like CreateRequest.RecordEvents.
func (c *Client) Resume(ctx context.Context, checkpoint io.Reader, recordEvents bool) (SessionInfo, error) {
	p := "/v1/sessions/resume"
	if recordEvents {
		p += "?record_events=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+p, checkpoint)
	if err != nil {
		return SessionInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var info SessionInfo
	return info, c.do(req, &info)
}

// List returns every session the daemon holds, resident or evicted.
func (c *Client) List(ctx context.Context) ([]SessionInfo, error) {
	var infos []SessionInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions", nil, &infos)
	return infos, err
}

// State queries a session's live state without touching it (an evicted
// session reports from its cached meters rather than being revived).
func (c *Client) State(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Run advances the session rounds more rounds (<= 0: to completion) and
// returns when the scheduler has done so. Canceling ctx cancels the job;
// the session stays at the round boundary it reached.
func (c *Client) Run(ctx context.Context, id string, rounds int) (RunResult, error) {
	var res RunResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/run",
		RunRequest{Rounds: rounds}, &res)
	return res, err
}

// Rebind swaps the session's topology schedule and stability factor at
// its current round boundary — the remote Simulation.Rebind. The
// returned info reflects the new schedule.
func (c *Client) Rebind(ctx context.Context, id string, req RebindRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/rebind", req, &info)
	return info, err
}

// Assert evaluates scenario expect assertions against the session's
// results so far. A violation returns a *APIError with Status 409 whose
// Message is the scenario runner's assertion-failure text; nil means
// every assertion holds.
func (c *Client) Assert(ctx context.Context, id string, req AssertRequest) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/assert", req, nil)
}

// TokenCount returns how many tokens node u currently knows.
func (c *Client) TokenCount(ctx context.Context, id string, node int) (TokenCount, error) {
	var tc TokenCount
	err := c.doJSON(ctx, http.MethodGet,
		"/v1/sessions/"+url.PathEscape(id)+"/tokens?node="+strconv.Itoa(node), nil, &tc)
	return tc, err
}

// Checkpoint streams the session's checkpoint — byte-identical to a
// local Simulation.Checkpoint at the same round boundary. The caller
// must Close the reader.
func (c *Client) Checkpoint(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions/"+url.PathEscape(id)+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// EventOptions filter the events endpoint. Zero values leave the
// corresponding constraint open.
type EventOptions struct {
	// Types allow-lists event type wire names ("round_completed", ...).
	Types []string
	// MinRound/MaxRound bound Event.Round inclusively (0 = open).
	MinRound, MaxRound int
	// Follow switches from replaying the recorded stream to a live SSE
	// stream (replay first, then follow until the session ends or ctx is
	// canceled).
	Follow bool
}

// Query renders the options as the events endpoint's query string
// ("?filter=...&minround=..."), empty when nothing is constrained. The
// daemon's wire-decoding fuzz uses it to pin both ends of the wire to
// the same dialect.
func (o EventOptions) Query() string {
	q := url.Values{}
	if len(o.Types) > 0 {
		q.Set("filter", strings.Join(o.Types, ","))
	}
	if o.MinRound > 0 {
		q.Set("minround", strconv.Itoa(o.MinRound))
	}
	if o.MaxRound > 0 {
		q.Set("maxround", strconv.Itoa(o.MaxRound))
	}
	if o.Follow {
		q.Set("follow", "1")
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Events streams the session's event log: without Follow, the recorded
// JSONL replay (application/x-ndjson — the bytes a local -events file
// would hold); with Follow, a live SSE stream. The caller must Close the
// reader.
func (c *Client) Events(ctx context.Context, id string, opts EventOptions) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/sessions/"+url.PathEscape(id)+"/events"+opts.Query(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// Cancel cancels the session's pending and in-flight run jobs. The
// session stays at the round boundary it reached, fully usable.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/cancel", nil, nil)
}

// Delete removes the session and its on-disk state (eviction checkpoint,
// recorded events).
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Metrics scrapes the daemon-wide /metrics endpoint and returns the
// Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// doJSON performs one JSON request/response round trip. body may be nil
// (no request body); out may be nil (response body discarded).
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError, falling back
// to the raw body when it is not the standard JSON error shape.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	apiErr := &APIError{Status: resp.StatusCode}
	if err := json.Unmarshal(b, apiErr); err != nil || apiErr.Message == "" {
		apiErr.Message = fmt.Sprintf("gossipd: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return apiErr
}
