package mobilegossip

import (
	"io"

	"mobilegossip/internal/events"
)

// The structured event surface, re-exported from internal/events so
// library callers can name the types that Simulation.Bus hands out. The
// implementation, delivery semantics and the zero-alloc contract live
// in internal/events; the taxonomy table is DESIGN.md §12.
type (
	// Event is one typed, versioned session event.
	Event = events.Event
	// EventType identifies one kind of session event.
	EventType = events.Type
	// EventFilter selects event types and a round window.
	EventFilter = events.Filter
	// EventBus is the session's non-blocking publish/subscribe hub.
	EventBus = events.Bus
	// EventSubscription is an asynchronous subscriber's bounded queue.
	EventSubscription = events.Subscription
	// EventRing is the in-memory ring-buffer sink with a query API.
	EventRing = events.Ring
	// MetricsCollector aggregates events into Prometheus-style metrics.
	MetricsCollector = events.Collector
	// EventJSONLSink streams events as JSON lines.
	EventJSONLSink = events.JSONLSink
)

// The event taxonomy (see events.Type for per-type semantics).
const (
	EventSessionStart      = events.TypeSessionStart
	EventCheckpointResumed = events.TypeCheckpointResumed
	EventRoundCompleted    = events.TypeRoundCompleted
	EventChurnApplied      = events.TypeChurnApplied
	EventAdversaryEpoch    = events.TypeAdversaryEpoch
	EventCheckpointWritten = events.TypeCheckpointWritten
	EventSessionCancel     = events.TypeSessionCancel
	EventSessionEnd        = events.TypeSessionEnd
	EventRoundProfile      = events.TypeRoundProfile
	EventTopologyRebound   = events.TypeTopologyRebound
)

// EventSchema is the wire-format version stamped on serialized events.
const EventSchema = events.Schema

// EventTypes enumerates every event type in lifecycle order.
func EventTypes() []EventType { return events.Types() }

// ParseEventType resolves a wire name ("round_completed", ...) to its
// EventType.
func ParseEventType(s string) (EventType, error) { return events.ParseType(s) }

// NewEventRing returns a ring-buffer sink retaining the last capacity
// events; attach it with EventRing.Attach(sim.Bus(), filter).
func NewEventRing(capacity int) *EventRing { return events.NewRing(capacity) }

// NewJSONLSink attaches a JSONL stream sink to bus: events matching f
// are written to w as one JSON line each, decoupled through a bounded
// queue of the given capacity (0 = default 4096) so a slow writer drops
// (and counts) instead of stalling the simulation. Close it after the
// run to drain, flush, and collect the first write error.
func NewJSONLSink(bus *EventBus, w io.Writer, f EventFilter, buffer int) *EventJSONLSink {
	return events.NewJSONLSink(bus, w, f, buffer)
}

// NewMetricsCollector returns an empty metrics collector; attach it
// with MetricsCollector.Attach(sim.Bus()) and serve or scrape it via
// its WriteTo / http.Handler surface (the gossipsim -metrics endpoint).
func NewMetricsCollector() *MetricsCollector { return events.NewCollector() }
