package mobilegossip

// Tests for the facade-level extension features: multi-bit tags (TagBits),
// ε-gossip via SimSharedBit (Corollary 7.5), and execution tracing
// (TraceWriter).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func TestRunMultiBitTagLengths(t *testing.T) {
	for _, b := range []int{2, 4, 8} {
		res, err := Run(Config{
			Algorithm: AlgSharedBit, N: 24, K: 6,
			Topology: Topology{Kind: RandomRegular, Degree: 4},
			Tau:      1, TagBits: b, Seed: 3,
		})
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if !res.Solved {
			t.Errorf("b=%d: unsolved after %d rounds", b, res.Rounds)
		}
	}
}

func TestRunTagBitsValidation(t *testing.T) {
	if _, err := Run(Config{
		Algorithm: AlgBlindMatch, N: 8, K: 2, TagBits: 2, Seed: 1,
	}); !errors.Is(err, ErrTagBitsRequires) {
		t.Errorf("TagBits with BlindMatch: got %v, want ErrTagBitsRequires", err)
	}
	if _, err := Run(Config{
		Algorithm: AlgSharedBit, N: 8, K: 2, TagBits: 65, Seed: 1,
	}); err == nil {
		t.Error("TagBits=65 should be rejected")
	}
	if _, err := Run(Config{
		Algorithm: AlgSharedBit, N: 8, K: 2, TagBits: -1, Seed: 1,
	}); err == nil {
		t.Error("TagBits=-1 should be rejected")
	}
	// 0 and 1 both mean the standard algorithm.
	for _, b := range []int{0, 1} {
		if _, err := Run(Config{
			Algorithm: AlgSharedBit, N: 8, K: 2, TagBits: b, Seed: 1,
		}); err != nil {
			t.Errorf("TagBits=%d: %v", b, err)
		}
	}
}

// TestRunTagBitsOneMatchesDefault: TagBits 0 and 1 must select the exact
// same execution.
func TestRunTagBitsOneMatchesDefault(t *testing.T) {
	base := Config{
		Algorithm: AlgSharedBit, N: 20, K: 5,
		Topology: Topology{Kind: RandomRegular, Degree: 4}, Tau: 1, Seed: 9,
	}
	withBit := base
	withBit.TagBits = 1
	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(withBit)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != r1 {
		t.Errorf("TagBits=1 diverged from default:\n  default: %+v\n  b=1:     %+v", r0, r1)
	}
}

func TestRunEpsilonViaSimSharedBit(t *testing.T) {
	full, err := Run(Config{
		Algorithm: AlgSimSharedBit, N: 24, K: 24,
		Topology: Topology{Kind: RandomRegular, Degree: 4}, Tau: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	eps, err := Run(Config{
		Algorithm: AlgSimSharedBit, N: 24, K: 24,
		Topology: Topology{Kind: RandomRegular, Degree: 4}, Tau: 1, Seed: 5,
		Epsilon: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Solved || !eps.Solved {
		t.Fatalf("runs unsolved: full=%v eps=%v", full.Solved, eps.Solved)
	}
	if eps.Rounds > full.Rounds {
		t.Errorf("ε-gossip (%d rounds) slower than full gossip (%d rounds)", eps.Rounds, full.Rounds)
	}
}

func TestRunEpsilonStillRejectsOtherAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgBlindMatch, AlgCrowdedBin} {
		_, err := Run(Config{
			Algorithm: alg, N: 8, K: 8, Epsilon: 0.5, Seed: 1,
		})
		if !errors.Is(err, ErrEpsilonRequires) {
			t.Errorf("%v with Epsilon: got %v, want ErrEpsilonRequires", alg, err)
		}
	}
}

func TestRunTraceWriterEmitsParsableEvents(t *testing.T) {
	var buf bytes.Buffer
	res, err := Run(Config{
		Algorithm: AlgSharedBit, N: 16, K: 4,
		Topology: Topology{Kind: RandomRegular, Degree: 4}, Tau: 1, Seed: 2,
		TraceWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("unsolved")
	}

	var proposals, connects int64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e struct {
			Round int    `json:"round"`
			Kind  string `json:"kind"`
			Node  int    `json:"node"`
			Peer  int    `json:"peer"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		switch e.Kind {
		case "propose":
			proposals++
		case "connect":
			connects++
		default:
			t.Fatalf("unknown kind %q", e.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if proposals != res.Proposals || connects != res.Connections {
		t.Errorf("trace counted %d/%d proposals/connects, result says %d/%d",
			proposals, connects, res.Proposals, res.Connections)
	}
}

// failWriter fails after the first write so the recorder records an error.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("trace sink failed")
	}
	return len(p), nil
}

func TestRunTraceWriterErrorSurfaces(t *testing.T) {
	_, err := Run(Config{
		Algorithm: AlgSharedBit, N: 16, K: 4,
		Topology: Topology{Kind: RandomRegular, Degree: 4}, Tau: 1, Seed: 2,
		TraceWriter: &failWriter{},
	})
	if err == nil {
		t.Fatal("expected the trace write failure to surface from Run")
	}
}

// TestRunTraceDoesNotPerturbExecution: tracing must be observation-only.
func TestRunTraceDoesNotPerturbExecution(t *testing.T) {
	cfg := Config{
		Algorithm: AlgSharedBit, N: 20, K: 5,
		Topology: Topology{Kind: RandomRegular, Degree: 4}, Tau: 1, Seed: 4,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceWriter = &bytes.Buffer{}
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("tracing perturbed the run:\n  plain:  %+v\n  traced: %+v", plain, traced)
	}
}
