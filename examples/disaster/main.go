// Disaster: infrastructure-free status sweep with a majority quorum.
//
// After an earthquake the cell network is down, and every phone in a
// shelter mesh holds one status report (k = n). A coordinator app does
// not need every phone to hold every report — it needs enough phones to
// each hold a majority of reports so that any of them can answer a quorum
// query. That is exactly the paper's ε-gossip problem (§7): a set S of at
// least ε·n phones must exist in which everyone knows everyone's report.
//
// Theorem 7.4 proves SharedBit solves ε-gossip in
// O(n·√(Δ·logΔ)/((1−ε)·α)) rounds — a sublinear-polynomial factor faster
// than the O(n²) it needs for full gossip when k = n. This example
// measures that gap.
//
// Run with:
//
//	go run ./examples/disaster
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilegossip"
)

func main() {
	short := flag.Bool("short", false, "run a smaller mesh (for CI)")
	flag.Parse()

	const seed = 11
	phones := 80
	if *short {
		phones = 48
	}

	mesh := mobilegossip.Topology{Kind: mobilegossip.GNP} // ad-hoc shelter mesh

	fmt.Printf("disaster status sweep: %d phones, each with one report, mesh = G(n,p)\n\n", phones)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "objective\trounds\tconnections\ttokens moved")

	run := func(label string, eps float64) int {
		res, err := mobilegossip.Run(mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit,
			N:         phones,
			K:         phones,
			Topology:  mesh,
			Tau:       1, // survivors keep moving: full churn
			Epsilon:   eps,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			log.Fatalf("%s did not finish", label)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", label, res.Rounds, res.Connections, res.TokensMoved)
		return res.Rounds
	}

	quorum := run("ε-gossip, ε=0.55 (majority quorum)", 0.55)
	threeq := run("ε-gossip, ε=0.75 (three-quarter quorum)", 0.75)
	full := run("full gossip (every report everywhere)", 0)

	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmajority quorum was reached %.1fx sooner than full dissemination\n",
		float64(full)/float64(quorum))
	fmt.Printf("three-quarter quorum %.1fx sooner\n", float64(full)/float64(threeq))
	fmt.Println("(Theorem 7.4: the (1−ε) in the denominator makes looser quorums cheaper.)")
}
