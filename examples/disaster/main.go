// Disaster: infrastructure-free status sweep with a quorum objective.
//
// After an earthquake the cell network is down, and every phone in a
// shelter mesh holds one status report (k = n). A coordinator app does
// not need every phone to hold every report — it needs a coalition of at
// least ε·n phones in which everyone knows everyone's report: the paper's
// ε-gossip problem (§7), which Theorem 7.4 shows SharedBit solves far
// sooner than full gossip. The workload lives in scenarios/disaster.yaml:
// a 96-phone G(n,p) mesh under full churn, run to the ε = 0.75 coalition,
// with the expect block asserting the early stop.
//
// This program is a thin pointer at that file: it runs the exact scenario
// CI pins (scenarios/golden/disaster.table.txt), so its output is
// byte-identical to `gossipsim run scenarios/disaster.yaml`. Edit the
// YAML, not this file, to change the workload.
//
// Run with:
//
//	go run ./examples/disaster
//	go run ./examples/disaster -remote 127.0.0.1:7373   # same bytes, via gossipd
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilegossip/internal/scenario"
)

func main() {
	flag.Bool("short", false, "accepted for CI compatibility; the committed scenario is already CI-sized")
	remote := flag.String("remote", "", "run against the gossipd daemon at this address instead of in-process")
	flag.Parse()

	path, err := scenario.Locate("disaster")
	if err == nil {
		err = scenario.RunFile(path, scenario.Options{
			Remote: *remote, Out: os.Stdout, Log: os.Stderr,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "disaster:", err)
		os.Exit(1)
	}
}
