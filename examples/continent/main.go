// Continent: a 10-million-phone emergency broadcast over a road mesh,
// driven by the deterministic shard-parallel engine.
//
// The tentpole scale target for PR 6: one execution an order of magnitude
// past metropolis (10M nodes vs 1M), completing in minutes because the
// round loop itself is sharded across cores — not just sweeps of small
// runs. A continent-sized road mesh (rows × cols grid, 10M intersections)
// carries one emergency rumor injected at a handful of cities, spread by
// PPUSH (internal/rumor) under the mobile telephone model. The scenario
// drives internal/mtm directly — the public API wraps the same engine,
// but at this scale we want the bare CSR loop and the rumor protocol's
// one-bit-per-node state (a gossip token arena would be pure overhead for
// a single rumor).
//
// The run first times a short calibration window at workers=1 and at the
// full worker count on identical fresh engines — the informed counts must
// match exactly (the sharded engine's byte-determinism contract), and the
// ratio is the intra-run speedup on this machine — then runs the main
// measurement window sharded.
//
// Run with:
//
//	go run ./examples/continent                  # 2500×4000 = 10M phones
//	go run ./examples/continent -rows 1000 -cols 1000
//	go run ./examples/continent -workers 4       # explicit shard count
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/rumor"
)

// cities picks c rumor sources spread evenly across the mesh, offset into
// the interior so the wavefronts are disc-shaped rather than corner-pinned.
func cities(n, c int) []int {
	src := make([]int, 0, c)
	for i := 0; i < c; i++ {
		src = append(src, (i*n)/c+n/(2*c))
	}
	return src
}

// window steps a fresh engine over the mesh for `rounds` rounds at the
// given worker count and returns the protocol (for informed counts), the
// engine result and the elapsed wall time.
func window(g *graph.Graph, sources []int, seed uint64, rounds, workers int) (*rumor.Protocol, mtm.Result, time.Duration) {
	p := rumor.New(g.N(), sources)
	eng := mtm.NewEngine(dyngraph.NewStatic(g), p, mtm.Config{
		Seed: seed, MaxRounds: rounds, Workers: workers,
	})
	start := time.Now()
	for !eng.Finished() {
		if _, err := eng.Step(); err != nil {
			log.Fatal(err)
		}
	}
	return p, eng.Result(), time.Since(start)
}

func main() {
	var (
		rows    = flag.Int("rows", 2500, "mesh rows")
		cols    = flag.Int("cols", 4000, "mesh columns (2500×4000 = the 10M-phone continent)")
		nsrc    = flag.Int("cities", 64, "cities the alert is injected at")
		rounds  = flag.Int("rounds", 400, "rounds in the main measurement window")
		calib   = flag.Int("calib", 40, "rounds in the workers=1 vs workers=W calibration window")
		workers = flag.Int("workers", 0, "shard workers (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "run seed")
		short   = flag.Bool("short", false, "run a small mesh and window (for CI)")
	)
	flag.Parse()
	if *short {
		*rows, *cols, *rounds, *calib = 400, 500, 60, 15
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	n := *rows * *cols
	src := cities(n, *nsrc)

	fmt.Printf("continent: %d×%d road mesh, %d phones, alert from %d cities, %d shard workers\n",
		*rows, *cols, n, len(src), w)

	buildStart := time.Now()
	g := graph.Grid(*rows, *cols)
	fmt.Printf("mesh built in %v\n", time.Since(buildStart).Round(time.Millisecond))

	// Calibration: identical engines, workers=1 vs workers=w. The informed
	// counts must agree bit-for-bit; the wall-clock ratio is the intra-run
	// speedup the sharded engine buys on this machine.
	pSeq, _, dSeq := window(g, src, *seed, *calib, 1)
	pPar, _, dPar := window(g, src, *seed, *calib, w)
	if pSeq.InformedCount() != pPar.InformedCount() {
		log.Fatalf("determinism violated: %d informed sequential vs %d at %d workers",
			pSeq.InformedCount(), pPar.InformedCount(), w)
	}
	fmt.Printf("calibration (%d rounds): %v sequential, %v at %d workers — %.2fx, both %d informed\n",
		*calib, dSeq.Round(time.Millisecond), dPar.Round(time.Millisecond), w,
		dSeq.Seconds()/dPar.Seconds(), pPar.InformedCount())

	// Main window, sharded.
	p, res, elapsed := window(g, src, *seed, *rounds, w)
	fmt.Printf("\nmeasurement window: %d rounds in %v (%.1f rounds/s)\n",
		res.Rounds, elapsed.Round(time.Millisecond), float64(res.Rounds)/elapsed.Seconds())
	fmt.Printf("connections:        %d (%.0f/s)\n",
		res.Connections, float64(res.Connections)/elapsed.Seconds())
	fmt.Printf("rumor deliveries:   %d (%.0f/s)\n",
		res.TokensMoved, float64(res.TokensMoved)/elapsed.Seconds())
	fmt.Printf("informed:           %d / %d phones (%.2f%%)\n",
		p.InformedCount(), n, 100*float64(p.InformedCount())/float64(n))
	if res.Completed {
		fmt.Printf("rumor reached the whole continent in %d rounds\n", res.Rounds)
	}
	fmt.Printf("total wall time (incl. mesh build): %v\n", time.Since(buildStart).Round(time.Millisecond))
}
