// Quickstart: the smallest useful mobilegossip program, on the session API.
//
// It builds a simulation session for the SharedBit gossip algorithm (the
// paper's b = 1, τ ≥ 1 workhorse) on a random 4-regular network of 128
// phones where 16 of them each start with one message, steps it round by
// round while watching the potential φ fall, and reports how many rounds
// it took for every phone to learn every message.
//
// For the fire-and-forget version, mobilegossip.Run(cfg) does the same
// loop in one call.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"mobilegossip"
)

func main() {
	short := flag.Bool("short", false, "run a smaller network (for CI)")
	flag.Parse()

	n, k := 128, 16
	if *short {
		n, k = 64, 8
	}

	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         n,
		K:         k,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Own the loop: one Step is one synchronous round of the mobile
	// telephone model. Live accessors work between any two rounds.
	for !sim.Done() {
		stats, err := sim.Step()
		if err != nil {
			log.Fatal(err)
		}
		if stats.Round%25 == 0 {
			fmt.Printf("  round %4d: φ=%d, %d connections this round\n",
				stats.Round, stats.Potential, stats.Connections)
		}
	}

	res := sim.Result()
	fmt.Printf("gossip of %d tokens across %d phones on %s\n", k, n, res.Topology)
	fmt.Printf("  solved:       %v\n", res.Solved)
	fmt.Printf("  rounds:       %d\n", res.Rounds)
	fmt.Printf("  connections:  %d\n", res.Connections)
	fmt.Printf("  tokens moved: %d\n", res.TokensMoved)

	// The paper's Theorem 5.1 bound is O(kn) rounds; a typical run on a
	// well-connected graph finishes far below the worst case.
	fmt.Printf("  Thm 5.1 worst-case budget O(kn) = %d rounds\n", k*n)
}
