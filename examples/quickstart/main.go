// Quickstart: the smallest useful mobilegossip program.
//
// It runs the SharedBit gossip algorithm (the paper's b = 1, τ ≥ 1
// workhorse) on a random 4-regular network of 128 phones where 16 of them
// each start with one message, and reports how many rounds it took for
// every phone to learn every message.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilegossip"
)

func main() {
	res, err := mobilegossip.Run(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         128,
		K:         16,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gossip of %d tokens across %d phones on %s\n", 16, 128, res.Topology)
	fmt.Printf("  solved:       %v\n", res.Solved)
	fmt.Printf("  rounds:       %d\n", res.Rounds)
	fmt.Printf("  connections:  %d\n", res.Connections)
	fmt.Printf("  tokens moved: %d\n", res.TokensMoved)

	// The paper's Theorem 5.1 bound is O(kn) = O(16·128) rounds; a typical
	// run on a well-connected graph finishes far below the worst case.
	fmt.Printf("  Thm 5.1 worst-case budget O(kn) = %d rounds\n", 16*128)
}
