// Protest: gossip where the infrastructure is censored and the crowd
// geometry is hostile.
//
// The paper's introduction motivates smartphone peer-to-peer meshes with
// government protests, where cellular infrastructure may be blocked.
// Protests also produce the geometry the paper's lower bound discussion
// (§1) warns about: dense clusters around focal points — approximated
// here by the double-star graph, whose Δ ≈ n/2 hubs make blind connection
// attempts collide catastrophically (the Ω(Δ²/√α) floor).
//
// The example:
//  1. inspects the topology (Δ, D, α — the parameters in every bound);
//  2. runs BlindMatch (b = 0) and SharedBit (b = 1) with a JSONL trace;
//  3. summarizes each trace to show *why* b = 1 wins: the proposal
//     acceptance rate collapses for blind proposals aimed at hubs, while
//     tag-steered proposals stay productive.
//
// Run with:
//
//	go run ./examples/protest
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilegossip"
	"mobilegossip/internal/trace"
)

func main() {
	const seed = 13
	short := flag.Bool("short", false, "run a smaller crowd (for CI)")
	flag.Parse()
	crowd, posts := 64, 4
	if *short {
		crowd, posts = 48, 3
	}

	topo := mobilegossip.Topology{Kind: mobilegossip.DoubleStar}

	info, err := topo.Inspect(crowd, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protest mesh: %s\n", info.Name)
	fmt.Printf("  n=%d  Δ=%d  D=%d  α=%.4f  (log₂n)/α=%.1f\n\n",
		info.N, info.MaxDegree, info.Diameter, info.Alpha, info.LogNOverAlpha)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\trounds\tproposals\tconnections\taccepted")

	for _, alg := range []mobilegossip.Algorithm{
		mobilegossip.AlgBlindMatch,
		mobilegossip.AlgSharedBit,
	} {
		var buf bytes.Buffer
		res, err := mobilegossip.Run(mobilegossip.Config{
			Algorithm:   alg,
			N:           crowd,
			K:           posts,
			Topology:    topo,
			Seed:        seed,
			TraceWriter: &buf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			log.Fatalf("%v did not finish", alg)
		}
		sum, err := trace.ReadSummary(&buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%.1f%%\n",
			alg, res.Rounds, sum.Proposals, sum.Connections, 100*sum.AcceptanceRate())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nOn hub-dominated graphs a blind proposal usually targets a hub that")
	fmt.Println("is already swamped — most proposals are wasted, which is the Ω(Δ²/√α)")
	fmt.Println("mechanism of §1. SharedBit's advertisement bit steers proposals toward")
	fmt.Println("nodes that provably hold a different message set, so the ones it sends")
	fmt.Println("are worth sending.")
}
