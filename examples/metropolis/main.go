// Metropolis: city-scale gossip over a million-phone proximity mesh.
//
// The ROADMAP's north star is a simulator that handles "millions of users"
// at hardware speed; this scenario exercises exactly that path. A city of
// n phones (default 100k; -n 1000000 for the full metropolis) is placed as
// a random geometric graph — uniform positions, radio range just above the
// connectivity threshold — and k simultaneously injected alerts must
// spread by SharedBit gossip. At these sizes the interesting quantity is
// not the full completion time (Θ(kn) rounds) but simulation throughput:
// rounds per second, connections per second, and tokens delivered per
// second while the wave is actively spreading, all on the allocation-free
// CSR core.
//
// Run with:
//
//	go run ./examples/metropolis                 # 100k phones
//	go run ./examples/metropolis -n 1000000      # the full metropolis
//	go run ./examples/metropolis -rounds 2000    # longer measurement window
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mobilegossip"
)

func main() {
	var (
		n      = flag.Int("n", 100_000, "phones in the city (100k..1M is the design range)")
		k      = flag.Int("k", 16, "simultaneously injected alerts")
		rounds = flag.Int("rounds", 1000, "simulated rounds in the measurement window")
		seed   = flag.Uint64("seed", 1, "run seed")
		short  = flag.Bool("short", false, "run a small city and window (for CI)")
	)
	flag.Parse()
	if *short {
		*n, *rounds = 20_000, 200
	}

	fmt.Printf("metropolis: %d phones, %d alerts, RGG proximity mesh\n", *n, *k)

	build := time.Now()
	var (
		lastPhi   int
		roundsRun int
	)
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         *n,
		K:         *k,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomGeometric},
		Seed:      *seed,
		MaxRounds: *rounds,
		OnRound: func(r, phi int) {
			roundsRun, lastPhi = r, phi
		},
	}

	start := time.Now()
	res, err := mobilegossip.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	total := time.Since(build)

	phi0 := *n * *k // φ at round 0: every node misses every alert (minus the k owners' own)
	fmt.Printf("\nmeasurement window: %d rounds in %v (%.0f rounds/s)\n",
		roundsRun, elapsed.Round(time.Millisecond),
		float64(roundsRun)/elapsed.Seconds())
	fmt.Printf("connections:        %d (%.0f/s)\n",
		res.Connections, float64(res.Connections)/elapsed.Seconds())
	fmt.Printf("tokens delivered:   %d (%.0f/s)\n",
		res.TokensMoved, float64(res.TokensMoved)/elapsed.Seconds())
	fmt.Printf("control bits:       %d\n", res.ControlBits)
	fmt.Printf("potential φ:        %d -> %d (%.1f%% of the wave delivered)\n",
		phi0, lastPhi, 100*(1-float64(lastPhi)/float64(phi0)))
	if res.Solved {
		fmt.Printf("gossip SOLVED in %d rounds\n", res.Rounds)
	}
	fmt.Printf("total wall time (incl. graph build): %v\n", total.Round(time.Millisecond))
}
