// Metropolis: city-scale alert dissemination on a fixed round budget.
//
// The ROADMAP's north star is a simulator that handles city-sized
// proximity meshes at hardware speed. The workload lives in
// scenarios/metropolis.yaml: a random-geometric city of phones with
// simultaneously injected alerts, SharedBit with 2-bit tags, run on a
// hard max_rounds budget — the expect block asserts how much of the wave
// a fixed budget delivers (min_coverage) rather than full completion.
//
// This program is a thin pointer at that file: it runs the exact scenario
// CI pins (scenarios/golden/metropolis.table.txt), so its output is
// byte-identical to `gossipsim run scenarios/metropolis.yaml`. Edit the
// YAML, not this file, to change the workload; for throughput
// measurement at the full 100k–1M scale, use gossipsim directly
// (`gossipsim -alg sharedbit -graph rgg -n 1000000 -k 16 -maxrounds 500`).
//
// Run with:
//
//	go run ./examples/metropolis
//	go run ./examples/metropolis -remote 127.0.0.1:7373   # same bytes, via gossipd
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilegossip/internal/scenario"
)

func main() {
	flag.Bool("short", false, "accepted for CI compatibility; the committed scenario is already CI-sized")
	remote := flag.String("remote", "", "run against the gossipd daemon at this address instead of in-process")
	flag.Parse()

	path, err := scenario.Locate("metropolis")
	if err == nil {
		err = scenario.RunFile(path, scenario.Options{
			Remote: *remote, Out: os.Stdout, Log: os.Stderr,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metropolis:", err)
		os.Exit(1)
	}
}
