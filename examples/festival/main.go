// Festival: FireChat-style group chat in a physically moving crowd.
//
// The paper's introduction motivates smartphone peer-to-peer meshes with
// scenarios like Burning Man — tens of thousands of people, no cell
// towers, and a crowd in continuous motion. The workload lives in
// scenarios/festival.yaml as a declarative scenario (DESIGN.md §15): one
// chat wave pushed through three phases of the evening — doors open
// (random-waypoint roaming), headliner (group motion gathered hard around
// three stages), closing (commuter walks to the gates) — with the phase
// switches rebinding the live session's topology at round boundaries.
//
// This program is a thin pointer at that file: it runs the exact scenario
// CI pins (scenarios/golden/festival.table.txt), so its output is
// byte-identical to `gossipsim run scenarios/festival.yaml`. Edit the
// YAML, not this file, to change the workload.
//
// Run with:
//
//	go run ./examples/festival
//	go run ./examples/festival -remote 127.0.0.1:7373   # same bytes, via gossipd
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilegossip/internal/scenario"
)

func main() {
	flag.Bool("short", false, "accepted for CI compatibility; the committed scenario is already CI-sized")
	remote := flag.String("remote", "", "run against the gossipd daemon at this address instead of in-process")
	flag.Parse()

	path, err := scenario.Locate("festival")
	if err == nil {
		err = scenario.RunFile(path, scenario.Options{
			Remote: *remote, Out: os.Stdout, Log: os.Stderr,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "festival:", err)
		os.Exit(1)
	}
}
