// Festival: FireChat-style group chat in a churning crowd.
//
// The paper's introduction motivates smartphone peer-to-peer meshes with
// scenarios like Burning Man — tens of thousands of people, no cell
// towers, and a crowd that physically reshuffles continuously. This
// example models one "chat wave": k attendees each post a message at the
// same time, and the mesh must deliver every message to everyone while
// the proximity graph is redrawn every round (τ = 1, the paper's harshest
// dynamic setting).
//
// It compares the three algorithms that work under full churn:
//
//   - BlindMatch (b = 0): phones cannot advertise anything; connections
//     are blind. Theorem 4.1: O((1/α)·k·Δ²·log²n).
//   - SharedBit (b = 1, shared randomness): each phone advertises a 1-bit
//     hash of the messages it holds, so phones only dial neighbors that
//     provably hold a different set. Theorem 5.1: O(kn).
//   - SimSharedBit (b = 1, no shared randomness): same, but the phones
//     first elect a leader that disseminates a PRG seed. Theorem 5.6:
//     O(kn + (1/α)·Δ^{1/τ}·log⁶n).
//
// Run with:
//
//	go run ./examples/festival
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilegossip"
)

func main() {
	const (
		crowd    = 96 // phones in radio range of the mesh
		messages = 12 // simultaneous chat posts
		seed     = 7
	)

	// The crowd reshuffles every round: a fresh random 4-regular proximity
	// graph per round is the oblivious adversary the τ = 1 model allows.
	churn := mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}

	algs := []mobilegossip.Algorithm{
		mobilegossip.AlgBlindMatch,
		mobilegossip.AlgSharedBit,
		mobilegossip.AlgSimSharedBit,
	}

	fmt.Printf("festival chat wave: %d posts across %d phones, proximity graph redrawn every round\n\n",
		messages, crowd)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\ttag bits\trounds\tconnections\ttokens moved")
	for _, alg := range algs {
		res, err := mobilegossip.Run(mobilegossip.Config{
			Algorithm: alg,
			N:         crowd,
			K:         messages,
			Topology:  churn,
			Tau:       1,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			log.Fatalf("%v did not finish within the round budget", alg)
		}
		bits := 1
		if alg == mobilegossip.AlgBlindMatch {
			bits = 0
		}
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\n",
			alg, bits, res.Rounds, res.Connections, res.TokensMoved)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe single advertising bit is what lets SharedBit phones skip")
	fmt.Println("pointless connections: with b = 0 every dial is blind, and the")
	fmt.Println("paper proves a Ω(Δ²/√α) floor for that strategy (§1, [22]).")
}
