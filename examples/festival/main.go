// Festival: FireChat-style group chat in a physically moving crowd.
//
// The paper's introduction motivates smartphone peer-to-peer meshes with
// scenarios like Burning Man — tens of thousands of people, no cell
// towers, and a crowd in continuous motion. Earlier revisions of this
// example abstracted that motion as an adversary redrawing a random graph
// every round; this one simulates the motion itself (internal/mobility):
// phones walk the festival grounds, the topology each round is whoever is
// within radio range, and the edge churn the crowd induces is measured,
// not assumed.
//
// One "chat wave" — k attendees post a message simultaneously, the mesh
// must deliver every message to everyone — is run through three phases of
// the evening:
//
//   - doors open:  attendees roam the grounds (random waypoint);
//   - headliner:   the crowd gathers hard around the stages (group motion,
//     high attraction) — dense mosh pits joined by thin bridges;
//   - closing:     everyone walks out to the gates (commuter schedules).
//
// Each phase compares SharedBit (b = 1, Thm 5.1: O(kn)) with
// SimSharedBit (b = 1 without shared randomness, Thm 5.6) and BlindMatch
// (b = 0, Thm 4.1) under the same motion, and reports the per-round edge
// churn the phase's motion generated.
//
// Run with:
//
//	go run ./examples/festival
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilegossip"
)

func main() {
	short := flag.Bool("short", false, "run a smaller crowd (for CI)")
	flag.Parse()

	const seed = 7
	crowd, messages := 600, 8 // phones on the grounds, simultaneous posts
	if *short {
		crowd, messages = 150, 4
	}

	phases := []struct {
		label string
		topo  mobilegossip.Topology
	}{
		{"doors open (roaming)", mobilegossip.Topology{
			Kind: mobilegossip.MobileWaypoint, Speed: 0.01, Pause: 3,
		}},
		{"headliner (gathered at 3 stages)", mobilegossip.Topology{
			Kind: mobilegossip.MobileGroup, Groups: 3, Attract: 0.9, Speed: 0.02,
		}},
		{"closing (walking out)", mobilegossip.Topology{
			Kind: mobilegossip.MobileCommuter, Speed: 0.015, Period: 80,
		}},
	}
	algs := []mobilegossip.Algorithm{
		mobilegossip.AlgSharedBit,
		mobilegossip.AlgSimSharedBit,
		mobilegossip.AlgBlindMatch,
	}

	fmt.Printf("festival chat wave: %d posts across %d phones walking the grounds\n", messages, crowd)
	fmt.Printf("(unit-disk proximity topology, radio range defaulted to mean degree ≈ 8, τ = 1)\n\n")

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\talgorithm\trounds\tconnections\ttokens moved\tedge churn/round")
	for _, ph := range phases {
		for _, alg := range algs {
			res, err := mobilegossip.Run(mobilegossip.Config{
				Algorithm: alg,
				N:         crowd,
				K:         messages,
				Topology:  ph.topo,
				Tau:       1,
				Seed:      seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Solved {
				log.Fatalf("%v did not finish within the round budget in phase %q", alg, ph.label)
			}
			churn := float64(res.EdgesAdded+res.EdgesRemoved) / float64(res.Rounds)
			fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%d\t%.0f\n",
				ph.label, alg, res.Rounds, res.Connections, res.TokensMoved, churn)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe advertised bit is what lets SharedBit phones skip pointless")
	fmt.Println("dials (the paper proves a Ω(Δ²/√α) floor for b = 0, §1); physical")
	fmt.Println("motion turns out to help rather than hurt — walking mixes each")
	fmt.Println("phone's neighborhood, so the mesh never stalls on a bad topology.")
}
