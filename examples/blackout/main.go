// Blackout: checkpoint a live mesh simulation, lose the process, resume
// byte-identically.
//
// The festival scenario's premise is that the *phones* have no
// infrastructure. This scenario is about the simulation host: a long
// metropolis-scale run is hours into an adversarial schedule when the
// machine goes down. With the session API that is not a disaster — a
// Simulation can snapshot its complete deterministic state (every token
// set, every RNG stream, the full mobility trajectory) at any round
// boundary, and Resume revives it in a fresh process with byte-identical
// future.
//
// The example stages exactly that: a chat wave spreading through a moving
// festival crowd is canceled mid-run ("the blackout"), checkpointed into a
// byte buffer, revived from those bytes as if by a new process, and run to
// completion — then verified, field by field, against an uninterrupted
// reference run of the same seed.
//
// Run with:
//
//	go run ./examples/blackout          # 600 phones
//	go run ./examples/blackout -short   # CI-sized crowd
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"mobilegossip"
)

func main() {
	short := flag.Bool("short", false, "run a smaller crowd (for CI)")
	flag.Parse()

	crowd, messages := 600, 8
	if *short {
		crowd, messages = 150, 4
	}
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         crowd,
		K:         messages,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.015, Pause: 2},
		Tau:       1,
		Seed:      21,
	}

	// Reference: the run that never went down.
	want, err := mobilegossip.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !want.Solved {
		log.Fatalf("reference run did not finish in %d rounds", want.Rounds)
	}
	fmt.Printf("reference run: %d phones, %d posts, solved in %d rounds (%d connections)\n",
		crowd, messages, want.Rounds, want.Connections)

	// The evening of the blackout: cancel the run a third of the way in.
	blackoutAt := want.Rounds / 3
	ctx, cancel := context.WithCancel(context.Background())
	cfgWatch := cfg
	cfgWatch.OnRound = func(r, _ int) {
		if r == blackoutAt {
			cancel()
		}
	}
	sim, err := mobilegossip.New(cfgWatch)
	if err != nil {
		log.Fatal(err)
	}
	partial, err := sim.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected a canceled run, got %v", err)
	}
	fmt.Printf("blackout at round %d: φ=%d, %d connections so far\n",
		partial.Rounds, sim.Potential(), partial.Connections)

	// Snapshot the dying process's state.
	var snapshot bytes.Buffer
	if err := sim.Checkpoint(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d bytes (version %d)\n", snapshot.Len(), mobilegossip.CheckpointVersion)

	// A new process, possibly days later: revive and finish, watching the
	// recovery through the observer pipeline.
	revived, err := mobilegossip.Resume(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	sampler := mobilegossip.NewPotentialSampler(20)
	revived.Observe(sampler)
	got, err := revived.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run finished at round %d\n", got.Rounds)
	fmt.Println("recovery potential curve:")
	for _, s := range sampler.Samples() {
		fmt.Printf("  round %5d  φ=%d\n", s.Round, s.Potential)
	}

	// The whole point: the blackout was invisible to the results.
	if got != want {
		log.Fatalf("resumed run diverged from the uninterrupted reference:\n got %+v\nwant %+v", got, want)
	}
	fmt.Println("\nresumed results are byte-identical to the uninterrupted run —")
	fmt.Println("rounds, connections, control bits, token movements, edge churn: all equal.")
}
