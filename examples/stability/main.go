// Stability: what a non-moving crowd buys you.
//
// Section 6 of the paper shows that when the topology is stable (τ = ∞)
// a gossip algorithm can use its 1-bit advertisement across many rounds
// to spell out richer state — and CrowdedBin exploits that to finish in
// O((1/α)·k·log⁶n) rounds, versus SharedBit's O(kn). For well-connected
// graphs (constant α) that is almost a factor-n improvement; the paper's
// conclusion is that "large increases to stability are more valuable to
// gossip algorithms than large increases to tag length."
//
// This example pits CrowdedBin against SharedBit on the same stable
// random-regular mesh (think: a seated stadium audience) across a range
// of token counts, and prints the speedup.
//
// Run with:
//
//	go run ./examples/stability
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilegossip"
)

func main() {
	const (
		audience = 64
		seed     = 5
	)
	short := flag.Bool("short", false, "sweep fewer token counts (for CI)")
	flag.Parse()
	ks := []int{2, 4, 8, 16, 32}
	if *short {
		ks = []int{2, 4, 8}
	}

	mesh := mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}

	fmt.Printf("stadium audience of %d, stable 4-regular mesh (τ=∞)\n\n", audience)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\tSharedBit rounds\tCrowdedBin rounds\tnote")

	for _, k := range ks {
		sb, err := mobilegossip.Run(mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit,
			N:         audience, K: k, Topology: mesh, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		cb, err := mobilegossip.Run(mobilegossip.Config{
			Algorithm: mobilegossip.AlgCrowdedBin,
			N:         audience, K: k, Topology: mesh, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if !sb.Solved || !cb.Solved {
			note = "did not finish!"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\n", k, sb.Rounds, cb.Rounds, note)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCrowdedBin pays a large log-factor schedule overhead (bins × blocks ×")
	fmt.Println("phases), so at small n SharedBit can still win; its Õ(k/α) advantage is")
	fmt.Println("asymptotic in n. Experiment E5/E6 (cmd/benchtable) sweeps n to show the")
	fmt.Println("crossover; this example shows the per-k behavior at one realistic size.")
}
