// Jammer: a mesh under active attack.
//
// The paper's model (§2) hands the dynamic topology to an *adversary*: the
// analysis must hold however the connected graph evolves. This scenario
// makes the adversary literal — a jammer that watches a festival crowd's
// mesh and cuts radio links every round, within an edge budget (its
// transmitter power). Four regimes are staged over the same moving crowd:
//
//   - no jamming — the benign walking crowd (the E22 baseline);
//   - blackout  — a catastrophic event darkening one region at a time;
//   - cutrich   — an *adaptive* jammer that reads the gossip state and
//     severs the token-richest phones' links first;
//   - cutrich with 4× the power budget.
//
// Then the punchline of the adversary engine's determinism contract: the
// heaviest jammed run is checkpointed mid-attack, revived from bytes (as
// examples/blackout does for a host failure), and finishes byte-identically
// — adversarial schedules, adaptive state reads included, are fully
// deterministic and resumable.
//
// Run with:
//
//	go run ./examples/jammer          # 400 phones
//	go run ./examples/jammer -short   # CI-sized crowd
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilegossip"
)

func main() {
	short := flag.Bool("short", false, "run a smaller crowd (for CI)")
	flag.Parse()

	crowd, posts := 400, 8
	if *short {
		crowd, posts = 120, 4
	}
	budget := crowd / 8

	mkCfg := func(adv mobilegossip.AdversaryKind, b int) mobilegossip.Config {
		return mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit,
			N:         crowd,
			K:         posts,
			Topology: mobilegossip.Topology{
				Kind: mobilegossip.MobileWaypoint, Speed: 0.015,
				Adversary: adv, AdvBudget: b, AdvParts: 4, AdvPeriod: 6,
			},
			Tau:  1,
			Seed: 27,
		}
	}

	// The last regime is the one the checkpoint demonstration below reruns;
	// its result is captured by matching the (adversary, budget) pair, not
	// by loop position.
	heavyAdv, heavyBudget := mobilegossip.AdvCutRich, 4*budget
	regimes := []struct {
		label  string
		adv    mobilegossip.AdversaryKind
		budget int
	}{
		{"no jamming", mobilegossip.AdvNone, 0},
		{"blackout", mobilegossip.AdvBlackout, budget},
		{"adaptive cutrich", mobilegossip.AdvCutRich, budget},
		{"cutrich, 4x power", heavyAdv, heavyBudget},
	}

	fmt.Printf("festival crowd of %d phones, %d posts; jammer budget %d cut edges/round\n\n",
		crowd, posts, budget)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "regime\trounds\tconnections\tedge churn (+/-)")
	var heaviest mobilegossip.Result
	for _, reg := range regimes {
		res, err := mobilegossip.Run(mkCfg(reg.adv, reg.budget))
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			log.Fatalf("%s: unsolved after %d rounds", reg.label, res.Rounds)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t+%d/-%d\n",
			reg.label, res.Rounds, res.Connections, res.EdgesAdded, res.EdgesRemoved)
		if reg.adv == heavyAdv && reg.budget == heavyBudget {
			heaviest = res
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Mid-attack checkpoint: the adaptive jammer's cuts depend on the live
	// token state, yet the whole composition — motion, adversary RNG, token
	// sets — serializes and resumes byte-identically.
	cfg := mkCfg(heavyAdv, heavyBudget)
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for sim.Round() < heaviest.Rounds/2 && !sim.Done() {
		if _, err := sim.Step(); err != nil {
			log.Fatal(err)
		}
	}
	var snapshot bytes.Buffer
	if err := sim.Checkpoint(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpointed the heaviest jammed run at round %d (φ=%d, %d bytes)\n",
		sim.Round(), sim.Potential(), snapshot.Len())

	revived, err := mobilegossip.Resume(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	got, err := revived.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if got != heaviest {
		log.Fatalf("resumed jammed run diverged:\n got %+v\nwant %+v", got, heaviest)
	}
	fmt.Printf("resumed from bytes and finished at round %d — byte-identical to the \n"+
		"uninterrupted run: the adversary (adaptive state reads included) is fully \n"+
		"deterministic, checkpointable, and composes with physical motion.\n", got.Rounds)
}
