// Jammer: a mesh under active attack, then healed.
//
// The paper's model (§2) hands the dynamic topology to an *adversary*:
// the analysis must hold however the connected graph evolves. The
// workload lives in scenarios/jammer.yaml and makes the adversary
// literal: a walking crowd gossips quietly, a blackout jammer darkens
// regions of the grounds on a budget for a 25-round phase, the attack
// lifts, and the mesh heals to completion — three phases rebinding the
// adversary schedule at round boundaries, with the expect block asserting
// the attack delayed but never broke the dissemination.
//
// This program is a thin pointer at that file: it runs the exact scenario
// CI pins (scenarios/golden/jammer.table.txt — and the conformance suite
// also replays it through a mid-attack checkpoint/resume split), so its
// output is byte-identical to `gossipsim run scenarios/jammer.yaml`. Edit
// the YAML, not this file, to change the workload.
//
// Run with:
//
//	go run ./examples/jammer
//	go run ./examples/jammer -remote 127.0.0.1:7373   # same bytes, via gossipd
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilegossip/internal/scenario"
)

func main() {
	flag.Bool("short", false, "accepted for CI compatibility; the committed scenario is already CI-sized")
	remote := flag.String("remote", "", "run against the gossipd daemon at this address instead of in-process")
	flag.Parse()

	path, err := scenario.Locate("jammer")
	if err == nil {
		err = scenario.RunFile(path, scenario.Options{
			Remote: *remote, Out: os.Stdout, Log: os.Stderr,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jammer:", err)
		os.Exit(1)
	}
}
