package mobilegossip_test

// Benchmarks, one family per row of the paper's Figure 1 plus the
// substrates (Transfer(ε), BitConvergence leader election, PPUSH, the
// engine itself). Each benchmark iteration is one complete gossip
// execution at a fixed size; cmd/benchtable runs the parameter sweeps
// that regenerate the paper's tables, while these benches track the
// absolute cost of the canonical configurations.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	"mobilegossip"
	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/leader"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/rumor"
	"mobilegossip/internal/tokenset"
)

// benchRun executes one full simulation and fails the benchmark on error
// or non-completion.
func benchRun(b *testing.B, cfg mobilegossip.Config) {
	b.Helper()
	b.ReportAllocs()
	var rounds int64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res, err := mobilegossip.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Solved {
			b.Fatalf("run %d not solved in %d rounds", i, res.Rounds)
		}
		rounds += int64(res.Rounds)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// BenchmarkFig1Row1BlindMatch — b = 0, τ ≥ 1 (§4, Thm 4.1).
func BenchmarkFig1Row1BlindMatch(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  mobilegossip.Config
	}{
		{"ring_n64_k4_tau1", mobilegossip.Config{
			Algorithm: mobilegossip.AlgBlindMatch, N: 64, K: 4,
			Topology: mobilegossip.Topology{Kind: mobilegossip.Cycle}, Tau: 1,
		}},
		{"doublestar_n32_k1", mobilegossip.Config{
			Algorithm: mobilegossip.AlgBlindMatch, N: 32, K: 1,
			Topology: mobilegossip.Topology{Kind: mobilegossip.DoubleStar},
		}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchRun(b, tc.cfg) })
	}
}

// BenchmarkFig1Row2SharedBit — b = 1, τ ≥ 1, shared randomness (§5.1,
// Thm 5.1).
func BenchmarkFig1Row2SharedBit(b *testing.B) {
	for _, size := range []struct{ n, k int }{{64, 8}, {128, 16}, {256, 32}} {
		name := fmt.Sprintf("regular_n%d_k%d_tau1", size.n, size.k)
		b.Run(name, func(b *testing.B) {
			benchRun(b, mobilegossip.Config{
				Algorithm: mobilegossip.AlgSharedBit, N: size.n, K: size.k,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
				Tau:      1,
			})
		})
	}
}

// BenchmarkFig1Row3SimSharedBit — b = 1, τ ≥ 1, no shared randomness
// (§5.2, Thm 5.6).
func BenchmarkFig1Row3SimSharedBit(b *testing.B) {
	for _, tau := range []int{1, 4} {
		b.Run(fmt.Sprintf("regular_n64_k8_tau%d", tau), func(b *testing.B) {
			benchRun(b, mobilegossip.Config{
				Algorithm: mobilegossip.AlgSimSharedBit, N: 64, K: 8,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
				Tau:      tau,
			})
		})
	}
}

// BenchmarkFig1Row4CrowdedBin — b = 1, τ = ∞ (§6, Thm 6.10).
//
// Beta is raised above the speed-oriented default: with β = 2 the tag
// space at N = 64 is only N² = 4096, so a k = 16 run draws colliding
// token tags (a "not good" configuration per Lemma 6.5, which stalls the
// run) with probability ≈ 3% — too often for a benchmark that executes
// dozens of fresh seeds. β = 4 makes collisions negligible at the cost of
// proportionally more schedule rounds.
func BenchmarkFig1Row4CrowdedBin(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("regular_n64_k%d_static", k), func(b *testing.B) {
			benchRun(b, mobilegossip.Config{
				Algorithm: mobilegossip.AlgCrowdedBin, N: 64, K: k,
				Topology:   mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
				CrowdedBin: core.CrowdedBinConfig{Beta: 4},
			})
		})
	}
}

// BenchmarkFig1Row5EpsilonGossip — ε-gossip via SharedBit (§7, Thm 7.4).
func BenchmarkFig1Row5EpsilonGossip(b *testing.B) {
	for _, eps := range []float64{0.5, 0.75} {
		b.Run(fmt.Sprintf("regular_n64_eps%.2f", eps), func(b *testing.B) {
			benchRun(b, mobilegossip.Config{
				Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 64,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
				Tau:      1, Epsilon: eps,
			})
		})
	}
}

// BenchmarkTransfer — the §3 token-transfer subroutine on adversarial
// set pairs (identical except the last position).
func BenchmarkTransfer(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("universe_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			pristine := tokenset.NewSet(n)
			tb := tokenset.NewSet(n)
			for t := 1; t <= n/2; t++ {
				pristine.Add(t)
				tb.Add(t)
			}
			tb.Add(n) // the single difference, at the far end of the search
			eps := 1.0 / float64(n*n)
			for i := 0; i < b.N; i++ {
				// Nodes never unlearn tokens, so restore the receiving set
				// from a pristine copy (a 64-word bitset clone; negligible
				// next to the Transfer itself).
				ta := pristine.Clone()
				c := mtm.NewConn(i+1, 0, 1,
					prand.New(uint64(2*i+1)), prand.New(uint64(2*i+2)),
					1<<30, 1<<30)
				out := eqtest.Transfer(c, ta, tb, eps)
				if !out.Moved || out.Token != n {
					b.Fatalf("transfer should move token %d, got %+v", n, out)
				}
			}
		})
	}
}

// BenchmarkLeaderElection — the BitConvergence substrate (§5.2, [22]).
func BenchmarkLeaderElection(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("regular_n%d_tau1", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				dyn := dyngraph.RotatingRegular(n, 4, 1, seed)
				ids := make([]int, n)
				payloads := make([]uint64, n)
				for u := 0; u < n; u++ {
					ids[u] = u + 1
					payloads[u] = uint64(u)
				}
				p := leader.New(ids, payloads)
				res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: seed}).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("leader election did not converge")
				}
			}
		})
	}
}

// BenchmarkPPUSH — the rumor-spreading substrate (§6, Thm 6.1, [11]).
func BenchmarkPPUSH(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("regular_n%d_static", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				g := graph.RandomRegular(n, 4, prand.New(prand.Mix64(seed)))
				p := rumor.New(n, []int{0})
				res, err := mtm.NewEngine(dyngraph.NewStatic(g), p, mtm.Config{Seed: seed}).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("rumor did not spread")
				}
			}
		})
	}
}

// BenchmarkEngineRound measures the cost of one simulation round on the
// allocation-free CSR core across network sizes, for both engine backends.
// Each op is one round of SharedBit gossip on a static random 4-regular
// topology; MaxRounds = b.N keeps every op a real, state-advancing round.
//
// This is the suite the CI bench-gate job compares against the committed
// BENCH_core.json baseline (±15% ns/op, no new allocs): run it with a fixed
// -benchtime (the gate uses 500x) so the round distribution is identical
// between baseline and fresh runs, and refresh the baseline with
// `make bench-baseline` after intentional performance changes. The
// sequential backend must report 0 allocs/op in steady state.
//
// The sess_* rows step the same workload through the public session API
// (Simulation.Step, which also publishes on the event bus and samples φ
// every round) and enforce the bus's zero-alloc contract from both sides:
// sess_n10000_k64 has no subscriber — Publish must be a single atomic
// load, 0 allocs/op — and sess_bus_n10000_k64 keeps an async subscriber
// attached whose queue is never drained, so every round exercises the
// full publish + filter + bounded-queue path (value-copy sends and
// select-default drops) and must still report 0 allocs/op. EngineWorkers
// is pinned to 1: the rows gate bus overhead against the sequential
// engine baseline, not shard fan-out (which allocates per shard per
// phase; see BenchmarkEngineRoundParallel).
//
// sess_prof_n2048_k1024 is the same workload with Config.Profile on —
// clock reads, histogram records, the stall detector, and a
// round_profile publish every round. It must also hold 0 allocs/op, and
// the bench gate pins its ns/op to at most 1.25× the unprofiled sess row
// via benchgate -ratio — a loose bound (per-row noise on shared runners
// is ±20%; measured overhead is within noise of zero, see DESIGN.md §13)
// that still fails on any structural regression in the profiled path.
func BenchmarkEngineRound(b *testing.B) {
	cases := []struct {
		name string
		n, k int
		conc bool
	}{
		// k = n at the small size: gossip needs Θ(kn) rounds, so the run
		// cannot solve inside any realistic -benchtime window and every op
		// stays a real round (guarded below).
		{"seq_n256_k256", 256, 256, false},
		{"seq_n4096_k64", 4096, 64, false},
		{"seq_n10000_k64", 10000, 64, false},
		{"conc_n10000_k64", 10000, 64, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			st, err := core.NewState(tc.n, core.OneTokenPerNode(tc.n, tc.k), 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			proto := core.NewSharedBit(st, prand.NewSharedString(99))
			g := graph.RandomRegular(tc.n, 4, prand.New(7))
			eng := mtm.NewEngine(dyngraph.NewStatic(g), proto, mtm.Config{
				Seed: 3, MaxRounds: b.N, Concurrent: tc.conc,
			})
			b.ResetTimer()
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Rounds < b.N {
				b.Fatalf("solved after %d of %d rounds: ns/op would be diluted; grow k", res.Rounds, b.N)
			}
		})
	}
	for _, sc := range []struct {
		name    string
		withBus bool
		prof    bool
	}{
		{"sess_n2048_k1024", false, false},
		{"sess_bus_n2048_k1024", true, false},
		{"sess_prof_n2048_k1024", false, true},
	} {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			// k = n/2: at most n/2 connections move one token each per round
			// and n·k (node, token) pairs must be learned, so no seed can
			// solve in under 2k = 2048 rounds — every op inside a 500x window
			// is a real round at any seed (still guarded below).
			sim, err := mobilegossip.New(mobilegossip.Config{
				Algorithm: mobilegossip.AlgSharedBit, N: 2048, K: 1024,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
				Seed:     3, MaxRounds: b.N, EngineWorkers: 1,
				Profile: sc.prof,
			})
			if err != nil {
				b.Fatal(err)
			}
			if sc.withBus {
				sub := sim.Bus().Subscribe(mobilegossip.EventFilter{}, 64)
				defer sub.Close()
			}
			b.ResetTimer()
			for !sim.Done() {
				if _, err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
			if sim.Round() < b.N {
				b.Fatalf("solved after %d of %d rounds: ns/op would be diluted; grow k", sim.Round(), b.N)
			}
		})
	}
}

// BenchmarkEngineRoundParallel measures one round of the shard-parallel
// engine backend at n = 100k across worker counts. Workloads and results
// are byte-identical at every worker count — only wall-clock differs — so
// on a multicore runner the w1/w4 ns/op ratio directly shows the round
// speedup (≥3× expected at 4+ cores; phases are embarrassingly parallel
// and the deterministic reduction is O(workers)).
//
// The rows use fixed worker counts (no GOMAXPROCS row): the goroutine
// fan-out allocates per shard per phase, so allocs/op is a machine-
// independent function of the worker count and stays gateable, while a
// hardware-dependent row would pin the baseline machine's core count into
// BENCH_core.json. The w1 row rides the sequential path and must stay at
// 0 allocs/op.
func BenchmarkEngineRoundParallel(b *testing.B) {
	const n, k = 100000, 64
	g := graph.RandomRegular(n, 4, prand.New(7))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par_n100000_w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			proto := core.NewSharedBit(st, prand.NewSharedString(99))
			eng := mtm.NewEngine(dyngraph.NewStatic(g), proto, mtm.Config{
				Seed: 3, MaxRounds: b.N, Workers: workers,
			})
			b.ResetTimer()
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Rounds < b.N {
				b.Fatalf("solved after %d of %d rounds: ns/op would be diluted; grow k", res.Rounds, b.N)
			}
		})
	}
}

// BenchmarkRunSweep measures the parallel sweep engine against its own
// single-worker (sequential-equivalent) configuration on a Figure-1-style
// grid. The workloads and results are bit-identical in both runs — only
// the worker count differs — so on a machine with 4+ cores the max/1
// ns/op ratio directly demonstrates the sweep engine's speedup (≥2×
// expected; the grid cells are independent simulations with no shared
// state, so scaling is near-linear until cells run out).
func BenchmarkRunSweep(b *testing.B) {
	var points []mobilegossip.Config
	for _, n := range []int{32, 48, 64} {
		for _, k := range []int{4, 8} {
			points = append(points, mobilegossip.Config{
				Algorithm: mobilegossip.AlgSharedBit, N: n, K: k,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
				Tau:      1,
			})
		}
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers_1", 1},
		{fmt.Sprintf("workers_max_%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
					Points: points, Trials: 4, Seed: uint64(i) + 1, Workers: tc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				for p, pt := range sr.Points {
					if pt.Solved != len(pt.Runs) {
						b.Fatalf("point %d: %d/%d solved", p, pt.Solved, len(pt.Runs))
					}
				}
			}
		})
	}
}

// BenchmarkGraph measures generator + property-computation cost for the
// topology substrate.
func BenchmarkGraph(b *testing.B) {
	b.Run("random_regular_n1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := graph.RandomRegular(1024, 4, prand.New(uint64(i)+1))
			if g.N() != 1024 {
				b.Fatal("bad graph")
			}
		}
	})
	b.Run("expansion_exact_n20", func(b *testing.B) {
		b.ReportAllocs()
		g := graph.RandomRegular(20, 4, prand.New(5))
		for i := 0; i < b.N; i++ {
			if _, ok := g.ExactVertexExpansion(); !ok {
				b.Fatal("exact expansion should be available at n=20")
			}
		}
	})
	b.Run("expansion_estimate_n512", func(b *testing.B) {
		b.ReportAllocs()
		g := graph.RandomRegular(512, 4, prand.New(5))
		rng := prand.New(11)
		for i := 0; i < b.N; i++ {
			if a := g.EstimateVertexExpansion(200, rng); a <= 0 {
				b.Fatal("estimate should be positive on a connected graph")
			}
		}
	})
}
