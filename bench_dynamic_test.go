package mobilegossip_test

// BenchmarkDynamicRound measures one topology round of a mobility schedule
// — move every node, recompute the unit-disk proximity edges on the spatial
// hash grid, repair connectivity, and maintain the CSR — comparing the two
// CSR-maintenance strategies:
//
//   - delta:   diff the sorted edge lists and patch the previous round's
//     CSR in place (graph.Patcher) — the production path;
//   - rebuild: feed the edge list through graph.Builder from scratch every
//     round — the pre-mobility status quo (what dyngraph.Regen does).
//
// The two produce byte-identical graphs (see internal/mobility's
// equivalence tests); the benchmark exists to pin the delta path's
// advantage, which the CI bench-gate locks in alongside the engine suite.

import (
	"fmt"
	"testing"

	"mobilegossip/internal/mobility"
)

func BenchmarkDynamicRound(b *testing.B) {
	models := []struct {
		name string
		mk   func(speed float64) mobility.Model
	}{
		{"waypoint", func(v float64) mobility.Model { return mobility.Waypoint(v, 2) }},
		{"levy", func(v float64) mobility.Model { return mobility.Levy(v, 1.6) }},
		{"group", func(v float64) mobility.Model { return mobility.Group(4, 0.6, v) }},
		{"commuter", func(v float64) mobility.Model { return mobility.Commuter(v, 64) }},
	}
	for _, n := range []int{10000, 100000} {
		// The physical smartphone regime: a walker covers a few percent of
		// the radio range per round (1 m/s against a 30–100 m range), so a
		// round churns a few percent of the edges. (An absolute speed would
		// cross the whole range per round at n = 10⁵, churning every edge —
		// an interesting stress case but not the regime delta maintenance
		// is for.)
		speed := mobility.DefaultRadius(n) / 32
		for _, m := range models {
			for _, mode := range []struct {
				name    string
				rebuild bool
			}{{"delta", false}, {"rebuild", true}} {
				b.Run(fmt.Sprintf("%s_n%d_%s", m.name, n, mode.name), func(b *testing.B) {
					s := mobility.New(m.mk(speed), mobility.Options{
						N: n, Tau: 1, Seed: 11, Rebuild: mode.rebuild,
					})
					s.At(1) // materialize round 1 outside the timer
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						s.At(i + 2)
					}
				})
			}
		}
	}
}
