package mobilegossip

import (
	"fmt"
	"strings"

	"mobilegossip/internal/adversary"
)

// AdversaryKind enumerates the built-in adversarial topology strategies
// (internal/adversary). An adversary is layered *over* a base Topology of
// any Kind — static families, τ-dynamic regeneration, or the mobility
// models — and perturbs each epoch's edge list under the strategy, within
// the optional Topology.AdvBudget, with connectivity repaired by relay
// bridges. AdvNone (the zero value) disables it.
type AdversaryKind int

// The adversarial strategies. The first two are oblivious (precomputed
// worst-case schedules), the next two adaptive (they read the algorithm's
// live token state), the rest catastrophic events.
const (
	AdvNone AdversaryKind = iota
	// AdvBipartition alternates two fixed vertex cuts, suppressing every
	// crossing edge: the network decomposes into two halves joined by one
	// bottleneck bridge, and the active cut flips each epoch.
	AdvBipartition
	// AdvBridges shatters the vertices into AdvParts rotating groups and
	// suppresses every inter-group edge — dense islands, single bridges.
	AdvBridges
	// AdvCutRich severs edges of the token-richest nodes first, spending
	// the per-epoch AdvBudget where the algorithm stores its progress.
	AdvCutRich
	// AdvIsolate surgically cuts the current token-leader and its
	// neighborhood out of the topology each epoch.
	AdvIsolate
	// AdvBlackout darkens one of AdvParts regions for the first half of
	// every AdvPeriod-epoch cycle, then moves on.
	AdvBlackout
	// AdvPartition alternates near-partition (one bridge between two
	// islands) and fully healed phases on an AdvPeriod cycle.
	AdvPartition
	// AdvTopK isolates the AdvParts highest-degree nodes of the base
	// topology every epoch — a targeted attack on Δ.
	AdvTopK
)

var advNames = map[AdversaryKind]string{
	AdvNone: "none", AdvBipartition: "bipartition", AdvBridges: "bridges",
	AdvCutRich: "cutrich", AdvIsolate: "isolate", AdvBlackout: "blackout",
	AdvPartition: "partition", AdvTopK: "topk",
}

// AdversaryKinds enumerates every adversarial strategy (excluding AdvNone),
// in declaration order — the single source of truth for CLIs and error
// messages.
func AdversaryKinds() []AdversaryKind {
	return []AdversaryKind{
		AdvBipartition, AdvBridges, AdvCutRich, AdvIsolate,
		AdvBlackout, AdvPartition, AdvTopK,
	}
}

// AdversaryKindNames returns the parseable names of AdversaryKinds, in
// order, with "none" first.
func AdversaryKindNames() []string {
	names := make([]string, 0, len(advNames))
	names = append(names, advNames[AdvNone])
	for _, k := range AdversaryKinds() {
		names = append(names, k.String())
	}
	return names
}

// String returns the strategy name.
func (k AdversaryKind) String() string {
	if s, ok := advNames[k]; ok {
		return s
	}
	return fmt.Sprintf("AdversaryKind(%d)", int(k))
}

// ParseAdversaryKind resolves a strategy name (as printed by String).
// "none" and "" parse to AdvNone.
func ParseAdversaryKind(s string) (AdversaryKind, error) {
	if s == "" {
		return AdvNone, nil
	}
	for k, name := range advNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("mobilegossip: unknown adversary %q (valid: %s)",
		s, strings.Join(AdversaryKindNames(), ", "))
}

// strategy instantiates the internal/adversary strategy for the kind,
// applying the documented AdvParts/AdvPeriod defaults.
func (t Topology) strategy() (adversary.Strategy, error) {
	parts := t.AdvParts
	period := t.AdvPeriod
	if period <= 0 {
		period = 8
	}
	switch t.Adversary {
	case AdvBipartition:
		return adversary.Bipartition(), nil
	case AdvBridges:
		if parts <= 0 {
			parts = 4
		}
		return adversary.Bridges(parts), nil
	case AdvCutRich:
		return adversary.CutRich(), nil
	case AdvIsolate:
		return adversary.Isolate(), nil
	case AdvBlackout:
		if parts <= 0 {
			parts = 4
		}
		return adversary.Blackout(parts, period), nil
	case AdvPartition:
		return adversary.Partition(period), nil
	case AdvTopK:
		if parts <= 0 {
			parts = 3
		}
		return adversary.TopK(parts), nil
	default:
		return nil, fmt.Errorf("mobilegossip: unknown adversary kind %v", t.Adversary)
	}
}
