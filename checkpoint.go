package mobilegossip

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"mobilegossip/internal/adversary"
	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/events"
	"mobilegossip/internal/mobility"
)

// The checkpoint stream format: a magic string, a format version, the full
// run configuration, then one section per state-carrying layer (engine
// meters + per-node RNG streams, token arena, protocol extras, mobility
// trajectory). Everything a deterministic execution depends on is either
// serialized or reconstructed from the serialized Config — observers and
// the legacy OnRound/TraceWriter hooks are process-local and must be
// re-attached after Resume.
//
// Version policy (DESIGN.md §9): the version is bumped on any layout
// change; Resume rejects versions it does not know rather than guessing.
const (
	checkpointMagic = "mobilegossip/checkpoint"
	// CheckpointVersion is the checkpoint format version this build writes
	// and the only version it resumes. Version 2 added the adversary
	// topology knobs to the config block and generalized the topology
	// section's mobility flag into a schedule-kind tag; version 3 added the
	// Topology.Relabel knob. Config.EngineWorkers is deliberately NOT in
	// the stream: worker count affects wall-clock only, so sequential and
	// parallel runs write interchangeable, byte-identical checkpoints and a
	// resumed session re-resolves its own worker count.
	CheckpointVersion = 3
)

// Topology-section schedule-kind tags: which dynamic-schedule state (if
// any) follows the config/engine/protocol sections.
const (
	topoStateNone      = 0 // pure function of (Config, round): nothing serialized
	topoStateMobility  = 1 // mobility.Schedule trajectory
	topoStateAdversary = 2 // adversary.Engine state (wrapping its base's, if any)
)

// topoCheckpointer is the stateful-schedule contract: schedules that carry
// mutable state beyond (Config, round) serialize it through this pair.
type topoCheckpointer interface {
	CheckpointTo(w *ckpt.Writer)
	RestoreFrom(r *ckpt.Reader) error
}

// topoState maps a dynamic schedule to its kind tag and, for stateful
// kinds, its checkpointer — the single dispatch Checkpoint and Resume
// share, so adding a schedule kind touches exactly one switch.
func topoState(dyn dyngraph.Dynamic) (int, topoCheckpointer) {
	switch d := dyn.(type) {
	case *adversary.Engine:
		// Adversary engines serialize their RNG stream, epoch and current
		// edge list — and their base schedule's state when it carries any
		// (mobility trajectories).
		return topoStateAdversary, d
	case *mobility.Schedule:
		// Mobility trajectories are serialized so Resume continues the
		// motion directly instead of replaying every epoch from the seed.
		return topoStateMobility, d
	default:
		// Static and regenerating schedules are pure functions of
		// (Config, round): the engine's next At(r) rebuilds them exactly.
		return topoStateNone, nil
	}
}

// ErrCheckpointFormat reports a stream that is not a mobilegossip
// checkpoint, or one whose version this build does not support.
var ErrCheckpointFormat = errors.New("mobilegossip: not a supported checkpoint stream")

// Checkpoint serializes the simulation's complete deterministic state to
// w. Valid at any round boundary — before the first Step, mid-run, or
// after completion. The checkpoint captures the logical run exactly:
// resuming it and stepping to completion yields byte-identical results to
// the uninterrupted execution, for every algorithm and topology family.
//
// Checkpoints of identical states are themselves byte-identical, so tests
// and CI can compare checkpoint files directly.
func (s *Simulation) Checkpoint(w io.Writer) error {
	if err := s.eng.Failed(); err != nil {
		return fmt.Errorf("mobilegossip: cannot checkpoint a failed run: %w", err)
	}
	// The checkpoint bytes are identical profiled or not (Profile is a
	// wall-clock-only knob, deliberately outside the stream like
	// EngineWorkers); profiling only times the serialization below.
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	cw := ckpt.NewWriter(w)
	cw.String(checkpointMagic)
	cw.U64(CheckpointVersion)
	writeConfig(cw, s.cfg)
	s.eng.CheckpointTo(cw)
	s.st.CheckpointTo(cw)

	cw.Section("protocol")
	if s.parts.shared != nil {
		cw.U64(s.parts.shared.Seed())
	}
	if s.parts.eps != nil {
		s.parts.eps.CheckpointTo(cw)
	}
	if s.parts.ssb != nil {
		s.parts.ssb.CheckpointTo(cw)
	}
	if s.parts.cb != nil {
		s.parts.cb.CheckpointTo(cw)
	}

	cw.Section("topology")
	tag, cp := topoState(s.dyn)
	cw.Int(tag)
	if cp != nil {
		cp.CheckpointTo(cw)
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	var writeNs int64
	if s.prof != nil {
		writeNs = time.Since(t0).Nanoseconds()
		s.prof.RecordCheckpointWrite(writeNs)
	}
	s.bus.Publish(events.Event{
		Type: events.TypeCheckpointWritten, Round: s.eng.Round(), Potential: s.st.Potential(),
		WriteNanos: writeNs,
	})
	return nil
}

// CheckpointFile serializes the simulation to path atomically: the
// stream is written to a temporary sibling file and renamed into place
// only after a successful flush, so a crash mid-write can never leave a
// truncated checkpoint where a valid one (or nothing) should be. This is
// the persistence hook gossipd's checkpoint-backed session eviction
// rides; it is equally convenient for CLI-level snapshots.
func (s *Simulation) CheckpointFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ResumeFile revives a CheckpointFile (or any Checkpoint stream saved to
// disk) into a live simulation — the counterpart hook gossipd uses to
// transparently revive evicted sessions on their next touch.
func ResumeFile(path string) (*Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Resume(f)
}

// Resume deserializes a Checkpoint stream into a live simulation
// positioned at the checkpointed round boundary. The configuration is read
// from the stream; observers (and the legacy OnRound/TraceWriter hooks,
// which cannot be serialized) must be re-attached with Observe.
//
// A resumed simulation continues byte-identically to the run that wrote
// the checkpoint: same rounds, same meters, same final Result.
func Resume(r io.Reader) (*Simulation, error) {
	cr := ckpt.NewReader(r)
	if magic := cr.String(); cr.Err() != nil || magic != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointFormat)
	}
	if v := cr.U64(); cr.Err() != nil || v != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d (this build supports %d)",
			ErrCheckpointFormat, v, CheckpointVersion)
	}
	cfg, err := readConfig(cr)
	if err != nil {
		return nil, err
	}
	sim, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("mobilegossip: rebuilding checkpointed run: %w", err)
	}
	if err := sim.eng.RestoreFrom(cr); err != nil {
		return nil, err
	}
	if err := sim.st.RestoreFrom(cr); err != nil {
		return nil, err
	}

	cr.Section("protocol")
	if sim.parts.shared != nil {
		if seed := cr.U64(); cr.Err() == nil && seed != sim.parts.shared.Seed() {
			return nil, fmt.Errorf("mobilegossip: checkpoint shared-string key %#x does not match rebuilt key %#x",
				seed, sim.parts.shared.Seed())
		}
	}
	if sim.parts.eps != nil {
		if err := sim.parts.eps.RestoreFrom(cr); err != nil {
			return nil, err
		}
	}
	if sim.parts.ssb != nil {
		if err := sim.parts.ssb.RestoreFrom(cr); err != nil {
			return nil, err
		}
	}
	if sim.parts.cb != nil {
		if err := sim.parts.cb.RestoreFrom(cr); err != nil {
			return nil, err
		}
	}

	cr.Section("topology")
	tag := cr.Int()
	rebuiltTag, cp := topoState(sim.dyn)
	if tag != rebuiltTag {
		return nil, fmt.Errorf("mobilegossip: checkpoint topology state (kind %d) does not match rebuilt schedule (kind %d)",
			tag, rebuiltTag)
	}
	if cp != nil {
		if err := cp.RestoreFrom(cr); err != nil {
			return nil, err
		}
	}
	if err := cr.Err(); err != nil {
		return nil, err
	}
	// Announced on the bus (after session_start) at the first Step, when
	// the revived session's subscribers are attached.
	sim.resumed = true
	return sim, nil
}

// writeConfig serializes the data fields of a Config (the function-valued
// and observer fields are process-local and excluded).
func writeConfig(w *ckpt.Writer, cfg Config) {
	w.Section("config")
	w.Int(int(cfg.Algorithm))
	w.Int(cfg.N)
	w.Int(cfg.K)
	w.Bool(cfg.Assignment != nil)
	if cfg.Assignment != nil {
		w.Int(cfg.Assignment.Universe)
		w.Ints(cfg.Assignment.Tokens)
		w.Ints(cfg.Assignment.Owners)
	}
	t := cfg.Topology
	w.Int(int(t.Kind))
	w.Int(t.Degree)
	w.F64(t.P)
	w.Int(t.Rows)
	w.Int(t.Cols)
	w.Int(t.CliqueSize)
	w.Int(t.PathLen)
	w.F64(t.Radius)
	w.Int(t.Attach)
	w.F64(t.Speed)
	w.Int(t.Pause)
	w.F64(t.LevyAlpha)
	w.Int(t.Groups)
	w.F64(t.Attract)
	w.Int(t.Period)
	w.Int(int(t.Adversary))
	w.Int(t.AdvBudget)
	w.Int(t.AdvParts)
	w.Int(t.AdvPeriod)
	w.Int(int(t.Relabel))
	w.Int(cfg.Tau)
	w.F64(cfg.Epsilon)
	w.Int(cfg.TagBits)
	w.U64(cfg.Seed)
	w.Int(cfg.MaxRounds)
	w.Bool(cfg.Concurrent)
	w.F64(cfg.TransferEps)
	w.Int(cfg.CrowdedBin.Beta)
	w.Int(cfg.CrowdedBin.Gamma)
}

// readConfig deserializes a writeConfig stream.
func readConfig(r *ckpt.Reader) (Config, error) {
	var cfg Config
	r.Section("config")
	cfg.Algorithm = Algorithm(r.Int())
	cfg.N = r.Int()
	cfg.K = r.Int()
	if r.Bool() {
		a := &core.Assignment{}
		a.Universe = r.Int()
		a.Tokens = r.Ints()
		a.Owners = r.Ints()
		cfg.Assignment = a
	}
	t := &cfg.Topology
	t.Kind = TopologyKind(r.Int())
	t.Degree = r.Int()
	t.P = r.F64()
	t.Rows = r.Int()
	t.Cols = r.Int()
	t.CliqueSize = r.Int()
	t.PathLen = r.Int()
	t.Radius = r.F64()
	t.Attach = r.Int()
	t.Speed = r.F64()
	t.Pause = r.Int()
	t.LevyAlpha = r.F64()
	t.Groups = r.Int()
	t.Attract = r.F64()
	t.Period = r.Int()
	t.Adversary = AdversaryKind(r.Int())
	t.AdvBudget = r.Int()
	t.AdvParts = r.Int()
	t.AdvPeriod = r.Int()
	t.Relabel = RelabelKind(r.Int())
	cfg.Tau = r.Int()
	cfg.Epsilon = r.F64()
	cfg.TagBits = r.Int()
	cfg.Seed = r.U64()
	cfg.MaxRounds = r.Int()
	cfg.Concurrent = r.Bool()
	cfg.TransferEps = r.F64()
	cfg.CrowdedBin.Beta = r.Int()
	cfg.CrowdedBin.Gamma = r.Int()
	return cfg, r.Err()
}
