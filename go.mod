module mobilegossip

go 1.24
