package mobilegossip

import (
	"math"
	"testing"
)

func TestInspectKnownFamilies(t *testing.T) {
	cases := []struct {
		topo      Topology
		n         int
		wantDelta int
		wantDiam  int
		wantAlpha float64 // exact values for n ≤ 22 families
	}{
		{Topology{Kind: Cycle}, 16, 2, 8, 4.0 / 16},
		{Topology{Kind: Complete}, 10, 9, 1, 1},
		// Star α: the minimizing S is ⌊n/2⌋ leaves, whose boundary is just
		// the hub — α = 1/6 at n = 12.
		{Topology{Kind: Star}, 12, 11, 2, 1.0 / 6},
		{Topology{Kind: DoubleStar}, 16, 8, 3, 1.0 / 8},
	}
	for _, tc := range cases {
		info, err := tc.topo.Inspect(tc.n, 1)
		if err != nil {
			t.Fatalf("%v: %v", tc.topo.Kind, err)
		}
		if info.N != tc.n {
			t.Errorf("%v: N = %d, want %d", tc.topo.Kind, info.N, tc.n)
		}
		if info.MaxDegree != tc.wantDelta {
			t.Errorf("%v: Δ = %d, want %d", tc.topo.Kind, info.MaxDegree, tc.wantDelta)
		}
		if info.Diameter != tc.wantDiam {
			t.Errorf("%v: D = %d, want %d", tc.topo.Kind, info.Diameter, tc.wantDiam)
		}
		if !info.AlphaExact {
			t.Errorf("%v: expected exact α at n = %d", tc.topo.Kind, tc.n)
		}
		if math.Abs(info.Alpha-tc.wantAlpha) > 1e-9 {
			t.Errorf("%v: α = %v, want %v", tc.topo.Kind, info.Alpha, tc.wantAlpha)
		}
		if info.LogNOverAlpha <= 0 {
			t.Errorf("%v: LogNOverAlpha = %v, want > 0", tc.topo.Kind, info.LogNOverAlpha)
		}
	}
}

func TestInspectLargeUsesEstimate(t *testing.T) {
	info, err := Topology{Kind: RandomRegular, Degree: 4}.Inspect(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.AlphaExact {
		t.Error("n = 64 should use the α estimate")
	}
	if info.Alpha <= 0 || info.Alpha > 2 {
		t.Errorf("α estimate %v out of range", info.Alpha)
	}
	if info.MaxDegree != 4 {
		t.Errorf("Δ = %d, want 4 on a 4-regular graph", info.MaxDegree)
	}
}

func TestInspectPropagatesBuildErrors(t *testing.T) {
	if _, err := (Topology{Kind: Hypercube}).Inspect(10, 1); err == nil {
		t.Error("hypercube with non-power-of-two n should fail")
	}
	if _, err := (Topology{Kind: TopologyKind(99)}).Inspect(8, 1); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestInspectDynamicWorstCaseOverEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-epoch expansion estimation skipped in -short mode")
	}
	// The dynamic α is the minimum over epochs, so it can only be ≤ the
	// first epoch's α; Δ is the maximum, so ≥ the first epoch's Δ.
	stat, err := Topology{Kind: RandomRegular, Degree: 4}.Inspect(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Topology{Kind: RandomRegular, Degree: 4}.InspectDynamic(32, 1, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.MaxDegree < stat.MaxDegree {
		t.Errorf("dynamic Δ %d < static Δ %d", dyn.MaxDegree, stat.MaxDegree)
	}
	if dyn.Alpha <= 0 {
		t.Errorf("dynamic α = %v, want > 0 (schedules stay connected)", dyn.Alpha)
	}
}

func TestInspectDynamicTauZeroDelegatesToStatic(t *testing.T) {
	a, err := Topology{Kind: Cycle}.Inspect(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Topology{Kind: Cycle}.InspectDynamic(16, 0, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("InspectDynamic(tau=0) = %+v, want %+v", b, a)
	}
}
