// Package mobilegossip is a library reproduction of Calvin Newport's
// "Gossip in a Smartphone Peer-to-Peer Network" (PODC 2017): the mobile
// telephone model of smartphone peer-to-peer networking and the paper's
// gossip algorithms — BlindMatch (b = 0), SharedBit and SimSharedBit
// (b = 1, dynamic topologies), CrowdedBin (b = 1, stable topologies), and
// SharedBit's relaxed ε-gossip mode.
//
// The package-level Run function covers the common case — pick an
// algorithm, a topology family, sizes and a seed, and get round/connection
// counts back:
//
//	res, err := mobilegossip.Run(mobilegossip.Config{
//	    Algorithm: mobilegossip.AlgSharedBit,
//	    N:         128,
//	    K:         16,
//	    Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
//	    Seed:      1,
//	})
//
// The internal packages expose the full machinery (engine, graph
// generators, dynamic schedules, Transfer(ε), leader election, PPUSH) for
// programs within this module; see DESIGN.md for the map.
package mobilegossip

import (
	"errors"
	"fmt"
	"io"

	"mobilegossip/internal/core"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/trace"
)

// Algorithm selects one of the paper's gossip algorithms.
type Algorithm int

// The gossip algorithms of the paper (Figure 1).
const (
	// AlgBlindMatch: b = 0, τ ≥ 1 — O((1/α)·k·Δ²·log²n) (§4).
	AlgBlindMatch Algorithm = iota + 1
	// AlgSharedBit: b = 1, τ ≥ 1, shared randomness — O(kn) (§5.1).
	AlgSharedBit
	// AlgSimSharedBit: b = 1, τ ≥ 1 — O(kn + (1/α)·Δ^{1/τ}·log⁶n) (§5.2).
	AlgSimSharedBit
	// AlgCrowdedBin: b = 1, τ = ∞ — O((1/α)·k·log⁶n) (§6).
	AlgCrowdedBin
)

var algNames = map[Algorithm]string{
	AlgBlindMatch: "blindmatch", AlgSharedBit: "sharedbit",
	AlgSimSharedBit: "simsharedbit", AlgCrowdedBin: "crowdedbin",
}

// String returns the algorithm's name.
func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves an algorithm name (as printed by String).
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("mobilegossip: unknown algorithm %q", s)
}

// Config parameterizes one gossip run.
type Config struct {
	// Algorithm selects the protocol.
	Algorithm Algorithm
	// N is the network size (> 1).
	N int
	// K is the token count, 1 ≤ K ≤ N; tokens are placed one per node on
	// the first K nodes (the paper's canonical setup). Use Assignment for
	// custom placements.
	K int
	// Assignment overrides the canonical placement when non-empty.
	Assignment *core.Assignment
	// Topology picks the topology family.
	Topology Topology
	// Tau is the stability factor: 0 means τ = ∞ (static); τ ≥ 1 redraws
	// the topology every τ rounds. AlgCrowdedBin requires a static
	// topology.
	Tau int
	// Epsilon, when in (0, 1), relaxes the objective to ε-gossip and
	// requires K = N. Supported by AlgSharedBit (§7, Theorem 7.4) and
	// AlgSimSharedBit (Corollary 7.5).
	Epsilon float64
	// TagBits, when ≥ 2 with AlgSharedBit, runs the b-bit generalization
	// of the advertisement (see core.MultiBit): different token sets then
	// yield different tags with probability 1 − 2^{−b} instead of 1/2.
	// 0 and 1 select the paper's standard 1-bit algorithm.
	TagBits int
	// Seed determines the entire execution (0 is a valid seed).
	Seed uint64
	// MaxRounds aborts unfinished runs (default 2^22).
	MaxRounds int
	// Concurrent selects the goroutine-per-connection engine backend.
	Concurrent bool
	// TransferEps is the per-call Transfer(ε) failure bound
	// (default n^{-3}).
	TransferEps float64
	// CrowdedBin tunes the §6 schedule constants.
	CrowdedBin core.CrowdedBinConfig
	// OnRound, if set, receives (round, φ) after every round.
	OnRound func(round, potential int)
	// TraceWriter, if set, receives one JSON line per proposal and per
	// accepted connection (see internal/trace for the event schema).
	TraceWriter io.Writer
}

// Result reports a finished (or aborted) run.
type Result struct {
	// Algorithm and topology echo the configuration.
	Algorithm Algorithm
	Topology  string
	// Solved reports whether the objective (gossip or ε-gossip) was reached.
	Solved bool
	// Rounds is the number of rounds executed.
	Rounds int
	// Connections, Proposals, ControlBits, TokensMoved are totals over the
	// run as metered by the engine.
	Connections int64
	Proposals   int64
	ControlBits int64
	TokensMoved int64
	// EdgesAdded and EdgesRemoved total the topology churn over the run,
	// as reported by delta-capable dynamic schedules (the mobility kinds);
	// 0 for static and regenerating schedules.
	EdgesAdded   int64
	EdgesRemoved int64
	// FinalPotential is φ at the end (0 when fully solved).
	FinalPotential int
}

// Errors returned by Run for invalid configurations.
var (
	ErrBadN            = errors.New("mobilegossip: N must be at least 2")
	ErrBadK            = errors.New("mobilegossip: K must be in [1, N]")
	ErrEpsilonRequires = errors.New("mobilegossip: Epsilon requires AlgSharedBit or AlgSimSharedBit, and K = N")
	ErrCrowdedBinTau   = errors.New("mobilegossip: AlgCrowdedBin requires a static topology (Tau = 0)")
	ErrTagBitsRequires = errors.New("mobilegossip: TagBits >= 2 requires AlgSharedBit")
)

// Run executes one gossip simulation described by cfg.
func Run(cfg Config) (Result, error) {
	var res Result
	if cfg.N < 2 {
		return res, ErrBadN
	}
	if cfg.Assignment == nil && (cfg.K < 1 || cfg.K > cfg.N) {
		return res, ErrBadK
	}
	if cfg.Epsilon != 0 {
		if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
			return res, fmt.Errorf("mobilegossip: Epsilon %v outside (0,1)", cfg.Epsilon)
		}
		epsAlg := cfg.Algorithm == AlgSharedBit || cfg.Algorithm == AlgSimSharedBit
		if !epsAlg || (cfg.Assignment == nil && cfg.K != cfg.N) {
			return res, ErrEpsilonRequires
		}
	}
	if cfg.TagBits >= 2 && cfg.Algorithm != AlgSharedBit {
		return res, ErrTagBitsRequires
	}
	if cfg.TagBits > 64 || cfg.TagBits < 0 {
		return res, fmt.Errorf("mobilegossip: TagBits %d outside [0, 64]", cfg.TagBits)
	}
	if cfg.Algorithm == AlgCrowdedBin && cfg.Tau > 0 {
		return res, ErrCrowdedBinTau
	}
	if cfg.Topology.Kind == 0 {
		cfg.Topology.Kind = RandomRegular
	}
	transferEps := cfg.TransferEps
	if transferEps <= 0 {
		nf := float64(cfg.N)
		transferEps = 1 / (nf * nf * nf)
	}

	assign := core.OneTokenPerNode(cfg.N, cfg.K)
	if cfg.Assignment != nil {
		assign = *cfg.Assignment
	}
	st, err := core.NewState(cfg.N, assign, transferEps)
	if err != nil {
		return res, err
	}

	dyn, err := cfg.Topology.Build(cfg.N, cfg.Tau, prand.Mix64(cfg.Seed^0x6c62272e07bb0142))
	if err != nil {
		return res, err
	}

	proto, err := buildProtocol(cfg, st)
	if err != nil {
		return res, err
	}
	var rec *trace.Recorder
	if cfg.TraceWriter != nil {
		rec = trace.NewRecorder(cfg.TraceWriter)
		proto = trace.Wrap(proto, rec)
	}

	engCfg := mtm.Config{
		Seed:       prand.Mix64(cfg.Seed ^ 0x51afd7ed558ccd6d),
		MaxRounds:  cfg.MaxRounds,
		Concurrent: cfg.Concurrent,
	}
	if cfg.OnRound != nil {
		engCfg.OnRound = func(r int) { cfg.OnRound(r, st.Potential()) }
	}
	runRes, err := mtm.NewEngine(dyn, proto, engCfg).Run()
	if err == nil && rec != nil {
		err = rec.Err()
	}
	res = Result{
		Algorithm:      cfg.Algorithm,
		Topology:       dyn.Name(),
		Solved:         runRes.Completed,
		Rounds:         runRes.Rounds,
		Connections:    runRes.Connections,
		Proposals:      runRes.Proposals,
		ControlBits:    runRes.ControlBits,
		TokensMoved:    runRes.TokensMoved,
		EdgesAdded:     runRes.EdgesAdded,
		EdgesRemoved:   runRes.EdgesRemoved,
		FinalPotential: st.Potential(),
	}
	return res, err
}

// buildProtocol assembles the configured algorithm over st.
func buildProtocol(cfg Config, st *core.State) (mtm.Protocol, error) {
	switch cfg.Algorithm {
	case AlgBlindMatch:
		return core.NewBlindMatch(st), nil
	case AlgSharedBit:
		shared := prand.NewSharedString(prand.Mix64(cfg.Seed ^ 0xb492b66fbe98f273))
		var sb core.SetProtocol = core.NewSharedBit(st, shared)
		if cfg.TagBits >= 2 {
			mb, err := core.NewMultiBit(st, shared, cfg.TagBits)
			if err != nil {
				return nil, err
			}
			sb = mb
		}
		if cfg.Epsilon != 0 {
			return core.NewEpsilonOver(sb, cfg.Epsilon, 1), nil
		}
		return sb, nil
	case AlgSimSharedBit:
		space := prand.NewSeedSpace(st.Universe())
		seeds := core.SampleSeeds(space, st.N(),
			prand.New(prand.Mix64(cfg.Seed^0x2545f4914f6cdd1d)))
		ssb := core.NewSimSharedBit(st, space, seeds)
		if cfg.Epsilon != 0 {
			return core.NewEpsilonOver(ssb, cfg.Epsilon, 1), nil
		}
		return ssb, nil
	case AlgCrowdedBin:
		return core.NewCrowdedBin(st, cfg.CrowdedBin,
			prand.New(prand.Mix64(cfg.Seed^0x9fb21c651e98df25)))
	default:
		return nil, fmt.Errorf("mobilegossip: unknown algorithm %v", cfg.Algorithm)
	}
}
