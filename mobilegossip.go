// The package documentation lives in doc.go; this file holds the
// algorithm/config/result surface.
package mobilegossip

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"mobilegossip/internal/core"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// Algorithm selects one of the paper's gossip algorithms.
type Algorithm int

// The gossip algorithms of the paper (Figure 1).
const (
	// AlgBlindMatch: b = 0, τ ≥ 1 — O((1/α)·k·Δ²·log²n) (§4).
	AlgBlindMatch Algorithm = iota + 1
	// AlgSharedBit: b = 1, τ ≥ 1, shared randomness — O(kn) (§5.1).
	AlgSharedBit
	// AlgSimSharedBit: b = 1, τ ≥ 1 — O(kn + (1/α)·Δ^{1/τ}·log⁶n) (§5.2).
	AlgSimSharedBit
	// AlgCrowdedBin: b = 1, τ = ∞ — O((1/α)·k·log⁶n) (§6).
	AlgCrowdedBin
)

var algNames = map[Algorithm]string{
	AlgBlindMatch: "blindmatch", AlgSharedBit: "sharedbit",
	AlgSimSharedBit: "simsharedbit", AlgCrowdedBin: "crowdedbin",
}

// Algorithms enumerates every built-in algorithm, in declaration order.
// CLIs and error messages use it so the list of valid names has a single
// source of truth.
func Algorithms() []Algorithm {
	return []Algorithm{AlgBlindMatch, AlgSharedBit, AlgSimSharedBit, AlgCrowdedBin}
}

// AlgorithmNames returns the parseable names of Algorithms, in order.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algNames))
	for _, a := range Algorithms() {
		names = append(names, a.String())
	}
	return names
}

// String returns the algorithm's name.
func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves an algorithm name (as printed by String).
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("mobilegossip: unknown algorithm %q (valid: %s)",
		s, strings.Join(AlgorithmNames(), ", "))
}

// Config parameterizes one gossip run.
type Config struct {
	// Algorithm selects the protocol.
	Algorithm Algorithm
	// N is the network size (> 1).
	N int
	// K is the token count, 1 ≤ K ≤ N; tokens are placed one per node on
	// the first K nodes (the paper's canonical setup). Use Assignment for
	// custom placements.
	K int
	// Assignment overrides the canonical placement when non-empty.
	Assignment *core.Assignment
	// Topology picks the topology family.
	Topology Topology
	// Tau is the stability factor: 0 means τ = ∞ (static); τ ≥ 1 redraws
	// the topology every τ rounds. AlgCrowdedBin requires a static
	// topology.
	Tau int
	// Epsilon, when in (0, 1), relaxes the objective to ε-gossip and
	// requires K = N. Supported by AlgSharedBit (§7, Theorem 7.4) and
	// AlgSimSharedBit (Corollary 7.5).
	Epsilon float64
	// TagBits, when ≥ 2 with AlgSharedBit, runs the b-bit generalization
	// of the advertisement (see core.MultiBit): different token sets then
	// yield different tags with probability 1 − 2^{−b} instead of 1/2.
	// 0 and 1 select the paper's standard 1-bit algorithm.
	TagBits int
	// Seed determines the entire execution (0 is a valid seed).
	Seed uint64
	// MaxRounds aborts unfinished runs (default 2^22).
	MaxRounds int
	// Concurrent selects the goroutine-per-connection engine backend.
	Concurrent bool
	// EngineWorkers selects the deterministic shard-parallel round engine:
	// the node range is split into EngineWorkers contiguous, degree-balanced
	// shards and every round phase runs shard-parallel, byte-identical to
	// the sequential engine at any worker count or GOMAXPROCS (DESIGN.md
	// §11).
	//
	//	0  — auto: GOMAXPROCS, capped so every shard keeps ≥ ~2048 nodes
	//	     (small runs stay on the sequential 0 allocs/op path);
	//	1  — force the sequential engine;
	//	≥2 — exactly that many shard workers (capped at N).
	//
	// Worker count changes wall-clock only, never results, and is therefore
	// not part of the checkpoint: sequential and parallel runs write
	// interchangeable, byte-identical checkpoints, and a resumed session
	// re-resolves its own worker count (override with SetEngineWorkers).
	// When ≥ 2 it supersedes Concurrent.
	EngineWorkers int
	// Profile attaches the timing sidecar (internal/profile, DESIGN.md
	// §13): per-round phase spans and shard timing aggregated into
	// histograms, a round_profile event after every round, and the
	// convergence/stall health verdict. Profiling reads the wall clock
	// only — simulation output is byte-identical with it on or off — and
	// like EngineWorkers it is not part of the checkpoint: re-enable on a
	// resumed session with EnableProfiling.
	Profile bool
	// TransferEps is the per-call Transfer(ε) failure bound
	// (default n^{-3}).
	TransferEps float64
	// CrowdedBin tunes the §6 schedule constants.
	CrowdedBin core.CrowdedBinConfig
	// Observers watch the run through the composable observer pipeline
	// (see Observer); they receive BeginRun, one EndRound per round, and
	// EndRun. Provided implementations: NewTraceObserver,
	// NewPotentialSampler, NewChurnMeter.
	Observers []Observer
	// OnRound, if set, receives (round, φ) after every round.
	//
	// Legacy hook: it is adapted onto the observer pipeline; new code
	// should use Observers with a custom Observer (or NewPotentialSampler).
	OnRound func(round, potential int)
	// TraceWriter, if set, receives one JSON line per proposal and per
	// accepted connection (see internal/trace for the event schema).
	//
	// Legacy hook: it is adapted onto the observer pipeline; new code
	// should use Observers with NewTraceObserver, whose Err survives the
	// run.
	TraceWriter io.Writer
}

// Result reports a finished (or aborted) run.
type Result struct {
	// Algorithm and topology echo the configuration.
	Algorithm Algorithm
	Topology  string
	// Solved reports whether the objective (gossip or ε-gossip) was reached.
	Solved bool
	// Rounds is the number of rounds executed.
	Rounds int
	// Connections, Proposals, ControlBits, TokensMoved are totals over the
	// run as metered by the engine.
	Connections int64
	Proposals   int64
	ControlBits int64
	TokensMoved int64
	// EdgesAdded and EdgesRemoved total the topology churn over the run,
	// as reported by delta-capable dynamic schedules (the mobility kinds);
	// 0 for static and regenerating schedules.
	EdgesAdded   int64
	EdgesRemoved int64
	// FinalPotential is φ at the end (0 when fully solved).
	FinalPotential int
}

// Errors returned by Run for invalid configurations.
var (
	ErrBadN            = errors.New("mobilegossip: N must be at least 2")
	ErrBadK            = errors.New("mobilegossip: K must be in [1, N]")
	ErrEpsilonRequires = errors.New("mobilegossip: Epsilon requires AlgSharedBit or AlgSimSharedBit, and K = N")
	ErrCrowdedBinTau   = errors.New("mobilegossip: AlgCrowdedBin requires a static topology (Tau = 0)")
	ErrTagBitsRequires = errors.New("mobilegossip: TagBits >= 2 requires AlgSharedBit")
)

// Run executes one gossip simulation described by cfg: a thin wrapper over
// New + Simulation.Run with a background context, preserved for the common
// blocking case. Callers that need to own the loop — step, observe,
// cancel, checkpoint, resume — use New directly.
func Run(cfg Config) (Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return sim.Run(context.Background())
}

// protoParts is the assembled protocol stack with typed references to the
// layers that carry checkpointable state.
type protoParts struct {
	proto  mtm.Protocol        // the outermost protocol the engine drives
	shared *prand.SharedString // SharedBit/MultiBit shared string (key check)
	ssb    *core.SimSharedBit  // election state
	cb     *core.CrowdedBin    // schedule state
	eps    *core.EpsilonGossip // relaxed-objective state
}

// buildProtocol assembles the configured algorithm over st.
func buildProtocol(cfg Config, st *core.State) (protoParts, error) {
	var parts protoParts
	switch cfg.Algorithm {
	case AlgBlindMatch:
		parts.proto = core.NewBlindMatch(st)
	case AlgSharedBit:
		parts.shared = prand.NewSharedString(prand.Mix64(cfg.Seed ^ 0xb492b66fbe98f273))
		var sb core.SetProtocol = core.NewSharedBit(st, parts.shared)
		if cfg.TagBits >= 2 {
			mb, err := core.NewMultiBit(st, parts.shared, cfg.TagBits)
			if err != nil {
				return parts, err
			}
			sb = mb
		}
		parts.proto = sb
		if cfg.Epsilon != 0 {
			parts.eps = core.NewEpsilonOver(sb, cfg.Epsilon, 1)
			parts.proto = parts.eps
		}
	case AlgSimSharedBit:
		space := prand.NewSeedSpace(st.Universe())
		seeds := core.SampleSeeds(space, st.N(),
			prand.New(prand.Mix64(cfg.Seed^0x2545f4914f6cdd1d)))
		parts.ssb = core.NewSimSharedBit(st, space, seeds)
		parts.proto = parts.ssb
		if cfg.Epsilon != 0 {
			parts.eps = core.NewEpsilonOver(parts.ssb, cfg.Epsilon, 1)
			parts.proto = parts.eps
		}
	case AlgCrowdedBin:
		cb, err := core.NewCrowdedBin(st, cfg.CrowdedBin,
			prand.New(prand.Mix64(cfg.Seed^0x9fb21c651e98df25)))
		if err != nil {
			return parts, err
		}
		parts.cb = cb
		parts.proto = cb
	default:
		return parts, fmt.Errorf("mobilegossip: unknown algorithm %v", cfg.Algorithm)
	}
	return parts, nil
}
