package profile

import (
	"sync"
	"testing"
)

func TestPhaseNames(t *testing.T) {
	want := []string{"churn", "proposal", "exchange", "reduction"}
	ps := Phases()
	if len(ps) != int(NumPhases) || len(ps) != len(want) {
		t.Fatalf("Phases() has %d entries, want %d", len(ps), NumPhases)
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("phase %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if Phase(99).String() != "unknown" {
		t.Errorf("out-of-range phase name = %q", Phase(99).String())
	}
}

func TestRoundProfileImbalance(t *testing.T) {
	rp := RoundProfile{Workers: 4, MaxShardNs: 3000, MeanShardNs: 2000}
	if got := rp.ImbalanceMilli(); got != 1500 {
		t.Errorf("ImbalanceMilli = %d, want 1500", got)
	}
	rp.Workers = 1
	if got := rp.ImbalanceMilli(); got != 0 {
		t.Errorf("sequential ImbalanceMilli = %d, want 0", got)
	}
	rp = RoundProfile{Workers: 2, MaxShardNs: 10, MeanShardNs: 0}
	if got := rp.ImbalanceMilli(); got != 0 {
		t.Errorf("zero-mean ImbalanceMilli = %d, want 0", got)
	}
}

func TestRecorderAggregates(t *testing.T) {
	rec := NewRecorder()
	if rec.Rounds() != 0 {
		t.Fatalf("fresh recorder Rounds = %d", rec.Rounds())
	}
	rec.Record(RoundProfile{
		Round: 1, TotalNs: 1000,
		PhaseNs: [NumPhases]int64{100, 500, 300, 50},
		Workers: 1,
	})
	rec.Record(RoundProfile{
		Round: 2, TotalNs: 2000,
		PhaseNs: [NumPhases]int64{200, 900, 700, 100},
		Workers: 4, MaxShardNs: 600, MinShardNs: 200, MeanShardNs: 400,
		BarrierNs: 800,
	})
	if rec.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2", rec.Rounds())
	}
	if got := rec.RoundLatency().Sum(); got != 3000 {
		t.Errorf("round latency sum = %d, want 3000", got)
	}
	if got := rec.PhaseLatency(PhaseProposal).Sum(); got != 1400 {
		t.Errorf("proposal phase sum = %d, want 1400", got)
	}
	// Only the sharded round feeds imbalance and barrier histograms.
	if got := rec.Imbalance().Count(); got != 1 {
		t.Errorf("imbalance count = %d, want 1", got)
	}
	if got := rec.Imbalance().Sum(); got != 1500 {
		t.Errorf("imbalance sum = %d, want 1500", got)
	}
	if got := rec.BarrierWait().Sum(); got != 800 {
		t.Errorf("barrier sum = %d, want 800", got)
	}
	last := rec.Last()
	if last.Round != 2 || last.Workers != 4 {
		t.Errorf("Last = %+v, want round 2 / workers 4", last)
	}
	rec.RecordCheckpointWrite(12345)
	if got := rec.CheckpointWrite().Count(); got != 1 {
		t.Errorf("checkpoint write count = %d, want 1", got)
	}
	if rec.PhaseLatency(Phase(99)) != rec.PhaseLatency(PhaseChurn) {
		t.Error("out-of-range PhaseLatency should clamp to phase 0")
	}
}

func TestRecorderRecordAllocs(t *testing.T) {
	rec := NewRecorder()
	rp := RoundProfile{
		Round: 1, TotalNs: 1000,
		PhaseNs: [NumPhases]int64{1, 2, 3, 4},
		Workers: 4, MaxShardNs: 10, MinShardNs: 5, MeanShardNs: 7, BarrierNs: 2,
	}
	allocs := testing.AllocsPerRun(100, func() {
		rp.Round++
		rec.Record(rp)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f/op, want 0", allocs)
	}
}

// TestRecorderConcurrentReadWhileRecording models the live-scrape path:
// the stepping goroutine records while scrape goroutines read every
// exposed surface. Run under -race in the race-concurrent CI pass.
func TestRecorderConcurrentReadWhileRecording(t *testing.T) {
	rec := NewRecorder()
	const rounds = 2000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rec.Last()
					rec.Rounds()
					rec.RoundLatency().Quantile(0.99)
					for _, p := range Phases() {
						rec.PhaseLatency(p).Snapshot()
					}
					rec.Imbalance().Mean()
					rec.BarrierWait().Count()
					rec.CheckpointWrite().Sum()
				}
			}
		}()
	}
	for r := 1; r <= rounds; r++ {
		rec.Record(RoundProfile{
			Round: r, TotalNs: int64(r) * 10,
			PhaseNs: [NumPhases]int64{1, 2, 3, 4},
			Workers: 2, MaxShardNs: 6, MinShardNs: 4, MeanShardNs: 5, BarrierNs: 2,
		})
		if r%100 == 0 {
			rec.RecordCheckpointWrite(int64(r))
		}
	}
	close(stop)
	readers.Wait()
	if rec.Rounds() != rounds {
		t.Fatalf("Rounds = %d, want %d", rec.Rounds(), rounds)
	}
	if last := rec.Last(); last.Round != rounds {
		t.Fatalf("Last().Round = %d, want %d", last.Round, rounds)
	}
}
