package profile

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Health is a session's convergence state as judged by the stall
// detector from the potential curve φ(r).
type Health uint8

// The session health states. Unknown means no detector observed the run
// (profiling off, or no round completed yet).
const (
	HealthUnknown Health = iota
	// HealthConverging: φ decreased within the last window rounds (or
	// reached 0 — the objective).
	HealthConverging
	// HealthPlateaued: φ has not decreased for at least window rounds
	// but fewer than stallAfter.
	HealthPlateaued
	// HealthStalled: φ has not decreased for at least stallAfter rounds.
	HealthStalled

	numHealth
)

var healthNames = [numHealth]string{
	HealthUnknown:    "unknown",
	HealthConverging: "converging",
	HealthPlateaued:  "plateaued",
	HealthStalled:    "stalled",
}

// String returns the state's wire name (the "health" field of the
// round_profile event).
func (h Health) String() string {
	if h < numHealth {
		return healthNames[h]
	}
	return fmt.Sprintf("Health(%d)", uint8(h))
}

// ParseHealth resolves a wire name back to its Health.
func ParseHealth(s string) (Health, error) {
	for h := Health(0); h < numHealth; h++ {
		if healthNames[h] == s {
			return h, nil
		}
	}
	names := make([]string, 0, numHealth)
	for h := Health(0); h < numHealth; h++ {
		names = append(names, healthNames[h])
	}
	return 0, fmt.Errorf("profile: unknown health state %q (valid: %s)",
		s, strings.Join(names, ", "))
}

// Default stall-detector thresholds, in rounds.
const (
	// DefaultStallWindow is how long φ may sit flat before the session
	// is considered plateaued.
	DefaultStallWindow = 64
	// DefaultStallAfter is how long φ may sit flat before the session is
	// considered stalled (4 × the plateau window).
	DefaultStallAfter = 4 * DefaultStallWindow
)

// StallDetector watches the potential curve and classifies the session's
// convergence. It is a pure function of the observed (round, φ) sequence
// — no wall clock, no randomness — so its verdicts are deterministic and
// reproducible from a recorded event stream (cmd/runreport re-runs one
// over a JSONL file and reaches the same verdict as the live session).
//
// Semantics: a round where φ drops below its best-so-far value counts as
// progress. Let gap be the rounds since the last progress (or since the
// first observation). The session is converging while gap < window,
// plateaued while window ≤ gap < stallAfter, and stalled once
// gap ≥ stallAfter. φ = 0 (objective reached) is always converging.
//
// Observe must be driven from one goroutine (the stepping loop); Health
// is an atomic read, safe from any goroutine at any time (the /metrics
// scrape path reads it live).
type StallDetector struct {
	window     int
	stallAfter int

	started      bool
	bestPot      int
	lastProgress int // round of the last φ drop (or the first observation)
	health       atomic.Uint32
}

// NewStallDetector returns a detector with the given thresholds;
// non-positive values select the defaults. stallAfter below window is
// raised to window.
func NewStallDetector(window, stallAfter int) *StallDetector {
	if window <= 0 {
		window = DefaultStallWindow
	}
	if stallAfter <= 0 {
		stallAfter = DefaultStallAfter
	}
	if stallAfter < window {
		stallAfter = window
	}
	return &StallDetector{window: window, stallAfter: stallAfter}
}

// Observe folds one completed round's potential into the detector and
// returns the resulting health. Rounds must be observed in ascending
// order. It never allocates.
func (d *StallDetector) Observe(round, potential int) Health {
	if !d.started {
		d.started = true
		d.bestPot = potential
		d.lastProgress = round
	} else if potential < d.bestPot {
		d.bestPot = potential
		d.lastProgress = round
	}
	var h Health
	switch gap := round - d.lastProgress; {
	case potential == 0 || gap < d.window:
		h = HealthConverging
	case gap < d.stallAfter:
		h = HealthPlateaued
	default:
		h = HealthStalled
	}
	d.health.Store(uint32(h))
	return h
}

// Health returns the latest verdict (HealthUnknown before any Observe).
func (d *StallDetector) Health() Health { return Health(d.health.Load()) }
