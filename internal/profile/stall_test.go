package profile

import "testing"

func TestHealthNames(t *testing.T) {
	for h := Health(0); h < numHealth; h++ {
		got, err := ParseHealth(h.String())
		if err != nil || got != h {
			t.Errorf("ParseHealth(%q) = %v, %v; want %v", h.String(), got, err, h)
		}
	}
	if _, err := ParseHealth("bogus"); err == nil {
		t.Error("ParseHealth(bogus) should fail")
	}
	if s := Health(200).String(); s != "Health(200)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestStallDetectorDefaults(t *testing.T) {
	d := NewStallDetector(0, 0)
	if d.window != DefaultStallWindow || d.stallAfter != DefaultStallAfter {
		t.Fatalf("defaults = (%d, %d), want (%d, %d)",
			d.window, d.stallAfter, DefaultStallWindow, DefaultStallAfter)
	}
	if d.Health() != HealthUnknown {
		t.Fatalf("pre-observation health = %v, want unknown", d.Health())
	}
	// stallAfter below window is raised to window.
	d = NewStallDetector(100, 10)
	if d.stallAfter != 100 {
		t.Fatalf("stallAfter = %d, want raised to 100", d.stallAfter)
	}
}

func TestStallDetectorTransitions(t *testing.T) {
	d := NewStallDetector(4, 10)
	// Decreasing potential: converging.
	if h := d.Observe(1, 100); h != HealthConverging {
		t.Fatalf("round 1: %v, want converging", h)
	}
	if h := d.Observe(2, 90); h != HealthConverging {
		t.Fatalf("round 2: %v, want converging", h)
	}
	// Flat from round 2: gap reaches window at round 6.
	for r := 3; r <= 5; r++ {
		if h := d.Observe(r, 90); h != HealthConverging {
			t.Fatalf("round %d (gap %d): %v, want converging", r, r-2, h)
		}
	}
	if h := d.Observe(6, 90); h != HealthPlateaued {
		t.Fatalf("round 6 (gap 4): %v, want plateaued", h)
	}
	// gap reaches stallAfter at round 12.
	for r := 7; r <= 11; r++ {
		if h := d.Observe(r, 90); h != HealthPlateaued {
			t.Fatalf("round %d: %v, want plateaued", r, h)
		}
	}
	if h := d.Observe(12, 90); h != HealthStalled {
		t.Fatalf("round 12 (gap 10): %v, want stalled", h)
	}
	// A fresh drop recovers to converging.
	if h := d.Observe(13, 80); h != HealthConverging {
		t.Fatalf("round 13 after drop: %v, want converging", h)
	}
	// An increase is not progress (best-so-far semantics).
	if h := d.Observe(17, 85); h != HealthPlateaued {
		t.Fatalf("round 17 after rise: %v, want plateaued", h)
	}
}

func TestStallDetectorZeroPotentialAlwaysConverging(t *testing.T) {
	d := NewStallDetector(2, 4)
	d.Observe(1, 0)
	for r := 2; r <= 50; r++ {
		if h := d.Observe(r, 0); h != HealthConverging {
			t.Fatalf("round %d at phi=0: %v, want converging", r, h)
		}
	}
}

// TestStallDetectorDeterministic replays the same potential sequence
// through two detectors: cmd/runreport relies on replay reaching the
// identical verdict the live session saw.
func TestStallDetectorDeterministic(t *testing.T) {
	seq := []int{50, 40, 40, 40, 40, 40, 40, 30, 30, 30, 30, 30, 30, 30, 30, 30}
	a, b := NewStallDetector(3, 6), NewStallDetector(3, 6)
	for i, pot := range seq {
		ha, hb := a.Observe(i+1, pot), b.Observe(i+1, pot)
		if ha != hb {
			t.Fatalf("round %d: %v vs %v", i+1, ha, hb)
		}
	}
	if a.Health() != b.Health() {
		t.Fatalf("final verdicts differ: %v vs %v", a.Health(), b.Health())
	}
}

func TestStallDetectorObserveAllocs(t *testing.T) {
	d := NewStallDetector(0, 0)
	r := 0
	allocs := testing.AllocsPerRun(200, func() {
		r++
		d.Observe(r, 1000)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f/op, want 0", allocs)
	}
}
