// Package profile is the engine's deterministic-safe profiling layer: a
// read-only timing sidecar that the sharded round engine (internal/mtm)
// feeds with per-phase and per-shard wall-clock spans when profiling is
// enabled, aggregated here into log-bucketed histograms and a
// convergence/stall health signal.
//
// The contract (DESIGN.md §13): profiling never affects simulation
// output — it draws no randomness, mutates no engine state, and its
// measurements flow strictly outward (events, metrics, reports). With
// profiling off the engine pays a handful of predicted nil checks per
// round and nothing else; with it on, the cost is clock reads plus
// O(shards) scratch allocated once, amortized to zero in steady state —
// the engine's 0 allocs/op contract holds either way.
package profile

import "sync"

// Phase identifies one timed segment of an engine round, in execution
// order.
type Phase uint8

// The engine's timed round phases.
const (
	// PhaseChurn: advancing the topology schedule to the round's graph
	// and applying/accounting its edge delta.
	PhaseChurn Phase = iota
	// PhaseProposal: the proposal machinery — advertise tags, scan and
	// decide, deliver proposals into the flat inbox, draw acceptances.
	PhaseProposal
	// PhaseExchange: pairwise communication over the accepted
	// connections plus the per-connection meter fold.
	PhaseExchange
	// PhaseReduction: the sequential cross-shard reductions of the
	// sharded backend (proposal-count prefix sums, inbox base offsets,
	// pair-list concatenation); 0 on the sequential path.
	PhaseReduction

	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseChurn:     "churn",
	PhaseProposal:  "proposal",
	PhaseExchange:  "exchange",
	PhaseReduction: "reduction",
}

// String returns the phase's wire name (used in event fields and metric
// names).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Phases enumerates every phase in execution order.
func Phases() []Phase {
	return []Phase{PhaseChurn, PhaseProposal, PhaseExchange, PhaseReduction}
}

// RoundProfile is the timing record of one executed round. It is a flat
// value struct (no pointers), so the engine hands it over and the
// session turns it into an event without heap traffic.
type RoundProfile struct {
	// Round is the 1-based round the record describes.
	Round int
	// TotalNs is the round's wall-clock time in nanoseconds.
	TotalNs int64
	// PhaseNs breaks TotalNs down by Phase (the remainder — bookkeeping
	// outside any phase — is not attributed).
	PhaseNs [NumPhases]int64
	// Workers is the shard count the round ran with (1 = sequential).
	Workers int
	// MaxShardNs, MinShardNs and MeanShardNs summarize per-shard compute
	// time over the node-sharded phases (0 when Workers == 1).
	MaxShardNs  int64
	MinShardNs  int64
	MeanShardNs int64
	// BarrierNs totals the time shards spent waiting at phase barriers
	// for slower siblings: workers × parallel-phase wall − Σ shard
	// compute (0 when Workers == 1).
	BarrierNs int64
}

// ImbalanceMilli returns the shard imbalance ratio — max over mean shard
// compute time — in thousandths (1000 = perfectly balanced; 0 when the
// round ran sequentially or shards did no measurable work).
func (rp *RoundProfile) ImbalanceMilli() int64 {
	if rp.Workers <= 1 || rp.MeanShardNs <= 0 {
		return 0
	}
	return rp.MaxShardNs * 1000 / rp.MeanShardNs
}

// Recorder aggregates RoundProfile records into histograms and retains
// the latest record. The engine calls Record once per round from the
// stepping goroutine; every read-side method is safe to call
// concurrently (the /metrics scrape path), so a recorder can be
// inspected live mid-run.
type Recorder struct {
	roundLatency Histogram
	phaseLatency [NumPhases]Histogram
	imbalance    Histogram // shard imbalance, thousandths
	barrier      Histogram // per-round total barrier wait, ns
	ckptWrite    Histogram // checkpoint serialization, ns

	mu   sync.Mutex
	last RoundProfile
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record folds one round's timing into the histograms and retains it as
// the latest record. It never allocates.
func (r *Recorder) Record(rp RoundProfile) {
	r.roundLatency.Record(rp.TotalNs)
	for p := Phase(0); p < NumPhases; p++ {
		r.phaseLatency[p].Record(rp.PhaseNs[p])
	}
	if rp.Workers > 1 {
		r.imbalance.Record(rp.ImbalanceMilli())
		r.barrier.Record(rp.BarrierNs)
	}
	r.mu.Lock()
	r.last = rp
	r.mu.Unlock()
}

// RecordCheckpointWrite folds one checkpoint serialization time (ns)
// into the checkpoint-write histogram.
func (r *Recorder) RecordCheckpointWrite(ns int64) { r.ckptWrite.Record(ns) }

// Last returns the most recent round's record (the zero RoundProfile
// before any round ran).
func (r *Recorder) Last() RoundProfile {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Rounds returns the number of rounds recorded.
func (r *Recorder) Rounds() int64 { return r.roundLatency.Count() }

// RoundLatency returns the round wall-time histogram (ns).
func (r *Recorder) RoundLatency() *Histogram { return &r.roundLatency }

// PhaseLatency returns the per-round wall-time histogram (ns) of one
// phase.
func (r *Recorder) PhaseLatency(p Phase) *Histogram {
	if p >= NumPhases {
		p = 0
	}
	return &r.phaseLatency[p]
}

// Imbalance returns the shard-imbalance histogram (max/mean shard
// compute, thousandths; only sharded rounds record into it).
func (r *Recorder) Imbalance() *Histogram { return &r.imbalance }

// BarrierWait returns the per-round total barrier-wait histogram (ns;
// only sharded rounds record into it).
func (r *Recorder) BarrierWait() *Histogram { return &r.barrier }

// CheckpointWrite returns the checkpoint serialization-time histogram
// (ns).
func (r *Recorder) CheckpointWrite() *Histogram { return &r.ckptWrite }
