package profile

import (
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if b := BucketBound(bucketOf(c.v)); c.v > 0 && b < c.v {
			t.Errorf("BucketBound(bucketOf(%d)) = %d below the value", c.v, b)
		}
	}
	if BucketBound(0) != 0 {
		t.Errorf("BucketBound(0) = %d, want 0", BucketBound(0))
	}
	if BucketBound(histBuckets-1) != 1<<63-1 {
		t.Errorf("last bucket bound = %d, want MaxInt64", BucketBound(histBuckets-1))
	}
}

func TestHistogramRecordAndStats(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram should report all zeros")
	}
	for _, v := range []int64{100, 200, 300, 400, 1000} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 2000 {
		t.Fatalf("Sum = %d, want 2000", h.Sum())
	}
	if h.Mean() != 400 {
		t.Fatalf("Mean = %d, want 400", h.Mean())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 90 values near 100ns, 10 near 10000ns: p50 must bound 100, p99
	// must bound 10000, and both must stay within 2x (one bucket).
	for i := 0; i < 90; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(10000)
	}
	if p50 := h.Quantile(0.50); p50 < 100 || p50 >= 256 {
		t.Errorf("p50 = %d, want in [100, 256)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 10000 || p99 >= 32768 {
		t.Errorf("p99 = %d, want in [10000, 32768)", p99)
	}
	if q1 := h.Quantile(1.0); q1 < 10000 {
		t.Errorf("p100 = %d, want >= 10000", q1)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.MaxBucket() != -1 {
		t.Errorf("empty MaxBucket = %d, want -1", s.MaxBucket())
	}
	h.Record(0)
	h.Record(5)
	h.Record(1 << 20)
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 5+1<<20 {
		t.Fatalf("snapshot count=%d sum=%d", s.Count, s.Sum)
	}
	if s.MaxBucket() != 21 {
		t.Errorf("MaxBucket = %d, want 21", s.MaxBucket())
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("bucket counts total %d, want 3", total)
	}
}

// TestHistogramConcurrentRecordAndRead exercises the lock-free contract:
// many recorders racing with snapshot/quantile readers (the /metrics
// scrape path) must neither race nor lose counts.
func TestHistogramConcurrentRecordAndRead(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 1000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader, like a scrape
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
				h.Quantile(0.95)
				h.Mean()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("Count = %d, want %d", h.Count(), writers*perWriter)
	}
}

func TestHistogramAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(100, func() {
		h.Record(12345)
		_ = h.Quantile(0.99)
		_ = h.Mean()
	})
	if allocs != 0 {
		t.Fatalf("Record/Quantile/Mean allocated %.1f/op, want 0", allocs)
	}
}
