package profile

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// values whose bit length is i, so bucket boundaries are powers of two
// and the full int64 range is covered without configuration.
const histBuckets = 65

// Histogram is a log-bucketed (HDR-style) latency histogram: recording a
// value increments the bucket indexed by its bit length, so bucket i
// covers [2^(i-1), 2^i) nanoseconds and relative error is bounded by 2×
// at any scale. All counters are atomic — Record is lock-free and safe
// from the recording goroutine while any number of goroutines snapshot,
// quantile, or render it (the /metrics scrape path) — and the bucket
// array is fixed, so a Histogram never allocates after construction.
//
// The zero Histogram is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// bucketOf maps a value to its bucket index (negative values clamp to
// bucket 0, the same bucket as 0).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i (0 for
// bucket 0, 2^i − 1 otherwise; the last bucket is unbounded and reports
// the maximum int64).
func BucketBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 63:
		return 1<<63 - 1
	default:
		return 1<<uint(i) - 1
	}
}

// Record folds one value (a duration in nanoseconds, or any non-negative
// magnitude) into the histogram.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	h.count.Add(1)
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean recorded value (0 when empty).
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) of the
// recorded values: the bound of the bucket in which the nearest-rank
// value falls. Within-bucket position is unknown, so the estimate is
// exact to within the 2× bucket resolution. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Snapshot is a point-in-time copy of a histogram's counters, safe to
// iterate without further synchronization.
type Snapshot struct {
	Counts [histBuckets]int64
	Sum    int64
	Count  int64
}

// Snapshot copies the current counters. Buckets are read individually
// (not under one lock), so a snapshot taken while recording is a
// near-point-in-time view — fine for scrapes; totals reconcile once
// recording stops.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := 0; i < histBuckets; i++ {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// MaxBucket returns the highest bucket index holding any count in the
// snapshot (-1 when empty); exposition trims trailing empty buckets
// with it.
func (s *Snapshot) MaxBucket() int {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			return i
		}
	}
	return -1
}
