package graph

import "sort"

// Vertex orderings and shard partitioning for the cache-aware, shard-parallel
// engine path. BFSOrder and DegreeOrder produce relabeling permutations (in
// the perm[old] = new convention Relabel expects) that improve memory
// locality of the round loop: after a BFS relabeling, the adjacency lists of
// consecutive vertices point at nearby vertex ids, so the tag/decide scans
// touch close-together cache lines, and contiguous shard ranges cut far
// fewer cross-shard edges. BalancedCutsInto partitions the relabeled (or
// original) vertex range into contiguous shards of near-equal work.

// BFSOrder returns a relabeling permutation (perm[old] = new) that numbers
// vertices in breadth-first order from vertex 0. Disconnected remainders are
// swept in ascending id order, each starting a fresh BFS, so the permutation
// is total and deterministic for any graph.
func BFSOrder(g *Graph) []int {
	n := g.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	queue := make([]int32, 0, n)
	next := 0
	for root := 0; root < n; root++ {
		if perm[root] >= 0 {
			continue
		}
		perm[root] = next
		next++
		queue = append(queue[:0], int32(root))
		for head := 0; head < len(queue); head++ {
			for _, v := range g.Adjacency(int(queue[head])) {
				if perm[v] < 0 {
					perm[v] = next
					next++
					queue = append(queue, v)
				}
			}
		}
	}
	return perm
}

// DegreeOrder returns a relabeling permutation (perm[old] = new) that
// numbers vertices by descending degree, ties broken by ascending id. High-
// degree hubs land in the same low shard instead of scattering expensive
// adjacency scans across every shard.
func DegreeOrder(g *Graph) []int {
	n := g.N()
	byDeg := make([]int32, n)
	for u := range byDeg {
		byDeg[u] = int32(u)
	}
	sort.SliceStable(byDeg, func(i, j int) bool {
		return g.Degree(int(byDeg[i])) > g.Degree(int(byDeg[j]))
	})
	perm := make([]int, n)
	for rank, u := range byDeg {
		perm[u] = rank
	}
	return perm
}

// BalancedCutsInto partitions the vertex range [0, n) into k contiguous
// shards [cuts[s], cuts[s+1]) of near-equal estimated round cost, where the
// cost of vertex v is deg(v) + nodeWeight (nodeWeight models the fixed
// per-vertex work of the tag/decide/deliver phases relative to one adjacency
// entry). It appends into cuts (reusing its capacity, so steady-state use
// allocates nothing) and returns the k+1 boundaries, with cuts[0] = 0 and
// cuts[k] = n. Shards may be empty when k exceeds the useful parallelism.
//
// Because the CSR offsets are nondecreasing, each boundary is found by
// binary search on the exact prefix cost offsets[v] + nodeWeight·v, making
// the partition deterministic and O(k log n).
func (g *Graph) BalancedCutsInto(k int, nodeWeight int32, cuts []int32) []int32 {
	n := g.N()
	if k < 1 {
		k = 1
	}
	cuts = append(cuts[:0], 0)
	total := int64(g.offsets[n]) + int64(nodeWeight)*int64(n)
	for s := 1; s < k; s++ {
		target := total * int64(s) / int64(k)
		lo, hi := int(cuts[s-1]), n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int64(g.offsets[mid])+int64(nodeWeight)*int64(mid) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cuts = append(cuts, int32(lo))
	}
	return append(cuts, int32(n))
}
