package graph

// Connector repairs the connectivity of packed edge lists: the mobile
// telephone model requires every round's topology connected (§2), but both
// physical proximity graphs (internal/mobility) and adversarially cut
// topologies (internal/adversary) routinely shatter into components. The
// repair contract is shared so the two subsystems stay byte-compatible:
// union-find over the edges, then the ascending component representatives
// (smallest node id per component) are chained with virtual relay bridges —
// the sparse long-range fallback links (satellite/infrastructure hops) real
// smartphone meshes assume. Representatives ascend, so the bridge list is
// itself sorted and one merge pass restores global packed order.
//
// All scratch is allocated once per Connector and reused; Connect performs
// zero steady-state allocations once its buffers reach their high-water
// size.
type Connector struct {
	parent   []int32 // union-find over the components
	reps     []int32 // component representatives (ascending node id)
	rootMark []int32 // stamp array marking seen roots
	stamp    int32
	scratch  []uint64 // merge target for the bridge pass
}

// NewConnector returns a Connector for edge lists over n vertices.
func NewConnector(n int) *Connector {
	return &Connector{
		parent:   make([]int32, n),
		reps:     make([]int32, 0, 16),
		rootMark: make([]int32, n),
	}
}

// Connect returns a connected edge list covering every vertex: edges itself
// when it is already connected, otherwise a merged list with the
// representative-chain bridges inserted in sorted position. The returned
// slice may be a Connector-owned buffer, and the input buffer may be
// retained as future scratch — callers treat both as interchangeable
// reusable storage (the mobility field's double buffers circulate through
// here by design).
func (c *Connector) Connect(edges []uint64) []uint64 {
	n := len(c.parent)
	for i := 0; i < n; i++ {
		c.parent[i] = int32(i)
	}
	for _, e := range edges {
		c.union(int32(e>>32), int32(uint32(e)))
	}
	c.stamp++
	c.reps = c.reps[:0]
	for u := 0; u < n; u++ {
		r := c.find(int32(u))
		if c.rootMark[r] != c.stamp {
			c.rootMark[r] = c.stamp
			c.reps = append(c.reps, int32(u))
		}
	}
	if len(c.reps) <= 1 {
		return edges
	}
	// Bridge reps[i]–reps[i+1]; both endpoints ascend, so the bridge list
	// is itself sorted and one merge pass restores global order. The merge
	// target and the input buffer trade places so both are reused.
	merged := c.scratch[:0]
	bi := 0
	bridge := func() uint64 {
		return uint64(c.reps[bi])<<32 | uint64(c.reps[bi+1])
	}
	for _, e := range edges {
		for bi+1 < len(c.reps) && bridge() < e {
			merged = append(merged, bridge())
			bi++
		}
		merged = append(merged, e)
	}
	for bi+1 < len(c.reps) {
		merged = append(merged, bridge())
		bi++
	}
	c.scratch = edges
	return merged
}

// Components returns the component count of the most recent Connect input
// (before bridging) — the number of bridges inserted plus one.
func (c *Connector) Components() int {
	if len(c.reps) == 0 {
		return 1
	}
	return len(c.reps)
}

func (c *Connector) find(u int32) int32 {
	for c.parent[u] != u {
		c.parent[u] = c.parent[c.parent[u]] // path halving
		u = c.parent[u]
	}
	return u
}

func (c *Connector) union(u, v int32) {
	ru, rv := c.find(u), c.find(v)
	if ru == rv {
		return
	}
	if ru < rv {
		c.parent[rv] = ru
	} else {
		c.parent[ru] = rv
	}
}
