package graph

import (
	"fmt"

	"mobilegossip/internal/prand"
)

// Path returns the path graph P_n.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		_ = b.AddEdge(i, i+1)
	}
	return b.Build(fmt.Sprintf("path(%d)", n))
}

// Cycle returns the cycle (ring) C_n for n >= 3; for n < 3 it degrades to a
// path. Rings are the canonical low-expansion (α ≈ 4/n) topology.
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(i, (i+1)%n)
	}
	return b.Build(fmt.Sprintf("cycle(%d)", n))
}

// Complete returns K_n (α = 1, Δ = n−1).
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = b.AddEdge(i, j)
		}
	}
	return b.Build(fmt.Sprintf("complete(%d)", n))
}

// Star returns the star S_n: vertex 0 is the hub joined to 1..n-1.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(0, i)
	}
	return b.Build(fmt.Sprintf("star(%d)", n))
}

// DoubleStar returns the two-star graph from the paper's Ω(Δ²) discussion
// (§1): two hubs u = 0 and v = 1 joined by an edge, each with ⌊(n−2)/2⌋
// (plus remainder) private leaves. It is the worst case for blind
// (b = 0) connection strategies.
func DoubleStar(n int) *Graph {
	b := NewBuilder(n)
	if n >= 2 {
		_ = b.AddEdge(0, 1)
	}
	for i := 2; i < n; i++ {
		hub := i % 2 // alternate leaves between the two hubs
		_ = b.AddEdge(hub, i)
	}
	return b.Build(fmt.Sprintf("doublestar(%d)", n))
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				_ = b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				_ = b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build(fmt.Sprintf("grid(%dx%d)", rows, cols))
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build(fmt.Sprintf("hypercube(%d)", d))
}

// Barbell returns two K_m cliques joined by a path of length pathLen
// (pathLen >= 1 edges including the bridging edges). Total vertices
// 2m + max(pathLen-1, 0). A classic bottleneck (low α, high Δ) topology.
func Barbell(m, pathLen int) *Graph {
	if pathLen < 1 {
		pathLen = 1
	}
	inner := pathLen - 1
	n := 2*m + inner
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			_ = b.AddEdge(i, j)
			_ = b.AddEdge(m+inner+i, m+inner+j)
		}
	}
	prev := 0
	for p := 0; p < inner; p++ {
		_ = b.AddEdge(prev, m+p)
		prev = m + p
	}
	_ = b.AddEdge(prev, m+inner)
	return b.Build(fmt.Sprintf("barbell(%d,%d)", m, pathLen))
}

// Lollipop returns K_m with a pendant path of tail vertices.
func Lollipop(m, tail int) *Graph {
	n := m + tail
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			_ = b.AddEdge(i, j)
		}
	}
	prev := 0
	for p := 0; p < tail; p++ {
		_ = b.AddEdge(prev, m+p)
		prev = m + p
	}
	return b.Build(fmt.Sprintf("lollipop(%d,%d)", m, tail))
}

// GNP returns a connected Erdős–Rényi graph G(n, p): edges are sampled
// independently and, if the sample is disconnected, a Hamiltonian-cycle
// backbone over a random permutation is added (standard connectivity patch
// that perturbs α and Δ negligibly for p above the connectivity threshold).
func GNP(n int, p float64, rng *prand.RNG) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = b.AddEdge(i, j)
			}
		}
	}
	g := b.Build(fmt.Sprintf("gnp(%d,%.3f)", n, p))
	if g.Connected() {
		return g
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(perm[i], perm[(i+1)%n])
	}
	return b.Build(fmt.Sprintf("gnp(%d,%.3f)+cycle", n, p))
}

// RandomRegular returns a connected random d-regular graph via the
// pairing/permutation model with retries. Random regular graphs with d >= 3
// are expanders w.h.p. (constant α), the paper's "well-connected" regime.
// If a simple connected d-regular matching is not found after the retry
// budget, it falls back to a d-dimensional circulant (deterministic
// expander-ish), so the function always returns a connected graph.
func RandomRegular(n, d int, rng *prand.RNG) *Graph {
	if d >= n {
		d = n - 1
	}
	if n*d%2 == 1 {
		d-- // n·d must be even
	}
	if d < 1 {
		return Path(n)
	}
	for attempt := 0; attempt < 50; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok && g.Connected() {
			return g
		}
	}
	return Circulant(n, d)
}

// tryPairing attempts one run of the configuration model.
func tryPairing(n, d int, rng *prand.RNG) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	// Shuffle stubs and pair consecutive ones.
	for i := len(stubs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	b := NewBuilder(n)
	seen := make(map[[2]int]bool, n*d/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return nil, false
		}
		seen[[2]int{u, v}] = true
		_ = b.AddEdge(u, v)
	}
	return b.Build(fmt.Sprintf("regular(%d,%d)", n, d)), true
}

// Circulant returns the circulant graph C_n(1, 2, ..., ⌈d/2⌉): each vertex i
// is joined to i±s (mod n) for s = 1..⌈d/2⌉. Degree ≈ d; always connected.
func Circulant(n, d int) *Graph {
	b := NewBuilder(n)
	half := (d + 1) / 2
	for i := 0; i < n; i++ {
		for s := 1; s <= half && s < n; s++ {
			_ = b.AddEdge(i, (i+s)%n)
		}
	}
	return b.Build(fmt.Sprintf("circulant(%d,%d)", n, d))
}
