package graph

import (
	"fmt"
	"sort"

	"mobilegossip/internal/prand"
)

// Path returns the path graph P_n.
func Path(n int) *Graph {
	b := NewBuilderCap(n, n)
	for i := 0; i+1 < n; i++ {
		_ = b.AddEdge(i, i+1)
	}
	return b.Build(fmt.Sprintf("path(%d)", n))
}

// Cycle returns the cycle (ring) C_n for n >= 3; for n < 3 it degrades to a
// path. Rings are the canonical low-expansion (α ≈ 4/n) topology.
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n)
	}
	b := NewBuilderCap(n, n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(i, (i+1)%n)
	}
	return b.Build(fmt.Sprintf("cycle(%d)", n))
}

// Complete returns K_n (α = 1, Δ = n−1).
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = b.AddEdge(i, j)
		}
	}
	return b.Build(fmt.Sprintf("complete(%d)", n))
}

// Star returns the star S_n: vertex 0 is the hub joined to 1..n-1.
func Star(n int) *Graph {
	b := NewBuilderCap(n, n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(0, i)
	}
	return b.Build(fmt.Sprintf("star(%d)", n))
}

// DoubleStar returns the two-star graph from the paper's Ω(Δ²) discussion
// (§1): two hubs u = 0 and v = 1 joined by an edge, each with ⌊(n−2)/2⌋
// (plus remainder) private leaves. It is the worst case for blind
// (b = 0) connection strategies.
func DoubleStar(n int) *Graph {
	b := NewBuilderCap(n, n)
	if n >= 2 {
		_ = b.AddEdge(0, 1)
	}
	for i := 2; i < n; i++ {
		hub := i % 2 // alternate leaves between the two hubs
		_ = b.AddEdge(hub, i)
	}
	return b.Build(fmt.Sprintf("doublestar(%d)", n))
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilderCap(rows*cols, 2*rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				_ = b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				_ = b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build(fmt.Sprintf("grid(%dx%d)", rows, cols))
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	b := NewBuilderCap(n, n*d/2)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build(fmt.Sprintf("hypercube(%d)", d))
}

// Barbell returns two K_m cliques joined by a path of length pathLen
// (pathLen >= 1 edges including the bridging edges). Total vertices
// 2m + max(pathLen-1, 0). A classic bottleneck (low α, high Δ) topology.
func Barbell(m, pathLen int) *Graph {
	if pathLen < 1 {
		pathLen = 1
	}
	inner := pathLen - 1
	n := 2*m + inner
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			_ = b.AddEdge(i, j)
			_ = b.AddEdge(m+inner+i, m+inner+j)
		}
	}
	prev := 0
	for p := 0; p < inner; p++ {
		_ = b.AddEdge(prev, m+p)
		prev = m + p
	}
	_ = b.AddEdge(prev, m+inner)
	return b.Build(fmt.Sprintf("barbell(%d,%d)", m, pathLen))
}

// Lollipop returns K_m with a pendant path of tail vertices.
func Lollipop(m, tail int) *Graph {
	n := m + tail
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			_ = b.AddEdge(i, j)
		}
	}
	prev := 0
	for p := 0; p < tail; p++ {
		_ = b.AddEdge(prev, m+p)
		prev = m + p
	}
	return b.Build(fmt.Sprintf("lollipop(%d,%d)", m, tail))
}

// GNP returns a connected Erdős–Rényi graph G(n, p): edges are sampled
// independently and, if the sample is disconnected, a Hamiltonian-cycle
// backbone over a random permutation is added (standard connectivity patch
// that perturbs α and Δ negligibly for p above the connectivity threshold).
func GNP(n int, p float64, rng *prand.RNG) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = b.AddEdge(i, j)
			}
		}
	}
	g := b.Build(fmt.Sprintf("gnp(%d,%.3f)", n, p))
	if g.Connected() {
		return g
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(perm[i], perm[(i+1)%n])
	}
	return b.Build(fmt.Sprintf("gnp(%d,%.3f)+cycle", n, p))
}

// RandomRegular returns a connected random d-regular graph via the
// pairing/permutation model with retries. Random regular graphs with d >= 3
// are expanders w.h.p. (constant α), the paper's "well-connected" regime.
// If a simple connected d-regular matching is not found after the retry
// budget, it falls back to a d-dimensional circulant (deterministic
// expander-ish), so the function always returns a connected graph.
func RandomRegular(n, d int, rng *prand.RNG) *Graph {
	if d >= n {
		d = n - 1
	}
	if n*d%2 == 1 {
		d-- // n·d must be even
	}
	if d < 1 {
		return Path(n)
	}
	for attempt := 0; attempt < 50; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok && g.Connected() {
			return g
		}
	}
	return Circulant(n, d)
}

// tryPairing attempts one run of the configuration model.
func tryPairing(n, d int, rng *prand.RNG) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	// Shuffle stubs and pair consecutive ones.
	for i := len(stubs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	b := NewBuilderCap(n, n*d/2)
	seen := make(map[[2]int]bool, n*d/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return nil, false
		}
		seen[[2]int{u, v}] = true
		_ = b.AddEdge(u, v)
	}
	return b.Build(fmt.Sprintf("regular(%d,%d)", n, d)), true
}

// Circulant returns the circulant graph C_n(1, 2, ..., ⌈d/2⌉): each vertex i
// is joined to i±s (mod n) for s = 1..⌈d/2⌉. Degree ≈ d; always connected.
func Circulant(n, d int) *Graph {
	half := (d + 1) / 2
	b := NewBuilderCap(n, n*half)
	for i := 0; i < n; i++ {
		for s := 1; s <= half && s < n; s++ {
			_ = b.AddEdge(i, (i+s)%n)
		}
	}
	return b.Build(fmt.Sprintf("circulant(%d,%d)", n, d))
}

// RandomGeometric returns a connected random geometric graph RGG(n, r):
// n points placed uniformly in the unit square, joined when within
// Euclidean distance r. A spatial cell grid of side r makes construction
// O(n + m), so million-node instances build in seconds — the standard model
// for smartphone crowds with fixed radio range (a metropolis scenario).
// If the distance graph is disconnected (r below the ~√(ln n/(πn))
// connectivity threshold), a path over the points sorted by (x, y) is added
// as a deterministic backbone, mirroring the GNP connectivity patch.
func RandomGeometric(n int, r float64, rng *prand.RNG) *Graph {
	if r <= 0 {
		r = 1e-9
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Bucket points into a grid of side r; only the 3×3 cell neighborhood
	// can contain points within distance r.
	side := int(1 / r)
	if side < 1 {
		side = 1
	}
	if side > n {
		side = n // no point in more cells than points
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	// CSR-style bucketing of points into cells: counts, prefix sums, fill.
	cells := side * side
	cellOff := make([]int32, cells+1)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		cellOff[cy*side+cx+1]++
	}
	for c := 1; c <= cells; c++ {
		cellOff[c] += cellOff[c-1]
	}
	cellPts := make([]int32, n)
	cursor := make([]int32, cells)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		c := cy*side + cx
		cellPts[cellOff[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	r2 := r * r
	b := NewBuilderCap(n, n) // grows if the graph is denser
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= side || ny >= side {
					continue
				}
				c := ny*side + nx
				for _, j32 := range cellPts[cellOff[c]:cellOff[c+1]] {
					j := int(j32)
					if j <= i {
						continue // each pair once
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						_ = b.AddEdge(i, j)
					}
				}
			}
		}
	}
	g := b.Build(fmt.Sprintf("rgg(%d,%.3f)", n, r))
	if g.Connected() {
		return g
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, c int) bool {
		if xs[order[a]] != xs[order[c]] {
			return xs[order[a]] < xs[order[c]]
		}
		return ys[order[a]] < ys[order[c]]
	})
	for i := 0; i+1 < n; i++ {
		_ = b.AddEdge(order[i], order[i+1])
	}
	return b.Build(fmt.Sprintf("rgg(%d,%.3f)+path", n, r))
}

// PreferentialAttachment returns a Barabási–Albert graph: a seed clique on
// m+1 vertices, then each new vertex attaches m edges to existing vertices
// chosen proportionally to their degree. Sampling uses the repeated-endpoint
// list (each edge contributes both endpoints), so construction is O(n·m)
// and the result is connected by construction with a heavy-tailed degree
// distribution — the classic model for social/contact networks.
func PreferentialAttachment(n, m int, rng *prand.RNG) *Graph {
	if m < 1 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	b := NewBuilderCap(n, m*(m+1)/2+(n-m-1)*m)
	// endpoints holds every edge's two endpoints; sampling a uniform element
	// is degree-proportional sampling.
	endpoints := make([]int32, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for i := 0; i <= m && i < n; i++ {
		for j := i + 1; j <= m && j < n; j++ {
			_ = b.AddEdge(i, j)
			endpoints = append(endpoints, int32(i), int32(j))
		}
	}
	chosen := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			_ = b.AddEdge(v, int(t))
			endpoints = append(endpoints, int32(v), t)
		}
	}
	return b.Build(fmt.Sprintf("pa(%d,%d)", n, m))
}
