package graph

// Matching machinery for the §7 analysis. Lemma 7.1 (adapted from [11])
// states that for any S ⊂ V with |S| ≤ n/2 in a graph with vertex
// expansion α, the bipartite boundary graph B_G(S) has a matching of size
// ν(B_G(S)) ≥ |S|·α/4. The ε-gossip argument (Theorem 7.4) applies it to
// coalition boundaries. This file implements B_G(S) extraction and
// maximum bipartite matching (Hopcroft–Karp) so the lemma is checkable on
// concrete graphs (experiment E21).

// Bipartite is the boundary graph B_G(S): the subgraph keeping only edges
// with one endpoint in S ("left") and one outside ("right").
type Bipartite struct {
	// Left holds the S-side vertex ids (those with at least one crossing
	// edge); Right holds the V∖S-side ids.
	Left, Right []int
	// Adj[i] lists, for Left[i], the indices into Right it neighbors.
	Adj [][]int
}

// BoundaryBipartite extracts B_G(S) from g. Vertices of S (or V∖S) with
// no crossing edges are omitted — they cannot participate in a matching.
func (g *Graph) BoundaryBipartite(s []int) *Bipartite {
	inS := make([]bool, g.N())
	for _, v := range s {
		if v >= 0 && v < g.N() {
			inS[v] = true
		}
	}
	rightIndex := make(map[int]int)
	b := &Bipartite{}
	for u := 0; u < g.N(); u++ {
		if !inS[u] {
			continue
		}
		var adj []int
		for _, v := range g.Adjacency(u) {
			v := int(v)
			if inS[v] {
				continue
			}
			ri, ok := rightIndex[v]
			if !ok {
				ri = len(b.Right)
				rightIndex[v] = ri
				b.Right = append(b.Right, v)
			}
			adj = append(adj, ri)
		}
		if len(adj) > 0 {
			b.Left = append(b.Left, u)
			b.Adj = append(b.Adj, adj)
		}
	}
	return b
}

// MaximumMatching returns ν(B), the size of a maximum matching, via
// Hopcroft–Karp (O(E·√V)).
func (b *Bipartite) MaximumMatching() int {
	nl, nr := len(b.Left), len(b.Right)
	if nl == 0 || nr == 0 {
		return 0
	}
	const unmatched = -1
	matchL := make([]int, nl) // left i -> right index
	matchR := make([]int, nr) // right j -> left index
	for i := range matchL {
		matchL[i] = unmatched
	}
	for j := range matchR {
		matchR[j] = unmatched
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, nl)
	queue := make([]int, 0, nl)

	bfs := func() bool {
		queue = queue[:0]
		for i := 0; i < nl; i++ {
			if matchL[i] == unmatched {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			i := queue[qi]
			for _, j := range b.Adj[i] {
				i2 := matchR[j]
				if i2 == unmatched {
					found = true
				} else if dist[i2] == inf {
					dist[i2] = dist[i] + 1
					queue = append(queue, i2)
				}
			}
		}
		return found
	}

	var dfs func(i int) bool
	dfs = func(i int) bool {
		for _, j := range b.Adj[i] {
			i2 := matchR[j]
			if i2 == unmatched || (dist[i2] == dist[i]+1 && dfs(i2)) {
				matchL[i] = j
				matchR[j] = i
				return true
			}
		}
		dist[i] = inf
		return false
	}

	size := 0
	for bfs() {
		for i := 0; i < nl; i++ {
			if matchL[i] == unmatched && dfs(i) {
				size++
			}
		}
	}
	return size
}

// BoundaryMatching is the composite ν(B_G(S)) used by Lemma 7.1.
func (g *Graph) BoundaryMatching(s []int) int {
	return g.BoundaryBipartite(s).MaximumMatching()
}
