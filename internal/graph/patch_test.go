package graph

// Quick-checks for the incremental CSR patcher: a chain of random deltas
// applied through Patcher.Apply must stay element-for-element identical to
// from-scratch Builder rebuilds of the same edge sets.

import (
	"testing"

	"mobilegossip/internal/prand"
)

// edgeSet tracks the reference edge set as packed u<v pairs.
type edgeSet map[uint64]bool

func (s edgeSet) pairs() [][2]int32 {
	out := make([][2]int32, 0, len(s))
	for e := range s {
		out = append(out, [2]int32{int32(e >> 32), int32(uint32(e))})
	}
	return out
}

func buildFrom(n int, s edgeSet, name string) *Graph {
	b := NewBuilderCap(n, len(s))
	for e := range s {
		_ = b.AddEdge(int(e>>32), int(uint32(e)))
	}
	return b.Build(name)
}

// TestPatcherMatchesRebuild drives 30 rounds of random add/remove deltas on
// random initial graphs and requires the patched CSR to equal the rebuilt
// CSR exactly, for several sizes and seeds.
func TestPatcherMatchesRebuild(t *testing.T) {
	for _, n := range []int{2, 7, 40, 200} {
		for seed := uint64(1); seed <= 3; seed++ {
			rng := prand.New(prand.Mix64(seed ^ uint64(n)<<20))
			cur := edgeSet{}
			for i := 0; i < n; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				cur[uint64(u)<<32|uint64(v)] = true
			}
			p := NewPatcher(buildFrom(n, cur, "init"))
			for round := 0; round < 30; round++ {
				var added, removed [][2]int32
				// Remove a random ~quarter of the current edges…
				for e := range cur {
					if rng.Intn(4) == 0 {
						removed = append(removed, [2]int32{int32(e >> 32), int32(uint32(e))})
						delete(cur, e)
					}
				}
				// …and add fresh random non-edges.
				for tries := 0; tries < n/2+1; tries++ {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v {
						continue
					}
					if u > v {
						u, v = v, u
					}
					e := uint64(u)<<32 | uint64(v)
					if cur[e] {
						continue
					}
					cur[e] = true
					added = append(added, [2]int32{int32(u), int32(v)})
				}
				got := p.Apply(added, removed, "patched")
				want := buildFrom(n, cur, "patched")
				if !got.EqualCSR(want) {
					t.Fatalf("n=%d seed=%d round=%d: patched CSR diverged from rebuild", n, seed, round)
				}
				if got.Name() != "patched" {
					t.Fatalf("patched graph name = %q", got.Name())
				}
			}
		}
	}
}

// TestPatcherEmptyDelta: applying an empty delta must reproduce the same
// topology (in the other buffer).
func TestPatcherEmptyDelta(t *testing.T) {
	rng := prand.New(11)
	g := RandomRegular(32, 4, rng)
	p := NewPatcher(g)
	got := p.Apply(nil, nil, g.Name())
	if !got.EqualCSR(g) {
		t.Fatal("empty delta changed the graph")
	}
}

// TestPatcherInconsistentDeltaPanics: removing an absent edge must panic
// rather than corrupt the CSR.
func TestPatcherInconsistentDeltaPanics(t *testing.T) {
	p := NewPatcher(Cycle(8))
	defer func() {
		if recover() == nil {
			t.Fatal("removing an absent edge did not panic")
		}
	}()
	p.Apply(nil, [][2]int32{{0, 4}}, "bad")
}

// TestEqualCSR sanity-checks the oracle relation itself.
func TestEqualCSR(t *testing.T) {
	a, b := Cycle(16), Cycle(16)
	if !a.EqualCSR(b) {
		t.Fatal("identical cycles compare unequal")
	}
	if a.EqualCSR(Path(16)) {
		t.Fatal("cycle equals path")
	}
	if a.EqualCSR(Cycle(17)) {
		t.Fatal("different sizes compare equal")
	}
}
