package graph

import (
	"math"
	"testing"
	"testing/quick"

	"mobilegossip/internal/prand"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := b.AddEdge(0, 2); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 0)
	g := b.Build("dup")
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestPathProperties(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.NumEdges() != 4 {
		t.Fatalf("path(5): n=%d m=%d", g.N(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("path disconnected")
	}
	if d, _ := g.Diameter(); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("Δ = %d, want 2", g.MaxDegree())
	}
}

func TestCycleProperties(t *testing.T) {
	g := Cycle(8)
	if g.NumEdges() != 8 || g.MaxDegree() != 2 {
		t.Fatalf("cycle(8): m=%d Δ=%d", g.NumEdges(), g.MaxDegree())
	}
	if d, _ := g.Diameter(); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
	for u := 0; u < 8; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("vertex %d degree %d", u, g.Degree(u))
		}
	}
	// Small n degrades to path.
	if Cycle(2).NumEdges() != 1 {
		t.Error("cycle(2) should be an edge")
	}
}

func TestCompleteProperties(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 15 || g.MaxDegree() != 5 {
		t.Fatalf("K6: m=%d Δ=%d", g.NumEdges(), g.MaxDegree())
	}
	if d, _ := g.Diameter(); d != 1 {
		t.Fatalf("K6 diameter = %d", d)
	}
}

func TestStarProperties(t *testing.T) {
	g := Star(10)
	if g.MaxDegree() != 9 || g.NumEdges() != 9 {
		t.Fatalf("star(10): Δ=%d m=%d", g.MaxDegree(), g.NumEdges())
	}
	if d, _ := g.Diameter(); d != 2 {
		t.Fatalf("star diameter = %d", d)
	}
}

func TestDoubleStarProperties(t *testing.T) {
	g := DoubleStar(12)
	if !g.Connected() {
		t.Fatal("double star disconnected")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("hubs not joined")
	}
	// Leaves have degree 1; hubs have high degree.
	for u := 2; u < 12; u++ {
		if g.Degree(u) != 1 {
			t.Fatalf("leaf %d degree %d", u, g.Degree(u))
		}
	}
	if d, _ := g.Diameter(); d != 3 {
		t.Fatalf("double star diameter = %d, want 3", d)
	}
	// Hubs split leaves roughly evenly — Δ ≈ n/2 as in the paper's Ω(Δ²)
	// construction.
	if g.MaxDegree() < 5 || g.MaxDegree() > 7 {
		t.Fatalf("hub degree %d not ≈ n/2", g.MaxDegree())
	}
}

func TestGridProperties(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.NumEdges() != 3*3+2*4 {
		t.Fatalf("grid(3,4): n=%d m=%d", g.N(), g.NumEdges())
	}
	if d, _ := g.Diameter(); d != 5 {
		t.Fatalf("grid diameter = %d, want 5", d)
	}
}

func TestHypercubeProperties(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.MaxDegree() != 4 {
		t.Fatalf("Q4: n=%d Δ=%d", g.N(), g.MaxDegree())
	}
	if d, _ := g.Diameter(); d != 4 {
		t.Fatalf("Q4 diameter = %d", d)
	}
	if g.NumEdges() != 32 {
		t.Fatalf("Q4 edges = %d, want 32", g.NumEdges())
	}
}

func TestBarbellProperties(t *testing.T) {
	g := Barbell(5, 3)
	if !g.Connected() {
		t.Fatal("barbell disconnected")
	}
	if g.N() != 12 {
		t.Fatalf("barbell n = %d, want 12", g.N())
	}
	// Two K5s contribute 2*10 edges plus 3 path edges.
	if g.NumEdges() != 23 {
		t.Fatalf("barbell m = %d, want 23", g.NumEdges())
	}
	// pathLen=1 joins the cliques directly.
	g1 := Barbell(4, 1)
	if !g1.Connected() || g1.N() != 8 {
		t.Fatalf("barbell(4,1) wrong: n=%d", g1.N())
	}
}

func TestLollipopProperties(t *testing.T) {
	g := Lollipop(4, 3)
	if !g.Connected() || g.N() != 7 {
		t.Fatalf("lollipop: n=%d connected=%v", g.N(), g.Connected())
	}
	if g.Degree(6) != 1 {
		t.Fatal("tail end should have degree 1")
	}
}

func TestGNPConnected(t *testing.T) {
	rng := prand.New(1)
	for _, p := range []float64{0.01, 0.1, 0.5} {
		g := GNP(40, p, rng)
		if !g.Connected() {
			t.Fatalf("GNP(40,%f) not connected", p)
		}
		if g.N() != 40 {
			t.Fatalf("GNP n = %d", g.N())
		}
	}
}

func TestRandomRegularProperties(t *testing.T) {
	rng := prand.New(2)
	for _, d := range []int{3, 4, 6} {
		g := RandomRegular(30, d, rng)
		if !g.Connected() {
			t.Fatalf("regular(30,%d) disconnected", d)
		}
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) != d {
				// Circulant fallback has degree 2*ceil(d/2); accept that too.
				if g.Degree(u) != 2*((d+1)/2) {
					t.Fatalf("regular(30,%d): vertex %d degree %d", d, u, g.Degree(u))
				}
			}
		}
	}
}

func TestRandomRegularOddProduct(t *testing.T) {
	// n*d odd must be repaired, not looped forever.
	g := RandomRegular(9, 3, prand.New(3))
	if !g.Connected() {
		t.Fatal("regular(9,3) fallback disconnected")
	}
}

func TestCirculantConnected(t *testing.T) {
	for _, n := range []int{5, 16, 33} {
		g := Circulant(n, 4)
		if !g.Connected() {
			t.Fatalf("circulant(%d,4) disconnected", n)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(2, 3)
	g := b.Build("two-components")
	if _, err := g.Diameter(); err != ErrDisconnected {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestBoundarySize(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	cases := []struct {
		s    []int
		want int
	}{
		{[]int{0}, 1}, {[]int{2}, 2}, {[]int{0, 1}, 1},
		{[]int{1, 3}, 3}, {[]int{0, 1, 2, 3, 4}, 0},
	}
	for _, c := range cases {
		if got := g.BoundarySize(c.s); got != c.want {
			t.Errorf("BoundarySize(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestExactVertexExpansionKnownValues(t *testing.T) {
	cases := []struct {
		g    *Graph
		want float64
	}{
		// K_n: |∂S| = n−|S|, minimized at |S| = ⌊n/2⌋.
		{Complete(6), 1.0},
		{Complete(7), 4.0 / 3.0},
		// Cycle C_8: contiguous arc of 4 has boundary 2 → α = 1/2.
		{Cycle(8), 0.5},
		// Path P_8: prefix of 4 has boundary 1 → α = 1/4.
		{Path(8), 0.25},
		// Star S_8: 4 leaves have boundary {hub} → α = 1/4.
		{Star(8), 0.25},
	}
	for _, c := range cases {
		got, ok := c.g.ExactVertexExpansion()
		if !ok {
			t.Fatalf("%s: exact expansion refused", c.g.Name())
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: α = %f, want %f", c.g.Name(), got, c.want)
		}
	}
}

func TestExactVertexExpansionBounds(t *testing.T) {
	// 0 < α(G) <= ⌈n/2⌉/⌊n/2⌋ for every connected graph. (The paper's
	// remark that α ≤ 1 holds for even n; for odd n the ⌊n/2⌋-subset bound
	// gives the slightly weaker ratio, e.g. α(K₅) = 3/2.)
	rng := prand.New(4)
	graphs := []*Graph{
		Cycle(9), Star(11), DoubleStar(10), Grid(3, 3), Hypercube(3),
		GNP(12, 0.3, rng), Complete(5), Barbell(4, 2),
	}
	for _, g := range graphs {
		a, ok := g.ExactVertexExpansion()
		if !ok {
			t.Fatalf("%s: refused", g.Name())
		}
		n := g.N()
		limit := float64((n+1)/2) / float64(n/2)
		if a <= 0 || a > limit+1e-9 {
			t.Errorf("%s: α = %f outside (0,%f]", g.Name(), a, limit)
		}
	}
}

func TestExactVertexExpansionRefusesLarge(t *testing.T) {
	if _, ok := Cycle(30).ExactVertexExpansion(); ok {
		t.Fatal("exact expansion should refuse n=30")
	}
}

func TestEstimateVertexExpansionUpperBounds(t *testing.T) {
	// The estimate must upper-bound the true α; on small graphs it equals it.
	rng := prand.New(5)
	for _, g := range []*Graph{Cycle(12), Star(14), Grid(4, 4)} {
		exact, _ := g.ExactVertexExpansion()
		est := g.EstimateVertexExpansion(50, rng)
		if est < exact-1e-9 {
			t.Errorf("%s: estimate %f below exact %f", g.Name(), est, exact)
		}
		if est > exact+1e-9 {
			t.Errorf("%s: estimate %f should match exact for small n", g.Name(), est)
		}
	}
}

func TestEstimateVertexExpansionLargeRing(t *testing.T) {
	// For C_n the BFS-ball candidates find α = 2/(n/2) = 4/n exactly.
	g := Cycle(100)
	est := g.EstimateVertexExpansion(20, prand.New(6))
	if math.Abs(est-0.04) > 1e-9 {
		t.Fatalf("ring estimate α = %f, want 0.04", est)
	}
}

func TestDiameterVsExpansionTheorem62(t *testing.T) {
	// Theorem 6.2: D = O(log n / α). Verify D ≤ c·(ln n)/α + 2 with a small
	// constant across families (E13's unit-level check).
	rng := prand.New(7)
	graphs := []*Graph{
		Cycle(16), Path(16), Star(16), Grid(4, 4), Hypercube(4),
		Complete(12), GNP(18, 0.4, rng), DoubleStar(14),
	}
	for _, g := range graphs {
		a, ok := g.ExactVertexExpansion()
		if !ok {
			t.Fatalf("%s refused", g.Name())
		}
		d, err := g.Diameter()
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		bound := 2*math.Log(float64(g.N()))/a + 2
		if float64(d) > bound {
			t.Errorf("%s: D=%d exceeds 2·ln(n)/α+2 = %f (α=%f)", g.Name(), d, bound, a)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() len %d != NumEdges %d", len(edges), g.NumEdges())
	}
	for _, e := range edges {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Fatalf("edge %v not reported by HasEdge", e)
		}
	}
}

func TestGeneratorsConnectedProperty(t *testing.T) {
	// Property: every generator yields a connected graph for random sizes.
	f := func(seed uint64, raw uint8) bool {
		n := 3 + int(raw%30)
		rng := prand.New(seed)
		gs := []*Graph{
			Path(n), Cycle(n), Complete(n), Star(n), DoubleStar(n),
			GNP(n, 0.2, rng), RandomRegular(n, 3, rng), Circulant(n, 4),
		}
		for _, g := range gs {
			if !g.Connected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
