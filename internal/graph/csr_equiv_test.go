package graph

// Equivalence tests for the CSR layout against a straightforward
// adjacency-list reference: the CSR Graph must answer Neighbors / Degree /
// HasEdge / BoundarySize exactly as the pre-CSR [][]int implementation did
// on arbitrary edge sets (including duplicate AddEdge calls, which the old
// map-based builder deduplicated).

import (
	"sort"
	"testing"

	"mobilegossip/internal/prand"
)

// adjListGraph is the reference implementation: the seed repo's sorted
// adjacency-list graph, kept verbatim as a test oracle.
type adjListGraph struct {
	adj [][]int
}

func newAdjListGraph(n int, edges [][2]int) *adjListGraph {
	seen := make(map[[2]int]bool)
	adj := make([][]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	return &adjListGraph{adj: adj}
}

func (g *adjListGraph) neighbors(u int) []int { return g.adj[u] }
func (g *adjListGraph) degree(u int) int      { return len(g.adj[u]) }

func (g *adjListGraph) hasEdge(u, v int) bool {
	l := g.adj[u]
	i := sort.SearchInts(l, v)
	return i < len(l) && l[i] == v
}

// boundarySize is the pre-CSR bool-slice implementation of |∂S|.
func (g *adjListGraph) boundarySize(s []int) int {
	in := make([]bool, len(g.adj))
	for _, u := range s {
		in[u] = true
	}
	boundary := make([]bool, len(g.adj))
	count := 0
	for _, u := range s {
		for _, v := range g.adj[u] {
			if !in[v] && !boundary[v] {
				boundary[v] = true
				count++
			}
		}
	}
	return count
}

// randomEdgeSet draws a random multigraph-ish edge list (duplicates
// included deliberately to exercise Build-time dedup).
func randomEdgeSet(n, m int, rng *prand.RNG) [][2]int {
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, [2]int{u, v})
		if rng.Intn(8) == 0 { // occasional exact duplicate
			edges = append(edges, [2]int{v, u})
		}
	}
	return edges
}

func TestCSRMatchesAdjacencyList(t *testing.T) {
	rng := prand.New(12345)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(120)
		m := rng.Intn(3 * n)
		edges := randomEdgeSet(n, m, rng)

		ref := newAdjListGraph(n, edges)
		b := NewBuilder(n)
		for _, e := range edges {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Build("equiv")

		if g.N() != n {
			t.Fatalf("trial %d: N = %d, want %d", trial, g.N(), n)
		}
		wantEdges := 0
		for u := 0; u < n; u++ {
			wantEdges += ref.degree(u)
			if got, want := g.Degree(u), ref.degree(u); got != want {
				t.Fatalf("trial %d: Degree(%d) = %d, want %d", trial, u, got, want)
			}
			got := g.Neighbors(u)
			want := ref.neighbors(u)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, u, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, u, got, want)
				}
			}
			adj := g.Adjacency(u)
			for i := range want {
				if int(adj[i]) != want[i] {
					t.Fatalf("trial %d: Adjacency(%d) = %v, want %v", trial, u, adj, want)
				}
			}
		}
		if g.NumEdges() != wantEdges/2 {
			t.Fatalf("trial %d: NumEdges = %d, want %d", trial, g.NumEdges(), wantEdges/2)
		}

		// HasEdge on a sample of pairs (all pairs for small n).
		pairs := n * n
		if pairs > 2000 {
			pairs = 2000
		}
		for i := 0; i < pairs; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := g.HasEdge(u, v), ref.hasEdge(u, v); got != want {
				t.Fatalf("trial %d: HasEdge(%d,%d) = %v, want %v", trial, u, v, got, want)
			}
		}

		// BoundarySize on random subsets.
		for i := 0; i < 20; i++ {
			size := 1 + rng.Intn(n)
			perm := rng.Perm(n)
			s := perm[:size]
			if got, want := g.BoundarySize(s), ref.boundarySize(s); got != want {
				t.Fatalf("trial %d: BoundarySize(%v) = %d, want %d", trial, s, got, want)
			}
		}
	}
}

// TestRelabelMatchesEdgeRebuild pins Relabel to the reference
// Edges-and-rebuild path it replaced.
func TestRelabelMatchesEdgeRebuild(t *testing.T) {
	rng := prand.New(777)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(60)
		g := GNP(n, 0.15, rng)
		perm := rng.Perm(n)

		want := NewBuilder(n)
		for _, e := range g.Edges() {
			_ = want.AddEdge(perm[e[0]], perm[e[1]])
		}
		wg := want.Build("ref")
		got := g.Relabel(perm, "ref")
		for u := 0; u < n; u++ {
			a, b := got.Neighbors(u), wg.Neighbors(u)
			if len(a) != len(b) {
				t.Fatalf("trial %d: Relabel Neighbors(%d) = %v, want %v", trial, u, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: Relabel Neighbors(%d) = %v, want %v", trial, u, a, b)
				}
			}
		}
	}
}
