package graph

// Packed edge lists are the exchange format between the dynamic-topology
// producers (internal/mobility's proximity pipeline, internal/adversary's
// perturbation engine) and the CSR maintenance layer: an undirected edge
// {u, v} with u < v is one uint64, u<<32 | v, and a whole topology is a
// sorted []uint64 — mergeable, diffable and comparable with flat integer
// scans, no per-edge allocation.

// PackEdge packs the undirected edge {u, v} into its canonical uint64 form
// (smaller endpoint in the high word).
func PackEdge(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// UnpackEdge unpacks a packed edge into its (u, v) pair with u < v.
func UnpackEdge(e uint64) [2]int32 { return [2]int32{int32(e >> 32), int32(uint32(e))} }

// AppendPackedEdges appends g's edges to buf in ascending packed order
// (CSR adjacency is sorted, and each edge is emitted at its smaller
// endpoint, so no sort is needed) and returns the extended slice.
func (g *Graph) AppendPackedEdges(buf []uint64) []uint64 {
	n := g.N()
	for u := 0; u < n; u++ {
		for _, v := range g.Adjacency(u) {
			if int32(u) < v {
				buf = append(buf, uint64(uint32(u))<<32|uint64(uint32(v)))
			}
		}
	}
	return buf
}

// DiffPacked merges two sorted packed edge lists and appends the edges only
// in next to added and the edges only in prev to removed — the (u, v) pair
// form graph.Patcher consumes. Pass in reusable buffers (typically
// buf[:0]); the extended slices are returned.
func DiffPacked(prev, next []uint64, added, removed [][2]int32) (a, r [][2]int32) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			removed = append(removed, UnpackEdge(prev[i]))
			i++
		default:
			added = append(added, UnpackEdge(next[j]))
			j++
		}
	}
	for ; i < len(prev); i++ {
		removed = append(removed, UnpackEdge(prev[i]))
	}
	for ; j < len(next); j++ {
		added = append(added, UnpackEdge(next[j]))
	}
	return added, removed
}
