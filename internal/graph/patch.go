package graph

import "fmt"

// Patcher maintains a CSR graph under per-round edge deltas without
// rebuilding it from the edge list. Where Builder.Build pays a full
// O(m log m) sort plus fresh offsets/neighbors allocations for every
// topology change, Apply merges the (small, sorted) per-vertex delta lists
// into the previous round's already-sorted adjacency ranges in one
// O(n + m + d log d) pass over double-buffered arrays — zero steady-state
// allocations once the buffers have grown to their high-water size. This is
// what lets dynamic schedules (internal/mobility) change the topology every
// round at a fraction of the rebuild cost; see DESIGN.md §8.
//
// The produced graphs are canonical CSR — identical, element for element,
// to what Builder.Build would produce from the same edge set — which the
// equivalence quick-checks in this package and internal/mobility pin down.
type Patcher struct {
	n   int
	cur int // buffer index holding the current graph

	offsets   [2][]int32
	neighbors [2][]int32
	graphs    [2]Graph // reusable headers over the two buffers

	// Delta-CSR scratch: the added/removed edge pairs regrouped per
	// endpoint (each edge appears under both of its endpoints), sorted
	// ascending within each vertex's range.
	addCnt, remCnt []int32
	addOff, remOff []int32 // len n+1
	addAdj, remAdj []int32
}

// NewPatcher returns a Patcher whose current graph is a private copy of g.
func NewPatcher(g *Graph) *Patcher {
	n := g.N()
	p := &Patcher{
		n:      n,
		addCnt: make([]int32, n), remCnt: make([]int32, n),
		addOff: make([]int32, n+1), remOff: make([]int32, n+1),
	}
	p.offsets[0] = append(make([]int32, 0, n+1), g.offsets...)
	p.neighbors[0] = append([]int32(nil), g.neighbors...)
	p.offsets[1] = make([]int32, n+1)
	p.graphs[0] = Graph{offsets: p.offsets[0], neighbors: p.neighbors[0], name: g.name}
	return p
}

// Graph returns the current graph. Like Apply's return value, it aliases
// the Patcher's internal buffers.
func (p *Patcher) Graph() *Graph { return &p.graphs[p.cur] }

// Apply advances the current graph by one delta: every edge in removed must
// be present and every edge in added absent (violations panic — a corrupted
// CSR would be far harder to debug downstream). Both lists are (u, v) pairs
// with u < v, in any order. The returned graph aliases the Patcher's
// buffers and is valid until the next Apply call; the engine's
// round-at-a-time consumption respects that lifetime by construction.
func (p *Patcher) Apply(added, removed [][2]int32, name string) *Graph {
	n := p.n
	src, dst := p.cur, 1-p.cur

	// Regroup the deltas into per-vertex CSRs (counts, prefix sums, fill,
	// per-range sort) — the same layout discipline as Builder.Build, over
	// the typically tiny delta instead of the whole edge set.
	for i := range p.addCnt {
		p.addCnt[i] = 0
		p.remCnt[i] = 0
	}
	for _, e := range added {
		p.addCnt[e[0]]++
		p.addCnt[e[1]]++
	}
	for _, e := range removed {
		p.remCnt[e[0]]++
		p.remCnt[e[1]]++
	}
	p.addOff[0], p.remOff[0] = 0, 0
	for u := 0; u < n; u++ {
		p.addOff[u+1] = p.addOff[u] + p.addCnt[u]
		p.remOff[u+1] = p.remOff[u] + p.remCnt[u]
		p.addCnt[u] = 0 // reused as fill cursors
		p.remCnt[u] = 0
	}
	p.addAdj = grown(p.addAdj, int(p.addOff[n]))
	p.remAdj = grown(p.remAdj, int(p.remOff[n]))
	for _, e := range added {
		u, v := e[0], e[1]
		p.addAdj[p.addOff[u]+p.addCnt[u]] = v
		p.addCnt[u]++
		p.addAdj[p.addOff[v]+p.addCnt[v]] = u
		p.addCnt[v]++
	}
	for _, e := range removed {
		u, v := e[0], e[1]
		p.remAdj[p.remOff[u]+p.remCnt[u]] = v
		p.remCnt[u]++
		p.remAdj[p.remOff[v]+p.remCnt[v]] = u
		p.remCnt[v]++
	}
	for u := 0; u < n; u++ {
		sortInt32(p.addAdj[p.addOff[u]:p.addOff[u+1]])
		sortInt32(p.remAdj[p.remOff[u]:p.remOff[u+1]])
	}

	// New offsets: old degree plus the delta balance.
	oldOff, newOff := p.offsets[src], p.offsets[dst]
	newOff[0] = 0
	for u := 0; u < n; u++ {
		deg := oldOff[u+1] - oldOff[u] +
			(p.addOff[u+1] - p.addOff[u]) - (p.remOff[u+1] - p.remOff[u])
		if deg < 0 {
			panic(fmt.Sprintf("graph: delta removes more edges than vertex %d has", u))
		}
		newOff[u+1] = newOff[u] + deg
	}
	p.neighbors[dst] = grown(p.neighbors[dst], int(newOff[n]))
	oldNbr, newNbr := p.neighbors[src], p.neighbors[dst]

	// Per-vertex three-way merge: old adjacency minus removals, interleaved
	// with additions, all streams sorted ascending. Runs of untouched
	// vertices — the vast majority under realistic churn — are bulk-copied
	// in one memmove: within such a run the old and new offsets differ by a
	// constant, so the whole span of adjacency ranges is contiguous in both
	// buffers.
	for u := 0; u < n; u++ {
		if p.addOff[u+1] == p.addOff[u] && p.remOff[u+1] == p.remOff[u] {
			start := u
			for u+1 < n && p.addOff[u+2] == p.addOff[u+1] && p.remOff[u+2] == p.remOff[u+1] {
				u++
			}
			copy(newNbr[newOff[start]:newOff[u+1]], oldNbr[oldOff[start]:oldOff[u+1]])
			continue
		}
		old := oldNbr[oldOff[u]:oldOff[u+1]]
		adds := p.addAdj[p.addOff[u]:p.addOff[u+1]]
		rems := p.remAdj[p.remOff[u]:p.remOff[u+1]]
		out := newNbr[newOff[u]:newOff[u+1]]
		w, j, k := 0, 0, 0
		for _, v := range old {
			if k < len(rems) && rems[k] == v {
				k++
				continue
			}
			for j < len(adds) && adds[j] < v {
				out[w] = adds[j]
				w++
				j++
			}
			out[w] = v
			w++
		}
		for j < len(adds) {
			out[w] = adds[j]
			w++
			j++
		}
		if w != len(out) || k != len(rems) {
			panic(fmt.Sprintf(
				"graph: inconsistent delta at vertex %d (removed edge absent or added edge present)", u))
		}
	}

	p.cur = dst
	p.graphs[dst] = Graph{offsets: newOff, neighbors: newNbr, name: name}
	return &p.graphs[dst]
}

// Reset re-seeds the Patcher from a freshly built graph (used when a
// schedule replays from its initial state), keeping the grown buffers.
func (p *Patcher) Reset(g *Graph) {
	if g.N() != p.n {
		panic(fmt.Sprintf("graph: Patcher.Reset with %d vertices, want %d", g.N(), p.n))
	}
	copy(p.offsets[p.cur], g.offsets)
	p.neighbors[p.cur] = append(p.neighbors[p.cur][:0], g.neighbors...)
	p.graphs[p.cur] = Graph{offsets: p.offsets[p.cur], neighbors: p.neighbors[p.cur], name: g.name}
}

// grown returns s resized to length n, reallocating (with slack) only when
// the capacity is exceeded — the buffers stabilize at their high-water mark.
func grown(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n, n+n/4+16)
}

// EqualCSR reports whether g and h are element-for-element identical in CSR
// form — the same topology in the same canonical layout. This is the
// oracle relation of the delta-patching equivalence tests: a patched graph
// must be indistinguishable from a from-scratch rebuild.
func (g *Graph) EqualCSR(h *Graph) bool {
	if len(g.offsets) != len(h.offsets) || len(g.neighbors) != len(h.neighbors) {
		return false
	}
	for i, v := range g.offsets {
		if h.offsets[i] != v {
			return false
		}
	}
	for i, v := range g.neighbors {
		if h.neighbors[i] != v {
			return false
		}
	}
	return true
}
