package graph

// Large-graph generator tests: RandomGeometric and PreferentialAttachment
// must build connected 100k-node topologies quickly. Guarded by -short so
// the race-mode CI job and quick local loops skip them; the full test job
// runs them.

import (
	"math"
	"testing"

	"mobilegossip/internal/prand"
)

func TestRandomGeometricSmall(t *testing.T) {
	rng := prand.New(42)
	for _, n := range []int{2, 10, 100, 500} {
		r := 1.5 * math.Sqrt(math.Log(float64(n)+2)/(math.Pi*float64(n)))
		g := RandomGeometric(n, r, rng)
		if g.N() != n {
			t.Fatalf("n=%d: N() = %d", n, g.N())
		}
		if !g.Connected() {
			t.Fatalf("n=%d: RGG not connected (backbone patch failed)", n)
		}
		// Simple graph invariants.
		for u := 0; u < n; u++ {
			adj := g.Adjacency(u)
			for i, v := range adj {
				if int(v) == u {
					t.Fatalf("n=%d: self-loop at %d", n, u)
				}
				if i > 0 && adj[i-1] >= v {
					t.Fatalf("n=%d: adjacency of %d not sorted/unique: %v", n, u, adj)
				}
				if !g.HasEdge(int(v), u) {
					t.Fatalf("n=%d: edge (%d,%d) not mirrored", n, u, v)
				}
			}
		}
	}
}

func TestPreferentialAttachmentSmall(t *testing.T) {
	rng := prand.New(43)
	for _, tc := range []struct{ n, m int }{{2, 1}, {10, 2}, {100, 3}, {500, 4}} {
		g := PreferentialAttachment(tc.n, tc.m, rng)
		if g.N() != tc.n {
			t.Fatalf("n=%d: N() = %d", tc.n, g.N())
		}
		if !g.Connected() {
			t.Fatalf("n=%d m=%d: PA not connected", tc.n, tc.m)
		}
		// Every non-seed vertex attaches exactly m edges, so min degree ≥ m
		// (seed clique vertices have ≥ m too for m < n).
		for u := 0; u < tc.n; u++ {
			if g.Degree(u) < tc.m && tc.n > tc.m+1 {
				t.Fatalf("n=%d m=%d: degree(%d) = %d < m", tc.n, tc.m, u, g.Degree(u))
			}
		}
	}
}

func TestLargeGenerators100k(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 100k-node generator tests in -short mode")
	}
	const n = 100_000
	rng := prand.New(7)

	// Radius just above the connectivity threshold keeps m ≈ n·ln n small
	// enough to build fast while usually avoiding the backbone patch.
	r := 1.5 * math.Sqrt(math.Log(n)/(math.Pi*n))
	g := RandomGeometric(n, r, rng)
	if g.N() != n || !g.Connected() {
		t.Fatalf("RGG(100k): N=%d connected=%v", g.N(), g.Connected())
	}
	if d := g.MaxDegree(); d < 3 || d > 200 {
		t.Fatalf("RGG(100k): implausible max degree %d", d)
	}

	pa := PreferentialAttachment(n, 3, rng)
	if pa.N() != n || !pa.Connected() {
		t.Fatalf("PA(100k): N=%d connected=%v", pa.N(), pa.Connected())
	}
	if want := 6 + 3*(n-4); pa.NumEdges() != want { // seed K₄ + m per later vertex
		t.Fatalf("PA(100k): NumEdges = %d, want %d", pa.NumEdges(), want)
	}
	// The hub-heavy tail is the point of PA: the max degree must dwarf m.
	if d := pa.MaxDegree(); d < 50 {
		t.Fatalf("PA(100k): max degree %d lacks the heavy tail", d)
	}
}
