package graph

import (
	"math/bits"
	"sort"

	"mobilegossip/internal/prand"
)

// Vertex expansion α(G) = min over nonempty S with |S| <= n/2 of |∂S|/|S|,
// where ∂S is the set of vertices outside S adjacent to S (§2 of the paper).
// Computing α exactly is NP-hard in general; we provide an exact
// exponential-time routine for small n (used by tests and small experiment
// reports) and a sampling + local-search estimator that returns an upper
// bound on α for larger graphs.

// exactExpansionLimit bounds the exact routine's subset enumeration (2^n).
const exactExpansionLimit = 22

// BoundarySize returns |∂S| for the subset S given as a bitmask (n <= 64).
func (g *Graph) boundarySizeMask(mask uint64) int {
	boundary := uint64(0)
	for u := 0; u < g.N(); u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		for _, v := range g.Adjacency(u) {
			if mask&(1<<uint(v)) == 0 {
				boundary |= 1 << uint(v)
			}
		}
	}
	return bits.OnesCount64(boundary)
}

// BoundarySize returns |∂S| for an explicit vertex subset. The membership
// and boundary indicators are word-packed bitsets (⌈n/64⌉ words each, not
// n bools), so the local-search inner loop of EstimateVertexExpansion stays
// cache-resident on large graphs.
func (g *Graph) BoundarySize(s []int) int {
	nw := (g.N() + 63) / 64
	in := make([]uint64, nw)
	for _, u := range s {
		in[u>>6] |= 1 << uint(u&63)
	}
	boundary := make([]uint64, nw)
	for _, u := range s {
		for _, v := range g.Adjacency(u) {
			boundary[v>>6] |= 1 << uint(v&63)
		}
	}
	count := 0
	for i, w := range boundary {
		count += bits.OnesCount64(w &^ in[i])
	}
	return count
}

// ExactVertexExpansion computes α(G) by enumerating all subsets. It refuses
// graphs with more than exactExpansionLimit vertices (ok = false).
func (g *Graph) ExactVertexExpansion() (alpha float64, ok bool) {
	n := g.N()
	if n < 2 || n > exactExpansionLimit {
		return 0, false
	}
	best := float64(n) // α ≤ 1 always; start above
	half := n / 2
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		size := bits.OnesCount64(mask)
		if size > half {
			continue
		}
		a := float64(g.boundarySizeMask(mask)) / float64(size)
		if a < best {
			best = a
		}
	}
	return best, true
}

// EstimateVertexExpansion returns an upper bound on α(G) obtained from
// `samples` random seed subsets refined by greedy local search (moves that
// reduce |∂S|/|S| while keeping |S| <= n/2). The true α is at most the
// returned value. For n <= exactExpansionLimit the exact value is returned.
func (g *Graph) EstimateVertexExpansion(samples int, rng *prand.RNG) float64 {
	if a, ok := g.ExactVertexExpansion(); ok {
		return a
	}
	n := g.N()
	if n < 2 {
		return 0
	}
	best := 1.0
	// Deterministic BFS-ball candidates: balls around each vertex are the
	// minimizers for ring/grid-like graphs.
	for _, src := range []int{0, n / 3, n / 2, n - 1} {
		dist := g.BFS(src)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		// counting sort by distance
		sortByKey(order, func(v int) int { return dist[v] })
		for size := 1; size <= n/2; size++ {
			a := float64(g.BoundarySize(order[:size])) / float64(size)
			if a < best {
				best = a
			}
		}
	}
	for s := 0; s < samples; s++ {
		size := 1 + rng.Intn(n/2)
		perm := rng.Perm(n)
		set := append([]int(nil), perm[:size]...)
		if a := g.localSearch(set); a < best {
			best = a
		}
	}
	return best
}

// localSearch greedily swaps/removes/adds single vertices to reduce the
// expansion of the candidate set, returning the final ratio.
func (g *Graph) localSearch(set []int) float64 {
	n := g.N()
	in := make([]bool, n)
	for _, u := range set {
		in[u] = true
	}
	cur := float64(g.BoundarySize(set)) / float64(len(set))
	improved := true
	for iter := 0; improved && iter < 2*n; iter++ {
		improved = false
		// Try adding each boundary vertex (often reduces the ratio by
		// absorbing the boundary) while |S| <= n/2.
		for v := 0; v < n; v++ {
			if in[v] || len(set)+1 > n/2 {
				continue
			}
			in[v] = true
			cand := append(set, v)
			a := float64(g.BoundarySize(cand)) / float64(len(cand))
			if a < cur {
				set, cur, improved = cand, a, true
			} else {
				in[v] = false
			}
		}
		// Try removing each vertex.
		for i := 0; i < len(set); i++ {
			v := set[i]
			in[v] = false
			cand := make([]int, 0, len(set)-1)
			cand = append(cand, set[:i]...)
			cand = append(cand, set[i+1:]...)
			if len(cand) == 0 {
				in[v] = true
				continue
			}
			a := float64(g.BoundarySize(cand)) / float64(len(cand))
			if a < cur {
				set, cur, improved = cand, a, true
				i--
			} else {
				in[v] = true
			}
		}
	}
	return cur
}

// sortByKey stably sorts order in place by an integer key.
func sortByKey(order []int, key func(int) int) {
	sort.SliceStable(order, func(i, j int) bool { return key(order[i]) < key(order[j]) })
}
