// Package graph provides the static network-topology substrate of the mobile
// telephone model: undirected connected graphs, the generator families used
// by the paper's analyses and lower bounds (rings, stars, the two-star Δ²
// lower-bound graph of §1, expanders, ...), and the graph properties the
// round-complexity bounds are phrased in — maximum degree Δ, diameter D, and
// vertex expansion α (§2).
//
// Graphs are stored in compressed sparse row (CSR) form — a single offsets
// array plus a single neighbors array, both int32 — so that a million-node
// topology costs two flat allocations (~4·(n+1) + 4·2m bytes) instead of a
// pointer-per-vertex adjacency structure, and a node's neighbor scan is one
// contiguous slice walk. See DESIGN.md §"CSR graph layout".
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..n-1 stored in CSR form:
// the neighbors of u are neighbors[offsets[u]:offsets[u+1]], sorted
// ascending. Graphs are immutable after construction through this package's
// builders.
type Graph struct {
	offsets   []int32
	neighbors []int32
	name      string
}

// Builder accumulates edges and produces an immutable Graph. Edges are kept
// as packed (u,v) pairs and deduplicated by a sort at Build time, so
// accumulating m edges costs O(m) space and no per-edge map overhead.
type Builder struct {
	n     int
	edges []uint64 // u<<32 | v with u < v
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return NewBuilderCap(n, 0)
}

// NewBuilderCap returns a Builder for n vertices with capacity for edgeHint
// edges preallocated, avoiding append growth for generators that know their
// edge count up front.
func NewBuilderCap(n, edgeHint int) *Builder {
	if edgeHint < 0 {
		edgeHint = 0
	}
	return &Builder{n: n, edges: make([]uint64, 0, edgeHint)}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are rejected with an error. Duplicate edges are coalesced at
// Build time.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
	return nil
}

// Build finalizes the graph with the given display name.
func (b *Builder) Build(name string) *Graph {
	if b.n > math.MaxInt32-1 {
		panic(fmt.Sprintf("graph: %d vertices exceed the int32 CSR limit", b.n))
	}
	// Sort + compact the packed edge list: duplicates from repeated AddEdge
	// calls collapse here, replacing the old map-based dedup.
	sort.Slice(b.edges, func(i, j int) bool { return b.edges[i] < b.edges[j] })
	edges := b.edges[:0]
	var prev uint64
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue
		}
		edges = append(edges, e)
		prev = e
	}
	b.edges = edges // builders stay reusable: drop the compacted-away tail

	if len(edges) > math.MaxInt32/2 {
		// 2m directed adjacency entries must fit the int32 offsets, or the
		// prefix sum below wraps silently.
		panic(fmt.Sprintf("graph: %d edges exceed the int32 CSR limit", len(edges)))
	}
	offsets := make([]int32, b.n+1)
	for _, e := range edges {
		offsets[e>>32+1]++
		offsets[uint32(e)+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	neighbors := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	// Iterating the sorted unique edge list fills every per-vertex range in
	// ascending neighbor order: for vertex w, edges (y,w) with y < w arrive
	// during the earlier y-blocks in ascending y, and edges (w,x) with x > w
	// arrive during w's own block in ascending x — so no per-range sort is
	// needed.
	for _, e := range edges {
		u, v := int32(e>>32), int32(uint32(e))
		neighbors[offsets[u]+cursor[u]] = v
		cursor[u]++
		neighbors[offsets[v]+cursor[v]] = u
		cursor[v]++
	}
	return &Graph{offsets: offsets, neighbors: neighbors, name: name}
}

// FromCSR builds a graph directly from CSR arrays. offsets must have length
// n+1 with offsets[0] == 0, and each range neighbors[offsets[u]:offsets[u+1]]
// must be sorted ascending with mirrored edges (the caller is trusted; this
// constructor exists for relabeling and tests).
func FromCSR(offsets, neighbors []int32, name string) *Graph {
	return &Graph{offsets: offsets, neighbors: neighbors, name: name}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// Name returns the generator name for display.
func (g *Graph) Name() string { return g.name }

// Adjacency returns u's sorted neighbor ids as a zero-copy view into the CSR
// neighbors array. This is the hot-path accessor: no allocation, one bounds
// check. Callers must not modify the returned slice.
func (g *Graph) Adjacency(u int) []int32 {
	return g.neighbors[g.offsets[u]:g.offsets[u+1]]
}

// Neighbors returns the sorted neighbor list of u as []int. It allocates a
// fresh slice per call; hot paths should use Adjacency instead.
func (g *Graph) Neighbors(u int) []int {
	adj := g.Adjacency(u)
	out := make([]int, len(adj))
	for i, v := range adj {
		out[i] = int(v)
	}
	return out
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	adj := g.Adjacency(u)
	t := int32(v)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == t
}

// Edges returns all edges as (u < v) pairs.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.NumEdges())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Adjacency(u) {
			if int32(u) < v {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.neighbors) / 2 }

// MaxDegree returns Δ(G).
func (g *Graph) MaxDegree() int {
	d := int32(0)
	for u := 0; u < g.N(); u++ {
		if dd := g.offsets[u+1] - g.offsets[u]; dd > d {
			d = dd
		}
	}
	return int(d)
}

// Relabel returns the graph with vertex u renamed to perm[u] — the same
// topology under a permutation of the labels. It rebuilds the CSR arrays
// directly (degree counts, prefix sums, one fill pass, per-range sort) and
// is the scalable replacement for round-tripping through Edges + Builder.
func (g *Graph) Relabel(perm []int, name string) *Graph {
	n := g.N()
	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[perm[u]+1] = int32(g.Degree(u))
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	neighbors := make([]int32, len(g.neighbors))
	for u := 0; u < n; u++ {
		pu := perm[u]
		dst := neighbors[offsets[pu]:offsets[pu+1]]
		for i, v := range g.Adjacency(u) {
			dst[i] = int32(perm[v])
		}
		sortInt32(dst)
	}
	return &Graph{offsets: offsets, neighbors: neighbors, name: name}
}

// sortInt32 sorts a small int32 slice ascending (insertion sort for the
// typical short adjacency ranges, falling back to an allocation-free
// stdlib sort when long — sort.Slice would allocate its closure per call,
// which the Patcher's per-vertex delta sorting cannot afford).
func sortInt32(s []int32) {
	if len(s) > 32 {
		slices.Sort(s)
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// ErrDisconnected is returned by property routines that require connectivity.
var ErrDisconnected = errors.New("graph: not connected")

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := make([]int32, 1, 64)
	stack[0] = 0
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Adjacency(int(u)) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// BFS returns the distance from src to every vertex (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 1, n)
	queue[0] = int32(src)
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		for _, v := range g.Adjacency(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the exact diameter via all-pairs BFS, or an error if the
// graph is disconnected. O(n·m); intended for the sizes we simulate.
func (g *Graph) Diameter() (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	d := 0
	for u := 0; u < n; u++ {
		for _, dd := range g.BFS(u) {
			if dd < 0 {
				return 0, ErrDisconnected
			}
			if dd > d {
				d = dd
			}
		}
	}
	return d, nil
}
