// Package graph provides the static network-topology substrate of the mobile
// telephone model: undirected connected graphs, the generator families used
// by the paper's analyses and lower bounds (rings, stars, the two-star Δ²
// lower-bound graph of §1, expanders, ...), and the graph properties the
// round-complexity bounds are phrased in — maximum degree Δ, diameter D, and
// vertex expansion α (§2).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..n-1 stored as sorted
// adjacency lists. Graphs are immutable after construction through this
// package's builders.
type Graph struct {
	adj  [][]int
	name string
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[[2]int]bool
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[[2]int]bool)}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are rejected with an error.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int{u, v}] = true
	return nil
}

// Build finalizes the graph with the given display name.
func (b *Builder) Build(name string) *Graph {
	adj := make([][]int, b.n)
	for e := range b.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	return &Graph{adj: adj, name: name}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// Name returns the generator name for display.
func (g *Graph) Name() string { return g.name }

// Neighbors returns the sorted neighbor list of u. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	l := g.adj[u]
	i := sort.SearchInts(l, v)
	return i < len(l) && l[i] == v
}

// Edges returns all edges as (u < v) pairs.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u, l := range g.adj {
		for _, v := range l {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	m := 0
	for _, l := range g.adj {
		m += len(l)
	}
	return m / 2
}

// MaxDegree returns Δ(G).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, l := range g.adj {
		if len(l) > d {
			d = len(l)
		}
	}
	return d
}

// ErrDisconnected is returned by property routines that require connectivity.
var ErrDisconnected = errors.New("graph: not connected")

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// BFS returns the distance from src to every vertex (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the exact diameter via all-pairs BFS, or an error if the
// graph is disconnected. O(n·m); intended for the sizes we simulate.
func (g *Graph) Diameter() (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	d := 0
	for u := 0; u < n; u++ {
		for _, dd := range g.BFS(u) {
			if dd < 0 {
				return 0, ErrDisconnected
			}
			if dd > d {
				d = dd
			}
		}
	}
	return d, nil
}
