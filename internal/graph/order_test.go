package graph

import (
	"testing"

	"mobilegossip/internal/prand"
)

func isPermutation(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for old, nw := range perm {
		if nw < 0 || nw >= n || seen[nw] {
			t.Fatalf("perm[%d] = %d is not a bijection", old, nw)
		}
		seen[nw] = true
	}
}

func TestBFSOrderIsPermutation(t *testing.T) {
	for _, g := range []*Graph{
		Cycle(17), Star(9), Complete(6), Path(1),
		RandomRegular(200, 4, prand.New(3)),
	} {
		perm := BFSOrder(g)
		isPermutation(t, perm, g.N())
		// Relabeling by a permutation preserves the degree multiset and
		// connectivity.
		rg := g.Relabel(perm, g.Name()+"+bfs")
		if rg.NumEdges() != g.NumEdges() || rg.Connected() != g.Connected() {
			t.Fatalf("%s: relabel changed structure", g.Name())
		}
	}
}

func TestBFSOrderHandlesDisconnected(t *testing.T) {
	// Two triangles, no edge between them.
	b := NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build("twotriangles")
	perm := BFSOrder(g)
	isPermutation(t, perm, 6)
	// First component fills ranks 0..2 before the second starts.
	for _, u := range []int{0, 1, 2} {
		if perm[u] > 2 {
			t.Fatalf("component 0 vertex %d ranked %d", u, perm[u])
		}
	}
}

func TestBFSOrderLocality(t *testing.T) {
	// On a cycle, BFS numbering from 0 must make most edges short-range:
	// the relabeled cycle has every edge within distance 2 of its endpoint.
	g := Cycle(100)
	rg := g.Relabel(BFSOrder(g), "c+bfs")
	for u := 0; u < rg.N(); u++ {
		for _, v := range rg.Adjacency(u) {
			d := int(v) - u
			if d < 0 {
				d = -d
			}
			if d > 2 && d < rg.N()-2 {
				t.Fatalf("edge (%d,%d) spans %d after BFS relabel", u, v, d)
			}
		}
	}
}

func TestDegreeOrder(t *testing.T) {
	g := Star(8) // hub 0 degree 7, leaves degree 1
	perm := DegreeOrder(g)
	isPermutation(t, perm, 8)
	if perm[0] != 0 {
		t.Fatalf("hub ranked %d, want 0", perm[0])
	}
	// Leaves keep their relative order (stable ties).
	for u := 2; u < 8; u++ {
		if perm[u] != perm[u-1]+1 {
			t.Fatalf("tie order broken: perm[%d]=%d perm[%d]=%d", u-1, perm[u-1], u, perm[u])
		}
	}
}

func TestBalancedCutsInvariants(t *testing.T) {
	rng := prand.New(11)
	graphs := []*Graph{
		Cycle(31), Star(64), Complete(10),
		RandomRegular(500, 6, rng), Grid(13, 17),
	}
	for _, g := range graphs {
		n := g.N()
		var cuts []int32
		for k := 1; k <= 9; k++ {
			cuts = g.BalancedCutsInto(k, 8, cuts)
			if len(cuts) != k+1 || cuts[0] != 0 || cuts[k] != int32(n) {
				t.Fatalf("%s k=%d: bad boundaries %v", g.Name(), k, cuts)
			}
			for s := 0; s < k; s++ {
				if cuts[s] > cuts[s+1] {
					t.Fatalf("%s k=%d: cuts not monotone %v", g.Name(), k, cuts)
				}
			}
		}
	}
}

func TestBalancedCutsBalance(t *testing.T) {
	// On a regular graph every vertex costs the same, so an 8-way cut must
	// split the range into near-equal eighths.
	g := RandomRegular(8000, 4, prand.New(5))
	cuts := g.BalancedCutsInto(8, 8, nil)
	for s := 0; s < 8; s++ {
		size := int(cuts[s+1] - cuts[s])
		if size < 990 || size > 1010 {
			t.Fatalf("shard %d has %d vertices, want ~1000 (cuts %v)", s, size, cuts)
		}
	}
}

func TestBalancedCutsReuseNoAlloc(t *testing.T) {
	g := RandomRegular(4000, 4, prand.New(9))
	cuts := g.BalancedCutsInto(8, 8, nil)
	allocs := testing.AllocsPerRun(100, func() {
		cuts = g.BalancedCutsInto(8, 8, cuts)
	})
	if allocs != 0 {
		t.Fatalf("BalancedCutsInto allocated %.1f/op with a warm buffer", allocs)
	}
}
