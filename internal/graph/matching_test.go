package graph

import (
	"testing"
	"testing/quick"

	"mobilegossip/internal/prand"
)

func TestBoundaryBipartiteStructure(t *testing.T) {
	// Cycle 0-1-2-3-4-5: S = {0, 1, 2} has crossing edges 2-3 and 0-5.
	g := Cycle(6)
	b := g.BoundaryBipartite([]int{0, 1, 2})
	if len(b.Left) != 2 {
		t.Fatalf("left side has %d vertices, want 2 (vertex 1 has no crossing edge)", len(b.Left))
	}
	if len(b.Right) != 2 {
		t.Fatalf("right side has %d vertices, want 2", len(b.Right))
	}
	if got := b.MaximumMatching(); got != 2 {
		t.Errorf("ν = %d, want 2", got)
	}
}

func TestMaximumMatchingKnownCases(t *testing.T) {
	// Star: any S of leaves matches only through the hub → ν = 1.
	star := Star(8)
	if got := star.BoundaryMatching([]int{1, 2, 3}); got != 1 {
		t.Errorf("star leaves: ν = %d, want 1", got)
	}
	// Star: S = {hub} → ν = 1 (hub matches one leaf).
	if got := star.BoundaryMatching([]int{0}); got != 1 {
		t.Errorf("star hub: ν = %d, want 1", got)
	}
	// Complete graph: S of size m ≤ n/2 matches fully → ν = m.
	k := Complete(10)
	if got := k.BoundaryMatching([]int{0, 1, 2, 3}); got != 4 {
		t.Errorf("complete: ν = %d, want 4", got)
	}
	// Path 0-1-2-3: S = {1, 2} crosses at both ends → ν = 2.
	p := Path(4)
	if got := p.BoundaryMatching([]int{1, 2}); got != 2 {
		t.Errorf("path middle: ν = %d, want 2", got)
	}
	// Empty and full S have empty boundaries.
	if got := k.BoundaryMatching(nil); got != 0 {
		t.Errorf("empty S: ν = %d, want 0", got)
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if got := k.BoundaryMatching(all); got != 0 {
		t.Errorf("S = V: ν = %d, want 0", got)
	}
}

// TestMatchingAgainstBruteForce cross-checks Hopcroft–Karp against an
// exhaustive augmenting-path search on small random graphs.
func TestMatchingAgainstBruteForce(t *testing.T) {
	rng := prand.New(7)
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(6)
		g := GNP(n, 0.5, rng)
		m := 1 + rng.Intn(n/2)
		seen := make(map[int]bool)
		var s []int
		for len(s) < m {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				s = append(s, v)
			}
		}
		b := g.BoundaryBipartite(s)
		want := bruteForceMatching(b)
		if got := b.MaximumMatching(); got != want {
			t.Fatalf("trial %d (n=%d, |S|=%d): HK=%d brute=%d", trial, n, m, got, want)
		}
	}
}

// bruteForceMatching finds the maximum matching by simple augmenting-path
// search (Kuhn's algorithm) — O(V·E) but obviously correct.
func bruteForceMatching(b *Bipartite) int {
	nr := len(b.Right)
	matchR := make([]int, nr)
	for j := range matchR {
		matchR[j] = -1
	}
	var try func(i int, visited []bool) bool
	try = func(i int, visited []bool) bool {
		for _, j := range b.Adj[i] {
			if visited[j] {
				continue
			}
			visited[j] = true
			if matchR[j] == -1 || try(matchR[j], visited) {
				matchR[j] = i
				return true
			}
		}
		return false
	}
	size := 0
	for i := range b.Left {
		if try(i, make([]bool, nr)) {
			size++
		}
	}
	return size
}

// TestLemma71OnSmallGraphs: ν(B_G(S)) ≥ |S|·α/4 for every S with
// |S| ≤ n/2 — checked exhaustively on small graphs with exact α.
func TestLemma71OnSmallGraphs(t *testing.T) {
	graphs := []*Graph{
		Cycle(10), Complete(8), Star(10), DoubleStar(10), Grid(3, 3),
		RandomRegular(10, 4, prand.New(3)),
	}
	for _, g := range graphs {
		alpha, ok := g.ExactVertexExpansion()
		if !ok {
			t.Fatalf("%s: exact α unavailable", g.Name())
		}
		n := g.N()
		for mask := 1; mask < 1<<uint(n); mask++ {
			var s []int
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					s = append(s, v)
				}
			}
			if len(s) > n/2 {
				continue
			}
			nu := g.BoundaryMatching(s)
			if bound := float64(len(s)) * alpha / 4; float64(nu) < bound {
				t.Fatalf("%s: S=%v has ν=%d < |S|·α/4 = %.3f", g.Name(), s, nu, bound)
			}
		}
	}
}

// TestMatchingQuickNeverExceedsSides: ν is bounded by both side sizes and
// by the number of edges (sanity under random fuzz).
func TestMatchingQuickNeverExceedsSides(t *testing.T) {
	rng := prand.New(99)
	f := func(seed uint16) bool {
		n := 5 + int(seed%12)
		g := GNP(n, 0.4, rng)
		m := 1 + int(seed)%(n/2)
		s := rng.Perm(n)[:m]
		b := g.BoundaryBipartite(s)
		nu := b.MaximumMatching()
		if nu < 0 || nu > len(b.Left) || nu > len(b.Right) {
			t.Logf("ν=%d outside [0, min(%d, %d)]", nu, len(b.Left), len(b.Right))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
