package graph

import (
	"testing"

	"mobilegossip/internal/prand"
)

func packedList(edges ...[2]int32) []uint64 {
	out := make([]uint64, 0, len(edges))
	for _, e := range edges {
		out = append(out, PackEdge(e[0], e[1]))
	}
	return out
}

func TestPackUnpackEdge(t *testing.T) {
	if PackEdge(3, 1) != PackEdge(1, 3) {
		t.Fatal("PackEdge is not orientation-canonical")
	}
	if got := UnpackEdge(PackEdge(7, 2)); got != [2]int32{2, 7} {
		t.Fatalf("round trip = %v", got)
	}
}

func TestAppendPackedEdgesSortedAndComplete(t *testing.T) {
	rng := prand.New(7)
	g := GNP(64, 0.1, rng)
	packed := g.AppendPackedEdges(nil)
	if len(packed) != g.NumEdges() {
		t.Fatalf("%d packed edges, graph has %d", len(packed), g.NumEdges())
	}
	for i := 1; i < len(packed); i++ {
		if packed[i-1] >= packed[i] {
			t.Fatalf("packed list not strictly ascending at %d", i)
		}
	}
	for _, e := range packed {
		uv := UnpackEdge(e)
		if !g.HasEdge(int(uv[0]), int(uv[1])) {
			t.Fatalf("packed edge %v not in graph", uv)
		}
	}
}

func TestDiffPacked(t *testing.T) {
	prev := packedList([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 3})
	next := packedList([2]int32{0, 1}, [2]int32{1, 3}, [2]int32{2, 3}, [2]int32{3, 4})
	added, removed := DiffPacked(prev, next, nil, nil)
	if len(added) != 2 || added[0] != [2]int32{1, 3} || added[1] != [2]int32{3, 4} {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != [2]int32{1, 2} {
		t.Fatalf("removed = %v", removed)
	}
	if a, r := DiffPacked(prev, prev, nil, nil); len(a) != 0 || len(r) != 0 {
		t.Fatalf("self diff = %v %v", a, r)
	}
}

// TestConnectorBridgesComponents checks the repair contract: disconnected
// lists gain ascending representative-chain bridges, connected lists pass
// through untouched, and the result is always sorted and connected.
func TestConnectorBridgesComponents(t *testing.T) {
	n := 10
	c := NewConnector(n)

	// Three components: {0,1}, {2,3,4}, {5..9 isolated except 5-6}.
	edges := packedList([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{3, 4}, [2]int32{5, 6})
	out := c.Connect(append([]uint64(nil), edges...))
	if c.Components() != 6 {
		t.Fatalf("components = %d, want 6", c.Components())
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatalf("connected list not sorted at %d", i)
		}
	}
	b := NewBuilderCap(n, len(out))
	for _, e := range out {
		uv := UnpackEdge(e)
		if err := b.AddEdge(int(uv[0]), int(uv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if g := b.Build("repaired"); !g.Connected() {
		t.Fatal("Connect output is not connected")
	}

	// Already connected: the same slice must come back unchanged.
	ring := packedList([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 3}, [2]int32{3, 4},
		[2]int32{4, 5}, [2]int32{5, 6}, [2]int32{6, 7}, [2]int32{7, 8}, [2]int32{8, 9},
		[2]int32{0, 9})
	got := c.Connect(ring)
	if &got[0] != &ring[0] || len(got) != len(ring) {
		t.Fatal("connected input was rewritten")
	}
}

// TestConnectorEmptyInput covers the all-isolated case: n vertices, no
// edges, repaired into the 0-1-2-…-(n-1) chain.
func TestConnectorEmptyInput(t *testing.T) {
	n := 5
	c := NewConnector(n)
	out := c.Connect(nil)
	want := packedList([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 3}, [2]int32{3, 4})
	if len(out) != len(want) {
		t.Fatalf("chain has %d edges, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("chain edge %d = %v, want %v", i, UnpackEdge(out[i]), UnpackEdge(want[i]))
		}
	}
}
