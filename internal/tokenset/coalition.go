package tokenset

import "sort"

// Coalition is the object at the heart of the paper's ε-gossip analysis
// (Lemma 7.3): a set of nodes, closed under token-set equality (no member
// shares its exact token set with a non-member), whose size lies in
// [(ε/2)·n, ε·n]. Theorem 7.4 shows each round either has such a coalition
// — in which case Lemma 7.1 guarantees a large matching across its
// boundary and Lemma 5.2 makes many of those edges productive — or
// ε-gossip is already solved.
type Coalition struct {
	// Members are the node indices in the coalition.
	Members []int
	// Classes is the number of distinct token-set equivalence classes the
	// coalition is built from (the |C| of the paper's F(r) subset).
	Classes int
}

// Size returns the number of member nodes.
func (c Coalition) Size() int { return len(c.Members) }

// FindCoalition implements the three-case argument of Lemma 7.3 for a
// round's token-set configuration. It returns either solved = true —
// meaning some token set is owned by more than ⌈εn⌉ nodes, which (under
// the ε-gossip assumption that every node starts with its own token)
// certifies that ε-gossip is already solved — or a coalition whose size
// lies in [(ε/2)·n, ε·n].
//
// The three cases, exactly as in the paper's proof:
//
//  1. q_max > εn: the nodes owning the most-frequent set mutually know
//     each other's tokens — solved.
//  2. (ε/2)·n ≤ q_max ≤ εn: that single equivalence class is a coalition.
//  3. q_max < (ε/2)·n: greedily add classes in decreasing frequency until
//     the total first exceeds (ε/2)·n; because every step adds fewer than
//     (ε/2)·n nodes, the total lands inside [(ε/2)·n, ε·n].
func FindCoalition(sets []*Set, eps float64) (Coalition, bool) {
	n := len(sets)
	if n == 0 {
		return Coalition{}, true
	}

	classes := classify(sets)
	sort.Slice(classes, func(i, j int) bool {
		if len(classes[i]) != len(classes[j]) {
			return len(classes[i]) > len(classes[j])
		}
		return classes[i][0] < classes[j][0] // deterministic tie-break
	})

	qmax := len(classes[0])
	limit := eps * float64(n)
	half := limit / 2

	switch {
	case float64(qmax) > limit:
		// Case 1: solved.
		return Coalition{}, true
	case float64(qmax) >= half:
		// Case 2: one class suffices.
		return Coalition{Members: append([]int(nil), classes[0]...), Classes: 1}, false
	default:
		// Case 3: greedy accumulation in decreasing order of size.
		var members []int
		used := 0
		for _, cl := range classes {
			members = append(members, cl...)
			used++
			if float64(len(members)) >= half {
				break
			}
		}
		return Coalition{Members: members, Classes: used}, false
	}
}

// classify groups node indices by token-set equality.
func classify(sets []*Set) [][]int {
	type bucket struct {
		set   *Set
		nodes []int
	}
	buckets := make(map[uint64][]*bucket)
	hash := func(s *Set) uint64 {
		h := uint64(s.Len())
		for _, w := range s.words {
			h = h*0x9e3779b97f4a7c15 + w
		}
		return h
	}
	var order []*bucket
	for i, s := range sets {
		h := hash(s)
		var found *bucket
		for _, b := range buckets[h] {
			if b.set.Equal(s) {
				found = b
				break
			}
		}
		if found == nil {
			found = &bucket{set: s}
			buckets[h] = append(buckets[h], found)
			order = append(order, found)
		}
		found.nodes = append(found.nodes, i)
	}
	out := make([][]int, len(order))
	for i, b := range order {
		out[i] = b.nodes
	}
	return out
}
