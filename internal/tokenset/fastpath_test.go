package tokenset

// Tests pinning the fingerprint fast paths to their reference definitions:
// HashRange's incremental powers and span clipping against the naive
// per-token powMod sum, and HashRangeEqual's difference-based comparison
// against comparing two full fingerprints (collision behavior included —
// tiny moduli make collisions frequent below).

import (
	"testing"

	"mobilegossip/internal/prand"
)

// naiveHashRange is the pre-optimization definition kept as a test oracle.
func naiveHashRange(s *Set, lo, hi int, q uint64) uint64 {
	if lo < 1 {
		lo = 1
	}
	if hi > s.n {
		hi = s.n
	}
	var sum uint64
	for t := 1; t <= s.n; t++ {
		if t < lo || t > hi || !s.Has(t) {
			continue
		}
		sum = (sum + powMod(2, uint64(t), q)) % q
	}
	return sum
}

func randomSetPair(n int, rng *prand.RNG) (*Set, *Set) {
	a, b := NewSet(n), NewSet(n)
	for t := 1; t <= n; t++ {
		switch rng.Intn(5) {
		case 0:
			a.Add(t)
		case 1:
			b.Add(t)
		case 2:
			a.Add(t)
			b.Add(t)
		}
	}
	return a, b
}

func TestHashRangeMatchesNaive(t *testing.T) {
	rng := prand.New(31337)
	qs := []uint64{2, 3, 5, 97, 65537, 4294967311} // incl. q > 2^32
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		a, _ := randomSetPair(n, rng)
		for i := 0; i < 10; i++ {
			lo := 1 + rng.Intn(n)
			hi := 1 + rng.Intn(n)
			q := qs[rng.Intn(len(qs))]
			if got, want := a.HashRange(lo, hi, q), naiveHashRange(a, lo, hi, q); got != want {
				t.Fatalf("HashRange(%d,%d,%d) = %d, want %d (n=%d)", lo, hi, q, got, want, n)
			}
		}
	}
}

func TestHashRangeEqualMatchesFingerprintComparison(t *testing.T) {
	rng := prand.New(99991)
	// Small moduli make fingerprint collisions (unequal restrictions with
	// equal hashes) common, exercising the "equal by collision" branch that
	// the difference-based path must reproduce exactly.
	qs := []uint64{2, 3, 5, 7, 11, 127, 1_000_003, 4294967311}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(400)
		a, b := randomSetPair(n, rng)
		for i := 0; i < 12; i++ {
			lo := 1 + rng.Intn(n)
			hi := 1 + rng.Intn(n)
			q := qs[rng.Intn(len(qs))]
			got := HashRangeEqual(a, b, lo, hi, q)
			want := a.HashRange(lo, hi, q) == b.HashRange(lo, hi, q)
			if got != want {
				t.Fatalf("HashRangeEqual(%d,%d,%d) = %v, want %v (n=%d)",
					lo, hi, q, got, want, n)
			}
		}
	}
}
