package tokenset

import (
	"math"
	"testing"
	"testing/quick"
)

// buildSets constructs n sets over the given universe from explicit token
// lists.
func buildSets(universe int, lists [][]int) []*Set {
	sets := make([]*Set, len(lists))
	for i, l := range lists {
		sets[i] = NewSet(universe)
		for _, t := range l {
			sets[i].Add(t)
		}
	}
	return sets
}

func TestFindCoalitionEmptyIsSolved(t *testing.T) {
	if _, solved := FindCoalition(nil, 0.5); !solved {
		t.Error("empty configuration should report solved")
	}
}

func TestFindCoalitionCase1Solved(t *testing.T) {
	// 7 of 8 nodes share the same set: q_max = 7 > εn = 4 → solved.
	lists := make([][]int, 8)
	for i := 0; i < 7; i++ {
		lists[i] = []int{1, 2, 3}
	}
	lists[7] = []int{4}
	_, solved := FindCoalition(buildSets(8, lists), 0.5)
	if !solved {
		t.Error("q_max > εn should report solved (Lemma 7.3 case 1)")
	}
}

func TestFindCoalitionCase2SingleClass(t *testing.T) {
	// 3 of 8 nodes share a set: (ε/2)n = 2 ≤ 3 ≤ εn = 4 → that class alone.
	lists := [][]int{
		{1, 2}, {1, 2}, {1, 2},
		{3}, {4}, {5}, {6}, {7},
	}
	c, solved := FindCoalition(buildSets(8, lists), 0.5)
	if solved {
		t.Fatal("should not be solved")
	}
	if c.Classes != 1 {
		t.Errorf("classes = %d, want 1 (case 2)", c.Classes)
	}
	if c.Size() != 3 {
		t.Errorf("size = %d, want 3", c.Size())
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, m := range c.Members {
		if !want[m] {
			t.Errorf("unexpected member %d", m)
		}
	}
}

func TestFindCoalitionCase3Greedy(t *testing.T) {
	// All sets distinct: q_max = 1 < (ε/2)n → greedy accumulates until
	// reaching (ε/2)n = 3.
	lists := make([][]int, 12)
	for i := range lists {
		lists[i] = []int{i + 1}
	}
	c, solved := FindCoalition(buildSets(12, lists), 0.5)
	if solved {
		t.Fatal("should not be solved")
	}
	if c.Size() < 3 || c.Size() > 6 {
		t.Errorf("size = %d, want within [(ε/2)n, εn] = [3, 6]", c.Size())
	}
	if c.Classes != c.Size() {
		t.Errorf("with all-distinct sets classes (%d) should equal size (%d)", c.Classes, c.Size())
	}
}

// TestFindCoalitionClosedUnderSetEquality: no coalition member may share
// its exact set with a non-member (coalitions are unions of whole F(r)
// classes — the property Theorem 7.4's wasted-edge argument needs).
func TestFindCoalitionClosedUnderSetEquality(t *testing.T) {
	lists := [][]int{
		{1, 2}, {1, 2}, {1, 2}, {1, 2},
		{3}, {3}, {3},
		{4, 5}, {4, 5},
		{6}, {7}, {8},
	}
	sets := buildSets(12, lists)
	c, solved := FindCoalition(sets, 0.5)
	if solved {
		t.Fatal("should not be solved")
	}
	in := make(map[int]bool, len(c.Members))
	for _, m := range c.Members {
		in[m] = true
	}
	for _, m := range c.Members {
		for v := range sets {
			if !in[v] && sets[v].Equal(sets[m]) {
				t.Errorf("member %d shares its set with non-member %d", m, v)
			}
		}
	}
}

// TestFindCoalitionPropertyRandom: for random configurations, the lemma's
// disjunction always holds — either solved, or a coalition with size in
// [(ε/2)n, εn] that is closed under set equality and duplicate-free.
func TestFindCoalitionPropertyRandom(t *testing.T) {
	f := func(raw []uint8, epsRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		n := len(raw)
		universe := 16
		lists := make([][]int, n)
		for i, b := range raw {
			// Up to 4 tokens per node derived from the fuzz byte.
			for j := 0; j < 4; j++ {
				if b&(1<<uint(j)) != 0 {
					lists[i] = append(lists[i], (int(b)+5*j)%universe+1)
				}
			}
		}
		sets := buildSets(universe, lists)
		eps := 0.25 + float64(epsRaw%50)/100 // ε ∈ [0.25, 0.74]

		c, solved := FindCoalition(sets, eps)
		if solved {
			return true // case 1 is checked by the deterministic tests
		}
		half := eps * float64(n) / 2
		limit := eps * float64(n)
		if float64(c.Size()) < half-1e-9 || float64(c.Size()) > limit+1e-9 {
			t.Logf("n=%d eps=%.2f size=%d not in [%.2f, %.2f]", n, eps, c.Size(), half, limit)
			return false
		}
		seen := make(map[int]bool, c.Size())
		for _, m := range c.Members {
			if m < 0 || m >= n || seen[m] {
				t.Logf("bad or duplicate member %d", m)
				return false
			}
			seen[m] = true
		}
		for _, m := range c.Members {
			for v := range sets {
				if !seen[v] && sets[v].Equal(sets[m]) {
					t.Logf("member %d shares set with outsider %d", m, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFindCoalitionDeterministic(t *testing.T) {
	lists := [][]int{{1}, {2}, {1}, {3}, {2}, {4}, {5}, {6}}
	a, _ := FindCoalition(buildSets(8, lists), 0.6)
	b, _ := FindCoalition(buildSets(8, lists), 0.6)
	if a.Size() != b.Size() || a.Classes != b.Classes {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatalf("member order differs at %d", i)
		}
	}
}

// TestFindCoalitionCaseBoundary: q_max exactly εn is case 2 (not solved);
// just above is case 1.
func TestFindCoalitionCaseBoundary(t *testing.T) {
	n := 10
	eps := 0.5
	mk := func(big int) []*Set {
		lists := make([][]int, n)
		for i := 0; i < big; i++ {
			lists[i] = []int{1, 2}
		}
		for i := big; i < n; i++ {
			lists[i] = []int{10 + i}
		}
		return buildSets(32, lists)
	}
	limit := int(math.Round(eps * float64(n))) // 5
	if _, solved := FindCoalition(mk(limit), eps); solved {
		t.Error("q_max = εn exactly should be case 2, not solved")
	}
	if _, solved := FindCoalition(mk(limit+1), eps); !solved {
		t.Error("q_max > εn should be solved")
	}
}
