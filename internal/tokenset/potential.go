package tokenset

import "sort"

// Potential computes φ(r) = Σ_u (k − |T_u(r)|), the paper's progress
// measure (§5.1): the total number of (node, token) pairs still missing.
// sets holds one token set per node; k is the number of tokens in play.
func Potential(sets []*Set, k int) int {
	phi := 0
	for _, s := range sets {
		phi += k - s.Len()
	}
	return phi
}

// AllKnowAll reports whether gossip is solved: every node's set contains all
// k tokens.
func AllKnowAll(sets []*Set, k int) bool {
	for _, s := range sets {
		if s.Len() < k {
			return false
		}
	}
	return true
}

// Frequency is one entry of the multiset F(r) from §7: a token set S
// together with count(S, r), the number of nodes holding exactly S.
type Frequency struct {
	Representative *Set // one of the identical sets (not copied)
	Count          int
}

// Frequencies computes F(r): the distinct token sets present among nodes and
// their multiplicities, in decreasing order of multiplicity.
func Frequencies(sets []*Set) []Frequency {
	// Group identical sets. Sets are small; hash by (len, first-words) then
	// confirm with Equal to avoid collisions.
	type bucket struct {
		set   *Set
		count int
	}
	buckets := make(map[uint64][]*bucket)
	hash := func(s *Set) uint64 {
		h := uint64(s.Len())
		for _, w := range s.words {
			h = h*0x9e3779b97f4a7c15 + w
		}
		return h
	}
	for _, s := range sets {
		h := hash(s)
		found := false
		for _, b := range buckets[h] {
			if b.set.Equal(s) {
				b.count++
				found = true
				break
			}
		}
		if !found {
			buckets[h] = append(buckets[h], &bucket{set: s, count: 1})
		}
	}
	out := make([]Frequency, 0, len(buckets))
	for _, bs := range buckets {
		for _, b := range bs {
			out = append(out, Frequency{Representative: b.set, Count: b.count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		a, _ := out[i].Representative.SmallestMissingFrom(out[j].Representative)
		return a != 0 // deterministic-ish tie break; counts equal is the common case
	})
	return out
}

// EpsilonSolved reports whether ε-gossip (§7) is solved, using a sound
// (never false-positive) witness. The definition requires a set S of at
// least ⌈εn⌉ nodes such that every pair in S mutually knows each other's
// tokens. We check the generalization of Lemma 7.3 case 1: let C be the
// m = ⌈εn⌉ most-replicated tokens; let S be the nodes whose own token is in
// C and that know every token of C. Any two such nodes mutually know each
// other's tokens, so |S| ≥ m certifies a solution.
//
// own[i] gives node i's initial token id (ε-gossip assumes k = n, every node
// starts with exactly one token).
func EpsilonSolved(sets []*Set, own []int, eps float64) bool {
	n := len(sets)
	if n == 0 {
		return true
	}
	m := int(eps*float64(n) + 0.999999) // ⌈εn⌉
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	// Count replication of each token.
	counts := make(map[int]int)
	for _, s := range sets {
		for _, t := range s.Tokens() {
			counts[t]++
		}
	}
	type tc struct{ token, count int }
	all := make([]tc, 0, len(counts))
	for t, c := range counts {
		all = append(all, tc{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].token < all[j].token
	})
	if len(all) < m {
		return false
	}
	top := make(map[int]bool, m)
	for _, e := range all[:m] {
		top[e.token] = true
	}
	// Nodes whose own token is in top and that know all of top.
	size := 0
	for i, s := range sets {
		if !top[own[i]] {
			continue
		}
		knowsAll := true
		for t := range top {
			if !s.Has(t) {
				knowsAll = false
				break
			}
		}
		if knowsAll {
			size++
		}
	}
	return size >= m
}
