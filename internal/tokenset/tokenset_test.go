package tokenset

import (
	"testing"
	"testing/quick"

	"mobilegossip/internal/prand"
)

func TestAddHasLen(t *testing.T) {
	s := NewSet(100)
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(1)
	s.Add(100)
	s.Add(50)
	s.Add(50) // duplicate
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, tok := range []int{1, 50, 100} {
		if !s.Has(tok) {
			t.Errorf("missing token %d", tok)
		}
	}
	if s.Has(2) || s.Has(99) {
		t.Error("Has reports absent token")
	}
}

func TestAddOutOfRangeIgnored(t *testing.T) {
	s := NewSet(10)
	s.Add(0)
	s.Add(-5)
	s.Add(11)
	if s.Len() != 0 {
		t.Fatalf("out-of-range adds changed set: Len = %d", s.Len())
	}
	if s.Has(0) || s.Has(11) || s.Has(-1) {
		t.Fatal("Has true for out-of-range token")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewSet(64)
	s.Add(3)
	c := s.Clone()
	c.Add(4)
	if s.Has(4) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Has(3) || c.Len() != 2 {
		t.Fatal("Clone lost contents")
	}
}

func TestEqual(t *testing.T) {
	a, b := NewSet(128), NewSet(128)
	a.Add(5)
	a.Add(70)
	b.Add(70)
	b.Add(5)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Add(6)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
}

func TestTokensSorted(t *testing.T) {
	s := NewSet(200)
	for _, tok := range []int{190, 3, 64, 65, 127, 128, 1} {
		s.Add(tok)
	}
	got := s.Tokens()
	want := []int{1, 3, 64, 65, 127, 128, 190}
	if len(got) != len(want) {
		t.Fatalf("Tokens() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokens() = %v, want %v", got, want)
		}
	}
}

func TestSmallestMissingFrom(t *testing.T) {
	a, b := NewSet(100), NewSet(100)
	a.Add(10)
	a.Add(20)
	b.Add(10)
	tok, ok := a.SmallestMissingFrom(b)
	if !ok || tok != 20 {
		t.Fatalf("got (%d,%v), want (20,true)", tok, ok)
	}
	b.Add(5)
	tok, ok = a.SmallestMissingFrom(b)
	if !ok || tok != 5 {
		t.Fatalf("got (%d,%v), want (5,true)", tok, ok)
	}
	a.Add(5)
	a2 := b.Clone()
	a2.Add(20)
	if _, ok := a.SmallestMissingFrom(a2); ok {
		t.Fatal("equal sets reported a missing token")
	}
}

func TestCountRange(t *testing.T) {
	s := NewSet(300)
	for _, tok := range []int{1, 63, 64, 65, 128, 200, 300} {
		s.Add(tok)
	}
	cases := []struct{ lo, hi, want int }{
		{1, 300, 7}, {1, 1, 1}, {2, 62, 0}, {63, 65, 3},
		{64, 64, 1}, {129, 199, 0}, {200, 300, 2}, {301, 400, 0}, {-5, 0, 0},
	}
	for _, c := range cases {
		if got := s.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestHashRangeEqualSetsAgree(t *testing.T) {
	a, b := NewSet(500), NewSet(500)
	for _, tok := range []int{2, 77, 400} {
		a.Add(tok)
		b.Add(tok)
	}
	const q = 1000003
	if a.HashRange(1, 500, q) != b.HashRange(1, 500, q) {
		t.Fatal("equal sets fingerprint differently")
	}
	if a.HashRange(1, 76, q) != b.HashRange(1, 76, q) {
		t.Fatal("equal restrictions fingerprint differently")
	}
}

func TestHashRangeDetectsDifference(t *testing.T) {
	a, b := NewSet(500), NewSet(500)
	a.Add(100)
	// For a random large prime, collision probability is tiny.
	const q = 2305843009213693951 // 2^61 - 1, prime
	if a.HashRange(1, 500, q) == b.HashRange(1, 500, q) {
		t.Fatal("different sets collided under a Mersenne prime")
	}
}

func TestHashRangeRestriction(t *testing.T) {
	a := NewSet(500)
	a.Add(100)
	a.Add(400)
	const q = 1000003
	if a.HashRange(1, 200, q) != powMod(2, 100, q) {
		t.Fatal("restricted fingerprint wrong")
	}
}

func TestPowMulMod(t *testing.T) {
	cases := []struct{ b, e, m, want uint64 }{
		{2, 10, 1000003, 1024},
		{2, 0, 97, 1},
		{5, 3, 7, 6},
		{2, 64, 1000003, 0}, // computed below
	}
	cases[3].want = func() uint64 {
		v := uint64(1)
		for i := 0; i < 64; i++ {
			v = v * 2 % 1000003
		}
		return v
	}()
	for _, c := range cases {
		if got := powMod(c.b, c.e, c.m); got != c.want {
			t.Errorf("powMod(%d,%d,%d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
	// mulMod against big values: (2^62)*(2^62) mod (2^61-1).
	const m = uint64(2305843009213693951)
	got := mulMod(1<<62, 1<<62, m)
	// 2^62 mod m = 2; so result must be 4.
	if got != 4 {
		t.Errorf("mulMod(2^62,2^62,2^61-1) = %d, want 4", got)
	}
}

func TestPotential(t *testing.T) {
	sets := []*Set{NewSet(10), NewSet(10), NewSet(10)}
	sets[0].Add(1)
	sets[0].Add(2)
	sets[1].Add(1)
	// k=2: φ = (2-2)+(2-1)+(2-0) = 3
	if got := Potential(sets, 2); got != 3 {
		t.Fatalf("Potential = %d, want 3", got)
	}
	if AllKnowAll(sets, 2) {
		t.Fatal("AllKnowAll true prematurely")
	}
	sets[1].Add(2)
	sets[2].Add(1)
	sets[2].Add(2)
	if !AllKnowAll(sets, 2) {
		t.Fatal("AllKnowAll false after completion")
	}
	if got := Potential(sets, 2); got != 0 {
		t.Fatalf("Potential = %d, want 0", got)
	}
}

func TestFrequencies(t *testing.T) {
	mk := func(toks ...int) *Set {
		s := NewSet(20)
		for _, tok := range toks {
			s.Add(tok)
		}
		return s
	}
	sets := []*Set{mk(1), mk(1), mk(1), mk(2, 3), mk(2, 3), mk(4)}
	fs := Frequencies(sets)
	if len(fs) != 3 {
		t.Fatalf("got %d distinct sets, want 3", len(fs))
	}
	if fs[0].Count != 3 || fs[1].Count != 2 || fs[2].Count != 1 {
		t.Fatalf("counts = %d,%d,%d want 3,2,1", fs[0].Count, fs[1].Count, fs[2].Count)
	}
	total := 0
	for _, f := range fs {
		total += f.Count
	}
	if total != len(sets) {
		t.Fatalf("counts sum to %d, want %d", total, len(sets))
	}
}

func TestEpsilonSolvedFullGossip(t *testing.T) {
	n := 8
	sets := make([]*Set, n)
	own := make([]int, n)
	for i := range sets {
		sets[i] = NewSet(n)
		own[i] = i + 1
		for tok := 1; tok <= n; tok++ {
			sets[i].Add(tok)
		}
	}
	if !EpsilonSolved(sets, own, 0.99) {
		t.Fatal("full gossip must solve ε-gossip for any ε")
	}
}

func TestEpsilonSolvedPartial(t *testing.T) {
	// Nodes 1..6 of 8 mutually know tokens 1..6; nodes 7,8 know only their own.
	n := 8
	sets := make([]*Set, n)
	own := make([]int, n)
	for i := range sets {
		sets[i] = NewSet(n)
		own[i] = i + 1
		sets[i].Add(i + 1)
	}
	for i := 0; i < 6; i++ {
		for tok := 1; tok <= 6; tok++ {
			sets[i].Add(tok)
		}
	}
	if !EpsilonSolved(sets, own, 0.75) { // ⌈0.75·8⌉ = 6
		t.Fatal("ε=0.75 should be solved by the 6-node coalition")
	}
	if EpsilonSolved(sets, own, 0.9) { // needs 8 mutual nodes
		t.Fatal("ε=0.9 must not be solved")
	}
}

func TestEpsilonSolvedStart(t *testing.T) {
	// At start (everyone knows only its own token) ε-gossip is unsolved for
	// any εn ≥ 2.
	n := 10
	sets := make([]*Set, n)
	own := make([]int, n)
	for i := range sets {
		sets[i] = NewSet(n)
		own[i] = i + 1
		sets[i].Add(i + 1)
	}
	if EpsilonSolved(sets, own, 0.2) {
		t.Fatal("start state cannot solve ε-gossip with εn=2")
	}
}

func TestSetQuickProperties(t *testing.T) {
	// Property: for random add sequences, Len equals the number of distinct
	// in-range ids, Tokens is sorted, and SmallestMissingFrom(a,b) agrees
	// with a direct scan.
	f := func(seed uint64) bool {
		rng := prand.New(seed)
		const n = 97
		a, b := NewSet(n), NewSet(n)
		ref := map[int]bool{}
		for i := 0; i < 60; i++ {
			tok := rng.Intn(n+4) - 2 // includes out-of-range
			a.Add(tok)
			if tok >= 1 && tok <= n {
				ref[tok] = true
			}
			if rng.Bool() {
				b.Add(tok)
			}
		}
		if a.Len() != len(ref) {
			return false
		}
		prev := 0
		for _, tok := range a.Tokens() {
			if tok <= prev || !ref[tok] {
				return false
			}
			prev = tok
		}
		// Oracle symmetric difference check.
		want, wantOK := 0, false
		for tok := 1; tok <= n; tok++ {
			if a.Has(tok) != b.Has(tok) {
				want, wantOK = tok, true
				break
			}
		}
		got, gotOK := a.SmallestMissingFrom(b)
		return got == want && gotOK == wantOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
