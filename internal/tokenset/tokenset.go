// Package tokenset implements the token-set substrate of the paper: gossip
// tokens are labeled with ids in [1, N], every node maintains the set of
// tokens it has learned, and the analyses in §5 and §7 are phrased in terms
// of the potential function φ and the frequency multiset F(r) over these
// sets. Sets are dense bitsets so that the fingerprinting and
// symmetric-difference operations used by Transfer(ε) are cheap.
package tokenset

import (
	"fmt"
	"math/bits"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/modmath"
)

// Set is a set of token ids in [1, N]. The zero value of Set is not usable;
// construct with NewSet (or carve many sets out of one allocation with
// NewArena). Sets only grow: the model has no token loss.
//
// The set tracks the word range [minW, maxW] that holds its bits, so
// iteration and fingerprinting scan only the occupied span — on the paper's
// canonical workloads token ids cluster in [1, k] while the universe is n,
// making this the difference between O(k/64) and O(n/64) per scan.
type Set struct {
	words []uint64
	n     int // universe upper bound N
	count int
	minW  int // lowest nonzero word index (valid when count > 0)
	maxW  int // highest nonzero word index (valid when count > 0)
}

// setWords returns the word count backing a universe-n set.
func setWords(n int) int { return (n+64)/64 + 1 }

// NewSet returns an empty token set over the universe [1, n].
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, setWords(n)), n: n}
}

// Arena is a flat backing store for the per-node token sets of a whole
// simulation: one []uint64 allocation holds every node's bitset
// back-to-back, indexed by NodeID. This removes n separate set allocations
// and gives the round loop's per-node scans (advertise, Done) a single
// contiguous memory layout.
type Arena struct {
	words []uint64
	sets  []Set
}

// NewArena returns an arena of `nodes` empty sets over the universe [1, n].
func NewArena(nodes, n int) *Arena {
	per := setWords(n)
	a := &Arena{words: make([]uint64, nodes*per), sets: make([]Set, nodes)}
	for i := range a.sets {
		a.sets[i] = Set{words: a.words[i*per : (i+1)*per : (i+1)*per], n: n}
	}
	return a
}

// Len returns the number of sets in the arena.
func (a *Arena) Len() int { return len(a.sets) }

// Set returns set i (live, arena-backed).
func (a *Arena) Set(i int) *Set { return &a.sets[i] }

// Sets returns pointers to every arena set, indexed by NodeID.
func (a *Arena) Sets() []*Set {
	out := make([]*Set, len(a.sets))
	for i := range a.sets {
		out[i] = &a.sets[i]
	}
	return out
}

// Universe returns the universe bound N.
func (s *Set) Universe() int { return s.n }

// Add inserts token t. Tokens outside [1, N] are rejected (no-op) so that a
// corrupted id cannot corrupt the bitset.
func (s *Set) Add(t int) {
	if t < 1 || t > s.n {
		return
	}
	w, b := t/64, uint(t%64)
	if s.words[w]&(1<<b) == 0 {
		if s.count == 0 {
			s.minW, s.maxW = w, w
		} else {
			if w < s.minW {
				s.minW = w
			}
			if w > s.maxW {
				s.maxW = w
			}
		}
		s.words[w] |= 1 << b
		s.count++
	}
}

// Has reports whether token t is in the set.
func (s *Set) Has(t int) bool {
	if t < 1 || t > s.n {
		return false
	}
	return s.words[t/64]&(1<<uint(t%64)) != 0
}

// Len returns the number of tokens in the set.
func (s *Set) Len() int { return s.count }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n, count: s.count,
		minW: s.minW, maxW: s.maxW}
	copy(c.words, s.words)
	return c
}

// Equal reports whether two sets over the same universe hold the same tokens.
func (s *Set) Equal(o *Set) bool {
	if s.count != o.count || s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Tokens returns the tokens in increasing order.
func (s *Set) Tokens() []int {
	out := make([]int, 0, s.count)
	if s.count == 0 {
		return out
	}
	for wi := s.minW; wi <= s.maxW; wi++ {
		w := s.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls f for every token in increasing order without allocating.
func (s *Set) ForEach(f func(token int)) {
	if s.count == 0 {
		return
	}
	for wi := s.minW; wi <= s.maxW; wi++ {
		w := s.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// CheckpointTo serializes the set's membership as a delta-encoded token
// list: O(|S|) varints rather than O(N/64) raw words, which keeps
// million-node checkpoints proportional to the tokens actually learned.
func (s *Set) CheckpointTo(w *ckpt.Writer) {
	w.U64(uint64(s.count))
	prev := 0
	s.ForEach(func(t int) {
		w.U64(uint64(t - prev))
		prev = t
	})
}

// RestoreFrom adds the tokens of a CheckpointTo stream into the set. The
// set need not be empty: sets only grow, so restoring a later snapshot over
// the run's initial assignment reproduces the checkpointed membership.
func (s *Set) RestoreFrom(r *ckpt.Reader) error {
	count := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	t := 0
	for i := 0; i < count; i++ {
		t += int(r.U64())
		if t < 1 || t > s.n {
			if err := r.Err(); err != nil {
				return err
			}
			return fmt.Errorf("tokenset: checkpointed token %d outside [1, %d]", t, s.n)
		}
		s.Add(t)
	}
	return r.Err()
}

// SmallestMissingFrom returns the smallest token that is in exactly one of
// s and o (the token Transfer(ε) identifies), and ok=false if the sets are
// equal. This is the "oracle" ground truth the randomized Transfer is tested
// against.
func (s *Set) SmallestMissingFrom(o *Set) (token int, ok bool) {
	for i := range s.words {
		if d := s.words[i] ^ o.words[i]; d != 0 {
			return i*64 + bits.TrailingZeros64(d), true
		}
	}
	return 0, false
}

// CountRange returns |s ∩ [lo, hi]| for 1 <= lo <= hi <= N.
func (s *Set) CountRange(lo, hi int) int {
	if lo < 1 {
		lo = 1
	}
	if hi > s.n {
		hi = s.n
	}
	if lo > hi {
		return 0
	}
	c := 0
	for t := lo; t <= hi; {
		w, b := t/64, uint(t%64)
		word := s.words[w] >> b
		span := 64 - int(b)
		if rem := hi - t + 1; rem < span {
			word &= (1 << uint(rem)) - 1
			span = rem
		}
		c += bits.OnesCount64(word)
		t += span
	}
	return c
}

// HashRange returns Σ_{t ∈ s ∩ [lo,hi]} 2^t mod q — the Rabin fingerprint of
// the restriction of the set to [lo, hi], used by EQTest. q must be > 1.
//
// The powers of two are computed incrementally — 2^(64·wi) is carried from
// word to word with one modular multiply, and each token adds
// 2^(64·wi)·2^b mod q — instead of a full powMod per token, and the scan is
// clipped to the set's occupied word span. Values are identical to the
// naive per-token powMod definition.
func (s *Set) HashRange(lo, hi int, q uint64) uint64 {
	if lo < 1 {
		lo = 1
	}
	if hi > s.n {
		hi = s.n
	}
	if s.count == 0 || hi < lo {
		return 0
	}
	wlo, whi := lo/64, hi/64
	if wlo < s.minW {
		wlo = s.minW
	}
	if whi > s.maxW {
		whi = s.maxW
	}
	if whi < wlo {
		return 0
	}
	pow64 := powMod(2, 64, q)
	base := powMod(2, uint64(wlo)*64, q) // 2^(64·wlo) mod q
	var sum uint64
	for wi := wlo; wi <= whi; wi++ {
		w := s.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			t := wi*64 + b
			if t < lo || t > hi {
				continue
			}
			sum = (sum + mulMod(base, (uint64(1)<<uint(b))%q, q)) % q
		}
		base = mulMod(base, pow64, q)
	}
	return sum
}

// HashRangeEqual reports whether a.HashRange(lo, hi, q) == b.HashRange(lo,
// hi, q) without computing either fingerprint: the contribution of tokens
// common to both sets cancels from the two sums, so only words of the
// symmetric difference need modular arithmetic — words where the sets agree
// are skipped with one XOR. EQTest's equal-range trials (the expensive,
// full-trial-count case) therefore cost a word scan and no modmuls, while
// the equality decision — including the fingerprint-collision probability —
// is identical to comparing the two HashRange values.
func HashRangeEqual(a, b *Set, lo, hi int, q uint64) bool {
	if lo < 1 {
		lo = 1
	}
	if hi > a.n {
		hi = a.n
	}
	if hi < lo {
		return true
	}
	wlo, whi := lo/64, hi/64
	// Words outside both occupied spans are zero in both sets.
	spanLo, spanHi := wlo, whi
	if a.count == 0 && b.count == 0 {
		return true
	}
	switch {
	case a.count == 0:
		if spanLo < b.minW {
			spanLo = b.minW
		}
		if spanHi > b.maxW {
			spanHi = b.maxW
		}
	case b.count == 0:
		if spanLo < a.minW {
			spanLo = a.minW
		}
		if spanHi > a.maxW {
			spanHi = a.maxW
		}
	default:
		if lo2 := min(a.minW, b.minW); spanLo < lo2 {
			spanLo = lo2
		}
		if hi2 := max(a.maxW, b.maxW); spanHi > hi2 {
			spanHi = hi2
		}
	}
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-hi&63)
	var sumA, sumB, base, pow64 uint64
	lastWi := -1 // word index `base` corresponds to; -1 = not yet computed
	for wi := spanLo; wi <= spanHi; wi++ {
		wa, wb := a.words[wi], b.words[wi]
		if wi == wlo {
			wa &= loMask
			wb &= loMask
		}
		if wi == whi {
			wa &= hiMask
			wb &= hiMask
		}
		d := wa ^ wb
		if d == 0 {
			continue
		}
		switch {
		case lastWi < 0:
			base = powMod(2, uint64(wi)*64, q)
		case wi == lastWi+1:
			if pow64 == 0 {
				pow64 = powMod(2, 64, q)
			}
			base = mulMod(base, pow64, q)
		default:
			base = mulMod(base, powMod(2, uint64(wi-lastWi)*64, q), q)
		}
		lastWi = wi
		for d != 0 {
			bit := bits.TrailingZeros64(d)
			d &= d - 1
			contrib := mulMod(base, (uint64(1)<<uint(bit))%q, q)
			if wa&(1<<uint(bit)) != 0 {
				sumA = (sumA + contrib) % q
			} else {
				sumB = (sumB + contrib) % q
			}
		}
	}
	return sumA == sumB
}

// powMod and mulMod are inlinable wrappers over the shared implementations
// in internal/modmath; the fingerprint arithmetic here and the primality
// testing in internal/eqtest must stay bit-identical.
func powMod(b, e, m uint64) uint64 { return modmath.PowMod(b, e, m) }
func mulMod(a, b, m uint64) uint64 { return modmath.MulMod(a, b, m) }
