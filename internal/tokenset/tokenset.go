// Package tokenset implements the token-set substrate of the paper: gossip
// tokens are labeled with ids in [1, N], every node maintains the set of
// tokens it has learned, and the analyses in §5 and §7 are phrased in terms
// of the potential function φ and the frequency multiset F(r) over these
// sets. Sets are dense bitsets so that the fingerprinting and
// symmetric-difference operations used by Transfer(ε) are cheap.
package tokenset

import "math/bits"

// Set is a set of token ids in [1, N]. The zero value of Set is not usable;
// construct with NewSet. Sets only grow: the model has no token loss.
type Set struct {
	words []uint64
	n     int // universe upper bound N
	count int
}

// NewSet returns an empty token set over the universe [1, n].
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+64)/64+1), n: n}
}

// Universe returns the universe bound N.
func (s *Set) Universe() int { return s.n }

// Add inserts token t. Tokens outside [1, N] are rejected (no-op) so that a
// corrupted id cannot corrupt the bitset.
func (s *Set) Add(t int) {
	if t < 1 || t > s.n {
		return
	}
	w, b := t/64, uint(t%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Has reports whether token t is in the set.
func (s *Set) Has(t int) bool {
	if t < 1 || t > s.n {
		return false
	}
	return s.words[t/64]&(1<<uint(t%64)) != 0
}

// Len returns the number of tokens in the set.
func (s *Set) Len() int { return s.count }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n, count: s.count}
	copy(c.words, s.words)
	return c
}

// Equal reports whether two sets over the same universe hold the same tokens.
func (s *Set) Equal(o *Set) bool {
	if s.count != o.count || s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Tokens returns the tokens in increasing order.
func (s *Set) Tokens() []int {
	out := make([]int, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls f for every token in increasing order without allocating.
func (s *Set) ForEach(f func(token int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// SmallestMissingFrom returns the smallest token that is in exactly one of
// s and o (the token Transfer(ε) identifies), and ok=false if the sets are
// equal. This is the "oracle" ground truth the randomized Transfer is tested
// against.
func (s *Set) SmallestMissingFrom(o *Set) (token int, ok bool) {
	for i := range s.words {
		if d := s.words[i] ^ o.words[i]; d != 0 {
			return i*64 + bits.TrailingZeros64(d), true
		}
	}
	return 0, false
}

// CountRange returns |s ∩ [lo, hi]| for 1 <= lo <= hi <= N.
func (s *Set) CountRange(lo, hi int) int {
	if lo < 1 {
		lo = 1
	}
	if hi > s.n {
		hi = s.n
	}
	if lo > hi {
		return 0
	}
	c := 0
	for t := lo; t <= hi; {
		w, b := t/64, uint(t%64)
		word := s.words[w] >> b
		span := 64 - int(b)
		if rem := hi - t + 1; rem < span {
			word &= (1 << uint(rem)) - 1
			span = rem
		}
		c += bits.OnesCount64(word)
		t += span
	}
	return c
}

// HashRange returns Σ_{t ∈ s ∩ [lo,hi]} 2^t mod q — the Rabin fingerprint of
// the restriction of the set to [lo, hi], used by EQTest. q must be > 1.
func (s *Set) HashRange(lo, hi int, q uint64) uint64 {
	if lo < 1 {
		lo = 1
	}
	if hi > s.n {
		hi = s.n
	}
	var sum uint64
	for wi := lo / 64; wi <= hi/64 && wi < len(s.words); wi++ {
		w := s.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			t := wi*64 + b
			if t < lo || t > hi {
				continue
			}
			sum = (sum + powMod(2, uint64(t), q)) % q
		}
	}
	return sum
}

// powMod computes b^e mod m without overflow for m < 2^32 via repeated
// squaring, and for larger m via 128-bit multiplication.
func powMod(b, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, b, m)
		}
		b = mulMod(b, b, m)
		e >>= 1
	}
	return result
}

// mulMod returns a*b mod m using 128-bit intermediate precision.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}
