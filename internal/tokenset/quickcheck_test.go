package tokenset

// Property-based quick-checks for the Arena against a map-backed oracle:
// random op sequences (adds — the model has no token loss, so there is no
// remove — membership probes, range counts, fingerprints, iteration, and
// checkpoint round trips) over arena-carved sets must agree with the naive
// reference on every observable. TestSetQuickProperties covers standalone
// sets; this file pins the arena layout — shared backing array, per-set
// word spans — where an off-by-one bleeds bits between neighboring nodes.

import (
	"bytes"
	"testing"
	"testing/quick"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/prand"
)

// arenaOracle mirrors an Arena as a slice of map-sets.
type arenaOracle struct {
	n    int
	sets []map[int]bool
}

func newArenaOracle(nodes, n int) *arenaOracle {
	o := &arenaOracle{n: n, sets: make([]map[int]bool, nodes)}
	for i := range o.sets {
		o.sets[i] = map[int]bool{}
	}
	return o
}

func (o *arenaOracle) add(i, tok int) {
	if tok >= 1 && tok <= o.n {
		o.sets[i][tok] = true
	}
}

// hashRangeNaive is the definitional fingerprint: Σ 2^t mod q per token.
func hashRangeNaive(s map[int]bool, lo, hi int, q uint64) uint64 {
	var sum uint64
	for tok := range s {
		if tok >= lo && tok <= hi {
			sum = (sum + powMod(2, uint64(tok), q)) % q
		}
	}
	return sum
}

func TestArenaQuickAgainstMapOracle(t *testing.T) {
	const q = 1_000_000_007
	f := func(seed uint64) bool {
		rng := prand.New(seed)
		nodes := 3 + rng.Intn(6)
		n := 40 + rng.Intn(120)
		a := NewArena(nodes, n)
		oracle := newArenaOracle(nodes, n)

		// Random op sequence: adds (in- and out-of-range) interleaved with
		// probes, spread unevenly so some sets stay empty and some cluster
		// in a narrow word span.
		ops := 80 + rng.Intn(200)
		for op := 0; op < ops; op++ {
			i := rng.Intn(nodes)
			switch rng.Intn(4) {
			case 0, 1: // add, biased toward a node-local band
				tok := 1 + (i*17+rng.Intn(40))%(n+3) - 1
				a.Set(i).Add(tok)
				oracle.add(i, tok)
			case 2: // add near the universe edges
				tok := []int{-1, 0, 1, 2, n - 1, n, n + 1}[rng.Intn(7)]
				a.Set(i).Add(tok)
				oracle.add(i, tok)
			case 3: // membership probe
				tok := rng.Intn(n+2) - 1
				if a.Set(i).Has(tok) != oracle.sets[i][tok] {
					return false
				}
			}
		}

		// Full-observable sweep per set.
		for i := 0; i < nodes; i++ {
			set, ref := a.Set(i), oracle.sets[i]
			if set.Len() != len(ref) {
				return false
			}
			seen := 0
			prev := 0
			bad := false
			set.ForEach(func(tok int) {
				if tok <= prev || !ref[tok] {
					bad = true
				}
				prev = tok
				seen++
			})
			if bad || seen != len(ref) {
				return false
			}
			// Range counts and fingerprints on random windows.
			for w := 0; w < 4; w++ {
				lo := 1 + rng.Intn(n)
				hi := lo + rng.Intn(n-lo+1)
				wantCount := 0
				for tok := range ref {
					if tok >= lo && tok <= hi {
						wantCount++
					}
				}
				if set.CountRange(lo, hi) != wantCount {
					return false
				}
				if set.HashRange(lo, hi, q) != hashRangeNaive(ref, lo, hi, q) {
					return false
				}
			}
			// Cross-set fingerprint equality agrees with true equality of
			// the restrictions.
			j := rng.Intn(nodes)
			lo, hi := 1, n
			eq := true
			for tok := 1; tok <= n; tok++ {
				if ref[tok] != oracle.sets[j][tok] {
					eq = false
					break
				}
			}
			if eq && !HashRangeEqual(set, a.Set(j), lo, hi, q) {
				return false // equal restrictions must always fingerprint equal
			}
			if HashRangeEqual(set, a.Set(j), lo, hi, q) != (set.HashRange(lo, hi, q) == a.Set(j).HashRange(lo, hi, q)) {
				return false // the no-modmul path must equal the two-sum path exactly
			}
		}

		// Checkpoint round trip through a fresh arena: the delta-encoded
		// stream must rebuild every set exactly.
		var buf bytes.Buffer
		w := ckpt.NewWriter(&buf)
		for i := 0; i < nodes; i++ {
			a.Set(i).CheckpointTo(w)
		}
		if w.Flush() != nil {
			return false
		}
		b := NewArena(nodes, n)
		r := ckpt.NewReader(&buf)
		for i := 0; i < nodes; i++ {
			if b.Set(i).RestoreFrom(r) != nil {
				return false
			}
		}
		for i := 0; i < nodes; i++ {
			if !a.Set(i).Equal(b.Set(i)) {
				return false
			}
		}
		// And the arenas' raw backing words agree — no bit bled across the
		// per-set word-span boundaries.
		for i := range a.words {
			if a.words[i] != b.words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
