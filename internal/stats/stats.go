// Package stats provides the small statistics toolkit the experiment
// harness uses to summarize repeated trials and to fit scaling exponents
// (log-log slopes) when checking the shape of the paper's complexity bounds.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// ErrBadFit is returned when a regression input is degenerate.
var ErrBadFit = errors.New("stats: need at least two distinct finite points")

// LinearFit returns the least-squares slope and intercept of y over x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, ErrBadFit
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(x))
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return 0, 0, ErrBadFit
		}
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, ErrBadFit
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// LogLogSlope fits rounds ≈ c·x^e on positive data and returns the exponent
// e: the scaling-shape statistic used to compare measured growth against the
// paper's bounds (e ≈ 1 for linear, ≈ 2 for quadratic, ≈ 0 for polylog).
func LogLogSlope(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, ErrBadFit
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return 0, ErrBadFit
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _, err := LinearFit(lx, ly)
	return slope, err
}

// Ratio returns b/a, the speedup/slowdown statistic used for head-to-head
// rows ("who wins, by roughly what factor").
func Ratio(a, b float64) float64 {
	if a == 0 {
		return math.Inf(1)
	}
	return b / a
}
