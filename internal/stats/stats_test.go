package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %f", s.Std)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median = %f, want 2.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty sample mishandled")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single sample: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Fatalf("fit = (%f, %f)", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err != ErrBadFit {
		t.Fatal("short input accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err != ErrBadFit {
		t.Fatal("vertical line accepted")
	}
	if _, _, err := LinearFit([]float64{1, math.NaN()}, []float64{1, 2}); err != ErrBadFit {
		t.Fatal("NaN accepted")
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	for _, e := range []float64{0.5, 1, 2, 3} {
		var x, y []float64
		for _, v := range []float64{8, 16, 32, 64, 128} {
			x = append(x, v)
			y = append(y, 3*math.Pow(v, e))
		}
		got, err := LogLogSlope(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-e) > 1e-9 {
			t.Errorf("exponent %f recovered as %f", e, got)
		}
	}
}

func TestLogLogSlopeRejectsNonPositive(t *testing.T) {
	if _, err := LogLogSlope([]float64{1, 0}, []float64{1, 2}); err != ErrBadFit {
		t.Fatal("zero x accepted")
	}
	if _, err := LogLogSlope([]float64{1, 2}, []float64{-1, 2}); err != ErrBadFit {
		t.Fatal("negative y accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(2, 6) != 3 {
		t.Fatal("ratio wrong")
	}
	if !math.IsInf(Ratio(0, 1), 1) {
		t.Fatal("zero denominator should be +Inf")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			// Keep magnitudes bounded so sums cannot overflow — the harness
			// only ever summarizes round counts and bit totals.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
