// Package httpserve is the shared HTTP server plumbing for this module's
// long-running endpoints: the gossipsim -metrics scrape server and the
// gossipd daemon. It standardizes the three behaviors both need and that
// are easy to get subtly wrong when inlined per command:
//
//   - fail-fast binding: Start listens before returning, so a taken port
//     or bad address fails the command immediately instead of a goroutine
//     logging after the caller has moved on;
//   - graceful shutdown: Shutdown stops accepting, lets in-flight
//     requests (scrapes, event streams) finish within a timeout, and only
//     then tears the server down;
//   - pprof mounting: MountPprof hand-mounts Go's profiling handlers on a
//     private mux (the net/http/pprof side-effect registration only
//     covers http.DefaultServeMux, which these servers deliberately do
//     not use).
package httpserve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running HTTP server bound to a concrete address.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Start binds addr (host:port; port 0 picks a free one) and serves h on
// it. The listen happens synchronously — a bind failure is returned
// here, never logged from a goroutine — and the accept loop runs in the
// background until Shutdown.
func Start(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: cannot listen on %q: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: h}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43721"), which differs from
// the requested one when port 0 was used.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully: no new connections, in-flight
// requests get up to timeout to finish, then the server closes. Safe to
// call once; returns the shutdown error, if any (typically a timeout
// with streams still open).
func (s *Server) Shutdown(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// MountPprof mounts Go's /debug/pprof handlers on mux. The pprof
// package's init only registers on http.DefaultServeMux; servers built
// on a private mux (all of this module's) mount by hand through this.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
