package httpserve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStartServeShutdown(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "pong")
	})
	MountPprof(mux)

	s, err := Start("127.0.0.1:0", mux)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/ping")
	if err != nil {
		t.Fatalf("GET /ping: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("GET /ping = %q, want pong", body)
	}

	// The pprof index must be mounted on the private mux.
	resp, err = http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("GET /debug/pprof/ = %d %q, want a pprof index", resp.StatusCode, body)
	}

	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/ping"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestStartFailsFastOnBadAddr(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Shutdown(time.Second)
	// Binding the same port again must fail synchronously.
	if _, err := Start(s.Addr(), http.NewServeMux()); err == nil {
		t.Fatal("second Start on a taken port succeeded")
	}
	if _, err := Start("definitely not an address", nil); err == nil {
		t.Fatal("Start on a malformed address succeeded")
	}
}
