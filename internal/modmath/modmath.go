// Package modmath holds the modular arithmetic shared by the Rabin
// fingerprinting in internal/tokenset and the Miller–Rabin primality
// testing in internal/eqtest. The two call sites must use bit-identical
// arithmetic — fingerprint values and primality decisions drive the
// simulator's byte-reproducible executions — so the implementation lives
// here exactly once.
package modmath

import "math/bits"

// PowMod computes b^e mod m by repeated squaring.
func PowMod(b, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, b, m)
		}
		b = MulMod(b, b, m)
		e >>= 1
	}
	return result
}

// MulMod returns a*b mod m. For m < 2^32 the reduced operands fit a plain
// 64-bit multiply, which is ~5× cheaper than the 128-bit Mul64/Div64 path
// taken for larger moduli.
func MulMod(a, b, m uint64) uint64 {
	if m < 1<<32 {
		return (a % m) * (b % m) % m
	}
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}
