// Package runner is the deterministic worker-pool sweep engine behind the
// harness experiments (E1..E24) and the public mobilegossip.RunSweep API.
//
// A sweep is a grid of independent work items — typically (experiment point
// × trial) cells of a Figure-1 parameter sweep. Map fans the items out
// across a bounded pool of goroutines and collects the results in grid
// order. Three properties make the engine safe to drop under existing
// sequential loops:
//
//   - Determinism: every item receives a seed derived from the base seed by
//     prand.StreamSeed stream splitting, never from shared mutable RNG
//     state, so results are bit-identical regardless of worker count or
//     completion order.
//   - Grid-order collection: results[i] always holds item i's value, even
//     when item i+1 finishes first.
//   - Error cancellation: the first error stops the dispatch of new items;
//     in-flight items finish and the smallest failing grid index wins, so
//     the reported error does not depend on goroutine scheduling among the
//     items actually attempted.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"mobilegossip/internal/prand"
)

// Job identifies one grid cell handed to a worker.
type Job struct {
	// Index is the cell's position in grid order, 0 ≤ Index < n.
	Index int
	// Seed is the cell's private seed, split from Config.Seed by
	// prand.StreamSeed(seed, Index). Work functions that derive all their
	// randomness from it are automatically deterministic under any worker
	// count.
	Seed uint64
}

// Config tunes one Map invocation.
type Config struct {
	// Workers bounds the pool size; 0 (or negative) means GOMAXPROCS.
	Workers int
	// Seed is the base seed from which every Job.Seed is split.
	Seed uint64
	// OnProgress, if set, is called after every completed item with the
	// number of items finished so far and the grid size. Calls are
	// serialized but may arrive out of grid order.
	OnProgress func(done, total int)
}

// PoolSize returns the worker-pool size a Map over n cells will actually
// use: the configured Workers (GOMAXPROCS when unset), clamped to the grid
// size. Callers that report a pool size use this so the report cannot
// drift from the pool Map spawns.
func (c Config) PoolSize(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map runs fn over n grid cells on a worker pool and returns the results in
// grid order. On error it cancels the dispatch of remaining cells and
// returns the error of the smallest failing index among the cells that ran.
func Map[T any](cfg Config, n int, fn func(Job) (T, error)) ([]T, error) {
	return MapContext(context.Background(), cfg, n, fn)
}

// MapContext is Map with cancellation: when ctx is canceled no further
// cells are dispatched, in-flight cells finish (work functions that honor
// ctx themselves abort early), and the context's error is returned unless
// a cell error (smallest index) takes precedence.
func MapContext[T any](ctx context.Context, cfg Config, n int, fn func(Job) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative grid size %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}

	var (
		mu      sync.Mutex // guards dispatch/error state; never held in fn or OnProgress
		next    int        // index of the next cell to dispatch
		errIdx  = -1
		firstEr error
		progMu  sync.Mutex // serializes done counting + OnProgress off the pool mutex
		done    int        // completed cell count, guarded by progMu
	)
	// take dispatches the next cell, or reports that the worker should
	// exit (grid drained or sweep failed).
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if errIdx >= 0 || next >= n || ctx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	finish := func(i int, err error) {
		if err != nil {
			mu.Lock()
			if errIdx < 0 || i < errIdx {
				errIdx, firstEr = i, err
			}
			mu.Unlock()
			return
		}
		if cfg.OnProgress != nil {
			// Incrementing under progMu keeps the delivered counts strictly
			// monotonic while dispatch (mu) never waits on callback I/O.
			progMu.Lock()
			done++
			cfg.OnProgress(done, n)
			progMu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for w := cfg.PoolSize(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				v, err := fn(Job{Index: i, Seed: prand.StreamSeed(cfg.Seed, uint64(i))})
				if err == nil {
					results[i] = v
				}
				finish(i, err)
			}
		}()
	}
	wg.Wait()

	if errIdx >= 0 {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// MapGrid runs fn over a points×trials grid in row-major order (all trials
// of point 0, then point 1, …) and returns results indexed [point][trial].
// The seed passed to fn is the cell's split stream seed.
func MapGrid[T any](cfg Config, points, trials int, fn func(point, trial int, seed uint64) (T, error)) ([][]T, error) {
	return MapGridContext(context.Background(), cfg, points, trials, fn)
}

// MapGridContext is MapGrid with cancellation (see MapContext).
func MapGridContext[T any](ctx context.Context, cfg Config, points, trials int, fn func(point, trial int, seed uint64) (T, error)) ([][]T, error) {
	if points < 0 || trials < 0 {
		return nil, fmt.Errorf("runner: negative grid %d×%d", points, trials)
	}
	flat, err := MapContext(ctx, cfg, points*trials, func(j Job) (T, error) {
		return fn(j.Index/max(trials, 1), j.Index%max(trials, 1), j.Seed)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, points)
	for p := range out {
		out[p] = flat[p*trials : (p+1)*trials]
	}
	return out, nil
}
