package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobilegossip/internal/prand"
)

// walk simulates a cheap seed-driven computation: a few hundred PRNG steps
// folded into one value. Any nondeterminism in dispatch or collection shows
// up as a changed fold.
func walk(seed uint64) uint64 {
	rng := prand.New(seed)
	var acc uint64
	for i := 0; i < 300; i++ {
		acc = acc*31 + rng.Uint64()
	}
	return acc
}

// TestMapDeterministicAcrossWorkerCounts is the engine's core contract:
// the same base seed must yield bit-identical results at 1, 4 and 16
// workers even though completion order differs.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	var want []uint64
	for _, workers := range []int{1, 4, 16} {
		got, err := Map(Config{Workers: workers, Seed: 42}, n, func(j Job) (uint64, error) {
			return walk(j.Seed), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different results than workers=1", workers)
		}
	}
	// Distinct cells must see distinct stream seeds.
	seen := map[uint64]bool{}
	for _, v := range want {
		if seen[v] {
			t.Fatal("two grid cells produced identical walks — stream splitting collided")
		}
		seen[v] = true
	}
}

// TestMapGridOrderUnderOutOfOrderCompletion forces early cells to finish
// last (index 0 sleeps longest) and checks collection stays in grid order.
func TestMapGridOrderUnderOutOfOrderCompletion(t *testing.T) {
	const n = 16
	got, err := Map(Config{Workers: 8}, n, func(j Job) (int, error) {
		time.Sleep(time.Duration(n-j.Index) * time.Millisecond)
		return j.Index * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*10)
		}
	}
}

// TestMapErrorCancelsRemaining: with one worker the dispatch is strictly
// sequential, so an error at index 3 must leave cells 4..n-1 unattempted.
func TestMapErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var calls int32
	_, err := Map(Config{Workers: 1}, 100, func(j Job) (int, error) {
		atomic.AddInt32(&calls, 1)
		if j.Index == 3 {
			return 0, boom
		}
		return j.Index, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := atomic.LoadInt32(&calls); got != 4 {
		t.Fatalf("%d cells attempted after error at index 3, want exactly 4", got)
	}
}

// TestMapErrorSmallestIndexWins: when several in-flight cells fail, the
// reported error belongs to the smallest failing grid index, independent of
// which worker reports first.
func TestMapErrorSmallestIndexWins(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(4)
	_, err := Map(Config{Workers: 4}, 4, func(j Job) (int, error) {
		// All four cells are in flight before any fails.
		gate.Done()
		gate.Wait()
		if j.Index >= 1 {
			return 0, fmt.Errorf("cell %d failed", j.Index)
		}
		return 0, nil
	})
	if err == nil || err.Error() != "cell 1 failed" {
		t.Fatalf("err = %v, want cell 1's error", err)
	}
}

func TestMapProgressReachesTotal(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	_, err := Map(Config{Workers: 4, OnProgress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		seen = append(seen, done)
	}}, 10, func(j Job) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 || seen[len(seen)-1] != 10 {
		t.Fatalf("progress calls %v, want 1..10", seen)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress not monotonic: %v", seen)
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	got, err := Map(Config{}, 0, func(j Job) (int, error) { return 1, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty grid: got %v, %v", got, err)
	}
	if _, err := Map(Config{}, -1, func(j Job) (int, error) { return 1, nil }); err == nil {
		t.Fatal("negative grid size should error")
	}
}

// TestMapGridShapeAndDeterminism checks row-major reshaping and that the
// grid view is worker-count independent too.
func TestMapGridShapeAndDeterminism(t *testing.T) {
	const points, trials = 5, 3
	var want [][]uint64
	for _, workers := range []int{1, 7} {
		got, err := MapGrid(Config{Workers: workers, Seed: 7}, points, trials,
			func(p, tr int, seed uint64) (uint64, error) {
				return walk(seed) ^ uint64(p*100+tr), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != points || len(got[0]) != trials {
			t.Fatalf("shape %d×%d, want %d×%d", len(got), len(got[0]), points, trials)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("MapGrid results depend on worker count")
		}
	}
}

func TestStreamSeedSplitsDistinctStreams(t *testing.T) {
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for stream := uint64(0); stream < 1000; stream++ {
			s := prand.StreamSeed(base, stream)
			if seen[s] {
				t.Fatalf("StreamSeed collision at base=%d stream=%d", base, stream)
			}
			seen[s] = true
		}
	}
}
