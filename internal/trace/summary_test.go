package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadSummaryFromLiveRun(t *testing.T) {
	res, events, _ := runTraced(t, false)

	// Serialize the parsed events back to JSONL and summarize; this keeps
	// the summary input byte-identical in shape to what Recorder wrote.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for _, e := range events {
		rec.record(e)
	}

	s, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proposals != res.Proposals {
		t.Errorf("summary proposals %d, engine %d", s.Proposals, res.Proposals)
	}
	if s.Connections != res.Connections {
		t.Errorf("summary connections %d, engine %d", s.Connections, res.Connections)
	}
	if s.Tokens != res.TokensMoved {
		t.Errorf("summary tokens %d, engine %d", s.Tokens, res.TokensMoved)
	}
	if int64(len(events)) != s.Proposals+s.Connections {
		t.Errorf("event count %d != proposals+connections %d", len(events), s.Proposals+s.Connections)
	}

	// Per-round stats must be ascending and sum to the totals.
	var p, c int64
	last := 0
	for _, rs := range s.Rounds {
		if rs.Round <= last {
			t.Fatalf("rounds not strictly ascending at %d", rs.Round)
		}
		last = rs.Round
		p += int64(rs.Proposals)
		c += int64(rs.Connections)
	}
	if p != s.Proposals || c != s.Connections {
		t.Errorf("per-round sums (%d, %d) != totals (%d, %d)", p, c, s.Proposals, s.Connections)
	}

	if rate := s.AcceptanceRate(); rate <= 0 || rate > 1 {
		t.Errorf("acceptance rate %v outside (0, 1]", rate)
	}
}

func TestReadSummaryRejectsGarbage(t *testing.T) {
	if _, err := ReadSummary(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line should fail")
	}
	if _, err := ReadSummary(strings.NewReader(`{"round":1,"kind":"mystery","node":0,"peer":1}` + "\n")); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestReadSummaryEmptyAndBlankLines(t *testing.T) {
	s, err := ReadSummary(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 0 || s.Proposals != 0 || s.Connections != 0 {
		t.Errorf("empty trace should produce empty summary, got %+v", s)
	}
	if s.AcceptanceRate() != 0 {
		t.Errorf("acceptance rate of empty trace should be 0")
	}

	s, err = ReadSummary(strings.NewReader("\n\n" + `{"round":2,"kind":"propose","node":0,"peer":1}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Proposals != 1 || len(s.Rounds) != 1 || s.Rounds[0].Round != 2 {
		t.Errorf("blank lines should be skipped, got %+v", s)
	}
}
