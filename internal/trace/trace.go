// Package trace records mobile-telephone-model executions as a stream of
// events for debugging, visualization and post-hoc analysis. A Recorder
// wraps any mtm.Protocol; the wrapped protocol behaves identically while
// every proposal and accepted connection is written as one JSON line.
//
// Event volume is deliberately bounded: per-node tags are not recorded
// (they are Θ(n) per round and recomputable from the seed); proposals and
// connections are Θ(matching size) per round.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// Event is one recorded occurrence. Kind is "propose" (Node proposed to
// Peer) or "connect" (Node initiated an accepted connection with Peer;
// Bits and Tokens are the communication metered over it).
type Event struct {
	Round  int    `json:"round"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Peer   int    `json:"peer"`
	Tag    uint64 `json:"tag,omitempty"`
	Bits   int    `json:"bits,omitempty"`
	Tokens int    `json:"tokens,omitempty"`
}

// Recorder sinks events to an io.Writer as JSON lines. It is safe for the
// concurrent engine backend (Exchange may run from multiple goroutines).
type Recorder struct {
	mu     sync.Mutex
	enc    *json.Encoder
	err    error
	events int64
}

// NewRecorder returns a Recorder writing JSONL to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Events returns the number of events recorded so far.
func (r *Recorder) Events() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Err returns the first write error encountered, if any. Recording
// continues to be attempted after an error; callers check Err once at the
// end of a run.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events++
	if err := r.enc.Encode(e); err != nil && r.err == nil {
		r.err = fmt.Errorf("trace: %w", err)
	}
}

// Wrap returns a Protocol that behaves exactly like p while recording its
// proposals and connections to rec.
func Wrap(p mtm.Protocol, rec *Recorder) mtm.Protocol {
	return &traced{inner: p, rec: rec}
}

type traced struct {
	inner mtm.Protocol
	rec   *Recorder
}

var _ mtm.Protocol = (*traced)(nil)

func (t *traced) TagBits() int { return t.inner.TagBits() }

func (t *traced) Tag(r int, u mtm.NodeID) uint64 { return t.inner.Tag(r, u) }

func (t *traced) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	a := t.inner.Decide(r, u, view, rng)
	if a.Propose {
		t.rec.record(Event{Round: r, Kind: "propose", Node: u, Peer: a.Target})
	}
	return a
}

func (t *traced) Exchange(r int, c *mtm.Conn) {
	t.inner.Exchange(r, c)
	t.rec.record(Event{
		Round: r, Kind: "connect",
		Node: c.Initiator, Peer: c.Responder,
		Bits: c.BitsUsed(), Tokens: c.TokensUsed(),
	})
}

func (t *traced) Done() bool { return t.inner.Done() }
