package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// RoundStats aggregates the events of one round.
type RoundStats struct {
	Round       int
	Proposals   int
	Connections int
	Bits        int64
	Tokens      int64
}

// Summary aggregates a whole recorded execution.
type Summary struct {
	Rounds      []RoundStats // ascending by round; rounds with no events omitted
	Proposals   int64
	Connections int64
	Bits        int64
	Tokens      int64
}

// AcceptanceRate returns accepted connections per proposal (0 when no
// proposals were recorded). In the mobile telephone model this is the
// contention statistic: on high-degree graphs many proposals collide on
// the same receiver, which is the mechanism behind the Ω(Δ²) lower bound
// for blind strategies.
func (s *Summary) AcceptanceRate() float64 {
	if s.Proposals == 0 {
		return 0
	}
	return float64(s.Connections) / float64(s.Proposals)
}

// ReadSummary parses a JSONL event stream (as produced by Recorder) and
// aggregates it per round.
func ReadSummary(r io.Reader) (*Summary, error) {
	byRound := make(map[int]*RoundStats)
	s := &Summary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rs := byRound[e.Round]
		if rs == nil {
			rs = &RoundStats{Round: e.Round}
			byRound[e.Round] = rs
		}
		switch e.Kind {
		case "propose":
			rs.Proposals++
			s.Proposals++
		case "connect":
			rs.Connections++
			rs.Bits += int64(e.Bits)
			rs.Tokens += int64(e.Tokens)
			s.Connections++
			s.Bits += int64(e.Bits)
			s.Tokens += int64(e.Tokens)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown event kind %q", line, e.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	s.Rounds = make([]RoundStats, 0, len(byRound))
	for _, rs := range byRound {
		s.Rounds = append(s.Rounds, *rs)
	}
	sort.Slice(s.Rounds, func(i, j int) bool { return s.Rounds[i].Round < s.Rounds[j].Round })
	return s, nil
}
