package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// runTraced executes a small SharedBit gossip with tracing and returns the
// engine result plus parsed events.
func runTraced(t *testing.T, concurrent bool) (mtm.Result, []Event, *Recorder) {
	t.Helper()
	const n, k = 16, 4
	st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	proto := core.NewSharedBit(st, prand.NewSharedString(5))
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	g := graph.RandomRegular(n, 4, prand.New(3))
	res, err := mtm.NewEngine(dyngraph.NewStatic(g), Wrap(proto, rec), mtm.Config{
		Seed: 8, Concurrent: concurrent,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return res, events, rec
}

func TestRecorderCountsMatchEngineTotals(t *testing.T) {
	res, events, rec := runTraced(t, false)
	if !res.Completed {
		t.Fatal("gossip unsolved")
	}
	var proposals, connects int64
	for _, e := range events {
		switch e.Kind {
		case "propose":
			proposals++
		case "connect":
			connects++
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
	}
	if proposals != res.Proposals {
		t.Errorf("traced %d proposals, engine counted %d", proposals, res.Proposals)
	}
	if connects != res.Connections {
		t.Errorf("traced %d connections, engine counted %d", connects, res.Connections)
	}
	if rec.Events() != int64(len(events)) {
		t.Errorf("Events() = %d, parsed %d", rec.Events(), len(events))
	}
	if rec.Err() != nil {
		t.Errorf("unexpected recorder error: %v", rec.Err())
	}
}

func TestEventsWellFormed(t *testing.T) {
	res, events, _ := runTraced(t, false)
	for _, e := range events {
		if e.Round < 1 || e.Round > res.Rounds {
			t.Errorf("event round %d outside [1, %d]", e.Round, res.Rounds)
		}
		if e.Node == e.Peer {
			t.Errorf("self-event: %+v", e)
		}
		if e.Kind == "connect" {
			if e.Bits <= 0 {
				t.Errorf("connect with no metered bits: %+v", e)
			}
		}
	}
}

func TestWrappedExecutionIdenticalToBare(t *testing.T) {
	run := func(wrap bool) mtm.Result {
		const n, k = 16, 4
		st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		var proto mtm.Protocol = core.NewSharedBit(st, prand.NewSharedString(5))
		if wrap {
			proto = Wrap(proto, NewRecorder(&bytes.Buffer{}))
		}
		g := graph.RandomRegular(n, 4, prand.New(3))
		res, err := mtm.NewEngine(dyngraph.NewStatic(g), proto, mtm.Config{Seed: 8}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if bare, wrapped := run(false), run(true); bare != wrapped {
		t.Errorf("tracing changed the execution:\n  bare:    %+v\n  wrapped: %+v", bare, wrapped)
	}
}

func TestConcurrentBackendSafeAndEquivalent(t *testing.T) {
	seqRes, seqEvents, _ := runTraced(t, false)
	concRes, concEvents, _ := runTraced(t, true)
	if seqRes != concRes {
		t.Errorf("backends diverged under tracing: %+v vs %+v", seqRes, concRes)
	}
	if len(seqEvents) != len(concEvents) {
		t.Errorf("event counts differ: %d vs %d", len(seqEvents), len(concEvents))
	}
}

// failingWriter fails every write after the first.
type failingWriter struct{ writes int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestRecorderSurfacesWriteErrors(t *testing.T) {
	const n, k = 12, 3
	st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	proto := core.NewSharedBit(st, prand.NewSharedString(5))
	rec := NewRecorder(&failingWriter{})
	g := graph.RandomRegular(n, 4, prand.New(3))
	if _, err := mtm.NewEngine(dyngraph.NewStatic(g), Wrap(proto, rec), mtm.Config{Seed: 8}).Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Err() == nil {
		t.Fatal("expected a recorder write error")
	}
	if !strings.Contains(rec.Err().Error(), "disk full") {
		t.Errorf("error should wrap the writer failure, got %v", rec.Err())
	}
}
