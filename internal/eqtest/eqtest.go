// Package eqtest implements §3 of the paper: the randomized set-equality
// test EQTest from two-party communication complexity, and the Transfer(ε)
// subroutine built on it. Transfer lets two connected nodes with token sets
// T_u ≠ T_v identify — using only O(log²N · log(logN/ε)) exchanged control
// bits — the smallest token in the symmetric difference, which the owner
// then transfers.
//
// EQTest uses Rabin set fingerprinting with private randomness: encode a set
// S ⊆ [N] as the integer Σ_{t∈S} 2^t; one party draws a random prime q from
// a range with ≥ 2N primes and sends (q, fingerprint mod q). Equal sets
// always agree; unequal sets collide with probability ≤ 1/2 per trial
// (the nonzero difference integer is < 2^{N+1} and so has ≤ N+1 prime
// divisors). Trials are independent, so c trials drive the one-sided error
// to 2^{-c} — exactly the contract §3 assumes.
package eqtest

import (
	"math"
	"math/bits"

	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// primeRangeFor returns the upper end T of the prime sampling range for
// universe size n, chosen so that [2, T] contains comfortably more than 2n
// primes (π(T) ≈ T/ln T ≥ 2n for T = 8·n·(log₂ n + 2)).
func primeRangeFor(n int) uint64 {
	if n < 4 {
		n = 4
	}
	lg := uint64(bits.Len(uint(n))) + 2
	return 8 * uint64(n) * lg
}

// randomPrime samples a uniform prime in [3, limit] by rejection.
func randomPrime(rng *prand.RNG, limit uint64) uint64 {
	if limit < 5 {
		limit = 5
	}
	for {
		q := 3 + uint64(rng.Intn(int(limit-2)))
		if isPrime(q) {
			return q
		}
	}
}

// isPrime is a deterministic Miller–Rabin test valid for all uint64.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	// These witnesses are sufficient for all n < 2^64.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powMod(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

func powMod(b, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, b, m)
		}
		b = mulMod(b, b, m)
		e >>= 1
	}
	return result
}

func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// EQResult reports one equality test's outcome and its communication cost.
type EQResult struct {
	Equal bool
	Bits  int
}

// EQTest tests the equality of a∩[lo,hi] and b∩[lo,hi] with `trials`
// independent fingerprint rounds using rng as the initiator's private
// randomness. One-sided error: equal restrictions are always reported
// equal; unequal restrictions are reported equal with probability at most
// 2^{-trials}.
func EQTest(rng *prand.RNG, a, b *tokenset.Set, lo, hi, trials int) EQResult {
	if trials < 1 {
		trials = 1
	}
	limit := primeRangeFor(a.Universe())
	costPerTrial := 2*bits.Len64(limit) + 2 // q + fingerprint + framing
	res := EQResult{Equal: true}
	for i := 0; i < trials; i++ {
		q := randomPrime(rng, limit)
		res.Bits += costPerTrial
		if a.HashRange(lo, hi, q) != b.HashRange(lo, hi, q) {
			res.Equal = false
			return res
		}
	}
	return res
}

// trialsFor computes ε′ = ⌈log₂(log₂ N / ε)⌉, the per-EQTest trial count
// Transfer(ε) uses so that a union bound over the ⌈log₂ N⌉ binary-search
// steps keeps the total failure probability below ε (§3).
func trialsFor(n int, eps float64) int {
	if eps <= 0 {
		eps = 1e-12
	}
	if eps >= 1 {
		eps = 0.5
	}
	lgN := float64(bits.Len(uint(n)))
	if lgN < 1 {
		lgN = 1
	}
	t := int(math.Ceil(math.Log2(lgN / eps)))
	if t < 1 {
		t = 1
	}
	return t
}

// Outcome describes what a Transfer call did.
type Outcome struct {
	// Moved reports whether a token was transferred.
	Moved bool
	// Token is the identified smallest symmetric-difference token when
	// Moved (or when identified but owned by neither endpoint — impossible
	// for correct searches, possible under fingerprint failure).
	Token int
	// ToResponder reports the transfer direction when Moved.
	ToResponder bool
	// Bits is the total control-bit cost of the call.
	Bits int
}

// Transfer runs the Transfer(ε) subroutine of §3 over connection c between
// the initiator's token set a and the responder's token set b, both subsets
// of [1, N]. With probability ≥ 1−ε it identifies the smallest token in the
// symmetric difference (if any) and moves it from the endpoint that knows
// it into the other's set, charging the connection for all control bits and
// the token payload. If the sets are equal it moves nothing.
func Transfer(c *mtm.Conn, a, b *tokenset.Set, eps float64) Outcome {
	n := a.Universe()
	trials := trialsFor(n, eps)
	rng := c.InitRNG
	var out Outcome

	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo)/2
		r := EQTest(rng, a, b, lo, mid, trials)
		out.Bits += r.Bits
		if !r.Equal {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	c.ChargeBits(out.Bits + 2) // plus direction/ownership framing
	out.Token = lo

	switch {
	case a.Has(lo) && !b.Has(lo):
		b.Add(lo)
		out.Moved, out.ToResponder = true, true
		c.ChargeTokens(1)
	case b.Has(lo) && !a.Has(lo):
		a.Add(lo)
		out.Moved, out.ToResponder = true, false
		c.ChargeTokens(1)
	default:
		// Sets equal (nothing to move) or the search was misled by a
		// fingerprint collision (probability < ε).
	}
	return out
}
