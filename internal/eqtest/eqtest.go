// Package eqtest implements §3 of the paper: the randomized set-equality
// test EQTest from two-party communication complexity, and the Transfer(ε)
// subroutine built on it. Transfer lets two connected nodes with token sets
// T_u ≠ T_v identify — using only O(log²N · log(logN/ε)) exchanged control
// bits — the smallest token in the symmetric difference, which the owner
// then transfers.
//
// EQTest uses Rabin set fingerprinting with private randomness: encode a set
// S ⊆ [N] as the integer Σ_{t∈S} 2^t; one party draws a random prime q from
// a range with ≥ 2N primes and sends (q, fingerprint mod q). Equal sets
// always agree; unequal sets collide with probability ≤ 1/2 per trial
// (the nonzero difference integer is < 2^{N+1} and so has ≤ N+1 prime
// divisors). Trials are independent, so c trials drive the one-sided error
// to 2^{-c} — exactly the contract §3 assumes.
package eqtest

import (
	"math"
	"math/bits"
	"sync"

	"mobilegossip/internal/modmath"

	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// primeRangeFor returns the upper end T of the prime sampling range for
// universe size n, chosen so that [2, T] contains comfortably more than 2n
// primes (π(T) ≈ T/ln T ≥ 2n for T = 8·n·(log₂ n + 2)).
func primeRangeFor(n int) uint64 {
	if n < 4 {
		n = 4
	}
	lg := uint64(bits.Len(uint(n))) + 2
	return 8 * uint64(n) * lg
}

// maxSieveLimit bounds the prime-range size for which randomPrime uses a
// cached sieve bitmap (2^28 → a 32 MiB bitmap, reached only for universes
// beyond ~1.5M tokens). Larger ranges fall back to per-candidate
// Miller–Rabin.
const maxSieveLimit = 1 << 28

// The cache holds a single bitmap: a sieve for limit L answers every
// limit ≤ L (the lookup only indexes bits ≤ limit), so the cache grows
// monotonically to the largest range requested — at most one ~32 MiB
// bitmap per process, not one per universe size in a mixed-size sweep.
var (
	sieveMu    sync.RWMutex
	sieveLimit uint64
	sieveBits  []uint64
)

// primeBitmap returns (building and caching on first use) a primality
// bitmap covering at least [0, limit]. The prime range is a function of the
// token universe alone, so a whole sweep shares one bitmap.
func primeBitmap(limit uint64) []uint64 {
	sieveMu.RLock()
	bm, cached := sieveBits, sieveLimit
	sieveMu.RUnlock()
	if cached >= limit {
		return bm
	}
	sieveMu.Lock()
	defer sieveMu.Unlock()
	if sieveLimit >= limit {
		return sieveBits
	}
	sieveBits = buildSieve(limit)
	sieveLimit = limit
	return sieveBits
}

// buildSieve runs Eratosthenes over [0, limit] into a bitmap.
func buildSieve(limit uint64) []uint64 {
	bm := make([]uint64, limit/64+1)
	for i := range bm {
		bm[i] = ^uint64(0)
	}
	bm[0] &^= 3 // 0 and 1 are not prime
	for p := uint64(2); p*p <= limit; p++ {
		if bm[p>>6]&(1<<(p&63)) == 0 {
			continue
		}
		for c := p * p; c <= limit; c += p {
			bm[c>>6] &^= 1 << (c & 63)
		}
	}
	return bm
}

// randomPrime samples a uniform prime in [3, limit] by rejection. The
// candidate primality test is a sieve-bitmap lookup for realistic ranges
// (identical accept/reject decisions to Miller–Rabin, so executions are
// unchanged), with the deterministic Miller–Rabin as the unbounded-range
// fallback. Transfer(ε) draws hundreds of primes per connection, which made
// per-candidate Miller–Rabin the simulator's single hottest path.
func randomPrime(rng *prand.RNG, limit uint64) uint64 {
	if limit < 5 {
		limit = 5
	}
	if limit <= maxSieveLimit {
		bm := primeBitmap(limit)
		for {
			q := 3 + uint64(rng.Intn(int(limit-2)))
			if bm[q>>6]&(1<<(q&63)) != 0 {
				return q
			}
		}
	}
	for {
		q := 3 + uint64(rng.Intn(int(limit-2)))
		if isPrime(q) {
			return q
		}
	}
}

// Miller–Rabin witness sets, each proven sufficient for deterministic
// primality below its threshold (Pomerance–Selfridge–Wagstaff / Jaeschke /
// Sinclair bounds). The prime-sampling range for a universe of n tokens is
// ~8·n·log n, so realistic simulations stay in the 2- or 4-witness tiers —
// a 3–6× cut over always running the full 12-witness battery, with decisions
// (and therefore executions) unchanged.
var mrTiers = []struct {
	below     uint64
	witnesses []uint64
}{
	{2_047, []uint64{2}},
	{1_373_653, []uint64{2, 3}},
	{3_215_031_751, []uint64{2, 3, 5, 7}},
	{3_474_749_660_383, []uint64{2, 3, 5, 7, 11, 13}},
	{341_550_071_728_321, []uint64{2, 3, 5, 7, 11, 13, 17}},
	{^uint64(0), []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}},
}

// isPrime is a deterministic Miller–Rabin test valid for all uint64.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	witnesses := mrTiers[len(mrTiers)-1].witnesses
	for _, tier := range mrTiers {
		if n < tier.below {
			witnesses = tier.witnesses
			break
		}
	}
	for _, a := range witnesses {
		x := powMod(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// powMod and mulMod are inlinable wrappers over the shared implementations
// in internal/modmath (also used by tokenset's fingerprinting, which must
// stay bit-identical to this package's arithmetic).
func powMod(b, e, m uint64) uint64 { return modmath.PowMod(b, e, m) }
func mulMod(a, b, m uint64) uint64 { return modmath.MulMod(a, b, m) }

// EQResult reports one equality test's outcome and its communication cost.
type EQResult struct {
	Equal bool
	Bits  int
}

// EQTest tests the equality of a∩[lo,hi] and b∩[lo,hi] with `trials`
// independent fingerprint rounds using rng as the initiator's private
// randomness. One-sided error: equal restrictions are always reported
// equal; unequal restrictions are reported equal with probability at most
// 2^{-trials}.
func EQTest(rng *prand.RNG, a, b *tokenset.Set, lo, hi, trials int) EQResult {
	if trials < 1 {
		trials = 1
	}
	limit := primeRangeFor(a.Universe())
	costPerTrial := 2*bits.Len64(limit) + 2 // q + fingerprint + framing
	res := EQResult{Equal: true}
	for i := 0; i < trials; i++ {
		q := randomPrime(rng, limit)
		res.Bits += costPerTrial
		// Difference-based fingerprint comparison: same decision (and same
		// collision probability) as comparing the two HashRange values, but
		// words where the sets agree cost one XOR and no modular math.
		if !tokenset.HashRangeEqual(a, b, lo, hi, q) {
			res.Equal = false
			return res
		}
	}
	return res
}

// trialsFor computes ε′ = ⌈log₂(log₂ N / ε)⌉, the per-EQTest trial count
// Transfer(ε) uses so that a union bound over the ⌈log₂ N⌉ binary-search
// steps keeps the total failure probability below ε (§3).
func trialsFor(n int, eps float64) int {
	if eps <= 0 {
		eps = 1e-12
	}
	if eps >= 1 {
		eps = 0.5
	}
	lgN := float64(bits.Len(uint(n)))
	if lgN < 1 {
		lgN = 1
	}
	t := int(math.Ceil(math.Log2(lgN / eps)))
	if t < 1 {
		t = 1
	}
	return t
}

// Outcome describes what a Transfer call did.
type Outcome struct {
	// Moved reports whether a token was transferred.
	Moved bool
	// Token is the identified smallest symmetric-difference token when
	// Moved (or when identified but owned by neither endpoint — impossible
	// for correct searches, possible under fingerprint failure).
	Token int
	// ToResponder reports the transfer direction when Moved.
	ToResponder bool
	// Bits is the total control-bit cost of the call.
	Bits int
}

// Transfer runs the Transfer(ε) subroutine of §3 over connection c between
// the initiator's token set a and the responder's token set b, both subsets
// of [1, N]. With probability ≥ 1−ε it identifies the smallest token in the
// symmetric difference (if any) and moves it from the endpoint that knows
// it into the other's set, charging the connection for all control bits and
// the token payload. If the sets are equal it moves nothing.
func Transfer(c *mtm.Conn, a, b *tokenset.Set, eps float64) Outcome {
	n := a.Universe()
	trials := trialsFor(n, eps)
	rng := c.InitRNG
	var out Outcome

	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo)/2
		r := EQTest(rng, a, b, lo, mid, trials)
		out.Bits += r.Bits
		if !r.Equal {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	c.ChargeBits(out.Bits + 2) // plus direction/ownership framing
	out.Token = lo

	switch {
	case a.Has(lo) && !b.Has(lo):
		b.Add(lo)
		out.Moved, out.ToResponder = true, true
		c.ChargeTokens(1)
	case b.Has(lo) && !a.Has(lo):
		a.Add(lo)
		out.Moved, out.ToResponder = true, false
		c.ChargeTokens(1)
	default:
		// Sets equal (nothing to move) or the search was misled by a
		// fingerprint collision (probability < ε).
	}
	return out
}
