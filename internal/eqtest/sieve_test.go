package eqtest

// The sieve bitmap must agree with deterministic Miller–Rabin on every
// candidate randomPrime can draw, or executions would diverge between the
// sieve and fallback paths.

import "testing"

func TestSieveMatchesMillerRabin(t *testing.T) {
	bm := primeBitmap(100_000)
	for q := uint64(0); q <= 100_000; q++ {
		got := bm[q>>6]&(1<<(q&63)) != 0
		if want := isPrime(q); got != want {
			t.Fatalf("sieve says prime(%d)=%v, Miller–Rabin says %v", q, got, want)
		}
	}
}

func TestWitnessTiersAgainstFullBattery(t *testing.T) {
	// The tiered witness sets must match the full 12-witness battery (the
	// pre-optimization behavior); spot-check a dense small range plus the
	// edges of the first tiers.
	full := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
	mr := func(n uint64, witnesses []uint64) bool {
		d := n - 1
		r := 0
		for d%2 == 0 {
			d /= 2
			r++
		}
		for _, a := range witnesses {
			x := powMod(a%n, d, n)
			if x == 1 || x == n-1 {
				continue
			}
			composite := true
			for i := 0; i < r-1; i++ {
				x = mulMod(x, x, n)
				if x == n-1 {
					composite = false
					break
				}
			}
			if composite {
				return false
			}
		}
		return true
	}
	check := func(n uint64) {
		if n < 41 { // below the first trial-division primes there is nothing to compare
			return
		}
		hasSmallFactor := false
		for _, p := range full {
			if n%p == 0 {
				hasSmallFactor = true
				break
			}
		}
		if hasSmallFactor {
			return // isPrime never reaches the witness loop
		}
		var witnesses []uint64
		for _, tier := range mrTiers {
			if n < tier.below {
				witnesses = tier.witnesses
				break
			}
		}
		if got, want := mr(n, witnesses), mr(n, full); got != want {
			t.Fatalf("witness tier disagrees with full battery at n=%d: %v vs %v", n, got, want)
		}
	}
	for n := uint64(41); n < 50_000; n++ {
		check(n)
	}
	for _, edge := range []uint64{2_045, 2_046, 2_047, 2_048, 2_049,
		1_373_651, 1_373_652, 1_373_653, 1_373_654} {
		check(edge)
	}
}
