package eqtest

// Property-based tests (testing/quick) for the §3 transfer machinery on
// randomized set pairs, complementing the table-driven cases in
// eqtest_test.go.

import (
	"testing"
	"testing/quick"

	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// setsFromFuzz decodes two token sets over [1, universe] from fuzz bytes.
func setsFromFuzz(universe int, a, b []byte) (*tokenset.Set, *tokenset.Set) {
	sa := tokenset.NewSet(universe)
	sb := tokenset.NewSet(universe)
	for i, x := range a {
		if x%3 != 0 {
			sa.Add((i*7+int(x))%universe + 1)
		}
	}
	for i, x := range b {
		if x%3 != 0 {
			sb.Add((i*11+int(x))%universe + 1)
		}
	}
	return sa, sb
}

// symmetricDifferenceMin returns the smallest token in exactly one of the
// sets (0 if none) — the token Transfer(ε) is contracted to move.
func symmetricDifferenceMin(a, b *tokenset.Set, universe int) int {
	for t := 1; t <= universe; t++ {
		if a.Has(t) != b.Has(t) {
			return t
		}
	}
	return 0
}

func TestTransferQuickProperty(t *testing.T) {
	const universe = 96
	seed := uint64(1)
	f := func(araw, braw []byte) bool {
		seed += 2
		sa, sb := setsFromFuzz(universe, araw, braw)
		wantToken := symmetricDifferenceMin(sa, sb, universe)

		beforeA := sa.Clone()
		beforeB := sb.Clone()
		c := mtm.NewConn(1, 0, 1, prand.New(seed), prand.New(seed+1), 1<<30, 1<<30)
		out := Transfer(c, sa, sb, 1e-9)

		if wantToken == 0 {
			// Equal sets: nothing may move or mutate.
			if out.Moved {
				t.Logf("moved token %d between equal sets", out.Token)
				return false
			}
			return sa.Equal(beforeA) && sb.Equal(beforeB)
		}

		// Different sets: with ε = 1e-9 the transfer succeeds w.p. ≈ 1, and
		// must move exactly the smallest symmetric-difference token to the
		// side missing it; nothing else may change.
		if !out.Moved || out.Token != wantToken {
			t.Logf("want token %d, got %+v", wantToken, out)
			return false
		}
		for tok := 1; tok <= universe; tok++ {
			wantA := beforeA.Has(tok) || tok == wantToken && beforeB.Has(tok)
			wantB := beforeB.Has(tok) || tok == wantToken && beforeA.Has(tok)
			if sa.Has(tok) != wantA || sb.Has(tok) != wantB {
				t.Logf("token %d corrupted: a %v→%v b %v→%v", tok,
					beforeA.Has(tok), sa.Has(tok), beforeB.Has(tok), sb.Has(tok))
				return false
			}
		}
		return true
	}
	count := 150
	if testing.Short() {
		count = 40 // property still exercised in -short CI, on fewer samples
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}

// TestEQTestQuickEqualAlwaysEqual: equality testing has one-sided error —
// equal sets must never be declared unequal, for any randomness.
func TestEQTestQuickEqualAlwaysEqual(t *testing.T) {
	const universe = 64
	seed := uint64(100)
	f := func(raw []byte) bool {
		seed++
		s, _ := setsFromFuzz(universe, raw, nil)
		clone := s.Clone()
		res := EQTest(prand.New(seed), s, clone, 1, universe, 3)
		return res.Equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTransferChargesWithinContract: control bits per call stay within the
// O(log²N · log(logN/ε)) contract for random inputs (using a generous
// concrete constant).
func TestTransferChargesWithinContract(t *testing.T) {
	const universe = 128
	seed := uint64(500)
	f := func(araw, braw []byte) bool {
		seed += 2
		sa, sb := setsFromFuzz(universe, araw, braw)
		c := mtm.NewConn(1, 0, 1, prand.New(seed), prand.New(seed+1), 1<<30, 1<<30)
		Transfer(c, sa, sb, 0.01)
		// log2(128) = 7; bound 64·log²N·log(logN/ε) with log(logN/ε) ≈ 10.
		const bound = 64 * 7 * 7 * 10
		if c.BitsUsed() > bound {
			t.Logf("transfer used %d bits > bound %d", c.BitsUsed(), bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
