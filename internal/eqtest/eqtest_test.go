package eqtest

import (
	"testing"
	"testing/quick"

	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

func newConn(seed uint64) *mtm.Conn {
	return mtm.NewConn(1, 0, 1, prand.New(seed), prand.New(seed+1), 1<<30, 1<<30)
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{2: true, 3: true, 5: true, 7: true, 11: true,
		13: true, 97: true, 7919: true, 2305843009213693951: true}
	composites := []uint64{0, 1, 4, 6, 9, 15, 91 /*7·13*/, 7917, 1 << 40}
	for p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 2000
	sieve := make([]bool, limit) // true = composite
	for i := 2; i*i < limit; i++ {
		if !sieve[i] {
			for j := i * i; j < limit; j += i {
				sieve[j] = true
			}
		}
	}
	for n := 2; n < limit; n++ {
		if got, want := isPrime(uint64(n)), !sieve[n]; got != want {
			t.Fatalf("isPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestRandomPrimeInRange(t *testing.T) {
	rng := prand.New(1)
	for i := 0; i < 200; i++ {
		q := randomPrime(rng, 1000)
		if q < 3 || q > 1000 || !isPrime(q) {
			t.Fatalf("randomPrime returned %d", q)
		}
	}
}

func TestEQTestEqualSetsNeverFail(t *testing.T) {
	// One-sided error: equal sets must always test equal.
	rng := prand.New(2)
	a, b := tokenset.NewSet(256), tokenset.NewSet(256)
	for _, tok := range []int{1, 7, 100, 255} {
		a.Add(tok)
		b.Add(tok)
	}
	for i := 0; i < 500; i++ {
		if r := EQTest(rng, a, b, 1, 256, 1); !r.Equal {
			t.Fatal("equal sets reported unequal")
		}
	}
}

func TestEQTestSingleTrialErrorBelowHalf(t *testing.T) {
	// Unequal sets must be detected with probability >= 1/2 per trial.
	rng := prand.New(3)
	a, b := tokenset.NewSet(256), tokenset.NewSet(256)
	a.Add(42)
	wrong := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if r := EQTest(rng, a, b, 1, 256, 1); r.Equal {
			wrong++
		}
	}
	if wrong > trials/2 {
		t.Fatalf("single-trial EQTest error rate %d/%d > 1/2", wrong, trials)
	}
}

func TestEQTestErrorDropsExponentially(t *testing.T) {
	rng := prand.New(4)
	a, b := tokenset.NewSet(128), tokenset.NewSet(128)
	a.Add(5)
	b.Add(6)
	wrong := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		if r := EQTest(rng, a, b, 1, 128, 8); r.Equal {
			wrong++
		}
	}
	// With 8 trials error ≤ 2^-8; expect ~12 misses in 3000 worst case.
	if wrong > 60 {
		t.Fatalf("8-trial EQTest error rate %d/%d far above 2^-8", wrong, trials)
	}
}

func TestEQTestRespectsRange(t *testing.T) {
	rng := prand.New(5)
	a, b := tokenset.NewSet(100), tokenset.NewSet(100)
	a.Add(90) // difference outside the queried range
	for i := 0; i < 100; i++ {
		if r := EQTest(rng, a, b, 1, 50, 4); !r.Equal {
			t.Fatal("restriction to [1,50] is equal but reported unequal")
		}
	}
}

func TestEQTestBitsAccounted(t *testing.T) {
	rng := prand.New(6)
	a, b := tokenset.NewSet(64), tokenset.NewSet(64)
	r := EQTest(rng, a, b, 1, 64, 5)
	if r.Bits <= 0 {
		t.Fatal("no bits charged")
	}
	// 5 equal trials cost exactly 5× one trial.
	one := EQTest(rng, a, b, 1, 64, 1)
	if r.Bits != 5*one.Bits {
		t.Fatalf("bits = %d, want %d", r.Bits, 5*one.Bits)
	}
}

func TestTrialsForMonotone(t *testing.T) {
	if trialsFor(1024, 0.5) >= trialsFor(1024, 1e-6) {
		t.Fatal("smaller ε must require more trials")
	}
	if trialsFor(16, 0.1) < 1 {
		t.Fatal("trials must be >= 1")
	}
	// Degenerate ε values must not panic or return nonsense.
	if trialsFor(16, 0) < 1 || trialsFor(16, 2) < 1 {
		t.Fatal("degenerate ε mishandled")
	}
}

func TestTransferMovesSmallestMissing(t *testing.T) {
	a, b := tokenset.NewSet(128), tokenset.NewSet(128)
	a.Add(10)
	a.Add(50)
	b.Add(10)
	b.Add(99)
	c := newConn(7)
	out := Transfer(c, a, b, 0.001)
	if !out.Moved || out.Token != 50 || !out.ToResponder {
		t.Fatalf("outcome = %+v, want token 50 to responder", out)
	}
	if !b.Has(50) {
		t.Fatal("responder did not receive token 50")
	}
	if c.TokensUsed() != 1 {
		t.Fatalf("tokens charged = %d", c.TokensUsed())
	}
}

func TestTransferDirectionResponderToInitiator(t *testing.T) {
	a, b := tokenset.NewSet(128), tokenset.NewSet(128)
	b.Add(3)
	out := Transfer(newConn(8), a, b, 0.001)
	if !out.Moved || out.Token != 3 || out.ToResponder {
		t.Fatalf("outcome = %+v, want token 3 to initiator", out)
	}
	if !a.Has(3) {
		t.Fatal("initiator did not receive token 3")
	}
}

func TestTransferEqualSetsNoMove(t *testing.T) {
	a, b := tokenset.NewSet(64), tokenset.NewSet(64)
	for _, tok := range []int{2, 30, 64} {
		a.Add(tok)
		b.Add(tok)
	}
	out := Transfer(newConn(9), a, b, 0.001)
	if out.Moved {
		t.Fatalf("moved token %d between equal sets", out.Token)
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatal("sets changed")
	}
}

func TestTransferReliabilityAndCorrectness(t *testing.T) {
	// Over many random unequal pairs, Transfer with ε = 0.01 must identify
	// the smallest symmetric-difference token almost always.
	rng := prand.New(10)
	const n = 256
	fails := 0
	runs := 300
	if testing.Short() {
		runs = 60 // keep the statistical check but shrink the sample in -short CI
	}
	for i := 0; i < runs; i++ {
		a, b := tokenset.NewSet(n), tokenset.NewSet(n)
		for j := 0; j < 20; j++ {
			tok := 1 + rng.Intn(n)
			a.Add(tok)
			if rng.Bool() {
				b.Add(tok)
			}
		}
		b.Add(1 + rng.Intn(n))
		want, ok := a.SmallestMissingFrom(b)
		if !ok {
			continue
		}
		out := Transfer(newConn(uint64(1000+i)), a, b, 0.01)
		if !out.Moved || out.Token != want {
			fails++
		}
	}
	if fails > runs/20 {
		t.Fatalf("Transfer failed %d/%d times with ε=0.01", fails, runs)
	}
}

func TestTransferBitComplexityScaling(t *testing.T) {
	// Bits per call must be O(log²N · log(logN/ε)): quadruple-check that
	// doubling N adds roughly (logN)·logfactor bits, not a multiplicative
	// blowup — i.e. bits(2N)/bits(N) stays well under 2 for large N.
	measure := func(n int) int {
		a, b := tokenset.NewSet(n), tokenset.NewSet(n)
		a.Add(n / 2)
		total := 0
		for i := 0; i < 20; i++ {
			out := Transfer(newConn(uint64(i)), a, b.Clone(), 0.01)
			total += out.Bits
		}
		return total / 20
	}
	b256, b4096 := measure(256), measure(4096)
	if b4096 <= b256 {
		t.Fatalf("bits did not grow with N: %d vs %d", b256, b4096)
	}
	// log²(4096)/log²(256) = (12/8)² = 2.25; allow slack to 4.
	if float64(b4096)/float64(b256) > 4 {
		t.Fatalf("bit growth %d→%d superpolylogarithmic", b256, b4096)
	}
}

func TestTransferChargesConn(t *testing.T) {
	a, b := tokenset.NewSet(64), tokenset.NewSet(64)
	a.Add(7)
	c := newConn(11)
	out := Transfer(c, a, b, 0.01)
	if c.BitsUsed() < out.Bits {
		t.Fatalf("conn charged %d bits < outcome bits %d", c.BitsUsed(), out.Bits)
	}
}

func TestTransferNeverInventsTokens(t *testing.T) {
	// Property: after Transfer, both sets are supersets of their originals
	// and the union is unchanged.
	f := func(seed uint64) bool {
		rng := prand.New(seed)
		const n = 97
		a, b := tokenset.NewSet(n), tokenset.NewSet(n)
		for j := 0; j < 15; j++ {
			if rng.Bool() {
				a.Add(1 + rng.Intn(n))
			}
			if rng.Bool() {
				b.Add(1 + rng.Intn(n))
			}
		}
		beforeA, beforeB := a.Clone(), b.Clone()
		Transfer(newConn(seed), a, b, 0.05)
		for tok := 1; tok <= n; tok++ {
			if beforeA.Has(tok) && !a.Has(tok) {
				return false // lost a token
			}
			if beforeB.Has(tok) && !b.Has(tok) {
				return false
			}
			had := beforeA.Has(tok) || beforeB.Has(tok)
			has := a.Has(tok) || b.Has(tok)
			if had != has {
				return false // invented or destroyed union member
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
