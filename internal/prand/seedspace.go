package prand

// SeedSpace models the multiset R′ of shared bit strings proved to exist by
// the paper's generalization of Newman's theorem (Lemma 5.5). R′ contains
// N^Θ(1) strings; a node refers to its chosen string by its index ("seed"),
// which fits in O(log N) bits and therefore in a leader-election payload.
//
// The paper's R′ is existential. Following the substitution documented in
// DESIGN.md §2.3, we instantiate R′ constructively as the family of keyed
// PRF streams indexed by seeds in [0, N³): a poly(N)-size multiset matching
// |R′| = N^Θ(1), each of whose members behaves like a uniform shared string
// for the statistics the algorithms consume.
type SeedSpace struct {
	size uint64
}

// NewSeedSpace returns the seed space R′ for a network-size upper bound N.
// Its size is min(N³, 2⁶²), poly(N) as required by Lemma 5.5.
func NewSeedSpace(n int) *SeedSpace {
	if n < 2 {
		n = 2
	}
	un := uint64(n)
	size := un * un * un
	if size/un/un != un || size >= 1<<62 { // overflow guard
		size = 1 << 62
	}
	return &SeedSpace{size: size}
}

// Size returns |R′|.
func (ss *SeedSpace) Size() uint64 { return ss.size }

// Sample draws a uniform seed index from R′ using the caller's private
// randomness, as each node does at the start of SimSharedBit (§5.2).
func (ss *SeedSpace) Sample(rng *RNG) uint64 {
	if ss.size == 0 {
		return 0
	}
	// Rejection sampling for uniformity over [0, size).
	mask := ss.size - 1
	if ss.size&mask == 0 { // power of two
		return rng.Uint64() & mask
	}
	for {
		v := rng.Uint64() % (1 << 62)
		if v < (1<<62)/ss.size*ss.size {
			return v % ss.size
		}
	}
}

// String materializes the shared string identified by seed index idx.
func (ss *SeedSpace) String(idx uint64) *SharedString {
	// Mix the index so nearby indices yield unrelated streams.
	return NewSharedString(Mix64(idx ^ 0x5851_f42d_4c95_7f2d))
}

// SeedBits returns the number of bits needed to describe a seed index —
// the payload size a leader must disseminate. It is O(log N).
func (ss *SeedSpace) SeedBits() int {
	b := 0
	for v := ss.size - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
