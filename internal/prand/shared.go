package prand

import "math/bits"

// SharedString is the repository's stand-in for the shared random string r̂
// used by the SharedBit algorithm (§5.1). The paper partitions r̂ into cN²
// groups (one per round) of N bundles (one per token/node id) of ⌈log N⌉+1
// bits. Materializing the Ω(N³ log N) bits is pointless in a simulation, so
// we extract each bundle lazily from a keyed pseudorandom function
// bit(seed, group, bundle, idx); the quantities the analysis relies on —
// uniformity and independence across (group, bundle) pairs — are preserved.
//
// When the seed is drawn from SeedSpace (the poly(N)-size multiset R′ of
// §5.2), a SharedString doubles as the Newman-style simulated shared
// randomness disseminated by the elected leader in SimSharedBit.
type SharedString struct {
	seed uint64
}

// NewSharedString returns the shared string identified by seed.
func NewSharedString(seed uint64) *SharedString {
	return &SharedString{seed: seed}
}

// Seed returns the identifying seed (the "R′ index" a leader disseminates).
func (s *SharedString) Seed() uint64 { return s.seed }

// bundleWord returns 64 pseudorandom bits for (group, bundle, word).
func (s *SharedString) bundleWord(group, bundle, word int) uint64 {
	x := s.seed
	x = Mix64(x ^ 0xa076_1d64_78bd_642f ^ uint64(group))
	x = Mix64(x ^ 0xe703_7ed1_a0b4_28db ^ uint64(bundle))
	x = Mix64(x ^ uint64(word))
	return x
}

// TokenBit returns t.bit for token t in round group: the first bit of
// bundle t of group group (§5.1, advertisement construction).
func (s *SharedString) TokenBit(group, token int) int {
	return int(s.bundleWord(group, token, 0) & 1)
}

// TokenBits returns the first b bits (1 ≤ b ≤ 64) of token t's bundle in
// the given group, for the b > 1 generalization of the SharedBit
// advertisement (the paper's remark that raising the tag length beyond 1
// buys at most logarithmic factors; experiment E15).
func (s *SharedString) TokenBits(group, token, b int) uint64 {
	if b < 1 || b > 64 {
		panic("prand: TokenBits width outside [1, 64]")
	}
	if b == 64 {
		return s.bundleWord(group, token, 0)
	}
	return s.bundleWord(group, token, 0) & ((uint64(1) << uint(b)) - 1)
}

// UniformIndex uses the bits of the bundle belonging to id in group to pick
// a uniform index in [0, n), mirroring the paper's use of bundle bits
// 2..⌈log N⌉+1 for the proposal-target choice. A fresh word stream keyed by
// (group, id) backs the rejection sampling.
func (s *SharedString) UniformIndex(group, id, n int) int {
	if n <= 0 {
		panic("prand: UniformIndex with non-positive n")
	}
	if n == 1 {
		return 0
	}
	// Rejection-sample from successive pseudorandom words.
	width := bits.Len(uint(n - 1))
	mask := (uint64(1) << uint(width)) - 1
	for word := 1; ; word++ {
		w := s.bundleWord(group, id, word)
		for shift := 0; shift+width <= 64; shift += width {
			v := (w >> uint(shift)) & mask
			if v < uint64(n) {
				return int(v)
			}
		}
	}
}
