package prand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical words", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-Seed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d: count %d deviates too far from %f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(9)
	trues := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < trials/2-1000 || trues > trials/2+1000 {
		t.Fatalf("Bool heavily biased: %d/%d true", trues, trials)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMix64Injectivity(t *testing.T) {
	// SplitMix64's finalizer is a bijection; sample-check for collisions.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, i, h)
		}
		seen[h] = i
	}
}

func TestSharedStringTokenBitDeterministic(t *testing.T) {
	s1, s2 := NewSharedString(99), NewSharedString(99)
	for g := 0; g < 20; g++ {
		for tok := 1; tok <= 20; tok++ {
			if s1.TokenBit(g, tok) != s2.TokenBit(g, tok) {
				t.Fatalf("TokenBit(%d,%d) not deterministic", g, tok)
			}
		}
	}
}

func TestSharedStringTokenBitBalanced(t *testing.T) {
	s := NewSharedString(1234)
	ones := 0
	const trials = 50000
	for g := 0; g < trials/50; g++ {
		for tok := 1; tok <= 50; tok++ {
			ones += s.TokenBit(g, tok)
		}
	}
	if ones < trials/2-1500 || ones > trials/2+1500 {
		t.Fatalf("TokenBit biased: %d/%d ones", ones, trials)
	}
}

func TestSharedStringBitsIndependentAcrossGroups(t *testing.T) {
	// The same token must get a fresh bit each group (round): adjacent
	// groups should agree about half the time.
	s := NewSharedString(7)
	agree := 0
	const trials = 20000
	for g := 0; g < trials; g++ {
		if s.TokenBit(g, 5) == s.TokenBit(g+1, 5) {
			agree++
		}
	}
	if agree < trials/2-1000 || agree > trials/2+1000 {
		t.Fatalf("adjacent-group bits correlated: %d/%d agreement", agree, trials)
	}
}

func TestUniformIndexRange(t *testing.T) {
	s := NewSharedString(21)
	for _, n := range []int{1, 2, 3, 5, 17, 100} {
		for g := 0; g < 100; g++ {
			v := s.UniformIndex(g, g%7, n)
			if v < 0 || v >= n {
				t.Fatalf("UniformIndex(n=%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUniformIndexUniform(t *testing.T) {
	s := NewSharedString(8)
	const n, trials = 7, 70000
	counts := make([]int, n)
	for g := 0; g < trials; g++ {
		counts[s.UniformIndex(g, 3, n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d: count %d vs expected %f", v, c, want)
		}
	}
}

func TestSeedSpaceSize(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{2, 8}, {10, 1000}, {100, 1000000}, {1, 8},
	}
	for _, c := range cases {
		if got := NewSeedSpace(c.n).Size(); got != c.want {
			t.Errorf("NewSeedSpace(%d).Size() = %d, want %d", c.n, got, c.want)
		}
	}
	// Huge N must not overflow.
	if got := NewSeedSpace(1 << 30).Size(); got != 1<<62 {
		t.Errorf("overflow guard: got %d", got)
	}
}

func TestSeedSpaceSampleInRange(t *testing.T) {
	ss := NewSeedSpace(10)
	rng := New(77)
	for i := 0; i < 10000; i++ {
		if v := ss.Sample(rng); v >= ss.Size() {
			t.Fatalf("Sample() = %d >= size %d", v, ss.Size())
		}
	}
}

func TestSeedSpaceSeedBits(t *testing.T) {
	ss := NewSeedSpace(10) // size 1000 -> 10 bits
	if got := ss.SeedBits(); got != 10 {
		t.Errorf("SeedBits() = %d, want 10", got)
	}
}

func TestSeedSpaceStringsDiffer(t *testing.T) {
	ss := NewSeedSpace(100)
	a, b := ss.String(1), ss.String(2)
	same := 0
	for g := 0; g < 64; g++ {
		if a.TokenBit(g, 1) == b.TokenBit(g, 1) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("adjacent R' seeds yield identical bit streams")
	}
}

func TestPermProperty(t *testing.T) {
	// Property: sum of Perm(n) equals n(n-1)/2 for all n.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
