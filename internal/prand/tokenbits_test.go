package prand

import "testing"

func TestTokenBitsLowBitMatchesTokenBit(t *testing.T) {
	s := NewSharedString(42)
	for group := 1; group <= 50; group++ {
		for token := 1; token <= 50; token++ {
			for _, b := range []int{1, 4, 17, 64} {
				got := int(s.TokenBits(group, token, b) & 1)
				if want := s.TokenBit(group, token); got != want {
					t.Fatalf("TokenBits(%d,%d,%d) low bit %d != TokenBit %d",
						group, token, b, got, want)
				}
			}
		}
	}
}

func TestTokenBitsWidthMask(t *testing.T) {
	s := NewSharedString(7)
	for _, b := range []int{1, 2, 8, 33, 63} {
		for i := 0; i < 200; i++ {
			v := s.TokenBits(i+1, 2*i+1, b)
			if v>>uint(b) != 0 {
				t.Fatalf("TokenBits width %d leaked high bits: %x", b, v)
			}
		}
	}
}

func TestTokenBitsDeterministicAndSeedSensitive(t *testing.T) {
	a := NewSharedString(1)
	b := NewSharedString(1)
	c := NewSharedString(2)
	same, diff := 0, 0
	for i := 1; i <= 300; i++ {
		va := a.TokenBits(i, i*3+1, 16)
		if vb := b.TokenBits(i, i*3+1, 16); va != vb {
			t.Fatalf("same seed diverged at %d", i)
		}
		if vc := c.TokenBits(i, i*3+1, 16); va == vc {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical 16-bit streams")
	}
	_ = same
}

func TestTokenBitsBalancedPerPosition(t *testing.T) {
	s := NewSharedString(99)
	const trials = 4000
	const width = 8
	counts := make([]int, width)
	for i := 0; i < trials; i++ {
		v := s.TokenBits(i+1, (i%37)+1, width)
		for j := 0; j < width; j++ {
			if v&(1<<uint(j)) != 0 {
				counts[j]++
			}
		}
	}
	for j, c := range counts {
		frac := float64(c) / trials
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("bit %d set in %.3f of samples, want ≈ 0.5", j, frac)
		}
	}
}

func TestTokenBitsPanicsOutsideRange(t *testing.T) {
	s := NewSharedString(3)
	for _, b := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TokenBits(b=%d) should panic", b)
				}
			}()
			s.TokenBits(1, 1, b)
		}()
	}
}

func TestTokenBitsFullWidth(t *testing.T) {
	s := NewSharedString(11)
	seen := make(map[uint64]bool)
	for i := 1; i <= 100; i++ {
		seen[s.TokenBits(i, i, 64)] = true
	}
	if len(seen) < 100 {
		t.Errorf("64-bit extraction produced only %d distinct values in 100 draws", len(seen))
	}
}
