// Package prand provides the deterministic randomness substrate used by the
// gossip algorithms: a fast seedable PRNG, a keyed pseudorandom bit function
// standing in for the shared random string r̂ of SharedBit (§5.1 of the
// paper), and the poly(N)-size seed multiset R′ whose existence is proved by
// the paper's generalization of Newman's theorem (§5.2).
//
// All randomness in the repository flows from this package so that entire
// simulations are reproducible from a single 64-bit run seed.
package prand

import "math/bits"

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 passes BigCrush and is the standard seeder for xoshiro.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one SplitMix64 round. It is used to derive
// independent stream keys from (seed, label) pairs.
func Mix64(x uint64) uint64 {
	s := x
	return splitMix64(&s)
}

// StreamSeed splits the stream identified by base into independent
// substreams indexed by stream: two SplitMix64 rounds over an odd-multiplier
// spread of the index, so that adjacent indices (the common case for sweep
// grids) land in unrelated regions of the seed space. It is the primitive
// the sweep runner uses to give every (point, trial) grid cell its own
// deterministic seed, independent of worker count and completion order.
func StreamSeed(base, stream uint64) uint64 {
	return Mix64(base ^ Mix64(stream*0x9e3779b97f4a7c15+0x6a09e667f3bcc909))
}

// RNG is a small, fast, seedable PRNG (xoshiro256**). The zero value is not
// valid; construct with New. RNG is not safe for concurrent use; the engine
// gives each node its own RNG.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via SplitMix64 expansion.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 of any seed
	// cannot produce four zero outputs in a row, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// State returns the generator's full internal state, for checkpointing.
// Restore with SetState; the stream continues exactly where it left off.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a snapshot taken
// by State. The all-zero state is invalid for xoshiro and is rejected by
// reseeding from a fixed constant (State never returns it).
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		r.Seed(0x9e3779b97f4a7c15)
		return
	}
	r.s = s
}

// Uint64 returns the next 64 uniform pseudorandom bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand; callers in this repository always pass validated n.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("prand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
