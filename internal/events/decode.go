package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// wireEvent mirrors the JSONL field names AppendJSON emits. Decoding
// goes through it so the Event struct itself stays tag-free and the wire
// names have exactly two occurrences in the codebase: the encoder and
// this struct.
type wireEvent struct {
	V              int    `json:"v"`
	Type           string `json:"type"`
	Round          int    `json:"round"`
	Potential      int    `json:"potential"`
	Connections    int64  `json:"connections"`
	Proposals      int64  `json:"proposals"`
	ControlBits    int64  `json:"control_bits"`
	TokensMoved    int64  `json:"tokens_moved"`
	EdgesAdded     int    `json:"edges_added"`
	EdgesRemoved   int    `json:"edges_removed"`
	Done           bool   `json:"done"`
	N              int    `json:"n"`
	K              int    `json:"k"`
	Algorithm      string `json:"algorithm"`
	Topology       string `json:"topology"`
	Solved         bool   `json:"solved"`
	Epoch          int    `json:"epoch"`
	RoundNanos     int64  `json:"round_ns"`
	ChurnNanos     int64  `json:"churn_ns"`
	ProposalNanos  int64  `json:"proposal_ns"`
	ExchangeNanos  int64  `json:"exchange_ns"`
	ReductionNanos int64  `json:"reduction_ns"`
	Workers        int    `json:"workers"`
	ImbalanceMilli int64  `json:"imbalance_milli"`
	BarrierNanos   int64  `json:"barrier_ns"`
	Health         string `json:"health"`
	WriteNanos     int64  `json:"write_ns"`
}

// UnmarshalEvent decodes one JSONL line produced by AppendJSON (this
// schema version or any earlier one — v1 files written before the
// round_profile event decode unchanged). Unknown event types from future
// schemas are rejected; unknown fields are ignored, matching the
// "adding fields is compatible" rule the schema constant documents.
func UnmarshalEvent(line []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		return Event{}, fmt.Errorf("events: malformed event line: %w", err)
	}
	if w.V < 1 || w.V > Schema {
		return Event{}, fmt.Errorf("events: unsupported schema version %d (reader supports 1..%d)", w.V, Schema)
	}
	typ, err := ParseType(w.Type)
	if err != nil {
		return Event{}, err
	}
	return Event{
		Type:           typ,
		Round:          w.Round,
		Potential:      w.Potential,
		Connections:    w.Connections,
		Proposals:      w.Proposals,
		ControlBits:    w.ControlBits,
		TokensMoved:    w.TokensMoved,
		EdgesAdded:     w.EdgesAdded,
		EdgesRemoved:   w.EdgesRemoved,
		Done:           w.Done,
		N:              w.N,
		K:              w.K,
		Algorithm:      w.Algorithm,
		Topology:       w.Topology,
		Solved:         w.Solved,
		Epoch:          w.Epoch,
		RoundNanos:     w.RoundNanos,
		ChurnNanos:     w.ChurnNanos,
		ProposalNanos:  w.ProposalNanos,
		ExchangeNanos:  w.ExchangeNanos,
		ReductionNanos: w.ReductionNanos,
		Workers:        w.Workers,
		ImbalanceMilli: w.ImbalanceMilli,
		BarrierNanos:   w.BarrierNanos,
		Health:         w.Health,
		WriteNanos:     w.WriteNanos,
	}, nil
}

// ReadAll decodes a whole JSONL event stream (a JSONLSink file), in
// order, skipping blank lines. Errors carry the 1-based line number.
// cmd/runreport and cmd/traceview share it as their ingest path.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := UnmarshalEvent(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("events: reading stream: %w", err)
	}
	return out, nil
}
