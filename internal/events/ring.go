package events

import "sync"

// Ring is a fixed-capacity in-memory event store with a query API: the
// most recent events are retained, the oldest are evicted (and counted)
// once the buffer is full. Attach it to a Bus as a synchronous
// subscriber — storing an event is one mutex-guarded struct copy, so it
// is lossless and cheap — then query it at any time with Events, even
// while the simulation is still running. All methods are safe for
// concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest retained event
	count   int
	evicted int64
}

// NewRing returns a ring retaining up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Attach subscribes the ring to bus synchronously, recording every
// event matching f. The returned cancel function detaches it.
func (r *Ring) Attach(bus *Bus, f Filter) (cancel func()) {
	return bus.SubscribeSync(f, r.Add)
}

// Add records one event, evicting the oldest when full.
func (r *Ring) Add(ev Event) {
	r.mu.Lock()
	if r.count == len(r.buf) {
		r.buf[r.head] = ev
		r.head = (r.head + 1) % len(r.buf)
		r.evicted++
	} else {
		r.buf[(r.head+r.count)%len(r.buf)] = ev
		r.count++
	}
	r.mu.Unlock()
}

// Events returns the retained events matching f, oldest first. The
// result is a fresh slice; the ring keeps recording while and after the
// call.
func (r *Ring) Events(f Filter) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for i := 0; i < r.count; i++ {
		ev := r.buf[(r.head+i)%len(r.buf)]
		if f.Match(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Evicted returns how many events were overwritten because the ring was
// full.
func (r *Ring) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}
