package events

import (
	"strings"
	"testing"
)

// TestUnmarshalEventRoundTrip pushes every event type through
// AppendJSON → UnmarshalEvent and requires the struct to survive intact.
func TestUnmarshalEventRoundTrip(t *testing.T) {
	evs := []Event{
		{Type: TypeSessionStart, Round: 0, Potential: 56, N: 8, K: 8,
			Algorithm: "sharedbit", Topology: `regular(d=4, τ=1) "quoted\`},
		{Type: TypeCheckpointResumed, Round: 40, Potential: 31},
		{Type: TypeChurnApplied, Round: 41, EdgesAdded: 3, EdgesRemoved: 2},
		{Type: TypeAdversaryEpoch, Round: 41, Epoch: 5},
		{Type: TypeRoundCompleted, Round: 41, Potential: 30, Connections: 4,
			Proposals: 6, ControlBits: 12, TokensMoved: 1, EdgesAdded: 3,
			EdgesRemoved: 2, Done: true},
		{Type: TypeCheckpointWritten, Round: 41, Potential: 30, WriteNanos: 12345},
		{Type: TypeSessionCancel, Round: 41, Potential: 30},
		{Type: TypeRoundProfile, Round: 41, RoundNanos: 52000, ChurnNanos: 2000,
			ProposalNanos: 30000, ExchangeNanos: 15000, ReductionNanos: 4000,
			Workers: 4, ImbalanceMilli: 1250, BarrierNanos: 9000, Health: "converging"},
		{Type: TypeSessionEnd, Round: 77, Potential: 0, Solved: true,
			Connections: 300, Proposals: 450, ControlBits: 900, TokensMoved: 56},
	}
	for _, want := range evs {
		line := want.AppendJSON(nil)
		got, err := UnmarshalEvent(line)
		if err != nil {
			t.Fatalf("%v: %v\nline: %s", want.Type, err, line)
		}
		if got != want {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

// TestUnmarshalEventAcceptsV1 pins the reader's backward-compatibility
// promise: schema-1 lines (no timing fields) decode without error.
func TestUnmarshalEventAcceptsV1(t *testing.T) {
	lines := []string{
		`{"v":1,"type":"session_start","round":0,"potential":56,"n":8,"k":8,"algorithm":"sharedbit","topology":"ring"}`,
		`{"v":1,"type":"checkpoint_written","round":41,"potential":30}`,
		`{"v":1,"type":"round_completed","round":41,"potential":30,"connections":4,"proposals":6,"control_bits":12,"tokens_moved":1,"edges_added":0,"edges_removed":0,"done":false}`,
	}
	for _, line := range lines {
		ev, err := UnmarshalEvent([]byte(line))
		if err != nil {
			t.Fatalf("v1 line rejected: %v\n%s", err, line)
		}
		if ev.WriteNanos != 0 || ev.RoundNanos != 0 {
			t.Fatalf("v1 line grew timing data: %+v", ev)
		}
	}
}

func TestUnmarshalEventRejects(t *testing.T) {
	cases := []string{
		`{"v":4,"type":"round_completed","round":1}`, // future schema
		`{"v":0,"type":"round_completed","round":1}`, // below range
		`{"v":3,"type":"warp_drive","round":1}`,      // unknown type
		`{not json`,
	}
	for _, line := range cases {
		if _, err := UnmarshalEvent([]byte(line)); err == nil {
			t.Errorf("accepted %s", line)
		}
	}
}

func TestReadAll(t *testing.T) {
	var sb strings.Builder
	want := []Event{
		{Type: TypeSessionStart, N: 4, K: 2, Potential: 6, Algorithm: "a", Topology: "t"},
		{Type: TypeRoundCompleted, Round: 1, Potential: 3},
		{Type: TypeSessionEnd, Round: 1, Potential: 3},
	}
	for _, ev := range want {
		sb.Write(ev.AppendJSON(nil))
		sb.WriteByte('\n')
	}
	sb.WriteString("\n") // blank lines are skipped
	got, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ReadAll returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}

	_, err = ReadAll(strings.NewReader("{\"v\":2,\"type\":\"session_end\",\"round\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ReadAll error = %v, want line-2 failure", err)
	}
}
