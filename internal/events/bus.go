package events

import (
	"sync"
	"sync/atomic"
)

// Bus is a non-blocking publish/subscribe hub for session events. One
// Bus watches one simulation; the session layer publishes, sinks and
// user code subscribe. All methods are safe for concurrent use.
//
// Publish never blocks and never allocates: with no subscribers it is a
// single atomic load, and with subscribers each delivery either copies
// the event into a bounded channel (asynchronous), runs a handler
// inline (synchronous), or drops and counts (full queue). See the
// package documentation for the two delivery regimes.
type Bus struct {
	active  atomic.Int32 // subscriber count, read lock-free by Publish
	dropped atomic.Int64 // drops summed over all subscribers, ever

	mu     sync.Mutex
	nextID uint64
	syncs  []syncSub
	subs   []*Subscription
}

type syncSub struct {
	id     uint64
	filter Filter
	fn     func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Publish delivers ev to every matching subscriber. With none attached
// (or a nil bus) it returns immediately — this is the hot-path case the
// zero-alloc contract pins. It never blocks: an asynchronous subscriber
// whose queue is full loses the event to its drop counter instead.
func (b *Bus) Publish(ev Event) {
	if b == nil || b.active.Load() == 0 {
		return
	}
	b.publish(ev)
}

func (b *Bus) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.syncs {
		if b.syncs[i].filter.Match(ev) {
			b.syncs[i].fn(ev)
		}
	}
	for _, s := range b.subs {
		if !s.filter.Match(ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// Subscribe registers an asynchronous subscriber: events matching f are
// copied into a bounded queue of the given capacity (minimum 1) and
// read from Subscription.Events. A subscriber that falls behind drops
// events (counted on Subscription.Dropped) rather than stalling the
// publisher. Close the subscription when done.
func (b *Bus) Subscribe(f Filter, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{bus: b, filter: f, ch: make(chan Event, buffer)}
	b.mu.Lock()
	b.nextID++
	s.id = b.nextID
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	b.active.Add(1)
	return s
}

// SubscribeSync registers a synchronous subscriber: fn runs inline on
// the publishing goroutine for every event matching f, in registration
// order, and sees every matching event (no queue, no drops). Handlers
// must be fast and must not call back into the Bus. The returned cancel
// function detaches the subscriber; it is idempotent.
func (b *Bus) SubscribeSync(f Filter, fn func(Event)) (cancel func()) {
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.syncs = append(b.syncs, syncSub{id: id, filter: f, fn: fn})
	b.mu.Unlock()
	b.active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			for i := range b.syncs {
				if b.syncs[i].id == id {
					b.syncs = append(b.syncs[:i], b.syncs[i+1:]...)
					break
				}
			}
			b.mu.Unlock()
			b.active.Add(-1)
		})
	}
}

// Subscribers returns the number of currently attached subscribers,
// synchronous and asynchronous.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return int(b.active.Load())
}

// Dropped returns the total number of events dropped across every
// subscriber this bus has ever had, including closed ones. The metrics
// exporter surfaces it as mobilegossip_events_dropped_total.
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Subscription is one asynchronous subscriber's handle: a bounded event
// queue plus its drop counter.
type Subscription struct {
	bus     *Bus
	id      uint64
	filter  Filter
	ch      chan Event
	dropped atomic.Int64
}

// Events returns the subscription's receive channel. It is closed by
// Close, so ranging over it terminates once the subscription ends.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many matching events were lost because the queue
// was full when they were published.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel; pending
// events remain readable until drained. Closing twice is a no-op.
func (s *Subscription) Close() {
	b := s.bus
	b.mu.Lock()
	found := false
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			found = true
			break
		}
	}
	if found {
		close(s.ch)
	}
	b.mu.Unlock()
	if found {
		b.active.Add(-1)
	}
}
