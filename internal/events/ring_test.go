package events

import "testing"

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", r.Cap())
	}
	for round := 1; round <= 5; round++ {
		r.Add(Event{Type: TypeRoundCompleted, Round: round})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Evicted() != 2 {
		t.Fatalf("Evicted = %d, want 2", r.Evicted())
	}
	got := r.Events(Filter{})
	if len(got) != 3 || got[0].Round != 3 || got[2].Round != 5 {
		t.Fatalf("retained rounds %v, want oldest-first 3..5", got)
	}
}

func TestRingFilteredQuery(t *testing.T) {
	b := NewBus()
	r := NewRing(16)
	detach := r.Attach(b, Filter{})
	defer detach()

	for round := 1; round <= 6; round++ {
		if round%2 == 0 {
			b.Publish(Event{Type: TypeChurnApplied, Round: round, EdgesAdded: round})
		}
		b.Publish(Event{Type: TypeRoundCompleted, Round: round})
	}

	churn := r.Events(Filter{Types: []Type{TypeChurnApplied}})
	if len(churn) != 3 {
		t.Fatalf("churn query returned %d events, want 3", len(churn))
	}
	window := r.Events(Filter{Types: []Type{TypeRoundCompleted}, MinRound: 2, MaxRound: 4})
	if len(window) != 3 || window[0].Round != 2 || window[2].Round != 4 {
		t.Fatalf("window query returned %v, want rounds 2..4", window)
	}
	// Queries return a fresh slice: the ring keeps recording.
	b.Publish(Event{Type: TypeRoundCompleted, Round: 7})
	if len(window) != 3 {
		t.Fatal("earlier query result mutated by later publish")
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamped minimum 1", r.Cap())
	}
	r.Add(Event{Type: TypeRoundCompleted, Round: 1})
	r.Add(Event{Type: TypeRoundCompleted, Round: 2})
	got := r.Events(Filter{})
	if len(got) != 1 || got[0].Round != 2 {
		t.Fatalf("retained %v, want just round 2", got)
	}
}
