package events_test

import (
	"fmt"

	"mobilegossip/internal/events"
)

// Subscribe with a filter: only round_completed events inside a round
// window reach the bounded queue; everything else passes the subscriber
// by without blocking the publisher.
func ExampleBus_Subscribe() {
	bus := events.NewBus()
	sub := bus.Subscribe(events.Filter{
		Types:    []events.Type{events.TypeRoundCompleted},
		MinRound: 2,
	}, 16)
	defer sub.Close()

	bus.Publish(events.Event{Type: events.TypeSessionStart, N: 8, K: 4})
	for round := 1; round <= 3; round++ {
		bus.Publish(events.Event{
			Type: events.TypeRoundCompleted, Round: round, Potential: 10 - round,
		})
	}

	for len(sub.Events()) > 0 {
		ev := <-sub.Events()
		fmt.Printf("%s round=%d φ=%d\n", ev.Type, ev.Round, ev.Potential)
	}
	// Output:
	// round_completed round=2 φ=8
	// round_completed round=3 φ=7
}

// A Ring retains the most recent events in memory and answers filtered
// queries while recording continues — the query API behind "what just
// happened" tooling.
func ExampleRing() {
	bus := events.NewBus()
	ring := events.NewRing(128)
	detach := ring.Attach(bus, events.Filter{})
	defer detach()

	for round := 1; round <= 4; round++ {
		if round == 3 {
			bus.Publish(events.Event{
				Type: events.TypeChurnApplied, Round: round, EdgesAdded: 2, EdgesRemoved: 1,
			})
		}
		bus.Publish(events.Event{Type: events.TypeRoundCompleted, Round: round})
	}

	churn := ring.Events(events.Filter{Types: []events.Type{events.TypeChurnApplied}})
	fmt.Println("recorded:", ring.Len())
	for _, ev := range churn {
		fmt.Printf("churn at round %d: +%d/-%d edges\n", ev.Round, ev.EdgesAdded, ev.EdgesRemoved)
	}
	// Output:
	// recorded: 5
	// churn at round 3: +2/-1 edges
}
