package events

import (
	"bufio"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestJSONLSinkGolden pins the wire format line by line: one schema-
// versioned JSON object per event, only the fields meaningful for the
// type. Changing the encoding must change these strings — that is the
// compatibility contract of DESIGN.md §12.
func TestJSONLSinkGolden(t *testing.T) {
	b := NewBus()
	var out strings.Builder
	sink := NewJSONLSink(b, &out, Filter{}, 0)

	b.Publish(Event{Type: TypeSessionStart, Round: 0, Potential: 56, N: 8, K: 8,
		Algorithm: "sharedbit", Topology: "regular(d=4, τ=1)"})
	b.Publish(Event{Type: TypeCheckpointResumed, Round: 40, Potential: 31})
	b.Publish(Event{Type: TypeChurnApplied, Round: 41, EdgesAdded: 3, EdgesRemoved: 2})
	b.Publish(Event{Type: TypeAdversaryEpoch, Round: 41, Epoch: 5})
	b.Publish(Event{Type: TypeTopologyRebound, Round: 41, Potential: 30,
		Topology: "group(g=3, a=0.90, v=0.020)τ=1"})
	b.Publish(Event{Type: TypeRoundCompleted, Round: 41, Potential: 30, Connections: 4,
		Proposals: 6, ControlBits: 12, TokensMoved: 1, EdgesAdded: 3, EdgesRemoved: 2})
	b.Publish(Event{Type: TypeCheckpointWritten, Round: 41, Potential: 30})
	b.Publish(Event{Type: TypeSessionCancel, Round: 41, Potential: 30})
	b.Publish(Event{Type: TypeRoundProfile, Round: 41, RoundNanos: 52000,
		ChurnNanos: 2000, ProposalNanos: 30000, ExchangeNanos: 15000, ReductionNanos: 4000,
		Workers: 4, ImbalanceMilli: 1250, BarrierNanos: 9000, Health: "converging"})
	b.Publish(Event{Type: TypeSessionEnd, Round: 77, Potential: 0, Solved: true,
		Connections: 300, Proposals: 450, ControlBits: 900, TokensMoved: 56})

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`{"v":3,"type":"session_start","round":0,"potential":56,"n":8,"k":8,"algorithm":"sharedbit","topology":"regular(d=4, τ=1)"}`,
		`{"v":3,"type":"checkpoint_resumed","round":40,"potential":31}`,
		`{"v":3,"type":"churn_applied","round":41,"edges_added":3,"edges_removed":2}`,
		`{"v":3,"type":"adversary_epoch","round":41,"epoch":5}`,
		`{"v":3,"type":"topology_rebound","round":41,"potential":30,"topology":"group(g=3, a=0.90, v=0.020)τ=1"}`,
		`{"v":3,"type":"round_completed","round":41,"potential":30,"connections":4,"proposals":6,"control_bits":12,"tokens_moved":1,"edges_added":3,"edges_removed":2,"done":false}`,
		`{"v":3,"type":"checkpoint_written","round":41,"potential":30,"write_ns":0}`,
		`{"v":3,"type":"session_cancel","round":41,"potential":30}`,
		`{"v":3,"type":"round_profile","round":41,"round_ns":52000,"churn_ns":2000,"proposal_ns":30000,"exchange_ns":15000,"reduction_ns":4000,"workers":4,"imbalance_milli":1250,"barrier_ns":9000,"health":"converging"}`,
		`{"v":3,"type":"session_end","round":77,"potential":0,"solved":true,"connections":300,"proposals":450,"control_bits":900,"tokens_moved":56,"edges_added":0,"edges_removed":0}`,
	}
	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("wrote %d lines, want %d:\n%s", len(got), len(want), out.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i+1, got[i], want[i])
		}
	}
	if sink.Written() != int64(len(want)) || sink.Dropped() != 0 {
		t.Fatalf("Written=%d Dropped=%d, want %d and 0", sink.Written(), sink.Dropped(), len(want))
	}
}

func TestAppendJSONEscapes(t *testing.T) {
	ev := Event{Type: TypeSessionStart, Algorithm: `a"b\c`, Topology: "x\n"}
	line := string(ev.AppendJSON(nil))
	if !strings.Contains(line, `"algorithm":"a\"b\\c"`) {
		t.Fatalf("quotes/backslashes not escaped: %s", line)
	}
	if !strings.Contains(line, `"topology":"x\u000a"`) {
		t.Fatalf("control byte not escaped: %s", line)
	}
}

func TestAppendJSONAllocsWithReusedBuffer(t *testing.T) {
	ev := Event{Type: TypeRoundCompleted, Round: 123456, Potential: 789,
		Connections: 4, Proposals: 6, ControlBits: 12, TokensMoved: 1}
	buf := make([]byte, 0, 512)
	if n := testing.AllocsPerRun(100, func() { _ = ev.AppendJSON(buf[:0]) }); n != 0 {
		t.Fatalf("AppendJSON with a reused buffer allocated %.1f times per call", n)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestJSONLSinkWriteError(t *testing.T) {
	b := NewBus()
	// A 16-byte bufio buffer makes every event line (longer than 16
	// bytes) hit the underlying writer directly, so the drain loop sees
	// the failure immediately instead of only at the Close-time flush.
	sink := &JSONLSink{
		sub:  b.Subscribe(Filter{}, 16),
		bw:   bufio.NewWriterSize(&failWriter{n: 0}, 16),
		done: make(chan struct{}),
	}
	go sink.drain()

	for r := 1; r <= 3; r++ {
		b.Publish(Event{Type: TypeRoundCompleted, Round: r})
	}
	err := sink.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close() = %v, want the first write error", err)
	}
	if sink.Err() == nil {
		t.Fatal("Err() lost the write error")
	}
	if sink.Written() != 0 {
		t.Fatalf("Written = %d on a dead writer, want 0", sink.Written())
	}
}

// TestJSONLSinkWriteErrorSurfacesPromptly is the regression test for the
// Close-only error visibility bug: a failing writer must show up on the
// sink and bus drop counters (the mobilegossip_events_dropped_total
// path) while the session is still running, without waiting for Close.
func TestJSONLSinkWriteErrorSurfacesPromptly(t *testing.T) {
	b := NewBus()
	sink := &JSONLSink{
		sub:  b.Subscribe(Filter{}, 16),
		bw:   bufio.NewWriterSize(&failWriter{n: 0}, 16),
		done: make(chan struct{}),
	}
	go sink.drain()

	const events = 5
	for r := 1; r <= events; r++ {
		b.Publish(Event{Type: TypeRoundCompleted, Round: r})
	}
	// The drain goroutine is asynchronous; wait for it to consume the
	// queue, but do NOT call Close — mid-run visibility is the point.
	deadline := time.Now().Add(5 * time.Second)
	for sink.Dropped() < events {
		if time.Now().After(deadline) {
			t.Fatalf("Dropped = %d after 5s, want %d before Close", sink.Dropped(), events)
		}
		time.Sleep(time.Millisecond)
	}
	if b.Dropped() < events {
		t.Fatalf("bus Dropped = %d, want >= %d (metrics path)", b.Dropped(), events)
	}
	if err := sink.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Err() = %v mid-run, want the write error", err)
	}
	if err := sink.Close(); err == nil {
		t.Fatal("Close() lost the write error")
	}
}
