// Package events is the simulation's structured observability layer: a
// non-blocking publish/subscribe bus carrying typed, versioned session
// events (see Type for the taxonomy), with per-subscriber filters,
// bounded queues that drop-and-count rather than stall the publisher,
// and three provided sinks — a JSONL stream writer (JSONLSink), an
// in-memory ring buffer with a query API (Ring), and a Prometheus-style
// text exporter (Collector).
//
// The session layer (mobilegossip.Simulation) owns one Bus per run and
// publishes every lifecycle event on it; the public package re-exports
// this surface (mobilegossip.EventBus and friends), and the gossipsim
// CLI exposes it as -events (JSONL) and -metrics (HTTP scrape endpoint).
//
// # The zero-alloc contract
//
// Publish sits on the engine's hot path: it is called several times per
// simulation round. With no subscriber attached it must cost nothing —
// one atomic load, no locks, no heap allocations — so the engine's
// 0 allocs/op round contract survives the bus being plumbed in. With
// subscribers attached, delivery still never allocates: events are flat
// value structs copied into bounded channels (asynchronous subscribers)
// or handed to handlers inline (synchronous subscribers); a full queue
// drops the event and counts the drop instead of blocking the round
// loop. Both regimes are pinned by the gated bus-detached/bus-attached
// rows of BenchmarkEngineRound (see DESIGN.md §12).
//
// # Delivery semantics
//
// Synchronous subscribers (SubscribeSync, and the Ring and Collector
// sinks built on it) run inline on the publishing goroutine, in
// registration order, and see every matching event — they trade
// publisher latency for losslessness, and their handlers must be fast
// and must not call back into the Bus. Asynchronous subscribers
// (Subscribe, and the JSONLSink built on it) decouple through a bounded
// channel: the publisher never waits, and a subscriber that falls
// behind loses events to its drop counter (Subscription.Dropped) rather
// than slowing the simulation.
package events
