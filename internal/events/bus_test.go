package events

import (
	"strings"
	"sync"
	"testing"
)

func TestFilterMatch(t *testing.T) {
	cases := []struct {
		name string
		f    Filter
		ev   Event
		want bool
	}{
		{"zero filter matches anything",
			Filter{}, Event{Type: TypeRoundCompleted, Round: 7}, true},
		{"type allow-list hit",
			Filter{Types: []Type{TypeChurnApplied, TypeRoundCompleted}},
			Event{Type: TypeRoundCompleted}, true},
		{"type allow-list miss",
			Filter{Types: []Type{TypeChurnApplied}},
			Event{Type: TypeRoundCompleted}, false},
		{"min round inclusive",
			Filter{MinRound: 5}, Event{Type: TypeRoundCompleted, Round: 5}, true},
		{"below min round",
			Filter{MinRound: 5}, Event{Type: TypeRoundCompleted, Round: 4}, false},
		{"max round inclusive",
			Filter{MaxRound: 5}, Event{Type: TypeRoundCompleted, Round: 5}, true},
		{"above max round",
			Filter{MaxRound: 5}, Event{Type: TypeRoundCompleted, Round: 6}, false},
		{"window and type both hold",
			Filter{Types: []Type{TypeSessionEnd}, MinRound: 2, MaxRound: 9},
			Event{Type: TypeSessionEnd, Round: 3}, true},
		{"window holds but type misses",
			Filter{Types: []Type{TypeSessionEnd}, MinRound: 2, MaxRound: 9},
			Event{Type: TypeRoundCompleted, Round: 3}, false},
		{"zero bounds leave round 0 events visible",
			Filter{Types: []Type{TypeSessionStart}}, Event{Type: TypeSessionStart}, true},
	}
	for _, tc := range cases {
		if got := tc.f.Match(tc.ev); got != tc.want {
			t.Errorf("%s: Match = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFilterMatchAllocs(t *testing.T) {
	f := Filter{Types: []Type{TypeRoundCompleted}, MinRound: 1, MaxRound: 1 << 30}
	ev := Event{Type: TypeRoundCompleted, Round: 42}
	if n := testing.AllocsPerRun(100, func() { f.Match(ev) }); n != 0 {
		t.Fatalf("Filter.Match allocated %.1f times per call", n)
	}
}

func TestTypeNamesRoundTrip(t *testing.T) {
	types := Types()
	if len(types) != 10 {
		t.Fatalf("Types() = %d types, want 10", len(types))
	}
	for _, ty := range types {
		name := ty.String()
		if strings.Contains(name, "Type(") {
			t.Fatalf("type %d has no wire name", ty)
		}
		back, err := ParseType(name)
		if err != nil || back != ty {
			t.Fatalf("ParseType(%q) = %v, %v; want %v", name, back, err, ty)
		}
	}
	if _, err := ParseType("no_such_event"); err == nil {
		t.Fatal("ParseType accepted an unknown name")
	}
	if got := Type(0).String(); got != "Type(0)" {
		t.Fatalf("Type(0).String() = %q", got)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(Filter{Types: []Type{TypeRoundCompleted}}, 8)
	defer sub.Close()

	b.Publish(Event{Type: TypeSessionStart, N: 10})
	b.Publish(Event{Type: TypeRoundCompleted, Round: 1, Potential: 9})
	b.Publish(Event{Type: TypeChurnApplied, Round: 2})
	b.Publish(Event{Type: TypeRoundCompleted, Round: 2, Potential: 7})

	got := []Event{<-sub.Events(), <-sub.Events()}
	if got[0].Round != 1 || got[1].Round != 2 {
		t.Fatalf("rounds = %d, %d; want 1, 2", got[0].Round, got[1].Round)
	}
	if got[1].Potential != 7 {
		t.Fatalf("potential = %d, want 7", got[1].Potential)
	}
	if len(sub.Events()) != 0 {
		t.Fatal("filtered-out events leaked into the queue")
	}
}

func TestBusNilAndEmptyPublish(t *testing.T) {
	var nilBus *Bus
	nilBus.Publish(Event{Type: TypeRoundCompleted}) // must not panic
	if nilBus.Subscribers() != 0 || nilBus.Dropped() != 0 {
		t.Fatal("nil bus reported subscribers or drops")
	}

	b := NewBus()
	if n := testing.AllocsPerRun(100, func() {
		b.Publish(Event{Type: TypeRoundCompleted, Round: 3})
	}); n != 0 {
		t.Fatalf("Publish with no subscribers allocated %.1f times per call", n)
	}
}

func TestBusSlowSubscriberDrops(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(Filter{}, 2) // bounded queue, never drained
	defer sub.Close()

	for r := 1; r <= 10; r++ {
		b.Publish(Event{Type: TypeRoundCompleted, Round: r})
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscription dropped %d events, want 8", got)
	}
	if got := b.Dropped(); got != 8 {
		t.Fatalf("bus dropped %d events, want 8", got)
	}
	// The queue holds the oldest events (drops discard the newest).
	first := <-sub.Events()
	if first.Round != 1 {
		t.Fatalf("first queued round = %d, want 1", first.Round)
	}
}

func TestBusSyncOrderAndCancel(t *testing.T) {
	b := NewBus()
	var order []string
	cancelA := b.SubscribeSync(Filter{}, func(Event) { order = append(order, "a") })
	cancelB := b.SubscribeSync(Filter{}, func(Event) { order = append(order, "b") })

	b.Publish(Event{Type: TypeRoundCompleted, Round: 1})
	if strings.Join(order, "") != "ab" {
		t.Fatalf("sync delivery order = %v, want registration order a,b", order)
	}
	if b.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d, want 2", b.Subscribers())
	}

	cancelA()
	cancelA() // idempotent
	b.Publish(Event{Type: TypeRoundCompleted, Round: 2})
	if strings.Join(order, "") != "abb" {
		t.Fatalf("after cancel, order = %v, want a,b,b", order)
	}
	cancelB()
	if b.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after cancels, want 0", b.Subscribers())
	}
}

func TestSubscriptionClose(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(Filter{}, 4)
	b.Publish(Event{Type: TypeRoundCompleted, Round: 1})
	sub.Close()
	sub.Close() // closing twice is a no-op

	// Pending events stay readable after Close; then the channel ends.
	var got []Event
	for ev := range sub.Events() {
		got = append(got, ev)
	}
	if len(got) != 1 || got[0].Round != 1 {
		t.Fatalf("drained %v after Close, want the one pending event", got)
	}
	if b.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after Close, want 0", b.Subscribers())
	}
	b.Publish(Event{Type: TypeRoundCompleted, Round: 2}) // must not panic
}

// TestBusConcurrentPublish races many publishers against subscribe /
// close churn; run under -race (the race-concurrent CI job does).
func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	collected := NewRing(1024)
	detach := collected.Attach(b, Filter{})
	defer detach()

	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 1; r <= 500; r++ {
				b.Publish(Event{Type: TypeRoundCompleted, Round: r, Potential: p})
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sub := b.Subscribe(Filter{Types: []Type{TypeRoundCompleted}}, 4)
			select {
			case <-sub.Events():
			case <-stop:
			default:
			}
			sub.Close()
		}
	}()
	wg.Wait()
	close(stop)

	if got := collected.Len() + int(collected.Evicted()); got != 4*500 {
		t.Fatalf("sync ring saw %d events, want %d (sync delivery is lossless)", got, 4*500)
	}
}
