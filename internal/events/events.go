package events

import (
	"fmt"
	"strconv"
	"strings"
)

// Schema is the wire-format version stamped on every serialized event
// (the "v" field of the JSONL encoding). Bump it when the meaning or
// encoding of an existing field changes or a new event type appears;
// adding fields to an existing type is backward compatible and does not
// bump the schema. Readers (UnmarshalEvent) accept every version from 1
// through Schema.
//
// Version history:
//
//	1 — the PR 7 taxonomy: session_start through session_end.
//	2 — round_profile event; write_ns on checkpoint_written.
//	3 — topology_rebound event (phased scenarios swapping the schedule
//	    mid-run, see Simulation.Rebind and DESIGN.md §15).
const Schema = 3

// Type identifies one kind of session event. The full taxonomy — which
// fields each type carries and where it is emitted — is tabulated in
// DESIGN.md §12.
type Type uint8

// The session event taxonomy, in lifecycle order.
const (
	// TypeSessionStart fires once, before the first round this process
	// executes (after a resume too). Carries N, K, Algorithm, Topology
	// and the starting Round/Potential.
	TypeSessionStart Type = iota + 1
	// TypeCheckpointResumed fires once, right after TypeSessionStart,
	// when the session was revived from a checkpoint rather than built
	// fresh. Round/Potential are the checkpoint's.
	TypeCheckpointResumed
	// TypeRoundCompleted fires after every executed round with that
	// round's meters (the event form of mobilegossip.RoundStats).
	TypeRoundCompleted
	// TypeChurnApplied fires before TypeRoundCompleted on rounds whose
	// topology changed, with the edge delta entering the round.
	TypeChurnApplied
	// TypeAdversaryEpoch fires before TypeRoundCompleted on rounds where
	// an adversarial schedule advanced to a new perturbation epoch.
	TypeAdversaryEpoch
	// TypeCheckpointWritten fires when Simulation.Checkpoint serializes
	// the session, at the round boundary the snapshot captures.
	TypeCheckpointWritten
	// TypeSessionCancel fires when Run observes context cancellation;
	// the session stays resumable and no TypeSessionEnd follows yet.
	TypeSessionCancel
	// TypeSessionEnd fires once, when the run is over (objective reached
	// or MaxRounds exhausted), with the run totals.
	TypeSessionEnd
	// TypeRoundProfile fires after TypeRoundCompleted on profiled
	// sessions (Config.Profile) with the round's timing breakdown:
	// wall time, per-phase spans, shard imbalance, barrier wait, and the
	// stall detector's health verdict. Schema 2; appended after the v1
	// types so their wire numbers are unchanged.
	TypeRoundProfile
	// TypeTopologyRebound fires when Simulation.Rebind swaps the topology
	// schedule at a round boundary (a phased scenario entering its next
	// phase). Round/Potential are the boundary's; Topology is the new
	// schedule's self-description. Schema 3; appended after the v2 types
	// so their wire numbers are unchanged.
	TypeTopologyRebound

	numTypes
)

var typeNames = [numTypes]string{
	TypeSessionStart:      "session_start",
	TypeCheckpointResumed: "checkpoint_resumed",
	TypeRoundCompleted:    "round_completed",
	TypeChurnApplied:      "churn_applied",
	TypeAdversaryEpoch:    "adversary_epoch",
	TypeCheckpointWritten: "checkpoint_written",
	TypeSessionCancel:     "session_cancel",
	TypeSessionEnd:        "session_end",
	TypeRoundProfile:      "round_profile",
	TypeTopologyRebound:   "topology_rebound",
}

// Types enumerates every event type, in declaration (lifecycle) order.
// DESIGN.md's taxonomy table and the docs-verify tooling key off it so
// the documented list has a single source of truth.
func Types() []Type {
	out := make([]Type, 0, numTypes-1)
	for t := Type(1); t < numTypes; t++ {
		out = append(out, t)
	}
	return out
}

// String returns the type's wire name (the "type" field of the JSONL
// encoding).
func (t Type) String() string {
	if t >= 1 && t < numTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a wire name back to its Type.
func ParseType(s string) (Type, error) {
	for t := Type(1); t < numTypes; t++ {
		if typeNames[t] == s {
			return t, nil
		}
	}
	names := make([]string, 0, numTypes-1)
	for t := Type(1); t < numTypes; t++ {
		names = append(names, typeNames[t])
	}
	return 0, fmt.Errorf("events: unknown event type %q (valid: %s)",
		s, strings.Join(names, ", "))
}

// Event is one typed session event. It is a flat value struct — no
// pointers, maps or nested allocations — so publishing copies it onto a
// channel or stack without touching the heap. Which fields are
// meaningful depends on Type (zero values otherwise); the taxonomy
// table in DESIGN.md §12 is the authoritative map.
type Event struct {
	// Type selects the event kind and which of the fields below carry
	// meaning.
	Type Type
	// Round is the round boundary the event describes: the round just
	// executed (TypeRoundCompleted and the per-round events preceding
	// it), the checkpointed round, or the session's current round.
	Round int
	// Potential is φ = Σ_u (k − |T_u|) at that boundary.
	Potential int

	// Per-round meters (TypeRoundCompleted) and run totals
	// (TypeSessionEnd).
	Connections int64
	Proposals   int64
	ControlBits int64
	TokensMoved int64

	// Edge churn entering the round (TypeChurnApplied,
	// TypeRoundCompleted) or totaled over the run (TypeSessionEnd).
	EdgesAdded   int
	EdgesRemoved int

	// Done reports whether this round reached the objective
	// (TypeRoundCompleted).
	Done bool

	// Session identity (TypeSessionStart, TypeSessionEnd). Topology also
	// carries the new schedule's self-description on
	// TypeTopologyRebound.
	N         int
	K         int
	Algorithm string
	Topology  string

	// Solved reports whether the objective was reached
	// (TypeSessionEnd).
	Solved bool

	// Epoch is the adversary perturbation epoch just entered
	// (TypeAdversaryEpoch).
	Epoch int

	// Round timing (TypeRoundProfile; schema 2). RoundNanos is the
	// round's wall time; the four phase fields break it down (see
	// internal/profile.Phase); Workers is the shard count the round ran
	// with; ImbalanceMilli is max/mean shard compute time in thousandths
	// and BarrierNanos the total barrier wait (both 0 when Workers ≤ 1).
	RoundNanos     int64
	ChurnNanos     int64
	ProposalNanos  int64
	ExchangeNanos  int64
	ReductionNanos int64
	Workers        int
	ImbalanceMilli int64
	BarrierNanos   int64
	// Health is the stall detector's verdict after this round
	// (TypeRoundProfile): "converging", "plateaued" or "stalled".
	Health string

	// WriteNanos is the checkpoint serialization wall time
	// (TypeCheckpointWritten; schema 2).
	WriteNanos int64
}

// Filter selects a subset of events: a type allow-list (empty = every
// type) intersected with an inclusive round window (0 bounds are open).
// The zero Filter matches everything.
type Filter struct {
	// Types allow-lists event types; nil or empty matches every type.
	Types []Type
	// MinRound and MaxRound bound Event.Round inclusively; 0 leaves the
	// corresponding side open.
	MinRound int
	MaxRound int
}

// Match reports whether ev passes the filter. It never allocates.
func (f Filter) Match(ev Event) bool {
	if f.MinRound > 0 && ev.Round < f.MinRound {
		return false
	}
	if f.MaxRound > 0 && ev.Round > f.MaxRound {
		return false
	}
	if len(f.Types) == 0 {
		return true
	}
	for _, t := range f.Types {
		if t == ev.Type {
			return true
		}
	}
	return false
}

// AppendJSON appends the event's one-line JSON encoding (schema version
// Schema, no trailing newline) to buf and returns the extended slice.
// Only the fields meaningful for the event's type are emitted, so every
// line stays self-describing and compact; a reused buf makes steady-state
// encoding allocation-free.
func (ev Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, Schema, 10)
	buf = append(buf, `,"type":"`...)
	buf = append(buf, ev.Type.String()...)
	buf = append(buf, `","round":`...)
	buf = strconv.AppendInt(buf, int64(ev.Round), 10)
	switch ev.Type {
	case TypeSessionStart:
		buf = appendIntField(buf, "potential", int64(ev.Potential))
		buf = appendIntField(buf, "n", int64(ev.N))
		buf = appendIntField(buf, "k", int64(ev.K))
		buf = appendStringField(buf, "algorithm", ev.Algorithm)
		buf = appendStringField(buf, "topology", ev.Topology)
	case TypeCheckpointResumed, TypeSessionCancel:
		buf = appendIntField(buf, "potential", int64(ev.Potential))
	case TypeTopologyRebound:
		buf = appendIntField(buf, "potential", int64(ev.Potential))
		buf = appendStringField(buf, "topology", ev.Topology)
	case TypeCheckpointWritten:
		buf = appendIntField(buf, "potential", int64(ev.Potential))
		buf = appendIntField(buf, "write_ns", ev.WriteNanos)
	case TypeRoundCompleted:
		buf = appendIntField(buf, "potential", int64(ev.Potential))
		buf = appendIntField(buf, "connections", ev.Connections)
		buf = appendIntField(buf, "proposals", ev.Proposals)
		buf = appendIntField(buf, "control_bits", ev.ControlBits)
		buf = appendIntField(buf, "tokens_moved", ev.TokensMoved)
		buf = appendIntField(buf, "edges_added", int64(ev.EdgesAdded))
		buf = appendIntField(buf, "edges_removed", int64(ev.EdgesRemoved))
		buf = appendBoolField(buf, "done", ev.Done)
	case TypeChurnApplied:
		buf = appendIntField(buf, "edges_added", int64(ev.EdgesAdded))
		buf = appendIntField(buf, "edges_removed", int64(ev.EdgesRemoved))
	case TypeAdversaryEpoch:
		buf = appendIntField(buf, "epoch", int64(ev.Epoch))
	case TypeSessionEnd:
		buf = appendIntField(buf, "potential", int64(ev.Potential))
		buf = appendBoolField(buf, "solved", ev.Solved)
		buf = appendIntField(buf, "connections", ev.Connections)
		buf = appendIntField(buf, "proposals", ev.Proposals)
		buf = appendIntField(buf, "control_bits", ev.ControlBits)
		buf = appendIntField(buf, "tokens_moved", ev.TokensMoved)
		buf = appendIntField(buf, "edges_added", int64(ev.EdgesAdded))
		buf = appendIntField(buf, "edges_removed", int64(ev.EdgesRemoved))
	case TypeRoundProfile:
		buf = appendIntField(buf, "round_ns", ev.RoundNanos)
		buf = appendIntField(buf, "churn_ns", ev.ChurnNanos)
		buf = appendIntField(buf, "proposal_ns", ev.ProposalNanos)
		buf = appendIntField(buf, "exchange_ns", ev.ExchangeNanos)
		buf = appendIntField(buf, "reduction_ns", ev.ReductionNanos)
		buf = appendIntField(buf, "workers", int64(ev.Workers))
		buf = appendIntField(buf, "imbalance_milli", ev.ImbalanceMilli)
		buf = appendIntField(buf, "barrier_ns", ev.BarrierNanos)
		buf = appendStringField(buf, "health", ev.Health)
	}
	return append(buf, '}')
}

func appendIntField(buf []byte, name string, v int64) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return strconv.AppendInt(buf, v, 10)
}

func appendBoolField(buf []byte, name string, v bool) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return strconv.AppendBool(buf, v)
}

// appendStringField JSON-escapes v (quotes, backslashes and control
// bytes; multi-byte UTF-8 — topology names carry τ — passes through raw,
// which JSON permits).
func appendStringField(buf []byte, name, v string) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':', '"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
