package events

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// feedSession drives one small synthetic session through the collector
// via a bus, returning the bus for drop accounting.
func feedSession(c *Collector) *Bus {
	b := NewBus()
	c.Attach(b)
	b.Publish(Event{Type: TypeSessionStart, Round: 0, Potential: 56, N: 8, K: 8})
	b.Publish(Event{Type: TypeCheckpointResumed, Round: 0, Potential: 56})
	for r := 1; r <= 4; r++ {
		if r == 2 {
			b.Publish(Event{Type: TypeChurnApplied, Round: r, EdgesAdded: 2, EdgesRemoved: 1})
		}
		if r == 3 {
			b.Publish(Event{Type: TypeAdversaryEpoch, Round: r, Epoch: 1})
		}
		b.Publish(Event{Type: TypeRoundCompleted, Round: r, Potential: 56 - r*10,
			Connections: 3, Proposals: 5, ControlBits: 10, TokensMoved: 2,
			EdgesAdded: boolInt(r == 2) * 2, EdgesRemoved: boolInt(r == 2)})
	}
	b.Publish(Event{Type: TypeCheckpointWritten, Round: 4, Potential: 16})
	b.Publish(Event{Type: TypeSessionEnd, Round: 4, Potential: 16, Solved: false,
		Connections: 12, Proposals: 20, ControlBits: 40, TokensMoved: 8})
	return b
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// parseExposition reads Prometheus text exposition format into a value
// map, failing the test on malformed HELP/TYPE/sample structure.
func parseExposition(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	vals := map[string]float64{}
	sc := bufio.NewScanner(r)
	var lastHelp, lastType string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.SplitN(line[len("# HELP "):], " ", 2)[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			lastType = parts[0]
			if lastType != lastHelp {
				t.Fatalf("TYPE %q not preceded by its HELP (saw %q)", lastType, lastHelp)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %q", line)
		default:
			parts := strings.Fields(line)
			if len(parts) != 2 {
				t.Fatalf("malformed sample line: %q", line)
			}
			// Strip any label set; histogram samples append _bucket/_sum/
			// _count to the family name.
			name := parts[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base = strings.TrimSuffix(base, suffix)
			}
			if name != lastType && base != lastType {
				t.Fatalf("sample %q not preceded by its TYPE (saw %q)", parts[0], lastType)
			}
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				t.Fatalf("sample %q has non-numeric value: %v", parts[0], err)
			}
			vals[parts[0]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestCollectorWriteTo(t *testing.T) {
	c := NewCollector()
	feedSession(c)

	var out strings.Builder
	if _, err := c.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	vals := parseExposition(t, strings.NewReader(out.String()))

	want := map[string]float64{
		"mobilegossip_sessions_started_total":    1,
		"mobilegossip_sessions_ended_total":      1,
		"mobilegossip_sessions_solved_total":     0,
		"mobilegossip_sessions_canceled_total":   0,
		"mobilegossip_sessions_resumed_total":    1,
		"mobilegossip_checkpoints_written_total": 1,
		"mobilegossip_rounds_total":              4,
		"mobilegossip_potential":                 16,
		"mobilegossip_tokens_known":              48, // n·k − φ = 64 − 16
		"mobilegossip_connections_total":         12,
		"mobilegossip_proposals_total":           20,
		"mobilegossip_control_bits_total":        40,
		"mobilegossip_tokens_moved_total":        8,
		"mobilegossip_edges_added_total":         2,
		"mobilegossip_edges_removed_total":       1,
		"mobilegossip_churn_rounds_total":        1,
		"mobilegossip_adversary_epochs_total":    1,
		"mobilegossip_events_dropped_total":      0,
	}
	for name, v := range want {
		got, ok := vals[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if _, ok := vals["mobilegossip_rounds_per_second"]; !ok {
		t.Error("mobilegossip_rounds_per_second missing from exposition")
	}
	if rps := c.RoundsPerSecond(); rps <= 0 {
		t.Errorf("RoundsPerSecond = %v after 4 rounds, want > 0", rps)
	}
}

// TestCollectorProfileExposition feeds round_profile and timed
// checkpoint events and checks the histogram + health rendering: an
// unprofiled collector must emit none of it (the schema-1 scrape shape),
// a profiled one must emit well-formed cumulative histograms and a
// state-labeled health gauge.
func TestCollectorProfileExposition(t *testing.T) {
	c := NewCollector()
	var out strings.Builder
	if _, err := c.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"_latency_seconds", "session_health", "_bucket"} {
		if strings.Contains(out.String(), forbidden) {
			t.Fatalf("unprofiled exposition contains %q:\n%s", forbidden, out.String())
		}
	}

	c.Observe(Event{Type: TypeRoundProfile, Round: 1, RoundNanos: 50_000,
		ChurnNanos: 1000, ProposalNanos: 30_000, ExchangeNanos: 15_000,
		ReductionNanos: 2000, Workers: 4, ImbalanceMilli: 1500, BarrierNanos: 8000,
		Health: "converging"})
	c.Observe(Event{Type: TypeRoundProfile, Round: 2, RoundNanos: 70_000,
		ChurnNanos: 1000, ProposalNanos: 40_000, ExchangeNanos: 25_000,
		ReductionNanos: 3000, Workers: 4, ImbalanceMilli: 1200, BarrierNanos: 9000,
		Health: "plateaued"})
	c.Observe(Event{Type: TypeCheckpointWritten, Round: 2, WriteNanos: 1_000_000})

	out.Reset()
	if _, err := c.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	vals := parseExposition(t, strings.NewReader(out.String()))

	if got := vals[`mobilegossip_round_latency_seconds_bucket{le="+Inf"}`]; got != 2 {
		t.Errorf("round latency +Inf bucket = %v, want 2", got)
	}
	if got := vals["mobilegossip_round_latency_seconds_count"]; got != 2 {
		t.Errorf("round latency count = %v, want 2", got)
	}
	if got := vals["mobilegossip_round_latency_seconds_sum"]; got != 120_000/1e9 {
		t.Errorf("round latency sum = %v, want %v", got, 120_000/1e9)
	}
	if got := vals["mobilegossip_checkpoint_write_seconds_count"]; got != 1 {
		t.Errorf("checkpoint write count = %v, want 1", got)
	}
	if got := vals["mobilegossip_shard_imbalance_ratio_count"]; got != 2 {
		t.Errorf("imbalance count = %v, want 2", got)
	}
	if got := vals[`mobilegossip_session_health{state="plateaued"}`]; got != 1 {
		t.Errorf("health{plateaued} = %v, want 1", got)
	}
	if got := vals[`mobilegossip_session_health{state="converging"}`]; got != 0 {
		t.Errorf("health{converging} = %v, want 0", got)
	}
	if c.Health().String() != "plateaued" {
		t.Errorf("Health() = %v, want plateaued", c.Health())
	}

	// Cumulative bucket counts must be monotone and end at the count.
	var lastCum float64
	for i := 0; i < 65; i++ {
		key := "mobilegossip_round_latency_seconds_bucket{le=\"" +
			strconv.FormatFloat(float64((int64(1)<<uint(i))-1)/1e9, 'g', -1, 64) + "\"}"
		if v, ok := vals[key]; ok {
			if v < lastCum {
				t.Fatalf("bucket %s = %v below previous %v", key, v, lastCum)
			}
			lastCum = v
		}
	}
	if lastCum != 2 {
		t.Errorf("largest bucket cumulative = %v, want 2", lastCum)
	}
}

func TestCollectorHTTPScrape(t *testing.T) {
	c := NewCollector()
	bus := feedSession(c)

	// Make the dropped counter non-zero: an async subscriber with a full
	// queue loses the next publish.
	sub := bus.Subscribe(Filter{}, 1)
	defer sub.Close()
	bus.Publish(Event{Type: TypeRoundCompleted, Round: 5, Potential: 10})
	bus.Publish(Event{Type: TypeRoundCompleted, Round: 6, Potential: 9})

	srv := httptest.NewServer(c)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the text exposition type", ct)
	}
	vals := parseExposition(t, resp.Body)
	if got := vals["mobilegossip_rounds_total"]; got != 6 {
		t.Fatalf("rounds_total = %v after scrape, want 6", got)
	}
	if got := vals["mobilegossip_events_dropped_total"]; got != 1 {
		t.Fatalf("events_dropped_total = %v, want 1", got)
	}
}
