package events

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
)

// JSONLSink streams events to an io.Writer as one JSON line per event
// (the schema-versioned encoding of Event.AppendJSON). It is an
// asynchronous subscriber: a drain goroutine moves events from a
// bounded queue to the writer, so a slow writer never stalls the
// simulation — it drops (counted on Dropped) instead. Writes are
// buffered; Close detaches, drains what was queued, flushes, and
// reports the first write error.
type JSONLSink struct {
	sub     *Subscription
	bw      *bufio.Writer
	done    chan struct{}
	written atomic.Int64

	mu  sync.Mutex
	err error
}

// NewJSONLSink subscribes to bus with filter f and a queue of the given
// capacity (0 selects the default, 4096) and starts the drain
// goroutine. Call Close to stop recording and flush.
func NewJSONLSink(bus *Bus, w io.Writer, f Filter, buffer int) *JSONLSink {
	if buffer < 1 {
		buffer = 4096
	}
	s := &JSONLSink{
		sub:  bus.Subscribe(f, buffer),
		bw:   bufio.NewWriter(w),
		done: make(chan struct{}),
	}
	go s.drain()
	return s
}

func (s *JSONLSink) drain() {
	defer close(s.done)
	var buf []byte
	for ev := range s.sub.Events() {
		buf = ev.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := s.bw.Write(buf); err != nil {
			// Record the first failure but keep consuming: stopping here
			// would turn a dead writer into unbounded queue drops that
			// misreport as backpressure. The event is lost either way, so
			// count it as dropped too — that surfaces the failure promptly
			// through the bus drop counters (and the
			// mobilegossip_events_dropped_total metric) instead of only at
			// Close.
			s.setErr(err)
			s.sub.dropped.Add(1)
			s.sub.bus.dropped.Add(1)
		} else {
			s.written.Add(1)
		}
	}
}

// Close unsubscribes, drains the events already queued, flushes the
// writer, and returns the first write error (also available via Err).
// It does not close the underlying writer.
func (s *JSONLSink) Close() error {
	s.sub.Close()
	<-s.done
	if err := s.bw.Flush(); err != nil {
		s.setErr(err)
	}
	return s.Err()
}

// Written returns the number of lines successfully handed to the
// buffered writer so far.
func (s *JSONLSink) Written() int64 { return s.written.Load() }

// Dropped returns how many matching events were lost — to the bounded
// queue while the writer lagged, or to write failures (each failed write
// also sets Err, but counts here immediately so a dying writer is
// visible mid-run, not only at Close).
func (s *JSONLSink) Dropped() int64 { return s.sub.Dropped() }

// Err returns the first write error encountered, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *JSONLSink) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}
