package events

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mobilegossip/internal/profile"
)

// Collector aggregates session events into Prometheus-style metrics: a
// set of counters and gauges rendered in the text exposition format by
// WriteTo, and served over HTTP by ServeHTTP (the gossipsim -metrics
// endpoint). Attach it to one or more buses as a synchronous subscriber
// — updates are a handful of atomic stores per event, lossless and
// allocation-free — and scrape it from any goroutine at any time.
type Collector struct {
	sessionsStarted  atomic.Int64
	sessionsEnded    atomic.Int64
	sessionsSolved   atomic.Int64
	sessionsCanceled atomic.Int64
	sessionsResumed  atomic.Int64
	checkpoints      atomic.Int64

	rounds      atomic.Int64
	potential   atomic.Int64 // gauge: φ after the last completed round
	tokensKnown atomic.Int64 // gauge: n·k − φ
	nk          atomic.Int64 // n·k of the current session

	connections atomic.Int64
	proposals   atomic.Int64
	controlBits atomic.Int64
	tokensMoved atomic.Int64

	edgesAdded   atomic.Int64
	edgesRemoved atomic.Int64
	churnRounds  atomic.Int64
	advEpochs    atomic.Int64
	rebinds      atomic.Int64

	firstRound atomic.Int64 // unix nanos of the first observed round
	lastRound  atomic.Int64 // unix nanos of the latest observed round

	// Timing histograms, fed by round_profile and checkpoint_written
	// events (empty — and omitted from the exposition — on unprofiled
	// sessions). Lock-free like the counters above.
	roundLatency profile.Histogram // round wall time, ns
	phaseLatency [profile.NumPhases]profile.Histogram
	imbalance    profile.Histogram // max/mean shard compute, thousandths
	barrierWait  profile.Histogram // per-round barrier wait, ns
	ckptWrite    profile.Histogram // checkpoint serialization, ns
	health       atomic.Int64      // latest profile.Health verdict

	mu    sync.Mutex
	buses []*Bus // attached buses, for the dropped-events counter
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach subscribes the collector to bus synchronously (every event,
// lossless). The returned cancel function detaches it; the bus stays
// accounted in the dropped-events counter either way.
func (c *Collector) Attach(bus *Bus) (cancel func()) {
	c.mu.Lock()
	c.buses = append(c.buses, bus)
	c.mu.Unlock()
	return bus.SubscribeSync(Filter{}, c.Observe)
}

// Observe folds one event into the metrics. Attach wires it up as the
// bus handler; call it directly when feeding the collector by hand.
func (c *Collector) Observe(ev Event) {
	switch ev.Type {
	case TypeSessionStart:
		c.sessionsStarted.Add(1)
		nk := int64(ev.N) * int64(ev.K)
		c.nk.Store(nk)
		c.potential.Store(int64(ev.Potential))
		c.tokensKnown.Store(nk - int64(ev.Potential))
	case TypeCheckpointResumed:
		c.sessionsResumed.Add(1)
	case TypeRoundCompleted:
		c.rounds.Add(1)
		c.potential.Store(int64(ev.Potential))
		c.tokensKnown.Store(c.nk.Load() - int64(ev.Potential))
		c.connections.Add(ev.Connections)
		c.proposals.Add(ev.Proposals)
		c.controlBits.Add(ev.ControlBits)
		c.tokensMoved.Add(ev.TokensMoved)
		c.edgesAdded.Add(int64(ev.EdgesAdded))
		c.edgesRemoved.Add(int64(ev.EdgesRemoved))
		now := time.Now().UnixNano()
		c.firstRound.CompareAndSwap(0, now)
		c.lastRound.Store(now)
	case TypeChurnApplied:
		c.churnRounds.Add(1)
	case TypeAdversaryEpoch:
		c.advEpochs.Add(1)
	case TypeTopologyRebound:
		c.rebinds.Add(1)
	case TypeCheckpointWritten:
		c.checkpoints.Add(1)
		if ev.WriteNanos > 0 {
			c.ckptWrite.Record(ev.WriteNanos)
		}
	case TypeRoundProfile:
		c.roundLatency.Record(ev.RoundNanos)
		c.phaseLatency[profile.PhaseChurn].Record(ev.ChurnNanos)
		c.phaseLatency[profile.PhaseProposal].Record(ev.ProposalNanos)
		c.phaseLatency[profile.PhaseExchange].Record(ev.ExchangeNanos)
		c.phaseLatency[profile.PhaseReduction].Record(ev.ReductionNanos)
		if ev.Workers > 1 {
			c.imbalance.Record(ev.ImbalanceMilli)
			c.barrierWait.Record(ev.BarrierNanos)
		}
		if h, err := profile.ParseHealth(ev.Health); err == nil {
			c.health.Store(int64(h))
		}
	case TypeSessionCancel:
		c.sessionsCanceled.Add(1)
	case TypeSessionEnd:
		c.sessionsEnded.Add(1)
		if ev.Solved {
			c.sessionsSolved.Add(1)
		}
	}
}

// RoundsPerSecond returns the observed round throughput: rounds per
// wall-clock second between the first and latest TypeRoundCompleted
// events (0 until two rounds have been seen).
func (c *Collector) RoundsPerSecond() float64 {
	r := c.rounds.Load()
	first, last := c.firstRound.Load(), c.lastRound.Load()
	if r < 2 || last <= first {
		return 0
	}
	return float64(r-1) / (float64(last-first) / 1e9)
}

// Dropped sums the drop counters of every attached bus.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, b := range c.buses {
		total += b.Dropped()
	}
	return total
}

// metricRows renders the current values in exposition order.
func (c *Collector) metricRows() []metricRow {
	return []metricRow{
		{"mobilegossip_sessions_started_total", "counter", "Simulation sessions that began a run.", float64(c.sessionsStarted.Load())},
		{"mobilegossip_sessions_ended_total", "counter", "Simulation sessions that finished (objective or MaxRounds).", float64(c.sessionsEnded.Load())},
		{"mobilegossip_sessions_solved_total", "counter", "Finished sessions that reached the gossip objective.", float64(c.sessionsSolved.Load())},
		{"mobilegossip_sessions_canceled_total", "counter", "Run calls that returned on context cancellation.", float64(c.sessionsCanceled.Load())},
		{"mobilegossip_sessions_resumed_total", "counter", "Sessions revived from a checkpoint.", float64(c.sessionsResumed.Load())},
		{"mobilegossip_checkpoints_written_total", "counter", "Checkpoints serialized.", float64(c.checkpoints.Load())},
		{"mobilegossip_rounds_total", "counter", "Simulation rounds executed.", float64(c.rounds.Load())},
		{"mobilegossip_rounds_per_second", "gauge", "Observed round throughput between the first and latest round.", c.RoundsPerSecond()},
		{"mobilegossip_potential", "gauge", "Live potential φ = Σ_u (k − |T_u|) after the latest round.", float64(c.potential.Load())},
		{"mobilegossip_tokens_known", "gauge", "Total (node, token) pairs learned so far (n·k − φ).", float64(c.tokensKnown.Load())},
		{"mobilegossip_connections_total", "counter", "Accepted connections.", float64(c.connections.Load())},
		{"mobilegossip_proposals_total", "counter", "Sent proposals.", float64(c.proposals.Load())},
		{"mobilegossip_control_bits_total", "counter", "Control bits metered over connections.", float64(c.controlBits.Load())},
		{"mobilegossip_tokens_moved_total", "counter", "Token transfers over connections.", float64(c.tokensMoved.Load())},
		{"mobilegossip_edges_added_total", "counter", "Topology edges added by dynamic schedules.", float64(c.edgesAdded.Load())},
		{"mobilegossip_edges_removed_total", "counter", "Topology edges removed by dynamic schedules.", float64(c.edgesRemoved.Load())},
		{"mobilegossip_churn_rounds_total", "counter", "Rounds whose topology changed.", float64(c.churnRounds.Load())},
		{"mobilegossip_adversary_epochs_total", "counter", "Adversary perturbation epochs entered.", float64(c.advEpochs.Load())},
		{"mobilegossip_topology_rebinds_total", "counter", "Mid-run topology schedule swaps (phased scenarios).", float64(c.rebinds.Load())},
		{"mobilegossip_events_dropped_total", "counter", "Events dropped by bounded subscriber queues.", float64(c.Dropped())},
	}
}

type metricRow struct {
	name, kind, help string
	value            float64
}

// Health returns the stall detector's latest verdict as observed from
// round_profile events (HealthUnknown on unprofiled sessions).
func (c *Collector) Health() profile.Health {
	return profile.Health(c.health.Load())
}

// WriteTo renders the metrics in the Prometheus text exposition format:
// the counter/gauge rows, then — once a profiled session has fed them —
// the timing histograms and the session health gauge.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, m := range c.metricRows() {
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.name, m.help, m.name, m.kind,
			m.name, strconv.FormatFloat(m.value, 'g', -1, 64))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	hists := []struct {
		name, help string
		h          *profile.Histogram
		scale      float64 // divides recorded values into exposition units
	}{
		{"mobilegossip_round_latency_seconds", "Wall-clock time per simulation round.", &c.roundLatency, 1e9},
		{"mobilegossip_phase_churn_seconds", "Per-round wall-clock time applying topology churn.", &c.phaseLatency[profile.PhaseChurn], 1e9},
		{"mobilegossip_phase_proposal_seconds", "Per-round wall-clock time in the proposal machinery (tag, decide, deliver, accept).", &c.phaseLatency[profile.PhaseProposal], 1e9},
		{"mobilegossip_phase_exchange_seconds", "Per-round wall-clock time exchanging over accepted connections.", &c.phaseLatency[profile.PhaseExchange], 1e9},
		{"mobilegossip_phase_reduction_seconds", "Per-round wall-clock time in sequential cross-shard reductions.", &c.phaseLatency[profile.PhaseReduction], 1e9},
		{"mobilegossip_shard_imbalance_ratio", "Max over mean shard compute time per sharded round (1 = balanced).", &c.imbalance, 1e3},
		{"mobilegossip_barrier_wait_seconds", "Total per-round time shards spent waiting at phase barriers.", &c.barrierWait, 1e9},
		{"mobilegossip_checkpoint_write_seconds", "Checkpoint serialization wall-clock time.", &c.ckptWrite, 1e9},
	}
	for _, hm := range hists {
		n, err := writeHistogram(w, hm.name, hm.help, hm.h, hm.scale)
		total += n
		if err != nil {
			return total, err
		}
	}
	if h := c.Health(); h != profile.HealthUnknown {
		const healthName = "mobilegossip_session_health"
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n",
			healthName,
			"Stall-detector verdict for the current session (1 on the active state).",
			healthName)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, s := range []profile.Health{profile.HealthConverging, profile.HealthPlateaued, profile.HealthStalled} {
			v := 0
			if s == h {
				v = 1
			}
			n, err := fmt.Fprintf(w, "mobilegossip_session_health{state=%q} %d\n", s.String(), v)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// writeHistogram renders one log-bucketed histogram in the Prometheus
// text format (cumulative _bucket rows with le bounds in exposition
// units, then _sum and _count). Empty histograms are omitted entirely so
// unprofiled sessions keep their scrape output unchanged from schema 1.
func writeHistogram(w io.Writer, name, help string, h *profile.Histogram, scale float64) (int64, error) {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return 0, nil
	}
	var total int64
	n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	total += int64(n)
	if err != nil {
		return total, err
	}
	maxB := snap.MaxBucket()
	var cum int64
	for i := 0; i <= maxB; i++ {
		cum += snap.Counts[i]
		le := strconv.FormatFloat(float64(profile.BucketBound(i))/scale, 'g', -1, 64)
		n, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	n, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, snap.Count,
		name, strconv.FormatFloat(float64(snap.Sum)/scale, 'g', -1, 64),
		name, snap.Count)
	total += int64(n)
	return total, err
}

// ServeHTTP implements http.Handler: a GET returns the WriteTo output
// with the standard text exposition content type, ready to be mounted
// at /metrics and scraped.
func (c *Collector) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = c.WriteTo(w)
}
