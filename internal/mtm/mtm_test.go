package mtm

import (
	"errors"
	"sync"
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// minSpread is a toy test protocol: every node starts with its id as a
// value; connected pairs exchange minima; done when all nodes hold 0.
// With b=1 it advertises value parity so the engine's tag plumbing is
// exercised; decisions are blind coin flips as in BlindMatch.
type minSpread struct {
	mu        sync.Mutex // protects observation counters only
	vals      []int
	bitsPer   int
	tokensPer int

	// observation hooks for engine-conformance tests
	sawConnections []([2]int)
	recordPairs    bool
}

func newMinSpread(n int) *minSpread {
	p := &minSpread{vals: make([]int, n), bitsPer: 8, tokensPer: 1}
	for i := range p.vals {
		p.vals[i] = i
	}
	return p
}

func (p *minSpread) TagBits() int { return 1 }

func (p *minSpread) Tag(_ int, u NodeID) uint64 { return uint64(p.vals[u] & 1) }

func (p *minSpread) Decide(_ int, _ NodeID, view []Neighbor, rng *prand.RNG) Action {
	if len(view) == 0 || rng.Bool() {
		return Listen()
	}
	return Propose(view[rng.Intn(len(view))].ID)
}

func (p *minSpread) Exchange(_ int, c *Conn) {
	c.ChargeBits(p.bitsPer)
	c.ChargeTokens(p.tokensPer)
	u, v := c.Initiator, c.Responder
	m := p.vals[u]
	if p.vals[v] < m {
		m = p.vals[v]
	}
	p.vals[u], p.vals[v] = m, m
	if p.recordPairs {
		p.mu.Lock()
		p.sawConnections = append(p.sawConnections, [2]int{u, v})
		p.mu.Unlock()
	}
}

func (p *minSpread) Done() bool {
	for _, v := range p.vals {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestRunCompletesMinSpread(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Cycle(16))
	p := newMinSpread(16)
	res, err := NewEngine(dyn, p, Config{Seed: 1, MaxRounds: 10000}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("did not complete in %d rounds", res.Rounds)
	}
	if res.Connections == 0 || res.Proposals < res.Connections {
		t.Fatalf("bogus counters: %+v", res)
	}
	if res.ControlBits != res.Connections*8 || res.TokensMoved != res.Connections {
		t.Fatalf("metering wrong: %+v", res)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	run := func() Result {
		dyn := dyngraph.RotatingRing(20, 1, 99)
		p := newMinSpread(20)
		res, err := NewEngine(dyn, p, Config{Seed: 5, MaxRounds: 50000}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	run := func(seed uint64) Result {
		dyn := dyngraph.NewStatic(graph.Cycle(24))
		p := newMinSpread(24)
		res, _ := NewEngine(dyn, p, Config{Seed: seed, MaxRounds: 50000}).Run()
		return res
	}
	if run(1) == run(2) {
		t.Log("two seeds coincided exactly (possible but unlikely); trying a third")
		if run(1) == run(3) {
			t.Fatal("executions identical across seeds")
		}
	}
}

func TestBackendsIdentical(t *testing.T) {
	run := func(concurrent bool) Result {
		dyn := dyngraph.RotatingRegular(18, 3, 2, 7)
		p := newMinSpread(18)
		res, err := NewEngine(dyn, p, Config{Seed: 11, MaxRounds: 50000, Concurrent: concurrent}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(false), run(true)
	if seq != par {
		t.Fatalf("sequential %+v != concurrent %+v", seq, par)
	}
}

func TestConnectionsFormMatching(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Complete(12))
	p := newMinSpread(12)
	p.recordPairs = true
	roundStart := 0
	var violations int
	cfg := Config{Seed: 3, MaxRounds: 200, OnRound: func(r int) {
		// Each node may appear at most once among this round's pairs.
		seen := map[int]bool{}
		for _, pr := range p.sawConnections[roundStart:] {
			for _, node := range []int{pr[0], pr[1]} {
				if seen[node] {
					violations++
				}
				seen[node] = true
			}
		}
		roundStart = len(p.sawConnections)
	}}
	if _, err := NewEngine(dyn, p, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d matching violations", violations)
	}
}

// proposerTrap proposes from every node every round; since proposers cannot
// receive, no connection can ever form.
type proposerTrap struct{ n int }

func (p *proposerTrap) TagBits() int           { return 0 }
func (p *proposerTrap) Tag(int, NodeID) uint64 { return 0 }
func (p *proposerTrap) Done() bool             { return false }
func (p *proposerTrap) Exchange(int, *Conn)    {}
func (p *proposerTrap) Decide(_ int, u NodeID, view []Neighbor, _ *prand.RNG) Action {
	if len(view) == 0 {
		return Listen()
	}
	return Propose(view[0].ID)
}

func TestProposerCannotReceive(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Complete(8))
	p := &proposerTrap{n: 8}
	res, err := NewEngine(dyn, p, Config{Seed: 1, MaxRounds: 50}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Connections != 0 {
		t.Fatalf("all-proposer round produced %d connections", res.Connections)
	}
	if res.Proposals != 8*50 {
		t.Fatalf("proposals = %d, want 400", res.Proposals)
	}
}

// badTag advertises 2 bits while declaring b=1.
type badTag struct{ minSpread }

func (p *badTag) TagBits() int           { return 1 }
func (p *badTag) Tag(int, NodeID) uint64 { return 2 }

func TestTagWidthEnforced(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Cycle(4))
	p := &badTag{*newMinSpread(4)}
	_, err := NewEngine(dyn, p, Config{Seed: 1, MaxRounds: 5}).Run()
	if !errors.Is(err, ErrTagTooWide) {
		t.Fatalf("err = %v, want ErrTagTooWide", err)
	}
}

func TestBudgetEnforced(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Complete(6))
	p := newMinSpread(6)
	p.bitsPer = 1 << 20 // absurd per-connection cost
	_, err := NewEngine(dyn, p, Config{Seed: 2, MaxRounds: 100}).Run()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	p2 := newMinSpread(6)
	p2.tokensPer = 100
	_, err = NewEngine(dyn, p2, Config{Seed: 2, MaxRounds: 100}).Run()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("token err = %v, want ErrBudgetExceeded", err)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Path(2))
	p := &proposerTrap{n: 2} // never completes
	res, err := NewEngine(dyn, p, Config{Seed: 1, MaxRounds: 17}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds != 17 {
		t.Fatalf("res = %+v, want 17 incomplete rounds", res)
	}
}

func TestDoneImmediately(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Path(3))
	p := newMinSpread(3)
	p.vals = []int{0, 0, 0}
	res, err := NewEngine(dyn, p, Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 0 {
		t.Fatalf("res = %+v, want immediate completion", res)
	}
}

func TestOnRoundCalledEveryRound(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Cycle(8))
	p := newMinSpread(8)
	var calls []int
	cfg := Config{Seed: 4, MaxRounds: 10000, OnRound: func(r int) { calls = append(calls, r) }}
	res, err := NewEngine(dyn, p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != res.Rounds {
		t.Fatalf("OnRound called %d times for %d rounds", len(calls), res.Rounds)
	}
	for i, r := range calls {
		if r != i+1 {
			t.Fatalf("OnRound sequence broken at %d: %v", i, calls[:i+1])
		}
	}
}

func TestMalformedProposalsLost(t *testing.T) {
	// A proposal to a non-neighbor must be dropped, not connect.
	dyn := dyngraph.NewStatic(graph.Path(3)) // 0-1-2
	p := &fixedTarget{target: 2}             // node 0 proposes to 2 (non-neighbor)
	res, err := NewEngine(dyn, p, Config{Seed: 1, MaxRounds: 10}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Connections != 0 {
		t.Fatalf("non-neighbor proposal connected: %+v", res)
	}
}

type fixedTarget struct{ target NodeID }

func (p *fixedTarget) TagBits() int           { return 0 }
func (p *fixedTarget) Tag(int, NodeID) uint64 { return 0 }
func (p *fixedTarget) Done() bool             { return false }
func (p *fixedTarget) Exchange(int, *Conn)    {}
func (p *fixedTarget) Decide(_ int, u NodeID, _ []Neighbor, _ *prand.RNG) Action {
	if u == 0 {
		return Propose(p.target)
	}
	return Listen()
}

func TestUniformAcceptance(t *testing.T) {
	// Star: all leaves propose to the hub every round; acceptance must be
	// ≈ uniform across leaves.
	n := 6
	dyn := dyngraph.NewStatic(graph.Star(n))
	p := &hubCounter{wins: make([]int, n)}
	res, err := NewEngine(dyn, p, Config{Seed: 9, MaxRounds: 5000}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Connections != 5000 {
		t.Fatalf("hub should connect every round, got %d", res.Connections)
	}
	for leaf := 1; leaf < n; leaf++ {
		if p.wins[leaf] < 700 || p.wins[leaf] > 1300 { // expect 1000 each
			t.Errorf("leaf %d accepted %d times (expect ≈1000)", leaf, p.wins[leaf])
		}
	}
}

type hubCounter struct{ wins []int }

func (p *hubCounter) TagBits() int           { return 0 }
func (p *hubCounter) Tag(int, NodeID) uint64 { return 0 }
func (p *hubCounter) Done() bool             { return false }
func (p *hubCounter) Exchange(_ int, c *Conn) {
	p.wins[c.Initiator]++
}
func (p *hubCounter) Decide(_ int, u NodeID, _ []Neighbor, _ *prand.RNG) Action {
	if u == 0 {
		return Listen()
	}
	return Propose(0)
}
