// Package mtm implements the mobile telephone model of Ghaffari–Newport
// (DISC'16) and Newport (PODC'17 — the reproduced paper, §2): synchronous
// rounds over a dynamic connected topology in which every node advertises a
// b-bit tag, scans its neighbors (learning ids and tags), and then either
// sends a single connection proposal or listens. A listening node that
// receives proposals accepts one chosen uniformly at random; a node that
// proposes cannot receive. The connected pairs — which always form a
// matching — perform a bounded amount of interactive communication
// (O(1) tokens plus O(polylog N) control bits) before the round ends.
//
// The Engine enforces every model constraint: one proposal per node,
// proposer-cannot-receive, uniform acceptance, matching-only connections,
// per-connection communication budgets, and the τ-stability of the topology
// schedule. Two interchangeable backends (sequential, and concurrent
// goroutine-per-connection) produce bit-identical executions because all
// randomness is drawn from per-node streams and per-round connections are
// vertex-disjoint.
package mtm

import (
	"errors"
	"fmt"
	"math/bits"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/prand"
)

// NodeID identifies a node; nodes are 0..n-1.
type NodeID = int

// Neighbor is one entry of a node's per-round scan: a neighbor's id and its
// advertised tag (low b bits meaningful).
type Neighbor struct {
	ID  NodeID
	Tag uint64
}

// Action is a node's per-round decision after scanning.
type Action struct {
	Propose bool
	Target  NodeID // meaningful only when Propose
}

// Listen returns the listening action.
func Listen() Action { return Action{} }

// Propose returns a proposal aimed at target.
func Propose(target NodeID) Action { return Action{Propose: true, Target: target} }

// Protocol is a distributed algorithm in the mobile telephone model. A
// Protocol owns the state of all nodes; the engine calls its methods with
// explicit node ids. Contract required for the concurrent backend (and
// checked by this package's determinism tests): Tag and Decide for node u
// read/write only u's state; Exchange reads/writes only the two endpoint
// states of its connection.
type Protocol interface {
	// TagBits returns the tag length b >= 0 the protocol uses.
	TagBits() int
	// Tag returns node's advertisement for round r.
	Tag(r int, node NodeID) uint64
	// Decide returns node's action for round r given its scan view. The
	// view slice is reused by the engine and must not be retained. rng is
	// the node's private randomness stream.
	Decide(r int, node NodeID, view []Neighbor, rng *prand.RNG) Action
	// Exchange performs the bounded pairwise communication over an accepted
	// connection.
	Exchange(r int, c *Conn)
	// Done reports whether the protocol's objective has been reached; the
	// engine checks it at the end of every round.
	Done() bool
}

// Conn is one accepted connection. Protocols meter their communication
// through ChargeBits and ChargeTokens; exceeding the model budget marks the
// connection over budget, which Engine.Run surfaces as an error (the
// algorithms in this repository are tested to stay within budget).
type Conn struct {
	Round     int
	Initiator NodeID
	Responder NodeID
	// InitRNG and RespRNG are the endpoints' private randomness streams.
	InitRNG *prand.RNG
	RespRNG *prand.RNG

	bitsUsed   int
	tokensUsed int
	bitLimit   int
	tokenLimit int
	overBudget bool
}

// NewConn constructs a standalone connection with the given budgets. The
// engine builds its own connections; this constructor exists for unit tests
// and for protocols that meter sub-phases independently.
func NewConn(round int, initiator, responder NodeID, initRNG, respRNG *prand.RNG, bitLimit, tokenLimit int) *Conn {
	return &Conn{
		Round: round, Initiator: initiator, Responder: responder,
		InitRNG: initRNG, RespRNG: respRNG,
		bitLimit: bitLimit, tokenLimit: tokenLimit,
	}
}

// ChargeBits records n control bits of interactive communication.
func (c *Conn) ChargeBits(n int) {
	c.bitsUsed += n
	if c.bitsUsed > c.bitLimit {
		c.overBudget = true
	}
}

// ChargeTokens records the transfer of n full gossip tokens.
func (c *Conn) ChargeTokens(n int) {
	c.tokensUsed += n
	if c.tokensUsed > c.tokenLimit {
		c.overBudget = true
	}
}

// BitsUsed returns the control bits charged so far.
func (c *Conn) BitsUsed() int { return c.bitsUsed }

// TokensUsed returns the tokens charged so far.
func (c *Conn) TokensUsed() int { return c.tokensUsed }

// OverBudget reports whether the connection exceeded the model budget.
func (c *Conn) OverBudget() bool { return c.overBudget }

// Config parameterizes an Engine.
type Config struct {
	// Seed derives every private randomness stream of the run.
	Seed uint64
	// MaxRounds aborts the run if the protocol is not Done by then.
	MaxRounds int
	// Concurrent selects the goroutine-per-connection backend.
	Concurrent bool
	// BitLimit overrides the per-connection control-bit budget
	// (default 64·(⌈log₂ N⌉+1)³, a generous polylog(N)).
	BitLimit int
	// TokenLimit overrides the per-connection token budget (default 4,
	// an O(1)).
	TokenLimit int
	// OnRound, if non-nil, is called after every completed round with the
	// round number; used by the harness for instrumentation (φ traces).
	OnRound func(r int)
}

// Result summarizes a run.
type Result struct {
	Rounds      int   // rounds executed
	Completed   bool  // protocol reported Done
	Connections int64 // accepted connections
	Proposals   int64 // proposals sent
	ControlBits int64 // total metered control bits
	TokensMoved int64 // total metered token transfers
	// EdgesAdded and EdgesRemoved total the topology churn over the run as
	// reported by a dyngraph.DeltaDynamic schedule (0 for schedules without
	// delta support, including all static ones).
	EdgesAdded   int64
	EdgesRemoved int64
}

// Engine drives a Protocol over a dynamic topology.
//
// All per-round working state lives in scratch buffers owned by the engine
// and allocated once in NewEngine: tag and action arrays, the flat proposal
// inbox (CSR-style counts + offsets + one backing array), the accepted
// connection pairs, and the Conn records themselves. The round loop
// therefore performs zero steady-state heap allocations — see DESIGN.md
// §"Scratch-buffer lifecycle".
type Engine struct {
	dyn   dyngraph.Dynamic
	proto Protocol
	cfg   Config
	rngs  []*prand.RNG

	// Per-round scratch, reused across rounds (sized to n once).
	tags    []uint64 // advertised tags, by node
	acts    []Action // decisions, by node
	targets []int32  // validated proposal target per node (-1 = none)
	inCnt   []int32  // valid proposals per target node
	inOff   []int32  // prefix offsets into inbox (len n+1)
	inbox   []int32  // flat proposal inbox: proposers grouped by target
	pairs   [][2]int32
	conns   []Conn
	view    []Neighbor   // sequential-backend scan view
	views   [][]Neighbor // concurrent-backend per-worker scan views
}

// ErrBudgetExceeded is returned when any connection exceeded its
// communication budget during the run.
var ErrBudgetExceeded = errors.New("mtm: connection exceeded communication budget")

// ErrTagTooWide is returned when a protocol advertises more bits than its
// declared tag length.
var ErrTagTooWide = errors.New("mtm: tag wider than declared tag length")

// NewEngine returns an engine for proto over dyn.
func NewEngine(dyn dyngraph.Dynamic, proto Protocol, cfg Config) *Engine {
	n := dyn.N()
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 22
	}
	if cfg.BitLimit <= 0 {
		lg := bits.Len(uint(n)) + 1
		cfg.BitLimit = 64 * lg * lg * lg
	}
	if cfg.TokenLimit <= 0 {
		cfg.TokenLimit = 4
	}
	e := &Engine{dyn: dyn, proto: proto, cfg: cfg, rngs: make([]*prand.RNG, n),
		tags:    make([]uint64, n),
		acts:    make([]Action, n),
		targets: make([]int32, n),
		inCnt:   make([]int32, n),
		inOff:   make([]int32, n+1),
		inbox:   make([]int32, n),
		pairs:   make([][2]int32, 0, n/2+1),
		conns:   make([]Conn, 0, n/2+1),
		view:    make([]Neighbor, 0, 64),
	}
	for u := 0; u < n; u++ {
		e.rngs[u] = prand.New(prand.Mix64(cfg.Seed ^ (uint64(u)+1)*0xd6e8feb86659fd93))
	}
	return e
}

// NodeRNG exposes node u's private stream (used by protocols that need
// initialization randomness before round 1, e.g. SimSharedBit seed choice).
func (e *Engine) NodeRNG(u NodeID) *prand.RNG { return e.rngs[u] }

// Run executes rounds until the protocol is Done or MaxRounds elapse.
func (e *Engine) Run() (Result, error) {
	var res Result
	if e.proto.Done() {
		res.Completed = true
		return res, nil
	}
	n := e.dyn.N()
	b := e.proto.TagBits()
	tagMask := uint64(0)
	if b > 0 {
		if b >= 64 {
			tagMask = ^uint64(0)
		} else {
			tagMask = (uint64(1) << uint(b)) - 1
		}
	}
	tags, acts := e.tags, e.acts
	overBudget := false
	// Delta-capable schedules (internal/mobility) report per-round edge
	// churn; the engine only accounts it — the incremental CSR maintenance
	// happens inside the schedule's At.
	deltaDyn, _ := e.dyn.(dyngraph.DeltaDynamic)

	for r := 1; r <= e.cfg.MaxRounds; r++ {
		g := e.dyn.At(r)
		if deltaDyn != nil {
			d := deltaDyn.DeltaFor(r)
			res.EdgesAdded += int64(len(d.Added))
			res.EdgesRemoved += int64(len(d.Removed))
		}

		// Advertise: every node picks its b-bit tag.
		for u := 0; u < n; u++ {
			tags[u] = e.proto.Tag(r, u)
			if tags[u]&^tagMask != 0 {
				return res, fmt.Errorf("%w: node %d round %d tag %#x with b=%d",
					ErrTagTooWide, u, r, tags[u], b)
			}
		}

		// Scan + decide.
		if e.cfg.Concurrent {
			e.decideConcurrent(r, g, tags, acts)
		} else {
			view := e.view
			for u := 0; u < n; u++ {
				view = view[:0]
				for _, v := range g.Adjacency(u) {
					view = append(view, Neighbor{ID: int(v), Tag: tags[v]})
				}
				acts[u] = e.proto.Decide(r, u, view, e.rngs[u])
			}
			e.view = view[:0] // keep any growth for the next round
		}

		// Deliver proposals into the flat inbox: a proposer cannot receive,
		// and proposals to proposers are lost (the target is busy sending).
		// Pass 1 validates each proposal and counts per-target arrivals;
		// pass 2 prefix-sums the counts into offsets and groups the
		// proposers by target — in ascending proposer order, exactly the
		// arrival order of the old per-target append lists.
		for u := 0; u < n; u++ {
			e.inCnt[u] = 0
			e.targets[u] = -1
		}
		for u := 0; u < n; u++ {
			if !acts[u].Propose {
				continue
			}
			res.Proposals++
			t := acts[u].Target
			if t < 0 || t >= n || t == u || !g.HasEdge(u, t) {
				continue // malformed proposal is simply lost
			}
			if acts[t].Propose {
				continue // target is itself proposing; cannot receive
			}
			e.targets[u] = int32(t)
			e.inCnt[t]++
		}
		e.inOff[0] = 0
		for v := 0; v < n; v++ {
			e.inOff[v+1] = e.inOff[v] + e.inCnt[v]
			e.inCnt[v] = 0 // reused as the fill cursor below
		}
		for u := 0; u < n; u++ {
			if t := e.targets[u]; t >= 0 {
				e.inbox[e.inOff[t]+e.inCnt[t]] = int32(u)
				e.inCnt[t]++
			}
		}

		// Accept: each listener with proposals picks one uniformly with its
		// own randomness; connections therefore form a matching.
		pairs := e.pairs[:0]
		for v := 0; v < n; v++ {
			in := e.inbox[e.inOff[v]:e.inOff[v+1]]
			if len(in) == 0 {
				continue
			}
			u := in[e.rngs[v].Intn(len(in))]
			pairs = append(pairs, [2]int32{u, int32(v)})
		}
		e.pairs = pairs[:0] // keep any growth for the next round

		// Communicate over each accepted connection; the Conn records live
		// in the engine's reusable slice.
		conns := e.conns[:0]
		for _, p := range pairs {
			u, v := int(p[0]), int(p[1])
			conns = append(conns, Conn{
				Round: r, Initiator: u, Responder: v,
				InitRNG: e.rngs[u], RespRNG: e.rngs[v],
				bitLimit: e.cfg.BitLimit, tokenLimit: e.cfg.TokenLimit,
			})
		}
		e.conns = conns[:0] // keep any growth for the next round
		if e.cfg.Concurrent {
			e.exchangeConcurrent(r, conns)
		} else {
			for i := range conns {
				e.proto.Exchange(r, &conns[i])
			}
		}
		for i := range conns {
			c := &conns[i]
			res.Connections++
			res.ControlBits += int64(c.bitsUsed)
			res.TokensMoved += int64(c.tokensUsed)
			if c.overBudget {
				overBudget = true
			}
		}

		res.Rounds = r
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(r)
		}
		if e.proto.Done() {
			res.Completed = true
			break
		}
	}
	if overBudget {
		return res, ErrBudgetExceeded
	}
	return res, nil
}
