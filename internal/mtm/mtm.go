// Package mtm implements the mobile telephone model of Ghaffari–Newport
// (DISC'16) and Newport (PODC'17 — the reproduced paper, §2): synchronous
// rounds over a dynamic connected topology in which every node advertises a
// b-bit tag, scans its neighbors (learning ids and tags), and then either
// sends a single connection proposal or listens. A listening node that
// receives proposals accepts one chosen uniformly at random; a node that
// proposes cannot receive. The connected pairs — which always form a
// matching — perform a bounded amount of interactive communication
// (O(1) tokens plus O(polylog N) control bits) before the round ends.
//
// The Engine enforces every model constraint: one proposal per node,
// proposer-cannot-receive, uniform acceptance, matching-only connections,
// per-connection communication budgets, and the τ-stability of the topology
// schedule. Three interchangeable backends (sequential, concurrent
// goroutine-per-connection, and shard-parallel — see shard.go) produce
// bit-identical executions because all randomness is drawn from per-node
// streams and per-round connections are vertex-disjoint.
package mtm

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/profile"
)

// NodeID identifies a node; nodes are 0..n-1.
type NodeID = int

// Neighbor is one entry of a node's per-round scan: a neighbor's id and its
// advertised tag (low b bits meaningful).
type Neighbor struct {
	ID  NodeID
	Tag uint64
}

// Action is a node's per-round decision after scanning.
type Action struct {
	Propose bool
	Target  NodeID // meaningful only when Propose
}

// Listen returns the listening action.
func Listen() Action { return Action{} }

// Propose returns a proposal aimed at target.
func Propose(target NodeID) Action { return Action{Propose: true, Target: target} }

// Protocol is a distributed algorithm in the mobile telephone model. A
// Protocol owns the state of all nodes; the engine calls its methods with
// explicit node ids. Contract required for the concurrent backend (and
// checked by this package's determinism tests): Tag and Decide for node u
// read/write only u's state; Exchange reads/writes only the two endpoint
// states of its connection.
type Protocol interface {
	// TagBits returns the tag length b >= 0 the protocol uses.
	TagBits() int
	// Tag returns node's advertisement for round r.
	Tag(r int, node NodeID) uint64
	// Decide returns node's action for round r given its scan view. The
	// view slice is reused by the engine and must not be retained. rng is
	// the node's private randomness stream.
	Decide(r int, node NodeID, view []Neighbor, rng *prand.RNG) Action
	// Exchange performs the bounded pairwise communication over an accepted
	// connection.
	Exchange(r int, c *Conn)
	// Done reports whether the protocol's objective has been reached; the
	// engine checks it at the end of every round.
	Done() bool
}

// Conn is one accepted connection. Protocols meter their communication
// through ChargeBits and ChargeTokens; exceeding the model budget marks the
// connection over budget, which Engine.Run surfaces as an error (the
// algorithms in this repository are tested to stay within budget).
type Conn struct {
	Round     int
	Initiator NodeID
	Responder NodeID
	// InitRNG and RespRNG are the endpoints' private randomness streams.
	InitRNG *prand.RNG
	RespRNG *prand.RNG

	bitsUsed   int
	tokensUsed int
	bitLimit   int
	tokenLimit int
	overBudget bool
}

// NewConn constructs a standalone connection with the given budgets. The
// engine builds its own connections; this constructor exists for unit tests
// and for protocols that meter sub-phases independently.
func NewConn(round int, initiator, responder NodeID, initRNG, respRNG *prand.RNG, bitLimit, tokenLimit int) *Conn {
	return &Conn{
		Round: round, Initiator: initiator, Responder: responder,
		InitRNG: initRNG, RespRNG: respRNG,
		bitLimit: bitLimit, tokenLimit: tokenLimit,
	}
}

// ChargeBits records n control bits of interactive communication.
func (c *Conn) ChargeBits(n int) {
	c.bitsUsed += n
	if c.bitsUsed > c.bitLimit {
		c.overBudget = true
	}
}

// ChargeTokens records the transfer of n full gossip tokens.
func (c *Conn) ChargeTokens(n int) {
	c.tokensUsed += n
	if c.tokensUsed > c.tokenLimit {
		c.overBudget = true
	}
}

// BitsUsed returns the control bits charged so far.
func (c *Conn) BitsUsed() int { return c.bitsUsed }

// TokensUsed returns the tokens charged so far.
func (c *Conn) TokensUsed() int { return c.tokensUsed }

// OverBudget reports whether the connection exceeded the model budget.
func (c *Conn) OverBudget() bool { return c.overBudget }

// Config parameterizes an Engine.
type Config struct {
	// Seed derives every private randomness stream of the run.
	Seed uint64
	// MaxRounds aborts the run if the protocol is not Done by then.
	MaxRounds int
	// Concurrent selects the goroutine-per-connection backend.
	Concurrent bool
	// Workers selects the shard-parallel backend: the node range is split
	// into Workers contiguous degree-balanced shards and every round phase
	// (tag, decide, deliver, accept, exchange) runs shard-parallel with a
	// deterministic cross-shard reduction, producing executions
	// byte-identical to the sequential engine at any worker count or
	// GOMAXPROCS (see DESIGN.md §11). Workers ≤ 1 keeps the sequential
	// round loop (and its 0 allocs/op steady state); Workers ≥ 2
	// supersedes Concurrent.
	Workers int
	// BitLimit overrides the per-connection control-bit budget
	// (default 64·(⌈log₂ N⌉+1)³, a generous polylog(N)).
	BitLimit int
	// TokenLimit overrides the per-connection token budget (default 4,
	// an O(1)).
	TokenLimit int
	// OnRound, if non-nil, is called after every completed round with the
	// round number; used by the harness for instrumentation (φ traces).
	OnRound func(r int)
}

// Result summarizes a run.
type Result struct {
	Rounds      int   // rounds executed
	Completed   bool  // protocol reported Done
	Connections int64 // accepted connections
	Proposals   int64 // proposals sent
	ControlBits int64 // total metered control bits
	TokensMoved int64 // total metered token transfers
	// EdgesAdded and EdgesRemoved total the topology churn over the run as
	// reported by a dyngraph.DeltaDynamic schedule (0 for schedules without
	// delta support, including all static ones).
	EdgesAdded   int64
	EdgesRemoved int64
}

// RoundStats reports one executed round: the engine meters for exactly
// that round (not running totals) plus whether the protocol reached its
// objective at the round's end.
type RoundStats struct {
	Round        int   // the 1-based round just executed
	Connections  int   // accepted connections this round
	Proposals    int   // proposals sent this round
	ControlBits  int64 // control bits metered this round
	TokensMoved  int64 // token transfers metered this round
	EdgesAdded   int   // topology churn entering this round (delta schedules)
	EdgesRemoved int
	Done         bool // protocol reported Done at the end of this round
}

// Engine drives a Protocol over a dynamic topology. It is a resumable step
// state machine: Step executes exactly one round, Run loops Step to
// completion, and CheckpointTo/RestoreFrom serialize the engine's mutable
// state (round counter, meters, per-node RNG streams) so a run can be
// resumed byte-identically at any round boundary.
//
// All per-round working state lives in scratch buffers owned by the engine
// and allocated once in NewEngine: tag and action arrays, the flat proposal
// inbox (CSR-style counts + offsets + one backing array), the accepted
// connection pairs, and the Conn records themselves. The round loop
// therefore performs zero steady-state heap allocations — see DESIGN.md
// §"Scratch-buffer lifecycle".
type Engine struct {
	dyn   dyngraph.Dynamic
	proto Protocol
	cfg   Config
	rngs  []*prand.RNG

	// Step state machine.
	round      int    // rounds executed so far
	started    bool   // the pre-round-1 Done check has run
	completed  bool   // protocol reported Done
	overBudget bool   // some connection exceeded its budget
	failed     error  // a model-contract violation poisoned the run
	tagMask    uint64 // mask of the protocol's declared tag width
	deltaDyn   dyngraph.DeltaDynamic
	res        Result // running totals

	// Per-round scratch, reused across rounds (sized to n once).
	tags    []uint64 // advertised tags, by node
	acts    []Action // decisions, by node
	targets []int32  // validated proposal target per node (-1 = none)
	inCnt   []int32  // valid proposals per target node
	inOff   []int32  // prefix offsets into inbox (len n+1)
	inbox   []int32  // flat proposal inbox: proposers grouped by target
	pairs   [][2]int32
	conns   []Conn
	view    []Neighbor   // sequential-backend scan view
	views   [][]Neighbor // concurrent/sharded per-worker scan views

	// Sharded-backend state (see shard.go).
	workers    int          // resolved shard count (1 = sequential)
	cuts       []int32      // per-round shard boundaries (len shards+1)
	testCuts   []int32      // test hook: fixed boundaries override cuts
	shardPairs [][][2]int32 // per-shard accepted pairs, merged in shard order
	shardProps []int64      // per-shard proposal counts
	shardBase  []int32      // per-shard inbox base offsets (len shards+1)
	shardErrs  []error      // per-shard first tag-width violation

	// Profiling sidecar (nil = off; see internal/profile and DESIGN.md
	// §13). Timing is read-only: it draws no randomness and mutates no
	// simulation state, so profiled and unprofiled runs are
	// byte-identical. profShardNs accumulates each shard's compute time
	// over the round's node-sharded phases (written by exactly one shard
	// each, like shardErrs); profParNs the wall time of those parallel
	// phases; profRedNs the sequential cross-shard reductions.
	prof        *profile.Recorder
	profShardNs []int64
	profParNs   int64
	profRedNs   int64
}

// ErrBudgetExceeded is returned when any connection exceeded its
// communication budget during the run.
var ErrBudgetExceeded = errors.New("mtm: connection exceeded communication budget")

// ErrTagTooWide is returned when a protocol advertises more bits than its
// declared tag length.
var ErrTagTooWide = errors.New("mtm: tag wider than declared tag length")

// ErrRunFinished is returned by Step once the run is over (protocol Done,
// MaxRounds exhausted, or a prior round failed).
var ErrRunFinished = errors.New("mtm: run already finished")

// NewEngine returns an engine for proto over dyn.
func NewEngine(dyn dyngraph.Dynamic, proto Protocol, cfg Config) *Engine {
	n := dyn.N()
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 22
	}
	if cfg.BitLimit <= 0 {
		lg := bits.Len(uint(n)) + 1
		cfg.BitLimit = 64 * lg * lg * lg
	}
	if cfg.TokenLimit <= 0 {
		cfg.TokenLimit = 4
	}
	e := &Engine{dyn: dyn, proto: proto, cfg: cfg, rngs: make([]*prand.RNG, n),
		tags:    make([]uint64, n),
		acts:    make([]Action, n),
		targets: make([]int32, n),
		inCnt:   make([]int32, n),
		inOff:   make([]int32, n+1),
		inbox:   make([]int32, n),
		pairs:   make([][2]int32, 0, n/2+1),
		conns:   make([]Conn, 0, n/2+1),
		view:    make([]Neighbor, 0, 64),
	}
	e.workers = cfg.Workers
	if e.workers < 1 {
		e.workers = 1
	}
	for u := 0; u < n; u++ {
		e.rngs[u] = prand.New(prand.Mix64(cfg.Seed ^ (uint64(u)+1)*0xd6e8feb86659fd93))
	}
	if b := proto.TagBits(); b > 0 {
		if b >= 64 {
			e.tagMask = ^uint64(0)
		} else {
			e.tagMask = (uint64(1) << uint(b)) - 1
		}
	}
	// Delta-capable schedules (internal/mobility) report per-round edge
	// churn; the engine only accounts it — the incremental CSR maintenance
	// happens inside the schedule's At.
	e.deltaDyn, _ = dyn.(dyngraph.DeltaDynamic)
	return e
}

// NodeRNG exposes node u's private stream (used by protocols that need
// initialization randomness before round 1, e.g. SimSharedBit seed choice).
func (e *Engine) NodeRNG(u NodeID) *prand.RNG { return e.rngs[u] }

// SetProtocol swaps the protocol the engine drives. The replacement must
// behave identically to the original (same TagBits, same decisions — e.g.
// a trace.Wrap of it); it exists so observers that tap the protocol layer
// can be attached to an already-constructed engine at a round boundary.
func (e *Engine) SetProtocol(p Protocol) { e.proto = p }

// SetDynamic swaps the topology schedule the engine reads from, at a
// round boundary. The replacement must describe the same node count; the
// next Step queries it at the engine's global round number, so schedules
// that track motion (internal/mobility) fast-forward deterministically
// into position. This is the engine half of phased scenarios
// (Simulation.Rebind): the round counter, meters, RNG streams and
// protocol state all survive the swap untouched.
func (e *Engine) SetDynamic(dyn dyngraph.Dynamic) {
	if dyn.N() != e.dyn.N() {
		panic("mtm: SetDynamic with a different node count")
	}
	e.dyn = dyn
	e.deltaDyn, _ = dyn.(dyngraph.DeltaDynamic)
}

// SetWorkers retunes the shard-parallel backend at a round boundary
// (w ≤ 1 selects the sequential path). Worker count affects wall-clock
// only, never results, so it is valid to change mid-run or after a
// restore: checkpoints do not record it, and sequential and parallel
// engines produce interchangeable, byte-identical checkpoints.
func (e *Engine) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	e.workers = w
}

// Workers returns the resolved shard-worker count (≥ 1).
func (e *Engine) Workers() int { return e.workers }

// SetProfiler attaches (nil detaches) a timing recorder at a round
// boundary. Profiling is a read-only sidecar: it affects wall-clock
// only, never results or checkpoints, so — like SetWorkers — it is
// valid to toggle mid-run or after a restore.
func (e *Engine) SetProfiler(p *profile.Recorder) { e.prof = p }

// Profiler returns the attached timing recorder (nil when profiling is
// off).
func (e *Engine) Profiler() *profile.Recorder { return e.prof }

// start runs the one-time pre-round-1 protocol check (an already-Done
// protocol completes the run in zero rounds, as the closed loop did).
// Restored engines skip it: their checkpoint recorded a started run, and
// re-invoking Done would disturb protocols whose Done has side effects
// (EpsilonGossip counts its calls).
func (e *Engine) start() {
	if e.started {
		return
	}
	e.started = true
	if e.proto.Done() {
		e.completed = true
		e.res.Completed = true
	}
}

// Finished reports whether the run is over: the protocol reached its
// objective, MaxRounds elapsed, or a round failed a model contract.
func (e *Engine) Finished() bool {
	e.start()
	return e.completed || e.failed != nil || e.round >= e.cfg.MaxRounds
}

// Round returns the number of rounds executed so far.
func (e *Engine) Round() int { return e.round }

// Failed returns the model-contract violation that poisoned the run, if
// any. A failed run reports Finished but its Result is partial.
func (e *Engine) Failed() error { return e.failed }

// Result returns the running totals (final once Finished).
func (e *Engine) Result() Result { return e.res }

// OverBudget reports whether any connection so far exceeded its
// communication budget (surfaced by Run as ErrBudgetExceeded).
func (e *Engine) OverBudget() bool { return e.overBudget }

// Step executes exactly one round and returns its per-round stats. Calling
// Step on a finished run returns ErrRunFinished.
func (e *Engine) Step() (RoundStats, error) {
	e.start()
	if e.completed || e.round >= e.cfg.MaxRounds {
		return RoundStats{Round: e.round, Done: e.completed}, ErrRunFinished
	}
	if e.failed != nil {
		return RoundStats{Round: e.round}, e.failed
	}

	n := e.dyn.N()
	tags, acts := e.tags, e.acts
	r := e.round + 1
	stats := RoundStats{Round: r}

	// Profiling marks (no-ops when prof is nil). Timing reads the clock
	// and writes profiling scratch only, so the simulated round below is
	// identical with or without it.
	prof := e.prof
	var tRound, tPhase time.Time
	var phaseNs [profile.NumPhases]int64
	if prof != nil {
		for i := range e.profShardNs {
			e.profShardNs[i] = 0
		}
		e.profParNs, e.profRedNs = 0, 0
		tRound = time.Now()
		tPhase = tRound
	}

	g := e.dyn.At(r)
	if e.deltaDyn != nil {
		d := e.deltaDyn.DeltaFor(r)
		stats.EdgesAdded = len(d.Added)
		stats.EdgesRemoved = len(d.Removed)
		e.res.EdgesAdded += int64(stats.EdgesAdded)
		e.res.EdgesRemoved += int64(stats.EdgesRemoved)
	}
	if prof != nil {
		now := time.Now()
		phaseNs[profile.PhaseChurn] = now.Sub(tPhase).Nanoseconds()
		tPhase = now
	}

	// The sharded backend partitions [0, n) into contiguous shards and runs
	// every phase below shard-parallel, byte-identical to this sequential
	// path (cuts == nil selects the sequential round loop).
	cuts := e.roundCuts(g, n)

	// Advertise: every node picks its b-bit tag.
	if cuts != nil {
		if err := e.tagSharded(r, cuts); err != nil {
			return stats, err
		}
	} else {
		for u := 0; u < n; u++ {
			tags[u] = e.proto.Tag(r, u)
			if tags[u]&^e.tagMask != 0 {
				e.failed = fmt.Errorf("%w: node %d round %d tag %#x with b=%d",
					ErrTagTooWide, u, r, tags[u], e.proto.TagBits())
				return stats, e.failed
			}
		}
	}

	// Scan + decide.
	switch {
	case cuts != nil:
		e.decideSharded(r, g, tags, acts, cuts)
	case e.cfg.Concurrent:
		e.decideConcurrent(r, g, tags, acts)
	default:
		view := e.view
		for u := 0; u < n; u++ {
			view = view[:0]
			for _, v := range g.Adjacency(u) {
				view = append(view, Neighbor{ID: int(v), Tag: tags[v]})
			}
			acts[u] = e.proto.Decide(r, u, view, e.rngs[u])
		}
		e.view = view[:0] // keep any growth for the next round
	}

	// Deliver proposals into the flat inbox, then accept: each listener
	// with proposals picks one uniformly with its own randomness, so
	// connections form a matching.
	var pairs [][2]int32
	if cuts != nil {
		e.deliverSharded(g, acts, cuts, &stats)
		pairs = e.acceptSharded(cuts)
	} else {
		// A proposer cannot receive, and proposals to proposers are lost
		// (the target is busy sending). Pass 1 validates each proposal and
		// counts per-target arrivals; pass 2 prefix-sums the counts into
		// offsets and groups the proposers by target — in ascending
		// proposer order, exactly the arrival order of the old per-target
		// append lists.
		for u := 0; u < n; u++ {
			e.inCnt[u] = 0
			e.targets[u] = -1
		}
		for u := 0; u < n; u++ {
			if !acts[u].Propose {
				continue
			}
			stats.Proposals++
			t := acts[u].Target
			if t < 0 || t >= n || t == u || !g.HasEdge(u, t) {
				continue // malformed proposal is simply lost
			}
			if acts[t].Propose {
				continue // target is itself proposing; cannot receive
			}
			e.targets[u] = int32(t)
			e.inCnt[t]++
		}
		e.inOff[0] = 0
		for v := 0; v < n; v++ {
			e.inOff[v+1] = e.inOff[v] + e.inCnt[v]
			e.inCnt[v] = 0 // reused as the fill cursor below
		}
		for u := 0; u < n; u++ {
			if t := e.targets[u]; t >= 0 {
				e.inbox[e.inOff[t]+e.inCnt[t]] = int32(u)
				e.inCnt[t]++
			}
		}

		pairs = e.pairs[:0]
		for v := 0; v < n; v++ {
			in := e.inbox[e.inOff[v]:e.inOff[v+1]]
			if len(in) == 0 {
				continue
			}
			u := in[e.rngs[v].Intn(len(in))]
			pairs = append(pairs, [2]int32{u, int32(v)})
		}
	}
	e.pairs = pairs[:0] // keep any growth for the next round
	if prof != nil {
		now := time.Now()
		// The sequential cross-shard reductions accumulated into
		// profRedNs are attributed to the reduction phase, not proposal.
		phaseNs[profile.PhaseProposal] = now.Sub(tPhase).Nanoseconds() - e.profRedNs
		phaseNs[profile.PhaseReduction] = e.profRedNs
		tPhase = now
	}

	// Communicate over each accepted connection; the Conn records live
	// in the engine's reusable slice.
	conns := e.conns[:0]
	for _, p := range pairs {
		u, v := int(p[0]), int(p[1])
		conns = append(conns, Conn{
			Round: r, Initiator: u, Responder: v,
			InitRNG: e.rngs[u], RespRNG: e.rngs[v],
			bitLimit: e.cfg.BitLimit, tokenLimit: e.cfg.TokenLimit,
		})
	}
	e.conns = conns[:0] // keep any growth for the next round
	switch {
	case cuts != nil:
		e.exchangeSharded(r, conns, len(cuts)-1)
	case e.cfg.Concurrent:
		e.exchangeConcurrent(r, conns)
	default:
		for i := range conns {
			e.proto.Exchange(r, &conns[i])
		}
	}
	for i := range conns {
		c := &conns[i]
		stats.Connections++
		stats.ControlBits += int64(c.bitsUsed)
		stats.TokensMoved += int64(c.tokensUsed)
		if c.overBudget {
			e.overBudget = true
		}
	}
	e.res.Connections += int64(stats.Connections)
	e.res.Proposals += int64(stats.Proposals)
	e.res.ControlBits += stats.ControlBits
	e.res.TokensMoved += stats.TokensMoved
	if prof != nil {
		phaseNs[profile.PhaseExchange] = time.Since(tPhase).Nanoseconds()
	}

	e.round = r
	e.res.Rounds = r
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(r)
	}
	if e.proto.Done() {
		e.completed = true
		e.res.Completed = true
		stats.Done = true
	}
	if prof != nil {
		w := 1
		if cuts != nil {
			w = len(cuts) - 1
		}
		e.recordProfile(r, time.Since(tRound).Nanoseconds(), phaseNs, w)
	}
	return stats, nil
}

// recordProfile folds the finished round's timing into the recorder,
// summarizing per-shard compute and barrier wait when the round ran
// sharded. It writes only profiling state and never allocates.
func (e *Engine) recordProfile(r int, totalNs int64, phaseNs [profile.NumPhases]int64, workers int) {
	rp := profile.RoundProfile{Round: r, TotalNs: totalNs, PhaseNs: phaseNs, Workers: workers}
	if workers > 1 && workers <= len(e.profShardNs) {
		minNs, maxNs, sum := e.profShardNs[0], e.profShardNs[0], int64(0)
		for s := 0; s < workers; s++ {
			ns := e.profShardNs[s]
			sum += ns
			if ns > maxNs {
				maxNs = ns
			}
			if ns < minNs {
				minNs = ns
			}
		}
		rp.MaxShardNs, rp.MinShardNs = maxNs, minNs
		rp.MeanShardNs = sum / int64(workers)
		// Total time shards spent waiting at phase barriers: each of the
		// workers goroutines was live for the parallel-phase wall time,
		// and whatever it did not spend computing it spent waiting.
		if wait := int64(workers)*e.profParNs - sum; wait > 0 {
			rp.BarrierNs = wait
		}
	}
	e.prof.Record(rp)
}

// Run executes rounds until the protocol is Done or MaxRounds elapse — the
// closed-loop wrapper over the Step machine that preserves the original
// blocking API (and its semantics: budget violations surface only after
// the run finishes).
func (e *Engine) Run() (Result, error) {
	for !e.Finished() {
		if _, err := e.Step(); err != nil {
			return e.res, err
		}
	}
	if e.failed != nil {
		// A run poisoned by an earlier Step must keep reporting its
		// failure, not convert the partial Result into a clean return.
		return e.res, e.failed
	}
	if e.overBudget {
		return e.res, ErrBudgetExceeded
	}
	return e.res, nil
}

// CheckpointTo serializes the engine's mutable state: the step-machine
// flags, the running meters, and every node's RNG stream. Scratch buffers
// carry no live state at a round boundary and are not serialized.
func (e *Engine) CheckpointTo(w *ckpt.Writer) {
	w.Section("mtm.engine")
	w.Bool(e.started)
	w.Bool(e.completed)
	w.Bool(e.overBudget)
	w.Int(e.round)
	w.Int(e.res.Rounds)
	w.Bool(e.res.Completed)
	w.I64(e.res.Connections)
	w.I64(e.res.Proposals)
	w.I64(e.res.ControlBits)
	w.I64(e.res.TokensMoved)
	w.I64(e.res.EdgesAdded)
	w.I64(e.res.EdgesRemoved)
	w.U64(uint64(len(e.rngs)))
	for _, rng := range e.rngs {
		s := rng.State()
		w.U64(s[0])
		w.U64(s[1])
		w.U64(s[2])
		w.U64(s[3])
	}
}

// RestoreFrom loads a CheckpointTo stream into a freshly constructed
// engine for the same configuration.
func (e *Engine) RestoreFrom(r *ckpt.Reader) error {
	r.Section("mtm.engine")
	e.started = r.Bool()
	e.completed = r.Bool()
	e.overBudget = r.Bool()
	e.round = r.Int()
	e.res.Rounds = r.Int()
	e.res.Completed = r.Bool()
	e.res.Connections = r.I64()
	e.res.Proposals = r.I64()
	e.res.ControlBits = r.I64()
	e.res.TokensMoved = r.I64()
	e.res.EdgesAdded = r.I64()
	e.res.EdgesRemoved = r.I64()
	n := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.rngs) {
		return fmt.Errorf("mtm: checkpoint has %d node RNGs, engine has %d", n, len(e.rngs))
	}
	for _, rng := range e.rngs {
		rng.SetState([4]uint64{r.U64(), r.U64(), r.U64(), r.U64()})
	}
	return r.Err()
}
