package mtm

// Shard-parallel round backend: one execution spread across cores with
// results byte-identical to the sequential engine.
//
// The node range [0, n) is partitioned each round into Workers contiguous
// shards whose boundaries balance estimated round cost (degree + fixed
// per-node work; graph.BalancedCutsInto). Every phase then runs
// shard-parallel over per-shard scratch, with a full barrier between
// phases so each phase reads a complete snapshot of the previous one:
//
//	tag      — u-shards write tags[lo:hi]; lowest-u tag-width violation wins
//	decide   — u-shards read the full tag array, write acts[lo:hi],
//	           drawing only from the rngs of their own nodes
//	deliver  — u-shards validate proposals into targets[lo:hi];
//	           then v-shards count arrivals into their own inCnt range and
//	           a tiny sequential pass turns per-shard totals into inbox
//	           base offsets (the deterministic reduction)
//	accept   — v-shards fill their inbox region in ascending proposer
//	           order and draw each listener's uniform choice from the
//	           listener's own stream; per-shard pair lists concatenate in
//	           shard order, which is ascending responder order — exactly
//	           the sequential engine's pair order
//	exchange — accepted connections are vertex-disjoint (a matching), so
//	           contiguous chunks of the pair list are safe to run in
//	           parallel under the Protocol locality contract
//
// Determinism therefore needs no atomics and no locks: every array cell is
// written by exactly one shard, every RNG stream is advanced by exactly the
// same calls in the same order as the sequential path, and the only
// cross-shard reductions (proposal totals, inbox bases, pair concatenation)
// run sequentially in shard order. See DESIGN.md §11.

import (
	"fmt"
	"sync"
	"time"

	"mobilegossip/internal/graph"
)

// shardNodeWeight is the fixed per-node phase cost relative to one adjacency
// entry used when balancing shard boundaries: every node is tagged, decided
// and delivered once regardless of degree, so pure vertex-count balance
// would overload shards holding the high-degree range.
const shardNodeWeight = 8

// shardMinConns is the connection count below which the exchange phase runs
// sequentially — goroutine fan-out costs more than the handful of calls.
const shardMinConns = 64

// roundCuts returns this round's shard boundaries, or nil when the round
// should take the sequential path. The boundaries are recomputed from the
// round's graph (dynamic schedules change degrees) into a reusable buffer,
// so the steady state allocates nothing beyond the goroutine fan-out.
func (e *Engine) roundCuts(g *graph.Graph, n int) []int32 {
	if e.testCuts != nil {
		return e.testCuts
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		return nil
	}
	e.cuts = g.BalancedCutsInto(w, shardNodeWeight, e.cuts)
	return e.cuts
}

// ensureShardScratch sizes the per-shard scratch for w shards.
func (e *Engine) ensureShardScratch(w int) {
	for len(e.views) < w {
		e.views = append(e.views, make([]Neighbor, 0, 64))
	}
	for len(e.shardPairs) < w {
		e.shardPairs = append(e.shardPairs, make([][2]int32, 0, 16))
	}
	for len(e.shardProps) < w {
		e.shardProps = append(e.shardProps, 0)
	}
	for len(e.shardErrs) < w {
		e.shardErrs = append(e.shardErrs, nil)
	}
	for len(e.shardBase) < w+1 {
		e.shardBase = append(e.shardBase, 0)
	}
	if e.prof != nil {
		for len(e.profShardNs) < w {
			e.profShardNs = append(e.profShardNs, 0)
		}
	}
}

// runShards runs fn(s, lo, hi) for every non-empty shard [cuts[s], cuts[s+1])
// concurrently and waits for all of them (the phase barrier). The last
// non-empty shard runs on the calling goroutine.
func runShards(cuts []int32, fn func(s, lo, hi int)) {
	last := -1
	for s := 0; s+1 < len(cuts); s++ {
		if cuts[s] < cuts[s+1] {
			last = s
		}
	}
	if last < 0 {
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < last; s++ {
		lo, hi := int(cuts[s]), int(cuts[s+1])
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	fn(last, int(cuts[last]), int(cuts[last+1]))
	wg.Wait()
}

// runShardsTimed is runShards plus the profiling sidecar: with a recorder
// attached it accumulates each shard's compute time into profShardNs
// (each shard writes only its own slot, like shardErrs) and the phase's
// wall time into profParNs; without one it is exactly runShards. The
// fan-out loop is duplicated rather than wrapped in a timing closure so
// profiling adds clock reads but no allocations beyond runShards' own
// goroutine launches.
func (e *Engine) runShardsTimed(cuts []int32, fn func(s, lo, hi int)) {
	if e.prof == nil {
		runShards(cuts, fn)
		return
	}
	t0 := time.Now()
	last := -1
	for s := 0; s+1 < len(cuts); s++ {
		if cuts[s] < cuts[s+1] {
			last = s
		}
	}
	if last < 0 {
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < last; s++ {
		lo, hi := int(cuts[s]), int(cuts[s+1])
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			ts := time.Now()
			fn(s, lo, hi)
			e.profShardNs[s] += time.Since(ts).Nanoseconds()
		}(s, lo, hi)
	}
	ts := time.Now()
	fn(last, int(cuts[last]), int(cuts[last+1]))
	e.profShardNs[last] += time.Since(ts).Nanoseconds()
	wg.Wait()
	e.profParNs += time.Since(t0).Nanoseconds()
}

// tagSharded runs the advertise phase shard-parallel. Each shard records its
// first tag-width violation; the lowest shard's wins, which — because each
// shard scans ascending — is exactly the lowest-u violation the sequential
// path would have reported.
func (e *Engine) tagSharded(r int, cuts []int32) error {
	w := len(cuts) - 1
	e.ensureShardScratch(w)
	for s := 0; s < w; s++ {
		e.shardErrs[s] = nil
	}
	e.runShardsTimed(cuts, func(s, lo, hi int) {
		for u := lo; u < hi; u++ {
			e.tags[u] = e.proto.Tag(r, u)
			if e.tags[u]&^e.tagMask != 0 && e.shardErrs[s] == nil {
				e.shardErrs[s] = fmt.Errorf("%w: node %d round %d tag %#x with b=%d",
					ErrTagTooWide, u, r, e.tags[u], e.proto.TagBits())
			}
		}
	})
	for s := 0; s < w; s++ {
		if err := e.shardErrs[s]; err != nil {
			e.failed = err
			return err
		}
	}
	return nil
}

// decideSharded runs the scan+decide phase shard-parallel: each shard reads
// the complete tag array written before the phase barrier, builds views in
// its own persistent buffer, and draws only from its own nodes' streams.
func (e *Engine) decideSharded(r int, g *graph.Graph, tags []uint64, acts []Action, cuts []int32) {
	e.runShardsTimed(cuts, func(s, lo, hi int) {
		view := e.views[s]
		for u := lo; u < hi; u++ {
			view = view[:0]
			for _, v := range g.Adjacency(u) {
				view = append(view, Neighbor{ID: int(v), Tag: tags[v]})
			}
			acts[u] = e.proto.Decide(r, u, view, e.rngs[u])
		}
		e.views[s] = view[:0] // keep any growth for the next round
	})
}

// deliverSharded validates proposals and lays out the flat inbox.
// Sub-phase 1 (u-shards): validate each proposal against the complete
// action array into targets[lo:hi], counting proposals per shard.
// Sub-phase 2 (v-shards): each shard scans the full target array and counts
// only arrivals aimed at its own node range — O(n) per shard wall-clock,
// but cache-friendly and write-disjoint. A tiny sequential reduction over
// the per-shard totals then fixes each shard's inbox base offset, making
// the final layout identical to the sequential prefix sum.
func (e *Engine) deliverSharded(g *graph.Graph, acts []Action, cuts []int32, stats *RoundStats) {
	n := len(e.targets)
	w := len(cuts) - 1
	for s := 0; s < w; s++ {
		e.shardProps[s] = 0
		e.shardBase[s+1] = 0
	}
	e.runShardsTimed(cuts, func(s, lo, hi int) {
		props := int64(0)
		for u := lo; u < hi; u++ {
			e.targets[u] = -1
			if !acts[u].Propose {
				continue
			}
			props++
			t := acts[u].Target
			if t < 0 || t >= n || t == u || !g.HasEdge(u, t) {
				continue // malformed proposal is simply lost
			}
			if acts[t].Propose {
				continue // target is itself proposing; cannot receive
			}
			e.targets[u] = int32(t)
		}
		e.shardProps[s] = props
	})
	var tRed time.Time
	if e.prof != nil {
		tRed = time.Now()
	}
	for s := 0; s < w; s++ {
		stats.Proposals += int(e.shardProps[s])
	}
	if e.prof != nil {
		e.profRedNs += time.Since(tRed).Nanoseconds()
	}

	e.runShardsTimed(cuts, func(s, lo, hi int) {
		for v := lo; v < hi; v++ {
			e.inCnt[v] = 0
		}
		total := int32(0)
		lo32, hi32 := int32(lo), int32(hi)
		for u := 0; u < n; u++ {
			if t := e.targets[u]; t >= lo32 && t < hi32 {
				e.inCnt[t]++
				total++
			}
		}
		e.shardBase[s+1] = total
	})
	if e.prof != nil {
		tRed = time.Now()
	}
	e.shardBase[0] = 0
	for s := 0; s < w; s++ {
		e.shardBase[s+1] += e.shardBase[s] // per-shard totals → base offsets
	}
	if e.prof != nil {
		e.profRedNs += time.Since(tRed).Nanoseconds()
	}
}

// acceptSharded fills the inbox and draws the acceptances, shard-parallel
// over responder shards, then concatenates the per-shard pair lists in shard
// order — ascending responder order, the sequential engine's pair order.
//
// Each shard derives its nodes' inbox offsets from its base and the counts
// of sub-phase 2, reusing inCnt as the fill cursor exactly like the
// sequential path. The accept loop reads inbox[inOff[v] : inOff[v]+inCnt[v]]
// rather than inOff[v+1]: for a shard's last node, inOff[v+1] belongs to the
// next shard and may not be written yet.
func (e *Engine) acceptSharded(cuts []int32) [][2]int32 {
	n := len(e.targets)
	w := len(cuts) - 1
	for s := 0; s < w; s++ {
		e.shardPairs[s] = e.shardPairs[s][:0]
	}
	e.runShardsTimed(cuts, func(s, lo, hi int) {
		off := e.shardBase[s]
		for v := lo; v < hi; v++ {
			e.inOff[v] = off
			off += e.inCnt[v]
			e.inCnt[v] = 0 // reused as the fill cursor below
		}
		lo32, hi32 := int32(lo), int32(hi)
		for u := 0; u < n; u++ {
			if t := e.targets[u]; t >= lo32 && t < hi32 {
				e.inbox[e.inOff[t]+e.inCnt[t]] = int32(u)
				e.inCnt[t]++
			}
		}
		pairs := e.shardPairs[s]
		for v := lo; v < hi; v++ {
			in := e.inbox[e.inOff[v] : e.inOff[v]+e.inCnt[v]]
			if len(in) == 0 {
				continue
			}
			u := in[e.rngs[v].Intn(len(in))]
			pairs = append(pairs, [2]int32{u, int32(v)})
		}
		e.shardPairs[s] = pairs
	})
	var tRed time.Time
	if e.prof != nil {
		tRed = time.Now()
	}
	merged := e.pairs[:0]
	for s := 0; s < w; s++ {
		merged = append(merged, e.shardPairs[s]...)
	}
	if e.prof != nil {
		e.profRedNs += time.Since(tRed).Nanoseconds()
	}
	return merged
}

// exchangeSharded runs the exchange phase over contiguous chunks of the
// connection list. The connections form a matching, so any partition is
// endpoint-disjoint; chunk boundaries need not align with node shards.
func (e *Engine) exchangeSharded(r int, conns []Conn, w int) {
	if len(conns) < shardMinConns || w <= 1 {
		for i := range conns {
			e.proto.Exchange(r, &conns[i])
		}
		return
	}
	if w > len(conns) {
		w = len(conns)
	}
	chunk := (len(conns) + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < len(conns); lo += chunk {
		hi := lo + chunk
		if hi > len(conns) {
			hi = len(conns)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e.proto.Exchange(r, &conns[i])
			}
		}(lo, hi)
	}
	for i := 0; i < chunk; i++ {
		e.proto.Exchange(r, &conns[i])
	}
	wg.Wait()
}
