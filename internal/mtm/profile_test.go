package mtm

import (
	"sort"
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/profile"
)

// runProfiled mirrors runSharded with a timing recorder attached: the
// determinism oracle (results, per-node values, RNG states, matchings)
// must be blind to whether profiling ran.
func runProfiled(t *testing.T, mkDyn func() dyngraph.Dynamic, n int, cfg Config, rec *profile.Recorder) recordedRun {
	t.Helper()
	p := newMinSpread(n)
	p.recordPairs = true
	var out recordedRun
	roundStart := 0
	cfg.OnRound = func(int) {
		seg := append([][2]int(nil), p.sawConnections[roundStart:]...)
		// Concurrent exchange records pairs in scheduling order;
		// canonicalize by responder like runSharded does.
		sort.Slice(seg, func(i, j int) bool { return seg[i][1] < seg[j][1] })
		out.rounds = append(out.rounds, seg)
		roundStart = len(p.sawConnections)
	}
	e := NewEngine(mkDyn(), p, cfg)
	e.SetProfiler(rec)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out.res = res
	out.vals = p.vals
	for _, r := range e.rngs {
		out.rngs = append(out.rngs, r.State())
	}
	return out
}

// TestProfiledIdenticalToUnprofiled is the read-only-sidecar contract:
// attaching a recorder must not change one byte of the execution, on the
// sequential path and at several shard widths.
func TestProfiledIdenticalToUnprofiled(t *testing.T) {
	mk := func() dyngraph.Dynamic { return dyngraph.RotatingRegular(36, 4, 3, 17) }
	for _, w := range []int{1, 2, 7} {
		cfg := Config{Seed: 29, MaxRounds: 50000, Workers: w}
		plain := runProfiled(t, mk, 36, cfg, nil)
		rec := profile.NewRecorder()
		profiled := runProfiled(t, mk, 36, cfg, rec)
		sameRun(t, "profiled", plain, profiled)
		if rec.Rounds() != int64(plain.res.Rounds) {
			t.Fatalf("workers=%d: recorder saw %d rounds, run had %d",
				w, rec.Rounds(), plain.res.Rounds)
		}
	}
}

// TestProfilerTogglesMidRun flips the recorder (and worker count) on and
// off at round boundaries; like SetWorkers, SetProfiler must affect
// wall-clock only.
func TestProfilerTogglesMidRun(t *testing.T) {
	mk := func() dyngraph.Dynamic { return dyngraph.RotatingRegular(40, 4, 3, 17) }
	cfg := Config{Seed: 23, MaxRounds: 50000}
	plain := runProfiled(t, mk, 40, cfg, nil)

	p := newMinSpread(40)
	rec := profile.NewRecorder()
	e := NewEngine(mk(), p, Config{Seed: 23, MaxRounds: 50000})
	for i := 0; !e.Finished(); i++ {
		e.SetWorkers([]int{1, 4, 2, 7}[i%4])
		if i%3 == 0 {
			e.SetProfiler(nil)
		} else {
			e.SetProfiler(rec)
		}
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if res := e.Result(); res != plain.res {
		t.Fatalf("toggling profiler diverged: %+v != %+v", res, plain.res)
	}
	for u, v := range p.vals {
		if v != plain.vals[u] {
			t.Fatalf("node %d value %d != plain %d", u, v, plain.vals[u])
		}
	}
	if rec.Rounds() == 0 || rec.Rounds() >= int64(plain.res.Rounds) {
		t.Fatalf("recorder saw %d rounds, want within (0, %d)", rec.Rounds(), plain.res.Rounds)
	}
}

// TestProfileRecordsSequential checks the shape of what a sequential run
// records: every round present, phases non-negative and bounded by the
// round total, no shard or barrier data.
func TestProfileRecordsSequential(t *testing.T) {
	rec := profile.NewRecorder()
	res := runProfiled(t, func() dyngraph.Dynamic {
		return dyngraph.NewStatic(graph.RandomRegular(50, 4, prand.New(7)))
	}, 50, Config{Seed: 5, MaxRounds: 50000}, rec).res

	if rec.Rounds() != int64(res.Rounds) {
		t.Fatalf("recorded %d rounds, run had %d", rec.Rounds(), res.Rounds)
	}
	last := rec.Last()
	if last.Round != res.Rounds || last.Workers != 1 {
		t.Fatalf("Last = %+v, want round %d workers 1", last, res.Rounds)
	}
	var phases int64
	for p := profile.Phase(0); p < profile.NumPhases; p++ {
		ns := last.PhaseNs[p]
		if ns < 0 {
			t.Fatalf("phase %v negative: %d", p, ns)
		}
		phases += ns
	}
	if phases > last.TotalNs {
		t.Fatalf("phase sum %d exceeds round total %d", phases, last.TotalNs)
	}
	if last.PhaseNs[profile.PhaseReduction] != 0 {
		t.Fatalf("sequential round recorded reduction time %d", last.PhaseNs[profile.PhaseReduction])
	}
	if last.MaxShardNs != 0 || last.BarrierNs != 0 || last.ImbalanceMilli() != 0 {
		t.Fatalf("sequential round recorded shard data: %+v", last)
	}
	if rec.Imbalance().Count() != 0 || rec.BarrierWait().Count() != 0 {
		t.Fatal("sequential run fed the shard histograms")
	}
	if rec.RoundLatency().Count() != int64(res.Rounds) {
		t.Fatalf("round latency count %d != %d", rec.RoundLatency().Count(), res.Rounds)
	}
}

// TestProfileRecordsSharded checks that sharded rounds carry per-shard
// compute, barrier and imbalance data consistent with the worker count.
func TestProfileRecordsSharded(t *testing.T) {
	rec := profile.NewRecorder()
	res := runProfiled(t, func() dyngraph.Dynamic {
		return dyngraph.NewStatic(graph.RandomRegular(200, 6, prand.New(7)))
	}, 200, Config{Seed: 5, MaxRounds: 50000, Workers: 4}, rec).res

	if rec.Rounds() != int64(res.Rounds) {
		t.Fatalf("recorded %d rounds, run had %d", rec.Rounds(), res.Rounds)
	}
	last := rec.Last()
	if last.Workers != 4 {
		t.Fatalf("Last workers = %d, want 4", last.Workers)
	}
	if last.MaxShardNs < last.MinShardNs || last.MaxShardNs < last.MeanShardNs {
		t.Fatalf("shard summary inconsistent: %+v", last)
	}
	if last.MaxShardNs > 0 && last.ImbalanceMilli() < 1000 {
		t.Fatalf("imbalance %d below 1000 (max/mean cannot be under 1)", last.ImbalanceMilli())
	}
	if rec.Imbalance().Count() != int64(res.Rounds) {
		t.Fatalf("imbalance count %d != rounds %d", rec.Imbalance().Count(), res.Rounds)
	}
	if rec.BarrierWait().Count() != int64(res.Rounds) {
		t.Fatalf("barrier count %d != rounds %d", rec.BarrierWait().Count(), res.Rounds)
	}
}

// TestProfiledStepAllocs pins the overhead contract: the sequential round
// loop stays 0 allocs/op with profiling ON.
func TestProfiledStepAllocs(t *testing.T) {
	dyn := dyngraph.NewStatic(graph.Star(256))
	e := NewEngine(dyn, &hubFlood{}, Config{Seed: 1, MaxRounds: 1 << 30})
	e.SetProfiler(profile.NewRecorder())
	for i := 0; i < 8; i++ { // settle scratch growth
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("profiled sequential Step allocated %.1f/op, want 0", allocs)
	}
}
