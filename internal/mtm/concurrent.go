package mtm

import (
	"runtime"
	"sync"

	"mobilegossip/internal/graph"
)

// The concurrent backend parallelizes the two per-round phases that the
// protocol contract makes embarrassingly parallel: per-node Decide calls
// (node u's Decide touches only u's state and RNG) and per-connection
// Exchange calls (connections form a matching, so endpoint states are
// disjoint). Because every call consumes exactly the same per-node RNG
// streams as the sequential backend, the two backends produce identical
// executions — verified by TestBackendsIdentical.

// decideConcurrent runs the scan+decide phase across worker goroutines.
func (e *Engine) decideConcurrent(r int, g *graph.Graph, tags []uint64, acts []Action) {
	n := g.N()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			view := make([]Neighbor, 0, 64)
			for u := lo; u < hi; u++ {
				view = view[:0]
				for _, v := range g.Neighbors(u) {
					view = append(view, Neighbor{ID: v, Tag: tags[v]})
				}
				acts[u] = e.proto.Decide(r, u, view, e.rngs[u])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// exchangeConcurrent runs all per-connection exchanges in parallel.
func (e *Engine) exchangeConcurrent(r int, conns []*Conn) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(conns) {
		workers = len(conns)
	}
	if workers <= 1 {
		for _, c := range conns {
			e.proto.Exchange(r, c)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *Conn)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				e.proto.Exchange(r, c)
			}
		}()
	}
	for _, c := range conns {
		next <- c
	}
	close(next)
	wg.Wait()
}
