package mtm

import (
	"runtime"
	"sync"

	"mobilegossip/internal/graph"
)

// The concurrent backend parallelizes the two per-round phases that the
// protocol contract makes embarrassingly parallel: per-node Decide calls
// (node u's Decide touches only u's state and RNG) and per-connection
// Exchange calls (connections form a matching, so endpoint states are
// disjoint). Because every call consumes exactly the same per-node RNG
// streams as the sequential backend, the two backends produce identical
// executions — verified by TestBackendsIdentical.

// decideConcurrent runs the scan+decide phase across worker goroutines.
// Each worker's scan view is a persistent per-engine buffer, so steady-state
// rounds only pay the goroutine spawns.
func (e *Engine) decideConcurrent(r int, g *graph.Graph, tags []uint64, acts []Action) {
	n := g.N()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	for len(e.views) < workers {
		e.views = append(e.views, make([]Neighbor, 0, 64))
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			view := e.views[w]
			for u := lo; u < hi; u++ {
				view = view[:0]
				for _, v := range g.Adjacency(u) {
					view = append(view, Neighbor{ID: int(v), Tag: tags[v]})
				}
				acts[u] = e.proto.Decide(r, u, view, e.rngs[u])
			}
			e.views[w] = view[:0] // keep any growth for the next round
		}(w, lo, hi)
	}
	wg.Wait()
}

// exchangeConcurrent runs all per-connection exchanges in parallel.
func (e *Engine) exchangeConcurrent(r int, conns []Conn) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(conns) {
		workers = len(conns)
	}
	if workers <= 1 {
		for i := range conns {
			e.proto.Exchange(r, &conns[i])
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				e.proto.Exchange(r, &conns[i])
			}
		}()
	}
	for i := range conns {
		next <- i
	}
	close(next)
	wg.Wait()
}
