package mtm

import (
	"sort"
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// recordedRun drives one engine to completion with pair recording on and
// returns everything the determinism oracle compares: the run summary, the
// protocol's final per-node values, every node's final RNG state (catching
// divergence in randomness consumption even when outcomes coincide), and
// the per-round connection matchings in canonical (responder-sorted) order.
type recordedRun struct {
	res    Result
	vals   []int
	rngs   [][4]uint64
	rounds [][][2]int
}

func runSharded(t *testing.T, mkDyn func() dyngraph.Dynamic, n int, cfg Config, testCuts []int32) recordedRun {
	t.Helper()
	p := newMinSpread(n)
	p.recordPairs = true
	var out recordedRun
	roundStart := 0
	cfg.OnRound = func(int) {
		seg := append([][2]int(nil), p.sawConnections[roundStart:]...)
		// The concurrent exchange records pairs in scheduling order; the
		// matching itself is the deterministic object, so canonicalize by
		// responder (each responder appears at most once per round).
		sort.Slice(seg, func(i, j int) bool { return seg[i][1] < seg[j][1] })
		out.rounds = append(out.rounds, seg)
		roundStart = len(p.sawConnections)
	}
	e := NewEngine(mkDyn(), p, cfg)
	e.testCuts = testCuts
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out.res = res
	out.vals = p.vals
	for _, r := range e.rngs {
		out.rngs = append(out.rngs, r.State())
	}
	return out
}

func sameRun(t *testing.T, label string, want, got recordedRun) {
	t.Helper()
	if want.res != got.res {
		t.Fatalf("%s: result %+v != sequential %+v", label, got.res, want.res)
	}
	for u := range want.vals {
		if want.vals[u] != got.vals[u] {
			t.Fatalf("%s: node %d value %d != sequential %d", label, u, got.vals[u], want.vals[u])
		}
	}
	for u := range want.rngs {
		if want.rngs[u] != got.rngs[u] {
			t.Fatalf("%s: node %d RNG state diverged", label, u)
		}
	}
	if len(want.rounds) != len(got.rounds) {
		t.Fatalf("%s: %d rounds != sequential %d", label, len(got.rounds), len(want.rounds))
	}
	for r := range want.rounds {
		a, b := want.rounds[r], got.rounds[r]
		if len(a) != len(b) {
			t.Fatalf("%s: round %d matching size %d != sequential %d", label, r+1, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: round %d pair %d: %v != sequential %v", label, r+1, i, b[i], a[i])
			}
		}
	}
}

func TestShardedIdenticalToSequential(t *testing.T) {
	topologies := []struct {
		name string
		n    int
		mk   func() dyngraph.Dynamic
	}{
		{"static-regular", 60, func() dyngraph.Dynamic {
			return dyngraph.NewStatic(graph.RandomRegular(60, 4, prand.New(21)))
		}},
		{"rotating-ring", 20, func() dyngraph.Dynamic { return dyngraph.RotatingRing(20, 1, 99) }},
		{"rotating-regular", 18, func() dyngraph.Dynamic { return dyngraph.RotatingRegular(18, 3, 2, 7) }},
		{"star", 33, func() dyngraph.Dynamic { return dyngraph.NewStatic(graph.Star(33)) }},
	}
	for _, tc := range topologies {
		cfg := Config{Seed: 11, MaxRounds: 50000}
		seq := runSharded(t, tc.mk, tc.n, cfg, nil)
		for _, w := range []int{2, 3, 8} {
			cfg.Workers = w
			sameRun(t, tc.name, seq, runSharded(t, tc.mk, tc.n, cfg, nil))
		}
	}
}

// TestShardMergeOrderIndependence is the shard-merge property test: random
// shard counts and boundaries — including empty, tiny, and wildly uneven
// shards — on random graphs must produce matchings (and complete executions)
// byte-identical to workers=1.
func TestShardMergeOrderIndependence(t *testing.T) {
	rng := prand.New(0xc0ffee)
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(120)
		d := 2 + rng.Intn(3)
		if d >= n {
			d = n - 1
		}
		if n*d%2 == 1 {
			d--
		}
		gseed := rng.Uint64()
		mk := func() dyngraph.Dynamic {
			if d < 2 {
				return dyngraph.NewStatic(graph.Cycle(n))
			}
			return dyngraph.NewStatic(graph.RandomRegular(n, d, prand.New(gseed)))
		}
		cfg := Config{Seed: rng.Uint64(), MaxRounds: 20000}
		seq := runSharded(t, mk, n, cfg, nil)

		// Random boundaries: k-1 arbitrary (unsorted-then-sorted) cut points
		// in [0, n], so shards may be empty or hold nearly everything.
		k := 1 + rng.Intn(9)
		cuts := make([]int32, 0, k+1)
		cuts = append(cuts, 0)
		for i := 1; i < k; i++ {
			cuts = append(cuts, int32(rng.Intn(n+1)))
		}
		cuts = append(cuts, int32(n))
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

		cfg.Workers = k // resolved count is irrelevant once testCuts is set
		sameRun(t, "random-cuts", seq, runSharded(t, mk, n, cfg, cuts))
	}
}

func TestShardedWorkersExceedN(t *testing.T) {
	mk := func() dyngraph.Dynamic { return dyngraph.NewStatic(graph.Complete(6)) }
	cfg := Config{Seed: 3, MaxRounds: 20000}
	seq := runSharded(t, mk, 6, cfg, nil)
	cfg.Workers = 64
	sameRun(t, "workers>n", seq, runSharded(t, mk, 6, cfg, nil))
}

func TestShardedTagErrorMatchesSequential(t *testing.T) {
	run := func(workers int) error {
		dyn := dyngraph.NewStatic(graph.Cycle(12))
		p := &badTag{*newMinSpread(12)}
		_, err := NewEngine(dyn, p, Config{Seed: 1, MaxRounds: 5, Workers: workers}).Run()
		return err
	}
	seqErr, parErr := run(1), run(5)
	if seqErr == nil || parErr == nil {
		t.Fatalf("tag violation not reported: seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error diverged:\n  seq: %v\n  par: %v", seqErr, parErr)
	}
}

func TestShardedSetWorkersMidRun(t *testing.T) {
	mk := func() dyngraph.Dynamic { return dyngraph.RotatingRegular(40, 4, 3, 17) }
	cfg := Config{Seed: 23, MaxRounds: 50000}
	seq := runSharded(t, mk, 40, cfg, nil)

	// Same run, but flip the worker count at round boundaries mid-flight:
	// worker count must affect wall-clock only, never the execution.
	p := newMinSpread(40)
	e := NewEngine(mk(), p, Config{Seed: 23, MaxRounds: 50000})
	for i := 0; !e.Finished(); i++ {
		e.SetWorkers([]int{1, 4, 2, 7}[i%4])
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Result()
	if res != seq.res {
		t.Fatalf("mid-run SetWorkers diverged: %+v != %+v", res, seq.res)
	}
	for u, v := range p.vals {
		if v != seq.vals[u] {
			t.Fatalf("node %d value %d != sequential %d", u, v, seq.vals[u])
		}
	}
}

func TestShardedBudgetAndMeters(t *testing.T) {
	// The sharded exchange must meter bits/tokens and surface budget
	// violations exactly like the sequential path.
	mkP := func() *minSpread {
		p := newMinSpread(30)
		p.bitsPer = 1 << 20
		return p
	}
	dyn := func() dyngraph.Dynamic { return dyngraph.NewStatic(graph.Complete(30)) }
	_, seqErr := NewEngine(dyn(), mkP(), Config{Seed: 2, MaxRounds: 100}).Run()
	_, parErr := NewEngine(dyn(), mkP(), Config{Seed: 2, MaxRounds: 100, Workers: 4}).Run()
	if seqErr == nil || parErr == nil || seqErr.Error() != parErr.Error() {
		t.Fatalf("budget enforcement diverged: seq=%v par=%v", seqErr, parErr)
	}
}
