package mtm

// Engine-conformance tests beyond the basics in mtm_test.go: the §2 model
// rules are enforced by the engine, so these tests observe executions
// through instrumented protocols and check each rule directly.

import (
	"sort"
	"sync"
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// observer is a protocol that records every decision and connection,
// proposing with probability 1/2 to a uniform neighbor. It never
// terminates on its own; runs bound it with MaxRounds.
type observer struct {
	n int

	mu        sync.Mutex
	proposals map[int]map[int]int // round -> proposer -> target
	conns     map[int][][2]int    // round -> (initiator, responder)
}

func newObserver(n int) *observer {
	return &observer{
		n:         n,
		proposals: make(map[int]map[int]int),
		conns:     make(map[int][][2]int),
	}
}

func (o *observer) TagBits() int           { return 0 }
func (o *observer) Tag(int, NodeID) uint64 { return 0 }
func (o *observer) Done() bool             { return false }

func (o *observer) Decide(r int, u NodeID, view []Neighbor, rng *prand.RNG) Action {
	if len(view) == 0 || rng.Bool() {
		return Listen()
	}
	target := view[rng.Intn(len(view))].ID
	o.mu.Lock()
	if o.proposals[r] == nil {
		o.proposals[r] = make(map[int]int)
	}
	o.proposals[r][u] = target
	o.mu.Unlock()
	return Propose(target)
}

func (o *observer) Exchange(r int, c *Conn) {
	c.ChargeBits(1)
	o.mu.Lock()
	o.conns[r] = append(o.conns[r], [2]int{c.Initiator, c.Responder})
	o.mu.Unlock()
}

// TestProposerNeverReceives: a node that sends a proposal cannot accept
// one in the same round (§2).
func TestProposerNeverReceives(t *testing.T) {
	const n, rounds = 24, 60
	o := newObserver(n)
	dyn := dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(3)))
	if _, err := NewEngine(dyn, o, Config{Seed: 7, MaxRounds: rounds}).Run(); err != nil {
		t.Fatal(err)
	}
	for r, conns := range o.conns {
		for _, c := range conns {
			if _, proposed := o.proposals[r][c[1]]; proposed {
				t.Errorf("round %d: responder %d had itself proposed", r, c[1])
			}
		}
	}
}

// TestConnectionsComeFromProposals: every accepted connection's initiator
// proposed exactly that responder in that round.
func TestConnectionsComeFromProposals(t *testing.T) {
	const n, rounds = 24, 60
	o := newObserver(n)
	dyn := dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(5)))
	if _, err := NewEngine(dyn, o, Config{Seed: 11, MaxRounds: rounds}).Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for r, conns := range o.conns {
		for _, c := range conns {
			total++
			target, ok := o.proposals[r][c[0]]
			if !ok {
				t.Errorf("round %d: initiator %d never proposed", r, c[0])
			} else if target != c[1] {
				t.Errorf("round %d: initiator %d proposed %d but connected to %d",
					r, c[0], target, c[1])
			}
		}
	}
	if total == 0 {
		t.Fatal("no connections observed; test vacuous")
	}
}

// TestStarContentionOneConnectionPerRound: when every leaf proposes to the
// hub, at most one connection forms per round — the bounded-concurrency
// rule the classical telephone model lacks and the mobile model enforces.
func TestStarContentionOneConnectionPerRound(t *testing.T) {
	const n, rounds = 16, 40
	p := &hubFlood{}
	dyn := dyngraph.NewStatic(graph.Star(n))
	if _, err := NewEngine(dyn, p, Config{Seed: 2, MaxRounds: rounds}).Run(); err != nil {
		t.Fatal(err)
	}
	if p.rounds == 0 {
		t.Fatal("no rounds observed")
	}
	if p.maxPerRound > 1 {
		t.Errorf("hub accepted %d connections in one round; model allows 1", p.maxPerRound)
	}
	if p.total == 0 {
		t.Error("no connections at all; acceptance must pick one of the flood")
	}
}

// hubFlood: every leaf proposes to the hub (node 0) every round.
type hubFlood struct {
	mu          sync.Mutex
	perRound    map[int]int
	maxPerRound int
	total       int
	rounds      int
}

func (p *hubFlood) TagBits() int           { return 0 }
func (p *hubFlood) Tag(int, NodeID) uint64 { return 0 }
func (p *hubFlood) Done() bool             { return false }

func (p *hubFlood) Decide(r int, u NodeID, view []Neighbor, _ *prand.RNG) Action {
	p.mu.Lock()
	p.rounds = r
	p.mu.Unlock()
	if u == 0 {
		return Listen()
	}
	return Propose(0)
}

func (p *hubFlood) Exchange(r int, c *Conn) {
	c.ChargeBits(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perRound == nil {
		p.perRound = make(map[int]int)
	}
	p.perRound[r]++
	if p.perRound[r] > p.maxPerRound {
		p.maxPerRound = p.perRound[r]
	}
	p.total++
}

// viewChecker verifies that each node's per-round scan view contains
// exactly its topology neighbors, each labeled with the tag that node is
// advertising this round.
type viewChecker struct {
	t   *testing.T
	dyn dyngraph.Dynamic

	mu     sync.Mutex
	checks int
}

func (p *viewChecker) TagBits() int { return 3 }

// Tag derives a deterministic per-(round, node) value so the checker can
// recompute what any neighbor must be advertising.
func (p *viewChecker) Tag(r int, u NodeID) uint64 {
	return uint64((r*31 + u*17) % 8)
}

func (p *viewChecker) Decide(r int, u NodeID, view []Neighbor, _ *prand.RNG) Action {
	g := p.dyn.At(r)
	want := append([]int(nil), g.Neighbors(u)...)
	got := make([]int, 0, len(view))
	for _, nb := range view {
		got = append(got, nb.ID)
		if exp := p.Tag(r, nb.ID); nb.Tag != exp {
			p.t.Errorf("round %d node %d: neighbor %d advertises %d, want %d",
				r, u, nb.ID, nb.Tag, exp)
		}
	}
	sort.Ints(want)
	sort.Ints(got)
	if len(want) != len(got) {
		p.t.Errorf("round %d node %d: view has %d entries, want %d", r, u, len(got), len(want))
	} else {
		for i := range want {
			if want[i] != got[i] {
				p.t.Errorf("round %d node %d: view %v != neighbors %v", r, u, got, want)
				break
			}
		}
	}
	p.mu.Lock()
	p.checks++
	p.mu.Unlock()
	return Listen()
}

func (p *viewChecker) Exchange(int, *Conn) {}
func (p *viewChecker) Done() bool          { return false }

func TestViewMatchesTopologyAndTags(t *testing.T) {
	dyn := dyngraph.RotatingRegular(18, 4, 2, 9) // changing topology stresses re-scan
	p := &viewChecker{t: t, dyn: dyn}
	if _, err := NewEngine(dyn, p, Config{Seed: 4, MaxRounds: 20}).Run(); err != nil {
		t.Fatal(err)
	}
	if p.checks != 18*20 {
		t.Errorf("checked %d views, want %d", p.checks, 18*20)
	}
}

// TestOnRoundCalledInOrder: the OnRound hook fires after every round, in
// ascending order, exactly Rounds times.
func TestOnRoundCalledInOrder(t *testing.T) {
	var seen []int
	p := newObserver(12)
	dyn := dyngraph.NewStatic(graph.Cycle(12))
	res, err := NewEngine(dyn, p, Config{
		Seed: 3, MaxRounds: 25,
		OnRound: func(r int) { seen = append(seen, r) },
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Rounds {
		t.Fatalf("OnRound fired %d times, want %d", len(seen), res.Rounds)
	}
	for i, r := range seen {
		if r != i+1 {
			t.Fatalf("OnRound sequence broken at index %d: got %d", i, r)
		}
	}
}

// TestResultTotalsConsistent: proposals ≥ connections, and both count
// only what the protocol actually did.
func TestResultTotalsConsistent(t *testing.T) {
	o := newObserver(20)
	dyn := dyngraph.NewStatic(graph.RandomRegular(20, 4, prand.New(8)))
	res, err := NewEngine(dyn, o, Config{Seed: 6, MaxRounds: 50}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var props, conns int64
	for _, m := range o.proposals {
		props += int64(len(m))
	}
	for _, cs := range o.conns {
		conns += int64(len(cs))
	}
	if res.Proposals != props {
		t.Errorf("engine counted %d proposals, protocol saw %d", res.Proposals, props)
	}
	if res.Connections != conns {
		t.Errorf("engine counted %d connections, protocol saw %d", res.Connections, conns)
	}
	if res.Connections > res.Proposals {
		t.Errorf("more connections (%d) than proposals (%d)", res.Connections, res.Proposals)
	}
}
