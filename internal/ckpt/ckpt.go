// Package ckpt is the deterministic binary substrate under the public
// checkpoint/resume API: a Writer/Reader pair over a fixed little-endian +
// varint encoding, with named section markers so a corrupt or mismatched
// stream fails loudly at the section where it diverged instead of
// mis-decoding silently.
//
// Determinism matters beyond mere correctness: two checkpoints of the same
// simulation state must be byte-identical (callers serialize map-backed
// state in sorted key order), which lets tests and CI compare checkpoint
// files directly. Both ends carry a sticky error, so serialization code
// reads as straight-line field lists with a single Err() check at the end.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer serializes values to an io.Writer. The first error sticks; all
// subsequent writes are no-ops. Call Flush (or check Err) when done.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

// I64 writes a signed (zig-zag) varint.
func (w *Writer) I64(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := uint64(0)
	if v {
		b = 1
	}
	w.U64(b)
}

// F64 writes a float64 as its fixed 8-byte IEEE-754 bit pattern.
func (w *Writer) F64(v float64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, w.err = w.w.Write(b[:])
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(s []uint64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.U64(v)
	}
}

// Ints writes a length-prefixed []int.
func (w *Writer) Ints(s []int) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I64(int64(v))
	}
}

// Int32s writes a length-prefixed []int32.
func (w *Writer) Int32s(s []int32) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I64(int64(v))
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(s []float64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.F64(v)
	}
}

// Bools writes a length-prefixed []bool.
func (w *Writer) Bools(s []bool) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.Bool(v)
	}
}

// Section writes a named section marker. Readers verify it with their own
// Section call, pinning writer and reader to the same field schedule.
func (w *Writer) Section(name string) { w.String(name) }

// Reader deserializes values written by Writer, in the same order. The
// first error (I/O, overflow, or section mismatch) sticks, and subsequent
// reads return zero values.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("ckpt: reading uvarint: %w", err))
		return 0
	}
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("ckpt: reading varint: %w", err))
		return 0
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// F64 reads a fixed 8-byte float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.fail(fmt.Errorf("ckpt: reading float64: %w", err))
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// maxLen bounds length prefixes so a corrupt stream fails the decode
// instead of being trusted blindly. Note the real allocation guard is
// below: slices grow incrementally (capped initial capacity), so even an
// in-range corrupt prefix costs at most the bytes actually present in the
// stream, never the claimed length.
const maxLen = 1 << 32

// growCap caps the capacity a variable-length read pre-allocates; larger
// slices grow as elements actually arrive from the stream, so a corrupt
// length prefix hits EOF long before it can commit real memory.
const growCap = 1 << 16

func (r *Reader) length() int {
	n := r.U64()
	if n > maxLen {
		r.fail(fmt.Errorf("ckpt: length prefix %d exceeds limit", n))
		return 0
	}
	return int(n)
}

// lengthInto reads a length prefix that must equal len(dst) — the form
// used when the destination's size is known from the run configuration,
// which both validates the stream early and avoids any allocation.
func (r *Reader) lengthInto(want int) bool {
	n := r.length()
	if r.err != nil {
		return false
	}
	if n != want {
		r.fail(fmt.Errorf("ckpt: slice of %d entries, destination holds %d", n, want))
		return false
	}
	return true
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, 0, min(n, growCap))
	for len(b) < n {
		chunk := min(n-len(b), growCap)
		b = append(b, make([]byte, chunk)...)
		if _, err := io.ReadFull(r.r, b[len(b)-chunk:]); err != nil {
			r.fail(fmt.Errorf("ckpt: reading %d bytes: %w", n, err))
			return nil
		}
	}
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]uint64, 0, min(n, growCap))
	for i := 0; i < n; i++ {
		v := r.U64()
		if r.err != nil {
			return nil
		}
		s = append(s, v)
	}
	return s
}

// U64sInto fills dst from a stream written by U64s; the serialized length
// must equal len(dst).
func (r *Reader) U64sInto(dst []uint64) {
	if !r.lengthInto(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]int, 0, min(n, growCap))
	for i := 0; i < n; i++ {
		v := int(r.I64())
		if r.err != nil {
			return nil
		}
		s = append(s, v)
	}
	return s
}

// IntsInto fills dst from a stream written by Ints; the serialized length
// must equal len(dst).
func (r *Reader) IntsInto(dst []int) {
	if !r.lengthInto(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = int(r.I64())
	}
}

// Int32s reads a length-prefixed []int32.
func (r *Reader) Int32s() []int32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]int32, 0, min(n, growCap))
	for i := 0; i < n; i++ {
		v := int32(r.I64())
		if r.err != nil {
			return nil
		}
		s = append(s, v)
	}
	return s
}

// Int32sInto fills dst from a stream written by Int32s; the serialized
// length must equal len(dst).
func (r *Reader) Int32sInto(dst []int32) {
	if !r.lengthInto(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = int32(r.I64())
	}
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]float64, 0, min(n, growCap))
	for i := 0; i < n; i++ {
		v := r.F64()
		if r.err != nil {
			return nil
		}
		s = append(s, v)
	}
	return s
}

// F64sInto fills dst from a stream written by F64s; the serialized length
// must equal len(dst).
func (r *Reader) F64sInto(dst []float64) {
	if !r.lengthInto(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]bool, 0, min(n, growCap))
	for i := 0; i < n; i++ {
		v := r.Bool()
		if r.err != nil {
			return nil
		}
		s = append(s, v)
	}
	return s
}

// BoolsInto fills dst from a stream written by Bools; the serialized
// length must equal len(dst).
func (r *Reader) BoolsInto(dst []bool) {
	if !r.lengthInto(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = r.Bool()
	}
}

// Section reads a section marker and fails the stream if it does not match.
func (r *Reader) Section(name string) {
	got := r.String()
	if r.err == nil && got != name {
		r.fail(fmt.Errorf("ckpt: section %q, expected %q (checkpoint layout mismatch)", got, name))
	}
}
