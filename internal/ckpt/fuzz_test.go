package ckpt

// Native Go fuzz targets for the checkpoint substrate: whatever bytes a
// Reader is fed — truncated checkpoints, bit-flipped sections, hostile
// length prefixes — every decode must end in a clean value or a sticky
// error, never a panic or an attacker-sized allocation. CI runs these for a
// short -fuzztime smoke (see the fuzz job); the committed corpus under
// testdata/fuzz seeds both.

import (
	"bytes"
	"testing"
)

// FuzzReaderRaw drives a fixed, representative decode schedule (one of
// every value shape the real checkpoint layers use) over arbitrary bytes.
func FuzzReaderRaw(f *testing.F) {
	// A well-formed stream for the schedule below.
	var good bytes.Buffer
	w := NewWriter(&good)
	w.Section("hdr")
	w.U64(42)
	w.I64(-7)
	w.Bool(true)
	w.F64(3.5)
	w.String("token")
	w.U64s([]uint64{1, 2, 3})
	w.Ints([]int{-1, 0, 1})
	w.Int32s([]int32{5, -5})
	w.F64s([]float64{0.5})
	w.Bools([]bool{true, false})
	w.Bytes([]byte{0xde, 0xad})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("\x03hdr"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		r.Section("hdr")
		_ = r.U64()
		_ = r.I64()
		_ = r.Bool()
		_ = r.F64()
		_ = r.String()
		_ = r.U64s()
		_ = r.Ints()
		_ = r.Int32s()
		_ = r.F64s()
		_ = r.Bools()
		_ = r.Bytes()
		var fixed [3]uint64
		r.U64sInto(fixed[:])
		var fixedI [2]int
		r.IntsInto(fixedI[:])
		var fixedF [2]float64
		r.F64sInto(fixedF[:])
		var fixedB [2]bool
		r.BoolsInto(fixedB[:])
		var fixed32 [2]int32
		r.Int32sInto(fixed32[:])
		// The only acceptable outcomes: clean error, or a full decode of a
		// stream that really was well-formed. Never a panic (the fuzzer
		// catches those) — and errors must stick.
		if err := r.Err(); err != nil {
			if r.U64() != 0 || r.String() != "" {
				t.Fatal("reads after a sticky error returned non-zero values")
			}
		}
	})
}

// FuzzRoundTrip interprets the fuzz input as a little program of write
// instructions, encodes it with Writer, decodes with Reader in the same
// order, and requires exact value fidelity.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte("\x00\xff\x00\xff\x07\x07"))
	f.Add(bytes.Repeat([]byte{3}, 40))

	f.Fuzz(func(t *testing.T, prog []byte) {
		// Decode the program: each byte picks an op, subsequent bytes feed
		// its value. Keep a typed log of what was written.
		type entry struct {
			op byte
			u  uint64
			i  int64
			fv float64
			s  string
			us []uint64
			bs []bool
		}
		var log []entry
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for pc := 0; pc+1 < len(prog) && len(log) < 64; pc += 2 {
			op, v := prog[pc]%6, prog[pc+1]
			e := entry{op: op}
			switch op {
			case 0:
				e.u = uint64(v) * 0x9e3779b9
				w.U64(e.u)
			case 1:
				e.i = int64(int8(v)) * 1e9
				w.I64(e.i)
			case 2:
				e.fv = float64(int8(v)) / 3
				w.F64(e.fv)
			case 3:
				e.s = string(bytes.Repeat([]byte{v}, int(v)%17))
				w.String(e.s)
			case 4:
				for j := byte(0); j < v%9; j++ {
					e.us = append(e.us, uint64(v)<<j)
				}
				w.U64s(e.us)
			case 5:
				for j := byte(0); j < v%5; j++ {
					e.bs = append(e.bs, (v>>j)&1 == 1)
				}
				w.Bools(e.bs)
			}
			log = append(log, e)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("writer error on clean stream: %v", err)
		}

		r := NewReader(bytes.NewReader(buf.Bytes()))
		for _, e := range log {
			switch e.op {
			case 0:
				if got := r.U64(); got != e.u {
					t.Fatalf("U64 = %d, want %d", got, e.u)
				}
			case 1:
				if got := r.I64(); got != e.i {
					t.Fatalf("I64 = %d, want %d", got, e.i)
				}
			case 2:
				if got := r.F64(); got != e.fv {
					t.Fatalf("F64 = %v, want %v", got, e.fv)
				}
			case 3:
				if got := r.String(); got != e.s {
					t.Fatalf("String = %q, want %q", got, e.s)
				}
			case 4:
				got := r.U64s()
				if len(got) != len(e.us) {
					t.Fatalf("U64s len %d, want %d", len(got), len(e.us))
				}
				for i := range got {
					if got[i] != e.us[i] {
						t.Fatalf("U64s[%d] = %d, want %d", i, got[i], e.us[i])
					}
				}
			case 5:
				got := r.Bools()
				if len(got) != len(e.bs) {
					t.Fatalf("Bools len %d, want %d", len(got), len(e.bs))
				}
				for i := range got {
					if got[i] != e.bs[i] {
						t.Fatalf("Bools[%d] = %v, want %v", i, got[i], e.bs[i])
					}
				}
			}
		}
		if err := r.Err(); err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
	})
}
