package ckpt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestRoundTrip writes one value of every type and reads them back.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("header")
	w.U64(0)
	w.U64(1<<64 - 1)
	w.I64(-1)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(0)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.U64s([]uint64{7, 8, 9})
	w.Ints([]int{-1, 0, 1})
	w.Int32s([]int32{-5, 5})
	w.F64s([]float64{1.5, -2.5})
	w.Bools([]bool{true, false, true})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Section("header")
	if got := r.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<64-1 {
		t.Errorf("U64 max = %d", got)
	}
	if got := r.I64(); got != -1 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); got != 0 {
		t.Errorf("F64 zero = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.U64s(); len(got) != 3 || got[2] != 9 {
		t.Errorf("U64s = %v", got)
	}
	if got := r.Ints(); len(got) != 3 || got[0] != -1 {
		t.Errorf("Ints = %v", got)
	}
	if got := r.Int32s(); len(got) != 2 || got[0] != -5 {
		t.Errorf("Int32s = %v", got)
	}
	if got := r.F64s(); len(got) != 2 || got[1] != -2.5 {
		t.Errorf("F64s = %v", got)
	}
	if got := r.Bools(); len(got) != 3 || !got[0] || got[1] {
		t.Errorf("Bools = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSectionMismatch pins the loud-failure contract.
func TestSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("alpha")
	w.U64(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Section("beta")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("section mismatch err = %v", err)
	}
	// The error sticks: subsequent reads return zero values, no panic.
	if got := r.U64(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
}

// TestTruncation: reads off the end fail instead of fabricating data.
func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64s([]uint64{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	r := NewReader(bytes.NewReader(trunc))
	r.U64s()
	if r.Err() == nil {
		t.Fatal("truncated stream read without error")
	}
}

// TestHugeLengthRejected: a corrupt length prefix cannot drive a huge
// allocation.
func TestHugeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 40) // plausible varint, absurd as a length
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Bytes()
	if r.Err() == nil {
		t.Fatal("oversized length accepted")
	}
}
