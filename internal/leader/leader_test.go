package leader

import (
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
)

func seqIDs(n int) ([]int, []uint64) {
	ids := make([]int, n)
	pay := make([]uint64, n)
	for i := range ids {
		ids[i] = i + 1
		pay[i] = uint64(1000 + i)
	}
	return ids, pay
}

func TestElectsMinOnStaticGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(20), graph.Star(20), graph.Complete(20),
		graph.DoubleStar(20), graph.Grid(4, 5),
	} {
		ids, pay := seqIDs(20)
		p := New(ids, pay)
		res, err := mtm.NewEngine(dyngraph.NewStatic(g), p, mtm.Config{Seed: 1, MaxRounds: 1 << 18}).Run()
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Completed || !p.ElectedMin() {
			t.Fatalf("%s: did not elect min (rounds=%d)", g.Name(), res.Rounds)
		}
		// Every node must now carry the minimum's payload.
		for u := 0; u < 20; u++ {
			if p.Payload(u) != 1000 {
				t.Fatalf("%s: node %d payload %d, want 1000", g.Name(), u, p.Payload(u))
			}
		}
	}
}

func TestElectsMinOnDynamicGraph(t *testing.T) {
	// τ = 1: the topology re-wires every round (the harsh regime of §5).
	ids, pay := seqIDs(24)
	p := New(ids, pay)
	dyn := dyngraph.RotatingRing(24, 1, 77)
	res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: 2, MaxRounds: 1 << 18}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !p.ElectedMin() {
		t.Fatalf("dynamic election failed after %d rounds", res.Rounds)
	}
}

func TestNonContiguousIDs(t *testing.T) {
	ids := []int{907, 12, 445, 3000, 101, 12 + 1}
	pay := []uint64{9, 1, 4, 30, 10, 13}
	p := New(ids, pay)
	res, err := mtm.NewEngine(dyngraph.NewStatic(graph.Complete(6)), p,
		mtm.Config{Seed: 3, MaxRounds: 1 << 16}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not converge")
	}
	for u := 0; u < 6; u++ {
		if p.Candidate(u) != 12 || p.Payload(u) != 1 {
			t.Fatalf("node %d: cand=%d payload=%d", u, p.Candidate(u), p.Payload(u))
		}
	}
}

func TestCandidatesMonotoneNonIncreasing(t *testing.T) {
	ids, pay := seqIDs(16)
	p := New(ids, pay)
	prev := make([]int, 16)
	for u := range prev {
		prev[u] = p.Candidate(u)
	}
	cfg := mtm.Config{Seed: 4, MaxRounds: 1 << 16, OnRound: func(r int) {
		for u := 0; u < 16; u++ {
			if p.Candidate(u) > prev[u] {
				t.Fatalf("round %d: node %d candidate increased %d -> %d",
					r, u, prev[u], p.Candidate(u))
			}
			prev[u] = p.Candidate(u)
		}
	}}
	if _, err := mtm.NewEngine(dyngraph.NewStatic(graph.Cycle(16)), p, cfg).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateBitProperties(t *testing.T) {
	// Same candidate ⇒ same bit (any round); different candidates ⇒ bits
	// differ in ≈ half the rounds.
	diff := 0
	const rounds = 20000
	for r := 1; r <= rounds; r++ {
		if CandidateBit(r, 5) != CandidateBit(r, 5) {
			t.Fatal("bit not a function of (round, candidate)")
		}
		if CandidateBit(r, 5) != CandidateBit(r, 9) {
			diff++
		}
	}
	if diff < rounds/2-600 || diff > rounds/2+600 {
		t.Fatalf("differing-candidate bit disagreement %d/%d far from 1/2", diff, rounds)
	}
}

func TestConvergedAndElectedMin(t *testing.T) {
	p := New([]int{3, 1, 2}, []uint64{30, 10, 20})
	if p.Converged() {
		t.Fatal("fresh instance converged")
	}
	p.cand = []int{2, 2, 2} // converged but not to min
	if !p.Converged() {
		t.Fatal("identical candidates not converged")
	}
	if p.ElectedMin() {
		t.Fatal("ElectedMin true for non-minimum convergence")
	}
	p.cand = []int{1, 1, 1}
	if !p.ElectedMin() {
		t.Fatal("ElectedMin false for minimum convergence")
	}
}

func TestScalingWithN(t *testing.T) {
	// Convergence time on K_n must stay polylog — sanity guard for the
	// SimSharedBit additive term (E10).
	measure := func(n int) int {
		ids, pay := seqIDs(n)
		p := New(ids, pay)
		res, err := mtm.NewEngine(dyngraph.NewStatic(graph.Complete(n)), p,
			mtm.Config{Seed: 5, MaxRounds: 1 << 18}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	r16, r128 := measure(16), measure(128)
	if float64(r128) > 6*float64(r16)+64 {
		t.Fatalf("K_n election not polylog: %d (n=16) vs %d (n=128)", r16, r128)
	}
}
