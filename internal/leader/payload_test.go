package leader

import (
	"runtime"
	"testing"
	"time"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// TestPayloadFollowsWinner: after convergence, every node must hold the
// *winner's* payload — the property SimSharedBit relies on to disseminate
// the R′ seed.
func TestPayloadFollowsWinner(t *testing.T) {
	const n = 24
	ids := make([]int, n)
	payloads := make([]uint64, n)
	for u := 0; u < n; u++ {
		ids[u] = n - u // node n-1 holds the minimum UID 1
		payloads[u] = uint64(1000 + u)
	}
	p := New(ids, payloads)
	dyn := dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(3)))
	res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not converged after %d rounds", res.Rounds)
	}
	if !p.ElectedMin() {
		t.Fatal("winner is not the minimum UID")
	}
	wantPayload := payloads[n-1] // the node holding UID 1
	for u := 0; u < n; u++ {
		if got := p.Payload(u); got != wantPayload {
			t.Errorf("node %d carries payload %d, want winner's %d", u, got, wantPayload)
		}
		if p.Candidate(u) != 1 {
			t.Errorf("node %d candidate %d, want 1", u, p.Candidate(u))
		}
	}
}

// TestPayloadQuickManySeeds: the payload-follows-winner property across
// seeds and graph draws.
func TestPayloadQuickManySeeds(t *testing.T) {
	const n = 16
	for seed := uint64(1); seed <= 12; seed++ {
		ids := make([]int, n)
		payloads := make([]uint64, n)
		rng := prand.New(seed * 31)
		perm := rng.Perm(n)
		minU := 0
		for u := 0; u < n; u++ {
			ids[u] = perm[u] + 1
			payloads[u] = uint64(u) * 7
			if ids[u] == 1 {
				minU = u
			}
		}
		p := New(ids, payloads)
		dyn := dyngraph.RotatingRegular(n, 4, 1, seed)
		res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: seed + 99}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || !p.ElectedMin() {
			t.Fatalf("seed %d: did not elect min (%d rounds)", seed, res.Rounds)
		}
		for u := 0; u < n; u++ {
			if p.Payload(u) != payloads[minU] {
				t.Fatalf("seed %d: node %d payload %d, want %d", seed, u, p.Payload(u), payloads[minU])
			}
		}
	}
}

// TestConcurrentEngineLeavesNoGoroutines: the concurrent backend must join
// all its workers before Run returns.
func TestConcurrentEngineLeavesNoGoroutines(t *testing.T) {
	const n = 24
	before := runtime.NumGoroutine()
	for seed := uint64(1); seed <= 8; seed++ {
		ids := make([]int, n)
		for u := range ids {
			ids[u] = u + 1
		}
		p := New(ids, make([]uint64, n))
		dyn := dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(seed)))
		if _, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: seed, Concurrent: true}).Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Give any stray goroutines a moment to park, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after concurrent runs", before, after)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
