// Package leader implements the BitConvergence leader-election substrate the
// reproduced paper imports from Newport's IPDPS'17 companion paper [22] and
// uses inside SimSharedBit (§5.2). The behavioural contract (all that §5.2
// relies on) is:
//
//   - every node maintains a candidate leader id plus a polylog(N)-bit
//     payload attached by that candidate;
//   - candidates converge, w.h.p. in O((1/α)·Δ^{1/τ}·polylog N) rounds, to
//     the globally smallest id, after which they never change;
//   - the algorithm needs no advance knowledge of α, Δ or τ, and uses b = 1.
//
// Our implementation spreads the minimum id through tag-steered random
// connections: each node advertises H(candidate, round) & 1 for a fixed
// public hash H, so neighbors with identical candidates always show the
// same bit while neighbors with different candidates show different bits
// with probability 1/2 (the same productive-connection device SharedBit
// uses for token sets, here applied to candidate ids). Nodes advertising 1
// propose to a uniform 0-advertising neighbor; a connected pair exchanges
// (candidate, payload) and both adopt the smaller candidate.
package leader

import (
	"math/bits"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// Protocol is a BitConvergence instance. It may be driven standalone via
// mtm.Engine or embedded (SimSharedBit interleaves its rounds).
type Protocol struct {
	ids     []int    // ids[u] = node u's UID
	cand    []int    // current candidate leader UID
	payload []uint64 // payload attached to the current candidate
	n       int
	uidBits int
	payBits int
}

var _ mtm.Protocol = (*Protocol)(nil)

// New returns a BitConvergence protocol. ids[u] is node u's UID (unique,
// drawn from [N]); payloads[u] is the polylog-bit payload node u would
// disseminate were it elected (SimSharedBit stores the node's R′ seed here).
func New(ids []int, payloads []uint64) *Protocol {
	n := len(ids)
	p := &Protocol{
		ids:     append([]int(nil), ids...),
		cand:    append([]int(nil), ids...),
		payload: append([]uint64(nil), payloads...),
		n:       n,
	}
	maxID := 0
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	p.uidBits = bits.Len(uint(maxID)) + 1
	p.payBits = 64
	return p
}

// Candidate returns node u's current candidate leader UID.
func (p *Protocol) Candidate(u int) int { return p.cand[u] }

// Payload returns the payload node u currently associates with its candidate.
func (p *Protocol) Payload(u int) uint64 { return p.payload[u] }

// Converged reports whether all candidates agree.
func (p *Protocol) Converged() bool {
	for _, c := range p.cand[1:] {
		if c != p.cand[0] {
			return false
		}
	}
	return true
}

// ElectedMin reports whether all candidates equal the global minimum UID —
// the BitConvergence guarantee.
func (p *Protocol) ElectedMin() bool {
	minID := p.ids[0]
	for _, id := range p.ids[1:] {
		if id < minID {
			minID = id
		}
	}
	for _, c := range p.cand {
		if c != minID {
			return false
		}
	}
	return true
}

// CheckpointTo serializes the election's mutable state (the candidate and
// payload each node currently holds; ids and bit widths are construction
// constants).
func (p *Protocol) CheckpointTo(w *ckpt.Writer) {
	w.Section("leader")
	w.Ints(p.cand)
	w.U64s(p.payload)
}

// RestoreFrom loads a CheckpointTo stream into a Protocol freshly built
// with the same ids and payloads.
func (p *Protocol) RestoreFrom(r *ckpt.Reader) error {
	r.Section("leader")
	r.IntsInto(p.cand)
	r.U64sInto(p.payload)
	return r.Err()
}

// TagBits implements mtm.Protocol (b = 1).
func (p *Protocol) TagBits() int { return 1 }

// Tag implements mtm.Protocol: the public-hash candidate bit.
func (p *Protocol) Tag(r int, u mtm.NodeID) uint64 {
	return CandidateBit(r, p.cand[u])
}

// CandidateBit is the public hash H(candidate, round) & 1 shared by every
// node (a fixed deterministic function, not a randomness assumption).
func CandidateBit(r int, candidate int) uint64 {
	return prand.Mix64(uint64(r)*0x9e3779b97f4a7c15^uint64(candidate)) & 1
}

// Decide implements mtm.Protocol: 1-advertisers seek 0-advertisers.
func (p *Protocol) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	if p.Tag(r, u) == 0 {
		return mtm.Listen()
	}
	zeros := 0
	for _, nb := range view {
		if nb.Tag == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		return mtm.Listen()
	}
	pick := rng.Intn(zeros)
	for _, nb := range view {
		if nb.Tag == 0 {
			if pick == 0 {
				return mtm.Propose(nb.ID)
			}
			pick--
		}
	}
	return mtm.Listen() // unreachable
}

// Exchange implements mtm.Protocol: both endpoints adopt the smaller
// candidate along with its payload.
func (p *Protocol) Exchange(_ int, c *mtm.Conn) {
	u, v := c.Initiator, c.Responder
	c.ChargeBits(2 * (p.uidBits + p.payBits))
	switch {
	case p.cand[u] < p.cand[v]:
		p.cand[v], p.payload[v] = p.cand[u], p.payload[u]
	case p.cand[v] < p.cand[u]:
		p.cand[u], p.payload[u] = p.cand[v], p.payload[v]
	}
}

// Done implements mtm.Protocol: standalone runs stop at convergence.
// (SimSharedBit never drives this directly; it interleaves rounds itself.)
func (p *Protocol) Done() bool { return p.Converged() }
