// Package rumor implements the PPUSH rumor-spreading strategy of
// Ghaffari–Newport (DISC'16), used as a subroutine by the CrowdedBin gossip
// algorithm (§6 of the reproduced paper) and as a standalone baseline:
// informed nodes advertise 1, uninformed nodes advertise 0, and every
// informed node with at least one uninformed neighbor proposes to a
// uniformly chosen uninformed neighbor. Theorem 6.1: with b ≥ 1, τ = ∞ and
// expansion α, PPUSH spreads the rumor to all nodes in O(log⁴N/α) rounds
// w.h.p.
package rumor

import (
	"sync/atomic"

	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// Protocol is a standalone PPUSH instance over one rumor.
type Protocol struct {
	informed []bool
	// left counts uninformed nodes. Exchange decrements it atomically: the
	// round's connections form a matching, so the informed[] writes are
	// endpoint-disjoint, but the counter is the one piece of state every
	// exchange shares under the parallel engine backends. The decrement is
	// commutative, so the count — and Done — stay deterministic.
	left atomic.Int64
}

var _ mtm.Protocol = (*Protocol)(nil)

// New returns a PPUSH protocol over n nodes in which the nodes listed in
// sources start informed (duplicates and out-of-range entries are ignored).
// The rumor is opaque; each spread is metered as one token.
func New(n int, sources []int) *Protocol {
	p := &Protocol{informed: make([]bool, n)}
	p.left.Store(int64(n))
	for _, s := range sources {
		if s >= 0 && s < n && !p.informed[s] {
			p.informed[s] = true
			p.left.Add(-1)
		}
	}
	return p
}

// Informed reports whether node u knows the rumor.
func (p *Protocol) Informed(u int) bool { return p.informed[u] }

// InformedCount returns the number of informed nodes.
func (p *Protocol) InformedCount() int { return len(p.informed) - int(p.left.Load()) }

// TagBits implements mtm.Protocol: PPUSH needs b = 1.
func (p *Protocol) TagBits() int { return 1 }

// Tag implements mtm.Protocol.
func (p *Protocol) Tag(_ int, u mtm.NodeID) uint64 {
	if p.informed[u] {
		return 1
	}
	return 0
}

// Decide implements mtm.Protocol: PPUSH's single rule.
func (p *Protocol) Decide(_ int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	if !p.informed[u] {
		return mtm.Listen()
	}
	return DecidePush(view, rng)
}

// DecidePush is the PPUSH proposal rule given a scan view: propose to a
// uniformly random neighbor advertising 0, or listen if none. Exported so
// CrowdedBin can run PPUSH sub-rounds without instantiating a Protocol.
func DecidePush(view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	uninformed := 0
	for _, nb := range view {
		if nb.Tag == 0 {
			uninformed++
		}
	}
	if uninformed == 0 {
		return mtm.Listen()
	}
	pick := rng.Intn(uninformed)
	for _, nb := range view {
		if nb.Tag == 0 {
			if pick == 0 {
				return mtm.Propose(nb.ID)
			}
			pick--
		}
	}
	return mtm.Listen() // unreachable
}

// Exchange implements mtm.Protocol: the initiator is informed (it proposed),
// so the responder learns the rumor.
func (p *Protocol) Exchange(_ int, c *mtm.Conn) {
	c.ChargeTokens(1)
	c.ChargeBits(1)
	if p.informed[c.Initiator] && !p.informed[c.Responder] {
		p.informed[c.Responder] = true
		p.left.Add(-1)
	}
}

// Done implements mtm.Protocol.
func (p *Protocol) Done() bool { return p.left.Load() == 0 }
