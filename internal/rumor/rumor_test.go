package rumor

import (
	"math"
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

func TestNewSources(t *testing.T) {
	p := New(10, []int{0, 3, 3, 99, -1})
	if got := p.InformedCount(); got != 2 {
		t.Fatalf("InformedCount = %d, want 2 (dups and out-of-range ignored)", got)
	}
	if !p.Informed(0) || !p.Informed(3) || p.Informed(1) {
		t.Fatal("wrong informed set")
	}
}

func TestSpreadsOnRing(t *testing.T) {
	n := 32
	p := New(n, []int{0})
	dyn := dyngraph.NewStatic(graph.Cycle(n))
	res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: 1, MaxRounds: 100000}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("PPUSH did not complete on ring: %+v", res)
	}
	if !p.Done() || p.InformedCount() != n {
		t.Fatal("Done/InformedCount inconsistent")
	}
}

func TestSpreadsOnStarAndComplete(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Star(20), graph.Complete(20), graph.DoubleStar(20)} {
		p := New(20, []int{5})
		res, err := mtm.NewEngine(dyngraph.NewStatic(g), p, mtm.Config{Seed: 2, MaxRounds: 100000}).Run()
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Completed {
			t.Fatalf("%s: incomplete after %d rounds", g.Name(), res.Rounds)
		}
	}
}

func TestInformedSetMonotone(t *testing.T) {
	n := 16
	p := New(n, []int{0})
	dyn := dyngraph.NewStatic(graph.Grid(4, 4))
	last := 1
	cfg := mtm.Config{Seed: 3, MaxRounds: 100000, OnRound: func(r int) {
		cur := p.InformedCount()
		if cur < last {
			t.Fatalf("round %d: informed count decreased %d -> %d", r, last, cur)
		}
		last = cur
	}}
	if _, err := mtm.NewEngine(dyn, p, cfg).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteGraphLogarithmicSpread(t *testing.T) {
	// On K_n (α = 1) PPUSH must finish in O(polylog) rounds; compare n=32
	// vs n=256: rounds must grow far slower than n.
	measure := func(n int) float64 {
		total := 0
		for seed := uint64(0); seed < 5; seed++ {
			p := New(n, []int{0})
			res, err := mtm.NewEngine(dyngraph.NewStatic(graph.Complete(n)), p,
				mtm.Config{Seed: seed, MaxRounds: 1 << 20}).Run()
			if err != nil {
				t.Fatal(err)
			}
			total += res.Rounds
		}
		return float64(total) / 5
	}
	r32, r256 := measure(32), measure(256)
	if r256/r32 > 3.5 { // log growth ⇒ ratio ≈ log(256)/log(32) = 1.6
		t.Fatalf("complete-graph spread not polylog: %f (n=32) vs %f (n=256)", r32, r256)
	}
}

func TestRingSpreadScalesWithInverseAlpha(t *testing.T) {
	// Theorem 6.1 shape check: on rings α = 4/n so rounds should grow
	// roughly linearly in n (≈ D), certainly not quadratically.
	measure := func(n int) float64 {
		total := 0
		for seed := uint64(0); seed < 3; seed++ {
			p := New(n, []int{0})
			res, err := mtm.NewEngine(dyngraph.NewStatic(graph.Cycle(n)), p,
				mtm.Config{Seed: seed, MaxRounds: 1 << 20}).Run()
			if err != nil {
				t.Fatal(err)
			}
			total += res.Rounds
		}
		return float64(total) / 3
	}
	r32, r128 := measure(32), measure(128)
	ratio := r128 / r32
	if ratio < 2 || ratio > 10 { // expect ≈ 4× (linear in 1/α)
		t.Fatalf("ring scaling ratio %f outside linear-ish band (r32=%f r128=%f)", ratio, r32, r128)
	}
	_ = math.Log // keep math import if bounds change
}

func TestDecidePushUniformAmongUninformed(t *testing.T) {
	rng := prand.New(4)
	view := []mtm.Neighbor{{ID: 1, Tag: 1}, {ID: 2, Tag: 0}, {ID: 3, Tag: 0}, {ID: 4, Tag: 1}}
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		a := DecidePush(view, rng)
		if !a.Propose {
			t.Fatal("must propose when an uninformed neighbor exists")
		}
		counts[a.Target]++
	}
	if counts[1] > 0 || counts[4] > 0 {
		t.Fatal("proposed to an informed neighbor")
	}
	if counts[2] < 1700 || counts[3] < 1700 {
		t.Fatalf("acceptance skewed: %v", counts)
	}
}

func TestDecidePushNoUninformed(t *testing.T) {
	rng := prand.New(5)
	view := []mtm.Neighbor{{ID: 1, Tag: 1}}
	if a := DecidePush(view, rng); a.Propose {
		t.Fatal("proposed with no uninformed neighbors")
	}
	if a := DecidePush(nil, rng); a.Propose {
		t.Fatal("proposed with empty view")
	}
}

func TestAllSourcesMeansDoneImmediately(t *testing.T) {
	all := make([]int, 8)
	for i := range all {
		all[i] = i
	}
	p := New(8, all)
	if !p.Done() {
		t.Fatal("all-informed instance not Done")
	}
}
