package mobility

// The subsystem's three invariants, quick-checked per round for every
// motion model (ISSUE 3 satellite): (1) the CSR maintained by incremental
// delta patching is byte-identical to a from-scratch rebuild, (2) every
// emitted topology is connected, (3) the topology changes only at τ-round
// epoch boundaries.

import (
	"testing"

	"mobilegossip/internal/dyngraph"
)

// testModels instantiates one of each motion model at a common speed.
func testModels() map[string]func() Model {
	return map[string]func() Model{
		"waypoint": func() Model { return Waypoint(0.02, 2) },
		"levy":     func() Model { return Levy(0.02, 1.6) },
		"group":    func() Model { return Group(3, 0.7, 0.02) },
		"commuter": func() Model { return Commuter(0.02, 10) },
	}
}

func TestDeltaMatchesRebuildConnectedAndStable(t *testing.T) {
	const n, rounds = 300, 48
	for name, mk := range testModels() {
		for _, tau := range []int{1, 3} {
			opts := Options{N: n, Tau: tau, Seed: 99}
			delta := New(mk(), opts)
			opts.Rebuild = true
			rebuild := New(mk(), opts)

			lastChange := 1
			prevEdges := delta.At(1).NumEdges()
			for r := 1; r <= rounds; r++ {
				dg, rg := delta.At(r), rebuild.At(r)
				if !dg.EqualCSR(rg) {
					t.Fatalf("%s τ=%d r=%d: patched CSR != rebuilt CSR", name, tau, r)
				}
				if !dg.Connected() {
					t.Fatalf("%s τ=%d r=%d: disconnected topology", name, tau, r)
				}
				d := delta.DeltaFor(r)
				if d.Change() {
					if (r-1)%tau != 0 || r == 1 {
						t.Fatalf("%s τ=%d: delta at non-epoch round %d", name, tau, r)
					}
					if r-lastChange < tau {
						t.Fatalf("%s τ=%d: changes %d rounds apart (rounds %d, %d)",
							name, tau, r-lastChange, lastChange, r)
					}
					lastChange = r
					// The delta must account exactly for the edge-count move.
					want := prevEdges + len(d.Added) - len(d.Removed)
					if dg.NumEdges() != want {
						t.Fatalf("%s τ=%d r=%d: %d edges, delta predicts %d",
							name, tau, r, dg.NumEdges(), want)
					}
				} else if dg.NumEdges() != prevEdges {
					t.Fatalf("%s τ=%d r=%d: edge count changed without a delta", name, tau, r)
				}
				prevEdges = dg.NumEdges()
			}
		}
	}
}

// TestScheduleReplayDeterminism: querying a round behind the schedule's
// cursor replays the trajectory from the seed and lands on the identical
// topology a fresh schedule produces.
func TestScheduleReplayDeterminism(t *testing.T) {
	for name, mk := range testModels() {
		opts := Options{N: 200, Tau: 1, Seed: 5}
		a := New(mk(), opts)
		a.At(30)
		rewound := a.At(7)
		fresh := New(mk(), opts).At(7)
		if !rewound.EqualCSR(fresh) {
			t.Fatalf("%s: replayed round 7 differs from a fresh schedule's", name)
		}
	}
}

// TestFrozenSchedule: Tau <= 0 is a τ = ∞ snapshot — same graph at every
// round, stability Infinite, still connected.
func TestFrozenSchedule(t *testing.T) {
	s := New(Waypoint(0.02, 2), Options{N: 150, Seed: 3})
	if s.Stability() != dyngraph.Infinite {
		t.Fatalf("frozen schedule stability = %d", s.Stability())
	}
	g1 := s.At(1)
	if !g1.Connected() {
		t.Fatal("frozen snapshot disconnected")
	}
	if g2 := s.At(1000); g2 != g1 {
		t.Fatal("frozen schedule changed topology")
	}
	if d := s.DeltaFor(500); d.Change() {
		t.Fatal("frozen schedule reported a delta")
	}
}

// TestGatheringDisconnectsAreRepaired: crank the gathering intensity to
// collapse the crowd into far-apart clusters — the regime where the raw
// unit-disk graph disconnects — and require every round connected anyway.
func TestGatheringDisconnectsAreRepaired(t *testing.T) {
	s := New(Group(4, 1.0, 0.05), Options{N: 240, Tau: 1, Seed: 8, Radius: 0.04})
	for r := 1; r <= 60; r++ {
		if !s.At(r).Connected() {
			t.Fatalf("round %d disconnected despite repair", r)
		}
	}
}

// TestDefaultRadius: mean degree under uniform placement should land near
// the designed ≈ 8 (loose bounds; the placement is random).
func TestDefaultRadius(t *testing.T) {
	s := New(Waypoint(0, 1), Options{N: 2000, Seed: 1})
	g := s.At(1)
	mean := 2 * float64(g.NumEdges()) / float64(g.N())
	if mean < 5 || mean > 12 {
		t.Fatalf("default-radius mean degree = %.1f, want ≈ 8", mean)
	}
}
