package mobility

import (
	"fmt"
	"math"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/prand"
)

// Model is a motion law over n points in the unit square. Init places the
// points and resets all per-node state; Step advances one motion epoch in
// place. All randomness flows from the rng the schedule owns, and both
// methods are called in a fixed order, so a (model, seed) pair replays to
// identical trajectories — the determinism the sweep runner depends on.
//
// CheckpointTo and RestoreFrom serialize the model's mutable per-node
// state (destinations, velocities, leg counters, …) so a Schedule can be
// resumed mid-trajectory without replaying every epoch from the seed; both
// are called only after Init has sized the state arrays.
type Model interface {
	Name() string
	Init(n int, rng *prand.RNG, x, y []float64)
	Step(epoch int, rng *prand.RNG, x, y []float64)
	CheckpointTo(w *ckpt.Writer)
	RestoreFrom(r *ckpt.Reader) error
}

// ---------------------------------------------------------------------------
// Random waypoint

// waypoint is the classic random-waypoint model: each node walks toward a
// uniformly chosen destination at its private speed, dwells there for a few
// epochs, then picks the next destination.
type waypoint struct {
	speed float64 // base per-epoch step
	pause int     // dwell epochs at each waypoint

	tx, ty []float64 // current destinations
	vel    []float64 // per-node speed, heterogeneous in [0.5, 1.5)·speed
	wait   []int     // remaining dwell epochs
}

// Waypoint returns the random-waypoint model: per-epoch step ≈ speed
// (per-node heterogeneous in [0.5, 1.5)·speed), dwelling pause epochs at
// every destination. speed = 0 freezes the crowd.
func Waypoint(speed float64, pause int) Model {
	if pause < 0 {
		pause = 0
	}
	return &waypoint{speed: speed, pause: pause}
}

func (w *waypoint) Name() string { return fmt.Sprintf("waypoint(v=%g)", w.speed) }

func (w *waypoint) Init(n int, rng *prand.RNG, x, y []float64) {
	w.tx = resized(w.tx, n)
	w.ty = resized(w.ty, n)
	w.vel = resized(w.vel, n)
	w.wait = resizedInt(w.wait, n)
	for i := 0; i < n; i++ {
		x[i], y[i] = rng.Float64(), rng.Float64()
		w.tx[i], w.ty[i] = rng.Float64(), rng.Float64()
		w.vel[i] = w.speed * (0.5 + rng.Float64())
		w.wait[i] = 0
	}
}

// CheckpointTo implements Model.
func (w *waypoint) CheckpointTo(ck *ckpt.Writer) {
	ck.Section("model.waypoint")
	ck.F64s(w.tx)
	ck.F64s(w.ty)
	ck.F64s(w.vel)
	ck.Ints(w.wait)
}

// RestoreFrom implements Model.
func (w *waypoint) RestoreFrom(ck *ckpt.Reader) error {
	ck.Section("model.waypoint")
	ck.F64sInto(w.tx)
	ck.F64sInto(w.ty)
	ck.F64sInto(w.vel)
	ck.IntsInto(w.wait)
	return ck.Err()
}

func (w *waypoint) Step(_ int, rng *prand.RNG, x, y []float64) {
	for i := range x {
		if w.wait[i] > 0 {
			w.wait[i]--
			continue
		}
		dx, dy := w.tx[i]-x[i], w.ty[i]-y[i]
		d := math.Sqrt(dx*dx + dy*dy)
		if d <= w.vel[i] || d == 0 {
			x[i], y[i] = w.tx[i], w.ty[i]
			w.tx[i], w.ty[i] = rng.Float64(), rng.Float64()
			w.wait[i] = w.pause
			continue
		}
		x[i] += dx / d * w.vel[i]
		y[i] += dy / d * w.vel[i]
	}
}

// ---------------------------------------------------------------------------
// Lévy flight

// levy is a Lévy walk: leg lengths are Pareto(α)-distributed (heavy tail —
// many short hops, occasional long excursions, the pattern measured in
// human mobility traces), walked at constant per-epoch speed and reflected
// at the square's walls.
type levy struct {
	speed float64
	alpha float64 // tail exponent, typically in (1, 2]

	dx, dy []float64 // per-epoch velocity of the current leg
	left   []int     // epochs remaining on the current leg
}

// Levy returns the Lévy-flight model with per-epoch speed and tail exponent
// alpha (defaulted to 1.6 when ≤ 0, the human-trace regime).
func Levy(speed, alpha float64) Model {
	if alpha <= 0 {
		alpha = 1.6
	}
	return &levy{speed: speed, alpha: alpha}
}

func (l *levy) Name() string { return fmt.Sprintf("levy(v=%g,α=%g)", l.speed, l.alpha) }

const levyMaxLeg = 0.5 // cap excursions at half the square

func (l *levy) Init(n int, rng *prand.RNG, x, y []float64) {
	l.dx = resized(l.dx, n)
	l.dy = resized(l.dy, n)
	l.left = resizedInt(l.left, n)
	for i := 0; i < n; i++ {
		x[i], y[i] = rng.Float64(), rng.Float64()
		l.left[i] = 0
	}
}

// CheckpointTo implements Model.
func (l *levy) CheckpointTo(ck *ckpt.Writer) {
	ck.Section("model.levy")
	ck.F64s(l.dx)
	ck.F64s(l.dy)
	ck.Ints(l.left)
}

// RestoreFrom implements Model.
func (l *levy) RestoreFrom(ck *ckpt.Reader) error {
	ck.Section("model.levy")
	ck.F64sInto(l.dx)
	ck.F64sInto(l.dy)
	ck.IntsInto(l.left)
	return ck.Err()
}

func (l *levy) Step(_ int, rng *prand.RNG, x, y []float64) {
	for i := range x {
		if l.left[i] <= 0 {
			// Draw a new leg: length ~ Pareto(α) scaled to the speed,
			// direction uniform.
			u := rng.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			length := l.speed * math.Pow(u, -1/l.alpha)
			if length > levyMaxLeg {
				length = levyMaxLeg
			}
			theta := 2 * math.Pi * rng.Float64()
			steps := 1
			if l.speed > 0 {
				steps = int(length/l.speed) + 1
			}
			l.left[i] = steps
			l.dx[i] = math.Cos(theta) * length / float64(steps)
			l.dy[i] = math.Sin(theta) * length / float64(steps)
		}
		l.left[i]--
		x[i] = reflect(x[i] + l.dx[i])
		y[i] = reflect(y[i] + l.dy[i])
	}
}

// reflect bounces a coordinate off the square's walls into [0, 1).
func reflect(v float64) float64 {
	for v < 0 || v >= 1 {
		if v < 0 {
			v = -v
		} else {
			v = 2 - v - 1e-15 // stay strictly below 1
		}
	}
	return v
}

// ---------------------------------------------------------------------------
// Group gathering

// group models a crowd gathering around moving attractors (stages, exits,
// speakers): each node belongs to one of g groups whose center performs a
// slow random-waypoint walk; members mix an attraction pull toward a
// personal anchor near their center with a jitter walk. attract = 0 is a
// pure jitter crowd; attract near 1 packs each group onto its anchor disk —
// dense clusters joined by sparse (repaired) bridges, the low-α regime.
//
// Crowds have density limits (people occupy space), so members anchor to
// persistent offsets inside a disk sized to cap the gathered density at
// groupDensityCap× the uniform density regardless of n — without it a
// large gathered cluster's unit-disk edge count grows quadratically in the
// cluster size, which is neither physical nor simulable at n = 10⁶.
type group struct {
	groups  int
	attract float64
	speed   float64

	cx, cy   []float64 // centers
	ctx, cty []float64 // center destinations
	ox, oy   []float64 // per-node anchor offsets within the comfort disk
	member   []int32
}

// groupDensityCap bounds a gathered cluster's density at this multiple of
// the uniform crowd density (≈ the cap on the cluster's mean degree as a
// multiple of the roaming degree).
const groupDensityCap = 5.0

// Group returns the gathering model with g attractor points and attraction
// strength attract ∈ [0, 1].
func Group(g int, attract, speed float64) Model {
	if g < 1 {
		g = 1
	}
	if attract < 0 {
		attract = 0
	}
	if attract > 1 {
		attract = 1
	}
	return &group{groups: g, attract: attract, speed: speed}
}

func (g *group) Name() string {
	return fmt.Sprintf("group(g=%d,a=%g,v=%g)", g.groups, g.attract, g.speed)
}

func (g *group) Init(n int, rng *prand.RNG, x, y []float64) {
	g.cx = resized(g.cx, g.groups)
	g.cy = resized(g.cy, g.groups)
	g.ctx = resized(g.ctx, g.groups)
	g.cty = resized(g.cty, g.groups)
	g.ox = resized(g.ox, n)
	g.oy = resized(g.oy, n)
	g.member = resizedInt32(g.member, n)
	for j := 0; j < g.groups; j++ {
		g.cx[j], g.cy[j] = rng.Float64(), rng.Float64()
		g.ctx[j], g.cty[j] = rng.Float64(), rng.Float64()
	}
	// Comfort-disk radius: a fully gathered group of n/groups members in a
	// disk of this radius sits at groupDensityCap× the uniform density —
	// π·spread²·(cap·n) = n/groups, independent of n.
	spread := math.Sqrt(1 / (math.Pi * groupDensityCap * float64(g.groups)))
	for i := 0; i < n; i++ {
		x[i], y[i] = rng.Float64(), rng.Float64()
		g.member[i] = int32(i % g.groups)
		// Uniform offset in the comfort disk (rejection-free: √u radius).
		rad := spread * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		g.ox[i] = math.Cos(theta) * rad
		g.oy[i] = math.Sin(theta) * rad
	}
}

// CheckpointTo implements Model.
func (g *group) CheckpointTo(ck *ckpt.Writer) {
	ck.Section("model.group")
	ck.F64s(g.cx)
	ck.F64s(g.cy)
	ck.F64s(g.ctx)
	ck.F64s(g.cty)
	ck.F64s(g.ox)
	ck.F64s(g.oy)
	ck.Int32s(g.member)
}

// RestoreFrom implements Model.
func (g *group) RestoreFrom(ck *ckpt.Reader) error {
	ck.Section("model.group")
	for _, dst := range [][]float64{g.cx, g.cy, g.ctx, g.cty, g.ox, g.oy} {
		ck.F64sInto(dst)
	}
	ck.Int32sInto(g.member)
	return ck.Err()
}

func (g *group) Step(_ int, rng *prand.RNG, x, y []float64) {
	// Centers drift at half speed toward their own waypoints.
	cs := g.speed / 2
	for j := 0; j < g.groups; j++ {
		dx, dy := g.ctx[j]-g.cx[j], g.cty[j]-g.cy[j]
		d := math.Sqrt(dx*dx + dy*dy)
		if d <= cs || d == 0 {
			g.cx[j], g.cy[j] = g.ctx[j], g.cty[j]
			g.ctx[j], g.cty[j] = rng.Float64(), rng.Float64()
			continue
		}
		g.cx[j] += dx / d * cs
		g.cy[j] += dy / d * cs
	}
	for i := range x {
		m := g.member[i]
		// Attraction pull toward the personal anchor (center + offset),
		// capped at attract·speed per epoch.
		tx := clamp01(g.cx[m] + g.ox[i])
		ty := clamp01(g.cy[m] + g.oy[i])
		dx, dy := tx-x[i], ty-y[i]
		d := math.Sqrt(dx*dx + dy*dy)
		pull := g.attract * g.speed
		if d > pull && d > 0 {
			dx, dy = dx/d*pull, dy/d*pull
		}
		// Jitter fills the rest of the motion budget.
		theta := 2 * math.Pi * rng.Float64()
		jit := (1 - g.attract) * g.speed
		x[i] = reflect(x[i] + dx + math.Cos(theta)*jit)
		y[i] = reflect(y[i] + dy + math.Sin(theta)*jit)
	}
}

// ---------------------------------------------------------------------------
// Commuter schedules

// commuter models daily-rhythm motion: every node owns a home (uniform) and
// a workplace (clustered around a few hotspots), and walks between them on
// a shared period — the first half of each period targets home, the second
// half work. Phase flips produce synchronized churn bursts; mid-phase the
// crowd is nearly static, so the effective stability swings within one
// period.
type commuter struct {
	speed  float64
	period int

	hx, hy []float64
	wx, wy []float64
	vel    []float64
}

const commuterHotspots = 3

// Commuter returns the commuter-schedule model with the given per-epoch
// speed and commute period in epochs (defaulted to 64 when < 2).
func Commuter(speed float64, period int) Model {
	if period < 2 {
		period = 64
	}
	return &commuter{speed: speed, period: period}
}

func (c *commuter) Name() string {
	return fmt.Sprintf("commuter(v=%g,T=%d)", c.speed, c.period)
}

func (c *commuter) Init(n int, rng *prand.RNG, x, y []float64) {
	c.hx = resized(c.hx, n)
	c.hy = resized(c.hy, n)
	c.wx = resized(c.wx, n)
	c.wy = resized(c.wy, n)
	c.vel = resized(c.vel, n)
	var sx, sy [commuterHotspots]float64
	for j := range sx {
		sx[j], sy[j] = rng.Float64(), rng.Float64()
	}
	// Workplace scatter around each hotspot, sized (like group's comfort
	// disk) so a fully arrived hotspot sits at groupDensityCap× the uniform
	// density instead of collapsing to a point.
	spread := math.Sqrt(1 / (math.Pi * groupDensityCap * commuterHotspots))
	for i := 0; i < n; i++ {
		c.hx[i], c.hy[i] = rng.Float64(), rng.Float64()
		j := i % commuterHotspots
		rad := spread * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		c.wx[i] = clamp01(sx[j] + math.Cos(theta)*rad)
		c.wy[i] = clamp01(sy[j] + math.Sin(theta)*rad)
		c.vel[i] = c.speed * (0.5 + rng.Float64())
		// The day starts at home.
		x[i], y[i] = c.hx[i], c.hy[i]
	}
}

// CheckpointTo implements Model. The commuter's per-node state is fixed at
// Init, but serializing it keeps every model uniform and robust against
// future mutation.
func (c *commuter) CheckpointTo(ck *ckpt.Writer) {
	ck.Section("model.commuter")
	ck.F64s(c.hx)
	ck.F64s(c.hy)
	ck.F64s(c.wx)
	ck.F64s(c.wy)
	ck.F64s(c.vel)
}

// RestoreFrom implements Model.
func (c *commuter) RestoreFrom(ck *ckpt.Reader) error {
	ck.Section("model.commuter")
	for _, dst := range [][]float64{c.hx, c.hy, c.wx, c.wy, c.vel} {
		ck.F64sInto(dst)
	}
	return ck.Err()
}

func (c *commuter) Step(epoch int, _ *prand.RNG, x, y []float64) {
	atWork := epoch%c.period >= c.period/2
	for i := range x {
		tx, ty := c.hx[i], c.hy[i]
		if atWork {
			tx, ty = c.wx[i], c.wy[i]
		}
		dx, dy := tx-x[i], ty-y[i]
		d := math.Sqrt(dx*dx + dy*dy)
		if d <= c.vel[i] {
			x[i], y[i] = tx, ty // dwell at the target until the phase flips
			continue
		}
		x[i] += dx / d * c.vel[i]
		y[i] += dy / d * c.vel[i]
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 1 - 1e-15
	}
	return v
}

// resized returns s with length n, reusing the backing array when possible.
func resized(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func resizedInt(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func resizedInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}
