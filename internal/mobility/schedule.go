package mobility

import (
	"fmt"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// Options parameterizes a Schedule.
type Options struct {
	// N is the number of nodes (phones).
	N int
	// Tau is the stability factor: motion epochs are τ rounds long, so the
	// topology changes at most every τ rounds as the model requires.
	// Tau ≤ 0 freezes the initial placement (τ = ∞): a static snapshot of
	// the crowd, which is what lets stable-topology algorithms (CrowdedBin)
	// run on mobility-generated proximity graphs.
	Tau int
	// Radius is the radio range; ≤ 0 selects DefaultRadius(N).
	Radius float64
	// Seed fully determines the trajectory and therefore every topology.
	Seed uint64
	// Rebuild bypasses the incremental delta pipeline and rebuilds the CSR
	// from scratch (graph.Builder) every epoch. The two modes produce
	// byte-identical graphs; Rebuild exists as the oracle for the
	// equivalence quick-checks and the baseline for BenchmarkDynamicRound.
	Rebuild bool
}

// Schedule drives a Model and emits its unit-disk proximity graph as a
// dyngraph.DeltaDynamic: per round the engine sees a connected topology,
// and changes arrive as edge deltas patched into the CSR in place. Rounds
// are meant to be queried in ascending order (the engine's access pattern);
// a query behind the current epoch deterministically replays the trajectory
// from the seed.
type Schedule struct {
	n      int
	tau    int // dyngraph.Infinite when frozen
	radius float64
	seed   uint64
	model  Model
	opts   Options

	rng     *prand.RNG
	field   *field
	patcher *graph.Patcher
	epoch   int // current epoch index; rounds (epoch·τ)+1 … (epoch+1)·τ
	g       *graph.Graph
	delta   dyngraph.Delta // the delta that opened the current epoch
	name    string
}

var _ dyngraph.DeltaDynamic = (*Schedule)(nil)

// New builds the schedule and materializes its round-1 topology.
func New(m Model, o Options) *Schedule {
	tau := o.Tau
	if tau <= 0 {
		tau = dyngraph.Infinite
	}
	s := &Schedule{
		n: o.N, tau: tau, radius: o.Radius, seed: o.Seed, model: m, opts: o,
		field: newField(o.N, o.Radius),
	}
	s.radius = s.field.r
	tauStr := fmt.Sprintf("τ=%d", tau)
	if tau == dyngraph.Infinite {
		tauStr = "τ=∞"
	}
	s.name = fmt.Sprintf("mobility(%s,%s,r=%.4f)", m.Name(), tauStr, s.radius)
	s.reset()
	return s
}

// reset (re)plays the schedule from its initial state: model placement,
// round-1 proximity graph, fresh patcher state.
func (s *Schedule) reset() {
	s.rng = prand.New(prand.Mix64(s.seed ^ 0x53a3f3aa35b1f74d))
	s.model.Init(s.n, s.rng, s.field.x, s.field.y)
	s.field.reset()
	s.field.advance() // first advance: delta against the empty graph
	s.g = s.buildFromScratch(0)
	s.epoch = 0
	s.delta = dyngraph.Delta{}
	if !s.opts.Rebuild {
		if s.patcher == nil {
			s.patcher = graph.NewPatcher(s.g)
		} else {
			s.patcher.Reset(s.g)
		}
		s.g = s.patcher.Graph()
	}
}

// buildFromScratch constructs the current edge list's CSR through the
// Builder — the canonical (sorted, deduplicated) layout the patched CSR is
// tested byte-identical against.
func (s *Schedule) buildFromScratch(epoch int) *graph.Graph {
	b := graph.NewBuilderCap(s.n, len(s.field.edges[s.field.cur]))
	for _, e := range s.field.edges[s.field.cur] {
		_ = b.AddEdge(int(e>>32), int(uint32(e)))
	}
	return b.Build(s.epochName(epoch))
}

func (s *Schedule) epochName(epoch int) string {
	return fmt.Sprintf("%s@e%d", s.model.Name(), epoch)
}

func (s *Schedule) epochOf(r int) int {
	if r < 1 {
		r = 1
	}
	if s.tau == dyngraph.Infinite {
		return 0
	}
	return (r - 1) / s.tau
}

// At implements dyngraph.Dynamic. The returned graph aliases schedule
// buffers and is valid until the schedule advances to a later epoch.
func (s *Schedule) At(r int) *graph.Graph {
	e := s.epochOf(r)
	if e < s.epoch {
		s.reset()
	}
	for s.epoch < e {
		s.step()
	}
	return s.g
}

// step advances one motion epoch: move, recompute proximity, repair,
// diff, and patch (or rebuild).
func (s *Schedule) step() {
	s.model.Step(s.epoch+1, s.rng, s.field.x, s.field.y)
	added, removed := s.field.advance()
	s.delta = dyngraph.Delta{Added: added, Removed: removed}
	s.epoch++
	if s.opts.Rebuild {
		s.g = s.buildFromScratch(s.epoch)
		return
	}
	s.g = s.patcher.Apply(added, removed, s.epochName(s.epoch))
}

// DeltaFor implements dyngraph.DeltaDynamic: the delta is nonzero exactly
// at the first round of an epoch whose motion changed some edge.
func (s *Schedule) DeltaFor(r int) dyngraph.Delta {
	s.At(r)
	if s.epoch == 0 || s.tau == dyngraph.Infinite || r != s.epoch*s.tau+1 {
		return dyngraph.Delta{}
	}
	return s.delta
}

// CheckpointTo serializes the schedule's mutable trajectory state: the
// shared RNG stream, the epoch index, every node's position, the model's
// per-node state, and the current epoch's sorted edge list. The CSR graph
// itself is not serialized — it is rebuilt from the edge list on restore,
// byte-identical to the incrementally patched CSR by the Patcher/Builder
// equivalence invariant (DESIGN.md §8). A resumed schedule therefore
// continues its trajectory directly instead of replaying every motion
// epoch from the seed.
func (s *Schedule) CheckpointTo(w *ckpt.Writer) {
	w.Section("mobility.schedule")
	w.Int(s.n)
	st := s.rng.State()
	w.U64(st[0])
	w.U64(st[1])
	w.U64(st[2])
	w.U64(st[3])
	w.Int(s.epoch)
	w.F64s(s.field.x)
	w.F64s(s.field.y)
	s.model.CheckpointTo(w)
	w.U64s(s.field.edges[s.field.cur])
}

// RestoreFrom loads a CheckpointTo stream into a schedule freshly built
// with the same Options, overwriting the round-1 state New materialized.
// Checkpoints are taken at round boundaries, where the delta that opened
// the current epoch has already been consumed by the engine, so it is
// reset rather than serialized.
func (s *Schedule) RestoreFrom(r *ckpt.Reader) error {
	r.Section("mobility.schedule")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != s.n {
		return fmt.Errorf("mobility: checkpoint for %d nodes, schedule has %d", n, s.n)
	}
	s.rng.SetState([4]uint64{r.U64(), r.U64(), r.U64(), r.U64()})
	epoch := r.Int()
	r.F64sInto(s.field.x)
	r.F64sInto(s.field.y)
	if err := r.Err(); err != nil {
		return err
	}
	if err := s.model.RestoreFrom(r); err != nil {
		return err
	}
	edges := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	s.field.edges[0] = append(s.field.edges[0][:0], edges...)
	s.field.edges[1] = s.field.edges[1][:0]
	s.field.cur = 0
	s.epoch = epoch
	s.delta = dyngraph.Delta{}
	s.g = s.buildFromScratch(epoch)
	if !s.opts.Rebuild {
		s.patcher.Reset(s.g)
		s.g = s.patcher.Graph()
	}
	return nil
}

// N implements dyngraph.Dynamic.
func (s *Schedule) N() int { return s.n }

// Stability implements dyngraph.Dynamic.
func (s *Schedule) Stability() int { return s.tau }

// Name implements dyngraph.Dynamic.
func (s *Schedule) Name() string { return s.name }

// Radius returns the (possibly defaulted) radio range in effect.
func (s *Schedule) Radius() float64 { return s.radius }
