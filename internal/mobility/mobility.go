// Package mobility is the continuous-space motion layer under the mobile
// telephone model: instead of an abstract adversary redrawing the topology
// (dyngraph.Regen), nodes are smartphones moving through the unit square
// and the per-round topology is their unit-disk proximity graph — within
// radio range ⇔ adjacent. That is the physical situation the paper's
// scenarios (concerts, disasters, protests; §1) describe and its dynamic
// graph model abstracts (§2).
//
// The pipeline per motion epoch:
//
//  1. a Model advances every node's (x, y) position (random waypoint, Lévy
//     flight, group gathering, commuter schedules — see models.go);
//  2. a seeded spatial hash grid (cell side = the radio radius r, so only
//     the 3×3 cell neighborhood can hold neighbors) emits the unit-disk
//     edges in globally sorted order, O(n + m), reusing all buffers;
//  3. connectivity repair bridges the components (the model requires every
//     round's topology connected, §2): component representatives are
//     chained with virtual relay edges — the sparse long-range fallback
//     links (satellite/infrastructure hops) real smartphone meshes assume;
//  4. the sorted edge list is diffed against the previous epoch's in one
//     merge pass, and the delta — not the whole graph — is applied to the
//     CSR via graph.Patcher.
//
// Schedules built from this package implement dyngraph.DeltaDynamic, so the
// engine gets incremental topologies with per-round churn accounting, and
// graphinfo/harness can report effective stability. See DESIGN.md §8.
package mobility

import (
	"math"
)

// DefaultRadius returns the radio radius giving a mean unit-disk degree of
// ≈ 8 for n uniform points in the unit square (π·r²·n = 8): dense enough
// for useful gossip, sparse enough that the topology stays local.
func DefaultRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Sqrt(8 / (math.Pi * float64(n)))
}

// field owns the positions and every scratch buffer of the proximity
// pipeline. All buffers are allocated once and reused across epochs.
type field struct {
	n      int
	r, r2  float64
	x, y   []float64
	side   int     // grid is side×side cells of edge ≥ r
	inv    float64 // side as a float, for coordinate→cell scaling
	caps   int     // side*side
	cellOf []int32 // cell index per point (computed per epoch)
	clOff  []int32 // CSR bucketing of points into cells: offsets
	clCur  []int32 //   fill cursors
	clPts  []int32 //   point ids, ascending within each cell
	// Packed per-cell copies of the positions (clPts order, x/y
	// interleaved so one candidate costs one cache line): the candidate
	// scan walks them sequentially instead of gathering x[v]/y[v] at
	// random indices — the difference between cache hits and misses on the
	// hot 9-cell loop.
	pxy  []float64
	cand []int32 // per-point neighbor candidates (v > u)

	edges   [2][]uint64 // double-buffered sorted packed (u<<32|v) edge lists
	cur     int         // which buffer holds the current epoch's edges
	scratch []uint64    // merge target for connectivity-repair bridges

	parent   []int32 // union-find over the proximity components
	reps     []int32 // component representatives (ascending node id)
	rootMark []int32 // stamp array marking seen roots
	stamp    int32

	added, removed [][2]int32 // diff output, reused
}

func newField(n int, r float64) *field {
	if r <= 0 {
		r = DefaultRadius(n)
	}
	if r > 1 {
		r = 1
	}
	side := int(1 / r)
	if side < 1 {
		side = 1
	}
	if side*side > n+1 {
		// No point in more cells than points; a coarser grid only widens
		// the candidate scan, never misses a neighbor.
		side = int(math.Sqrt(float64(n))) + 1
	}
	cells := side * side
	return &field{
		n: n, r: r, r2: r * r,
		x: make([]float64, n), y: make([]float64, n),
		side: side, inv: float64(side), caps: cells,
		cellOf:   make([]int32, n),
		clOff:    make([]int32, cells+1),
		clCur:    make([]int32, cells),
		clPts:    make([]int32, n),
		pxy:      make([]float64, 2*n),
		parent:   make([]int32, n),
		reps:     make([]int32, 0, 16),
		rootMark: make([]int32, n),
	}
}

// reset forgets the previous epoch's edges (used on schedule replay).
func (f *field) reset() {
	f.edges[0] = f.edges[0][:0]
	f.edges[1] = f.edges[1][:0]
	f.cur = 0
}

// advance recomputes the proximity graph for the current positions, repairs
// connectivity, and returns the edge delta against the previous epoch. The
// returned slices alias f's buffers and are valid until the next advance.
func (f *field) advance() (added, removed [][2]int32) {
	prev := f.edges[f.cur]
	next := f.computeEdges(f.edges[1-f.cur][:0])
	next = f.repair(next)
	f.edges[1-f.cur] = next
	f.cur = 1 - f.cur
	return f.diff(prev, next)
}

// computeEdges emits the unit-disk edges in globally sorted packed order:
// scanning points u ascending and keeping only candidates v > u makes the
// list sorted by u, and sorting each point's (short) candidate run makes it
// sorted within u — no global sort.
func (f *field) computeEdges(out []uint64) []uint64 {
	n, side := f.n, f.side
	// Bucket points into cells (counts, prefix sums, fill). Filling in
	// ascending point order keeps every cell's point list ascending.
	for c := 0; c <= f.caps; c++ {
		f.clOff[c] = 0
	}
	for i := 0; i < n; i++ {
		cx := int(f.x[i] * f.inv)
		cy := int(f.y[i] * f.inv)
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		f.cellOf[i] = int32(cy*side + cx)
		f.clOff[f.cellOf[i]+1]++
	}
	for c := 1; c <= f.caps; c++ {
		f.clOff[c] += f.clOff[c-1]
	}
	for c := 0; c < f.caps; c++ {
		f.clCur[c] = 0
	}
	for i := 0; i < n; i++ {
		c := f.cellOf[i]
		slot := f.clOff[c] + f.clCur[c]
		f.clPts[slot] = int32(i)
		f.pxy[2*slot] = f.x[i]
		f.pxy[2*slot+1] = f.y[i]
		f.clCur[c]++
	}

	r2 := f.r2
	pts, pxy := f.clPts, f.pxy
	for u := 0; u < n; u++ {
		c := int(f.cellOf[u])
		cx, cy := c%side, c/side
		cand := f.cand[:0]
		xu, yu := f.x[u], f.y[u]
		for dy := -1; dy <= 1; dy++ {
			ny := cy + dy
			if ny < 0 || ny >= side {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := cx + dx
				if nx < 0 || nx >= side {
					continue
				}
				cc := ny*side + nx
				lo, hi := f.clOff[cc], f.clOff[cc+1]
				for s := lo; s < hi; s++ {
					if int(pts[s]) <= u {
						continue
					}
					ddx := pxy[2*s] - xu
					ddy := pxy[2*s+1] - yu
					if ddx*ddx+ddy*ddy <= r2 {
						cand = append(cand, pts[s])
					}
				}
			}
		}
		sortI32(cand)
		for _, v := range cand {
			out = append(out, uint64(u)<<32|uint64(v))
		}
		f.cand = cand // keep any growth
	}
	return out
}

// repair makes the edge set connected: union-find over the proximity edges,
// then a chain of virtual relay edges over the component representatives
// (smallest node id per component, which arrive — and therefore chain — in
// ascending order, keeping the merged list sorted). Disconnection is rare
// at the default radius, common when gathering drains the field's edges.
func (f *field) repair(edges []uint64) []uint64 {
	n := f.n
	for i := 0; i < n; i++ {
		f.parent[i] = int32(i)
	}
	for _, e := range edges {
		f.union(int32(e>>32), int32(uint32(e)))
	}
	f.stamp++
	f.reps = f.reps[:0]
	for u := 0; u < n; u++ {
		r := f.find(int32(u))
		if f.rootMark[r] != f.stamp {
			f.rootMark[r] = f.stamp
			f.reps = append(f.reps, int32(u))
		}
	}
	if len(f.reps) <= 1 {
		return edges
	}
	// Bridge reps[i]–reps[i+1]; both endpoints ascend, so the bridge list
	// is itself sorted and one merge pass restores global order. The merge
	// target and the input buffer trade places so both are reused.
	merged := f.scratch[:0]
	bi := 0
	bridge := func() uint64 {
		return uint64(f.reps[bi])<<32 | uint64(f.reps[bi+1])
	}
	for _, e := range edges {
		for bi+1 < len(f.reps) && bridge() < e {
			merged = append(merged, bridge())
			bi++
		}
		merged = append(merged, e)
	}
	for bi+1 < len(f.reps) {
		merged = append(merged, bridge())
		bi++
	}
	f.scratch = edges
	return merged
}

func (f *field) find(u int32) int32 {
	for f.parent[u] != u {
		f.parent[u] = f.parent[f.parent[u]] // path halving
		u = f.parent[u]
	}
	return u
}

func (f *field) union(u, v int32) {
	ru, rv := f.find(u), f.find(v)
	if ru == rv {
		return
	}
	if ru < rv {
		f.parent[rv] = ru
	} else {
		f.parent[ru] = rv
	}
}

// diff merges the previous and current sorted edge lists into the added and
// removed pair lists.
func (f *field) diff(prev, next []uint64) (added, removed [][2]int32) {
	f.added, f.removed = f.added[:0], f.removed[:0]
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			f.removed = append(f.removed, unpack(prev[i]))
			i++
		default:
			f.added = append(f.added, unpack(next[j]))
			j++
		}
	}
	for ; i < len(prev); i++ {
		f.removed = append(f.removed, unpack(prev[i]))
	}
	for ; j < len(next); j++ {
		f.added = append(f.added, unpack(next[j]))
	}
	return f.added, f.removed
}

func unpack(e uint64) [2]int32 { return [2]int32{int32(e >> 32), int32(uint32(e))} }

// sortI32 sorts a short int32 slice ascending; candidate runs are a handful
// of points at realistic densities, so insertion sort wins.
func sortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
