// Package mobility is the continuous-space motion layer under the mobile
// telephone model: instead of an abstract adversary redrawing the topology
// (dyngraph.Regen), nodes are smartphones moving through the unit square
// and the per-round topology is their unit-disk proximity graph — within
// radio range ⇔ adjacent. That is the physical situation the paper's
// scenarios (concerts, disasters, protests; §1) describe and its dynamic
// graph model abstracts (§2).
//
// The pipeline per motion epoch:
//
//  1. a Model advances every node's (x, y) position (random waypoint, Lévy
//     flight, group gathering, commuter schedules — see models.go);
//  2. a seeded spatial hash grid (cell side = the radio radius r, so only
//     the 3×3 cell neighborhood can hold neighbors) emits the unit-disk
//     edges in globally sorted order, O(n + m), reusing all buffers;
//  3. connectivity repair bridges the components (the model requires every
//     round's topology connected, §2): component representatives are
//     chained with virtual relay edges — the sparse long-range fallback
//     links (satellite/infrastructure hops) real smartphone meshes assume;
//  4. the sorted edge list is diffed against the previous epoch's in one
//     merge pass, and the delta — not the whole graph — is applied to the
//     CSR via graph.Patcher.
//
// Schedules built from this package implement dyngraph.DeltaDynamic, so the
// engine gets incremental topologies with per-round churn accounting, and
// graphinfo/harness can report effective stability. See DESIGN.md §8.
package mobility

import (
	"math"

	"mobilegossip/internal/graph"
)

// DefaultRadius returns the radio radius giving a mean unit-disk degree of
// ≈ 8 for n uniform points in the unit square (π·r²·n = 8): dense enough
// for useful gossip, sparse enough that the topology stays local.
func DefaultRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Sqrt(8 / (math.Pi * float64(n)))
}

// field owns the positions and every scratch buffer of the proximity
// pipeline. All buffers are allocated once and reused across epochs.
type field struct {
	n      int
	r, r2  float64
	x, y   []float64
	side   int     // grid is side×side cells of edge ≥ r
	inv    float64 // side as a float, for coordinate→cell scaling
	caps   int     // side*side
	cellOf []int32 // cell index per point (computed per epoch)
	clOff  []int32 // CSR bucketing of points into cells: offsets
	clCur  []int32 //   fill cursors
	clPts  []int32 //   point ids, ascending within each cell
	// Packed per-cell copies of the positions (clPts order, x/y
	// interleaved so one candidate costs one cache line): the candidate
	// scan walks them sequentially instead of gathering x[v]/y[v] at
	// random indices — the difference between cache hits and misses on the
	// hot 9-cell loop.
	pxy  []float64
	cand []int32 // per-point neighbor candidates (v > u)

	edges [2][]uint64 // double-buffered sorted packed (u<<32|v) edge lists
	cur   int         // which buffer holds the current epoch's edges

	conn *graph.Connector // connectivity repair (relay-bridge chains)

	added, removed [][2]int32 // diff output, reused
}

func newField(n int, r float64) *field {
	if r <= 0 {
		r = DefaultRadius(n)
	}
	if r > 1 {
		r = 1
	}
	side := int(1 / r)
	if side < 1 {
		side = 1
	}
	if side*side > n+1 {
		// No point in more cells than points; a coarser grid only widens
		// the candidate scan, never misses a neighbor.
		side = int(math.Sqrt(float64(n))) + 1
	}
	cells := side * side
	return &field{
		n: n, r: r, r2: r * r,
		x: make([]float64, n), y: make([]float64, n),
		side: side, inv: float64(side), caps: cells,
		cellOf: make([]int32, n),
		clOff:  make([]int32, cells+1),
		clCur:  make([]int32, cells),
		clPts:  make([]int32, n),
		pxy:    make([]float64, 2*n),
		conn:   graph.NewConnector(n),
	}
}

// reset forgets the previous epoch's edges (used on schedule replay).
func (f *field) reset() {
	f.edges[0] = f.edges[0][:0]
	f.edges[1] = f.edges[1][:0]
	f.cur = 0
}

// advance recomputes the proximity graph for the current positions, repairs
// connectivity, and returns the edge delta against the previous epoch. The
// returned slices alias f's buffers and are valid until the next advance.
func (f *field) advance() (added, removed [][2]int32) {
	prev := f.edges[f.cur]
	next := f.computeEdges(f.edges[1-f.cur][:0])
	next = f.conn.Connect(next)
	f.edges[1-f.cur] = next
	f.cur = 1 - f.cur
	f.added, f.removed = graph.DiffPacked(prev, next, f.added[:0], f.removed[:0])
	return f.added, f.removed
}

// computeEdges emits the unit-disk edges in globally sorted packed order:
// scanning points u ascending and keeping only candidates v > u makes the
// list sorted by u, and sorting each point's (short) candidate run makes it
// sorted within u — no global sort.
func (f *field) computeEdges(out []uint64) []uint64 {
	n, side := f.n, f.side
	// Bucket points into cells (counts, prefix sums, fill). Filling in
	// ascending point order keeps every cell's point list ascending.
	for c := 0; c <= f.caps; c++ {
		f.clOff[c] = 0
	}
	for i := 0; i < n; i++ {
		cx := int(f.x[i] * f.inv)
		cy := int(f.y[i] * f.inv)
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		f.cellOf[i] = int32(cy*side + cx)
		f.clOff[f.cellOf[i]+1]++
	}
	for c := 1; c <= f.caps; c++ {
		f.clOff[c] += f.clOff[c-1]
	}
	for c := 0; c < f.caps; c++ {
		f.clCur[c] = 0
	}
	for i := 0; i < n; i++ {
		c := f.cellOf[i]
		slot := f.clOff[c] + f.clCur[c]
		f.clPts[slot] = int32(i)
		f.pxy[2*slot] = f.x[i]
		f.pxy[2*slot+1] = f.y[i]
		f.clCur[c]++
	}

	r2 := f.r2
	pts, pxy := f.clPts, f.pxy
	for u := 0; u < n; u++ {
		c := int(f.cellOf[u])
		cx, cy := c%side, c/side
		cand := f.cand[:0]
		xu, yu := f.x[u], f.y[u]
		for dy := -1; dy <= 1; dy++ {
			ny := cy + dy
			if ny < 0 || ny >= side {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := cx + dx
				if nx < 0 || nx >= side {
					continue
				}
				cc := ny*side + nx
				lo, hi := f.clOff[cc], f.clOff[cc+1]
				for s := lo; s < hi; s++ {
					if int(pts[s]) <= u {
						continue
					}
					ddx := pxy[2*s] - xu
					ddy := pxy[2*s+1] - yu
					if ddx*ddx+ddy*ddy <= r2 {
						cand = append(cand, pts[s])
					}
				}
			}
		}
		sortI32(cand)
		for _, v := range cand {
			out = append(out, uint64(u)<<32|uint64(v))
		}
		f.cand = cand // keep any growth
	}
	return out
}

// sortI32 sorts a short int32 slice ascending; candidate runs are a handful
// of points at realistic densities, so insertion sort wins.
func sortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
