// Package adversary implements the adversarial side of the mobile telephone
// model (§2): the dynamic graph is chosen by an adversary, constrained only
// by per-round connectivity and the stability factor τ. Where
// dyngraph.Regen redraws whole topologies and internal/mobility moves a
// physical crowd, this package *perturbs* an arbitrary base schedule — it
// cuts (and may inject) edges each epoch under a strategy, repairs
// connectivity with the same representative-chain bridges the mobility
// field uses (graph.Connector), and maintains the CSR incrementally through
// graph.Patcher, reporting every change as a dyngraph.Delta.
//
// Three strategy families are provided (see strategies.go):
//
//   - oblivious — precomputed worst-case schedules over a seeded
//     permutation: alternating bipartitions, rotating bottleneck bridges;
//   - adaptive — strategies that read the algorithm's live state through a
//     StateReader (token counts) and cut edges incident to token-heavy or
//     near-leader nodes, within a per-epoch edge budget;
//   - catastrophic — region blackouts, partition-then-heal cycles, and
//     targeted isolation of the top-k degree nodes.
//
// Determinism contract: an Engine's output is a pure function of (seed,
// base schedule, strategy, budget) plus — for adaptive strategies — the
// sequence of StateReader observations at epoch boundaries. Rounds are
// queried in ascending order by the simulation engine; with that access
// pattern every execution is byte-deterministic and checkpointable
// (CheckpointTo/RestoreFrom serialize the full mutable state, including the
// inner schedule's when it carries any). A backward query replays the
// schedule from its seed, which reproduces oblivious and catastrophic
// strategies exactly; adaptive strategies replay against the *current*
// algorithm state, so stateful callers must not rewind mid-run (none do).
package adversary

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// StateReader exposes the per-node algorithm state adaptive strategies may
// read. An unbound engine (no Bind call) sees zero tokens everywhere, which
// keeps throwaway replays — churn measurement, graphinfo — deterministic.
type StateReader interface {
	// TokenCount returns the number of gossip tokens node u currently knows.
	TokenCount(u int) int
}

// Options parameterizes an Engine.
type Options struct {
	// Tau is the stability factor: the adversary perturbs the topology at
	// the start of every τ-round epoch. Tau ≤ 0 perturbs the round-1
	// topology once and freezes it (τ = ∞) — a statically sabotaged graph,
	// which is what lets stable-topology algorithms (CrowdedBin) run under
	// an adversary.
	Tau int
	// Seed determines the adversary's private randomness (permutations,
	// strategy coin flips); independent of the base schedule's seed.
	Seed uint64
	// Budget caps the edges the adversary may cut per epoch; 0 = unlimited.
	Budget int
	// Rebuild bypasses the incremental delta pipeline and rebuilds the CSR
	// from scratch (graph.Builder) every epoch. The two modes produce
	// byte-identical graphs; Rebuild exists as the oracle for the
	// equivalence quick-checks and the baseline for BenchmarkAdversaryRound.
	Rebuild bool
}

// checkpointable is the stateful-schedule contract the Engine forwards to
// its base (mobility.Schedule satisfies it); pure-function bases (Static,
// Regen) serialize nothing.
type checkpointable interface {
	CheckpointTo(w *ckpt.Writer)
	RestoreFrom(r *ckpt.Reader) error
}

// Engine is a dyngraph.DeltaDynamic that applies a Strategy over a base
// schedule. Construct with New, optionally Bind a StateReader, then hand it
// to the simulation engine like any other dynamic topology.
type Engine struct {
	base   dyngraph.Dynamic
	strat  Strategy
	n      int
	tau    int // dyngraph.Infinite when frozen
	seed   uint64
	budget int
	reb    bool
	reader StateReader
	name   string

	rng      *prand.RNG
	perm     []int // fixed seeded permutation (the oblivious schedules' substrate)
	pos      []int // pos[u] = index of u in perm
	epoch    int   // current epoch; -1 = nothing computed yet (lazy first epoch)
	baseBuf  []uint64
	eff      [2][]uint64 // double-buffered sorted effective edge lists
	cur      int
	tmp      []uint64
	ops      Ops
	conn     *graph.Connector
	patcher  *graph.Patcher
	g        *graph.Graph
	delta    dyngraph.Delta
	added    [][2]int32
	removed  [][2]int32
	rank     []int32 // RankDesc output buffer
	score    []int   // RankDesc score buffer
	epochCtx Epoch
}

var _ dyngraph.DeltaDynamic = (*Engine)(nil)

// New wraps base — any Dynamic over the same vertex set, including a
// mobility schedule — with strat. The first epoch is computed lazily at the
// first At call, so a StateReader bound between construction and round 1
// already shapes the initial topology.
func New(base dyngraph.Dynamic, strat Strategy, o Options) *Engine {
	tau := o.Tau
	if tau <= 0 {
		tau = dyngraph.Infinite
	}
	n := base.N()
	e := &Engine{
		base: base, strat: strat, n: n, tau: tau,
		seed: o.Seed, budget: o.Budget, reb: o.Rebuild,
		conn: graph.NewConnector(n),
	}
	tauStr := fmt.Sprintf("τ=%d", tau)
	if tau == dyngraph.Infinite {
		tauStr = "τ=∞"
	}
	e.name = fmt.Sprintf("adv(%s,%s)+%s", strat.Name(), tauStr, base.Name())
	e.reset()
	return e
}

// Bind attaches the algorithm-state view adaptive strategies read. Call it
// before the first round query; the simulation session layer does.
func (e *Engine) Bind(r StateReader) { e.reader = r }

// Epoch returns the perturbation epoch the engine currently sits in, or
// -1 before the lazily computed first epoch. The session layer polls it
// after every round to publish adversary-epoch events.
func (e *Engine) Epoch() int { return e.epoch }

// reset returns the engine to its pre-round-1 state: fresh RNG, fixed
// permutation rebuilt from the seed, no epoch computed.
func (e *Engine) reset() {
	e.rng = prand.New(prand.Mix64(e.seed ^ 0x7b14_6e5a_91cd_0fd3))
	permRng := prand.New(prand.Mix64(e.seed ^ 0x1f83_d9ab_fb41_bd6b))
	e.perm = permRng.Perm(e.n)
	if e.pos == nil {
		e.pos = make([]int, e.n)
	}
	for i, u := range e.perm {
		e.pos[u] = i
	}
	e.epoch = -1
	e.eff[0] = e.eff[0][:0]
	e.eff[1] = e.eff[1][:0]
	e.cur = 0
	e.delta = dyngraph.Delta{}
}

func (e *Engine) epochOf(r int) int {
	if r < 1 {
		r = 1
	}
	if e.tau == dyngraph.Infinite {
		return 0
	}
	return (r - 1) / e.tau
}

// At implements dyngraph.Dynamic. The returned graph aliases engine buffers
// and is valid until the engine advances to a later epoch.
func (e *Engine) At(r int) *graph.Graph {
	target := e.epochOf(r)
	if target < e.epoch {
		e.reset()
	}
	for e.epoch < target {
		e.step()
	}
	return e.g
}

// step advances one adversary epoch: pull the base topology, run the
// strategy, repair connectivity, diff, and patch (or rebuild).
func (e *Engine) step() {
	next := e.epoch + 1
	baseRound := 1
	if e.tau != dyngraph.Infinite {
		baseRound = next*e.tau + 1
	}
	bg := e.base.At(baseRound)
	e.baseBuf = bg.AppendPackedEdges(e.baseBuf[:0])

	// Strategy pass: collect cuts/links on the reused Ops.
	e.ops.reset(bg, e.budget)
	e.epochCtx = Epoch{
		E: next, N: e.n, Base: bg, RNG: e.rng,
		Perm: e.perm, Pos: e.pos,
		Tokens: e.tokenCount,
		eng:    e,
	}
	e.strat.Perturb(&e.epochCtx, &e.ops)
	slices.Sort(e.ops.cuts)
	slices.Sort(e.ops.links)
	e.ops.links = slices.Compact(e.ops.links)

	// Effective list: (base \ cuts) ∪ links, all streams sorted.
	out := e.tmp[:0]
	ci := 0
	for _, edge := range e.baseBuf {
		for ci < len(e.ops.cuts) && e.ops.cuts[ci] < edge {
			ci++
		}
		if ci < len(e.ops.cuts) && e.ops.cuts[ci] == edge {
			continue
		}
		out = append(out, edge)
	}
	if len(e.ops.links) > 0 {
		merged := e.eff[1-e.cur][:0]
		i, j := 0, 0
		for i < len(out) && j < len(e.ops.links) {
			switch {
			case out[i] == e.ops.links[j]:
				merged = append(merged, out[i])
				i++
				j++
			case out[i] < e.ops.links[j]:
				merged = append(merged, out[i])
				i++
			default:
				merged = append(merged, e.ops.links[j])
				j++
			}
		}
		merged = append(merged, out[i:]...)
		merged = append(merged, e.ops.links[j:]...)
		e.tmp = out
		out = merged
	} else {
		// No injections: swap the buffers so out lands in the next slot.
		e.tmp = e.eff[1-e.cur]
	}
	out = e.conn.Connect(out)

	prev := e.eff[e.cur]
	e.added, e.removed = graph.DiffPacked(prev, out, e.added[:0], e.removed[:0])
	e.eff[1-e.cur] = out
	e.cur = 1 - e.cur
	e.epoch = next
	if next == 0 {
		e.delta = dyngraph.Delta{}
		e.g = e.buildFromScratch()
		if !e.reb {
			if e.patcher == nil {
				e.patcher = graph.NewPatcher(e.g)
			} else {
				e.patcher.Reset(e.g)
			}
			e.g = e.patcher.Graph()
		}
		return
	}
	e.delta = dyngraph.Delta{Added: e.added, Removed: e.removed}
	if e.reb {
		e.g = e.buildFromScratch()
		return
	}
	e.g = e.patcher.Apply(e.added, e.removed, e.epochName())
}

// buildFromScratch constructs the current effective edge list's CSR through
// the Builder — the canonical layout the patched CSR is tested
// byte-identical against.
func (e *Engine) buildFromScratch() *graph.Graph {
	b := graph.NewBuilderCap(e.n, len(e.eff[e.cur]))
	for _, edge := range e.eff[e.cur] {
		uv := graph.UnpackEdge(edge)
		_ = b.AddEdge(int(uv[0]), int(uv[1]))
	}
	return b.Build(e.epochName())
}

func (e *Engine) epochName() string {
	return fmt.Sprintf("%s@e%d", e.strat.Name(), e.epoch)
}

// tokenCount is the Epoch.Tokens implementation: the bound StateReader, or
// zero everywhere when unbound.
func (e *Engine) tokenCount(u int) int {
	if e.reader == nil {
		return 0
	}
	return e.reader.TokenCount(u)
}

// DeltaFor implements dyngraph.DeltaDynamic: the delta is nonzero exactly
// at the first round of an epoch whose perturbation changed some edge.
func (e *Engine) DeltaFor(r int) dyngraph.Delta {
	e.At(r)
	if e.epoch <= 0 || e.tau == dyngraph.Infinite || r != e.epoch*e.tau+1 {
		return dyngraph.Delta{}
	}
	return e.delta
}

// N implements dyngraph.Dynamic.
func (e *Engine) N() int { return e.n }

// Stability implements dyngraph.Dynamic.
func (e *Engine) Stability() int { return e.tau }

// Name implements dyngraph.Dynamic.
func (e *Engine) Name() string { return e.name }

// Strategy returns the engine's strategy (for display and tests).
func (e *Engine) Strategy() Strategy { return e.strat }

// CheckpointTo serializes the engine's mutable state — RNG stream, epoch
// index, the current effective edge list — plus the base schedule's state
// when it carries any (mobility trajectories). The CSR is rebuilt from the
// edge list on restore, byte-identical to the patched CSR by the
// Patcher/Builder equivalence invariant. Strategies are pure functions of
// the serialized state and carry none of their own.
func (e *Engine) CheckpointTo(w *ckpt.Writer) {
	w.Section("adversary.engine")
	w.Int(e.n)
	st := e.rng.State()
	w.U64(st[0])
	w.U64(st[1])
	w.U64(st[2])
	w.U64(st[3])
	w.Int(e.epoch)
	w.U64s(e.eff[e.cur])
	cp, ok := e.base.(checkpointable)
	w.Bool(ok)
	if ok {
		cp.CheckpointTo(w)
	}
}

// RestoreFrom loads a CheckpointTo stream into an engine freshly built with
// the same base, strategy and Options.
func (e *Engine) RestoreFrom(r *ckpt.Reader) error {
	r.Section("adversary.engine")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != e.n {
		return fmt.Errorf("adversary: checkpoint for %d nodes, engine has %d", n, e.n)
	}
	e.rng.SetState([4]uint64{r.U64(), r.U64(), r.U64(), r.U64()})
	epoch := r.Int()
	edges := r.U64s()
	hasBase := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	// Validate the edge list here, where a corrupt stream can still fail
	// loudly: out-of-range endpoints or a non-canonical order would
	// otherwise restore silently and blow up inside Patcher.Apply epochs
	// later (buildFromScratch drops bad edges, but e.eff would keep them,
	// and the next diff would ask the Patcher to remove an edge the CSR
	// never had).
	var prev uint64
	for i, edge := range edges {
		uv := graph.UnpackEdge(edge)
		if uv[0] < 0 || uv[1] >= int32(e.n) || uv[0] >= uv[1] {
			return fmt.Errorf("adversary: checkpoint edge %d (%d,%d) invalid for %d nodes", i, uv[0], uv[1], e.n)
		}
		if i > 0 && edge <= prev {
			return fmt.Errorf("adversary: checkpoint edge list not strictly ascending at %d", i)
		}
		prev = edge
	}
	cp, ok := e.base.(checkpointable)
	if hasBase != ok {
		return fmt.Errorf("adversary: checkpoint base state (%v) does not match rebuilt base (%v)", hasBase, ok)
	}
	if hasBase {
		if err := cp.RestoreFrom(r); err != nil {
			return err
		}
	}
	e.cur = 0
	e.eff[0] = append(e.eff[0][:0], edges...)
	e.eff[1] = e.eff[1][:0]
	e.epoch = epoch
	e.delta = dyngraph.Delta{}
	if epoch < 0 {
		e.g = nil
		return nil
	}
	e.g = e.buildFromScratch()
	if !e.reb {
		if e.patcher == nil {
			e.patcher = graph.NewPatcher(e.g)
		} else {
			e.patcher.Reset(e.g)
		}
		e.g = e.patcher.Graph()
	}
	return nil
}

// Epoch is the read view handed to a Strategy at the start of each epoch.
type Epoch struct {
	// E is the epoch index; 0 shapes the initial (round 1) topology.
	E int
	// N is the vertex count.
	N int
	// Base is the epoch's unperturbed base topology.
	Base *graph.Graph
	// RNG is the adversary's seeded stream; its state is checkpointed, so
	// strategies may draw freely.
	RNG *prand.RNG
	// Perm is a fixed seeded permutation of the vertices and Pos its
	// inverse — the precomputed substrate of the oblivious partitions.
	Perm, Pos []int
	// Tokens returns node u's current token count: the algorithm state an
	// adaptive adversary reads (0 everywhere when the engine is unbound).
	Tokens func(u int) int

	eng *Engine
}

// RankDesc returns the vertices sorted by score descending, ties broken by
// ascending id — the deterministic node ranking the adaptive and top-k
// strategies target. The returned slice is an engine-owned buffer, valid
// until the next epoch.
func (ep *Epoch) RankDesc(score func(u int) int) []int32 {
	e := ep.eng
	if cap(e.rank) < ep.N {
		e.rank = make([]int32, ep.N)
		e.score = make([]int, ep.N)
	}
	e.rank = e.rank[:ep.N]
	e.score = e.score[:ep.N]
	for u := 0; u < ep.N; u++ {
		e.rank[u] = int32(u)
		e.score[u] = score(u)
	}
	sort.Sort(&rankSorter{ids: e.rank, score: e.score})
	return e.rank
}

// rankSorter orders ids by score descending, then id ascending.
type rankSorter struct {
	ids   []int32
	score []int
}

func (s *rankSorter) Len() int { return len(s.ids) }
func (s *rankSorter) Less(i, j int) bool {
	si, sj := s.score[s.ids[i]], s.score[s.ids[j]]
	if si != sj {
		return si > sj
	}
	return s.ids[i] < s.ids[j]
}
func (s *rankSorter) Swap(i, j int) { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }

// Ops collects a strategy's perturbations, enforcing the per-epoch cut
// budget. All buffers are engine-owned and reused across epochs.
type Ops struct {
	base   *graph.Graph
	budget int // 0 = unlimited
	cuts   []uint64
	links  []uint64
	seen   map[uint64]struct{}
}

func (o *Ops) reset(base *graph.Graph, budget int) {
	o.base = base
	o.budget = budget
	o.cuts = o.cuts[:0]
	o.links = o.links[:0]
	if o.seen == nil {
		o.seen = make(map[uint64]struct{}, 64)
	} else {
		clear(o.seen)
	}
}

// Exhausted reports whether the epoch's cut budget is spent; strategies
// check it to stop their scans early.
func (o *Ops) Exhausted() bool {
	return o.budget > 0 && len(o.cuts) >= o.budget
}

// Remaining returns the cuts still available this epoch (MaxInt when
// unlimited).
func (o *Ops) Remaining() int {
	if o.budget <= 0 {
		return math.MaxInt
	}
	return o.budget - len(o.cuts)
}

// Cut suppresses the base edge {u, v} for the epoch. Non-edges and
// duplicate cuts are ignored and consume no budget; cuts past the budget
// are dropped.
func (o *Ops) Cut(u, v int) {
	if o.Exhausted() || u == v {
		return
	}
	if !o.base.HasEdge(u, v) {
		return
	}
	o.cutPresent(int32(u), int32(v))
}

// cutPresent registers a cut of an edge known to be present in the base —
// the in-package strategies derive every cut from Base.Adjacency, so the
// membership probe Cut pays for arbitrary callers is skipped on this hot
// per-epoch path.
func (o *Ops) cutPresent(u, v int32) {
	if o.Exhausted() {
		return
	}
	key := graph.PackEdge(u, v)
	if _, dup := o.seen[key]; dup {
		return
	}
	o.seen[key] = struct{}{}
	o.cuts = append(o.cuts, key)
}

// CutNode suppresses every base edge incident to u (within budget).
func (o *Ops) CutNode(u int) {
	for _, v := range o.base.Adjacency(u) {
		if o.Exhausted() {
			return
		}
		o.cutPresent(int32(u), v)
	}
}

// Link injects the edge {u, v} for the epoch (free: the budget meters
// destruction, and the connectivity repair injects bridges anyway).
// Self-loops are ignored; edges already present merge away.
func (o *Ops) Link(u, v int) {
	if u == v || u < 0 || v < 0 || u >= o.base.N() || v >= o.base.N() {
		return
	}
	o.links = append(o.links, graph.PackEdge(int32(u), int32(v)))
}
