package adversary

import (
	"bytes"
	"fmt"
	"testing"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mobility"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// staticBase returns a fresh 4-regular base schedule (adversary engines
// mutate shared state, so every engine gets its own).
func staticBase(n int, seed uint64) dyngraph.Dynamic {
	return dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(seed)))
}

// mobileBase returns a fresh random-waypoint mobility schedule.
func mobileBase(n, tau int, seed uint64) dyngraph.Dynamic {
	return mobility.New(mobility.Waypoint(0.05, 1), mobility.Options{N: n, Tau: tau, Seed: seed})
}

// fakeReader is a deterministic StateReader for tests: node u knows
// (u*7)%13 tokens, shifted per round so the adaptive strategies see
// changing state.
type fakeReader struct{ shift int }

func (f fakeReader) TokenCount(u int) int { return (u*7 + f.shift) % 13 }

// TestStrategiesConnectedAndPatchMatchesRebuild is the patch ≡ rebuild
// quick-check of the ISSUE's property satellite, run for every strategy
// over both a static and a mobility base: at every round the patched CSR
// must be element-for-element identical to a from-scratch Builder rebuild,
// and connected.
func TestStrategiesConnectedAndPatchMatchesRebuild(t *testing.T) {
	const n, tau, rounds = 60, 2, 41
	for _, mk := range []struct {
		label string
		base  func(seed uint64) dyngraph.Dynamic
	}{
		{"static", func(seed uint64) dyngraph.Dynamic { return staticBase(n, seed) }},
		{"mobility", func(seed uint64) dyngraph.Dynamic { return mobileBase(n, tau, seed) }},
	} {
		for _, strat := range Strategies() {
			t.Run(mk.label+"/"+strat.Name(), func(t *testing.T) {
				opts := Options{Tau: tau, Seed: 91, Budget: 0}
				patched := New(mk.base(7), strat, opts)
				oracle := New(mk.base(7), strat, Options{Tau: tau, Seed: 91, Rebuild: true})
				patched.Bind(fakeReader{})
				oracle.Bind(fakeReader{})
				for r := 1; r <= rounds; r++ {
					pg, og := patched.At(r), oracle.At(r)
					if !pg.Connected() {
						t.Fatalf("round %d: disconnected topology", r)
					}
					if !pg.EqualCSR(og) {
						t.Fatalf("round %d: patched CSR diverges from rebuild oracle", r)
					}
				}
			})
		}
	}
}

// TestDeterministicReplay pins byte-determinism: two engines over the same
// seed produce identical CSRs, and a backward query replays the schedule.
func TestDeterministicReplay(t *testing.T) {
	for _, strat := range Strategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			a := New(staticBase(48, 3), strat, Options{Tau: 1, Seed: 5})
			b := New(staticBase(48, 3), strat, Options{Tau: 1, Seed: 5})
			for r := 1; r <= 20; r++ {
				if !a.At(r).EqualCSR(b.At(r)) {
					t.Fatalf("round %d differs across identically seeded engines", r)
				}
			}
			// Oblivious/catastrophic strategies replay exactly (unbound
			// adaptive ones see constant zero state, so they do too).
			snap := a.At(5)
			edges := snap.AppendPackedEdges(nil)
			a.At(20)
			replayed := a.At(5).AppendPackedEdges(nil)
			if len(edges) != len(replayed) {
				t.Fatalf("replay edge count %d, want %d", len(replayed), len(edges))
			}
			for i := range edges {
				if edges[i] != replayed[i] {
					t.Fatalf("replayed round 5 differs at edge %d", i)
				}
			}
		})
	}
}

// TestDeltaMatchesGraphDiff checks DeltaFor against the generic diff of the
// consecutive topologies for every strategy.
func TestDeltaMatchesGraphDiff(t *testing.T) {
	for _, strat := range Strategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			e := New(staticBase(48, 11), strat, Options{Tau: 1, Seed: 17})
			e.Bind(fakeReader{shift: 3})
			prev := e.At(1).AppendPackedEdges(nil)
			for r := 2; r <= 24; r++ {
				cur := e.At(r).AppendPackedEdges(nil)
				d := e.DeltaFor(r)
				wantAdd, wantRem := graph.DiffPacked(prev, cur, nil, nil)
				if len(d.Added) != len(wantAdd) || len(d.Removed) != len(wantRem) {
					t.Fatalf("round %d: delta (+%d,-%d), graph diff (+%d,-%d)",
						r, len(d.Added), len(d.Removed), len(wantAdd), len(wantRem))
				}
				for i := range wantAdd {
					if d.Added[i] != wantAdd[i] {
						t.Fatalf("round %d: added[%d] = %v, want %v", r, i, d.Added[i], wantAdd[i])
					}
				}
				for i := range wantRem {
					if d.Removed[i] != wantRem[i] {
						t.Fatalf("round %d: removed[%d] = %v, want %v", r, i, d.Removed[i], wantRem[i])
					}
				}
				prev = cur
			}
		})
	}
}

// TestBudgetBoundsDestruction checks the per-epoch budget: at most Budget
// base edges may be missing from any round's topology.
func TestBudgetBoundsDestruction(t *testing.T) {
	base := graph.RandomRegular(64, 4, prand.New(23))
	for _, budget := range []int{1, 4, 9} {
		for _, strat := range Strategies() {
			e := New(dyngraph.NewStatic(base), strat, Options{Tau: 1, Seed: 29, Budget: budget})
			e.Bind(fakeReader{shift: 1})
			for r := 1; r <= 16; r++ {
				g := e.At(r)
				missing := 0
				for u := 0; u < base.N(); u++ {
					for _, v := range base.Adjacency(u) {
						if int32(u) < v && !g.HasEdge(u, int(v)) {
							missing++
						}
					}
				}
				if missing > budget {
					t.Fatalf("%s budget %d: round %d is missing %d base edges",
						strat.Name(), budget, r, missing)
				}
			}
		}
	}
}

// TestAdaptiveReadsState checks that Isolate actually aims at the reader's
// token-richest node: its base edges are gone from the perturbed topology.
func TestAdaptiveReadsState(t *testing.T) {
	base := graph.RandomRegular(40, 4, prand.New(41))
	e := New(dyngraph.NewStatic(base), Isolate(), Options{Tau: 1, Seed: 43})
	rich := 27
	e.Bind(readerFunc(func(u int) int {
		if u == rich {
			return 100
		}
		return 0
	}))
	// Every base edge of the rich node is cut; what survives are at most
	// the two chain bridges connectivity repair may hang on it.
	g := e.At(1)
	if d := g.Degree(rich); d > 2 {
		t.Fatalf("rich node kept degree %d (base %d); isolation did not fire", d, base.Degree(rich))
	}
	// Unbound, the same seed isolates node 0 (all-zero ties break by id).
	e2 := New(dyngraph.NewStatic(base), Isolate(), Options{Tau: 1, Seed: 43})
	if d := e2.At(1).Degree(0); d > 2 {
		t.Fatalf("unbound isolate did not target node 0 (degree %d)", d)
	}
}

type readerFunc func(u int) int

func (f readerFunc) TokenCount(u int) int { return f(u) }

// TestFrozenAdversary pins the Tau ≤ 0 semantics: one perturbation, then a
// never-changing (τ = ∞) topology.
func TestFrozenAdversary(t *testing.T) {
	e := New(staticBase(32, 51), Bipartition(), Options{Tau: 0, Seed: 53})
	if e.Stability() != dyngraph.Infinite {
		t.Fatalf("Stability() = %d, want Infinite", e.Stability())
	}
	g1 := e.At(1)
	if g100 := e.At(100); g100 != g1 {
		t.Fatal("frozen adversary changed its topology")
	}
	if d := e.DeltaFor(50); d.Change() {
		t.Fatal("frozen adversary reported a delta")
	}
	if !g1.Connected() {
		t.Fatal("frozen perturbed topology disconnected")
	}
}

// TestCheckpointRestore snapshots every strategy mid-run (over both base
// families) and requires the restored engine to continue byte-identically.
func TestCheckpointRestore(t *testing.T) {
	const n, tau, at, rounds = 48, 2, 11, 31
	for _, mk := range []struct {
		label string
		base  func(seed uint64) dyngraph.Dynamic
	}{
		{"static", func(seed uint64) dyngraph.Dynamic { return staticBase(n, seed) }},
		{"mobility", func(seed uint64) dyngraph.Dynamic { return mobileBase(n, tau, seed) }},
	} {
		for _, strat := range Strategies() {
			t.Run(mk.label+"/"+strat.Name(), func(t *testing.T) {
				opts := Options{Tau: tau, Seed: 61}
				orig := New(mk.base(9), strat, opts)
				orig.Bind(fakeReader{})
				orig.At(at)

				var buf bytes.Buffer
				w := ckpt.NewWriter(&buf)
				orig.CheckpointTo(w)
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}

				restored := New(mk.base(9), strat, opts)
				restored.Bind(fakeReader{})
				if err := restored.RestoreFrom(ckpt.NewReader(&buf)); err != nil {
					t.Fatalf("RestoreFrom: %v", err)
				}
				for r := at; r <= rounds; r++ {
					if !orig.At(r).EqualCSR(restored.At(r)) {
						t.Fatalf("round %d diverges after restore", r)
					}
				}
			})
		}
	}
}

// TestRestoreRejectsMismatch pins the loud-failure contract for wrong-shape
// streams.
func TestRestoreRejectsMismatch(t *testing.T) {
	small := New(staticBase(16, 1), Bipartition(), Options{Tau: 1, Seed: 2})
	small.At(3)
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	small.CheckpointTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	big := New(staticBase(32, 1), Bipartition(), Options{Tau: 1, Seed: 2})
	if err := big.RestoreFrom(ckpt.NewReader(&buf)); err == nil {
		t.Fatal("restore across node counts succeeded")
	}
	// Truncated stream: error, not panic.
	small.At(5)
	buf.Reset()
	w = ckpt.NewWriter(&buf)
	small.CheckpointTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	fresh := New(staticBase(16, 1), Bipartition(), Options{Tau: 1, Seed: 2})
	if err := fresh.RestoreFrom(ckpt.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("truncated restore succeeded")
	}
}

// TestRestoreRejectsCorruptEdgeList pins the restore-time edge validation:
// a tampered checkpoint whose edge list carries an out-of-range endpoint or
// breaks canonical order must fail RestoreFrom — not restore silently and
// panic inside Patcher.Apply epochs later.
func TestRestoreRejectsCorruptEdgeList(t *testing.T) {
	write := func(edges []uint64) []byte {
		var buf bytes.Buffer
		w := ckpt.NewWriter(&buf)
		w.Section("adversary.engine")
		w.Int(8)
		for i := 0; i < 4; i++ {
			w.U64(uint64(i + 1))
		}
		w.Int(2) // epoch
		w.U64s(edges)
		w.Bool(false) // stateless base
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string][]uint64{
		"endpoint out of range": {graph.PackEdge(0, 1), uint64(2)<<32 | 1000},
		"self loop":             {uint64(3)<<32 | 3},
		"reversed orientation":  {uint64(5)<<32 | 2},
		"not ascending":         {graph.PackEdge(2, 3), graph.PackEdge(0, 1)},
		"duplicate":             {graph.PackEdge(0, 1), graph.PackEdge(0, 1)},
	}
	for name, edges := range cases {
		e := New(staticBase(8, 1), Bipartition(), Options{Tau: 1, Seed: 2})
		if err := e.RestoreFrom(ckpt.NewReader(bytes.NewReader(write(edges)))); err == nil {
			t.Errorf("%s: corrupt edge list restored without error", name)
		}
	}
	// The same stream with a clean list restores and keeps stepping.
	good := []uint64{graph.PackEdge(0, 1), graph.PackEdge(1, 2), graph.PackEdge(2, 7)}
	e := New(staticBase(8, 1), Bipartition(), Options{Tau: 1, Seed: 2})
	if err := e.RestoreFrom(ckpt.NewReader(bytes.NewReader(write(good)))); err != nil {
		t.Fatalf("clean restore failed: %v", err)
	}
	if g := e.At(9); !g.Connected() {
		t.Fatal("post-restore topology disconnected")
	}
}

// randProto is a minimal protocol (propose to a uniform neighbor with
// probability 1/2) exercising the engine's concurrent backend over an
// adversarial schedule; the -race CI job runs this test with the race
// detector on.
type randProto struct{}

func (p *randProto) TagBits() int               { return 0 }
func (p *randProto) Tag(int, mtm.NodeID) uint64 { return 0 }
func (p *randProto) Done() bool                 { return false }
func (p *randProto) Exchange(_ int, c *mtm.Conn) {
	c.ChargeBits(1)
}
func (p *randProto) Decide(_ int, _ mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	if len(view) == 0 || rng.Bool() {
		return mtm.Listen()
	}
	return mtm.Propose(view[rng.Intn(len(view))].ID)
}

// TestConcurrentEngineOverAdversary drives the goroutine-per-connection
// backend over an adaptive adversarial schedule and requires the meters to
// match the sequential backend exactly (the package's determinism contract
// under concurrency).
func TestConcurrentEngineOverAdversary(t *testing.T) {
	run := func(concurrent bool) mtm.Result {
		adv := New(mobileBase(40, 1, 77), CutRich(), Options{Tau: 1, Seed: 79, Budget: 10})
		adv.Bind(fakeReader{shift: 2})
		eng := mtm.NewEngine(adv, &randProto{}, mtm.Config{
			Seed: 81, MaxRounds: 40, Concurrent: concurrent,
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, conc := run(false), run(true)
	if seq != conc {
		t.Fatalf("concurrent backend diverged over adversary:\n seq  %+v\n conc %+v", seq, conc)
	}
}

// TestNameAndStrategyAccessors covers the display plumbing.
func TestNameAndStrategyAccessors(t *testing.T) {
	e := New(staticBase(16, 1), Bridges(3), Options{Tau: 4, Seed: 1})
	want := fmt.Sprintf("adv(%s,τ=4)+%s", Bridges(3).Name(), staticBase(16, 1).Name())
	if e.Name() != want {
		t.Fatalf("Name() = %q, want %q", e.Name(), want)
	}
	if e.Strategy().Name() != "bridges(3)" {
		t.Fatalf("Strategy() = %q", e.Strategy().Name())
	}
	if e.N() != 16 {
		t.Fatalf("N() = %d", e.N())
	}
}
