package adversary

import "fmt"

// Strategy decides, once per adversary epoch, which edges to suppress (and
// optionally inject) via the Ops collector. Strategies are pure functions
// of their Epoch view — they hold no mutable state of their own, which is
// what makes the Engine's checkpoint (RNG + epoch + edge list) complete.
type Strategy interface {
	// Name labels the strategy for schedule names and tables.
	Name() string
	// Perturb registers the epoch's cuts and links on ops.
	Perturb(ep *Epoch, ops *Ops)
}

// ---------------------------------------------------------------------------
// Oblivious strategies: precomputed worst-case schedules, blind to the
// algorithm (fixed before the execution, as §2 defines the adversary).

// Bipartition alternates between two fixed cuts of the vertex set — the
// halves of a seeded permutation on even epochs, its even/odd interleaving
// on odd epochs — and suppresses every base edge crossing the active cut.
// After repair the two sides hang on a single bottleneck bridge, and the
// alternation stops the algorithm from amortizing against one stable cut.
func Bipartition() Strategy { return bipartition{} }

type bipartition struct{}

func (bipartition) Name() string { return "bipartition" }

func (bipartition) Perturb(ep *Epoch, ops *Ops) {
	half := ep.N / 2
	odd := ep.E%2 == 1
	side := func(u int) int {
		p := ep.Pos[u]
		if odd {
			return p % 2
		}
		if p < half {
			return 0
		}
		return 1
	}
	for u := 0; u < ep.N && !ops.Exhausted(); u++ {
		su := side(u)
		for _, v := range ep.Base.Adjacency(u) {
			if int32(u) < v && su != side(int(v)) {
				ops.cutPresent(int32(u), v)
			}
		}
	}
}

// Bridges shatters the vertex set into `groups` permutation classes whose
// membership rotates by one position per epoch, suppressing every
// inter-group edge: the repaired topology is a chain of dense islands
// joined by single bottleneck bridges — the low-α regime of the paper's
// 1/α terms, sustained forever.
func Bridges(groups int) Strategy {
	if groups < 2 {
		groups = 2
	}
	return bridges{groups: groups}
}

type bridges struct{ groups int }

func (s bridges) Name() string { return fmt.Sprintf("bridges(%d)", s.groups) }

func (s bridges) Perturb(ep *Epoch, ops *Ops) {
	gid := func(u int) int { return (ep.Pos[u] + ep.E) % s.groups }
	for u := 0; u < ep.N && !ops.Exhausted(); u++ {
		gu := gid(u)
		for _, v := range ep.Base.Adjacency(u) {
			if int32(u) < v && gu != gid(int(v)) {
				ops.cutPresent(int32(u), v)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Adaptive strategies: read the algorithm's live token state through the
// engine's StateReader and spend the per-epoch budget where it hurts.

// CutRich ranks the nodes by current token count (descending, ties by id)
// and severs the token-heaviest nodes' edges first, spending the whole
// budget: the adversary starves exactly the nodes best positioned to
// spread. With an unlimited budget it degenerates to cutting everything —
// the repaired topology is then the 0–1–…–(n−1) relay chain.
func CutRich() Strategy { return cutRich{} }

type cutRich struct{}

func (cutRich) Name() string { return "cutrich" }

func (cutRich) Perturb(ep *Epoch, ops *Ops) {
	for _, u := range ep.RankDesc(ep.Tokens) {
		if ops.Exhausted() {
			return
		}
		ops.CutNode(int(u))
	}
}

// Isolate targets the current leader — the token-richest node, ties by id —
// and cuts every edge incident to it and to its base-graph neighbors: a
// surgical strike on the near-leader region, within budget.
func Isolate() Strategy { return isolate{} }

type isolate struct{}

func (isolate) Name() string { return "isolate" }

func (isolate) Perturb(ep *Epoch, ops *Ops) {
	leader, best := 0, ep.Tokens(0)
	for u := 1; u < ep.N; u++ {
		if t := ep.Tokens(u); t > best {
			leader, best = u, t
		}
	}
	ops.CutNode(leader)
	for _, v := range ep.Base.Adjacency(leader) {
		if ops.Exhausted() {
			return
		}
		ops.CutNode(int(v))
	}
}

// ---------------------------------------------------------------------------
// Catastrophic events: large, episodic disruptions.

// Blackout cycles through `regions` permutation classes of the vertex set;
// for the first half of each `period`-epoch cycle one region is dark —
// every edge incident to it is suppressed, its nodes dangling off repair
// bridges — then the region heals and the blackout moves on.
func Blackout(regions, period int) Strategy {
	if regions < 1 {
		regions = 1
	}
	if period < 2 {
		period = 2
	}
	return blackout{regions: regions, period: period}
}

type blackout struct{ regions, period int }

func (s blackout) Name() string {
	return fmt.Sprintf("blackout(%d/%d)", s.regions, s.period)
}

func (s blackout) Perturb(ep *Epoch, ops *Ops) {
	if ep.E%s.period >= (s.period+1)/2 {
		return // healed phase
	}
	dark := (ep.E / s.period) % s.regions
	for u := 0; u < ep.N && !ops.Exhausted(); u++ {
		if ep.Pos[u]*s.regions/ep.N == dark {
			ops.CutNode(u)
		}
	}
}

// Partition alternates `period`-epoch cycles of near-partition and healing:
// during the first half every edge crossing the fixed permutation
// bipartition is suppressed, leaving two islands joined by one repair
// bridge; during the second half the base topology passes through intact.
func Partition(period int) Strategy {
	if period < 2 {
		period = 2
	}
	return partition{period: period}
}

type partition struct{ period int }

func (s partition) Name() string { return fmt.Sprintf("partition(%d)", s.period) }

func (s partition) Perturb(ep *Epoch, ops *Ops) {
	if ep.E%s.period >= (s.period+1)/2 {
		return // healed phase
	}
	half := ep.N / 2
	for u := 0; u < ep.N && !ops.Exhausted(); u++ {
		su := ep.Pos[u] < half
		for _, v := range ep.Base.Adjacency(u) {
			if int32(u) < v && su != (ep.Pos[v] < half) {
				ops.cutPresent(int32(u), v)
			}
		}
	}
}

// TopK isolates the k highest-degree nodes of the epoch's base topology
// (ties by id): the hubs the base graph leans on are severed every epoch —
// the targeted-attack half of the classic robustness experiment, aimed at
// exactly the Δ the paper's bounds are parameterized by.
func TopK(k int) Strategy {
	if k < 1 {
		k = 1
	}
	return topk{k: k}
}

type topk struct{ k int }

func (s topk) Name() string { return fmt.Sprintf("topk(%d)", s.k) }

func (s topk) Perturb(ep *Epoch, ops *Ops) {
	ranked := ep.RankDesc(ep.Base.Degree)
	for i := 0; i < s.k && i < len(ranked); i++ {
		if ops.Exhausted() {
			return
		}
		ops.CutNode(int(ranked[i]))
	}
}

// Strategies enumerates one default-parameterized instance of every
// built-in strategy, in catalogue order — the conformance tests' single
// source of truth.
func Strategies() []Strategy {
	return []Strategy{
		Bipartition(), Bridges(4), CutRich(), Isolate(),
		Blackout(4, 8), Partition(8), TopK(3),
	}
}
