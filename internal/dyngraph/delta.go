package dyngraph

import "mobilegossip/internal/graph"

// Delta is the edge difference between consecutive rounds' topologies: the
// edges that appeared and the edges that vanished, as (u, v) pairs with
// u < v. Empty slices mean the topology did not change entering the round.
type Delta struct {
	Added   [][2]int32
	Removed [][2]int32
}

// Change reports whether the delta alters the topology.
func (d Delta) Change() bool { return len(d.Added) > 0 || len(d.Removed) > 0 }

// DeltaDynamic is a Dynamic that can report the edge delta that produced
// round r's topology from round r-1's — the contract that lets the engine
// account per-round churn and lets schedules maintain their CSR
// incrementally (graph.Patcher) instead of rebuilding it per epoch.
// DeltaFor(r) must agree with At: applying the delta to At(r-1) yields
// At(r), and DeltaFor(1) is empty (there is no round 0). The returned
// slices may alias schedule-internal buffers and are valid only until the
// schedule advances past round r.
type DeltaDynamic interface {
	Dynamic
	DeltaFor(r int) Delta
}

// Churn summarizes the measured per-round edge churn of a dynamic schedule
// over a round window — the dynamic-graph counterpart of the static α/Δ/D
// numbers (graphinfo reports both).
type Churn struct {
	// Rounds is the measured window 1..Rounds.
	Rounds int
	// Changes counts the rounds (from round 2 on) whose topology differed
	// from the previous round's.
	Changes int
	// Added and Removed total the churned edges over the window.
	Added, Removed int64
	// EffectiveTau is the smallest observed gap between consecutive
	// topology changes — the stability factor the schedule actually
	// exhibited, as opposed to the τ it promises. Infinite when the window
	// saw at most one change.
	EffectiveTau int
	// MinEdges and MaxEdges bound the per-round edge counts.
	MinEdges, MaxEdges int
}

// MeasureChurn replays rounds 1..rounds of d and tallies the edge churn.
// DeltaDynamic schedules are read through DeltaFor; any other Dynamic is
// diffed graph against graph (skipped entirely when At returns the same
// *Graph, which is how Static and the epoch-caching schedules behave
// between changes). The replay advances d's state: for stateful schedules
// measure on a throwaway instance, not the one an engine is about to run.
func MeasureChurn(d Dynamic, rounds int) Churn {
	c := Churn{Rounds: rounds, EffectiveTau: Infinite}
	if rounds < 1 {
		c.Rounds = 0
		return c
	}
	dd, _ := d.(DeltaDynamic)
	prev := d.At(1)
	c.MinEdges, c.MaxEdges = prev.NumEdges(), prev.NumEdges()
	lastChange := 0
	for r := 2; r <= rounds; r++ {
		g := d.At(r)
		var added, removed int
		if dd != nil {
			delta := dd.DeltaFor(r)
			added, removed = len(delta.Added), len(delta.Removed)
		} else if g != prev {
			added, removed = countEdgeDiff(prev, g)
		}
		if added > 0 || removed > 0 {
			c.Changes++
			c.Added += int64(added)
			c.Removed += int64(removed)
			if lastChange > 0 && r-lastChange < c.EffectiveTau {
				c.EffectiveTau = r - lastChange
			}
			lastChange = r
		}
		if m := g.NumEdges(); m < c.MinEdges {
			c.MinEdges = m
		} else if m > c.MaxEdges {
			c.MaxEdges = m
		}
		prev = g
	}
	return c
}

// countEdgeDiff counts the edges of b missing from a (added) and the edges
// of a missing from b (removed) by merging the sorted adjacency ranges,
// counting each undirected edge once at its smaller endpoint.
func countEdgeDiff(a, b *graph.Graph) (added, removed int) {
	n := a.N()
	for u := 0; u < n; u++ {
		av, bv := a.Adjacency(u), b.Adjacency(u)
		i, j := 0, 0
		for i < len(av) && j < len(bv) {
			switch {
			case av[i] == bv[j]:
				i++
				j++
			case av[i] < bv[j]:
				if av[i] > int32(u) {
					removed++
				}
				i++
			default:
				if bv[j] > int32(u) {
					added++
				}
				j++
			}
		}
		for ; i < len(av); i++ {
			if av[i] > int32(u) {
				removed++
			}
		}
		for ; j < len(bv); j++ {
			if bv[j] > int32(u) {
				added++
			}
		}
	}
	return added, removed
}
