// Package dyngraph implements the dynamic-graph substrate of the mobile
// telephone model (§2): a dynamic graph is a sequence G₁, G₂, ... of
// connected topologies on a fixed vertex set, constrained by a stability
// factor τ ≥ 1 — at least τ rounds must pass between changes. τ = 1 allows
// arbitrary per-round change; Stable (τ = ∞) never changes.
//
// Schedules are deterministic functions of a seed, fixed (conceptually) at
// the start of the execution as the model requires, and oblivious to the
// algorithm's coin flips.
package dyngraph

import (
	"fmt"

	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// Infinite is the τ value denoting a never-changing topology.
const Infinite = int(^uint(0) >> 1) // MaxInt

// Dynamic is a dynamic graph: the topology for each round r >= 1.
// Implementations must return connected graphs and respect Stability().
type Dynamic interface {
	// At returns the topology graph for round r (1-based).
	At(r int) *graph.Graph
	// N returns the (fixed) number of vertices.
	N() int
	// Stability returns the stability factor τ of the schedule.
	Stability() int
	// Name describes the schedule for display.
	Name() string
}

// Static wraps a single graph as a τ = ∞ dynamic graph.
type Static struct {
	g *graph.Graph
}

var _ Dynamic = (*Static)(nil)

// NewStatic returns the never-changing schedule for g.
func NewStatic(g *graph.Graph) *Static { return &Static{g: g} }

// At implements Dynamic.
func (s *Static) At(int) *graph.Graph { return s.g }

// N implements Dynamic.
func (s *Static) N() int { return s.g.N() }

// Stability implements Dynamic.
func (s *Static) Stability() int { return Infinite }

// Name implements Dynamic.
func (s *Static) Name() string { return "static:" + s.g.Name() }

// Generator produces the topology for a given epoch from a seed. The same
// (seed, epoch) must always yield the same graph.
type Generator func(epoch int, rng *prand.RNG) *graph.Graph

// Regen re-generates the topology every τ rounds from a per-epoch RNG —
// the harshest oblivious adversary allowed by a given stability factor.
// Graphs for each epoch are cached so At is cheap on repeat calls within an
// epoch (the engine queries rounds in order).
type Regen struct {
	n     int
	tau   int
	seed  uint64
	gen   Generator
	name  string
	cache map[int]*graph.Graph
}

var _ Dynamic = (*Regen)(nil)

// NewRegen returns a schedule over n vertices that redraws the topology from
// gen at the start of every τ-round epoch.
func NewRegen(n, tau int, seed uint64, name string, gen Generator) *Regen {
	if tau < 1 {
		tau = 1
	}
	return &Regen{n: n, tau: tau, seed: seed, gen: gen, name: name,
		cache: make(map[int]*graph.Graph)}
}

// At implements Dynamic.
func (d *Regen) At(r int) *graph.Graph {
	if r < 1 {
		r = 1
	}
	epoch := (r - 1) / d.tau
	if g, ok := d.cache[epoch]; ok {
		return g
	}
	rng := prand.New(prand.Mix64(d.seed ^ uint64(epoch)*0x9e3779b97f4a7c15))
	g := d.gen(epoch, rng)
	// Keep the cache bounded: epochs are visited in order, so evict all but
	// a recent window.
	if len(d.cache) > 8 {
		for k := range d.cache {
			if k < epoch-4 {
				delete(d.cache, k)
			}
		}
	}
	d.cache[epoch] = g
	return g
}

// N implements Dynamic.
func (d *Regen) N() int { return d.n }

// Stability implements Dynamic.
func (d *Regen) Stability() int { return d.tau }

// Name implements Dynamic.
func (d *Regen) Name() string { return fmt.Sprintf("regen(τ=%d):%s", d.tau, d.name) }

// RandomMatchingChurn returns a τ-stable schedule that, each epoch, draws a
// fresh connected G(n,p)-with-backbone graph. With τ = 1 this changes the
// whole topology every round — the fully dynamic regime of §4 and §5.
func RandomMatchingChurn(n, tau int, p float64, seed uint64) *Regen {
	return NewRegen(n, tau, seed, fmt.Sprintf("gnp(%.3f)", p),
		func(_ int, rng *prand.RNG) *graph.Graph {
			return graph.GNP(n, p, rng)
		})
}

// RotatingRing returns a τ-stable schedule whose epoch-e topology is a ring
// over a fresh random permutation of the vertices: constant degree, worst
// case expansion, completely re-wired each epoch.
func RotatingRing(n, tau int, seed uint64) *Regen {
	return NewRegen(n, tau, seed, "rotating-ring",
		func(_ int, rng *prand.RNG) *graph.Graph {
			perm := rng.Perm(n)
			b := graph.NewBuilderCap(n, n)
			for i := 0; i < n; i++ {
				_ = b.AddEdge(perm[i], perm[(i+1)%n])
			}
			return b.Build("permring")
		})
}

// RotatingDoubleStar returns a τ-stable schedule whose epoch-e topology is a
// double star with freshly chosen hubs — the adversarial regime for blind
// (b = 0) strategies, preserving Δ ≈ n/2 every epoch.
func RotatingDoubleStar(n, tau int, seed uint64) *Regen {
	return NewRegen(n, tau, seed, "rotating-doublestar",
		func(_ int, rng *prand.RNG) *graph.Graph {
			perm := rng.Perm(n)
			b := graph.NewBuilderCap(n, n)
			if n >= 2 {
				_ = b.AddEdge(perm[0], perm[1])
			}
			for i := 2; i < n; i++ {
				_ = b.AddEdge(perm[i%2], perm[i])
			}
			return b.Build("permdoublestar")
		})
}

// RotatingRegular returns a τ-stable schedule of fresh random d-regular
// graphs — dynamic but well-expanding topologies.
func RotatingRegular(n, d, tau int, seed uint64) *Regen {
	return NewRegen(n, tau, seed, fmt.Sprintf("regular(d=%d)", d),
		func(_ int, rng *prand.RNG) *graph.Graph {
			return graph.RandomRegular(n, d, rng)
		})
}

// Alpha estimates the vertex expansion of the dynamic graph: the minimum
// estimate over the first `epochs` epochs (§2 defines dynamic α as the min
// over all rounds). For static schedules one epoch suffices.
func Alpha(d Dynamic, epochs, samples int, rng *prand.RNG) float64 {
	if d.Stability() == Infinite {
		epochs = 1
	}
	best := 2.0
	for e := 0; e < epochs; e++ {
		r := e*max(d.Stability(), 1) + 1
		if d.Stability() == Infinite {
			r = 1
		}
		a := d.At(r).EstimateVertexExpansion(samples, rng)
		if a < best {
			best = a
		}
	}
	return best
}

// MaxDegree returns the maximum degree over the first `epochs` epochs.
func MaxDegree(d Dynamic, epochs int) int {
	if d.Stability() == Infinite {
		epochs = 1
	}
	dd := 0
	for e := 0; e < epochs; e++ {
		r := e*max(d.Stability(), 1) + 1
		if d.Stability() == Infinite {
			r = 1
		}
		if v := d.At(r).MaxDegree(); v > dd {
			dd = v
		}
	}
	return dd
}
