package dyngraph

import (
	"fmt"

	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

// Sequence is an explicit dynamic graph: a pre-built chain of per-epoch
// topologies, each held for τ rounds, clamping at the last graph once the
// chain is exhausted (changes simply stop, which every stability factor
// permits). The paper fixes the dynamic graph at the beginning of the
// execution (§2); Sequence is that definition made literal.
type Sequence struct {
	graphs []*graph.Graph
	tau    int
	name   string
}

var _ Dynamic = (*Sequence)(nil)

// NewSequence builds a τ-stable schedule from an explicit graph chain. All
// graphs must be connected and share the same vertex count.
func NewSequence(tau int, name string, graphs ...*graph.Graph) (*Sequence, error) {
	if tau < 1 {
		return nil, fmt.Errorf("dyngraph: sequence stability %d < 1", tau)
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("dyngraph: empty sequence")
	}
	n := graphs[0].N()
	for i, g := range graphs {
		if g.N() != n {
			return nil, fmt.Errorf("dyngraph: sequence graph %d has %d vertices, want %d", i, g.N(), n)
		}
		if !g.Connected() {
			return nil, fmt.Errorf("dyngraph: sequence graph %d (%s) is disconnected", i, g.Name())
		}
	}
	return &Sequence{graphs: graphs, tau: tau, name: name}, nil
}

// At implements Dynamic.
func (s *Sequence) At(r int) *graph.Graph {
	if r < 1 {
		r = 1
	}
	epoch := (r - 1) / s.tau
	if epoch >= len(s.graphs) {
		epoch = len(s.graphs) - 1
	}
	return s.graphs[epoch]
}

// N implements Dynamic.
func (s *Sequence) N() int { return s.graphs[0].N() }

// Stability implements Dynamic.
func (s *Sequence) Stability() int { return s.tau }

// Name implements Dynamic.
func (s *Sequence) Name() string {
	return fmt.Sprintf("sequence(τ=%d,len=%d):%s", s.tau, len(s.graphs), s.name)
}

// Epochs returns the number of distinct topologies in the chain.
func (s *Sequence) Epochs() int { return len(s.graphs) }

// GradualChurn builds a Sequence modelling a slowly reshuffling crowd: a
// fixed ring backbone (guaranteeing per-round connectivity) plus n chord
// edges, of which a `rewire` fraction (0..1) is re-drawn uniformly between
// consecutive epochs. rewire = 0 is a static graph; rewire = 1 redraws
// every chord each epoch (still gentler than the Rotating* schedules,
// which also re-wire the backbone). epochs bounds the chain length; after
// that the topology freezes.
//
// This schedule interpolates between the paper's two extremes (τ = ∞ and
// adversarial τ = 1 re-wiring) and backs the churn-sensitivity ablation
// (experiment E18).
func GradualChurn(n, tau, epochs int, rewire float64, seed uint64) (*Sequence, error) {
	if n < 3 {
		return nil, fmt.Errorf("dyngraph: gradual churn needs n >= 3, got %d", n)
	}
	if epochs < 1 {
		return nil, fmt.Errorf("dyngraph: gradual churn needs epochs >= 1, got %d", epochs)
	}
	if rewire < 0 || rewire > 1 {
		return nil, fmt.Errorf("dyngraph: rewire fraction %v outside [0, 1]", rewire)
	}
	rng := prand.New(prand.Mix64(seed ^ 0x8e5b_4dbf_16c1_a3f7))

	// Chords are stored as endpoint pairs; each epoch re-draws a rewire
	// fraction of them.
	chords := make([][2]int, n)
	for i := range chords {
		chords[i] = randomChord(n, rng)
	}

	build := func(epoch int) *graph.Graph {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			_ = b.AddEdge(u, (u+1)%n) // backbone ring
		}
		for _, c := range chords {
			_ = b.AddEdge(c[0], c[1])
		}
		return b.Build(fmt.Sprintf("churn(e=%d)", epoch))
	}

	graphs := make([]*graph.Graph, 0, epochs)
	graphs = append(graphs, build(0))
	for e := 1; e < epochs; e++ {
		for i := range chords {
			if rng.Float64() < rewire {
				chords[i] = randomChord(n, rng)
			}
		}
		graphs = append(graphs, build(e))
	}
	name := fmt.Sprintf("gradual-churn(n=%d,rewire=%.2f)", n, rewire)
	return NewSequence(tau, name, graphs...)
}

// randomChord draws a uniform non-self-loop, non-backbone vertex pair.
func randomChord(n int, rng *prand.RNG) [2]int {
	for {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		// Skip backbone edges so chords always add capacity.
		d := u - v
		if d < 0 {
			d = -d
		}
		if d == 1 || d == n-1 {
			continue
		}
		return [2]int{u, v}
	}
}
