package dyngraph

import (
	"testing"

	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

func TestStatic(t *testing.T) {
	g := graph.Cycle(10)
	d := NewStatic(g)
	if d.N() != 10 || d.Stability() != Infinite {
		t.Fatalf("static: n=%d τ=%d", d.N(), d.Stability())
	}
	for _, r := range []int{1, 5, 1000000} {
		if d.At(r) != g {
			t.Fatalf("round %d: static graph changed", r)
		}
	}
}

func TestRegenStabilityRespected(t *testing.T) {
	// Within an epoch of τ rounds the topology must not change; across
	// epochs it must (w.h.p. for the rotating ring on n=20).
	d := RotatingRing(20, 5, 42)
	if d.Stability() != 5 {
		t.Fatalf("τ = %d", d.Stability())
	}
	for epoch := 0; epoch < 4; epoch++ {
		base := d.At(epoch*5 + 1)
		for r := epoch*5 + 1; r <= epoch*5+5; r++ {
			if d.At(r) != base {
				t.Fatalf("topology changed mid-epoch at round %d", r)
			}
		}
	}
	if sameEdges(d.At(1), d.At(6)) && sameEdges(d.At(6), d.At(11)) {
		t.Fatal("rotating ring never rotated across three epochs")
	}
}

func TestRegenDeterministicAcrossInstances(t *testing.T) {
	a := RotatingRing(15, 3, 7)
	b := RotatingRing(15, 3, 7)
	for r := 1; r <= 12; r++ {
		if !sameEdges(a.At(r), b.At(r)) {
			t.Fatalf("round %d: same seed produced different topologies", r)
		}
	}
}

func TestRegenDifferentSeedsDiffer(t *testing.T) {
	a := RotatingRing(15, 1, 1)
	b := RotatingRing(15, 1, 2)
	same := 0
	for r := 1; r <= 10; r++ {
		if sameEdges(a.At(r), b.At(r)) {
			same++
		}
	}
	if same == 10 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRegenCacheEviction(t *testing.T) {
	d := RotatingRing(10, 1, 3)
	// Visit many epochs; cache must stay bounded and still be re-derivable.
	g50 := d.At(50)
	for r := 51; r < 100; r++ {
		d.At(r)
	}
	if !sameEdges(g50, d.At(50)) {
		t.Fatal("re-derived epoch graph differs from original")
	}
}

func TestAllSchedulesConnected(t *testing.T) {
	schedules := []Dynamic{
		RandomMatchingChurn(20, 1, 0.15, 1),
		RotatingRing(20, 1, 2),
		RotatingDoubleStar(20, 1, 3),
		RotatingRegular(20, 3, 2, 4),
		NewStatic(graph.Grid(4, 5)),
	}
	for _, d := range schedules {
		for r := 1; r <= 15; r++ {
			g := d.At(r)
			if !g.Connected() {
				t.Fatalf("%s round %d: disconnected", d.Name(), r)
			}
			if g.N() != d.N() {
				t.Fatalf("%s: vertex count changed", d.Name())
			}
		}
	}
}

func TestRotatingDoubleStarShape(t *testing.T) {
	d := RotatingDoubleStar(20, 1, 9)
	for r := 1; r <= 5; r++ {
		g := d.At(r)
		// Δ ≈ n/2 must be preserved each round.
		if g.MaxDegree() < 9 || g.MaxDegree() > 11 {
			t.Fatalf("round %d: hub degree %d not ≈ n/2", r, g.MaxDegree())
		}
	}
}

func TestAlphaAndMaxDegree(t *testing.T) {
	rng := prand.New(11)
	s := NewStatic(graph.Cycle(16))
	a := Alpha(s, 10, 20, rng)
	if a <= 0 || a > 0.25+1e-9 { // ring α = 4/n = 0.25
		t.Fatalf("static ring alpha = %f", a)
	}
	if MaxDegree(s, 10) != 2 {
		t.Fatalf("static ring Δ = %d", MaxDegree(s, 10))
	}

	d := RotatingDoubleStar(16, 2, 5)
	if dd := MaxDegree(d, 5); dd < 7 {
		t.Fatalf("rotating double star Δ = %d", dd)
	}
	if a := Alpha(d, 5, 20, rng); a <= 0 || a > 1.1 {
		t.Fatalf("rotating double star α = %f", a)
	}
}

func TestAtRoundZeroClamped(t *testing.T) {
	d := RotatingRing(10, 3, 1)
	if !sameEdges(d.At(0), d.At(1)) {
		t.Fatal("At(0) should clamp to round 1")
	}
}

// sameEdges reports whether two graphs have identical edge sets.
func sameEdges(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e[0], e[1]) {
			return false
		}
	}
	return true
}
