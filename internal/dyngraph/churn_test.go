package dyngraph

import (
	"testing"

	"mobilegossip/internal/graph"
)

func TestNewSequenceValidation(t *testing.T) {
	ring := graph.Cycle(8)
	if _, err := NewSequence(0, "bad", ring); err == nil {
		t.Error("tau=0 should be rejected")
	}
	if _, err := NewSequence(1, "bad"); err == nil {
		t.Error("empty sequence should be rejected")
	}
	if _, err := NewSequence(1, "bad", ring, graph.Cycle(9)); err == nil {
		t.Error("mismatched vertex counts should be rejected")
	}
	disconnected := graph.NewBuilder(4).Build("disc")
	if _, err := NewSequence(1, "bad", disconnected); err == nil {
		t.Error("disconnected graph should be rejected")
	}
}

func TestSequenceEpochScheduleAndClamp(t *testing.T) {
	g1, g2 := graph.Cycle(6), graph.Complete(6)
	seq, err := NewSequence(3, "pair", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stability() != 3 {
		t.Errorf("stability = %d, want 3", seq.Stability())
	}
	if seq.N() != 6 {
		t.Errorf("n = %d, want 6", seq.N())
	}
	if seq.Epochs() != 2 {
		t.Errorf("epochs = %d, want 2", seq.Epochs())
	}
	for r := 1; r <= 3; r++ {
		if got := seq.At(r); got != g1 {
			t.Errorf("round %d: got %s, want first graph", r, got.Name())
		}
	}
	// Rounds 4.. are the second epoch, then clamped forever.
	for _, r := range []int{4, 6, 7, 100} {
		if got := seq.At(r); got != g2 {
			t.Errorf("round %d: got %s, want second graph", r, got.Name())
		}
	}
	if got := seq.At(0); got != g1 {
		t.Errorf("round 0 clamps to first graph, got %s", got.Name())
	}
}

func TestGradualChurnValidation(t *testing.T) {
	if _, err := GradualChurn(2, 1, 4, 0.5, 1); err == nil {
		t.Error("n=2 should be rejected")
	}
	if _, err := GradualChurn(8, 1, 0, 0.5, 1); err == nil {
		t.Error("epochs=0 should be rejected")
	}
	if _, err := GradualChurn(8, 1, 4, -0.1, 1); err == nil {
		t.Error("negative rewire should be rejected")
	}
	if _, err := GradualChurn(8, 1, 4, 1.1, 1); err == nil {
		t.Error("rewire > 1 should be rejected")
	}
}

func TestGradualChurnEveryEpochConnected(t *testing.T) {
	seq, err := GradualChurn(16, 2, 20, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < seq.Epochs(); e++ {
		g := seq.At(e*2 + 1)
		if !g.Connected() {
			t.Fatalf("epoch %d disconnected", e)
		}
		if g.N() != 16 {
			t.Fatalf("epoch %d has %d vertices", e, g.N())
		}
		// Backbone ring must always be present.
		for u := 0; u < 16; u++ {
			if !g.HasEdge(u, (u+1)%16) {
				t.Fatalf("epoch %d missing backbone edge %d-%d", e, u, (u+1)%16)
			}
		}
	}
}

func TestGradualChurnRewireZeroIsStaticChain(t *testing.T) {
	seq, err := GradualChurn(12, 1, 10, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	first := seq.At(1)
	for r := 2; r <= 10; r++ {
		g := seq.At(r)
		if g.NumEdges() != first.NumEdges() {
			t.Fatalf("round %d: edge count changed with rewire=0", r)
		}
		for _, e := range first.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("round %d: edge %v vanished with rewire=0", r, e)
			}
		}
	}
}

func TestGradualChurnDeterministicInSeed(t *testing.T) {
	a, err := GradualChurn(14, 1, 8, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GradualChurn(14, 1, 8, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 8; r++ {
		ga, gb := a.At(r), b.At(r)
		if ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("round %d: edge counts differ", r)
		}
		for _, e := range ga.Edges() {
			if !gb.HasEdge(e[0], e[1]) {
				t.Fatalf("round %d: edge %v differs across identical seeds", r, e)
			}
		}
	}
}

func TestGradualChurnRewireActuallyChangesChords(t *testing.T) {
	seq, err := GradualChurn(20, 1, 2, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := seq.At(1), seq.At(2)
	changed := 0
	for _, e := range g1.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			changed++
		}
	}
	if changed == 0 {
		t.Error("rewire=1 produced identical consecutive epochs")
	}
}
