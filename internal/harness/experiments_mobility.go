package harness

// Mobility experiments E22–E24: the dynamic-graph abstraction made
// physical. Where E6/E16/E18 sweep abstract adversaries (τ, rewire
// fraction), these sweep the knobs of real smartphone motion — node speed,
// crowd density, gathering intensity — over internal/mobility's unit-disk
// proximity schedules, and report the churn the motion actually induces
// next to the gossip cost it causes. See DESIGN.md §8.

import (
	"fmt"

	"mobilegossip"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/mobility"
	"mobilegossip/internal/stats"
)

func init() {
	register(Experiment{ID: "E22", Title: "Gossip vs node speed (random-waypoint motion)", Exhibit: "§2 mobility instantiation; E6's stability-vs-tags tradeoff under physical motion", Run: runE22})
	register(Experiment{ID: "E23", Title: "Gossip vs crowd density (radio range sweep)", Exhibit: "§2 proximity graphs; 1/α terms under physical density", Run: runE23})
	register(Experiment{ID: "E24", Title: "Gossip vs gathering intensity (group motion)", Exhibit: "§1 scenarios (concerts/gatherings); low-α regime under motion", Run: runE24})
}

// churnFor replays a fresh instance of the topology's schedule and tallies
// its churn — sequential and seed-deterministic, so the tables stay
// byte-identical at any worker count.
func churnFor(t mobilegossip.Topology, n, tau, rounds int, o Options) (dyngraph.Churn, error) {
	dyn, err := t.Build(n, tau, o.Seed+1315)
	if err != nil {
		return dyngraph.Churn{}, err
	}
	return dyngraph.MeasureChurn(dyn, rounds), nil
}

func tauEff(c dyngraph.Churn) string {
	if c.EffectiveTau == dyngraph.Infinite {
		return "∞"
	}
	return fmtF(float64(c.EffectiveTau))
}

func churnPerRound(c dyngraph.Churn) float64 {
	if c.Rounds <= 1 {
		return 0
	}
	return float64(c.Added+c.Removed) / float64(c.Rounds-1)
}

// runE22: sweep the walking speed of a random-waypoint crowd and re-measure
// the b = 0 vs b = 1 gap of E6 under physical motion. The paper's shape:
// SharedBit's O(kn) bound is motion-independent (no reliance on edge
// persistence), BlindMatch pays for blind dials at every speed, and
// SimSharedBit adds a leader-election term that motion (lower effective
// stability) inflates.
func runE22(o Options) (*Table, error) {
	n, k := 96, 8
	if o.Quick {
		n = 48
	}
	// Speed 0 (frozen crowd) is expressed as a negative knob, since a zero
	// Topology.Speed selects the default.
	speeds := []float64{-1, 0.005, 0.01, 0.02, 0.05}
	t := &Table{
		ID: "E22",
		Caption: fmt.Sprintf(
			"Gossip under random-waypoint motion (n=%d, k=%d, τ=1): rounds vs node speed", n, k),
		Columns: []string{"speed", "churn/round", "τ_eff", "blindmatch (b=0)", "sharedbit (b=1)", "simsharedbit"},
	}
	algs := []mobilegossip.Algorithm{
		mobilegossip.AlgBlindMatch, mobilegossip.AlgSharedBit, mobilegossip.AlgSimSharedBit,
	}
	var cfgs []mobilegossip.Config
	topoFor := func(speed float64) mobilegossip.Topology {
		return mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: speed}
	}
	for _, sp := range speeds {
		for _, alg := range algs {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: k, Topology: topoFor(sp), Tau: 1,
			})
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var frozen, fastest float64
	for i, sp := range speeds {
		c, err := churnFor(topoFor(sp), n, 1, 48, o)
		if err != nil {
			return nil, err
		}
		shown := sp
		if sp < 0 {
			shown = 0
		}
		b1 := means[3*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", shown), fmtF(churnPerRound(c)), tauEff(c),
			fmtF(means[3*i]), fmtF(b1), fmtF(means[3*i+2]),
		})
		if i == 0 {
			frozen = b1
		}
		fastest = b1
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("motion helps: a frozen crowd is the worst case (one fixed low-α geometric "+
			"graph) and walking mixes the neighborhoods — sharedbit speeds up %.2fx from frozen "+
			"to the fastest walkers, the physical analogue of E18's churn-insensitivity (its "+
			"O(kn) analysis never leans on edge persistence)", stats.Ratio(fastest, frozen)),
		"the E6 stability-vs-tags tradeoff re-measured physically: at every speed the single "+
			"advertised bit (b=1 vs b=0) is worth more than any motion regime costs")
	return t, nil
}

// runE23: sweep the radio range (crowd density). Density buys expansion:
// the 1/α terms shrink and more vertex-disjoint connections fit per round,
// so all algorithms speed up — at the price of quadratically more churn to
// maintain.
func runE23(o Options) (*Table, error) {
	n, k := 96, 8
	if o.Quick {
		n = 48
	}
	mults := []float64{0.7, 1.0, 1.4, 2.0}
	t := &Table{
		ID: "E23",
		Caption: fmt.Sprintf(
			"Gossip under waypoint motion (n=%d, k=%d, τ=1, speed 0.01): rounds vs radio range", n, k),
		Columns: []string{"radius×", "mean deg", "churn/round", "sharedbit", "simsharedbit"},
	}
	defaultRadius := mobility.DefaultRadius(n)
	topoFor := func(mult float64) mobilegossip.Topology {
		return mobilegossip.Topology{
			Kind: mobilegossip.MobileWaypoint, Speed: 0.01, Radius: defaultRadius * mult,
		}
	}
	var cfgs []mobilegossip.Config
	for _, mu := range mults {
		for _, alg := range []mobilegossip.Algorithm{mobilegossip.AlgSharedBit, mobilegossip.AlgSimSharedBit} {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: k, Topology: topoFor(mu), Tau: 1,
			})
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var sparse, dense float64
	for i, mu := range mults {
		c, err := churnFor(topoFor(mu), n, 1, 48, o)
		if err != nil {
			return nil, err
		}
		meanDeg := float64(c.MinEdges+c.MaxEdges) / float64(n) // 2·(avg of min/max edges)/n
		sb := means[2*i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", mu), fmtF(meanDeg), fmtF(churnPerRound(c)),
			fmtF(sb), fmtF(means[2*i+1]),
		})
		if i == 0 {
			sparse = sb
		}
		dense = sb
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"densifying the crowd 0.7×→2.0× radius cuts sharedbit %.2fx: higher α admits more "+
			"productive vertex-disjoint connections per round (the 1/α shape of the paper's "+
			"bounds), while the churn to maintain the denser unit-disk graph keeps growing",
		stats.Ratio(dense, sparse)))
	return t, nil
}

// runE24: sweep the gathering intensity of group motion. Gathering is the
// paper's concert scenario taken to its limit: dense clusters around the
// attractors joined by sparse repaired bridges — vertex expansion
// collapses, and the 1/α-sensitive algorithms pay for it while SharedBit's
// O(kn) term degrades only through the bottleneck bridges.
func runE24(o Options) (*Table, error) {
	n, k := 96, 8
	if o.Quick {
		n = 48
	}
	attracts := []float64{-1, 0.3, 0.6, 0.9}
	t := &Table{
		ID: "E24",
		Caption: fmt.Sprintf(
			"Gossip under group/gathering motion (n=%d, k=%d, τ=1, 4 attractors): rounds vs gathering intensity", n, k),
		Columns: []string{"attract", "churn/round", "edges[min,max]", "sharedbit", "simsharedbit"},
	}
	topoFor := func(a float64) mobilegossip.Topology {
		return mobilegossip.Topology{Kind: mobilegossip.MobileGroup, Speed: 0.02, Attract: a}
	}
	var cfgs []mobilegossip.Config
	for _, a := range attracts {
		for _, alg := range []mobilegossip.Algorithm{mobilegossip.AlgSharedBit, mobilegossip.AlgSimSharedBit} {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: k, Topology: topoFor(a), Tau: 1,
			})
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var loose, tight float64
	for i, a := range attracts {
		c, err := churnFor(topoFor(a), n, 1, 48, o)
		if err != nil {
			return nil, err
		}
		shown := a
		if a < 0 {
			shown = 0
		}
		sb := means[2*i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", shown), fmtF(churnPerRound(c)),
			fmt.Sprintf("[%d,%d]", c.MinEdges, c.MaxEdges),
			fmtF(sb), fmtF(means[2*i+1]),
		})
		if i == 0 {
			loose = sb
		}
		tight = sb
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"gathering densifies the contact graph (edge count grows several-fold as the clusters "+
			"tighten) and sharedbit rides the density %.2fx faster from a diffuse crowd to "+
			"attract 0.9; the bridge bottleneck shows up in simsharedbit at the tightest "+
			"gathering, where leader election must cross the few repaired inter-cluster links "+
			"— the physically induced low-α regime E6 reached only with adversarial families",
		stats.Ratio(tight, loose)))
	return t, nil
}
