package harness

import (
	"fmt"

	"mobilegossip"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/runner"
	"mobilegossip/internal/stats"
)

// runnerCfg maps experiment options onto the sweep engine. Workers = 0
// means GOMAXPROCS; every experiment grid fans out through this one path.
func runnerCfg(o Options) runner.Config {
	return runner.Config{Workers: o.Workers, Seed: o.Seed, OnProgress: o.OnProgress}
}

// subRunnerCfg is runnerCfg with the base seed split by a per-sweep label,
// so an experiment that issues several Monte-Carlo grids draws disjoint
// seed streams for each.
func subRunnerCfg(o Options, label uint64) runner.Config {
	c := runnerCfg(o)
	c.Seed = prand.StreamSeed(o.Seed, label)
	return c
}

// trialSeed is the per-trial seed formula the harness has always used for
// mobilegossip.Run sweeps. It depends only on (options, trial), never on
// shared RNG state, which is what lets the parallel runner reproduce the
// sequential tables byte-for-byte.
func trialSeed(o Options, trial int) uint64 {
	return o.Seed + uint64(1000*trial) + 17
}

// engineWorkersFor resolves the per-run engine worker count for sweep
// cells: Options.EngineWorkers when set, else 1 (sequential — the pool
// already saturates the machine).
func engineWorkersFor(o Options) int {
	if o.EngineWorkers > 0 {
		return o.EngineWorkers
	}
	return 1
}

// meanRoundsGrid evaluates every config trials(o) times on the worker pool
// and returns the per-config mean round counts in grid order.
func meanRoundsGrid(o Options, cfgs []mobilegossip.Config) ([]float64, error) {
	rows, err := runner.MapGrid(runnerCfg(o), len(cfgs), trials(o),
		func(p, t int, _ uint64) (float64, error) {
			cfg := cfgs[p]
			cfg.Seed = trialSeed(o, t)
			cfg.EngineWorkers = engineWorkersFor(o)
			res, err := mobilegossip.Run(cfg)
			if err != nil {
				return 0, err
			}
			if !res.Solved {
				return 0, fmt.Errorf("harness: %v on %s unsolved after %d rounds",
					cfg.Algorithm, res.Topology, res.Rounds)
			}
			return float64(res.Rounds), nil
		})
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(cfgs))
	for p, xs := range rows {
		means[p] = stats.Summarize(xs).Mean
	}
	return means, nil
}

// runStats are the per-config means meanStatsGrid aggregates: round count
// plus the measured topology churn (delta-capable schedules only).
type runStats struct {
	Rounds, EdgesAdded, EdgesRemoved float64
}

// churnPerRoundMean is the mean churned edges per executed round.
func (s runStats) churnPerRoundMean() float64 {
	if s.Rounds <= 0 {
		return 0
	}
	return (s.EdgesAdded + s.EdgesRemoved) / s.Rounds
}

// meanStatsGrid is meanRoundsGrid keeping the runs' churn meters too — the
// adversary experiments report the churn the runs actually experienced
// (adaptive strategies cut differently against live state than against a
// throwaway replay, so a churnFor-style re-measure would be wrong for them).
func meanStatsGrid(o Options, cfgs []mobilegossip.Config) ([]runStats, error) {
	rows, err := runner.MapGrid(runnerCfg(o), len(cfgs), trials(o),
		func(p, t int, _ uint64) (runStats, error) {
			cfg := cfgs[p]
			cfg.Seed = trialSeed(o, t)
			cfg.EngineWorkers = engineWorkersFor(o)
			res, err := mobilegossip.Run(cfg)
			if err != nil {
				return runStats{}, err
			}
			if !res.Solved {
				return runStats{}, fmt.Errorf("harness: %v on %s unsolved after %d rounds",
					cfg.Algorithm, res.Topology, res.Rounds)
			}
			return runStats{
				Rounds:     float64(res.Rounds),
				EdgesAdded: float64(res.EdgesAdded), EdgesRemoved: float64(res.EdgesRemoved),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	means := make([]runStats, len(cfgs))
	for p, xs := range rows {
		var m runStats
		for _, s := range xs {
			m.Rounds += s.Rounds
			m.EdgesAdded += s.EdgesAdded
			m.EdgesRemoved += s.EdgesRemoved
		}
		nf := float64(len(xs))
		m.Rounds /= nf
		m.EdgesAdded /= nf
		m.EdgesRemoved /= nf
		means[p] = m
	}
	return means, nil
}

// meanRounds runs cfg over several seeds and returns the mean round count.
func meanRounds(o Options, cfg mobilegossip.Config) (float64, error) {
	ms, err := meanRoundsGrid(o, []mobilegossip.Config{cfg})
	if err != nil {
		return 0, err
	}
	return ms[0], nil
}
