package harness

import (
	"fmt"
	"math"

	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/runner"
	"mobilegossip/internal/stats"
)

func init() {
	register(Experiment{ID: "E21", Title: "Boundary matchings and proposal hits (Lemmas 7.1, 7.2)", Exhibit: "Lemmas 7.1-7.2 / [11]", Run: runE21})
}

// runE21: the ε-gossip analysis rests on two graph lemmas. Lemma 7.1:
// every S with |S| ≤ n/2 has a boundary matching ν(B_G(S)) ≥ |S|·α/4.
// Lemma 7.2: if each node of C proposes to a uniform B_G(C)-neighbor,
// with constant probability Ω(m/√(Δ·logΔ)) matched outside endpoints
// receive a proposal. We measure both on random subsets of concrete
// graphs: the worst observed ν/(|S|·α/4) ratio (must stay ≥ 1) and the
// mean fraction of matched endpoints hit per random proposal round.
func runE21(o Options) (*Table, error) {
	n := 64
	samples := 200
	if o.Quick {
		n, samples = 48, 80
	}
	rng := prand.New(prand.Mix64(o.Seed ^ 0x9e37_79b9_7f4a_7c15))

	t := &Table{
		ID: "E21",
		Caption: fmt.Sprintf(
			"Lemma 7.1/7.2 on random subsets (n=%d, %d samples per graph)", n, samples),
		Columns: []string{"graph", "α (est)", "worst ν/(|S|α/4)", "mean hit fraction", "Δ"},
	}

	type fam struct {
		name string
		g    *graph.Graph
	}
	// Graph construction and α estimation keep the single sequential RNG;
	// the per-sample matching work (the expensive part) fans out below.
	fams := []fam{
		{"4-regular", graph.RandomRegular(n, 4, rng)},
		{"gnp", graph.GNP(n, 3*math.Log(float64(n))/float64(n), rng)},
		{"cycle", graph.Cycle(n)},
		{"doublestar", graph.DoubleStar(n)},
	}
	alphas := make([]float64, len(fams))
	for i, f := range fams {
		alphas[i] = f.g.EstimateVertexExpansion(2000, rng)
	}

	type sampleOut struct {
		ratio float64 // ν/(|S|·α/4), +Inf when the bound is vacuous
		hit   float64 // proposal hit fraction, NaN when ν = 0
	}
	sampleGrid, err := runner.MapGrid(subRunnerCfg(o, 0x21), len(fams), samples,
		func(fi, _ int, seed uint64) (sampleOut, error) {
			f := fams[fi]
			srng := prand.New(seed)
			out := sampleOut{ratio: math.Inf(1), hit: math.NaN()}
			size := 1 + srng.Intn(n/2)
			set := srng.Perm(n)[:size]
			bp := f.g.BoundaryBipartite(set)
			nu := bp.MaximumMatching()
			if bound := float64(size) * alphas[fi] / 4; bound > 0 {
				out.ratio = float64(nu) / bound
			}
			if nu > 0 {
				out.hit = proposalHitFraction(bp, srng)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	for fi, f := range fams {
		alpha := alphas[fi]
		delta := f.g.MaxDegree()
		worst := math.Inf(1)
		var hits []float64
		for _, s := range sampleGrid[fi] {
			if s.ratio < worst {
				worst = s.ratio
			}
			if !math.IsNaN(s.hit) {
				hits = append(hits, s.hit)
			}
		}
		meanHit := stats.Summarize(hits).Mean
		t.Rows = append(t.Rows, []string{
			f.name, fmt.Sprintf("%.3f", alpha), fmt.Sprintf("%.2f", worst),
			fmt.Sprintf("%.2f", meanHit), fmtF(float64(delta)),
		})
		if worst < 1 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: %s violated Lemma 7.1 (worst ratio %.2f < 1) — α estimate may be above the true value", f.name, worst))
		}
	}
	t.Notes = append(t.Notes,
		"Lemma 7.1 predicts worst ν/(|S|·α/4) ≥ 1 (α estimates are upper bounds, so measured ratios are conservative)")
	t.Notes = append(t.Notes,
		"Lemma 7.2 predicts a hit fraction ≥ c/√(Δ·logΔ) with constant probability; the measured mean fractions sit far above that floor on all families")
	return t, nil
}

// proposalHitFraction simulates one Lemma 7.2 round on a boundary
// bipartite graph: every left (coalition) node proposes to a uniform
// right neighbor; the result is the fraction of right endpoints of a
// maximum matching that received at least one proposal. (We use all
// right vertices with matches as the matched-endpoint proxy; exact
// matched sets vary, and the lemma's guarantee is up to constants.)
func proposalHitFraction(b *graph.Bipartite, rng *prand.RNG) float64 {
	if len(b.Left) == 0 || len(b.Right) == 0 {
		return 0
	}
	hit := make([]bool, len(b.Right))
	for i := range b.Left {
		adj := b.Adj[i]
		hit[adj[rng.Intn(len(adj))]] = true
	}
	count := 0
	for _, h := range hit {
		if h {
			count++
		}
	}
	m := b.MaximumMatching()
	if m == 0 {
		return 0
	}
	frac := float64(count) / float64(m)
	if frac > 1 {
		frac = 1
	}
	return frac
}
