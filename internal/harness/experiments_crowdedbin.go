package harness

import (
	"fmt"

	"mobilegossip"
	"mobilegossip/internal/core"
	"mobilegossip/internal/stats"
)

func init() {
	register(Experiment{ID: "E20", Title: "CrowdedBin schedule-constant ablation (β, γ)", Exhibit: "§6 schedule constants / Lemma 6.5 tradeoff", Run: runE20})
}

// runE20: CrowdedBin's schedule multiplies k/α by β·γ·log³N-ish constants
// (tags are β·logN bits, bins hold γ·logN blocks). The paper wants β ≥ c+3
// and γ ≥ 3c+9 for N^{-c} failure probability; simulations trade those
// down. This ablation quantifies the trade: round cost grows ≈ β·γ while
// correctness (all runs solve) holds even at the small defaults, because
// the failure events the big constants guard against are rare at these
// sizes.
func runE20(o Options) (*Table, error) {
	n, k := 48, 6
	if o.Quick {
		n, k = 32, 4
	}
	t := &Table{
		ID: "E20",
		Caption: fmt.Sprintf(
			"CrowdedBin constants (n=%d, k=%d, static 4-regular): rounds vs (β, γ)", n, k),
		Columns: []string{"β", "γ", "rounds", "solved"},
	}
	type pt struct{ beta, gamma int }
	pts := []pt{{2, 2}, {2, 4}, {4, 2}, {4, 4}, {3, 9}}
	cfgs := make([]mobilegossip.Config, len(pts))
	for i, p := range pts {
		cfgs[i] = mobilegossip.Config{
			Algorithm: mobilegossip.AlgCrowdedBin, N: n, K: k,
			Topology:   mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
			CrowdedBin: core.CrowdedBinConfig{Beta: p.beta, Gamma: p.gamma},
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var base, largest float64
	for i, p := range pts {
		r := means[i]
		t.Rows = append(t.Rows, []string{
			fmtF(float64(p.beta)), fmtF(float64(p.gamma)), fmtF(r), "yes",
		})
		if i == 0 {
			base = r
		}
		largest = r
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"rounds scale ≈ %.1fx from the simulation defaults (β=2, γ=2) to paper-grade "+
			"constants (β=3, γ=9 for c=0) — pure schedule overhead; every configuration "+
			"solved gossip, so the defaults preserve correctness at simulation sizes while "+
			"the large constants only buy failure-probability exponent",
		stats.Ratio(base, largest)))
	return t, nil
}
