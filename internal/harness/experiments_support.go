package harness

import (
	"fmt"
	"math"

	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/leader"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/rumor"
	"mobilegossip/internal/stats"
	"mobilegossip/internal/tokenset"
)

func init() {
	register(Experiment{ID: "E8", Title: "Transfer(ε) communication and reliability", Exhibit: "§3", Run: runE8})
	register(Experiment{ID: "E9", Title: "SharedBit advertisement bit distribution", Exhibit: "Lemma 5.2", Run: runE9})
	register(Experiment{ID: "E10", Title: "BitConvergence leader election time", Exhibit: "§5.2 substrate / [22]", Run: runE10})
	register(Experiment{ID: "E11", Title: "PPUSH spreading time vs expansion", Exhibit: "Thm 6.1 / [11]", Run: runE11})
	register(Experiment{ID: "E12", Title: "Balls-in-bins crowding probability", Exhibit: "Lemma 6.4", Run: runE12})
	register(Experiment{ID: "E13", Title: "Diameter vs log(n)/α", Exhibit: "Thm 6.2", Run: runE13})
	register(Experiment{ID: "E14", Title: "CrowdedBin estimate stabilization (ablation)", Exhibit: "Lemmas 6.7-6.9", Run: runE14})
}

// runE8: measure Transfer(ε)'s bit cost across N (expect polylog² growth)
// and its failure rate across ε (expect ≤ ε).
func runE8(o Options) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: "Transfer(ε): control bits per call vs N, and failure rate vs ε",
		Columns: []string{"sweep", "x", "value"},
	}
	reps := 200
	if o.Quick {
		reps = 60
	}
	rng := prand.New(o.Seed + 5)
	var xs, ys []float64
	for _, n := range []int{64, 256, 1024, 4096} {
		total := 0
		for i := 0; i < reps; i++ {
			a, b := tokenset.NewSet(n), tokenset.NewSet(n)
			for j := 0; j < 10; j++ {
				tok := 1 + rng.Intn(n)
				a.Add(tok)
				if rng.Bool() {
					b.Add(tok)
				}
			}
			a.Add(1 + rng.Intn(n))
			c := mtm.NewConn(1, 0, 1, prand.New(o.Seed+uint64(i)), prand.New(o.Seed+uint64(i)+1), 1<<30, 1<<30)
			out := eqtest.Transfer(c, a, b, 0.01)
			total += out.Bits
		}
		mean := float64(total) / float64(reps)
		t.Rows = append(t.Rows, []string{"bits vs N", fmtF(float64(n)), fmtF(mean)})
		xs = append(xs, math.Log2(float64(n)))
		ys = append(ys, mean)
	}
	slope, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"bits grow as (log N)^%.1f (paper: O(log²N · log(logN/ε)) ⇒ exponent ≈ 2)", slope))

	for _, eps := range []float64{0.2, 0.05, 0.01} {
		fails := 0
		for i := 0; i < reps; i++ {
			a, b := tokenset.NewSet(256), tokenset.NewSet(256)
			for j := 0; j < 12; j++ {
				tok := 1 + rng.Intn(256)
				a.Add(tok)
				if rng.Bool() {
					b.Add(tok)
				}
			}
			b.Add(1 + rng.Intn(256))
			want, ok := a.SmallestMissingFrom(b)
			if !ok {
				continue
			}
			c := mtm.NewConn(1, 0, 1, prand.New(o.Seed+uint64(7000+i)), prand.New(1), 1<<30, 1<<30)
			out := eqtest.Transfer(c, a, b, eps)
			if !out.Moved || out.Token != want {
				fails++
			}
		}
		rate := float64(fails) / float64(reps)
		t.Rows = append(t.Rows, []string{"failure rate vs ε", fmt.Sprintf("%.2f", eps), fmt.Sprintf("%.3f", rate)})
		if rate > eps+0.05 {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: failure rate %.3f exceeds ε=%.2f", rate, eps))
		}
	}
	t.Notes = append(t.Notes, "failure rate stays at or below ε (paper: Pr[fail] < ε by union bound)")
	return t, nil
}

// runE9: equal sets always advertise equally; unequal sets differ with
// probability exactly 1/2 (Lemma 5.2).
func runE9(o Options) (*Table, error) {
	rounds := 40000
	if o.Quick {
		rounds = 8000
	}
	shared := prand.NewSharedString(o.Seed + 9)
	a, b := tokenset.NewSet(64), tokenset.NewSet(64)
	a.Add(3)
	a.Add(17)
	b.Add(3)
	b.Add(40) // differs from a
	cEq, cDiff := 0, 0
	for r := 1; r <= rounds; r++ {
		pa := 0
		a.ForEach(func(t int) { pa ^= shared.TokenBit(r, t) })
		pa2 := 0
		a.ForEach(func(t int) { pa2 ^= shared.TokenBit(r, t) })
		if pa != pa2 {
			cEq++
		}
		pb := 0
		b.ForEach(func(t int) { pb ^= shared.TokenBit(r, t) })
		if pa != pb {
			cDiff++
		}
	}
	t := &Table{
		ID:      "E9",
		Caption: "Lemma 5.2: advertisement disagreement frequencies",
		Columns: []string{"pair", "P(b_u ≠ b_v) measured", "paper"},
		Rows: [][]string{
			{"equal sets", fmt.Sprintf("%.4f", float64(cEq)/float64(rounds)), "0"},
			{"different sets", fmt.Sprintf("%.4f", float64(cDiff)/float64(rounds)), "0.5"},
		},
	}
	return t, nil
}

// runE10: leader election time across topology families and stability.
func runE10(o Options) (*Table, error) {
	ns := []int{16, 32, 64, 128}
	if o.Quick {
		ns = []int{16, 32, 64}
	}
	t := &Table{
		ID:      "E10",
		Caption: "BitConvergence leader election: rounds to converge",
		Columns: []string{"schedule", "n", "rounds"},
	}
	reps := trials(o)
	run := func(label string, n int, dyn dyngraph.Dynamic, seed uint64) error {
		var xs []float64
		for i := 0; i < reps; i++ {
			ids := make([]int, n)
			pays := make([]uint64, n)
			for u := range ids {
				ids[u] = u + 1
				pays[u] = uint64(u)
			}
			p := leader.New(ids, pays)
			res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: seed + uint64(i), MaxRounds: 1 << 20}).Run()
			if err != nil {
				return err
			}
			if !res.Completed {
				return fmt.Errorf("harness: election unfinished on %s n=%d", label, n)
			}
			xs = append(xs, float64(res.Rounds))
		}
		t.Rows = append(t.Rows, []string{label, fmtF(float64(n)), fmtF(stats.Summarize(xs).Mean)})
		return nil
	}
	for _, n := range ns {
		if err := run("static ring", n, dyngraph.NewStatic(graph.Cycle(n)), o.Seed+1); err != nil {
			return nil, err
		}
		if err := run("static 4-regular", n, dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(o.Seed+3))), o.Seed+2); err != nil {
			return nil, err
		}
		if err := run("rotating ring τ=1", n, dyngraph.RotatingRing(n, 1, o.Seed+4), o.Seed+5); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"paper contract ([22]): Õ((1/α)·Δ^{1/τ}) — ring (α≈4/n) grows ≈ linearly in n, "+
			"expander stays polylog, and τ=1 re-wiring does not break convergence")
	return t, nil
}

// runE11: PPUSH completes in O(log⁴N/α): rounds scale with 1/α across
// families at fixed n.
func runE11(o Options) (*Table, error) {
	n := 64
	reps := trials(o)
	if o.Quick {
		n = 32
	}
	fams := []struct {
		label string
		g     *graph.Graph
	}{
		{"complete (α=1)", graph.Complete(n)},
		{"hypercube", hypercubeFor(n)},
		{"grid", gridFor(n)},
		{"cycle (α≈4/n)", graph.Cycle(n)},
	}
	t := &Table{
		ID:      "E11",
		Caption: fmt.Sprintf("PPUSH rumor spreading (n=%d): rounds vs expansion", n),
		Columns: []string{"graph", "α (est)", "rounds"},
	}
	rng := prand.New(o.Seed + 11)
	for _, f := range fams {
		var xs []float64
		for i := 0; i < reps; i++ {
			p := rumor.New(n, []int{0})
			res, err := mtm.NewEngine(dyngraph.NewStatic(f.g), p,
				mtm.Config{Seed: o.Seed + uint64(100*i), MaxRounds: 1 << 20}).Run()
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("harness: PPUSH unfinished on %s", f.label)
			}
			xs = append(xs, float64(res.Rounds))
		}
		alpha := f.g.EstimateVertexExpansion(60, rng)
		t.Rows = append(t.Rows, []string{f.label, fmt.Sprintf("%.3f", alpha), fmtF(stats.Summarize(xs).Mean)})
	}
	t.Notes = append(t.Notes, "paper (Thm 6.1): O(log⁴N/α) — rounds increase as α decreases")
	return t, nil
}

func hypercubeFor(n int) *graph.Graph {
	d := 0
	for 1<<uint(d) < n {
		d++
	}
	return graph.Hypercube(d)
}

func gridFor(n int) *graph.Graph {
	// Most-square exact factorization so the grid has exactly n vertices.
	rows := 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return graph.Grid(rows, n/rows)
}

// runE12: Monte-Carlo check of Lemma 6.4 — k balls in k′ ≥ k bins rarely
// crowd any bin to γ·logN.
func runE12(o Options) (*Table, error) {
	reps := 4000
	if o.Quick {
		reps = 800
	}
	rng := prand.New(o.Seed + 12)
	t := &Table{
		ID:      "E12",
		Caption: "Lemma 6.4: P(some bin ≥ γ·log₂N balls) for k balls in k bins",
		Columns: []string{"k=N", "γ", "threshold", "measured P", "paper bound"},
	}
	for _, k := range []int{64, 256} {
		logN := math.Log2(float64(k))
		for _, gamma := range []float64{1, 2, 3} {
			threshold := int(gamma * logN)
			crowded := 0
			for rep := 0; rep < reps; rep++ {
				bins := make([]int, k)
				over := false
				for ball := 0; ball < k; ball++ {
					b := rng.Intn(k)
					bins[b]++
					if bins[b] >= threshold {
						over = true
					}
				}
				if over {
					crowded++
				}
			}
			bound := "1/N^(γ/3−2) (γ≥9)"
			t.Rows = append(t.Rows, []string{
				fmtF(float64(k)), fmt.Sprintf("%.0f", gamma), fmtF(float64(threshold)),
				fmt.Sprintf("%.4f", float64(crowded)/float64(reps)), bound})
		}
	}
	t.Notes = append(t.Notes,
		"crowding probability collapses as γ grows — the evidence mechanism CrowdedBin "+
			"uses to reject too-small estimates fires (w.h.p.) only when k̂ < k")
	return t, nil
}

// runE13: Theorem 6.2 — D = O(log n / α) across families.
func runE13(o Options) (*Table, error) {
	n := 64
	if o.Quick {
		n = 32
	}
	rng := prand.New(o.Seed + 13)
	fams := []*graph.Graph{
		graph.Cycle(n), graph.Path(n), graph.Star(n), gridFor(n),
		hypercubeFor(n), graph.Complete(n), graph.DoubleStar(n),
		graph.RandomRegular(n, 4, rng),
	}
	t := &Table{
		ID:      "E13",
		Caption: fmt.Sprintf("Theorem 6.2: diameter vs log(n)/α (n=%d)", n),
		Columns: []string{"graph", "D", "α (est)", "log₂(n)/α", "D·α/log₂(n)"},
	}
	worst := 0.0
	for _, g := range fams {
		d, err := g.Diameter()
		if err != nil {
			return nil, err
		}
		alpha := g.EstimateVertexExpansion(60, rng)
		bound := math.Log2(float64(g.N())) / alpha
		ratio := float64(d) / bound
		if ratio > worst {
			worst = ratio
		}
		t.Rows = append(t.Rows, []string{
			g.Name(), fmtF(float64(d)), fmt.Sprintf("%.3f", alpha),
			fmtF(bound), fmt.Sprintf("%.2f", ratio)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"paper: D = O(log n/α); measured D/(log₂n/α) ≤ %.2f across all families "+
			"(α estimates are upper bounds, making the ratio conservative)", worst))
	return t, nil
}

// runE14: instrument CrowdedBin's estimate trajectory — stabilization is
// fast and upgrades are geometric (Lemmas 6.7-6.9).
func runE14(o Options) (*Table, error) {
	n := 32
	ks := []int{4, 8, 16}
	if o.Quick {
		n = 16
		ks = []int{4, 8}
	}
	t := &Table{
		ID:      "E14",
		Caption: fmt.Sprintf("CrowdedBin ablation (n=%d): estimate stabilization vs completion", n),
		Columns: []string{"k", "rounds to est-stable", "total rounds", "stable fraction", "final k̂=2^est range"},
	}
	for _, k := range ks {
		st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-4)
		if err != nil {
			return nil, err
		}
		p, err := core.NewCrowdedBin(st, core.CrowdedBinConfig{}, prand.New(o.Seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		g := graph.RandomRegular(n, 4, prand.New(o.Seed+99))
		lastChange := 0
		prev := make([]int, n)
		cfg := mtm.Config{Seed: o.Seed + uint64(3*k), MaxRounds: 1 << 22, OnRound: func(r int) {
			for u := 0; u < n; u++ {
				if e := p.Estimate(u); e != prev[u] {
					prev[u] = e
					lastChange = r
				}
			}
		}}
		res, err := mtm.NewEngine(dyngraph.NewStatic(g), p, cfg).Run()
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("harness: CrowdedBin unfinished (k=%d)", k)
		}
		minE, maxE := prev[0], prev[0]
		for _, e := range prev {
			if e < minE {
				minE = e
			}
			if e > maxE {
				maxE = e
			}
		}
		t.Rows = append(t.Rows, []string{
			fmtF(float64(k)), fmtF(float64(lastChange)), fmtF(float64(res.Rounds)),
			fmt.Sprintf("%.2f", float64(lastChange)/float64(res.Rounds)),
			fmt.Sprintf("[%d,%d] (k=%d)", 1<<uint(minE), 1<<uint(maxE), k)})
	}
	t.Notes = append(t.Notes,
		"paper (Lemma 6.9): estimates stabilize within O(D·k_i·log³N) rounds, a fraction of "+
			"the total; final estimates satisfy k ≤ … ≤ 2k up to the γ·logN crowding slack")
	return t, nil
}
