package harness

import (
	"fmt"
	"math"

	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/leader"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/rumor"
	"mobilegossip/internal/runner"
	"mobilegossip/internal/stats"
	"mobilegossip/internal/tokenset"
)

func init() {
	register(Experiment{ID: "E8", Title: "Transfer(ε) communication and reliability", Exhibit: "§3", Run: runE8})
	register(Experiment{ID: "E9", Title: "SharedBit advertisement bit distribution", Exhibit: "Lemma 5.2", Run: runE9})
	register(Experiment{ID: "E10", Title: "BitConvergence leader election time", Exhibit: "§5.2 substrate / [22]", Run: runE10})
	register(Experiment{ID: "E11", Title: "PPUSH spreading time vs expansion", Exhibit: "Thm 6.1 / [11]", Run: runE11})
	register(Experiment{ID: "E12", Title: "Balls-in-bins crowding probability", Exhibit: "Lemma 6.4", Run: runE12})
	register(Experiment{ID: "E13", Title: "Diameter vs log(n)/α", Exhibit: "Thm 6.2", Run: runE13})
	register(Experiment{ID: "E14", Title: "CrowdedBin estimate stabilization (ablation)", Exhibit: "Lemmas 6.7-6.9", Run: runE14})
}

// runE8: measure Transfer(ε)'s bit cost across N (expect polylog² growth)
// and its failure rate across ε (expect ≤ ε). Every (point, rep) cell draws
// its own split RNG stream, so the Monte-Carlo grid parallelizes without
// any shared generator state.
func runE8(o Options) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: "Transfer(ε): control bits per call vs N, and failure rate vs ε",
		Columns: []string{"sweep", "x", "value"},
	}
	reps := 200
	if o.Quick {
		reps = 60
	}

	ns := []int{64, 256, 1024, 4096}
	bitsGrid, err := runner.MapGrid(subRunnerCfg(o, 0x8a), len(ns), reps,
		func(p, _ int, seed uint64) (float64, error) {
			n := ns[p]
			rng := prand.New(seed)
			a, b := tokenset.NewSet(n), tokenset.NewSet(n)
			for j := 0; j < 10; j++ {
				tok := 1 + rng.Intn(n)
				a.Add(tok)
				if rng.Bool() {
					b.Add(tok)
				}
			}
			a.Add(1 + rng.Intn(n))
			c := mtm.NewConn(1, 0, 1, prand.New(rng.Uint64()), prand.New(rng.Uint64()), 1<<30, 1<<30)
			return float64(eqtest.Transfer(c, a, b, 0.01).Bits), nil
		})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for p, n := range ns {
		mean := stats.Summarize(bitsGrid[p]).Mean
		t.Rows = append(t.Rows, []string{"bits vs N", fmtF(float64(n)), fmtF(mean)})
		xs = append(xs, math.Log2(float64(n)))
		ys = append(ys, mean)
	}
	slope, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"bits grow as (log N)^%.1f (paper: O(log²N · log(logN/ε)) ⇒ exponent ≈ 2)", slope))

	epss := []float64{0.2, 0.05, 0.01}
	failGrid, err := runner.MapGrid(subRunnerCfg(o, 0x8b), len(epss), reps,
		func(p, _ int, seed uint64) (float64, error) {
			eps := epss[p]
			rng := prand.New(seed)
			a, b := tokenset.NewSet(256), tokenset.NewSet(256)
			for j := 0; j < 12; j++ {
				tok := 1 + rng.Intn(256)
				a.Add(tok)
				if rng.Bool() {
					b.Add(tok)
				}
			}
			b.Add(1 + rng.Intn(256))
			want, ok := a.SmallestMissingFrom(b)
			if !ok {
				return 0, nil
			}
			c := mtm.NewConn(1, 0, 1, prand.New(rng.Uint64()), prand.New(rng.Uint64()), 1<<30, 1<<30)
			out := eqtest.Transfer(c, a, b, eps)
			if !out.Moved || out.Token != want {
				return 1, nil
			}
			return 0, nil
		})
	if err != nil {
		return nil, err
	}
	for p, eps := range epss {
		fails := 0.0
		for _, f := range failGrid[p] {
			fails += f
		}
		rate := fails / float64(reps)
		t.Rows = append(t.Rows, []string{"failure rate vs ε", fmt.Sprintf("%.2f", eps), fmt.Sprintf("%.3f", rate)})
		if rate > eps+0.05 {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: failure rate %.3f exceeds ε=%.2f", rate, eps))
		}
	}
	t.Notes = append(t.Notes, "failure rate stays at or below ε (paper: Pr[fail] < ε by union bound)")
	return t, nil
}

// runE9: equal sets always advertise equally; unequal sets differ with
// probability exactly 1/2 (Lemma 5.2). A single cheap pass over one shared
// string — inherently sequential, left off the worker pool.
func runE9(o Options) (*Table, error) {
	rounds := 40000
	if o.Quick {
		rounds = 8000
	}
	shared := prand.NewSharedString(o.Seed + 9)
	a, b := tokenset.NewSet(64), tokenset.NewSet(64)
	a.Add(3)
	a.Add(17)
	b.Add(3)
	b.Add(40) // differs from a
	cEq, cDiff := 0, 0
	for r := 1; r <= rounds; r++ {
		pa := 0
		a.ForEach(func(t int) { pa ^= shared.TokenBit(r, t) })
		pa2 := 0
		a.ForEach(func(t int) { pa2 ^= shared.TokenBit(r, t) })
		if pa != pa2 {
			cEq++
		}
		pb := 0
		b.ForEach(func(t int) { pb ^= shared.TokenBit(r, t) })
		if pa != pb {
			cDiff++
		}
	}
	t := &Table{
		ID:      "E9",
		Caption: "Lemma 5.2: advertisement disagreement frequencies",
		Columns: []string{"pair", "P(b_u ≠ b_v) measured", "paper"},
		Rows: [][]string{
			{"equal sets", fmt.Sprintf("%.4f", float64(cEq)/float64(rounds)), "0"},
			{"different sets", fmt.Sprintf("%.4f", float64(cDiff)/float64(rounds)), "0.5"},
		},
	}
	return t, nil
}

// runE10: leader election time across topology families and stability.
// The (schedule × n) grid points and their repetitions all run on the
// worker pool; each cell constructs its own dynamic schedule because Regen
// caches epochs and must not be shared across concurrent engines.
func runE10(o Options) (*Table, error) {
	ns := []int{16, 32, 64, 128}
	if o.Quick {
		ns = []int{16, 32, 64}
	}
	t := &Table{
		ID:      "E10",
		Caption: "BitConvergence leader election: rounds to converge",
		Columns: []string{"schedule", "n", "rounds"},
	}
	type point struct {
		label   string
		n       int
		engSeed uint64
		mk      func(n int) dyngraph.Dynamic
	}
	var points []point
	for _, n := range ns {
		points = append(points,
			point{"static ring", n, o.Seed + 1, func(n int) dyngraph.Dynamic {
				return dyngraph.NewStatic(graph.Cycle(n))
			}},
			point{"static 4-regular", n, o.Seed + 2, func(n int) dyngraph.Dynamic {
				return dyngraph.NewStatic(graph.RandomRegular(n, 4, prand.New(o.Seed+3)))
			}},
			point{"rotating ring τ=1", n, o.Seed + 5, func(n int) dyngraph.Dynamic {
				return dyngraph.RotatingRing(n, 1, o.Seed+4)
			}},
		)
	}
	grid, err := runner.MapGrid(runnerCfg(o), len(points), trials(o),
		func(pi, i int, _ uint64) (float64, error) {
			pt := points[pi]
			n := pt.n
			ids := make([]int, n)
			pays := make([]uint64, n)
			for u := range ids {
				ids[u] = u + 1
				pays[u] = uint64(u)
			}
			p := leader.New(ids, pays)
			res, err := mtm.NewEngine(pt.mk(n), p,
				mtm.Config{Seed: pt.engSeed + uint64(i), MaxRounds: 1 << 20}).Run()
			if err != nil {
				return 0, err
			}
			if !res.Completed {
				return 0, fmt.Errorf("harness: election unfinished on %s n=%d", pt.label, n)
			}
			return float64(res.Rounds), nil
		})
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		t.Rows = append(t.Rows, []string{
			pt.label, fmtF(float64(pt.n)), fmtF(stats.Summarize(grid[pi]).Mean)})
	}
	t.Notes = append(t.Notes,
		"paper contract ([22]): Õ((1/α)·Δ^{1/τ}) — ring (α≈4/n) grows ≈ linearly in n, "+
			"expander stays polylog, and τ=1 re-wiring does not break convergence")
	return t, nil
}

// runE11: PPUSH completes in O(log⁴N/α): rounds scale with 1/α across
// families at fixed n. Repetitions run on the worker pool over the shared
// read-only graphs; the α estimation keeps its single sequential RNG so the
// printed estimates match the sequential path bit-for-bit.
func runE11(o Options) (*Table, error) {
	n := 64
	reps := trials(o)
	if o.Quick {
		n = 32
	}
	fams := []struct {
		label string
		g     *graph.Graph
	}{
		{"complete (α=1)", graph.Complete(n)},
		{"hypercube", hypercubeFor(n)},
		{"grid", gridFor(n)},
		{"cycle (α≈4/n)", graph.Cycle(n)},
	}
	t := &Table{
		ID:      "E11",
		Caption: fmt.Sprintf("PPUSH rumor spreading (n=%d): rounds vs expansion", n),
		Columns: []string{"graph", "α (est)", "rounds"},
	}
	grid, err := runner.MapGrid(runnerCfg(o), len(fams), reps,
		func(fi, i int, _ uint64) (float64, error) {
			f := fams[fi]
			p := rumor.New(n, []int{0})
			res, err := mtm.NewEngine(dyngraph.NewStatic(f.g), p,
				mtm.Config{Seed: o.Seed + uint64(100*i), MaxRounds: 1 << 20}).Run()
			if err != nil {
				return 0, err
			}
			if !res.Completed {
				return 0, fmt.Errorf("harness: PPUSH unfinished on %s", f.label)
			}
			return float64(res.Rounds), nil
		})
	if err != nil {
		return nil, err
	}
	rng := prand.New(o.Seed + 11)
	for fi, f := range fams {
		alpha := f.g.EstimateVertexExpansion(60, rng)
		t.Rows = append(t.Rows, []string{
			f.label, fmt.Sprintf("%.3f", alpha), fmtF(stats.Summarize(grid[fi]).Mean)})
	}
	t.Notes = append(t.Notes, "paper (Thm 6.1): O(log⁴N/α) — rounds increase as α decreases")
	return t, nil
}

func hypercubeFor(n int) *graph.Graph {
	d := 0
	for 1<<uint(d) < n {
		d++
	}
	return graph.Hypercube(d)
}

func gridFor(n int) *graph.Graph {
	// Most-square exact factorization so the grid has exactly n vertices.
	rows := 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return graph.Grid(rows, n/rows)
}

// runE12: Monte-Carlo check of Lemma 6.4 — k balls in k′ ≥ k bins rarely
// crowd any bin to γ·logN. Each (k, γ) point runs its repetition batch on
// the worker pool with a private split RNG stream.
func runE12(o Options) (*Table, error) {
	reps := 4000
	if o.Quick {
		reps = 800
	}
	t := &Table{
		ID:      "E12",
		Caption: "Lemma 6.4: P(some bin ≥ γ·log₂N balls) for k balls in k bins",
		Columns: []string{"k=N", "γ", "threshold", "measured P", "paper bound"},
	}
	type point struct {
		k         int
		gamma     float64
		threshold int
	}
	var points []point
	for _, k := range []int{64, 256} {
		logN := math.Log2(float64(k))
		for _, gamma := range []float64{1, 2, 3} {
			points = append(points, point{k, gamma, int(gamma * logN)})
		}
	}
	crowdGrid, err := runner.Map(subRunnerCfg(o, 0x12), len(points),
		func(j runner.Job) (int, error) {
			pt := points[j.Index]
			rng := prand.New(j.Seed)
			crowded := 0
			for rep := 0; rep < reps; rep++ {
				bins := make([]int, pt.k)
				over := false
				for ball := 0; ball < pt.k; ball++ {
					b := rng.Intn(pt.k)
					bins[b]++
					if bins[b] >= pt.threshold {
						over = true
					}
				}
				if over {
					crowded++
				}
			}
			return crowded, nil
		})
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		bound := "1/N^(γ/3−2) (γ≥9)"
		t.Rows = append(t.Rows, []string{
			fmtF(float64(pt.k)), fmt.Sprintf("%.0f", pt.gamma), fmtF(float64(pt.threshold)),
			fmt.Sprintf("%.4f", float64(crowdGrid[pi])/float64(reps)), bound})
	}
	t.Notes = append(t.Notes,
		"crowding probability collapses as γ grows — the evidence mechanism CrowdedBin "+
			"uses to reject too-small estimates fires (w.h.p.) only when k̂ < k")
	return t, nil
}

// runE13: Theorem 6.2 — D = O(log n / α) across families. Cheap and
// threaded through one RNG for the expansion estimates; left sequential.
func runE13(o Options) (*Table, error) {
	n := 64
	if o.Quick {
		n = 32
	}
	rng := prand.New(o.Seed + 13)
	fams := []*graph.Graph{
		graph.Cycle(n), graph.Path(n), graph.Star(n), gridFor(n),
		hypercubeFor(n), graph.Complete(n), graph.DoubleStar(n),
		graph.RandomRegular(n, 4, rng),
	}
	t := &Table{
		ID:      "E13",
		Caption: fmt.Sprintf("Theorem 6.2: diameter vs log(n)/α (n=%d)", n),
		Columns: []string{"graph", "D", "α (est)", "log₂(n)/α", "D·α/log₂(n)"},
	}
	worst := 0.0
	for _, g := range fams {
		d, err := g.Diameter()
		if err != nil {
			return nil, err
		}
		alpha := g.EstimateVertexExpansion(60, rng)
		bound := math.Log2(float64(g.N())) / alpha
		ratio := float64(d) / bound
		if ratio > worst {
			worst = ratio
		}
		t.Rows = append(t.Rows, []string{
			g.Name(), fmtF(float64(d)), fmt.Sprintf("%.3f", alpha),
			fmtF(bound), fmt.Sprintf("%.2f", ratio)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"paper: D = O(log n/α); measured D/(log₂n/α) ≤ %.2f across all families "+
			"(α estimates are upper bounds, making the ratio conservative)", worst))
	return t, nil
}

// runE14: instrument CrowdedBin's estimate trajectory — stabilization is
// fast and upgrades are geometric (Lemmas 6.7-6.9). The per-k instrumented
// runs are independent and execute on the worker pool.
func runE14(o Options) (*Table, error) {
	n := 32
	ks := []int{4, 8, 16}
	if o.Quick {
		n = 16
		ks = []int{4, 8}
	}
	t := &Table{
		ID:      "E14",
		Caption: fmt.Sprintf("CrowdedBin ablation (n=%d): estimate stabilization vs completion", n),
		Columns: []string{"k", "rounds to est-stable", "total rounds", "stable fraction", "final k̂=2^est range"},
	}
	rows, err := runner.Map(runnerCfg(o), len(ks), func(j runner.Job) ([]string, error) {
		k := ks[j.Index]
		st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-4)
		if err != nil {
			return nil, err
		}
		p, err := core.NewCrowdedBin(st, core.CrowdedBinConfig{}, prand.New(o.Seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		g := graph.RandomRegular(n, 4, prand.New(o.Seed+99))
		lastChange := 0
		prev := make([]int, n)
		cfg := mtm.Config{Seed: o.Seed + uint64(3*k), MaxRounds: 1 << 22, OnRound: func(r int) {
			for u := 0; u < n; u++ {
				if e := p.Estimate(u); e != prev[u] {
					prev[u] = e
					lastChange = r
				}
			}
		}}
		res, err := mtm.NewEngine(dyngraph.NewStatic(g), p, cfg).Run()
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("harness: CrowdedBin unfinished (k=%d)", k)
		}
		minE, maxE := prev[0], prev[0]
		for _, e := range prev {
			if e < minE {
				minE = e
			}
			if e > maxE {
				maxE = e
			}
		}
		return []string{
			fmtF(float64(k)), fmtF(float64(lastChange)), fmtF(float64(res.Rounds)),
			fmt.Sprintf("%.2f", float64(lastChange)/float64(res.Rounds)),
			fmt.Sprintf("[%d,%d] (k=%d)", 1<<uint(minE), 1<<uint(maxE), k)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"paper (Lemma 6.9): estimates stabilize within O(D·k_i·log³N) rounds, a fraction of "+
			"the total; final estimates satisfy k ≤ … ≤ 2k up to the γ·logN crowding slack")
	return t, nil
}
