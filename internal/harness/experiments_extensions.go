package harness

// Extension experiments beyond the paper's exhibits: ablations of design
// choices the paper discusses in prose (tag length beyond one bit, the
// value of stability, engine backends, gradual churn between the paper's
// two extremes). See DESIGN.md §3.

import (
	"fmt"
	"math"
	"time"

	"mobilegossip"
	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/runner"
	"mobilegossip/internal/stats"
)

func init() {
	register(Experiment{ID: "E15", Title: "Tag-length ablation: b = 0,1,2,4,8", Exhibit: "§1 remark: b>1 buys at most log factors", Run: runE15})
	register(Experiment{ID: "E16", Title: "Stability sweep: SimSharedBit vs τ on the double-star", Exhibit: "Thm 5.6 Δ^{1/τ} term", Run: runE16})
	register(Experiment{ID: "E17", Title: "Engine backend ablation: sequential vs concurrent", Exhibit: "model engine (DESIGN.md §5)", Run: runE17})
	register(Experiment{ID: "E18", Title: "Gradual churn sweep: SharedBit vs rewire fraction", Exhibit: "§2 dynamic graphs between τ=∞ and adversarial τ=1", Run: runE18})
}

// runE15: sweeping the tag length b on one fixed workload. The paper's §1
// remark predicts a large jump from b = 0 to b = 1 and at most logarithmic
// gains beyond: with b bits, differing sets produce differing tags with
// probability 1 − 2^{−b}, so the per-round progress constant saturates
// geometrically.
func runE15(o Options) (*Table, error) {
	n, k := 64, 8
	if o.Quick {
		n = 32
	}
	t := &Table{
		ID: "E15",
		Caption: fmt.Sprintf(
			"Tag-length ablation (n=%d, k=%d, τ=1 rotating 4-regular): rounds vs b", n, k),
		Columns: []string{"b", "algorithm", "rounds"},
	}
	topo := mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}
	bs := []int{1, 2, 4, 8}
	cfgs := []mobilegossip.Config{{
		Algorithm: mobilegossip.AlgBlindMatch, N: n, K: k, Topology: topo, Tau: 1,
	}}
	for _, b := range bs {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: n, K: k, Topology: topo, Tau: 1,
			TagBits: b,
		})
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	r0 := means[0]
	t.Rows = append(t.Rows, []string{"0", "blindmatch", fmtF(r0)})

	var r1 float64
	var rLast float64
	for i, b := range bs {
		r := means[1+i]
		name := "sharedbit"
		if b > 1 {
			name = fmt.Sprintf("multibit(b=%d)", b)
		}
		t.Rows = append(t.Rows, []string{fmtF(float64(b)), name, fmtF(r)})
		if b == 1 {
			r1 = r
		}
		rLast = r
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"b=0 → b=1 speedup: %.2fx; b=1 → b=8 speedup: %.2fx — the first bit carries almost all "+
			"the value (paper §1: beyond b=1 at most logarithmic factors)",
		stats.Ratio(r1, r0), stats.Ratio(rLast, r1)))
	return t, nil
}

// runE16: SimSharedBit's additive overhead is Õ((1/α)·Δ^{1/τ}); on the
// rotating double-star (Δ = n/2, worst-case α) the Δ^{1/τ} factor decays
// geometrically as τ grows, so total rounds should fall sharply from τ = 1
// and then flatten.
func runE16(o Options) (*Table, error) {
	n, k := 64, 2
	if o.Quick {
		n = 32
	}
	taus := []int{1, 2, 4, 8}
	t := &Table{
		ID: "E16",
		Caption: fmt.Sprintf(
			"SimSharedBit on the rotating double-star (n=%d, k=%d): rounds vs stability τ", n, k),
		Columns: []string{"τ", "Δ^{1/τ}", "rounds"},
	}
	cfgs := make([]mobilegossip.Config, len(taus))
	for i, tau := range taus {
		cfgs[i] = mobilegossip.Config{
			Algorithm: mobilegossip.AlgSimSharedBit, N: n, K: k,
			Topology: mobilegossip.Topology{Kind: mobilegossip.DoubleStar}, Tau: tau,
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var first, last float64
	for i, tau := range taus {
		r := means[i]
		delta := float64(n / 2)
		t.Rows = append(t.Rows, []string{
			fmtF(float64(tau)), fmtF(math.Pow(delta, 1/float64(tau))), fmtF(r),
		})
		if i == 0 {
			first = r
		}
		last = r
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"the leader-election overhead drops from τ=1 (Δ^{1/τ}=%d) and flattens once Δ^{1/τ} "+
			"nears 1 — total τ=1/τ=%d ratio %.2fx, with the residual rounds dominated by the "+
			"τ-independent O(kn) gossip term (Thm 5.6)",
		n/2, taus[len(taus)-1], stats.Ratio(last, first)))
	return t, nil
}

// runE17: the sequential and goroutine-per-connection backends must
// produce identical executions (connections form a matching, so endpoint
// states are disjoint and the concurrent backend is race-free by
// construction); this experiment verifies equality end-to-end and records
// the relative wall-clock cost.
func runE17(o Options) (*Table, error) {
	n, k := 128, 16
	if o.Quick {
		n, k = 64, 8
	}
	t := &Table{
		ID: "E17",
		Caption: fmt.Sprintf(
			"Engine backends on SharedBit (n=%d, k=%d, τ=1 rotating 4-regular)", n, k),
		Columns: []string{"seed", "rounds (seq)", "rounds (conc)", "identical", "seq ms", "conc ms"},
	}
	type backendRow struct {
		seed          uint64
		seq, conc     mobilegossip.Result
		seqMS, concMS time.Duration
	}
	// The whole point of E17 is the seq-vs-conc wall-clock comparison, so
	// the timed pairs must not contend with each other: force one worker.
	rcfg := runnerCfg(o)
	rcfg.Workers = 1
	rows, err := runner.Map(rcfg, trials(o), func(j runner.Job) (backendRow, error) {
		seed := o.Seed + uint64(31*j.Index)
		base := mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: n, K: k,
			Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
			Tau:      1, Seed: seed,
		}
		seqCfg, concCfg := base, base
		concCfg.Concurrent = true

		t0 := time.Now()
		seq, err := mobilegossip.Run(seqCfg)
		if err != nil {
			return backendRow{}, err
		}
		seqMS := time.Since(t0)

		t1 := time.Now()
		conc, err := mobilegossip.Run(concCfg)
		if err != nil {
			return backendRow{}, err
		}
		concMS := time.Since(t1)

		identical := seq.Rounds == conc.Rounds &&
			seq.Connections == conc.Connections &&
			seq.TokensMoved == conc.TokensMoved
		if !identical {
			return backendRow{}, fmt.Errorf("harness: backends diverged at seed %d: %+v vs %+v", seed, seq, conc)
		}
		return backendRow{seed, seq, conc, seqMS, concMS}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmtF(float64(r.seed)), fmtF(float64(r.seq.Rounds)), fmtF(float64(r.conc.Rounds)),
			"yes",
			fmtF(float64(r.seqMS.Milliseconds())), fmtF(float64(r.concMS.Milliseconds())),
		})
	}
	t.Notes = append(t.Notes,
		"every seed produced bit-identical executions across backends (rounds, connections, tokens)")
	return t, nil
}

// runE18: between the paper's extremes — static (τ=∞) and adversarial
// full re-wiring every round — lies gradual churn. SharedBit's O(kn)
// bound is churn-independent (it never relies on edge persistence), so
// its measured rounds should vary only mildly with the rewire fraction.
func runE18(o Options) (*Table, error) {
	n, k := 64, 8
	if o.Quick {
		n = 48
	}
	t := &Table{
		ID: "E18",
		Caption: fmt.Sprintf(
			"SharedBit under gradual churn (n=%d, k=%d, ring backbone + n chords, τ=1): rounds vs rewire fraction", n, k),
		Columns: []string{"rewire", "rounds"},
	}
	rewires := []float64{0, 0.1, 0.5, 1.0}
	grid, err := runner.MapGrid(runnerCfg(o), len(rewires), trials(o),
		func(p, tr int, _ uint64) (float64, error) {
			rw := rewires[p]
			seed := o.Seed + uint64(7000*tr) + 3
			dyn, err := dyngraph.GradualChurn(n, 1, 4096, rw, seed)
			if err != nil {
				return 0, err
			}
			st, err := core.NewState(n, core.OneTokenPerNode(n, k), 1e-9)
			if err != nil {
				return 0, err
			}
			proto := core.NewSharedBit(st, prand.NewSharedString(prand.Mix64(seed^0x94d0_49bb_1331_11eb)))
			res, err := mtm.NewEngine(dyn, proto, mtm.Config{Seed: prand.Mix64(seed)}).Run()
			if err != nil {
				return 0, err
			}
			if !res.Completed {
				return 0, fmt.Errorf("harness: E18 unsolved at rewire=%.2f", rw)
			}
			return float64(res.Rounds), nil
		})
	if err != nil {
		return nil, err
	}
	var lo, hi float64
	for p, rw := range rewires {
		m := stats.Summarize(grid[p]).Mean
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", rw), fmtF(m)})
		if lo == 0 || m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"rounds vary only %.2fx across the whole churn range — SharedBit's O(kn) analysis "+
			"never relies on edge persistence, so churn rate barely matters (contrast E16, "+
			"where SimSharedBit's leader-election term is churn-sensitive)",
		stats.Ratio(lo, hi)))
	return t, nil
}
