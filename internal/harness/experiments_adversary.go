package harness

// Adversary experiments E25–E27: the §2 adversary made concrete. The paper
// analyzes gossip against a topology controlled by an adversary; PRs 1–4
// only exercised benign schedules (regeneration, physical motion). These
// experiments sweep internal/adversary's strategy catalogue — oblivious
// worst-case schedules, adaptive state-reading cutters under an edge
// budget, catastrophic events — and report the churn the adversary actually
// inflicted next to the gossip cost it caused. See DESIGN.md §10.

import (
	"fmt"

	"mobilegossip"
	"mobilegossip/internal/stats"
)

func init() {
	register(Experiment{ID: "E25", Title: "Gossip vs adversary strategy (oblivious & catastrophic)", Exhibit: "§2 adversarial dynamic graphs; Fig.1 bounds under worst-case schedules", Run: runE25})
	register(Experiment{ID: "E26", Title: "Gossip vs adaptive adversary budget", Exhibit: "§2 adversary strength as a resource; 1/α degradation per cut edge", Run: runE26})
	register(Experiment{ID: "E27", Title: "Adversary over mobility (composed schedules)", Exhibit: "§1 scenarios under jamming; motion vs adversary interaction", Run: runE27})
}

// advTopo is the E25/E26 base: a τ-dynamic 4-regular crowd the adversary
// perturbs each round.
func advTopo(adv mobilegossip.AdversaryKind, budget int) mobilegossip.Topology {
	return mobilegossip.Topology{
		Kind: mobilegossip.RandomRegular, Degree: 4,
		Adversary: adv, AdvBudget: budget, AdvPeriod: 4,
	}
}

// runE25: every strategy against every dynamic-capable algorithm on the
// same base topology, unlimited budget — the worst case each strategy can
// manufacture. SharedBit's O(kn) bound is topology-oblivious and should
// degrade the least; BlindMatch pays its blind dials against every
// bottleneck; SimSharedBit's leader election suffers exactly where the
// adversary concentrates the cuts.
func runE25(o Options) (*Table, error) {
	n, k := 48, 6
	if o.Quick {
		n, k = 32, 4
	}
	advs := append([]mobilegossip.AdversaryKind{mobilegossip.AdvNone},
		mobilegossip.AdversaryKinds()...)
	algs := []mobilegossip.Algorithm{
		mobilegossip.AlgBlindMatch, mobilegossip.AlgSharedBit, mobilegossip.AlgSimSharedBit,
	}
	t := &Table{
		ID: "E25",
		Caption: fmt.Sprintf(
			"Gossip under adversarial topologies (n=%d, k=%d, τ=1, 4-regular base): rounds vs strategy", n, k),
		Columns: []string{"adversary", "churn/round", "blindmatch (b=0)", "sharedbit (b=1)", "simsharedbit"},
	}
	var cfgs []mobilegossip.Config
	for _, adv := range advs {
		for _, alg := range algs {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: k, Topology: advTopo(adv, 0), Tau: 1,
			})
		}
	}
	ms, err := meanStatsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var benign, worst float64
	worstName := ""
	for i, adv := range advs {
		row := ms[3*i : 3*i+3]
		// The adversary rows' runs meter churn through DeltaFor; the benign
		// Regen base is not delta-capable and would report 0, so measure it
		// by generic graph diffing over the same window — every row then
		// means the same thing (total topology change, base rewiring
		// included).
		churn := fmtF(row[1].churnPerRoundMean())
		if adv == mobilegossip.AdvNone {
			c, err := churnFor(advTopo(adv, 0), n, 1, 48, o)
			if err != nil {
				return nil, err
			}
			churn = fmtF(churnPerRound(c))
		}
		t.Rows = append(t.Rows, []string{
			adv.String(), churn,
			fmtF(row[0].Rounds), fmtF(row[1].Rounds), fmtF(row[2].Rounds),
		})
		if adv == mobilegossip.AdvNone {
			benign = row[1].Rounds
		} else if row[1].Rounds > worst {
			worst, worstName = row[1].Rounds, adv.String()
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("the harshest strategy (%s) slows sharedbit %.2fx over the benign τ=1 base — "+
			"but its O(kn) bound holds under every schedule, exactly the paper's claim "+
			"(the analysis never leans on which edges survive)", worstName, stats.Ratio(benign, worst)),
		"churn/round is total topology change, the τ=1 base rewiring included — the damage is "+
			"in *which* edges go, not how many: unlimited cutrich churns nothing (it freezes the "+
			"topology into the relay chain) yet costs the most rounds",
		"blindmatch (b=0) degrades hardest on the bottleneck strategies: every productive "+
			"connection must cross a repaired bridge found by blind dialing")
	return t, nil
}

// runE26: the adaptive strategies as a function of their per-epoch edge
// budget — the adversary's strength as a resource. Budget 0 cuts nothing
// here (expressed as the none row); ∞ is the unlimited extreme.
func runE26(o Options) (*Table, error) {
	n, k := 48, 6
	if o.Quick {
		n, k = 32, 4
	}
	budgets := []int{2, 8, 24, 0} // 0 = unlimited, rendered ∞
	t := &Table{
		ID: "E26",
		Caption: fmt.Sprintf(
			"Adaptive adversaries (n=%d, k=%d, τ=1, 4-regular base): rounds vs per-epoch cut budget", n, k),
		Columns: []string{"budget", "cutrich churn/rd", "cutrich sharedbit", "cutrich simsharedbit", "isolate sharedbit"},
	}
	var cfgs []mobilegossip.Config
	baseline := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: n, K: k, Topology: advTopo(mobilegossip.AdvNone, 0), Tau: 1,
	}
	cfgs = append(cfgs, baseline)
	for _, b := range budgets {
		cfgs = append(cfgs,
			mobilegossip.Config{Algorithm: mobilegossip.AlgSharedBit, N: n, K: k,
				Topology: advTopo(mobilegossip.AdvCutRich, b), Tau: 1},
			mobilegossip.Config{Algorithm: mobilegossip.AlgSimSharedBit, N: n, K: k,
				Topology: advTopo(mobilegossip.AdvCutRich, b), Tau: 1},
			mobilegossip.Config{Algorithm: mobilegossip.AlgSharedBit, N: n, K: k,
				Topology: advTopo(mobilegossip.AdvIsolate, b), Tau: 1},
		)
	}
	ms, err := meanStatsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"0 (none)", "-", fmtF(ms[0].Rounds), "-", fmtF(ms[0].Rounds)})
	for i, b := range budgets {
		row := ms[1+3*i : 1+3*i+3]
		label := fmtF(float64(b))
		if b == 0 {
			label = "∞"
		}
		t.Rows = append(t.Rows, []string{
			label, fmtF(row[0].churnPerRoundMean()),
			fmtF(row[0].Rounds), fmtF(row[1].Rounds), fmtF(row[2].Rounds),
		})
	}
	last := ms[1+3*(len(budgets)-1)]
	t.Notes = append(t.Notes,
		fmt.Sprintf("adversary strength is roughly monotone in budget: unlimited cutrich costs "+
			"sharedbit %.2fx the benign base, and every cut must be re-paid each epoch as "+
			"churn (the budget meters destruction, repair bridges come back for free)",
			stats.Ratio(ms[0].Rounds, last.Rounds)),
		"targeting alone is not enough: isolate's surgical strike on one leader neighborhood "+
			"barely registers against sharedbit — with k tokens replicated everywhere there is "+
			"no single node worth starving, and spreading the budget (cutrich) hurts far more")
	return t, nil
}

// runE27: adversaries composed over physical motion — the strategy perturbs
// the moving crowd's proximity edge list through the same Patcher pipeline.
// Motion mixes neighborhoods (E22's finding) while the adversary re-cuts
// what motion heals; the composition shows whether walking outruns jamming.
func runE27(o Options) (*Table, error) {
	n, k := 72, 6
	if o.Quick {
		n, k = 40, 4
	}
	budget := n / 4
	advs := []mobilegossip.AdversaryKind{
		mobilegossip.AdvNone, mobilegossip.AdvBlackout,
		mobilegossip.AdvCutRich, mobilegossip.AdvPartition,
	}
	t := &Table{
		ID: "E27",
		Caption: fmt.Sprintf(
			"Adversary over random-waypoint motion (n=%d, k=%d, τ=1, budget %d): rounds vs strategy", n, k, budget),
		Columns: []string{"adversary", "churn/round", "sharedbit", "simsharedbit"},
	}
	topoFor := func(adv mobilegossip.AdversaryKind) mobilegossip.Topology {
		return mobilegossip.Topology{
			Kind: mobilegossip.MobileWaypoint, Speed: 0.02,
			Adversary: adv, AdvBudget: budget, AdvPeriod: 4,
		}
	}
	var cfgs []mobilegossip.Config
	for _, adv := range advs {
		for _, alg := range []mobilegossip.Algorithm{mobilegossip.AlgSharedBit, mobilegossip.AlgSimSharedBit} {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: k, Topology: topoFor(adv), Tau: 1,
			})
		}
	}
	ms, err := meanStatsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var benign, worst float64
	for i, adv := range advs {
		row := ms[2*i : 2*i+2]
		t.Rows = append(t.Rows, []string{
			adv.String(), fmtF(row[0].churnPerRoundMean()),
			fmtF(row[0].Rounds), fmtF(row[1].Rounds),
		})
		if adv == mobilegossip.AdvNone {
			benign = row[0].Rounds
		} else if row[0].Rounds > worst {
			worst = row[0].Rounds
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("motion blunts the adversary: against a walking crowd the worst composed "+
			"strategy costs sharedbit %.2fx the unjammed walk — each epoch's cuts are "+
			"partially healed by the next epoch's motion before the adversary re-reads the "+
			"state (E22's mixing, now working against the attacker)", stats.Ratio(benign, worst)),
		"the adversary's cuts ride the same incremental pipeline as the motion deltas: one "+
			"graph.Patcher application per epoch carries both perturbations")
	return t, nil
}
