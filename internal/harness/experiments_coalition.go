package harness

import (
	"fmt"

	"mobilegossip/internal/core"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

func init() {
	register(Experiment{ID: "E19", Title: "Lemma 7.3 coalition existence along a live run", Exhibit: "Lemma 7.3 / Thm 7.4 machinery", Run: runE19})
}

// runE19: Lemma 7.3 claims that in every round of a k = n execution,
// either ε-gossip is already solved or a coalition with size in
// [(ε/2)n, εn] exists. We verify the disjunction at every round of a
// live SharedBit run and record how the coalition evolves: early rounds
// have many singleton classes (case 3), late rounds consolidate into few
// large classes (case 2), and finally case 1 fires.
func runE19(o Options) (*Table, error) {
	n := 48
	if o.Quick {
		n = 32
	}
	const eps = 0.5

	st, err := core.NewState(n, core.OneTokenPerNode(n, n), 1e-9)
	if err != nil {
		return nil, err
	}
	proto := core.NewSharedBit(st, prand.NewSharedString(prand.Mix64(o.Seed^0x1f83_d9ab_fb41_bd6b)))
	dyn := dyngraph.RotatingRegular(n, 4, 1, o.Seed+1)

	type sample struct {
		round, size, classes int
		solved               bool
	}
	var trajectory []sample
	violations := 0
	solvedAt := 0

	engCfg := mtm.Config{
		Seed: prand.Mix64(o.Seed ^ 0x5be0_cd19_137e_2179),
		OnRound: func(r int) {
			c, solved := tokenset.FindCoalition(st.Sets(), eps)
			if solved {
				if solvedAt == 0 {
					solvedAt = r
				}
			} else {
				half := eps * float64(n) / 2
				limit := eps * float64(n)
				if float64(c.Size()) < half || float64(c.Size()) > limit {
					violations++
				}
			}
			trajectory = append(trajectory, sample{r, c.Size(), c.Classes, solved})
		},
	}
	res, err := mtm.NewEngine(dyn, proto, engCfg).Run()
	if err != nil {
		return nil, err
	}
	if !res.Completed {
		return nil, fmt.Errorf("harness: E19 gossip unsolved after %d rounds", res.Rounds)
	}
	if violations > 0 {
		return nil, fmt.Errorf("harness: Lemma 7.3 violated in %d rounds", violations)
	}

	t := &Table{
		ID: "E19",
		Caption: fmt.Sprintf(
			"Lemma 7.3 along a SharedBit run (k=n=%d, ε=%.2f, τ=1 rotating 4-regular)", n, eps),
		Columns: []string{"round", "coalition size", "classes", "ε-solved"},
	}
	// Sample the trajectory at a handful of representative rounds.
	idxs := sampleIndices(len(trajectory), 8)
	for _, i := range idxs {
		s := trajectory[i]
		t.Rows = append(t.Rows, []string{
			fmtF(float64(s.round)), fmtF(float64(s.size)), fmtF(float64(s.classes)),
			fmt.Sprintf("%v", s.solved),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"every one of %d rounds satisfied the Lemma 7.3 disjunction (coalition in [(ε/2)n, εn] = [%.0f, %.0f], or solved)",
		len(trajectory), eps*float64(n)/2, eps*float64(n)))
	if solvedAt > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"ε-gossip (case 1) first held at round %d of %d total — the relaxed objective "+
				"is reached well before full gossip, as Thm 7.4 exploits", solvedAt, res.Rounds))
	}
	return t, nil
}

// sampleIndices picks up to m roughly evenly spaced indices of a slice of
// length n, always including the first and last.
func sampleIndices(n, m int) []int {
	if n <= m {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, m)
	for i := 0; i < m; i++ {
		out = append(out, i*(n-1)/(m-1))
	}
	return out
}
