package harness

import (
	"fmt"
	"math"

	"mobilegossip"
	"mobilegossip/internal/stats"
)

func init() {
	register(Experiment{ID: "E1", Title: "BlindMatch round complexity", Exhibit: "Fig.1 row 1 / Thm 4.1", Run: runE1})
	register(Experiment{ID: "E2", Title: "SharedBit O(kn) scaling", Exhibit: "Fig.1 row 2 / Thm 5.1", Run: runE2})
	register(Experiment{ID: "E3", Title: "b=0 vs b=1 gap on the two-star graph", Exhibit: "Fig.1 rows 1-2 / §1 Ω(Δ²) discussion", Run: runE3})
	register(Experiment{ID: "E4", Title: "SimSharedBit overhead over SharedBit", Exhibit: "Fig.1 row 3 / Thm 5.6", Run: runE4})
	register(Experiment{ID: "E5", Title: "CrowdedBin Õ(k/α) scaling", Exhibit: "Fig.1 row 4 / Thm 6.10", Run: runE5})
	register(Experiment{ID: "E6", Title: "Stability vs tags: CrowdedBin vs SharedBit across α", Exhibit: "Fig.1 rows 2,4 / §6 intro", Run: runE6})
	register(Experiment{ID: "E7", Title: "ε-gossip speedup over full gossip", Exhibit: "Fig.1 row 5 / Thm 7.4", Run: runE7})
}

// trials returns per-point repetition counts.
func trials(o Options) int {
	if o.Quick {
		return 3
	}
	return 7
}

// runE1: BlindMatch on the two-star graph should blow up ≈ Δ² ≈ (n/2)²
// (super-linear exponent in n), while on the ring it is linear in k.
func runE1(o Options) (*Table, error) {
	ns := []int{16, 32, 64, 128}
	if o.Quick {
		ns = []int{16, 32, 64}
	}
	ks := []int{1, 2, 4, 8}
	t := &Table{
		ID:      "E1",
		Caption: "BlindMatch (b=0): rounds vs n on double-star (k=1), vs k on ring (n=32)",
		Columns: []string{"sweep", "x", "rounds"},
	}
	// One grid covers both sweeps: the double-star n-points followed by the
	// ring k-points, all (point × trial) cells in flight together.
	var cfgs []mobilegossip.Config
	for _, n := range ns {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgBlindMatch, N: n, K: 1,
			Topology: mobilegossip.Topology{Kind: mobilegossip.DoubleStar},
		})
	}
	for _, k := range ks {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgBlindMatch, N: 32, K: k,
			Topology: mobilegossip.Topology{Kind: mobilegossip.Cycle},
		})
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}

	var xs, ys []float64
	for i, n := range ns {
		t.Rows = append(t.Rows, []string{"double-star n", fmtF(float64(n)), fmtF(means[i])})
		xs = append(xs, float64(n))
		ys = append(ys, means[i])
	}
	slope, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"double-star exponent in n: measured %.2f (paper: Δ² ≈ (n/2)² term ⇒ expect ≈ 2, "+
			"and ≥ lower-bound shape Ω(Δ²/√α))", slope))

	var kxs, kys []float64
	for i, k := range ks {
		r := means[len(ns)+i]
		t.Rows = append(t.Rows, []string{"ring k", fmtF(float64(k)), fmtF(r)})
		kxs = append(kxs, float64(k))
		kys = append(kys, r)
	}
	kslope, err := stats.LogLogSlope(kxs, kys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"ring exponent in k: measured %.2f (paper: linear in k ⇒ expect ≈ 1, sublinear "+
			"possible while early tokens pipeline)", kslope))
	return t, nil
}

// runE2: SharedBit is O(kn) — linear in k at fixed n (τ=1 rotating ring,
// the harsh fully dynamic regime) and roughly linear in n at fixed k.
func runE2(o Options) (*Table, error) {
	n := 64
	ks := []int{2, 4, 8, 16, 32}
	if o.Quick {
		n = 32
		ks = []int{2, 4, 8, 16}
	}
	ns := []int{16, 32, 64}
	if !o.Quick {
		ns = append(ns, 128)
	}
	t := &Table{
		ID:      "E2",
		Caption: fmt.Sprintf("SharedBit (b=1, τ=1 rotating ring): rounds vs k (n=%d) and vs n (k=4)", n),
		Columns: []string{"sweep", "x", "rounds"},
	}
	var cfgs []mobilegossip.Config
	for _, k := range ks {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: n, K: k,
			Topology: mobilegossip.Topology{Kind: mobilegossip.Cycle}, Tau: 1,
		})
	}
	for _, nn := range ns {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: nn, K: 4,
			Topology: mobilegossip.Topology{Kind: mobilegossip.Cycle}, Tau: 1,
		})
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}

	var xs, ys []float64
	for i, k := range ks {
		t.Rows = append(t.Rows, []string{"k", fmtF(float64(k)), fmtF(means[i])})
		xs = append(xs, float64(k))
		ys = append(ys, means[i])
	}
	kslope, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("exponent in k: measured %.2f (paper O(kn): expect ≈ 1)", kslope))

	xs, ys = nil, nil
	for i, nn := range ns {
		r := means[len(ks)+i]
		t.Rows = append(t.Rows, []string{"n", fmtF(float64(nn)), fmtF(r)})
		xs = append(xs, float64(nn))
		ys = append(ys, r)
	}
	nslope, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("exponent in n: measured %.2f (paper O(kn): expect ≤ 1; "+
		"sub-linear on rings because many edges transfer per round)", nslope))
	return t, nil
}

// runE3: on the two-star graph one advertising bit collapses the Δ² penalty.
func runE3(o Options) (*Table, error) {
	ns := []int{16, 32, 64, 128}
	if o.Quick {
		ns = []int{16, 32, 64}
	}
	t := &Table{
		ID:      "E3",
		Caption: "Two-star head-to-head (k=1): BlindMatch (b=0) vs SharedBit (b=1)",
		Columns: []string{"n", "blindmatch", "sharedbit", "speedup"},
	}
	// Grid layout: the (blindmatch, sharedbit) pair for each n.
	var cfgs []mobilegossip.Config
	for _, n := range ns {
		for _, alg := range []mobilegossip.Algorithm{mobilegossip.AlgBlindMatch, mobilegossip.AlgSharedBit} {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: 1,
				Topology: mobilegossip.Topology{Kind: mobilegossip.DoubleStar},
			})
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	lastRatio := 0.0
	for i, n := range ns {
		bm, sb := means[2*i], means[2*i+1]
		lastRatio = stats.Ratio(sb, bm)
		t.Rows = append(t.Rows, []string{
			fmtF(float64(n)), fmtF(bm), fmtF(sb), fmtF(lastRatio)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"paper: b=1 wins by ≈ Δ² ≈ (n/2)²/Õ(n); measured speedup grows with n "+
			"(×%.0f at the largest size)", lastRatio))
	return t, nil
}

// runE4: SimSharedBit pays only an additive leader-election term, so its
// overhead over SharedBit shrinks as k grows.
func runE4(o Options) (*Table, error) {
	n := 32
	ks := []int{1, 2, 4, 8, 16}
	if o.Quick {
		ks = []int{1, 4, 16}
	}
	t := &Table{
		ID:      "E4",
		Caption: fmt.Sprintf("SimSharedBit vs SharedBit (n=%d, τ=1 rotating 4-regular): additive overhead", n),
		Columns: []string{"k", "sharedbit", "simsharedbit", "ssb − 2·sb (additive part)"},
	}
	var cfgs []mobilegossip.Config
	for _, k := range ks {
		for _, alg := range []mobilegossip.Algorithm{mobilegossip.AlgSharedBit, mobilegossip.AlgSimSharedBit} {
			cfgs = append(cfgs, mobilegossip.Config{
				Algorithm: alg, N: n, K: k,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}, Tau: 1,
			})
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	first, last := 0.0, 0.0
	for i, k := range ks {
		sb, ssb := means[2*i], means[2*i+1]
		// SimSharedBit runs gossip only on odd rounds, so its baseline cost
		// is 2·sb; the remainder is the additive election/convergence term.
		over := ssb - 2*sb
		if i == 0 {
			first = over
		}
		last = over
		t.Rows = append(t.Rows, []string{fmtF(float64(k)), fmtF(sb), fmtF(ssb), fmtF(over)})
	}
	t.Notes = append(t.Notes,
		"paper: SimSharedBit = O(kn) + Õ((1/α)Δ^{1/τ}) — beyond the 2× interleaving of "+
			"election and gossip rounds, the extra cost is additive, not multiplicative in k",
		fmt.Sprintf("measured additive part: %s rounds at smallest k, %s at largest "+
			"(≈ flat in k, as the theorem predicts)", fmtF(first), fmtF(last)))
	return t, nil
}

// runE5: CrowdedBin rounds scale ≈ linearly in k on a constant-α expander.
func runE5(o Options) (*Table, error) {
	n := 64
	ks := []int{2, 4, 8, 16, 32}
	if o.Quick {
		n = 32
		ks = []int{2, 4, 8, 16}
	}
	t := &Table{
		ID:      "E5",
		Caption: fmt.Sprintf("CrowdedBin (b=1, τ=∞, 4-regular expander, n=%d): rounds vs k", n),
		Columns: []string{"k", "rounds"},
	}
	cfgs := make([]mobilegossip.Config, len(ks))
	for i, k := range ks {
		cfgs[i] = mobilegossip.Config{
			Algorithm: mobilegossip.AlgCrowdedBin, N: n, K: k,
			Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for i, k := range ks {
		t.Rows = append(t.Rows, []string{fmtF(float64(k)), fmtF(means[i])})
		xs = append(xs, float64(k))
		ys = append(ys, means[i])
	}
	slope, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"exponent in k: measured %.2f (paper Õ(k/α) at constant α: expect ≈ 1)", slope))
	return t, nil
}

// runE6: stability beats tag bits — CrowdedBin (τ=∞) vs SharedBit across
// graphs of increasing expansion; the paper predicts CrowdedBin matches at
// worst-case α and wins by ≈ n/polylog at constant α.
func runE6(o Options) (*Table, error) {
	n, k := 64, 16
	if o.Quick {
		n, k = 32, 8
	}
	families := []struct {
		label string
		top   mobilegossip.Topology
	}{
		{"cycle (α≈4/n)", mobilegossip.Topology{Kind: mobilegossip.Cycle}},
		{"grid (α≈1/√n)", mobilegossip.Topology{Kind: mobilegossip.Grid}},
		{"4-regular (α≈const)", mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}},
		{"complete (α=1)", mobilegossip.Topology{Kind: mobilegossip.Complete}},
	}
	t := &Table{
		ID:      "E6",
		Caption: fmt.Sprintf("CrowdedBin vs SharedBit on static graphs (n=%d, k=%d)", n, k),
		Columns: []string{"graph", "α (analytic≈)", "sharedbit", "crowdedbin", "crowdedbin × α"},
	}
	alphas := []float64{4 / float64(n), 1 / math.Sqrt(float64(n)), 0.4, 1}
	var cfgs []mobilegossip.Config
	for _, f := range families {
		for _, alg := range []mobilegossip.Algorithm{mobilegossip.AlgSharedBit, mobilegossip.AlgCrowdedBin} {
			cfgs = append(cfgs, mobilegossip.Config{Algorithm: alg, N: n, K: k, Topology: f.top})
		}
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	var cbTimes []float64
	for i, f := range families {
		sb, cb := means[2*i], means[2*i+1]
		cbTimes = append(cbTimes, cb)
		t.Rows = append(t.Rows, []string{
			f.label, fmt.Sprintf("%.3f", alphas[i]), fmtF(sb), fmtF(cb), fmtF(cb * alphas[i])})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("CrowdedBin time tracks 1/α (×%.1f from complete to cycle) while SharedBit "+
			"varies mildly — the Õ(k/α) vs O(kn) shape of Fig.1 rows 4 vs 2",
			stats.Ratio(cbTimes[len(cbTimes)-1], cbTimes[0])),
		"head-to-head at this n, SharedBit's tiny constants still win: the paper's factor-n "+
			"CrowdedBin advantage at constant α is asymptotic, and its log⁶N schedule constants "+
			"dominate until n ≫ polylog(N) — who-wins crossover, not absolute times, is the claim")
	return t, nil
}

// runE7: relaxing to ε-gossip makes SharedBit polynomially faster for
// constant ε on well-connected graphs.
func runE7(o Options) (*Table, error) {
	n := 48
	if o.Quick {
		n = 24
	}
	t := &Table{
		ID:      "E7",
		Caption: fmt.Sprintf("ε-gossip vs full gossip with SharedBit (k=n=%d, 6-regular)", n),
		Columns: []string{"objective", "rounds", "speedup vs full"},
	}
	top := mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 6}
	epss := []float64{0.5, 0.75, 0.9}
	cfgs := []mobilegossip.Config{{
		Algorithm: mobilegossip.AlgSharedBit, N: n, K: n, Topology: top,
	}}
	for _, eps := range epss {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: n, K: n, Epsilon: eps, Topology: top,
		})
	}
	means, err := meanRoundsGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	full := means[0]
	t.Rows = append(t.Rows, []string{"full gossip", fmtF(full), "1"})
	for i, eps := range epss {
		r := means[1+i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("ε=%.2f", eps), fmtF(r), fmtF(stats.Ratio(r, full))})
	}
	t.Notes = append(t.Notes,
		"paper: ε-gossip = O(n√(Δ logΔ)/((1−ε)α)) vs O(n²) full — speedup largest for "+
			"smaller ε, shrinking toward 1 as ε→1 (measured with the sound coalition witness, "+
			"so speedups are conservative)")
	return t, nil
}
