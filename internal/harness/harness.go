// Package harness defines the reproduction experiments E1..E14 (see
// DESIGN.md §3): for every row of the paper's Figure 1 and every supporting
// theorem/lemma, a workload generator, parameter sweep and table printer
// that regenerates the result's shape — scaling exponents, head-to-head
// winners, and crossovers.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's output: a caption, a header row, data rows and
// free-form notes (the "paper vs measured" comparison). The JSON tags give
// benchtable's -json mode its BENCH_*.json row shape.
type Table struct {
	ID      string     `json:"id"`
	Caption string     `json:"caption"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Caption); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV: a header row, then the data rows.
// Caption and notes are emitted as comment lines ("# ...") before and
// after, which spreadsheet importers and plotting scripts can skip.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Caption); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes experiment cost. Quick shrinks sizes/trials so the full
// suite finishes in minutes on one core; the shapes remain visible.
type Options struct {
	Quick bool
	Seed  uint64
	// Workers bounds the sweep engine's parallelism; 0 means GOMAXPROCS.
	// Results are bit-identical at every worker count (see internal/runner).
	Workers int
	// EngineWorkers is the shard-parallel engine worker count applied to
	// every run of every sweep (mobilegossip.Config.EngineWorkers, but with
	// 0 meaning sequential rather than auto: the sweep pool already uses
	// every core, so intra-run auto-parallelism would only oversubscribe).
	// Results are bit-identical at every value.
	EngineWorkers int
	// OnProgress, if set, receives (done, total) after each finished grid
	// cell of the experiment's current sweep.
	OnProgress func(done, total int)
}

// Experiment regenerates one paper exhibit.
type Experiment struct {
	ID      string
	Title   string
	Exhibit string // the paper table/figure/lemma it reproduces
	Run     func(Options) (*Table, error)
}

// registry holds all experiments keyed by lower-case id.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[strings.ToLower(e.ID)] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// e1 < e2 < ... < e10 < ... numeric-aware ordering
		return expOrder(out[i].ID) < expOrder(out[j].ID)
	})
	return out
}

func expOrder(id string) int {
	var v int
	fmt.Sscanf(strings.ToLower(id), "e%d", &v)
	return v
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e9 && v > -1e9:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
