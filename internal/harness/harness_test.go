package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 27 {
		t.Fatalf("registry has %d experiments, want 27 (E1..E14 paper exhibits + E15..E21 ablations + E22..E24 mobility + E25..E27 adversary)", len(all))
	}
	for i, e := range all {
		if want := i + 1; expOrder(e.ID) != want {
			t.Errorf("position %d: got %s", i, e.ID)
		}
		if e.Title == "" || e.Exhibit == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{
		ID: "EX", Caption: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "va,lue"}, {"2", "plain"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# EX: demo\n",
		"a,b\n",
		"\"va,lue\"", // comma-containing cells must be quoted
		"2,plain\n",
		"# note: a note\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV output missing %q:\n%s", want, out)
		}
	}
}

// TestAllExperimentsRunQuick executes every registered experiment at quick
// sizes: the full reproduction suite must stay runnable. Skipped under
// -short (it takes ~15 s).
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Options{Quick: true, Seed: 42})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			if len(tab.Columns) == 0 {
				t.Errorf("%s has no columns", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s: row width %d != %d columns", e.ID, len(row), len(tab.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Errorf("%s render: %v", e.ID, err)
			}
			if err := tab.RenderCSV(&buf); err != nil {
				t.Errorf("%s render CSV: %v", e.ID, err)
			}
		})
	}
}

// TestWorkerCountInvariance is the harness's determinism contract: an
// E1-style Figure-1 sweep renders byte-identical tables at 1 worker (the
// old sequential path) and at high parallelism, for the same seed.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep invariance check skipped in -short mode")
	}
	for _, id := range []string{"E1", "E7"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		var renders []string
		for _, workers := range []int{1, 16} {
			tab, err := e.Run(Options{Quick: true, Seed: 42, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			renders = append(renders, buf.String())
		}
		if renders[0] != renders[1] {
			t.Errorf("%s: table differs between 1 and 16 workers:\n%s\nvs\n%s",
				id, renders[0], renders[1])
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e1"); !ok {
		t.Fatal("lower-case lookup failed")
	}
	if _, ok := Lookup("E14"); !ok {
		t.Fatal("E14 lookup failed")
	}
	if _, ok := Lookup("e99"); ok {
		t.Fatal("bogus id found")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "EX", Caption: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EX", "demo", "a", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFmtF(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.50",
		123.4:  "123",
		-200.7: "-201",
	}
	for in, want := range cases {
		if got := fmtF(in); got != want {
			t.Errorf("fmtF(%v) = %q, want %q", in, got, want)
		}
	}
}

// Fast smoke tests: the cheap experiments run end-to-end in quick mode.
// (E1-E7 are exercised by the benchmark harness and cmd/benchtable; they
// are too slow for the unit suite at full trial counts.)
func TestQuickExperiments(t *testing.T) {
	for _, id := range []string{"E9", "E12", "E13"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tab, err := e.Run(Options{Quick: true, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
}

func TestE8TransferExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := Lookup("E8")
	tab, err := e.Run(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("transfer failure rate exceeded ε: %s", n)
		}
	}
}
