package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/rumor"
)

// CrowdedBin is the §6 algorithm for b = 1 and a stable topology (τ = ∞),
// solving gossip in O((1/α)·k·log⁶N) rounds. Nodes do not know k; they run
// log N parallel instances, instance i testing the estimate k_i = 2^i, by
// round-robin simulation (real round r simulates one round of instance
// ((r−1) mod log N) + 1). Each instance's simulated schedule is
//
//	phase = k_i bins,  bin = γ·logN blocks,  block = ℓ + logN rounds,
//
// with ℓ = β·logN the tag width. Every token owner draws a tag from
// [1, 2^ℓ) and, per instance, throws its token into a uniform bin. A node
// participating in a phase spells out — bit by bit with its advertising
// tag — the h-th smallest tag it knows for the current bin during the first
// ℓ rounds of block h, and runs PPUSH for that tag's token during the last
// logN rounds of the block (informed iff it owns the token). A node
// upgrades its estimate when it sees advertising activity on a higher
// instance, or when one of its current instance's bins crowds (≥ γ·logN
// known tags) — the balls-in-bins evidence (Lemma 6.4) that k_i < k.
// Upgrades are applied only between phases; estimates never decrease.
type CrowdedBin struct {
	st  *State
	cfg CrowdedBinConfig

	logN     int // L: instance count and PPUSH sub-round count
	tagLen   int // ℓ = β·L
	blockLen int // ℓ + L
	binLen   int // γ·L blocks per bin × blockLen
	blocks   int // γ·L

	est     []int // current estimate index (1..logN)
	pending []int // deferred upgrade target (0 = none)

	activeInst []int // committed instance (0 = idle)
	startSim   []int // sim round at which the committed phase started

	// per-round scratch, filled by step() in Tag, consumed by Decide/Exchange
	stepRound []int
	curBit    []uint64
	curKey    []int // active (instance,bin) key; -1 when idle this round
	curQ      []int // position within block
	pushToken []int // token to push this round (0 = uninformed)
	pushTag   []uint64

	// deferred end-of-bin / end-of-phase events (executed next round)
	deferMerge []int // bin key to merge, -1 = none
	deferPhase []bool

	tags    []map[int][]uint64 // known tags per (instance,bin) key, sorted
	stash   []map[int][]uint64 // tags heard this bin, merged at bin end
	hear    []map[int]uint64   // per-neighbor spelled-bit accumulator
	tokenOf []map[uint64]int   // tag -> owned/learned token id
}

// CrowdedBinConfig tunes the schedule constants. The paper's analysis wants
// β ≥ c+3 and γ ≥ 3c+9 for failure probability N^{-c}; the defaults trade
// those constants down (β = 2, γ = 2) for simulation speed, which preserves
// the Õ(k/α) shape measured by the benchmarks.
type CrowdedBinConfig struct {
	Beta  int
	Gamma int
}

func (c *CrowdedBinConfig) setDefaults() {
	if c.Beta <= 0 {
		c.Beta = 2
	}
	if c.Gamma <= 0 {
		c.Gamma = 2
	}
}

var _ mtm.Protocol = (*CrowdedBin)(nil)

// ErrMultiTokenStart reports an assignment giving one node several tokens,
// which §6's per-node tag scheme does not support.
var ErrMultiTokenStart = errors.New("core: CrowdedBin requires at most one starting token per node")

// NewCrowdedBin builds a CrowdedBin protocol over st. rng supplies the
// per-owner tag and bin draws (each node's private initialization
// randomness).
func NewCrowdedBin(st *State, cfg CrowdedBinConfig, rng *prand.RNG) (*CrowdedBin, error) {
	cfg.setDefaults()
	n := st.n
	logN := bits.Len(uint(st.universe - 1))
	if logN < 2 {
		logN = 2
	}
	tagLen := cfg.Beta * logN
	if tagLen > 62 {
		return nil, errors.New("core: CrowdedBin tag width exceeds 62 bits; lower Beta or N")
	}
	p := &CrowdedBin{
		st: st, cfg: cfg,
		logN: logN, tagLen: tagLen,
		blockLen: tagLen + logN,
		blocks:   cfg.Gamma * logN,

		est:     make([]int, n),
		pending: make([]int, n),

		activeInst: make([]int, n),
		startSim:   make([]int, n),

		stepRound: make([]int, n),
		curBit:    make([]uint64, n),
		curKey:    make([]int, n),
		curQ:      make([]int, n),
		pushToken: make([]int, n),
		pushTag:   make([]uint64, n),

		deferMerge: make([]int, n),
		deferPhase: make([]bool, n),

		tags:    make([]map[int][]uint64, n),
		stash:   make([]map[int][]uint64, n),
		hear:    make([]map[int]uint64, n),
		tokenOf: make([]map[uint64]int, n),
	}
	p.binLen = p.blocks * p.blockLen
	for u := 0; u < n; u++ {
		p.est[u] = 1
		p.curKey[u] = -1
		p.deferMerge[u] = -1
		p.tags[u] = make(map[int][]uint64)
		p.stash[u] = make(map[int][]uint64)
		p.hear[u] = make(map[int]uint64)
		p.tokenOf[u] = make(map[uint64]int)
	}
	// Initialization (§6.1): every token owner draws a nonzero ℓ-bit tag and
	// a uniform bin per instance.
	seen := make(map[int]bool, n)
	for u := 0; u < n; u++ {
		toks := st.sets[u].Tokens()
		if len(toks) > 1 {
			return nil, ErrMultiTokenStart
		}
		if len(toks) == 0 {
			continue
		}
		if seen[u] {
			return nil, ErrMultiTokenStart
		}
		seen[u] = true
		tag := uint64(1 + rng.Intn((1<<uint(tagLen))-1))
		p.tokenOf[u][tag] = toks[0]
		for i := 1; i <= logN; i++ {
			bin := rng.Intn(1 << uint(i)) // uniform over k_i bins
			key := p.binKey(i, bin)
			p.tags[u][key] = []uint64{tag}
		}
	}
	return p, nil
}

// State exposes the run state for instrumentation.
func (p *CrowdedBin) State() *State { return p.st }

// Estimate returns node u's current instance estimate index (k̂ = 2^est).
func (p *CrowdedBin) Estimate(u mtm.NodeID) int { return p.est[u] }

// binKey packs (instance, bin) into one map key.
func (p *CrowdedBin) binKey(inst, bin int) int { return inst<<32 | bin }

// phaseLen returns P_i, the simulated rounds per phase of instance i.
func (p *CrowdedBin) phaseLen(inst int) int {
	return (1 << uint(inst)) * p.binLen
}

// decompose maps a real round to (instance, simulated round).
func (p *CrowdedBin) decompose(r int) (inst, sim int) {
	return (r-1)%p.logN + 1, (r-1)/p.logN + 1
}

// globalBin returns the phase-aligned bin index active at simulated round s
// of instance inst (the same for every node, committed or not).
func (p *CrowdedBin) globalBin(inst, sim int) int {
	return ((sim - 1) % p.phaseLen(inst)) / p.binLen
}

// TagBits implements mtm.Protocol (b = 1).
func (p *CrowdedBin) TagBits() int { return 1 }

// Tag implements mtm.Protocol: advance node state and emit this round's bit.
func (p *CrowdedBin) Tag(r int, u mtm.NodeID) uint64 {
	p.step(u, r)
	return p.curBit[u]
}

// step performs node u's per-round state transition for round r. It runs in
// the engine's sequential advertise phase, so cross-node writes are safe —
// but it only ever touches u's state.
func (p *CrowdedBin) step(u mtm.NodeID, r int) {
	if p.stepRound[u] == r {
		return
	}
	p.stepRound[u] = r

	// Finalize last round's deferred events ("once the rounds dedicated to
	// bin j conclude", "complete the phase ... before switching").
	if key := p.deferMerge[u]; key >= 0 {
		p.deferMerge[u] = -1
		p.mergeStash(u, key)
	}
	if p.deferPhase[u] {
		p.deferPhase[u] = false
		p.activeInst[u] = 0
		if p.pending[u] > p.est[u] {
			p.est[u] = p.pending[u]
		}
		p.pending[u] = 0
	}

	inst, sim := p.decompose(r)
	p.curBit[u] = 0
	p.curKey[u] = -1
	p.pushToken[u] = 0

	// Commit to a fresh phase of the node's current instance.
	if p.activeInst[u] == 0 && p.est[u] == inst && (sim-1)%p.phaseLen(inst) == 0 {
		p.activeInst[u] = inst
		p.startSim[u] = sim
	}
	if p.activeInst[u] != inst {
		return // idle during other instances' rounds (watching for activity)
	}
	pos := sim - p.startSim[u]
	pl := p.phaseLen(inst)
	if pos < 0 || pos >= pl {
		return
	}
	bin := pos / p.binLen
	inBin := pos % p.binLen
	block := inBin / p.blockLen
	q := inBin % p.blockLen
	key := p.binKey(inst, bin)
	p.curKey[u] = key
	p.curQ[u] = q

	if q < p.tagLen {
		// Spelling rounds: advertise bit q of the block-th smallest tag.
		if q == 0 {
			clear(p.hear[u])
		}
		known := p.tags[u][key]
		if block < len(known) {
			p.curBit[u] = (known[block] >> uint(p.tagLen-1-q)) & 1
		}
	} else {
		// PPUSH rounds for this block's tag.
		known := p.tags[u][key]
		if block < len(known) {
			if tok, ok := p.tokenOf[u][known[block]]; ok {
				p.curBit[u] = 1
				p.pushToken[u] = tok
				p.pushTag[u] = known[block]
			}
		}
	}

	if inBin == p.binLen-1 {
		p.deferMerge[u] = key
	}
	if pos == pl-1 {
		p.deferPhase[u] = true
	}
}

// Decide implements mtm.Protocol.
func (p *CrowdedBin) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	inst, _ := p.decompose(r)

	// Activity watch: a 1-bit on a higher instance proves someone upgraded.
	if inst > p.est[u] {
		for _, nb := range view {
			if nb.Tag == 1 {
				p.upgradeTo(u, inst)
				break
			}
		}
	}
	if p.curKey[u] < 0 {
		return mtm.Listen()
	}
	if q := p.curQ[u]; q < p.tagLen {
		// Collect neighbors' spelled bits; stash completed nonzero tags.
		h := p.hear[u]
		for _, nb := range view {
			h[nb.ID] = h[nb.ID]<<1 | nb.Tag
		}
		if q == p.tagLen-1 {
			for _, acc := range h {
				if acc != 0 {
					p.stashTag(u, p.curKey[u], acc)
				}
			}
		}
		return mtm.Listen()
	}
	// PPUSH sub-round.
	if p.pushToken[u] != 0 {
		return rumor.DecidePush(view, rng)
	}
	return mtm.Listen()
}

// Exchange implements mtm.Protocol: push the initiator's block token (with
// its tag) to the responder.
func (p *CrowdedBin) Exchange(r int, c *mtm.Conn) {
	u, v := c.Initiator, c.Responder
	tok := p.pushToken[u]
	if tok == 0 {
		return
	}
	tag := p.pushTag[u]
	c.ChargeTokens(1)
	c.ChargeBits(p.tagLen + 2)
	if !p.st.sets[v].Has(tok) {
		p.st.sets[v].Add(tok)
	}
	p.tokenOf[v][tag] = tok
	// Attribute the tag to the globally active bin of this round.
	inst, sim := p.decompose(r)
	p.stashTag(v, p.binKey(inst, p.globalBin(inst, sim)), tag)
	if p.deferMerge[v] < 0 { // merge promptly if no bin end is pending
		p.mergeStash(v, p.binKey(inst, p.globalBin(inst, sim)))
	}
}

// Done implements mtm.Protocol.
func (p *CrowdedBin) Done() bool { return p.st.AllDone() }

// CheckpointTo serializes every node's mutable schedule state. Map-backed
// state is written in sorted key order so checkpoints of identical states
// are byte-identical; the spelled-bit accumulators (hear) are live across
// round boundaries — a block's spelling rounds are logN engine rounds
// apart under the round-robin simulation — and are serialized too. The
// per-round scratch (curBit, curKey, pushToken, …) is dead at a round
// boundary and is regenerated by step on the next Tag call.
func (p *CrowdedBin) CheckpointTo(w *ckpt.Writer) {
	w.Section("crowdedbin")
	n := p.st.n
	w.Int(n)
	w.Ints(p.est)
	w.Ints(p.pending)
	w.Ints(p.activeInst)
	w.Ints(p.startSim)
	w.Ints(p.deferMerge)
	w.Bools(p.deferPhase)
	for u := 0; u < n; u++ {
		writeTagMap(w, p.tags[u])
		writeTagMap(w, p.stash[u])

		hearKeys := make([]int, 0, len(p.hear[u]))
		for k := range p.hear[u] {
			hearKeys = append(hearKeys, k)
		}
		sort.Ints(hearKeys)
		w.U64(uint64(len(hearKeys)))
		for _, k := range hearKeys {
			w.Int(k)
			w.U64(p.hear[u][k])
		}

		tokKeys := make([]uint64, 0, len(p.tokenOf[u]))
		for k := range p.tokenOf[u] {
			tokKeys = append(tokKeys, k)
		}
		sort.Slice(tokKeys, func(i, j int) bool { return tokKeys[i] < tokKeys[j] })
		w.U64(uint64(len(tokKeys)))
		for _, k := range tokKeys {
			w.U64(k)
			w.Int(p.tokenOf[u][k])
		}
	}
}

// RestoreFrom loads a CheckpointTo stream into a protocol freshly built
// from the same configuration, replacing the initialization draws with the
// checkpointed state.
func (p *CrowdedBin) RestoreFrom(r *ckpt.Reader) error {
	r.Section("crowdedbin")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != p.st.n {
		return fmt.Errorf("core: CrowdedBin checkpoint for %d nodes, protocol has %d", n, p.st.n)
	}
	for _, dst := range [][]int{p.est, p.pending, p.activeInst, p.startSim, p.deferMerge} {
		r.IntsInto(dst)
	}
	r.BoolsInto(p.deferPhase)
	if err := r.Err(); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		p.tags[u] = readTagMap(r)
		p.stash[u] = readTagMap(r)

		hearLen := int(r.U64())
		hear := make(map[int]uint64, hearLen)
		for i := 0; i < hearLen && r.Err() == nil; i++ {
			k := r.Int()
			hear[k] = r.U64()
		}
		p.hear[u] = hear

		tokLen := int(r.U64())
		tokenOf := make(map[uint64]int, tokLen)
		for i := 0; i < tokLen && r.Err() == nil; i++ {
			k := r.U64()
			tokenOf[k] = r.Int()
		}
		p.tokenOf[u] = tokenOf

		// The per-round step guard restarts cleanly: any value below the
		// resumed round works, and rounds are 1-based.
		p.stepRound[u] = 0
	}
	return r.Err()
}

// writeTagMap serializes a per-node (instance,bin)→tags map sorted by key.
func writeTagMap(w *ckpt.Writer, m map[int][]uint64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.U64s(m[k])
	}
}

// readTagMap deserializes a writeTagMap stream.
func readTagMap(r *ckpt.Reader) map[int][]uint64 {
	n := int(r.U64())
	m := make(map[int][]uint64, n)
	for i := 0; i < n; i++ {
		k := r.Int()
		m[k] = r.U64s()
		if r.Err() != nil {
			return m
		}
	}
	return m
}

// upgradeTo raises node u's estimate toward target (capped at logN),
// deferring if the node is mid-phase.
func (p *CrowdedBin) upgradeTo(u mtm.NodeID, target int) {
	if target > p.logN {
		target = p.logN
	}
	if target <= p.est[u] {
		return
	}
	if p.activeInst[u] != 0 {
		if target > p.pending[u] {
			p.pending[u] = target
		}
		return
	}
	p.est[u] = target
}

// stashTag records a heard tag for a bin unless already known or stashed.
func (p *CrowdedBin) stashTag(u mtm.NodeID, key int, tag uint64) {
	for _, t := range p.tags[u][key] {
		if t == tag {
			return
		}
	}
	for _, t := range p.stash[u][key] {
		if t == tag {
			return
		}
	}
	p.stash[u][key] = append(p.stash[u][key], tag)
}

// mergeStash folds stashed tags into the bin's known-tag list (sorted,
// capped at γ·logN + 1 so crowding is still detectable) and performs the
// crowded-bin upgrade check.
func (p *CrowdedBin) mergeStash(u mtm.NodeID, key int) {
	pendingTags := p.stash[u][key]
	if len(pendingTags) == 0 {
		return
	}
	delete(p.stash[u], key)
	merged := append(p.tags[u][key], pendingTags...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	// Deduplicate (stashTag prevents most duplicates, but a tag can arrive
	// through both spelling and a push).
	out := merged[:0]
	for i, t := range merged {
		if i == 0 || merged[i-1] != t {
			out = append(out, t)
		}
	}
	if limit := p.blocks + 1; len(out) > limit {
		out = out[:limit]
	}
	p.tags[u][key] = out

	// Crowded-bin evidence: k̂ too small.
	if key>>32 == p.est[u] && len(out) >= p.blocks {
		p.upgradeTo(u, p.est[u]+1)
	}
}
