// Package core implements the paper's primary contribution: the gossip
// algorithms for the mobile telephone model.
//
//   - BlindMatch   — b = 0, τ ≥ 1 (§4):  O((1/α)·k·Δ²·log²n)
//   - SharedBit    — b = 1, τ ≥ 1, shared randomness (§5.1):  O(kn)
//   - SimSharedBit — b = 1, τ ≥ 1, no shared randomness (§5.2):
//     O(kn + (1/α)·Δ^{1/τ}·log⁶n)
//   - CrowdedBin   — b = 1, τ = ∞ (§6):  O((1/α)·k·log⁶n)
//   - ε-gossip     — SharedBit re-analyzed (§7):
//     O(n·√(Δ·logΔ) / ((1−ε)·α))
//
// Every algorithm is an mtm.Protocol driven by mtm.Engine over a
// dyngraph.Dynamic topology schedule.
package core

import (
	"fmt"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/tokenset"
)

// Assignment places the k tokens on their starting nodes: Owners[i] is the
// node (0-based) that starts with token ids Tokens[i] (1-based ids in
// [1, Universe]). No token may start on two nodes; a node may start several.
type Assignment struct {
	Universe int   // N: the token/UID space bound (≥ n and ≥ max token id)
	Tokens   []int // token ids
	Owners   []int // Owners[i] starts with Tokens[i]
}

// Validate checks structural invariants of the assignment for n nodes.
func (a Assignment) Validate(n int) error {
	if len(a.Tokens) != len(a.Owners) {
		return fmt.Errorf("core: %d tokens but %d owners", len(a.Tokens), len(a.Owners))
	}
	if a.Universe < n {
		return fmt.Errorf("core: universe %d smaller than n=%d", a.Universe, n)
	}
	seen := make(map[int]bool, len(a.Tokens))
	for i, t := range a.Tokens {
		if t < 1 || t > a.Universe {
			return fmt.Errorf("core: token id %d outside [1,%d]", t, a.Universe)
		}
		if seen[t] {
			return fmt.Errorf("core: token id %d assigned twice", t)
		}
		seen[t] = true
		if o := a.Owners[i]; o < 0 || o >= n {
			return fmt.Errorf("core: owner %d outside [0,%d)", o, n)
		}
	}
	return nil
}

// OneTokenPerNode returns the canonical assignment used throughout the
// paper's discussion: the first k nodes each start with one token whose id
// is the node's UID (node u has UID u+1); Universe = n.
func OneTokenPerNode(n, k int) Assignment {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	a := Assignment{Universe: n, Tokens: make([]int, k), Owners: make([]int, k)}
	for i := 0; i < k; i++ {
		a.Tokens[i] = i + 1
		a.Owners[i] = i
	}
	return a
}

// State is the per-run gossip state shared by all algorithms: every node's
// token set over [1, N], plus completion tracking. The per-node sets live on
// a single flat tokenset.Arena indexed by NodeID, so a million-node run
// costs one bitset allocation rather than one per node.
type State struct {
	n           int
	universe    int
	k           int
	arena       *tokenset.Arena
	sets        []*tokenset.Set
	transferEps float64
	done        bool
}

// NewState builds run state for n nodes from an assignment. transferEps is
// the per-call failure bound handed to Transfer(ε); the paper uses n^{-c}.
func NewState(n int, a Assignment, transferEps float64) (*State, error) {
	if err := a.Validate(n); err != nil {
		return nil, err
	}
	st := &State{n: n, universe: a.Universe, k: len(a.Tokens), transferEps: transferEps}
	st.arena = tokenset.NewArena(n, a.Universe)
	st.sets = st.arena.Sets()
	for i, t := range a.Tokens {
		st.sets[a.Owners[i]].Add(t)
	}
	st.done = tokenset.AllKnowAll(st.sets, st.k)
	return st, nil
}

// N returns the node count.
func (st *State) N() int { return st.n }

// K returns the token count.
func (st *State) K() int { return st.k }

// Universe returns the token-space bound N.
func (st *State) Universe() int { return st.universe }

// Set returns node u's token set (live, not a copy).
func (st *State) Set(u mtm.NodeID) *tokenset.Set { return st.sets[u] }

// Sets returns the live per-node token sets.
func (st *State) Sets() []*tokenset.Set { return st.sets }

// Potential returns φ(r) = Σ_u (k − |T_u|).
func (st *State) Potential() int { return tokenset.Potential(st.sets, st.k) }

// AllDone reports (and then caches) whether all nodes know all k tokens.
func (st *State) AllDone() bool {
	if st.done {
		return true
	}
	st.done = tokenset.AllKnowAll(st.sets, st.k)
	return st.done
}

// CheckpointTo serializes the mutable run state: every node's token set
// (delta-encoded, O(tokens learned)) and the completion cache.
func (st *State) CheckpointTo(w *ckpt.Writer) {
	w.Section("core.state")
	w.Int(st.n)
	w.Int(st.universe)
	w.Bool(st.done)
	for _, s := range st.sets {
		s.CheckpointTo(w)
	}
}

// RestoreFrom loads a CheckpointTo stream into a State freshly built from
// the same configuration. Sets only grow, so adding the checkpointed
// membership over the initial assignment reproduces the snapshot exactly.
func (st *State) RestoreFrom(r *ckpt.Reader) error {
	r.Section("core.state")
	n, universe := r.Int(), r.Int()
	done := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if n != st.n || universe != st.universe {
		return fmt.Errorf("core: checkpoint for n=%d universe=%d, state has n=%d universe=%d",
			n, universe, st.n, st.universe)
	}
	for _, s := range st.sets {
		if err := s.RestoreFrom(r); err != nil {
			return err
		}
	}
	st.done = done
	return r.Err()
}
