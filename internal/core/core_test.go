package core

import (
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

func TestAssignmentValidate(t *testing.T) {
	cases := []struct {
		name string
		a    Assignment
		n    int
		ok   bool
	}{
		{"ok", OneTokenPerNode(8, 4), 8, true},
		{"lenmismatch", Assignment{Universe: 8, Tokens: []int{1}, Owners: nil}, 8, false},
		{"smalluniverse", Assignment{Universe: 4, Tokens: []int{1}, Owners: []int{0}}, 8, false},
		{"tokenrange", Assignment{Universe: 8, Tokens: []int{9}, Owners: []int{0}}, 8, false},
		{"tokenzero", Assignment{Universe: 8, Tokens: []int{0}, Owners: []int{0}}, 8, false},
		{"dup", Assignment{Universe: 8, Tokens: []int{3, 3}, Owners: []int{0, 1}}, 8, false},
		{"ownerrange", Assignment{Universe: 8, Tokens: []int{1}, Owners: []int{8}}, 8, false},
		{"multipertoken-ok", Assignment{Universe: 8, Tokens: []int{1, 2}, Owners: []int{0, 0}}, 8, true},
	}
	for _, c := range cases {
		err := c.a.Validate(c.n)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestOneTokenPerNode(t *testing.T) {
	a := OneTokenPerNode(10, 4)
	if len(a.Tokens) != 4 || a.Universe != 10 {
		t.Fatalf("a = %+v", a)
	}
	a = OneTokenPerNode(5, 9) // k clamped to n
	if len(a.Tokens) != 5 {
		t.Fatalf("k not clamped: %d", len(a.Tokens))
	}
}

func TestNewStatePotential(t *testing.T) {
	st, err := NewState(6, OneTokenPerNode(6, 3), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// φ(1) = Σ (k − |T_u|) = 3 nodes missing 2 + 3 nodes missing 3 = 15.
	if got := st.Potential(); got != 15 {
		t.Fatalf("φ = %d, want 15", got)
	}
	if st.AllDone() {
		t.Fatal("fresh state done")
	}
	if st.N() != 6 || st.K() != 3 || st.Universe() != 6 {
		t.Fatal("accessors wrong")
	}
}

func TestNewStateRejectsBadAssignment(t *testing.T) {
	if _, err := NewState(4, Assignment{Universe: 4, Tokens: []int{5}, Owners: []int{0}}, 0.01); err == nil {
		t.Fatal("bad assignment accepted")
	}
}

// runGossip drives a protocol to completion and returns the result.
func runGossip(t *testing.T, dyn dyngraph.Dynamic, p mtm.Protocol, seed uint64, maxRounds int) mtm.Result {
	t.Helper()
	res, err := mtm.NewEngine(dyn, p, mtm.Config{Seed: seed, MaxRounds: maxRounds}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

type stateful interface{ State() *State }

// checkSolved asserts full gossip completion.
func checkSolved(t *testing.T, p stateful, res mtm.Result) {
	t.Helper()
	if !res.Completed {
		t.Fatalf("gossip incomplete after %d rounds (φ=%d)", res.Rounds, p.State().Potential())
	}
	if phi := p.State().Potential(); phi != 0 {
		t.Fatalf("completed but φ=%d", phi)
	}
}

func TestBlindMatchSolvesGossipStatic(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(16), graph.Complete(16), graph.Star(16)} {
		st, err := NewState(16, OneTokenPerNode(16, 4), 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		p := NewBlindMatch(st)
		res := runGossip(t, dyngraph.NewStatic(g), p, 1, 1<<20)
		checkSolved(t, p, res)
	}
}

func TestBlindMatchSolvesGossipDynamic(t *testing.T) {
	st, err := NewState(16, OneTokenPerNode(16, 3), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewBlindMatch(st)
	res := runGossip(t, dyngraph.RotatingRing(16, 1, 5), p, 2, 1<<20)
	checkSolved(t, p, res)
}

func TestSharedBitSolvesGossipStatic(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(16), graph.Complete(16), graph.DoubleStar(16)} {
		st, err := NewState(16, OneTokenPerNode(16, 4), 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		p := NewSharedBit(st, prand.NewSharedString(99))
		res := runGossip(t, dyngraph.NewStatic(g), p, 3, 1<<20)
		checkSolved(t, p, res)
	}
}

func TestSharedBitSolvesGossipDynamic(t *testing.T) {
	st, err := NewState(20, OneTokenPerNode(20, 5), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSharedBit(st, prand.NewSharedString(7))
	res := runGossip(t, dyngraph.RandomMatchingChurn(20, 1, 0.2, 9), p, 4, 1<<20)
	checkSolved(t, p, res)
}

func TestSharedBitAdvertisementLemma52(t *testing.T) {
	// Lemma 5.2: equal sets ⇒ equal bits (always); different sets ⇒
	// different bits with probability exactly 1/2 over the shared bits.
	shared := prand.NewSharedString(1)
	stA, _ := NewState(4, Assignment{Universe: 16, Tokens: []int{3, 7}, Owners: []int{0, 1}}, 0.01)
	// Node 0 owns {3}, node 1 owns {7}, nodes 2,3 own {}.
	diff := 0
	const rounds = 20000
	for r := 1; r <= rounds; r++ {
		b0 := advertiseBit(shared, stA.sets[0], r)
		b1 := advertiseBit(shared, stA.sets[1], r)
		b2 := advertiseBit(shared, stA.sets[2], r)
		b3 := advertiseBit(shared, stA.sets[3], r)
		if b2 != 0 || b3 != 0 {
			t.Fatal("empty sets must advertise 0")
		}
		if b0 != b1 {
			diff++
		}
	}
	if diff < rounds/2-600 || diff > rounds/2+600 {
		t.Fatalf("P(b_u≠b_v) = %f, want ≈ 1/2", float64(diff)/rounds)
	}
}

func TestSharedBitPotentialNonIncreasing(t *testing.T) {
	st, err := NewState(12, OneTokenPerNode(12, 4), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSharedBit(st, prand.NewSharedString(2))
	last := st.Potential()
	cfg := mtm.Config{Seed: 5, MaxRounds: 1 << 20, OnRound: func(r int) {
		cur := st.Potential()
		if cur > last {
			t.Fatalf("round %d: φ increased %d -> %d", r, last, cur)
		}
		last = cur
	}}
	if _, err := mtm.NewEngine(dyngraph.NewStatic(graph.Cycle(12)), p, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	if last != 0 {
		t.Fatalf("final φ = %d", last)
	}
}

func TestSimSharedBitSolvesGossip(t *testing.T) {
	for _, tau := range []int{1, 4} {
		st, err := NewState(16, OneTokenPerNode(16, 4), 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		space := prand.NewSeedSpace(16)
		seeds := SampleSeeds(space, 16, prand.New(33))
		p := NewSimSharedBit(st, space, seeds)
		res := runGossip(t, dyngraph.RotatingRegular(16, 3, tau, 11), p, 6, 1<<21)
		checkSolved(t, p, res)
		if !p.Leader().Converged() {
			t.Error("gossip finished but leader never converged (possible, but suspicious on an expander)")
		}
	}
}

func TestSimSharedBitLeaderElectsMin(t *testing.T) {
	st, err := NewState(12, OneTokenPerNode(12, 2), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	space := prand.NewSeedSpace(12)
	seeds := SampleSeeds(space, 12, prand.New(8))
	p := NewSimSharedBit(st, space, seeds)
	res := runGossip(t, dyngraph.NewStatic(graph.Complete(12)), p, 7, 1<<20)
	checkSolved(t, p, res)
	if p.Leader().Converged() && !p.Leader().ElectedMin() {
		t.Error("converged to a non-minimum leader")
	}
	if p.Leader().Converged() {
		// All nodes must share the elected leader's seed payload.
		want := p.Leader().Payload(0)
		for u := 1; u < 12; u++ {
			if p.Leader().Payload(u) != want {
				t.Fatal("payloads diverge after convergence")
			}
		}
	}
}

func TestCrowdedBinSolvesGossipSmall(t *testing.T) {
	st, err := NewState(8, OneTokenPerNode(8, 2), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewCrowdedBin(st, CrowdedBinConfig{}, prand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	res := runGossip(t, dyngraph.NewStatic(graph.Complete(8)), p, 8, 1<<22)
	checkSolved(t, p, res)
}

func TestCrowdedBinSolvesGossipRing(t *testing.T) {
	st, err := NewState(8, OneTokenPerNode(8, 4), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewCrowdedBin(st, CrowdedBinConfig{}, prand.New(22))
	if err != nil {
		t.Fatal(err)
	}
	res := runGossip(t, dyngraph.NewStatic(graph.Cycle(8)), p, 9, 1<<22)
	checkSolved(t, p, res)
}

func TestCrowdedBinEstimatesNeverDecrease(t *testing.T) {
	st, err := NewState(8, OneTokenPerNode(8, 8), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewCrowdedBin(st, CrowdedBinConfig{}, prand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]int, 8)
	for u := range prev {
		prev[u] = p.Estimate(u)
	}
	cfg := mtm.Config{Seed: 10, MaxRounds: 1 << 22, OnRound: func(r int) {
		for u := 0; u < 8; u++ {
			if p.Estimate(u) < prev[u] {
				t.Fatalf("round %d: node %d estimate decreased %d -> %d", r, u, prev[u], p.Estimate(u))
			}
			prev[u] = p.Estimate(u)
		}
	}}
	res, err := mtm.NewEngine(dyngraph.NewStatic(graph.Complete(8)), p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkSolved(t, p, res)
}

func TestCrowdedBinRejectsMultiTokenStart(t *testing.T) {
	st, err := NewState(4, Assignment{Universe: 4, Tokens: []int{1, 2}, Owners: []int{0, 0}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCrowdedBin(st, CrowdedBinConfig{}, prand.New(1)); err != ErrMultiTokenStart {
		t.Fatalf("err = %v, want ErrMultiTokenStart", err)
	}
}

func TestEpsilonGossipSolvesEarlierThanFull(t *testing.T) {
	n := 24
	mk := func() *SharedBit {
		st, err := NewState(n, OneTokenPerNode(n, n), 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		return NewSharedBit(st, prand.NewSharedString(5))
	}
	pFull := mk()
	resFull := runGossip(t, dyngraph.NewStatic(graph.Complete(n)), pFull, 11, 1<<21)
	checkSolved(t, pFull, resFull)

	pEps := NewEpsilonGossip(mk(), 0.5, 1)
	resEps := runGossip(t, dyngraph.NewStatic(graph.Complete(n)), pEps, 11, 1<<21)
	if !resEps.Completed {
		t.Fatalf("ε-gossip incomplete after %d rounds", resEps.Rounds)
	}
	if resEps.Rounds > resFull.Rounds {
		t.Fatalf("ε-gossip (%d rounds) slower than full gossip (%d rounds)",
			resEps.Rounds, resFull.Rounds)
	}
}

func TestGossipDeterministicAcrossBackends(t *testing.T) {
	run := func(concurrent bool) (mtm.Result, int) {
		st, err := NewState(14, OneTokenPerNode(14, 3), 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		p := NewSharedBit(st, prand.NewSharedString(4))
		res, err := mtm.NewEngine(dyngraph.RotatingRing(14, 2, 6), p,
			mtm.Config{Seed: 13, MaxRounds: 1 << 20, Concurrent: concurrent}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, st.Potential()
	}
	seqRes, seqPhi := run(false)
	parRes, parPhi := run(true)
	if seqRes != parRes || seqPhi != parPhi {
		t.Fatalf("backends diverged: %+v/%d vs %+v/%d", seqRes, seqPhi, parRes, parPhi)
	}
}

func TestGossipStaysWithinBudget(t *testing.T) {
	// The model allows O(1) tokens + polylog bits per connection; every
	// algorithm must respect the engine's default budget.
	st1, _ := NewState(16, OneTokenPerNode(16, 8), 1e-4)
	st2, _ := NewState(16, OneTokenPerNode(16, 8), 1e-4)
	protos := []mtm.Protocol{
		NewBlindMatch(st1),
		NewSharedBit(st2, prand.NewSharedString(1)),
	}
	for i, p := range protos {
		if _, err := mtm.NewEngine(dyngraph.NewStatic(graph.Complete(16)), p,
			mtm.Config{Seed: uint64(i), MaxRounds: 1 << 20}).Run(); err != nil {
			t.Errorf("protocol %d violated budget: %v", i, err)
		}
	}
}
