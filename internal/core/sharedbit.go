package core

import (
	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// SharedBit is the §5.1 algorithm for b = 1, τ ≥ 1 under a shared randomness
// source. In round r node u advertises
//
//	b_u(r) = Σ_{t ∈ T_u(r)} t.bit  (mod 2),  b_u(r) = 0 for empty sets,
//
// where t.bit is the shared random bit assigned to token t in round group r
// (Lemma 5.2: nodes with equal sets advertise equal bits; nodes with
// different sets differ with probability exactly 1/2). Nodes advertising 1
// propose to a uniformly chosen neighbor advertising 0 — the uniform choice
// itself drawn from the node's bundle of the shared string, as the paper
// specifies to ease the later elimination of shared randomness — and
// connected pairs run Transfer(ε). Theorem 5.1: O(kn) rounds w.h.p.
type SharedBit struct {
	st     *State
	shared *prand.SharedString
}

var _ mtm.Protocol = (*SharedBit)(nil)

// NewSharedBit returns a SharedBit protocol over st using the given shared
// string (the simulation stand-in for r̂; see DESIGN.md §2.2).
func NewSharedBit(st *State, shared *prand.SharedString) *SharedBit {
	return &SharedBit{st: st, shared: shared}
}

// State exposes the run state for instrumentation.
func (p *SharedBit) State() *State { return p.st }

// TagBits implements mtm.Protocol (b = 1).
func (p *SharedBit) TagBits() int { return 1 }

// advertiseBit computes the SharedBit advertisement for a token set in round
// group r under a given shared string. Shared by SimSharedBit.
func advertiseBit(shared *prand.SharedString, set *tokenset.Set, r int) uint64 {
	if set.Len() == 0 {
		return 0
	}
	parity := 0
	set.ForEach(func(t int) {
		parity ^= shared.TokenBit(r, t)
	})
	return uint64(parity)
}

// Tag implements mtm.Protocol.
func (p *SharedBit) Tag(r int, u mtm.NodeID) uint64 {
	return advertiseBit(p.shared, p.st.sets[u], r)
}

// decideSharedBit is the SharedBit proposal rule: a 1-advertiser proposes to
// a uniformly chosen 0-advertising neighbor, with the uniform index drawn
// from the shared string's bundle for this node's UID (uid = u+1). Shared by
// SimSharedBit.
func decideSharedBit(shared *prand.SharedString, ownBit uint64, r int, u mtm.NodeID, view []mtm.Neighbor) mtm.Action {
	if ownBit == 0 {
		return mtm.Listen()
	}
	zeros := 0
	for _, nb := range view {
		if nb.Tag == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		return mtm.Listen()
	}
	pick := shared.UniformIndex(r, u+1, zeros)
	for _, nb := range view {
		if nb.Tag == 0 {
			if pick == 0 {
				return mtm.Propose(nb.ID)
			}
			pick--
		}
	}
	return mtm.Listen() // unreachable
}

// Decide implements mtm.Protocol.
func (p *SharedBit) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, _ *prand.RNG) mtm.Action {
	return decideSharedBit(p.shared, advertiseBit(p.shared, p.st.sets[u], r), r, u, view)
}

// Exchange implements mtm.Protocol: run Transfer(ε).
func (p *SharedBit) Exchange(_ int, c *mtm.Conn) {
	eqtest.Transfer(c, p.st.sets[c.Initiator], p.st.sets[c.Responder], p.st.transferEps)
}

// Done implements mtm.Protocol.
func (p *SharedBit) Done() bool { return p.st.AllDone() }
