package core

import (
	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// BlindMatch is the §4 algorithm for the hardest regime b = 0, τ ≥ 1: in
// each round every node flips a fair coin to be a sender or a receiver;
// senders propose to a uniformly random neighbor; connected pairs run the
// Transfer(ε) subroutine, which moves the smallest token known by exactly
// one endpoint. Theorem 4.1: solves gossip in O((1/α)·k·Δ²·log²N) rounds
// w.h.p., and the Δ² cannot be avoided by blind strategies (the two-star
// lower bound of [22]).
type BlindMatch struct {
	st *State
}

var _ mtm.Protocol = (*BlindMatch)(nil)

// NewBlindMatch returns a BlindMatch protocol over st.
func NewBlindMatch(st *State) *BlindMatch { return &BlindMatch{st: st} }

// State exposes the run state for instrumentation.
func (p *BlindMatch) State() *State { return p.st }

// TagBits implements mtm.Protocol: BlindMatch advertises nothing.
func (p *BlindMatch) TagBits() int { return 0 }

// Tag implements mtm.Protocol.
func (p *BlindMatch) Tag(int, mtm.NodeID) uint64 { return 0 }

// Decide implements mtm.Protocol: fair coin, then a blind uniform proposal.
func (p *BlindMatch) Decide(_ int, _ mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	if rng.Bool() || len(view) == 0 {
		return mtm.Listen()
	}
	return mtm.Propose(view[rng.Intn(len(view))].ID)
}

// Exchange implements mtm.Protocol: run Transfer(ε) between the endpoints.
func (p *BlindMatch) Exchange(_ int, c *mtm.Conn) {
	eqtest.Transfer(c, p.st.sets[c.Initiator], p.st.sets[c.Responder], p.st.transferEps)
}

// Done implements mtm.Protocol.
func (p *BlindMatch) Done() bool { return p.st.AllDone() }
