package core

import (
	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// SetProtocol is a gossip protocol whose per-node progress is tracked
// through a shared *State — every algorithm in this package implements it.
// EpsilonGossip can relax the termination objective of any SetProtocol.
type SetProtocol interface {
	mtm.Protocol
	State() *State
}

// EpsilonGossip wraps a gossip protocol with the relaxed §7 objective:
// assuming k = n (every node starts with exactly one token), the run stops
// once some coalition S with |S| ≥ ⌈εn⌉ exists in which every pair of
// nodes mutually knows each other's tokens. Theorem 7.4: SharedBit reaches
// this state in O(n·√(Δ·logΔ)/((1−ε)·α)) rounds — up to a sublinear
// polynomial factor faster than the O(n²) it needs for full gossip.
// Corollary 7.5 extends the same bound (plus the additive leader-election
// term) to SimSharedBit, which this wrapper supports through the
// SetProtocol interface.
//
// Detection uses the sound witness described in DESIGN.md §5 (a
// generalization of Lemma 7.3 case 1); it never reports a false positive,
// so measured ε-gossip times are upper bounds on the true solution time.
type EpsilonGossip struct {
	inner SetProtocol
	eps   float64
	own   []int // own[u] = node u's starting token id
	// checkEvery throttles the O(nk) detector; 1 = every round.
	checkEvery int
	solved     bool
	rounds     int
}

var _ mtm.Protocol = (*EpsilonGossip)(nil)

// NewEpsilonGossip wraps a SharedBit protocol whose state was built from
// OneTokenPerNode(n, n). eps is the required fraction; checkEvery throttles
// solution detection (≥ 1).
func NewEpsilonGossip(inner *SharedBit, eps float64, checkEvery int) *EpsilonGossip {
	return NewEpsilonOver(inner, eps, checkEvery)
}

// NewEpsilonOver wraps any SetProtocol (SharedBit per Theorem 7.4,
// SimSharedBit per Corollary 7.5) with the ε-gossip objective. The
// protocol's state must have been built from OneTokenPerNode(n, n).
func NewEpsilonOver(inner SetProtocol, eps float64, checkEvery int) *EpsilonGossip {
	st := inner.State()
	own := make([]int, st.n)
	for u := range own {
		own[u] = u + 1
	}
	if checkEvery < 1 {
		checkEvery = 1
	}
	return &EpsilonGossip{inner: inner, eps: eps, own: own, checkEvery: checkEvery}
}

// State exposes the run state for instrumentation.
func (p *EpsilonGossip) State() *State { return p.inner.State() }

// Inner exposes the wrapped protocol (for checkpointing its own state).
func (p *EpsilonGossip) Inner() SetProtocol { return p.inner }

// CheckpointTo serializes the wrapper's mutable state (the solved latch
// and the Done-call counter that phases the throttled detector).
func (p *EpsilonGossip) CheckpointTo(w *ckpt.Writer) {
	w.Section("epsilon")
	w.Bool(p.solved)
	w.Int(p.rounds)
}

// RestoreFrom loads a CheckpointTo stream.
func (p *EpsilonGossip) RestoreFrom(r *ckpt.Reader) error {
	r.Section("epsilon")
	p.solved = r.Bool()
	p.rounds = r.Int()
	return r.Err()
}

// TagBits implements mtm.Protocol.
func (p *EpsilonGossip) TagBits() int { return p.inner.TagBits() }

// Tag implements mtm.Protocol.
func (p *EpsilonGossip) Tag(r int, u mtm.NodeID) uint64 { return p.inner.Tag(r, u) }

// Decide implements mtm.Protocol.
func (p *EpsilonGossip) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	return p.inner.Decide(r, u, view, rng)
}

// Exchange implements mtm.Protocol.
func (p *EpsilonGossip) Exchange(r int, c *mtm.Conn) { p.inner.Exchange(r, c) }

// Done implements mtm.Protocol: the relaxed objective.
func (p *EpsilonGossip) Done() bool {
	if p.solved {
		return true
	}
	p.rounds++
	if p.rounds%p.checkEvery != 0 && !p.inner.State().done {
		return false
	}
	st := p.inner.State()
	if st.AllDone() || tokenset.EpsilonSolved(st.sets, p.own, p.eps) {
		p.solved = true
	}
	return p.solved
}
