package core

// Additional CrowdedBin coverage: schedule/config edge cases beyond the
// basic solve tests in core_test.go.

import (
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

func runCrowdedBin(t *testing.T, n, k int, cfg CrowdedBinConfig, g *graph.Graph, seed uint64) mtm.Result {
	t.Helper()
	st := mustState(t, n, OneTokenPerNode(n, k))
	cb, err := NewCrowdedBin(st, cfg, prand.New(prand.Mix64(seed)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mtm.NewEngine(dyngraph.NewStatic(g), cb, mtm.Config{Seed: seed + 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("CrowdedBin unsolved after %d rounds (n=%d, k=%d, cfg=%+v)", res.Rounds, n, k, cfg)
	}
	if got := st.Potential(); got != 0 {
		t.Fatalf("final potential %d, want 0", got)
	}
	return res
}

func TestCrowdedBinRejectsOversizedTagWidth(t *testing.T) {
	// Beta*logN > 62 must be rejected up front: tags are spelled through a
	// uint64 accumulator.
	st := mustState(t, 1024, OneTokenPerNode(1024, 4))
	if _, err := NewCrowdedBin(st, CrowdedBinConfig{Beta: 7, Gamma: 2}, prand.New(1)); err == nil {
		t.Error("Beta=7 at N=1024 (70 tag bits) should be rejected")
	}
}

func TestCrowdedBinSolvesWithKEqualsN(t *testing.T) {
	const n = 12
	g := graph.RandomRegular(n, 4, prand.New(5))
	runCrowdedBin(t, n, n, CrowdedBinConfig{}, g, 31)
}

func TestCrowdedBinSolvesOnNonPowerOfTwoN(t *testing.T) {
	// The schedule math uses ⌈log₂⌉ sizes; N = 13 stresses the rounding.
	const n = 13
	g := graph.GNP(n, 0.5, prand.New(9))
	runCrowdedBin(t, n, 5, CrowdedBinConfig{}, g, 17)
}

func TestCrowdedBinSolvesWithSingleToken(t *testing.T) {
	// k = 1 reduces to rumor spreading through instance 1.
	const n = 16
	g := graph.Cycle(n)
	runCrowdedBin(t, n, 1, CrowdedBinConfig{}, g, 3)
}

func TestCrowdedBinLargerConstantsStillSolve(t *testing.T) {
	const n, k = 16, 4
	// Seed note: at N = 16 and β = 2 the tag space has only N^β = 256
	// values, so ≈ 2% of seeds produce a tag collision — the exact
	// "not good configuration" failure mode Lemma 6.5 bounds, which stalls
	// the run. Seed 8 draws collision-free tags for both configs.
	g := graph.RandomRegular(n, 4, prand.New(2))
	small := runCrowdedBin(t, n, k, CrowdedBinConfig{Beta: 2, Gamma: 2}, g, 8)
	big := runCrowdedBin(t, n, k, CrowdedBinConfig{Beta: 3, Gamma: 4}, g, 8)
	if big.Rounds <= small.Rounds {
		t.Errorf("larger schedule constants should cost more rounds: β=2,γ=2 → %d; β=3,γ=4 → %d",
			small.Rounds, big.Rounds)
	}
}

func TestCrowdedBinStaysWithinBudget(t *testing.T) {
	// The engine errors on budget violations; a clean completion plus the
	// metered totals proves CrowdedBin's advertising-heavy schedule still
	// respects the per-connection bounds.
	const n, k = 16, 4
	g := graph.RandomRegular(n, 4, prand.New(4))
	res := runCrowdedBin(t, n, k, CrowdedBinConfig{}, g, 23)
	if res.Connections == 0 || res.TokensMoved == 0 {
		t.Errorf("expected token movement through connections, got %+v", res)
	}
	if res.TokensMoved < int64(k*(n-1)) {
		// Every one of the k tokens must reach n−1 new nodes; CrowdedBin
		// moves tokens only via PPUSH connections, one per connection.
		t.Errorf("moved %d tokens; at least %d transfers required", res.TokensMoved, k*(n-1))
	}
}

func TestCrowdedBinDeterministicAcrossBackends(t *testing.T) {
	const n, k = 16, 4
	run := func(concurrent bool) mtm.Result {
		st := mustState(t, n, OneTokenPerNode(n, k))
		cb, err := NewCrowdedBin(st, CrowdedBinConfig{}, prand.New(8))
		if err != nil {
			t.Fatal(err)
		}
		g := graph.RandomRegular(n, 4, prand.New(6))
		res, err := mtm.NewEngine(dyngraph.NewStatic(g), cb, mtm.Config{
			Seed: 13, Concurrent: concurrent,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("unsolved after %d rounds (concurrent=%v)", res.Rounds, concurrent)
		}
		return res
	}
	if seq, conc := run(false), run(true); seq != conc {
		t.Errorf("backends diverged:\n  seq:  %+v\n  conc: %+v", seq, conc)
	}
}
