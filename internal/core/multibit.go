package core

import (
	"fmt"

	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// MultiBit generalizes the SharedBit advertisement to tag length b ≥ 1.
//
// Each token receives b shared random bits per round group instead of one,
// and a node advertises the b-wise XOR over its token set:
//
//	tag_u(r)[j] = Σ_{t ∈ T_u(r)} t.bits[j]  (mod 2),  j = 0..b−1,
//
// so nodes with equal sets always advertise equal tags, and nodes with
// different sets advertise different tags with probability exactly
// 1 − 2^{−b} (the b-bit analogue of Lemma 5.2). The proposal rule
// generalizes SharedBit's 1-proposes-to-0: a node proposes to a uniformly
// chosen neighbor whose tag is numerically *smaller* than its own (for
// b = 1 this is exactly SharedBit), so every formed connection joins two
// nodes with different tags — hence, different sets — and Transfer(ε)
// makes progress.
//
// The paper's §1 remark — "for most of our solutions, increasing b beyond
// 1 only improves performance by at most logarithmic factors" — is what
// this variant exists to measure (experiment E15): the per-round good
// probability rises from ≥ 1/4 toward ≥ 1/2 as b grows, a bounded constant
// factor, while the O(kn) shape is unchanged.
type MultiBit struct {
	st     *State
	shared *prand.SharedString
	b      int
}

var _ mtm.Protocol = (*MultiBit)(nil)

// NewMultiBit returns the b-bit generalization of SharedBit over st.
// b must be in [1, 64]; b = 1 behaves exactly like NewSharedBit.
func NewMultiBit(st *State, shared *prand.SharedString, b int) (*MultiBit, error) {
	if b < 1 || b > 64 {
		return nil, fmt.Errorf("core: multi-bit tag length %d outside [1, 64]", b)
	}
	return &MultiBit{st: st, shared: shared, b: b}, nil
}

// State exposes the run state for instrumentation.
func (p *MultiBit) State() *State { return p.st }

// TagBits implements mtm.Protocol.
func (p *MultiBit) TagBits() int { return p.b }

// advertiseBits computes the b-bit advertisement for a token set in round
// group r: the bitwise XOR of the tokens' b-bit shared bundles.
func advertiseBits(shared *prand.SharedString, set *tokenset.Set, r, b int) uint64 {
	if set.Len() == 0 {
		return 0
	}
	var tag uint64
	set.ForEach(func(t int) {
		tag ^= shared.TokenBits(r, t, b)
	})
	return tag
}

// Tag implements mtm.Protocol.
func (p *MultiBit) Tag(r int, u mtm.NodeID) uint64 {
	return advertiseBits(p.shared, p.st.sets[u], r, p.b)
}

// Decide implements mtm.Protocol: propose to a uniformly chosen neighbor
// advertising a numerically smaller tag; listen when no such neighbor
// exists. The uniform index is drawn from the shared string (as in
// SharedBit) so the whole execution remains a function of the shared
// randomness.
func (p *MultiBit) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, _ *prand.RNG) mtm.Action {
	own := advertiseBits(p.shared, p.st.sets[u], r, p.b)
	smaller := 0
	for _, nb := range view {
		if nb.Tag < own {
			smaller++
		}
	}
	if smaller == 0 {
		return mtm.Listen()
	}
	pick := p.shared.UniformIndex(r, u+1, smaller)
	for _, nb := range view {
		if nb.Tag < own {
			if pick == 0 {
				return mtm.Propose(nb.ID)
			}
			pick--
		}
	}
	return mtm.Listen() // unreachable
}

// Exchange implements mtm.Protocol: run Transfer(ε).
func (p *MultiBit) Exchange(_ int, c *mtm.Conn) {
	eqtest.Transfer(c, p.st.sets[c.Initiator], p.st.sets[c.Responder], p.st.transferEps)
}

// Done implements mtm.Protocol.
func (p *MultiBit) Done() bool { return p.st.AllDone() }
