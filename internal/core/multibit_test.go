package core

import (
	"testing"

	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
	"mobilegossip/internal/tokenset"
)

// mustState builds run state with a tight transfer error bound, failing
// the test on invalid assignments.
func mustState(t *testing.T, n int, a Assignment) *State {
	t.Helper()
	st, err := NewState(n, a, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewMultiBitValidatesWidth(t *testing.T) {
	st := mustState(t, 4, OneTokenPerNode(4, 2))
	shared := prand.NewSharedString(1)
	for _, b := range []int{0, -1, 65} {
		if _, err := NewMultiBit(st, shared, b); err == nil {
			t.Errorf("NewMultiBit(b=%d) should fail", b)
		}
	}
	for _, b := range []int{1, 2, 64} {
		if _, err := NewMultiBit(st, shared, b); err != nil {
			t.Errorf("NewMultiBit(b=%d): %v", b, err)
		}
	}
}

// TestMultiBitLemma52Analog: with b bits, equal sets always advertise equal
// tags, and different sets advertise different tags with probability
// 1 − 2^{−b}.
func TestMultiBitLemma52Analog(t *testing.T) {
	const universe = 64
	const groups = 4000
	shared := prand.NewSharedString(99)

	a := tokenset.NewSet(universe)
	b := tokenset.NewSet(universe)
	for _, tok := range []int{3, 17, 40} {
		a.Add(tok)
		b.Add(tok)
	}
	b.Add(55) // one-element difference

	for _, width := range []int{1, 2, 4, 8} {
		equalDiffer, differDiffer := 0, 0
		for g := 1; g <= groups; g++ {
			ta := advertiseBits(shared, a, g, width)
			tb := advertiseBits(shared, b, g, width)
			taa := advertiseBits(shared, a, g, width)
			if ta != taa {
				equalDiffer++
			}
			if ta != tb {
				differDiffer++
			}
		}
		if equalDiffer != 0 {
			t.Errorf("b=%d: equal sets disagreed %d times", width, equalDiffer)
		}
		want := 1 - 1/float64(int64(1)<<uint(width))
		got := float64(differDiffer) / groups
		if diff := got - want; diff < -0.05 || diff > 0.05 {
			t.Errorf("b=%d: P(tags differ | sets differ) = %.3f, want ≈ %.3f", width, got, want)
		}
	}
}

// TestMultiBitWidth1MatchesSharedBit: for b = 1 the generalized rule is
// exactly SharedBit — identical tags and identical actions in every
// reachable configuration, hence identical executions.
func TestMultiBitWidth1MatchesSharedBit(t *testing.T) {
	const n, k = 24, 5
	runOnce := func(multi bool) mtm.Result {
		st := mustState(t, n, OneTokenPerNode(n, k))
		shared := prand.NewSharedString(7)
		var proto mtm.Protocol = NewSharedBit(st, shared)
		if multi {
			mb, err := NewMultiBit(st, shared, 1)
			if err != nil {
				t.Fatal(err)
			}
			proto = mb
		}
		dyn := dyngraph.RotatingRegular(n, 4, 1, 11)
		res, err := mtm.NewEngine(dyn, proto, mtm.Config{Seed: 13}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sb := runOnce(false)
	mb := runOnce(true)
	if sb != mb {
		t.Errorf("b=1 multi-bit diverged from SharedBit:\n  sharedbit: %+v\n  multibit:  %+v", sb, mb)
	}
}

func TestMultiBitSolvesGossip(t *testing.T) {
	for _, width := range []int{2, 4, 8} {
		st := mustState(t, 20, OneTokenPerNode(20, 6))
		mb, err := NewMultiBit(st, prand.NewSharedString(3), width)
		if err != nil {
			t.Fatal(err)
		}
		dyn := dyngraph.RotatingRegular(20, 4, 1, 5)
		res, err := mtm.NewEngine(dyn, mb, mtm.Config{Seed: 9}).Run()
		if err != nil {
			t.Fatalf("b=%d: %v", width, err)
		}
		if !res.Completed {
			t.Errorf("b=%d: gossip unsolved after %d rounds", width, res.Rounds)
		}
		if got := st.Potential(); got != 0 {
			t.Errorf("b=%d: final potential %d, want 0", width, got)
		}
	}
}

// TestMultiBitConnectionsAreProductive: every accepted connection joins two
// nodes with different tags, hence different sets — the invariant the
// proposal rule exists to guarantee.
func TestMultiBitConnectionsAreProductive(t *testing.T) {
	const n, k, width = 16, 8, 4
	st := mustState(t, n, OneTokenPerNode(n, k))
	shared := prand.NewSharedString(21)
	mb, err := NewMultiBit(st, shared, width)
	if err != nil {
		t.Fatal(err)
	}
	checker := &productivityChecker{t: t, inner: mb, st: st}
	g := graph.RandomRegular(n, 4, prand.New(2))
	res, err := mtm.NewEngine(dyngraph.NewStatic(g), checker, mtm.Config{Seed: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("unsolved after %d rounds", res.Rounds)
	}
	if checker.connections == 0 {
		t.Fatal("no connections observed")
	}
}

// productivityChecker asserts the different-sets invariant before
// delegating each exchange.
type productivityChecker struct {
	t           *testing.T
	inner       mtm.Protocol
	st          *State
	connections int
}

func (p *productivityChecker) TagBits() int                   { return p.inner.TagBits() }
func (p *productivityChecker) Tag(r int, u mtm.NodeID) uint64 { return p.inner.Tag(r, u) }
func (p *productivityChecker) Done() bool                     { return p.inner.Done() }

func (p *productivityChecker) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	return p.inner.Decide(r, u, view, rng)
}

func (p *productivityChecker) Exchange(r int, c *mtm.Conn) {
	p.connections++
	if p.st.Set(c.Initiator).Equal(p.st.Set(c.Responder)) {
		p.t.Errorf("round %d: connection %d-%d joined equal sets", r, c.Initiator, c.Responder)
	}
	p.inner.Exchange(r, c)
}
