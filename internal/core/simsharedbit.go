package core

import (
	"fmt"
	"sync"

	"mobilegossip/internal/ckpt"
	"mobilegossip/internal/eqtest"
	"mobilegossip/internal/leader"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/prand"
)

// SimSharedBit is the §5.2 algorithm for b = 1, τ ≥ 1 with no shared
// randomness. At start every node privately samples a seed — an index into
// the multiset R′ of Lemma 5.5 (our constructive stand-in: prand.SeedSpace).
// The run then interleaves two algorithms:
//
//   - even rounds execute BitConvergence leader election with the node's
//     seed as election payload; candidates converge to the minimum UID,
//     whose seed thereby reaches everyone;
//   - odd rounds execute SharedBit gossip, each node using as its "shared"
//     string whatever R′ member its current candidate leader's payload
//     points to. Before convergence nodes may use different strings and
//     waste rounds; after convergence the execution is exactly SharedBit.
//
// Theorem 5.6: O(kn + (1/α)·Δ^{1/τ}·log⁶N) rounds w.h.p.
type SimSharedBit struct {
	st    *State
	lead  *leader.Protocol
	space *prand.SeedSpace
	// strings caches the materialized R′ member per seed index. Tag and
	// Decide consult it for any node, so under the parallel engine backends
	// the cache is the one piece of cross-node shared state these phases
	// touch; mu makes the lazy materialization safe. The cached value for a
	// seed is a pure function of the seed, so fill order cannot affect
	// results.
	mu      sync.Mutex
	strings map[uint64]*prand.SharedString
}

var _ mtm.Protocol = (*SimSharedBit)(nil)

// NewSimSharedBit returns a SimSharedBit protocol over st. seeds[u] is node
// u's private draw from the seed space (use SampleSeeds); UID of node u is
// u+1.
func NewSimSharedBit(st *State, space *prand.SeedSpace, seeds []uint64) *SimSharedBit {
	ids := make([]int, st.n)
	for u := range ids {
		ids[u] = u + 1
	}
	return &SimSharedBit{
		st:      st,
		lead:    leader.New(ids, seeds),
		space:   space,
		strings: make(map[uint64]*prand.SharedString, 4),
	}
}

// SampleSeeds draws one private R′ index per node from rng.
func SampleSeeds(space *prand.SeedSpace, n int, rng *prand.RNG) []uint64 {
	seeds := make([]uint64, n)
	for u := range seeds {
		seeds[u] = space.Sample(rng)
	}
	return seeds
}

// State exposes the run state for instrumentation.
func (p *SimSharedBit) State() *State { return p.st }

// Leader exposes the embedded election for instrumentation.
func (p *SimSharedBit) Leader() *leader.Protocol { return p.lead }

// CheckpointTo serializes the protocol's mutable state. The seed space and
// each node's private seed are reconstructed from the run configuration;
// only the election's progress mutates during a run. The string cache is
// rebuilt lazily on demand.
func (p *SimSharedBit) CheckpointTo(w *ckpt.Writer) {
	w.Section("simsharedbit")
	w.U64(p.space.Size())
	p.lead.CheckpointTo(w)
}

// RestoreFrom loads a CheckpointTo stream into a protocol freshly built
// from the same configuration.
func (p *SimSharedBit) RestoreFrom(r *ckpt.Reader) error {
	r.Section("simsharedbit")
	size := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if size != p.space.Size() {
		return fmt.Errorf("core: checkpoint seed space |R′|=%d, protocol has %d", size, p.space.Size())
	}
	return p.lead.RestoreFrom(r)
}

// stringFor returns the R′ member node u currently believes is shared.
func (p *SimSharedBit) stringFor(u mtm.NodeID) *prand.SharedString {
	seed := p.lead.Payload(u)
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.strings[seed]
	if !ok {
		s = p.space.String(seed)
		// The cache only ever holds a handful of live seeds; bound it so an
		// adversarial schedule cannot grow it past O(n).
		if len(p.strings) > 4*p.st.n {
			p.strings = make(map[uint64]*prand.SharedString, 4)
		}
		p.strings[seed] = s
	}
	return s
}

// gossipGroup maps an odd engine round to its SharedBit round group.
func gossipGroup(r int) int { return (r + 1) / 2 }

// leaderRound maps an even engine round to its election round.
func leaderRound(r int) int { return r / 2 }

// TagBits implements mtm.Protocol (b = 1).
func (p *SimSharedBit) TagBits() int { return 1 }

// Tag implements mtm.Protocol: dispatch on round parity.
func (p *SimSharedBit) Tag(r int, u mtm.NodeID) uint64 {
	if r%2 == 0 {
		return p.lead.Tag(leaderRound(r), u)
	}
	return advertiseBit(p.stringFor(u), p.st.sets[u], gossipGroup(r))
}

// Decide implements mtm.Protocol.
func (p *SimSharedBit) Decide(r int, u mtm.NodeID, view []mtm.Neighbor, rng *prand.RNG) mtm.Action {
	if r%2 == 0 {
		return p.lead.Decide(leaderRound(r), u, view, rng)
	}
	shared := p.stringFor(u)
	own := advertiseBit(shared, p.st.sets[u], gossipGroup(r))
	return decideSharedBit(shared, own, gossipGroup(r), u, view)
}

// Exchange implements mtm.Protocol.
func (p *SimSharedBit) Exchange(r int, c *mtm.Conn) {
	if r%2 == 0 {
		p.lead.Exchange(leaderRound(r), c)
		return
	}
	eqtest.Transfer(c, p.st.sets[c.Initiator], p.st.sets[c.Responder], p.st.transferEps)
}

// Done implements mtm.Protocol: gossip completion is the objective; the
// election is only a means.
func (p *SimSharedBit) Done() bool { return p.st.AllDone() }
