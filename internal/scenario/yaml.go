package scenario

// A YAML-subset reader. The module deliberately has no dependencies, so
// scenario files are parsed by this translator: it turns the block-style
// YAML subset the spec format uses (nested mappings, block sequences,
// flow sequences of scalars, comments, quoted and bare scalars) into
// JSON bytes, and spec.go strict-decodes those with encoding/json. The
// subset is exactly what EncodeYAML emits — anchors, aliases, multi-line
// scalars, flow mappings and tag directives are rejected with the line
// number, not silently misread.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// yamlToJSON translates one YAML document into its JSON encoding.
// Input that already starts with '{' is passed through as JSON.
func yamlToJSON(data []byte) ([]byte, error) {
	if trimmed := strings.TrimLeft(string(data), " \t\r\n"); strings.HasPrefix(trimmed, "{") {
		return []byte(trimmed), nil
	}
	p := &yamlParser{}
	if err := p.split(string(data)); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	if t := p.lines[0].text; t == "-" || strings.HasPrefix(t, "- ") {
		return nil, fmt.Errorf("line %d: the document must be a mapping, not a sequence", p.lines[0].num)
	}
	node, err := p.parseValue(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		return nil, fmt.Errorf("line %d: content outside the document structure", p.lines[p.i].num)
	}
	var buf []byte
	return appendNode(buf, node), nil
}

// yamlLine is one non-blank logical line.
type yamlLine struct {
	indent int
	text   string // content after the indent, comments stripped
	num    int    // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	i     int
}

// split scans the source into logical lines, stripping comments and
// rejecting the constructs outside the subset.
func (p *yamlParser) split(src string) error {
	for num, raw := range strings.Split(src, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return fmt.Errorf("line %d: tab in indentation (YAML requires spaces)", num+1)
		}
		text, err := stripComment(line[indent:])
		if err != nil {
			return fmt.Errorf("line %d: %v", num+1, err)
		}
		text = strings.TrimRight(text, " \t")
		if text == "" {
			continue
		}
		if text == "---" || text == "..." {
			if len(p.lines) > 0 && text == "---" {
				return fmt.Errorf("line %d: multiple documents are not supported", num+1)
			}
			continue
		}
		if strings.HasPrefix(text, "%") {
			return fmt.Errorf("line %d: YAML directives are not supported", num+1)
		}
		for _, bad := range []string{"&", "*", "|", ">"} {
			if strings.HasPrefix(text, bad) {
				return fmt.Errorf("line %d: %q-style YAML (anchors, aliases, block scalars) is not supported", num+1, bad)
			}
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: text, num: num + 1})
	}
	return nil
}

// stripComment removes a trailing "# ..." comment: a '#' at the start of
// the content or preceded by whitespace, outside quotes.
func stripComment(s string) (string, error) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i], nil
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("unterminated %c-quoted string", quote)
	}
	return s, nil
}

// node is one parsed value: a json.RawMessage scalar, *mapNode, or
// *seqNode. Mapping keys stay in source order (maps would randomize the
// emitted JSON, and with it every error message).
type node any

type mapNode struct {
	keys []string
	vals []node
}

type seqNode struct{ items []node }

// parseValue parses the block starting at the current line, which must
// sit at exactly the given indent.
func (p *yamlParser) parseValue(indent int) (node, error) {
	line := p.lines[p.i]
	if line.indent != indent {
		return nil, fmt.Errorf("line %d: unexpected indentation (got %d spaces, want %d)", line.num, line.indent, indent)
	}
	if line.text == "-" || strings.HasPrefix(line.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (node, error) {
	m := &mapNode{}
	for p.i < len(p.lines) {
		line := p.lines[p.i]
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", line.num)
		}
		if line.text == "-" || strings.HasPrefix(line.text, "- ") {
			break
		}
		key, rest, err := splitKey(line.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line.num, err)
		}
		for _, k := range m.keys {
			if k == key {
				return nil, fmt.Errorf("line %d: duplicate key %q", line.num, key)
			}
		}
		p.i++
		var val node
		if rest == "" {
			// A nested block — or null, when nothing deeper follows. A
			// sequence may sit at the key's own indent (common YAML style).
			switch {
			case p.i < len(p.lines) && p.lines[p.i].indent > indent:
				val, err = p.parseValue(p.lines[p.i].indent)
			case p.i < len(p.lines) && p.lines[p.i].indent == indent &&
				(p.lines[p.i].text == "-" || strings.HasPrefix(p.lines[p.i].text, "- ")):
				val, err = p.parseSequence(indent)
			default:
				val = json.RawMessage("null")
			}
		} else {
			val, err = parseScalar(rest, line.num)
		}
		if err != nil {
			return nil, err
		}
		m.keys = append(m.keys, key)
		m.vals = append(m.vals, val)
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (node, error) {
	seq := &seqNode{}
	for p.i < len(p.lines) {
		line := p.lines[p.i]
		if line.indent != indent || (line.text != "-" && !strings.HasPrefix(line.text, "- ")) {
			if line.indent > indent {
				return nil, fmt.Errorf("line %d: unexpected indentation", line.num)
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(line.text, "-"), " ")
		var item node
		var err error
		switch {
		case rest == "":
			// "-" alone: the item is the deeper-indented block below.
			p.i++
			if p.i >= len(p.lines) || p.lines[p.i].indent <= indent {
				item = json.RawMessage("null")
			} else {
				item, err = p.parseValue(p.lines[p.i].indent)
			}
		case isMappingStart(rest):
			// "- key: value": the item is a mapping whose first entry is
			// inline. Re-enter the mapping parser with the dash replaced
			// by indentation, so the entries below at that column join it.
			p.lines[p.i] = yamlLine{
				indent: indent + (len(line.text) - len(rest)),
				text:   rest,
				num:    line.num,
			}
			item, err = p.parseMapping(p.lines[p.i].indent)
		default:
			p.i++
			item, err = parseScalar(rest, line.num)
		}
		if err != nil {
			return nil, err
		}
		seq.items = append(seq.items, item)
	}
	return seq, nil
}

// splitKey splits "key: rest" (or "key:") on the first colon outside
// quotes that ends the key.
func splitKey(s string) (key, rest string, err error) {
	idx := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ':' && (i+1 == len(s) || s[i+1] == ' ') {
			idx = i
			break
		}
		if s[i] == '"' || s[i] == '\'' {
			return "", "", fmt.Errorf("quoted keys are not supported")
		}
	}
	if idx < 0 {
		return "", "", fmt.Errorf("expected \"key: value\", got %q", s)
	}
	key = strings.TrimSpace(s[:idx])
	if key == "" {
		return "", "", fmt.Errorf("empty key")
	}
	return key, strings.TrimSpace(s[idx+1:]), nil
}

// isMappingStart reports whether a sequence item's inline text opens a
// mapping ("name: arrive") rather than a scalar ("plain value").
func isMappingStart(s string) bool {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") || strings.HasPrefix(s, "[") {
		return false
	}
	_, _, err := splitKey(s)
	return err == nil
}

// parseScalar converts one inline value — a flow sequence or a scalar —
// to its JSON form.
func parseScalar(s string, num int) (node, error) {
	if strings.HasPrefix(s, "[") {
		return parseFlowSeq(s, num)
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("line %d: flow mappings ({...}) are not supported; use an indented block", num)
	}
	switch s[0] {
	case '&', '*':
		return nil, fmt.Errorf("line %d: YAML anchors and aliases (&, *) are not supported", num)
	case '|', '>':
		return nil, fmt.Errorf("line %d: block scalars (|, >) are not supported; use a quoted string", num)
	}
	raw, err := scalarJSON(s)
	if err != nil {
		return nil, fmt.Errorf("line %d: %v", num, err)
	}
	return raw, nil
}

// parseFlowSeq parses "[a, b, c]" of scalars.
func parseFlowSeq(s string, num int) (node, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("line %d: unterminated flow sequence %q", num, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	seq := &seqNode{}
	if inner == "" {
		return seq, nil
	}
	for _, part := range splitFlow(inner) {
		part = strings.TrimSpace(part)
		if strings.HasPrefix(part, "[") || strings.HasPrefix(part, "{") {
			return nil, fmt.Errorf("line %d: nested flow collections are not supported", num)
		}
		raw, err := scalarJSON(part)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", num, err)
		}
		seq.items = append(seq.items, raw)
	}
	return seq, nil
}

// splitFlow splits on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// scalarJSON resolves one scalar token to its JSON encoding: null,
// booleans, numbers, quoted strings, bare strings.
func scalarJSON(s string) (json.RawMessage, error) {
	switch s {
	case "", "null", "~":
		return json.RawMessage("null"), nil
	case "true", "false":
		return json.RawMessage(s), nil
	}
	if strings.HasPrefix(s, "\"") {
		if !json.Valid([]byte(s)) {
			return nil, fmt.Errorf("invalid double-quoted string %s", s)
		}
		var str string
		if err := json.Unmarshal([]byte(s), &str); err != nil {
			return nil, fmt.Errorf("invalid double-quoted string %s: %v", s, err)
		}
		return json.RawMessage(s), nil
	}
	if strings.HasPrefix(s, "'") {
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("unterminated single-quoted string %s", s)
		}
		body := strings.ReplaceAll(s[1:len(s)-1], "''", "'")
		out, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return json.RawMessage(out), nil
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return json.RawMessage(s), nil
	}
	if _, err := strconv.ParseUint(s, 10, 64); err == nil {
		return json.RawMessage(s), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && json.Valid([]byte(s)) {
		_ = f
		return json.RawMessage(s), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		// Valid as a float but not as JSON (e.g. ".5", "1e5" is fine,
		// "+1" is not): re-marshal the value.
		out, _ := json.Marshal(f)
		return json.RawMessage(out), nil
	}
	out, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(out), nil
}

// appendNode serializes the parsed tree as JSON.
func appendNode(buf []byte, n node) []byte {
	switch v := n.(type) {
	case json.RawMessage:
		return append(buf, v...)
	case *mapNode:
		buf = append(buf, '{')
		for i, k := range v.keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			kb, _ := json.Marshal(k)
			buf = append(buf, kb...)
			buf = append(buf, ':')
			buf = appendNode(buf, v.vals[i])
		}
		return append(buf, '}')
	case *seqNode:
		buf = append(buf, '[')
		for i, item := range v.items {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendNode(buf, item)
		}
		return append(buf, ']')
	}
	panic("scenario: unknown yaml node")
}
