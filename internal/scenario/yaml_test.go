package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// yj translates and fails the test on error.
func yj(t *testing.T, src string) string {
	t.Helper()
	out, err := yamlToJSON([]byte(src))
	if err != nil {
		t.Fatalf("yamlToJSON(%q): %v", src, err)
	}
	if !json.Valid(out) {
		t.Fatalf("yamlToJSON(%q) produced invalid JSON: %s", src, out)
	}
	return string(out)
}

func TestYAMLToJSONValues(t *testing.T) {
	cases := []struct{ yaml, json string }{
		{"a: 1", `{"a":1}`},
		{"a: -7", `{"a":-7}`},
		{"a: 0.25", `{"a":0.25}`},
		{"a: hello", `{"a":"hello"}`},
		{"a: true\nb: false", `{"a":true,"b":false}`},
		{"a: null\nb: ~\nc:", `{"a":null,"b":null,"c":null}`},
		{"a: \"quoted: text\"", `{"a":"quoted: text"}`},
		{"a: 'it''s'", `{"a":"it's"}`},
		{"a: [1, 2, 3]", `{"a":[1,2,3]}`},
		{"a: []", `{"a":[]}`},
		{"a: 18446744073709551615", `{"a":18446744073709551615}`},
		// Comments and blank lines vanish.
		{"# header\na: 1\n\n# mid\nb: 2 # trailing", `{"a":1,"b":2}`},
		// Nested mappings by indentation.
		{"a:\n  b: 1\n  c:\n    d: x", `{"a":{"b":1,"c":{"d":"x"}}}`},
		// Block sequences, at the key's own indent and deeper.
		{"a:\n- 1\n- 2", `{"a":[1,2]}`},
		{"a:\n  - 1\n  - 2", `{"a":[1,2]}`},
		// Sequence of mappings, fields on the dash line.
		{"a:\n  - b: 1\n    c: 2\n  - b: 3", `{"a":[{"b":1,"c":2},{"b":3}]}`},
		// Document markers are tolerated.
		{"---\na: 1\n...", `{"a":1}`},
		// JSON passthrough.
		{`{"a": 1}`, `{"a": 1}`},
	}
	for _, c := range cases {
		if got := strings.TrimSpace(yj(t, c.yaml)); got != c.json {
			t.Errorf("yamlToJSON(%q) = %s, want %s", c.yaml, got, c.json)
		}
	}
}

func TestYAMLToJSONErrors(t *testing.T) {
	cases := []struct{ yaml, wantSub string }{
		{"a: 1\na: 2", "duplicate key"},
		{"\ta: 1", "tab"},
		{"a: &anchor 1", "anchors"},
		{"a: *ref", "aliases"},
		{"a: |\n  text", "block scalars"},
		{"a: >\n  text", "block scalars"},
		{"%YAML 1.2\na: 1", "directive"},
		{"a: {b: 1}", "flow mapping"},
		{"a: 1\n---\nb: 2", "multiple documents"},
		{"a: \"unterminated", "unterminated"},
		{"just a scalar", "expected \"key: value\""},
		{"- 1\n- 2", "mapping"},
		{"a: [1, [2]]", "nested"},
	}
	for _, c := range cases {
		_, err := yamlToJSON([]byte(c.yaml))
		if err == nil {
			t.Errorf("yamlToJSON(%q): expected error containing %q, got nil", c.yaml, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("yamlToJSON(%q) error = %q, want substring %q", c.yaml, err, c.wantSub)
		}
	}
}

func TestYAMLErrorsCarryLineNumbers(t *testing.T) {
	_, err := yamlToJSON([]byte("a: 1\nb: 2\nb: 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("duplicate-key error should name line 3, got %v", err)
	}
	_, err = yamlToJSON([]byte("a: 1\n\tb: 2\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("tab-indent error should name line 2, got %v", err)
	}
}
