package scenario

// FuzzScenarioSpec hammers the scenario reader with arbitrary bytes. Two
// properties hold for every input:
//
//   - Parse never panics: malformed YAML, hostile indentation, and
//     garbage numerics all come back as errors.
//   - Valid inputs round-trip to a fixed point: Parse → EncodeYAML →
//     Parse → EncodeYAML emits the same bytes both times, so the
//     canonical form really is canonical.

import (
	"bytes"
	"testing"
)

func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(minimalYAML))
	f.Add([]byte(`version: 1
name: phased
seed: 7
algorithm: simsharedbit
n: 32
k: 4
tau: 1
topology:
  kind: waypoint
  speed: 0.01
phases:
  - name: a
    rounds: 5
  - name: b
    tau: 0
    topology:
      kind: complete
expect:
  solved: true
  solved_by: 100
`))
	f.Add([]byte(`version: 1
name: grid
seed: 1
algorithm: blindmatch
topology:
  kind: gnp
  p: 0.25
grid:
  n: [8, 16]
  k: [1, 2]
  trials: 3
`))
	f.Add([]byte(`{"version": 1, "name": "j", "seed": 2, "algorithm": "sharedbit", "n": 4, "k": 1, "topology": {"kind": "cycle"}}`))
	f.Add([]byte("version: 1\nname: \"x\"\n"))
	f.Add([]byte("a:\n  - b: 1\n"))
	f.Add([]byte("\xff\xfe garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data) // must not panic
		if err != nil {
			return
		}
		once := spec.EncodeYAML()
		spec2, err := Parse(once)
		if err != nil {
			t.Fatalf("canonical emission failed to re-parse: %v\ninput:\n%s\nemitted:\n%s", err, data, once)
		}
		twice := spec2.EncodeYAML()
		if !bytes.Equal(once, twice) {
			t.Fatalf("EncodeYAML not a fixed point:\ninput:\n%s\nfirst:\n%s\nsecond:\n%s", data, once, twice)
		}
	})
}
