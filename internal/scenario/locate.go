package scenario

import (
	"fmt"
	"os"
	"path/filepath"
)

// Locate resolves the committed library scenario <name>.yaml by searching
// the working directory and its ancestors for a scenarios/ directory.
// Examples and tools run from anywhere inside the repository find the
// same file `gossipsim run scenarios/<name>.yaml` would from the root.
func Locate(name string) (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		p := filepath.Join(dir, "scenarios", name+".yaml")
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("scenario %q: no scenarios/%s.yaml in the working directory or any parent", name, name)
		}
		dir = parent
	}
}
