package scenario

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// minimalYAML is the smallest valid scenario.
const minimalYAML = `version: 1
name: minimal
seed: 3
algorithm: sharedbit
n: 8
k: 2
topology:
  kind: complete
`

func TestParseMinimal(t *testing.T) {
	spec, err := Parse([]byte(minimalYAML))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "minimal" || spec.N != 8 || spec.K != 2 || spec.Seed != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Topology.Kind != "complete" {
		t.Fatalf("topology = %+v", spec.Topology)
	}
}

func TestParseJSONPassthrough(t *testing.T) {
	src := `{"version": 1, "name": "json", "seed": 1, "algorithm": "blindmatch",
	         "n": 4, "k": 2, "topology": {"kind": "cycle"}}`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "json" || spec.Algorithm != "blindmatch" {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	src := strings.Replace(minimalYAML, "seed: 3", "seed: 3\nspeed: 9", 1)
	_, err := Parse([]byte(src))
	if err == nil || !strings.Contains(err.Error(), "speed") {
		t.Fatalf("unknown top-level field should be rejected by name, got %v", err)
	}
	src = strings.Replace(minimalYAML, "  kind: complete", "  kind: complete\n  radios: 2", 1)
	_, err = Parse([]byte(src))
	if err == nil || !strings.Contains(err.Error(), "radios") {
		t.Fatalf("unknown topology field should be rejected by name, got %v", err)
	}
}

// edit reparses minimalYAML with one line replaced.
func edit(t *testing.T, old, new string) error {
	t.Helper()
	src := strings.Replace(minimalYAML, old, new, 1)
	if src == minimalYAML && old != new {
		t.Fatalf("edit %q -> %q did not apply", old, new)
	}
	_, err := Parse([]byte(src))
	return err
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name, old, new, wantSub string
	}{
		{"missing version", "version: 1\n", "", `missing required field "version"`},
		{"future version", "version: 1", "version: 9", "unsupported version 9"},
		{"missing name", "name: minimal\n", "", `missing required field "name"`},
		{"bad name", "name: minimal", "name: MiXeD", "lowercase"},
		{"missing algorithm", "algorithm: sharedbit\n", "", `missing required field "algorithm"`},
		{"bad algorithm", "algorithm: sharedbit", "algorithm: quantum", `unknown algorithm "quantum"`},
		{"n too small", "n: 8", "n: 1", "n must be at least 2"},
		{"k zero", "k: 2", "k: 0", "k must be at least 1"},
		{"k over n", "k: 2", "k: 9", "k must be in [1, n=8]"},
		{"negative tau", "seed: 3", "seed: 3\ntau: -1", "tau must be >= 0"},
		{"epsilon too big", "seed: 3", "seed: 3\nepsilon: 1.5", "epsilon must be in [0, 1)"},
		{"negative max_rounds", "seed: 3", "seed: 3\nmax_rounds: -4", "max_rounds must be >= 0"},
		{"missing topology kind", "  kind: complete", "  degree: 3", `missing required field "topology.kind"`},
		{"bad topology kind", "kind: complete", "kind: mesh", `unknown topology "mesh"`},
		{"crowdedbin needs static", "algorithm: sharedbit", "algorithm: crowdedbin\ntau: 2", "crowdedbin requires a static topology"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := edit(t, c.old, c.new)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %q, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestPhaseValidation(t *testing.T) {
	phased := func(phases string) string {
		return minimalYAML + "phases:\n" + phases
	}
	cases := []struct {
		name, src, wantSub string
	}{
		{"single phase", phased("  - name: only\n"), "at least 2 phases"},
		{"unnamed phase", phased("  - name: a\n    rounds: 5\n  - rounds: 5\n"), `missing required field "name"`},
		{"duplicate names", phased("  - name: a\n    rounds: 5\n  - name: a\n"), `duplicate phase name "a"`},
		{"zero rounds mid-timeline", phased("  - name: a\n  - name: b\n    rounds: 5\n"), "only valid on the last phase"},
		{"phase 0 topology", phased("  - name: a\n    rounds: 5\n    topology:\n      kind: cycle\n  - name: b\n"), "set its topology/tau at the top level"},
		{"phase topology kind", phased("  - name: a\n    rounds: 5\n  - name: b\n    topology:\n      kind: mesh\n"), `unknown topology "mesh"`},
		{"negative phase tau", phased("  - name: a\n    rounds: 5\n  - name: b\n    tau: -2\n"), "tau must be >= 0"},
		{"max_rounds with fixed timeline", strings.Replace(
			phased("  - name: a\n    rounds: 5\n  - name: b\n    rounds: 5\n"),
			"seed: 3", "seed: 3\nmax_rounds: 50", 1),
			"max_rounds conflicts with a fully fixed-length timeline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.src))
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %q, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestGridValidation(t *testing.T) {
	base := strings.Replace(strings.Replace(minimalYAML, "n: 8\n", "", 1), "k: 2\n", "", 1)
	cases := []struct {
		name, src, wantSub string
	}{
		{"grid n too small", base + "grid:\n  n: [1]\n  k: [1]\n", "grid.n"},
		{"grid k too small", base + "grid:\n  n: [4]\n  k: [0]\n", "grid.k"},
		{"grid k over n", base + "grid:\n  n: [4]\n  k: [8]\n", "k exceeds n"},
		{"grid with phases", minimalYAML +
			"grid:\n  n: [4]\n  k: [2]\n" +
			"phases:\n  - name: a\n    rounds: 5\n  - name: b\n",
			"mutually exclusive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.src))
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %q, want substring %q", err, c.wantSub)
			}
		})
	}

	// A grid axis excuses the matching missing top-level field.
	spec, err := Parse([]byte(base + "grid:\n  n: [4, 8]\n  k: [1, 2]\n  trials: 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	pts := spec.points()
	if len(pts) != 4 || pts[0] != (gridPoint{4, 1}) || pts[3] != (gridPoint{8, 2}) {
		t.Fatalf("points = %v", pts)
	}
}

func TestExpectValidationSurfaces(t *testing.T) {
	err := edit(t, "seed: 3", "seed: 3\nexpect:\n  solved_by: -1")
	if err == nil || !strings.Contains(err.Error(), "solved_by") {
		t.Fatalf("invalid expect should be rejected, got %v", err)
	}
}

func TestPhaseHelpers(t *testing.T) {
	src := minimalYAML + `phases:
  - name: a
    rounds: 10
  - name: b
    rounds: 20
    topology:
      kind: cycle
  - name: c
`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.phaseStarts(); got[0] != 0 || got[1] != 10 || got[2] != 30 {
		t.Fatalf("phaseStarts = %v", got)
	}
	for r, want := range map[int]string{1: "a", 10: "a", 11: "b", 30: "b", 31: "c", 500: "c"} {
		if got := spec.phaseAt(r); got != want {
			t.Errorf("phaseAt(%d) = %q, want %q", r, got, want)
		}
	}
	if spec.effectiveMaxRounds() != 0 {
		t.Fatalf("open-ended timeline should keep max_rounds 0, got %d", spec.effectiveMaxRounds())
	}

	fixed := strings.Replace(src, "  - name: c\n", "  - name: c\n    rounds: 5\n", 1)
	spec, err = Parse([]byte(fixed))
	if err != nil {
		t.Fatal(err)
	}
	if spec.effectiveMaxRounds() != 35 {
		t.Fatalf("fixed timeline should cap the run at 35 rounds, got %d", spec.effectiveMaxRounds())
	}
}

// TestConfigMapping: Spec.Config applies the same wire→engine topology
// mapping the daemon uses, including named adversary and relabel kinds,
// and surfaces unknown names rather than silently dropping them.
func TestConfigMapping(t *testing.T) {
	src := strings.Replace(minimalYAML,
		"  kind: complete",
		"  kind: waypoint\n  radius: 0.3\n  adversary: blackout\n  adv_budget: 4\n  relabel: bfs",
		1)
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config(spec.N, spec.K)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N != 8 || cfg.K != 2 || cfg.Seed != 3 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.Topology.Radius != 0.3 || cfg.Topology.AdvBudget != 4 {
		t.Fatalf("topology params not mapped: %+v", cfg.Topology)
	}

	for _, bad := range []struct{ old, new, wantSub string }{
		{"  adversary: blackout", "  adversary: gremlin", `"gremlin"`},
		{"  relabel: bfs", "  relabel: scramble", `"scramble"`},
	} {
		spec, err := Parse([]byte(strings.Replace(src, bad.old, bad.new, 1)))
		if err == nil {
			_, err = spec.Config(spec.N, spec.K)
		}
		if err == nil || !strings.Contains(err.Error(), bad.wantSub) {
			t.Errorf("replacing %q: want error naming %s, got %v", bad.old, bad.wantSub, err)
		}
	}
}

// TestEncodeRoundTrip: Parse∘EncodeYAML is a fixed point on every
// committed scenario and on a synthetic spec exercising all field groups.
func TestEncodeRoundTrip(t *testing.T) {
	full := `version: 1
name: everything
description: 'exercises: every optional block'
seed: 18446744073709551615
algorithm: sharedbit
n: 64
k: 8
tau: 3
epsilon: 0.5
tag_bits: 2
topology:
  kind: waypoint
  radius: 0.25
  speed: 0.01
  pause: 2
  adversary: blackout
  adv_budget: 10
  adv_period: 4
phases:
  - name: first
    rounds: 10
  - name: second
    rounds: 0
    tau: 5
    topology:
      kind: gnp
      p: 0.125
expect:
  solved: true
  solved_by: 500
  min_rounds: 10
  max_final_potential: 0
  min_coverage: 0.75
  max_churn_per_round: 12.5
  min_tokens_moved: 1
  max_tokens_moved: 100000
`
	spec, err := Parse([]byte(full))
	if err != nil {
		t.Fatal(err)
	}
	once := spec.EncodeYAML()
	spec2, err := Parse(once)
	if err != nil {
		t.Fatalf("re-parsing emitted YAML: %v\n%s", err, once)
	}
	twice := spec2.EncodeYAML()
	if !bytes.Equal(once, twice) {
		t.Fatalf("EncodeYAML is not a fixed point:\nfirst:\n%s\nsecond:\n%s", once, twice)
	}

	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed scenarios found: %v", err)
	}
	for _, path := range paths {
		spec, err := ParseFile(path)
		if err != nil {
			t.Fatal(err)
		}
		once := spec.EncodeYAML()
		spec2, err := Parse(once)
		if err != nil {
			t.Fatalf("%s: re-parsing emitted YAML: %v\n%s", path, err, once)
		}
		if twice := spec2.EncodeYAML(); !bytes.Equal(once, twice) {
			t.Fatalf("%s: EncodeYAML is not a fixed point", path)
		}
	}
}
