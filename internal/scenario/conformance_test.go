package scenario_test

// The golden-trace conformance suite (DESIGN.md §15): every committed
// scenario under scenarios/ runs here with its result table (and, for
// single runs, its event stream) byte-compared against the goldens in
// scenarios/golden/ — across engine workers {1, 7}, local vs remote
// (an in-process gossipd), and a mid-phase checkpoint/resume split.
// Regenerate the goldens after an intentional output change with
//
//	go test ./internal/scenario -run TestGoldenConformance -update

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilegossip/client"
	"mobilegossip/internal/daemon"
	"mobilegossip/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden files under scenarios/golden")

// scenariosDir locates the committed scenario library relative to this
// package.
func scenariosDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("scenario library not found: %v", err)
	}
	return dir
}

// listScenarios returns the library's scenario files, sorted.
func listScenarios(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenariosDir(t), "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario files under scenarios/")
	}
	return paths
}

// startDaemon serves an in-process gossipd over httptest and returns its
// base URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	d, err := daemon.New(daemon.Config{StateDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Close()
	})
	return srv.URL
}

// runScenario executes one scenario and returns its stdout bytes.
func runScenario(t *testing.T, path string, opts scenario.Options) []byte {
	t.Helper()
	var out bytes.Buffer
	opts.Out = &out
	opts.Log = io.Discard
	if err := scenario.RunFile(path, opts); err != nil {
		t.Fatalf("%s: %v", filepath.Base(path), err)
	}
	return out.Bytes()
}

// ckptRound picks a checkpoint round that lands mid-run: inside the
// second phase of a phased timeline, else round 20.
func ckptRound(spec *scenario.Spec) int {
	if len(spec.Phases) >= 2 {
		start := spec.Phases[0].Rounds
		return start + max(1, spec.Phases[1].Rounds/2)
	}
	return 20
}

func TestGoldenConformance(t *testing.T) {
	remote := startDaemon(t)
	for _, path := range listScenarios(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".yaml")
		t.Run(name, func(t *testing.T) {
			spec, err := scenario.ParseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Fatalf("scenario name %q does not match file name %q", spec.Name, name)
			}
			goldenTable := filepath.Join(scenariosDir(t), "golden", name+".table.txt")
			goldenEvents := filepath.Join(scenariosDir(t), "golden", name+".events.jsonl")
			single := spec.Grid == nil

			// Reference run: local, sequential engine, recording events.
			tmp := t.TempDir()
			evPath := ""
			if single {
				evPath = filepath.Join(tmp, "events.jsonl")
			}
			table := runScenario(t, path, scenario.Options{EngineWorkers: 1, EventsPath: evPath})
			if *update {
				if err := os.WriteFile(goldenTable, table, 0o644); err != nil {
					t.Fatal(err)
				}
				if single {
					ev, err := os.ReadFile(evPath)
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(goldenEvents, ev, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			wantTable, err := os.ReadFile(goldenTable)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			compare(t, "local workers=1 table", table, wantTable)
			if single {
				wantEvents, err := os.ReadFile(goldenEvents)
				if err != nil {
					t.Fatalf("missing golden (run with -update to generate): %v", err)
				}
				ev, err := os.ReadFile(evPath)
				if err != nil {
					t.Fatal(err)
				}
				compare(t, "local workers=1 events", ev, wantEvents)
			}

			// Parallel engine: same bytes at 7 workers.
			ev7Path := ""
			if single {
				ev7Path = filepath.Join(tmp, "events7.jsonl")
			}
			table7 := runScenario(t, path, scenario.Options{EngineWorkers: 7, EventsPath: ev7Path})
			compare(t, "local workers=7 table", table7, wantTable)
			if single {
				ev7, err := os.ReadFile(ev7Path)
				if err != nil {
					t.Fatal(err)
				}
				wantEvents, _ := os.ReadFile(goldenEvents)
				compare(t, "local workers=7 events", ev7, wantEvents)
			}

			// Remote: the daemon must emit the very same bytes.
			for _, workers := range []int{1, 7} {
				revPath := ""
				if single {
					revPath = filepath.Join(tmp, "events-remote.jsonl")
				}
				rtable := runScenario(t, path, scenario.Options{
					Remote: remote, EngineWorkers: workers, EventsPath: revPath,
				})
				compare(t, "remote table", rtable, wantTable)
				if single {
					rev, err := os.ReadFile(revPath)
					if err != nil {
						t.Fatal(err)
					}
					wantEvents, _ := os.ReadFile(goldenEvents)
					compare(t, "remote events", rev, wantEvents)
				}
			}

			// Mid-run checkpoint, then resume — locally and remotely; the
			// resumed runs must converge on the same final table.
			if !single {
				return
			}
			ck := filepath.Join(tmp, "mid.ckpt")
			ckAt := ckptRound(spec)
			_ = runScenario(t, path, scenario.Options{
				EngineWorkers: 1, CheckpointPath: ck, CheckpointAt: ckAt,
			})
			if _, err := os.Stat(ck); err != nil {
				t.Fatalf("checkpoint at round %d was not written: %v", ckAt, err)
			}
			resumed := runScenario(t, path, scenario.Options{EngineWorkers: 1, ResumePath: ck})
			compare(t, "local resume table", resumed, wantTable)
			rresumed := runScenario(t, path, scenario.Options{Remote: remote, ResumePath: ck})
			compare(t, "remote resume table", rresumed, wantTable)

			// The remote-written checkpoint must be byte-identical to the
			// local one: snapshots at the same boundary share bytes.
			rck := filepath.Join(tmp, "mid-remote.ckpt")
			_ = runScenario(t, path, scenario.Options{
				Remote: remote, CheckpointPath: rck, CheckpointAt: ckAt,
			})
			rb, err := os.ReadFile(rck)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := os.ReadFile(ck)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, "checkpoint bytes local vs remote", rb, lb)
		})
	}
}

// TestConformanceEvictRevive forces the daemon to evict the scenario's
// session between client calls (MaxLive: 1 plus a decoy session created
// before every run/rebind request) and checks the transparent revivals
// leave the output byte-identical to the golden anyway.
func TestConformanceEvictRevive(t *testing.T) {
	d, err := daemon.New(daemon.Config{StateDir: t.TempDir(), Workers: 2, MaxLive: 1})
	if err != nil {
		t.Fatal(err)
	}
	mux := d.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost &&
			(strings.HasSuffix(r.URL.Path, "/run") || strings.HasSuffix(r.URL.Path, "/rebind")) {
			// Registering the decoy trips the MaxLive cap and evicts the
			// idle scenario session; the request below then revives it.
			info, err := d.Create(client.CreateRequest{
				Algorithm: "blindmatch", N: 2, K: 1, Seed: 1,
				Topology: client.TopologySpec{Kind: "complete"},
			})
			if err != nil {
				t.Errorf("decoy create: %v", err)
			} else if err := d.Delete(info.ID); err != nil {
				t.Errorf("decoy delete: %v", err)
			}
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer d.Close()

	path := filepath.Join(scenariosDir(t), "festival.yaml")
	table := runScenario(t, path, scenario.Options{Remote: srv.URL, EngineWorkers: 1})
	want, err := os.ReadFile(filepath.Join(scenariosDir(t), "golden", "festival.table.txt"))
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "evicted/revived remote table", table, want)

	var metrics bytes.Buffer
	if err := d.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"gossipd_evictions_total", "gossipd_revivals_total"} {
		if !metricPositive(metrics.String(), counter) {
			t.Errorf("%s is zero: the forced-eviction cell did not exercise eviction\n%s", counter, metrics.String())
		}
	}
}

// metricPositive reports whether the metrics text has counter > 0.
func metricPositive(metrics, counter string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == counter && fields[1] != "0" {
			return true
		}
	}
	return false
}

// compare fails with a first-divergence diff when got != want.
func compare(t *testing.T, what string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("%s: line %d differs\n got: %q\nwant: %q", what, i+1, g, w)
		}
	}
	t.Fatalf("%s: outputs differ", what)
}
