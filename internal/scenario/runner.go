package scenario

// The scenario runner: executes a parsed Spec locally (in-process
// sessions / sweeps) or against a gossipd daemon, with byte-identical
// stdout either way. Phase boundaries drive Simulation.Rebind (or the
// daemon's rebind endpoint), checkpoints and event streams ride the same
// machinery as flag-driven gossipsim runs, and the expect block is
// evaluated through internal/outcome — locally for local runs, by the
// daemon's assert endpoint for remote ones, with identical failure text.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/outcome"
)

// Options tunes how a scenario executes — never what it computes: every
// field changes wall-clock, placement, or observability, and the result
// tables and event streams stay byte-identical across all of them (the
// conformance suite's determinism matrix).
type Options struct {
	// Remote, when non-empty, runs the scenario against the gossipd
	// daemon at this address instead of in-process.
	Remote string
	// EngineWorkers overrides the engine worker count (0 = auto).
	EngineWorkers int
	// EventsPath streams the session's events as JSONL to this file
	// (single runs only). Remote runs record on the daemon and download
	// the replay — the same bytes.
	EventsPath string
	// CheckpointPath writes a checkpoint to this file at round
	// CheckpointAt (0 = when the run finishes), single runs only. At a
	// phase boundary the snapshot is taken before the phase's rebind, so
	// resuming re-applies that phase deterministically.
	CheckpointPath string
	CheckpointAt   int
	// ResumePath revives the run from this checkpoint instead of
	// starting fresh; remaining phase boundaries still apply.
	ResumePath string
	// Out receives the deterministic output: header, result table,
	// assertion summary (default os.Stdout).
	Out io.Writer
	// Log receives progress notices — checkpoint written, resumed,
	// phase rebinds (default os.Stderr). Kept apart from Out so tables
	// byte-compare without any filtering.
	Log io.Writer
}

func (o *Options) fill() {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// AssertionError reports a local run that violated its expect block.
// Remote runs surface the same text as a *client.APIError (HTTP 409)
// from the daemon's assert endpoint.
type AssertionError struct {
	Scenario   string
	Seed       uint64
	Phase      string
	Violations []outcome.Violation
}

func (e *AssertionError) Error() string {
	return outcome.FormatFailure(e.Scenario, e.Seed, e.Phase, e.Violations)
}

// RunFile parses and runs the scenario at path.
func RunFile(path string, opts Options) error {
	spec, err := ParseFile(path)
	if err != nil {
		return err
	}
	return Run(spec, opts)
}

// Run executes the scenario. The error is non-nil for execution failures
// and for expect-block violations (*AssertionError locally,
// *client.APIError remotely).
func Run(spec *Spec, opts Options) error {
	opts.fill()
	if spec.Grid != nil {
		if opts.CheckpointPath != "" || opts.ResumePath != "" || opts.EventsPath != "" {
			return fmt.Errorf("scenario %q: checkpoints and event streams apply to single runs, not grids", spec.Name)
		}
		writeHeader(opts.Out, spec)
		if opts.Remote != "" {
			return runGridRemote(spec, opts)
		}
		return runGridLocal(spec, opts)
	}
	writeHeader(opts.Out, spec)
	if opts.Remote != "" {
		return runSingleRemote(spec, opts)
	}
	return runSingleLocal(spec, opts)
}

// writeHeader emits the deterministic scenario banner — derived from the
// spec alone, so every execution mode prints the same bytes.
func writeHeader(w io.Writer, spec *Spec) {
	if spec.Description != "" {
		fmt.Fprintf(w, "scenario %s — %s\n", spec.Name, spec.Description)
	} else {
		fmt.Fprintf(w, "scenario %s\n", spec.Name)
	}
	if len(spec.Phases) > 0 {
		fmt.Fprintf(w, "phases:")
		for _, ph := range spec.Phases {
			if ph.Rounds > 0 {
				fmt.Fprintf(w, " %s(%d)", ph.Name, ph.Rounds)
			} else {
				fmt.Fprintf(w, " %s(to completion)", ph.Name)
			}
		}
		fmt.Fprintln(w)
	}
	if spec.Grid != nil {
		pts := spec.points()
		fmt.Fprintf(w, "grid: %d points × %d trials (base seed %d)\n",
			len(pts), spec.Grid.Trials, spec.Seed)
	}
	fmt.Fprintln(w)
}

// finalTau is the stability factor in force at the end of a phased run —
// what the result table's τ column shows.
func (s *Spec) finalTau() int {
	tau := s.Tau
	for _, ph := range s.Phases {
		if ph.Tau != nil {
			tau = *ph.Tau
		}
	}
	return tau
}

// tableView carries the single-run summary fields; renderTable mirrors
// gossipsim's result table minus the wall-time row, so scenario output
// is comparable byte-for-byte across runs, workers, and transports.
type tableView struct {
	algorithm, topology                              string
	n, k, tau                                        int
	epsilon                                          float64
	solved                                           bool
	rounds                                           int
	connections, proposals, controlBits, tokensMoved int64
	edgesAdded, edgesRemoved                         int64
	finalPotential                                   int
}

func renderTable(w io.Writer, v tableView) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", v.algorithm)
	fmt.Fprintf(tw, "topology\t%s (n=%d, τ=%s)\n", v.topology, v.n, tauString(v.tau))
	fmt.Fprintf(tw, "tokens\t%d\n", v.k)
	if v.epsilon > 0 {
		fmt.Fprintf(tw, "objective\tε-gossip (ε=%.2f)\n", v.epsilon)
	} else {
		fmt.Fprintf(tw, "objective\tgossip (all nodes learn all tokens)\n")
	}
	fmt.Fprintf(tw, "solved\t%v\n", v.solved)
	fmt.Fprintf(tw, "rounds\t%d\n", v.rounds)
	fmt.Fprintf(tw, "connections\t%d\n", v.connections)
	fmt.Fprintf(tw, "proposals\t%d\n", v.proposals)
	fmt.Fprintf(tw, "control bits\t%d\n", v.controlBits)
	fmt.Fprintf(tw, "tokens moved\t%d\n", v.tokensMoved)
	if v.edgesAdded > 0 || v.edgesRemoved > 0 {
		fmt.Fprintf(tw, "edge churn\t+%d/-%d (%.1f per round)\n",
			v.edgesAdded, v.edgesRemoved,
			float64(v.edgesAdded+v.edgesRemoved)/float64(max(v.rounds, 1)))
	}
	fmt.Fprintf(tw, "final φ\t%d\n", v.finalPotential)
	return tw.Flush()
}

func tauString(tau int) string {
	if tau <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", tau)
}

// writeExpectOK prints the post-assertion confirmation line.
func writeExpectOK(w io.Writer, e *outcome.Expect) {
	if e == nil {
		return
	}
	n := e.Count()
	noun := "checks"
	if n == 1 {
		noun = "check"
	}
	fmt.Fprintf(w, "expect: ok (%d %s)\n", n, noun)
}

// expectToWire maps the expect block onto the client's self-contained
// wire shape (the public client package does not expose internal types).
func expectToWire(e outcome.Expect) client.ExpectSpec {
	return client.ExpectSpec{
		Solved: e.Solved, SolvedBy: e.SolvedBy, MinRounds: e.MinRounds,
		MaxFinalPotential: e.MaxFinalPotential, MinCoverage: e.MinCoverage,
		MaxChurnPerRound: e.MaxChurnPerRound,
		MinTokensMoved:   e.MinTokensMoved, MaxTokensMoved: e.MaxTokensMoved,
	}
}

// checkExpect evaluates the expect block against one finished run.
func checkExpect(spec *Spec, r outcome.Run, seed uint64) error {
	if spec.Expect == nil {
		return nil
	}
	vs := outcome.Check(*spec.Expect, r)
	if len(vs) == 0 {
		return nil
	}
	return &AssertionError{
		Scenario: spec.Name, Seed: seed,
		Phase: spec.phaseAt(r.Rounds), Violations: vs,
	}
}

// ---------------------------------------------------------------------
// Local single runs (fresh or resumed), phased or not.

func runSingleLocal(spec *Spec, opts Options) error {
	var sim *mobilegossip.Simulation
	if opts.ResumePath != "" {
		var err error
		sim, err = mobilegossip.ResumeFile(opts.ResumePath)
		if err != nil {
			return err
		}
		if opts.EngineWorkers != 0 {
			sim.SetEngineWorkers(opts.EngineWorkers)
		}
		fmt.Fprintf(opts.Log, "resumed from %s at round %d (φ=%d)\n",
			opts.ResumePath, sim.Round(), sim.Potential())
	} else {
		cfg, err := spec.Config(spec.N, spec.K)
		if err != nil {
			return err
		}
		cfg.EngineWorkers = opts.EngineWorkers
		sim, err = mobilegossip.New(cfg)
		if err != nil {
			return err
		}
	}

	var sink *mobilegossip.EventJSONLSink
	if opts.EventsPath != "" {
		f, err := os.Create(opts.EventsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = mobilegossip.NewJSONLSink(sim.Bus(), f, mobilegossip.EventFilter{}, 1<<16)
	}

	runErr := driveLocal(sim, spec, opts)
	if sink != nil {
		if err := sink.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return runErr
	}

	res := sim.Result()
	cfg := sim.Config()
	if err := renderTable(opts.Out, tableView{
		algorithm: res.Algorithm.String(), topology: res.Topology,
		n: cfg.N, k: cfg.K, tau: spec.finalTau(), epsilon: cfg.Epsilon,
		solved: res.Solved, rounds: res.Rounds,
		connections: res.Connections, proposals: res.Proposals,
		controlBits: res.ControlBits, tokensMoved: res.TokensMoved,
		edgesAdded: res.EdgesAdded, edgesRemoved: res.EdgesRemoved,
		finalPotential: res.FinalPotential,
	}); err != nil {
		return err
	}
	if err := checkExpect(spec, outcome.Run{
		N: cfg.N, K: cfg.K, Solved: res.Solved, Rounds: res.Rounds,
		FinalPotential: res.FinalPotential, TokensMoved: res.TokensMoved,
		EdgesAdded: res.EdgesAdded, EdgesRemoved: res.EdgesRemoved,
	}, spec.Seed); err != nil {
		return err
	}
	writeExpectOK(opts.Out, spec.Expect)
	return nil
}

// driveLocal steps the session through the phase timeline, snapshotting
// at the requested round. Checkpoints at a phase boundary are written
// before the boundary's rebind; resuming one re-applies the rebind (the
// boundary check below is >=, not >), which is what keeps interrupted
// and uninterrupted runs byte-identical.
func driveLocal(sim *mobilegossip.Simulation, spec *Spec, opts Options) error {
	starts := spec.phaseStarts()
	for i := 1; i < len(spec.Phases); i++ {
		if starts[i] < sim.Round() {
			continue // resumed into a later phase; the checkpoint carried this one
		}
		if err := advanceTo(sim, starts[i], opts); err != nil {
			return err
		}
		if sim.Done() {
			return maybeFinalCheckpoint(sim, opts)
		}
		if err := applyPhase(sim, spec, i, opts); err != nil {
			return err
		}
	}
	end := 0
	if len(spec.Phases) > 0 && spec.Phases[len(spec.Phases)-1].Rounds > 0 {
		end = spec.totalPhaseRounds()
	}
	if err := advanceTo(sim, end, opts); err != nil {
		return err
	}
	return maybeFinalCheckpoint(sim, opts)
}

// advanceTo steps until the target round (0 = completion), writing the
// mid-run checkpoint when its boundary passes.
func advanceTo(sim *mobilegossip.Simulation, target int, opts Options) error {
	for !sim.Done() && (target <= 0 || sim.Round() < target) {
		if _, err := sim.Step(); err != nil {
			if errors.Is(err, mobilegossip.ErrSimulationDone) {
				return nil
			}
			return err
		}
		if opts.CheckpointPath != "" && opts.CheckpointAt > 0 && sim.Round() == opts.CheckpointAt {
			if err := writeCheckpoint(sim, opts); err != nil {
				return err
			}
		}
	}
	return nil
}

// maybeFinalCheckpoint writes the end-of-run snapshot (CheckpointAt 0).
func maybeFinalCheckpoint(sim *mobilegossip.Simulation, opts Options) error {
	if opts.CheckpointPath == "" || opts.CheckpointAt != 0 {
		return nil
	}
	return writeCheckpoint(sim, opts)
}

func writeCheckpoint(sim *mobilegossip.Simulation, opts Options) error {
	if err := sim.CheckpointFile(opts.CheckpointPath); err != nil {
		return err
	}
	fmt.Fprintf(opts.Log, "checkpoint written to %s at round %d (φ=%d)\n",
		opts.CheckpointPath, sim.Round(), sim.Potential())
	return nil
}

// applyPhase rebinds the session onto phase i's topology/tau.
func applyPhase(sim *mobilegossip.Simulation, spec *Spec, i int, opts Options) error {
	ph := spec.Phases[i]
	topo := sim.Config().Topology
	if ph.Topology != nil {
		var err error
		topo, err = topologyFromSpec(*ph.Topology)
		if err != nil {
			return err
		}
	}
	tau := sim.Config().Tau
	if ph.Tau != nil {
		tau = *ph.Tau
	}
	if err := sim.Rebind(topo, tau); err != nil {
		return fmt.Errorf("scenario %q: phase %q: %w", spec.Name, ph.Name, err)
	}
	fmt.Fprintf(opts.Log, "phase %s from round %d: %s\n",
		ph.Name, sim.Round()+1, sim.Result().Topology)
	return nil
}

// ---------------------------------------------------------------------
// Remote single runs: the same timeline driven over the gossipd API.

func runSingleRemote(spec *Spec, opts Options) error {
	ctx := context.Background()
	c := client.New(opts.Remote)

	var info client.SessionInfo
	if opts.ResumePath != "" {
		f, err := os.Open(opts.ResumePath)
		if err != nil {
			return err
		}
		info, err = c.Resume(ctx, f, opts.EventsPath != "")
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(opts.Log, "resumed from %s at round %d (φ=%d)\n",
			opts.ResumePath, info.Round, info.Potential)
	} else {
		req := spec.CreateRequest(spec.N, spec.K, spec.Seed, opts.EventsPath != "")
		req.EngineWorkers = opts.EngineWorkers
		var err error
		info, err = c.Create(ctx, req)
		if err != nil {
			return err
		}
	}
	defer c.Delete(context.Background(), info.ID)

	res, err := driveRemote(ctx, c, info, spec, opts)
	if err != nil {
		return err
	}
	if opts.EventsPath != "" {
		if err := downloadEvents(ctx, c, info.ID, opts.EventsPath); err != nil {
			return err
		}
	}
	if err := renderTable(opts.Out, tableView{
		algorithm: res.Algorithm, topology: res.Topology,
		n: res.Session.N, k: res.Session.K, tau: spec.finalTau(), epsilon: spec.Epsilon,
		solved: res.Solved, rounds: res.Rounds,
		connections: res.Connections, proposals: res.Proposals,
		controlBits: res.ControlBits, tokensMoved: res.TokensMoved,
		edgesAdded: res.EdgesAdded, edgesRemoved: res.EdgesRemoved,
		finalPotential: res.FinalPotential,
	}); err != nil {
		return err
	}
	if spec.Expect != nil {
		// The daemon evaluates the expect block with the same
		// internal/outcome checker; a violation comes back as HTTP 409,
		// i.e. a *client.APIError carrying the identical failure text.
		if err := c.Assert(ctx, info.ID, client.AssertRequest{
			Scenario: spec.Name, Seed: spec.Seed,
			Phase:  spec.phaseAt(res.Rounds),
			Expect: expectToWire(*spec.Expect),
		}); err != nil {
			return err
		}
	}
	writeExpectOK(opts.Out, spec.Expect)
	return nil
}

// driveRemote advances the remote session segment by segment: to each
// remaining phase boundary (rebinding there), through the checkpoint
// round if one is requested, then to the end of the timeline.
func driveRemote(ctx context.Context, c *client.Client, info client.SessionInfo, spec *Spec, opts Options) (client.RunResult, error) {
	var res client.RunResult
	res.Session = info
	cur := info.Round
	done := info.Done
	ckptWritten := false

	snapshot := func() error {
		ckptWritten = true
		return fetchCheckpoint(ctx, c, res.Session.ID, opts)
	}

	// runTo advances to an absolute round (0 = completion), splitting at
	// the checkpoint boundary so the snapshot lands exactly there. A
	// snapshot at a phase boundary is taken by the caller, before the
	// rebind, matching the local driver. refresh forces one run call
	// even at the target, so the final result fields are always fresh
	// (a no-op on the finished engine).
	runTo := func(target int, refresh bool) error {
		wantCkpt := opts.CheckpointPath != "" && opts.CheckpointAt > 0 && !ckptWritten
		if wantCkpt && opts.CheckpointAt > cur && (target <= 0 || opts.CheckpointAt < target) && !done {
			if err := runSegment(ctx, c, &res, &cur, &done, opts.CheckpointAt); err != nil {
				return err
			}
			if cur == opts.CheckpointAt {
				if err := snapshot(); err != nil {
					return err
				}
			}
		}
		if target > 0 && cur >= target && !refresh {
			return nil
		}
		if err := runSegment(ctx, c, &res, &cur, &done, target); err != nil {
			return err
		}
		if opts.CheckpointPath != "" && opts.CheckpointAt > 0 && !ckptWritten && cur == opts.CheckpointAt {
			return snapshot()
		}
		return nil
	}

	starts := spec.phaseStarts()
	for i := 1; i < len(spec.Phases); i++ {
		if starts[i] < cur {
			continue
		}
		if err := runTo(starts[i], false); err != nil {
			return res, err
		}
		if done {
			return res, maybeFetchFinalCheckpoint(ctx, c, &res, opts)
		}
		if err := rebindRemote(ctx, c, &res, spec, i, opts); err != nil {
			return res, err
		}
	}
	end := 0
	if len(spec.Phases) > 0 && spec.Phases[len(spec.Phases)-1].Rounds > 0 {
		end = spec.totalPhaseRounds()
	}
	if err := runTo(end, true); err != nil {
		return res, err
	}
	return res, maybeFetchFinalCheckpoint(ctx, c, &res, opts)
}

// runSegment issues one relative run call taking the session from cur to
// the absolute target (0 = completion).
func runSegment(ctx context.Context, c *client.Client, res *client.RunResult, cur *int, done *bool, target int) error {
	rounds := 0
	if target > 0 {
		rounds = target - *cur
		if rounds <= 0 {
			// Already at (or past) the target — possible only when the
			// engine finished there; refresh the result without moving.
			rounds = 1
		}
	}
	r, err := c.Run(ctx, res.Session.ID, rounds)
	if err != nil {
		return err
	}
	*res = r
	*cur = r.Session.Round
	*done = r.Session.Done
	return nil
}

func rebindRemote(ctx context.Context, c *client.Client, res *client.RunResult, spec *Spec, i int, opts Options) error {
	ph := spec.Phases[i]
	req := client.RebindRequest{Topology: effectiveTopologySpec(spec, i)}
	req.Tau = effectiveTau(spec, i)
	info, err := c.Rebind(ctx, res.Session.ID, req)
	if err != nil {
		return fmt.Errorf("scenario %q: phase %q: %w", spec.Name, ph.Name, err)
	}
	res.Session = info
	fmt.Fprintf(opts.Log, "phase %s from round %d: %s\n", ph.Name, info.Round+1, info.Topology)
	return nil
}

// effectiveTopologySpec resolves phase i's topology block: the last
// explicit block at or before i (falling back to the top level).
func effectiveTopologySpec(spec *Spec, i int) client.TopologySpec {
	t := spec.Topology
	for j := 1; j <= i; j++ {
		if spec.Phases[j].Topology != nil {
			t = *spec.Phases[j].Topology
		}
	}
	return t
}

// effectiveTau resolves phase i's stability factor the same way.
func effectiveTau(spec *Spec, i int) int {
	tau := spec.Tau
	for j := 1; j <= i; j++ {
		if spec.Phases[j].Tau != nil {
			tau = *spec.Phases[j].Tau
		}
	}
	return tau
}

func maybeFetchFinalCheckpoint(ctx context.Context, c *client.Client, res *client.RunResult, opts Options) error {
	if opts.CheckpointPath == "" || opts.CheckpointAt != 0 {
		return nil
	}
	return fetchCheckpoint(ctx, c, res.Session.ID, opts)
}

func fetchCheckpoint(ctx context.Context, c *client.Client, id string, opts Options) error {
	rc, err := c.Checkpoint(ctx, id)
	if err != nil {
		return err
	}
	defer rc.Close()
	f, err := os.Create(opts.CheckpointPath)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, rc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := c.State(ctx, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(opts.Log, "checkpoint written to %s at round %d (φ=%d)\n",
		opts.CheckpointPath, info.Round, info.Potential)
	return nil
}

func downloadEvents(ctx context.Context, c *client.Client, id, path string) error {
	rc, err := c.Events(ctx, id, client.EventOptions{})
	if err != nil {
		return err
	}
	defer rc.Close()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, rc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---------------------------------------------------------------------
// Grids: the deterministic sweep, local or expanded client-side.

// gridRun is one cell's outcome, the unit both grid paths aggregate.
type gridRun struct {
	topology       string
	algorithm      string
	solved         bool
	rounds         int
	connections    int64
	tokensMoved    int64
	edgesAdded     int64
	edgesRemoved   int64
	finalPotential int
}

func runGridLocal(spec *Spec, opts Options) error {
	pts := spec.points()
	cfgs := make([]mobilegossip.Config, len(pts))
	for i, pt := range pts {
		cfg, err := spec.Config(pt.n, pt.k)
		if err != nil {
			return err
		}
		if opts.EngineWorkers != 0 {
			cfg.EngineWorkers = opts.EngineWorkers
		}
		cfgs[i] = cfg
	}
	sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points: cfgs, Trials: spec.Grid.Trials, Seed: spec.Seed,
	})
	if err != nil {
		return err
	}
	runs := make([][]gridRun, len(pts))
	for p, pr := range sr.Points {
		runs[p] = make([]gridRun, len(pr.Runs))
		for t, r := range pr.Runs {
			runs[p][t] = gridRun{
				topology: r.Topology, algorithm: r.Algorithm.String(),
				solved: r.Solved, rounds: r.Rounds,
				connections: r.Connections, tokensMoved: r.TokensMoved,
				edgesAdded: r.EdgesAdded, edgesRemoved: r.EdgesRemoved,
				finalPotential: r.FinalPotential,
			}
		}
	}
	return finishGrid(spec, opts, runs)
}

func runGridRemote(spec *Spec, opts Options) error {
	// The daemon has no sweep endpoint; the grid is expanded client-side
	// into one session per (point, trial) cell, each seeded with the
	// exact cell seed RunSweep would derive — so the aggregate table is
	// byte-identical to the local sweep's.
	ctx := context.Background()
	c := client.New(opts.Remote)
	pts := spec.points()
	trials := spec.Grid.Trials
	runs := make([][]gridRun, len(pts))
	for p, pt := range pts {
		runs[p] = make([]gridRun, trials)
		for t := 0; t < trials; t++ {
			seed := mobilegossip.SweepSeed(spec.Seed, p*trials+t)
			req := spec.CreateRequest(pt.n, pt.k, seed, false)
			req.EngineWorkers = opts.EngineWorkers
			info, err := c.Create(ctx, req)
			if err != nil {
				return fmt.Errorf("grid point %d trial %d: %w", p, t, err)
			}
			res, err := c.Run(ctx, info.ID, 0)
			if derr := c.Delete(ctx, info.ID); err == nil {
				err = derr
			}
			if err != nil {
				return fmt.Errorf("grid point %d trial %d: %w", p, t, err)
			}
			runs[p][t] = gridRun{
				topology: res.Topology, algorithm: res.Algorithm,
				solved: res.Solved, rounds: res.Rounds,
				connections: res.Connections, tokensMoved: res.TokensMoved,
				edgesAdded: res.EdgesAdded, edgesRemoved: res.EdgesRemoved,
				finalPotential: res.FinalPotential,
			}
		}
	}
	return finishGrid(spec, opts, runs)
}

// finishGrid renders the aggregate table (gossipsim's sweep columns,
// without the timing footer) and evaluates the expect block against
// every cell.
func finishGrid(spec *Spec, opts Options, runs [][]gridRun) error {
	pts := spec.points()
	tw := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\ttopology\tn\tk\ttrials\tsolved\trounds mean\t[min,max]\tconns mean")
	for p, pt := range pts {
		cell := runs[p]
		solved := 0
		minR, maxR := cell[0].rounds, cell[0].rounds
		var sumR, sumConns float64
		for _, r := range cell {
			if r.solved {
				solved++
			}
			sumR += float64(r.rounds)
			sumConns += float64(r.connections)
			minR = min(minR, r.rounds)
			maxR = max(maxR, r.rounds)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t[%d,%d]\t%.0f\n",
			cell[0].algorithm, cell[0].topology, pt.n, pt.k,
			len(cell), solved, sumR/float64(len(cell)), minR, maxR,
			sumConns/float64(len(cell)))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	trials := spec.Grid.Trials
	for p, pt := range pts {
		for t, r := range runs[p] {
			if err := checkExpect(spec, outcome.Run{
				N: pt.n, K: pt.k, Solved: r.solved, Rounds: r.rounds,
				FinalPotential: r.finalPotential, TokensMoved: r.tokensMoved,
				EdgesAdded: r.edgesAdded, EdgesRemoved: r.edgesRemoved,
			}, mobilegossip.SweepSeed(spec.Seed, p*trials+t)); err != nil {
				return err
			}
		}
	}
	writeExpectOK(opts.Out, spec.Expect)
	return nil
}
