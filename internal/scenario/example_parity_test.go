package scenario_test

// Example-parity: the examples/ programs that point at committed
// scenarios must print byte-for-byte the scenario runner's output — the
// same bytes the golden conformance suite pins. A drifting example (or a
// broken Locate walk) fails here, not in a reader's terminal.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"mobilegossip/internal/scenario"
)

// scenarioExamples maps each slimmed example to the scenario it runs.
var scenarioExamples = []string{"festival", "disaster", "jammer", "metropolis"}

func TestExampleParity(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs each example via `go run`; covered by the full suite")
	}
	root := filepath.Dir(scenariosDir(t))
	for _, name := range scenarioExamples {
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join(scenariosDir(t), "golden", name+".table.txt"))
			if err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "run", "./examples/"+name, "-short")
			cmd.Dir = root
			var out, errb bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &errb
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, errb.String())
			}
			compare(t, "example stdout vs scenario golden", out.Bytes(), want)
		})
	}
}

// TestLocateFindsLibraryFromSubdirs pins the upward walk the examples
// rely on: Locate resolves the same file from the repository root and
// from a nested directory, and errors clearly outside the repository.
func TestLocateFindsLibraryFromSubdirs(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })

	// This test runs from internal/scenario — two levels under the root.
	p, err := scenario.Locate("festival")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(scenariosDir(t), "festival.yaml"); p != want {
		t.Fatalf("Locate = %q, want %q", p, want)
	}

	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Locate("festival"); err == nil {
		t.Fatal("Locate outside the repository should error")
	}
}
