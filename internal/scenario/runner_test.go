package scenario_test

// Assertion-failure paths of the runner: a violated expect block is a
// *scenario.AssertionError locally and a *client.APIError (HTTP 409)
// remotely — carrying the exact same outcome.FormatFailure text, so a
// scenario that fails its assertions reads identically however it ran.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilegossip/client"
	"mobilegossip/internal/scenario"
)

// failingYAML ends in phase "finish" and demands a 1-round solve no
// sharedbit run can deliver, so the expect block always trips.
const failingYAML = `version: 1
name: failing
seed: 4
algorithm: sharedbit
n: 12
k: 2
tau: 1
topology:
  kind: complete
phases:
  - name: warmup
    rounds: 2
  - name: finish
    topology:
      kind: complete
expect:
  solved: true
  solved_by: 1
`

func parseFailing(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(failingYAML))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func runFailing(t *testing.T, opts scenario.Options) error {
	t.Helper()
	opts.Out = io.Discard
	opts.Log = io.Discard
	err := scenario.Run(parseFailing(t), opts)
	if err == nil {
		t.Fatal("a violated expect block must fail the run")
	}
	return err
}

func TestAssertionFailureLocal(t *testing.T) {
	err := runFailing(t, scenario.Options{})
	var aerr *scenario.AssertionError
	if !errors.As(err, &aerr) {
		t.Fatalf("local failure should be *AssertionError, got %T: %v", err, err)
	}
	if aerr.Scenario != "failing" || aerr.Seed != 4 || aerr.Phase != "finish" {
		t.Fatalf("AssertionError fields = %+v", aerr)
	}
	// The diff-style message names the scenario, seed, ending phase, the
	// violated assertion, and what was expected vs observed.
	for _, sub := range []string{
		`scenario "failing"`, "seed 4", `phase "finish"`,
		"solved_by", "expected rounds ≤ 1",
	} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("failure %q missing %q", err, sub)
		}
	}
}

// TestAssertionFailureRemote: the same scenario against gossipd comes
// back as a 409 APIError whose message is byte-identical to the local
// AssertionError's — the daemon runs the same outcome checker.
func TestAssertionFailureRemote(t *testing.T) {
	localErr := runFailing(t, scenario.Options{})
	remoteErr := runFailing(t, scenario.Options{Remote: startDaemon(t)})
	var apiErr *client.APIError
	if !errors.As(remoteErr, &apiErr) {
		t.Fatalf("remote failure should be *client.APIError, got %T: %v", remoteErr, remoteErr)
	}
	if apiErr.Status != 409 {
		t.Fatalf("assertion failure status = %d, want 409", apiErr.Status)
	}
	if apiErr.Message != localErr.Error() {
		t.Fatalf("remote failure text diverged from local:\nremote: %q\nlocal:  %q",
			apiErr.Message, localErr.Error())
	}
}

// TestAssertionFailureGrid: grid cells are checked too, and the failure
// names the cell's derived sweep seed rather than the base seed.
func TestAssertionFailureGrid(t *testing.T) {
	spec, err := scenario.Parse([]byte(`version: 1
name: failing-grid
seed: 9
algorithm: blindmatch
topology:
  kind: complete
grid:
  n: [8]
  k: [2]
  trials: 1
expect:
  solved_by: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	err = scenario.Run(spec, scenario.Options{Out: io.Discard, Log: io.Discard})
	var aerr *scenario.AssertionError
	if !errors.As(err, &aerr) {
		t.Fatalf("grid failure should be *AssertionError, got %T: %v", err, err)
	}
	if aerr.Seed == 9 {
		t.Fatal("grid failure should carry the cell's derived sweep seed, not the base seed")
	}
}

// TestFinalCheckpoint: CheckpointAt 0 snapshots when the run finishes,
// and the local and remote end-of-run snapshots are byte-identical.
func TestFinalCheckpoint(t *testing.T) {
	spec, err := scenario.Parse([]byte(`version: 1
name: final-ckpt
seed: 2
algorithm: sharedbit
n: 8
k: 2
tau: 1
topology:
  kind: complete
expect:
  solved: true
`))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	local := filepath.Join(tmp, "local.ckpt")
	var out bytes.Buffer
	if err := scenario.Run(spec, scenario.Options{
		CheckpointPath: local, Out: &out, Log: io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	// A single-assertion expect block reads in the singular.
	if !strings.Contains(out.String(), "expect: ok (1 check)\n") {
		t.Fatalf("output missing singular expect summary:\n%s", out.String())
	}

	remote := filepath.Join(tmp, "remote.ckpt")
	if err := scenario.Run(spec, scenario.Options{
		Remote: startDaemon(t), CheckpointPath: remote,
		Out: io.Discard, Log: io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	lb, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, rb) {
		t.Fatal("end-of-run checkpoints differ local vs remote")
	}
}

func TestRunFileErrors(t *testing.T) {
	if err := scenario.RunFile(filepath.Join(t.TempDir(), "nope.yaml"), scenario.Options{}); err == nil {
		t.Error("RunFile on a missing path should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("version: 9\nname: x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := scenario.RunFile(bad, scenario.Options{})
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("RunFile on an invalid spec should surface validation, got %v", err)
	}
	if !strings.Contains(err.Error(), "bad.yaml") {
		t.Errorf("file-level error should name the file, got %v", err)
	}
}

// TestGridRejectsSingleRunOptions: checkpoints/events are single-run
// machinery; asking for them on a grid is an execution error, not an
// assertion failure.
func TestGridRejectsSingleRunOptions(t *testing.T) {
	spec, err := scenario.Parse([]byte(`version: 1
name: g
seed: 1
algorithm: blindmatch
topology:
  kind: complete
grid:
  n: [4]
  k: [1]
`))
	if err != nil {
		t.Fatal(err)
	}
	err = scenario.Run(spec, scenario.Options{
		CheckpointPath: "x.ckpt", Out: io.Discard, Log: io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "single runs, not grids") {
		t.Fatalf("grid with -checkpoint should be refused, got %v", err)
	}
	var aerr *scenario.AssertionError
	if errors.As(err, &aerr) {
		t.Fatal("option misuse must not masquerade as an assertion failure")
	}
}
