// Package scenario implements the declarative scenario format
// (DESIGN.md §15): versioned YAML/JSON files describing a full
// simulation — seed, algorithm, topology, adversary, phased timelines,
// parameter grids, and expected-outcome assertions — that `gossipsim
// run` executes locally or against a gossipd daemon with byte-identical
// output, and that the golden-trace conformance suite pins in CI.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/outcome"
)

// Version is the spec format version this build reads and writes.
const Version = 1

// Spec is one scenario file, normalized. Field names (via the JSON tags)
// are the file format: the same tags parse JSON scenarios directly and
// YAML scenarios through the yamlToJSON translator. The topology block
// reuses the daemon wire shape (client.TopologySpec), so a scenario
// says "kind: waypoint" exactly like a create request does and the two
// vocabularies cannot drift.
type Spec struct {
	// Version must be 1 (readers reject other versions up front, so a
	// future format change cannot be silently misread).
	Version int `json:"version"`
	// Name identifies the scenario in output, goldens, and assertion
	// failures: lowercase letters, digits, hyphens.
	Name string `json:"name"`
	// Description is a one-line human summary, echoed in the run header.
	Description string `json:"description,omitempty"`
	// Seed fully determines the execution (0 is a valid seed; grids
	// split per-cell seeds from it via mobilegossip.SweepSeed).
	Seed uint64 `json:"seed"`
	// Algorithm is the protocol wire name (sharedbit, blindmatch, ...).
	Algorithm string `json:"algorithm"`
	// N and K are the network and token-set sizes (overridden per point
	// by a grid's n/k lists).
	N int `json:"n"`
	K int `json:"k"`
	// Tau is the stability factor (0 = static).
	Tau int `json:"tau,omitempty"`
	// Epsilon, in (0, 1), relaxes the objective to ε-gossip.
	Epsilon float64 `json:"epsilon,omitempty"`
	// TagBits ≥ 2 selects the multi-bit advertisement generalization.
	TagBits int `json:"tag_bits,omitempty"`
	// MaxRounds aborts unfinished runs (0 = engine default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Topology is the initial (or only) topology block.
	Topology client.TopologySpec `json:"topology"`
	// Phases, when present, split the run into an ordered timeline:
	// phase 1 starts at round 0 with the top-level topology/tau (it may
	// not override them — that would make the file say one thing twice),
	// and each later phase rebinds the topology schedule and/or tau at
	// its starting round boundary (Simulation.Rebind). Mutually
	// exclusive with Grid.
	Phases []Phase `json:"phases,omitempty"`
	// Grid expands the scenario into a deterministic sweep over the
	// n × k cross product, trials runs per point. Mutually exclusive
	// with Phases.
	Grid *Grid `json:"grid,omitempty"`
	// Expect holds the post-run assertions; for grids they are evaluated
	// against every run of every point.
	Expect *outcome.Expect `json:"expect,omitempty"`
}

// Phase is one segment of a phased timeline.
type Phase struct {
	// Name labels the phase in output and assertion failures.
	Name string `json:"name"`
	// Rounds is the phase's length. It must be ≥ 1 everywhere except the
	// last phase, where 0 means "run to completion".
	Rounds int `json:"rounds,omitempty"`
	// Topology, if set, is rebound at the phase's starting round
	// boundary (nil keeps the previous phase's schedule).
	Topology *client.TopologySpec `json:"topology,omitempty"`
	// Tau, if set, replaces the stability factor from the phase start
	// (nil keeps the previous value).
	Tau *int `json:"tau,omitempty"`
}

// Grid is the parameter-sweep block.
type Grid struct {
	// N and K are the axis values; an empty axis uses the top-level
	// value. Points are the cross product in n-major order.
	N []int `json:"n,omitempty"`
	K []int `json:"k,omitempty"`
	// Trials is the per-point repetition count (normalized to ≥ 1).
	Trials int `json:"trials,omitempty"`
}

// Parse reads a scenario from YAML or JSON bytes, strict-decodes it
// (unknown fields are errors), normalizes defaults, and validates it.
func Parse(data []byte) (*Spec, error) {
	jsonBytes, err := yamlToJSON(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing content after the document")
	}
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// ParseFile is Parse over a file.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// normalize fills the defaults that make emission canonical: after
// normalize, EncodeYAML∘Parse is the identity on the emitted bytes.
func (s *Spec) normalize() {
	if s.Grid != nil && s.Grid.Trials <= 0 {
		s.Grid.Trials = 1
	}
	if s.Expect != nil && s.Expect.Empty() {
		s.Expect = nil
	}
}

// Validate checks the spec's internal consistency, with errors that name
// the offending field.
func (s *Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Version != Version {
		if s.Version == 0 {
			return fmt.Errorf("scenario: missing required field \"version\" (this build reads version: %d)", Version)
		}
		return fmt.Errorf("scenario: unsupported version %d (this build reads version: %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing required field \"name\"")
	}
	for _, r := range s.Name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fail("name must be lowercase letters, digits, and hyphens, got %q", s.Name)
		}
	}
	alg, err := mobilegossip.ParseAlgorithm(s.Algorithm)
	if err != nil {
		if s.Algorithm == "" {
			return fail("missing required field \"algorithm\"")
		}
		return fail("algorithm: %v", err)
	}
	gridHasN := s.Grid != nil && len(s.Grid.N) > 0
	gridHasK := s.Grid != nil && len(s.Grid.K) > 0
	if !gridHasN && s.N < 2 {
		return fail("n must be at least 2, got %d", s.N)
	}
	if !gridHasK && s.K < 1 {
		return fail("k must be at least 1, got %d", s.K)
	}
	if !gridHasN && !gridHasK && s.K > s.N {
		return fail("k must be in [1, n=%d], got %d", s.N, s.K)
	}
	if s.Tau < 0 {
		return fail("tau must be >= 0 (0 = static), got %d", s.Tau)
	}
	if s.Epsilon < 0 || s.Epsilon >= 1 {
		return fail("epsilon must be in [0, 1), got %v", s.Epsilon)
	}
	if s.MaxRounds < 0 {
		return fail("max_rounds must be >= 0, got %d", s.MaxRounds)
	}
	if s.Topology.Kind == "" {
		return fail("missing required field \"topology.kind\"")
	}
	if _, err := topologyFromSpec(s.Topology); err != nil {
		return fail("topology: %v", err)
	}
	if len(s.Phases) > 0 && s.Grid != nil {
		return fail("\"phases\" and \"grid\" are mutually exclusive (a sweep of phased runs is not supported)")
	}
	if alg == mobilegossip.AlgCrowdedBin && s.Tau > 0 {
		return fail("algorithm crowdedbin requires a static topology (tau: 0), got tau: %d", s.Tau)
	}
	if err := s.validatePhases(alg); err != nil {
		return err
	}
	if err := s.validateGrid(); err != nil {
		return err
	}
	if s.Expect != nil {
		if err := s.Expect.Validate(); err != nil {
			return fail("%v", err)
		}
	}
	return nil
}

func (s *Spec) validatePhases(alg mobilegossip.Algorithm) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if len(s.Phases) == 0 {
		return nil
	}
	if len(s.Phases) < 2 {
		return fail("a phased timeline needs at least 2 phases (drop the \"phases\" block for a single-phase run)")
	}
	if s.Phases[len(s.Phases)-1].Rounds > 0 && s.MaxRounds != 0 {
		return fail("max_rounds conflicts with a fully fixed-length timeline (the phases already end the run at round %d); give the last phase rounds: 0 to run to completion under max_rounds", s.totalPhaseRounds())
	}
	seen := map[string]bool{}
	for i, ph := range s.Phases {
		where := fmt.Sprintf("phases[%d]", i)
		if ph.Name != "" {
			where = fmt.Sprintf("phase %q", ph.Name)
		}
		if ph.Name == "" {
			return fail("%s: missing required field \"name\"", where)
		}
		if seen[ph.Name] {
			return fail("duplicate phase name %q", ph.Name)
		}
		seen[ph.Name] = true
		last := i == len(s.Phases)-1
		if ph.Rounds < 0 {
			return fail("%s: rounds must be >= 0, got %d", where, ph.Rounds)
		}
		if ph.Rounds == 0 && !last {
			return fail("%s: rounds: 0 (run to completion) is only valid on the last phase", where)
		}
		if i == 0 && (ph.Topology != nil || ph.Tau != nil) {
			return fail("%s starts the run: set its topology/tau at the top level, not in the phase", where)
		}
		if ph.Topology != nil {
			if ph.Topology.Kind == "" {
				return fail("%s: missing required field \"topology.kind\"", where)
			}
			if _, err := topologyFromSpec(*ph.Topology); err != nil {
				return fail("%s: topology: %v", where, err)
			}
		}
		tau := s.Tau
		if ph.Tau != nil {
			tau = *ph.Tau
			if tau < 0 {
				return fail("%s: tau must be >= 0, got %d", where, tau)
			}
		}
		if alg == mobilegossip.AlgCrowdedBin && tau > 0 {
			return fail("%s: algorithm crowdedbin requires a static topology (tau: 0)", where)
		}
	}
	return nil
}

func (s *Spec) validateGrid() error {
	if s.Grid == nil {
		return nil
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	for _, n := range s.Grid.N {
		if n < 2 {
			return fail("grid.n: every value must be at least 2, got %d", n)
		}
	}
	for _, k := range s.Grid.K {
		if k < 1 {
			return fail("grid.k: every value must be at least 1, got %d", k)
		}
	}
	for _, p := range s.points() {
		if p.k > p.n {
			return fail("grid point (n=%d, k=%d): k exceeds n", p.n, p.k)
		}
	}
	return nil
}

// gridPoint is one (n, k) cell of the expanded grid.
type gridPoint struct{ n, k int }

// points expands the grid (or the single top-level point) in n-major
// order — the deterministic sweep order the output table follows.
func (s *Spec) points() []gridPoint {
	ns, ks := []int{s.N}, []int{s.K}
	if s.Grid != nil {
		if len(s.Grid.N) > 0 {
			ns = s.Grid.N
		}
		if len(s.Grid.K) > 0 {
			ks = s.Grid.K
		}
	}
	var pts []gridPoint
	for _, n := range ns {
		for _, k := range ks {
			pts = append(pts, gridPoint{n: n, k: k})
		}
	}
	return pts
}

// totalPhaseRounds sums the phase lengths (meaningful only when the last
// phase is fixed-length).
func (s *Spec) totalPhaseRounds() int {
	total := 0
	for _, ph := range s.Phases {
		total += ph.Rounds
	}
	return total
}

// effectiveMaxRounds is the round budget the engine actually gets: a
// fully fixed-length timeline ends the run at its total (so both the
// local engine and the daemon emit session_end there and the event
// streams agree); otherwise the spec's max_rounds applies.
func (s *Spec) effectiveMaxRounds() int {
	if len(s.Phases) > 0 && s.Phases[len(s.Phases)-1].Rounds > 0 {
		return s.totalPhaseRounds()
	}
	return s.MaxRounds
}

// phaseStarts returns each phase's starting round (phase 0 starts at 0).
func (s *Spec) phaseStarts() []int {
	starts := make([]int, len(s.Phases))
	r := 0
	for i, ph := range s.Phases {
		starts[i] = r
		r += ph.Rounds
	}
	return starts
}

// phaseAt names the phase containing round r (1-based, as in Result),
// empty for unphased scenarios.
func (s *Spec) phaseAt(r int) string {
	if len(s.Phases) == 0 {
		return ""
	}
	starts := s.phaseStarts()
	name := s.Phases[0].Name
	for i := 1; i < len(s.Phases); i++ {
		if r > starts[i] {
			name = s.Phases[i].Name
		}
	}
	return name
}

// Config assembles the mobilegossip.Config for a local run at the given
// grid point (for unphased/ungridded scenarios pass s.N, s.K).
func (s *Spec) Config(n, k int) (mobilegossip.Config, error) {
	alg, err := mobilegossip.ParseAlgorithm(s.Algorithm)
	if err != nil {
		return mobilegossip.Config{}, err
	}
	topo, err := topologyFromSpec(s.Topology)
	if err != nil {
		return mobilegossip.Config{}, err
	}
	return mobilegossip.Config{
		Algorithm: alg, N: n, K: k, Topology: topo,
		Tau: s.Tau, Epsilon: s.Epsilon, TagBits: s.TagBits,
		Seed: s.Seed, MaxRounds: s.effectiveMaxRounds(),
	}, nil
}

// CreateRequest assembles the daemon create request for a remote run at
// the given grid point and seed.
func (s *Spec) CreateRequest(n, k int, seed uint64, recordEvents bool) client.CreateRequest {
	return client.CreateRequest{
		Algorithm: s.Algorithm, N: n, K: k, Topology: s.Topology,
		Tau: s.Tau, Epsilon: s.Epsilon, TagBits: s.TagBits,
		Seed: seed, MaxRounds: s.effectiveMaxRounds(), RecordEvents: recordEvents,
	}
}

// topologyFromSpec maps the wire topology block onto mobilegossip.Topology —
// the same mapping the daemon applies to create requests.
func topologyFromSpec(spec client.TopologySpec) (mobilegossip.Topology, error) {
	var t mobilegossip.Topology
	kind, err := mobilegossip.ParseTopologyKind(spec.Kind)
	if err != nil {
		return t, err
	}
	t = mobilegossip.Topology{
		Kind:       kind,
		Degree:     spec.Degree,
		P:          spec.P,
		Rows:       spec.Rows,
		Cols:       spec.Cols,
		CliqueSize: spec.CliqueSize,
		PathLen:    spec.PathLen,
		Radius:     spec.Radius,
		Attach:     spec.Attach,
		Speed:      spec.Speed,
		Pause:      spec.Pause,
		LevyAlpha:  spec.LevyAlpha,
		Groups:     spec.Groups,
		Attract:    spec.Attract,
		Period:     spec.Period,
		AdvBudget:  spec.AdvBudget,
		AdvParts:   spec.AdvParts,
		AdvPeriod:  spec.AdvPeriod,
	}
	if spec.Adversary != "" {
		adv, err := mobilegossip.ParseAdversaryKind(spec.Adversary)
		if err != nil {
			return t, err
		}
		t.Adversary = adv
	}
	if spec.Relabel != "" {
		rel, err := mobilegossip.ParseRelabelKind(spec.Relabel)
		if err != nil {
			return t, err
		}
		t.Relabel = rel
	}
	return t, nil
}

// EncodeYAML renders the normalized spec canonically: fixed field order,
// two-space indentation, zero values omitted. Parse(EncodeYAML(s))
// yields a spec that encodes to the same bytes — the round-trip fixed
// point FuzzScenarioSpec enforces.
func (s *Spec) EncodeYAML() []byte {
	var b strings.Builder
	y := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	y("version: %d\n", s.Version)
	y("name: %s\n", yamlString(s.Name))
	if s.Description != "" {
		y("description: %s\n", yamlString(s.Description))
	}
	y("seed: %d\n", s.Seed)
	y("algorithm: %s\n", yamlString(s.Algorithm))
	y("n: %d\n", s.N)
	y("k: %d\n", s.K)
	if s.Tau != 0 {
		y("tau: %d\n", s.Tau)
	}
	if s.Epsilon != 0 {
		y("epsilon: %s\n", yamlFloat(s.Epsilon))
	}
	if s.TagBits != 0 {
		y("tag_bits: %d\n", s.TagBits)
	}
	if s.MaxRounds != 0 {
		y("max_rounds: %d\n", s.MaxRounds)
	}
	y("topology:\n")
	encodeTopology(&b, "  ", s.Topology)
	if len(s.Phases) > 0 {
		y("phases:\n")
		for _, ph := range s.Phases {
			y("  - name: %s\n", yamlString(ph.Name))
			if ph.Rounds != 0 {
				y("    rounds: %d\n", ph.Rounds)
			}
			if ph.Tau != nil {
				y("    tau: %d\n", *ph.Tau)
			}
			if ph.Topology != nil {
				y("    topology:\n")
				encodeTopology(&b, "      ", *ph.Topology)
			}
		}
	}
	if s.Grid != nil {
		y("grid:\n")
		if len(s.Grid.N) > 0 {
			y("  n: %s\n", yamlIntList(s.Grid.N))
		}
		if len(s.Grid.K) > 0 {
			y("  k: %s\n", yamlIntList(s.Grid.K))
		}
		y("  trials: %d\n", s.Grid.Trials)
	}
	if s.Expect != nil {
		y("expect:\n")
		e := s.Expect
		if e.Solved != nil {
			y("  solved: %v\n", *e.Solved)
		}
		if e.SolvedBy != 0 {
			y("  solved_by: %d\n", e.SolvedBy)
		}
		if e.MinRounds != 0 {
			y("  min_rounds: %d\n", e.MinRounds)
		}
		if e.MaxFinalPotential != nil {
			y("  max_final_potential: %d\n", *e.MaxFinalPotential)
		}
		if e.MinCoverage != 0 {
			y("  min_coverage: %s\n", yamlFloat(e.MinCoverage))
		}
		if e.MaxChurnPerRound != 0 {
			y("  max_churn_per_round: %s\n", yamlFloat(e.MaxChurnPerRound))
		}
		if e.MinTokensMoved != 0 {
			y("  min_tokens_moved: %d\n", e.MinTokensMoved)
		}
		if e.MaxTokensMoved != 0 {
			y("  max_tokens_moved: %d\n", e.MaxTokensMoved)
		}
	}
	return []byte(b.String())
}

func encodeTopology(b *strings.Builder, indent string, t client.TopologySpec) {
	y := func(format string, args ...any) {
		b.WriteString(indent)
		fmt.Fprintf(b, format, args...)
	}
	y("kind: %s\n", yamlString(t.Kind))
	if t.Degree != 0 {
		y("degree: %d\n", t.Degree)
	}
	if t.P != 0 {
		y("p: %s\n", yamlFloat(t.P))
	}
	if t.Rows != 0 {
		y("rows: %d\n", t.Rows)
	}
	if t.Cols != 0 {
		y("cols: %d\n", t.Cols)
	}
	if t.CliqueSize != 0 {
		y("clique_size: %d\n", t.CliqueSize)
	}
	if t.PathLen != 0 {
		y("path_len: %d\n", t.PathLen)
	}
	if t.Radius != 0 {
		y("radius: %s\n", yamlFloat(t.Radius))
	}
	if t.Attach != 0 {
		y("attach: %d\n", t.Attach)
	}
	if t.Speed != 0 {
		y("speed: %s\n", yamlFloat(t.Speed))
	}
	if t.Pause != 0 {
		y("pause: %d\n", t.Pause)
	}
	if t.LevyAlpha != 0 {
		y("levy_alpha: %s\n", yamlFloat(t.LevyAlpha))
	}
	if t.Groups != 0 {
		y("groups: %d\n", t.Groups)
	}
	if t.Attract != 0 {
		y("attract: %s\n", yamlFloat(t.Attract))
	}
	if t.Period != 0 {
		y("period: %d\n", t.Period)
	}
	if t.Adversary != "" {
		y("adversary: %s\n", yamlString(t.Adversary))
	}
	if t.AdvBudget != 0 {
		y("adv_budget: %d\n", t.AdvBudget)
	}
	if t.AdvParts != 0 {
		y("adv_parts: %d\n", t.AdvParts)
	}
	if t.AdvPeriod != 0 {
		y("adv_period: %d\n", t.AdvPeriod)
	}
	if t.Relabel != "" {
		y("relabel: %s\n", yamlString(t.Relabel))
	}
}

// yamlString renders a string scalar, quoting when a bare rendering
// would re-parse as something else (or not at all).
func yamlString(s string) string {
	if s == "" {
		return `""`
	}
	plain := true
	for _, r := range s {
		if r < 0x20 || r == 0x7f || strings.ContainsRune(`"'#:[]{},&*|>%@`+"`", r) {
			plain = false
			break
		}
	}
	if plain && !strings.HasPrefix(s, "-") && !strings.HasPrefix(s, " ") &&
		!strings.HasSuffix(s, " ") && s != "null" && s != "~" && s != "true" && s != "false" {
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			return s
		}
	}
	out, _ := json.Marshal(s)
	return string(out)
}

// yamlFloat renders a float scalar in the shortest form that re-parses
// to the same value and is also a valid JSON number.
func yamlFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !json.Valid([]byte(s)) {
		// "g" may produce exponents like 1e+05, which JSON rejects;
		// normalize through the JSON encoder.
		out, _ := json.Marshal(f)
		s = string(out)
	}
	return s
}

func yamlIntList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
