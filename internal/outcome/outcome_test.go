package outcome

import (
	"strings"
	"testing"
)

func boolp(b bool) *bool { return &b }
func intp(i int) *int    { return &i }

var solvedRun = Run{
	N: 100, K: 10, Solved: true, Rounds: 250, FinalPotential: 0,
	TokensMoved: 990, EdgesAdded: 400, EdgesRemoved: 380,
}

func TestCheckPasses(t *testing.T) {
	e := Expect{
		Solved: boolp(true), SolvedBy: 300, MinRounds: 100,
		MaxFinalPotential: intp(0), MinCoverage: 1,
		MaxChurnPerRound: 4, MinTokensMoved: 990, MaxTokensMoved: 2000,
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := Check(e, solvedRun); len(v) != 0 {
		t.Fatalf("violations on a conforming run: %v", v)
	}
	if got := e.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	if e.Empty() {
		t.Fatal("Empty() on a fully-set Expect")
	}
	if !(Expect{}).Empty() {
		t.Fatal("zero Expect not Empty()")
	}
}

// TestCheckViolations drives every assertion to failure one at a time and
// checks the violation names the spec field with an expected/got detail.
func TestCheckViolations(t *testing.T) {
	unsolved := Run{N: 100, K: 10, Solved: false, Rounds: 500,
		FinalPotential: 120, TokensMoved: 880, EdgesAdded: 4000, EdgesRemoved: 4000}
	cases := []struct {
		e         Expect
		r         Run
		assertion string
		detail    string
	}{
		{Expect{Solved: boolp(true)}, unsolved, "solved", "solved=false"},
		{Expect{SolvedBy: 400}, unsolved, "solved_by", "unsolved after 500 rounds"},
		{Expect{SolvedBy: 200}, solvedRun, "solved_by", "rounds ≤ 200, got 250"},
		{Expect{MinRounds: 300}, solvedRun, "min_rounds", "rounds ≥ 300, got 250"},
		{Expect{MaxFinalPotential: intp(100)}, unsolved, "max_final_potential", "φ ≤ 100, got 120"},
		{Expect{MinCoverage: 0.95}, unsolved, "min_coverage", "0.8800"},
		{Expect{MaxChurnPerRound: 10}, unsolved, "max_churn_per_round", "got 16.00"},
		{Expect{MinTokensMoved: 990}, unsolved, "min_tokens_moved", "got 880"},
		{Expect{MaxTokensMoved: 500}, unsolved, "max_tokens_moved", "got 880"},
	}
	for _, tc := range cases {
		vs := Check(tc.e, tc.r)
		if len(vs) != 1 {
			t.Fatalf("%+v: %d violations, want 1: %v", tc.e, len(vs), vs)
		}
		if vs[0].Assertion != tc.assertion {
			t.Errorf("assertion %q, want %q", vs[0].Assertion, tc.assertion)
		}
		if !strings.Contains(vs[0].Detail, tc.detail) {
			t.Errorf("%s detail %q missing %q", tc.assertion, vs[0].Detail, tc.detail)
		}
		if !strings.Contains(vs[0].String(), tc.assertion+": ") {
			t.Errorf("String() = %q lacks assertion prefix", vs[0].String())
		}
	}
}

func TestCheckCollectsAllViolations(t *testing.T) {
	e := Expect{Solved: boolp(false), SolvedBy: 100, MinTokensMoved: 5000}
	vs := Check(e, solvedRun)
	if len(vs) != 3 {
		t.Fatalf("%d violations, want 3 (solved, solved_by, min_tokens_moved): %v", len(vs), vs)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		e    Expect
		want string
	}{
		{Expect{SolvedBy: -1}, "expect.solved_by"},
		{Expect{MinRounds: -2}, "expect.min_rounds"},
		{Expect{SolvedBy: 10, MinRounds: 20}, "no run can satisfy both"},
		{Expect{MaxFinalPotential: intp(-1)}, "expect.max_final_potential"},
		{Expect{MinCoverage: 1.5}, "outside [0, 1]"},
		{Expect{MinCoverage: -0.1}, "outside [0, 1]"},
		{Expect{MaxChurnPerRound: -3}, "expect.max_churn_per_round"},
		{Expect{MinTokensMoved: -1}, "non-negative"},
		{Expect{MinTokensMoved: 10, MaxTokensMoved: 5}, "exceeds expect.max_tokens_moved"},
	}
	for _, tc := range cases {
		err := tc.e.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", tc.e, err, tc.want)
		}
	}
	if err := (Expect{}).Validate(); err != nil {
		t.Errorf("zero Expect invalid: %v", err)
	}
}

func TestRunDerivedMetrics(t *testing.T) {
	r := Run{N: 10, K: 4, FinalPotential: 8, Rounds: 20, EdgesAdded: 30, EdgesRemoved: 10}
	if got := r.Coverage(); got != 0.8 {
		t.Fatalf("Coverage() = %v, want 0.8", got)
	}
	if got := r.ChurnPerRound(); got != 2 {
		t.Fatalf("ChurnPerRound() = %v, want 2", got)
	}
	var zero Run
	if zero.Coverage() != 0 || zero.ChurnPerRound() != 0 {
		t.Fatal("zero run must not divide by zero")
	}
}
