// Package outcome defines the expected-outcome assertions a scenario
// spec can attach to a run (DESIGN.md §15) and evaluates them against a
// finished run's summary. It is deliberately a leaf package — plain data
// in, violations out — so both the local scenario runner
// (internal/scenario) and the daemon's assert endpoint (internal/daemon)
// judge runs with literally the same code, and a scenario that passes
// locally cannot fail remotely on evaluation drift.
package outcome

import (
	"fmt"
	"strings"
)

// Expect declares the assertions to evaluate after a run. The JSON tags
// are the scenario spec's `expect:` field names and the daemon's assert
// wire shape — one vocabulary at every layer. Zero values mean
// "unasserted" (Solved being a *bool keeps `solved: false` assertable).
type Expect struct {
	// Solved asserts the run's final solved state.
	Solved *bool `json:"solved,omitempty"`
	// SolvedBy asserts the run solved within this many rounds.
	SolvedBy int `json:"solved_by,omitempty"`
	// MinRounds asserts the run took at least this many rounds (a
	// too-fast run usually means the scenario is not testing what it
	// claims to).
	MinRounds int `json:"min_rounds,omitempty"`
	// MaxFinalPotential asserts φ at the end of the run is at or below
	// this threshold (pointer so `max_final_potential: 0` — full
	// dissemination — is expressible).
	MaxFinalPotential *int `json:"max_final_potential,omitempty"`
	// MinCoverage asserts the fraction of (node, token) pairs known at
	// the end, 1 − φ/(n·k), reached at least this value in [0, 1].
	MinCoverage float64 `json:"min_coverage,omitempty"`
	// MaxChurnPerRound bounds the mean edge churn the schedule generated:
	// (edges added + removed) / rounds.
	MaxChurnPerRound float64 `json:"max_churn_per_round,omitempty"`
	// MinTokensMoved / MaxTokensMoved bound the total token transfers —
	// the token-conservation invariant: a gossip run that solved must
	// have moved at least n·k − k tokens, and algorithms that re-send
	// known tokens bound it from above.
	MinTokensMoved int64 `json:"min_tokens_moved,omitempty"`
	MaxTokensMoved int64 `json:"max_tokens_moved,omitempty"`
}

// Empty reports whether no assertion is set.
func (e Expect) Empty() bool {
	return e.Solved == nil && e.SolvedBy == 0 && e.MinRounds == 0 &&
		e.MaxFinalPotential == nil && e.MinCoverage == 0 &&
		e.MaxChurnPerRound == 0 && e.MinTokensMoved == 0 && e.MaxTokensMoved == 0
}

// Count returns how many assertions are set (the "expect: ok (N checks)"
// line).
func (e Expect) Count() int {
	n := 0
	for _, set := range []bool{
		e.Solved != nil, e.SolvedBy != 0, e.MinRounds != 0,
		e.MaxFinalPotential != nil, e.MinCoverage != 0,
		e.MaxChurnPerRound != 0, e.MinTokensMoved != 0, e.MaxTokensMoved != 0,
	} {
		if set {
			n++
		}
	}
	return n
}

// Validate rejects assertions that can never hold or are out of range,
// with the spec field name in the error.
func (e Expect) Validate() error {
	if e.SolvedBy < 0 {
		return fmt.Errorf("expect.solved_by: %d is negative", e.SolvedBy)
	}
	if e.MinRounds < 0 {
		return fmt.Errorf("expect.min_rounds: %d is negative", e.MinRounds)
	}
	if e.SolvedBy > 0 && e.MinRounds > e.SolvedBy {
		return fmt.Errorf("expect.min_rounds %d exceeds expect.solved_by %d: no run can satisfy both", e.MinRounds, e.SolvedBy)
	}
	if e.MaxFinalPotential != nil && *e.MaxFinalPotential < 0 {
		return fmt.Errorf("expect.max_final_potential: %d is negative (φ is never below 0)", *e.MaxFinalPotential)
	}
	if e.MinCoverage < 0 || e.MinCoverage > 1 {
		return fmt.Errorf("expect.min_coverage: %v outside [0, 1]", e.MinCoverage)
	}
	if e.MaxChurnPerRound < 0 {
		return fmt.Errorf("expect.max_churn_per_round: %v is negative", e.MaxChurnPerRound)
	}
	if e.MinTokensMoved < 0 || e.MaxTokensMoved < 0 {
		return fmt.Errorf("expect.min_tokens_moved/max_tokens_moved must be non-negative")
	}
	if e.MaxTokensMoved > 0 && e.MinTokensMoved > e.MaxTokensMoved {
		return fmt.Errorf("expect.min_tokens_moved %d exceeds expect.max_tokens_moved %d", e.MinTokensMoved, e.MaxTokensMoved)
	}
	return nil
}

// Run is the finished run's summary, as plain data: the subset of
// mobilegossip.Result (plus n and k) the assertions read. Both the local
// Result and the daemon's wire RunResult project onto it losslessly.
type Run struct {
	N, K           int
	Solved         bool
	Rounds         int
	FinalPotential int
	TokensMoved    int64
	EdgesAdded     int64
	EdgesRemoved   int64
}

// Coverage returns the fraction of (node, token) pairs known at the end
// of the run: 1 − φ/(n·k).
func (r Run) Coverage() float64 {
	nk := float64(r.N) * float64(r.K)
	if nk <= 0 {
		return 0
	}
	return 1 - float64(r.FinalPotential)/nk
}

// ChurnPerRound returns the mean edge churn per executed round.
func (r Run) ChurnPerRound() float64 {
	if r.Rounds <= 0 {
		return 0
	}
	return float64(r.EdgesAdded+r.EdgesRemoved) / float64(r.Rounds)
}

// Violation is one failed assertion: the spec field that failed and a
// diff-style expected/got detail.
type Violation struct {
	Assertion string `json:"assertion"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Assertion + ": " + v.Detail }

// FormatFailure renders an assertion failure the same way everywhere —
// the local runner's error, the daemon's 409 body, and therefore the
// *client.APIError message are all this string: the scenario, the seed,
// the phase the run ended in, and one diff-style line per violation.
func FormatFailure(scenario string, seed uint64, phase string, vs []Violation) string {
	var b strings.Builder
	noun := "assertions"
	if len(vs) == 1 {
		noun = "assertion"
	}
	fmt.Fprintf(&b, "scenario %q: %d %s failed (seed %d", scenario, len(vs), noun, seed)
	if phase != "" {
		fmt.Fprintf(&b, ", phase %q", phase)
	}
	b.WriteString("):")
	for _, v := range vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Check evaluates every set assertion against the run and returns the
// violations, in declaration order (empty means all assertions hold).
func Check(e Expect, r Run) []Violation {
	var out []Violation
	fail := func(assertion, format string, args ...any) {
		out = append(out, Violation{Assertion: assertion, Detail: fmt.Sprintf(format, args...)})
	}
	if e.Solved != nil && r.Solved != *e.Solved {
		fail("solved", "expected solved=%v, got solved=%v after %d rounds (φ=%d)",
			*e.Solved, r.Solved, r.Rounds, r.FinalPotential)
	}
	if e.SolvedBy > 0 {
		switch {
		case !r.Solved:
			fail("solved_by", "expected solved within %d rounds, got unsolved after %d rounds (φ=%d)",
				e.SolvedBy, r.Rounds, r.FinalPotential)
		case r.Rounds > e.SolvedBy:
			fail("solved_by", "expected rounds ≤ %d, got %d", e.SolvedBy, r.Rounds)
		}
	}
	if e.MinRounds > 0 && r.Rounds < e.MinRounds {
		fail("min_rounds", "expected rounds ≥ %d, got %d", e.MinRounds, r.Rounds)
	}
	if e.MaxFinalPotential != nil && r.FinalPotential > *e.MaxFinalPotential {
		fail("max_final_potential", "expected final φ ≤ %d, got %d", *e.MaxFinalPotential, r.FinalPotential)
	}
	if e.MinCoverage > 0 {
		if cov := r.Coverage(); cov < e.MinCoverage {
			fail("min_coverage", "expected coverage ≥ %.4f, got %.4f (φ=%d of n·k=%d)",
				e.MinCoverage, cov, r.FinalPotential, r.N*r.K)
		}
	}
	if e.MaxChurnPerRound > 0 {
		if churn := r.ChurnPerRound(); churn > e.MaxChurnPerRound {
			fail("max_churn_per_round", "expected churn/round ≤ %.2f, got %.2f (+%d/-%d over %d rounds)",
				e.MaxChurnPerRound, churn, r.EdgesAdded, r.EdgesRemoved, r.Rounds)
		}
	}
	if e.MinTokensMoved > 0 && r.TokensMoved < e.MinTokensMoved {
		fail("min_tokens_moved", "expected tokens moved ≥ %d, got %d", e.MinTokensMoved, r.TokensMoved)
	}
	if e.MaxTokensMoved > 0 && r.TokensMoved > e.MaxTokensMoved {
		fail("max_tokens_moved", "expected tokens moved ≤ %d, got %d", e.MaxTokensMoved, r.TokensMoved)
	}
	return out
}
